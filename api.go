package cfdclean

import (
	"io"

	"cfdclean/internal/cfd"
	"cfdclean/internal/core"
	"cfdclean/internal/cost"
	"cfdclean/internal/increpair"
	"cfdclean/internal/metrics"
	"cfdclean/internal/relation"
	"cfdclean/internal/repair"
	"cfdclean/internal/sampling"
)

// Relational substrate. A Relation is an in-memory instance of a single
// Schema; Tuples carry string-or-null Values and optional per-attribute
// confidence weights in [0,1] (§3.2).
type (
	// Schema names a relation and its attributes.
	Schema = relation.Schema
	// Relation is an in-memory relation instance with active-domain
	// tracking.
	Relation = relation.Relation
	// Tuple is one row; Vals[i] corresponds to Schema.Attr(i).
	Tuple = relation.Tuple
	// TupleID identifies a tuple across the dirty database, its repair,
	// and the ground truth.
	TupleID = relation.TupleID
	// Value is a string constant or SQL null.
	Value = relation.Value
)

// NewSchema builds a schema; it fails on duplicate or empty attribute
// names.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// MustSchema is NewSchema that panics on error; for fixed literals.
func MustSchema(name string, attrs ...string) *Schema {
	return relation.MustSchema(name, attrs...)
}

// NewRelation returns an empty relation over s.
func NewRelation(s *Schema) *Relation { return relation.New(s) }

// NewTuple builds a tuple from string values with unit weights; id 0
// lets the relation assign one on insert.
func NewTuple(id TupleID, vals ...string) *Tuple {
	return relation.NewTuple(id, vals...)
}

// S wraps a string constant as a Value; Null is the SQL null value.
func S(s string) Value { return relation.S(s) }

// Null is the SQL null Value (§3.1: equal to everything under '=',
// matching no pattern under ≼).
var Null = relation.NullValue

// ReadCSV loads a relation from CSV with a header row naming the
// attributes; the literal \N denotes null. name becomes the schema name.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	return relation.ReadCSV(name, r)
}

// WriteCSV writes rel as CSV with a header row.
func WriteCSV(rel *Relation, w io.Writer) error {
	return relation.WriteCSV(rel, w)
}

// Constraints.
type (
	// CFD is a conditional functional dependency (R: X → Y, Tp) in
	// general form.
	CFD = cfd.CFD
	// PatternCell is one tableau entry: a constant or the wildcard '_'.
	PatternCell = cfd.Cell
	// NormalCFD is the normal form (R: X → A, tp) the algorithms
	// consume; obtain it with Normalize.
	NormalCFD = cfd.Normal
	// Violation reports one CFD violation (§3.1): the violating tuple,
	// the rule, and — for variable-RHS rules — the partner tuple.
	Violation = cfd.Violation
)

// Wildcard is the pattern cell '_' ("don't care").
var Wildcard = cfd.W

// Const returns a constant pattern cell.
func Const(s string) PatternCell { return cfd.C(s) }

// NewCFD builds a CFD over schema s with the given LHS and RHS attribute
// names and pattern rows (LHS cells first in each row).
func NewCFD(name string, s *Schema, lhs, rhs []string, rows ...[]PatternCell) (*CFD, error) {
	return cfd.New(name, s, lhs, rhs, rows...)
}

// NewFD builds the standard FD lhs → rhs as a CFD with a single
// all-wildcard pattern row.
func NewFD(name string, s *Schema, lhs, rhs []string) (*CFD, error) {
	return cfd.FD(name, s, lhs, rhs)
}

// ParseCFDs reads CFDs in the package's text format (see internal/cfd's
// Parse documentation and the examples directory).
func ParseCFDs(s *Schema, r io.Reader) ([]*CFD, error) {
	return cfd.Parse(s, r)
}

// FormatCFDs writes CFDs in the same text format ParseCFDs reads.
func FormatCFDs(w io.Writer, cfds []*CFD) error {
	return cfd.Format(w, cfds)
}

// Normalize rewrites Σ into normal form: one single-attribute-RHS,
// single-pattern-row rule per (CFD, RHS attribute, tableau row).
func Normalize(cfds []*CFD) []*NormalCFD {
	return cfd.NormalizeAll(cfds)
}

// Satisfiable reports whether a non-empty database can satisfy sigma;
// the error explains the first conflict found. Repairing requires a
// satisfiable Σ.
func Satisfiable(sigma []*NormalCFD) error {
	_, err := cfd.Satisfiable(sigma)
	return err
}

// Satisfies reports rel |= sigma.
func Satisfies(rel *Relation, sigma []*NormalCFD) bool {
	return cfd.Satisfies(rel, sigma)
}

// Violations returns up to limit violations of sigma in rel (limit <= 0
// means all), in the canonical (tuple id, rule, partner id) order.
func Violations(rel *Relation, sigma []*NormalCFD, limit int) []Violation {
	return cfd.NewDetector(rel, sigma).Violations(limit)
}

// Detect returns every violation of sigma in rel in the canonical
// (tuple id, rule, partner id) order. Whole-database detection is
// partition-parallel: index buckets are sharded by LHS-key hash across
// workers (0 means runtime.GOMAXPROCS(0), 1 forces the sequential path);
// the result is bit-identical at every setting.
func Detect(rel *Relation, sigma []*NormalCFD, workers int) []Violation {
	d := cfd.NewDetector(rel, sigma)
	d.SetWorkers(workers)
	return d.Detect()
}

// VioCounts returns vio(t) for every tuple with at least one violation
// (§3.1).
func VioCounts(rel *Relation, sigma []*NormalCFD) map[TupleID]int {
	return cfd.NewDetector(rel, sigma).VioAll()
}

// Repairing.
type (
	// BatchOptions tunes BatchRepair; the zero value uses the paper's
	// defaults (DL metric, dependency-graph ordering).
	BatchOptions = repair.Options
	// BatchResult reports a completed batch repair.
	BatchResult = repair.Result
	// IncOptions tunes IncRepair/Repair; the zero value uses linear
	// ordering and k = 2.
	IncOptions = increpair.Options
	// IncResult reports a completed incremental repair.
	IncResult = increpair.Result
	// Ordering selects the ΔD processing order of §5.2.
	Ordering = increpair.Ordering
	// CostModel scores candidate value changes (§3.2).
	CostModel = cost.Model
)

// The three INCREPAIR orderings (§5.2).
const (
	// OrderLinear processes tuples as given (L-INCREPAIR).
	OrderLinear = increpair.Linear
	// OrderByViolations processes tuples in increasing vio(t)
	// (V-INCREPAIR).
	OrderByViolations = increpair.ByViolations
	// OrderByWeight processes tuples in decreasing weight (W-INCREPAIR).
	OrderByWeight = increpair.ByWeight
)

// BatchRepair computes a repair of d satisfying sigma (BATCHREPAIR, §4).
// d is not modified. opts may be nil.
//
// Execution is component-parallel: the violation graph's connected
// components (tuples sharing no violation) are repaired concurrently
// across BatchOptions.Workers workers, each against a pristine view of
// the database with per-worker equivalence-class and cost state, and
// the resolved fixes are merged in canonical component order. Workers 0
// means all cores, 1 forces the sequential path; the repaired output is
// byte-identical at every setting.
func BatchRepair(d *Relation, sigma []*NormalCFD, opts *BatchOptions) (*BatchResult, error) {
	return repair.Batch(d, sigma, opts)
}

// IncRepair repairs the tuples of delta for insertion into the clean
// database d so that the result satisfies sigma (INCREPAIR, §5); d and
// delta are not modified. opts may be nil.
func IncRepair(d *Relation, delta []*Tuple, sigma []*NormalCFD, opts *IncOptions) (*IncResult, error) {
	return increpair.Incremental(d, delta, sigma, opts)
}

// Repair cleans a whole dirty database with the incremental engine
// (§5.3): the consistent core of d is kept as-is and the violating
// tuples are re-inserted one at a time. opts may be nil.
func Repair(d *Relation, sigma []*NormalCFD, opts *IncOptions) (*IncResult, error) {
	return increpair.Repair(d, sigma, opts)
}

// Session is a streaming repair session: a cleaner opened over a
// database once, accepting ΔD batches with ApplyDelta (inserts only) or
// ApplyOps (mixed deletes, cell updates and inserts in one engine
// pass). Violation state is delta-maintained across batches — the base
// is never rescanned and no detector is rebuilt — so each batch costs
// O(|ΔD|), opening the online-cleaning scenario of §5.
//
// Sessions are safe for concurrent use: mutations serialize on an
// internal lock (single-writer), while Snapshot, Satisfied and Stats
// read atomically published state without locking. Close it when done
// streaming. For many sessions behind one process, see cmd/cfdserved —
// the HTTP service hosting named sessions with per-session work queues,
// whose responses are byte-identical to calling this API directly.
type Session = increpair.Session

// SessionSnapshot is an immutable, lock-free view of a Session's state,
// published after every mutation and stamped with the relation
// journal's NextID watermark and mutation version.
type SessionSnapshot = increpair.Snapshot

// SessionSet is one cell update in a Session.ApplyOps batch; the
// updated tuple is re-cleaned by the engine like any arriving tuple.
type SessionSet = increpair.SetOp

// NewSession opens a streaming cleaner over d (cloned, never modified).
// A dirty d is first cleaned with the §5.3 driver — Session.Initial
// reports that repair. Push batches with ApplyDelta; read the maintained
// result with Current. opts may be nil.
func NewSession(d *Relation, sigma []*NormalCFD, opts *IncOptions) (*Session, error) {
	return increpair.NewSession(d, sigma, opts)
}

// RestoreSession rebuilds a Session from a full-state snapshot written
// by Session.Persist: same schema, CFD set, tuples (ids and physical
// order included), journal marks and cumulative counters, with the
// violation store rebuilt by one deterministic detection pass. The
// restored session's Dump, Violations and Stats are byte-identical to
// the persisted session's at the snapshot point. workers > 0 overrides
// the persisted engine worker count (output is identical at every
// setting); 0 keeps it. Batches logged after the snapshot are reapplied
// with Session.ReplayBatch — cmd/cfdserved does exactly this on boot
// when run with -data-dir.
func RestoreSession(r io.Reader, workers int) (*Session, error) {
	return increpair.RestoreSession(r, workers)
}

// Framework (Fig. 3) and accuracy.
type (
	// Cleaner runs the repair→sample→feedback loop.
	Cleaner = core.Cleaner
	// CleanerConfig configures a Cleaner.
	CleanerConfig = core.Config
	// Outcome is the result of a cleaning run.
	Outcome = core.Outcome
	// Mode selects the repairing engine of the loop.
	Mode = core.Mode
	// User inspects samples; Corrector additionally supplies fixes.
	User = sampling.User
	// Corrector is a User that can also correct flagged tuples.
	Corrector = core.Corrector
	// Oracle is a simulated user backed by ground truth (§7.1).
	Oracle = sampling.Oracle
	// SampleOptions tunes the sampling module (§6).
	SampleOptions = sampling.Options
	// SampleReport is the sampling module's verdict on one repair.
	SampleReport = sampling.Report
	// Quality holds precision/recall of a repair against ground truth.
	Quality = metrics.Quality
)

// Cleaner modes.
const (
	// ModeBatch drives the loop with BatchRepair.
	ModeBatch = core.BatchMode
	// ModeIncremental drives the loop with Repair (the §5.3 driver).
	ModeIncremental = core.IncrementalMode
)

// NewCleaner validates cfg and builds a Cleaner.
func NewCleaner(cfg CleanerConfig) (*Cleaner, error) {
	return core.New(cfg)
}

// EvaluateSample draws a stratified sample of the repair repr, has user
// inspect it, and runs the §6 acceptance test; orig is the pre-repair
// database used for stratification by vio(t).
func EvaluateSample(repr, orig *Relation, sigma []*NormalCFD, user User, opts SampleOptions) (*SampleReport, error) {
	return sampling.Evaluate(repr, orig, sigma, user, opts)
}

// EvaluateQuality measures a repair against ground truth: d is the dirty
// input, repr the repair, dopt the correct database (§7.1).
func EvaluateQuality(d, repr, dopt *Relation) (*Quality, error) {
	return metrics.Evaluate(d, repr, dopt)
}

// Dif counts attribute-level differences between two relations sharing
// tuple ids (the paper's dif(·,·)).
func Dif(d1, d2 *Relation) int { return cost.Dif(d1, d2) }
