package discovery

import (
	"strings"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
	"cfdclean/internal/relation"
)

func mini(t *testing.T, attrs []string, rows ...[]string) *relation.Relation {
	t.Helper()
	s := relation.MustSchema("r", attrs...)
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.InsertRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func findRule(rules []Rule, name string) *Rule {
	for i := range rules {
		if rules[i].CFD.Name == name {
			return &rules[i]
		}
	}
	return nil
}

func TestMinePlainFD(t *testing.T) {
	// B is a function of A everywhere: expect the wildcard-row FD.
	r := mini(t, []string{"A", "B"},
		[]string{"x", "1"}, []string{"x", "1"},
		[]string{"y", "2"}, []string{"z", "3"})
	rules, err := Mine(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := findRule(rules, "mined:A->B")
	if rule == nil {
		t.Fatalf("A->B not mined; got %v", names(rules))
	}
	if len(rule.CFD.Tableau) != 1 || !rule.CFD.Tableau[0][0].Wildcard {
		t.Fatalf("A->B should be a single wildcard row: %v", rule.CFD)
	}
	if !rule.Exact || rule.Support != r.Size() {
		t.Fatalf("FD stats: %+v", rule)
	}
}

func TestMineConstantRows(t *testing.T) {
	// B depends on A except in one group: constant rows for agreeing
	// groups with enough support.
	rows := [][]string{}
	for i := 0; i < 6; i++ {
		rows = append(rows, []string{"x", "1"})
	}
	for i := 0; i < 6; i++ {
		rows = append(rows, []string{"y", "2"})
	}
	// Disagreeing group: A=z maps to both 3 and 4.
	rows = append(rows, []string{"z", "3"}, []string{"z", "4"})
	r := mini(t, []string{"A", "B"}, rows...)
	rules, err := Mine(r, &Options{MinSupport: 4})
	if err != nil {
		t.Fatal(err)
	}
	rule := findRule(rules, "mined:A->B")
	if rule == nil {
		t.Fatalf("constant CFD not mined; got %v", names(rules))
	}
	if len(rule.CFD.Tableau) != 2 {
		t.Fatalf("want 2 constant rows (x, y), got %v", rule.CFD.Tableau)
	}
	for _, row := range rule.CFD.Tableau {
		if row[0].Wildcard || row[1].Wildcard {
			t.Fatalf("rows must be constant: %v", row)
		}
	}
	if rule.Support != 12 {
		t.Fatalf("support = %d, want 12", rule.Support)
	}
}

func TestMinimalityPruning(t *testing.T) {
	// A → C holds; then {A,B} → C must not be emitted.
	r := mini(t, []string{"A", "B", "C"},
		[]string{"x", "p", "1"}, []string{"x", "q", "1"},
		[]string{"y", "p", "2"}, []string{"y", "q", "2"})
	rules, err := Mine(r, &Options{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if findRule(rules, "mined:A->C") == nil {
		t.Fatalf("A->C missing: %v", names(rules))
	}
	if findRule(rules, "mined:A,B->C") != nil {
		t.Fatalf("non-minimal A,B->C emitted: %v", names(rules))
	}
}

func TestConfidenceTolerance(t *testing.T) {
	// Group x: 9 of 10 agree. With MinConfidence 1 no row; with 0.85 the
	// majority value becomes the pattern.
	rows := [][]string{}
	for i := 0; i < 9; i++ {
		rows = append(rows, []string{"x", "1"})
	}
	rows = append(rows, []string{"x", "2"})
	// A second disagreeing group so the plain FD does not hold.
	rows = append(rows, []string{"y", "3"}, []string{"y", "4"})
	r := mini(t, []string{"A", "B"}, rows...)

	strict, err := Mine(r, &Options{MinSupport: 4, MinConfidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if findRule(strict, "mined:A->B") != nil {
		t.Fatal("strict mining accepted a 90 percent confident row")
	}

	loose, err := Mine(r, &Options{MinSupport: 4, MinConfidence: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	rule := findRule(loose, "mined:A->B")
	if rule == nil {
		t.Fatal("tolerant mining missed the 90 percent confident row")
	}
	if rule.Exact {
		t.Fatal("rule with deviants must not be Exact")
	}
	if got := rule.CFD.Tableau[0][1].Const; got != "1" {
		t.Fatalf("pattern value %q, want majority value 1", got)
	}
}

func TestNullsExcluded(t *testing.T) {
	s := relation.MustSchema("r", "A", "B")
	r := relation.New(s)
	for i := 0; i < 5; i++ {
		r.MustInsert(relation.NewTuple(0, "x", "1"))
	}
	tp := relation.NewTuple(0, "x", "")
	tp.Vals[1] = relation.NullValue
	r.MustInsert(tp)
	// Nulls in a group block its constant row (patterns never contain
	// null, §3.1), but the wildcard FD can still hold under SQL
	// semantics... here agree < size, so only mining with tolerance
	// could emit — and even then the null group is skipped.
	rules, err := Mine(r, &Options{MinSupport: 3, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if r := findRule(rules, "mined:A->B"); r != nil {
		for _, row := range r.CFD.Tableau {
			for _, c := range row {
				if !c.Wildcard && c.Const == "" {
					t.Fatal("pattern row built from a null group")
				}
			}
		}
	}
}

func TestMinedRulesHoldOnCleanData(t *testing.T) {
	ds, err := gen.New(gen.Config{Size: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Mine(ds.Opt, &Options{
		MaxLHS: 1, MinSupport: 5,
		Attrs: []int{gen.AZip, gen.ACT, gen.AST, gen.ACTY, gen.AVAT},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("nothing mined from the generated workload")
	}
	var mined []*cfd.CFD
	for _, r := range rules {
		mined = append(mined, r.CFD)
	}
	sigma := cfd.NormalizeAll(mined)
	if !cfd.Satisfies(ds.Opt, sigma) {
		t.Fatal("mined rules do not hold on the data they were mined from")
	}
	// The geography dependency zip → CT must be rediscovered in some
	// form (wildcard or constant rows).
	if findRuleByPrefix(rules, "mined:zip->CT") == nil {
		t.Fatalf("zip->CT not rediscovered: %v", names(rules))
	}
}

func TestMinedRulesCatchInjectedNoise(t *testing.T) {
	// Mine Σ' from the clean data, then check that the dirty copy
	// violates Σ' — the end-to-end promise of discovery-driven cleaning.
	ds, err := gen.New(gen.Config{Size: 1500, NoiseRate: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Mine(ds.Opt, &Options{
		MaxLHS: 1, MinSupport: 3,
		Attrs: []int{gen.AZip, gen.ACT, gen.AST, gen.ACTY, gen.AVAT},
	})
	if err != nil {
		t.Fatal(err)
	}
	var mined []*cfd.CFD
	for _, r := range rules {
		mined = append(mined, r.CFD)
	}
	sigma := cfd.NormalizeAll(mined)
	if cfd.Satisfies(ds.Dirty, sigma) {
		t.Fatal("dirty data satisfies the mined constraints")
	}
}

func TestOptionsValidation(t *testing.T) {
	r := mini(t, []string{"A", "B"}, []string{"x", "1"})
	if _, err := Mine(r, &Options{MinConfidence: 0.2}); err == nil {
		t.Fatal("confidence 0.2 accepted")
	}
	empty := relation.New(relation.MustSchema("r", "A", "B"))
	if _, err := Mine(empty, nil); err == nil {
		t.Fatal("empty relation accepted")
	}
}

func TestCombinations(t *testing.T) {
	got := combinations([]int{1, 2, 3}, 2)
	if len(got) != 3 {
		t.Fatalf("C(3,2) = %d, want 3", len(got))
	}
}

func names(rules []Rule) []string {
	var out []string
	for _, r := range rules {
		out = append(out, r.CFD.Name)
	}
	return out
}

func findRuleByPrefix(rules []Rule, prefix string) *Rule {
	for i := range rules {
		if strings.HasPrefix(rules[i].CFD.Name, prefix) {
			return &rules[i]
		}
	}
	return nil
}
