// Package discovery mines CFDs from data — the paper's first item of
// future work (§9: "we are studying effective methods to automatically
// discover useful CFDs from real-life data"). The approach follows the
// line of work the paper seeded (constant-CFD mining over frequent
// left-hand-side patterns plus level-wise FD induction):
//
//   - for every candidate embedded FD X → A with |X| ≤ MaxLHS, group the
//     relation on X;
//   - if every group agrees on A, the plain FD holds and is emitted as a
//     CFD with a single wildcard row (unless a subset of X already
//     determines A — only minimal FDs are kept);
//   - otherwise, groups of at least MinSupport tuples that do agree on A
//     become constant pattern rows (x̄ → a), optionally tolerating a
//     (1−MinConfidence) fraction of deviating tuples whose majority value
//     defines the pattern.
//
// Mining a dirty relation therefore yields the constraints that hold on
// the overwhelming majority of the data — exactly the Σ a user would
// seed the cleaning framework with.
package discovery

import (
	"fmt"
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// Options bounds the search.
type Options struct {
	// MaxLHS caps |X| of mined rules. Default 2; cost grows
	// combinatorially with it.
	MaxLHS int
	// MinSupport is the minimum group size backing a constant pattern
	// row. Default 4.
	MinSupport int
	// MinConfidence is the minimum fraction of a group agreeing on the
	// RHS value for a constant row (1 requires unanimity). Default 1.
	MinConfidence float64
	// Attrs restricts mining to the given attribute positions; empty
	// means all attributes.
	Attrs []int
}

func (o *Options) withDefaults(arity int) (Options, error) {
	var out Options
	if o != nil {
		out = *o
	}
	if out.MaxLHS <= 0 {
		out.MaxLHS = 2
	}
	if out.MaxLHS > arity-1 {
		out.MaxLHS = arity - 1
	}
	if out.MinSupport <= 0 {
		out.MinSupport = 4
	}
	if out.MinConfidence == 0 {
		out.MinConfidence = 1
	}
	if out.MinConfidence < 0.5 || out.MinConfidence > 1 {
		return out, fmt.Errorf("discovery: confidence %v outside [0.5, 1]", out.MinConfidence)
	}
	return out, nil
}

// Rule is one mined CFD with its statistics.
type Rule struct {
	// CFD is the mined dependency; a single wildcard row for a plain FD,
	// constant rows otherwise.
	CFD *cfd.CFD
	// Support is the number of tuples covered by the tableau.
	Support int
	// Exact reports whether every covered tuple satisfies the rule
	// (false only when MinConfidence < 1 admitted deviants).
	Exact bool
}

// Mine discovers CFDs of the form X → A on rel.
func Mine(rel *relation.Relation, opts *Options) ([]Rule, error) {
	s := rel.Schema()
	o, err := opts.withDefaults(s.Arity())
	if err != nil {
		return nil, err
	}
	attrs := o.Attrs
	if len(attrs) == 0 {
		attrs = make([]int, s.Arity())
		for i := range attrs {
			attrs[i] = i
		}
	}
	for _, a := range attrs {
		if a < 0 || a >= s.Arity() {
			return nil, fmt.Errorf("discovery: attribute %d out of range", a)
		}
	}
	if rel.Size() == 0 {
		return nil, fmt.Errorf("discovery: empty relation")
	}

	m := &miner{rel: rel, o: o, fdHolds: make(map[string]bool)}
	var rules []Rule
	// Level-wise over |X| so subset FDs are known before supersets.
	for size := 1; size <= o.MaxLHS; size++ {
		for _, x := range combinations(attrs, size) {
			for _, a := range attrs {
				if contains(x, a) {
					continue
				}
				if r, ok := m.mineFD(x, a); ok {
					rules = append(rules, r)
				}
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].CFD.Name < rules[j].CFD.Name
	})
	return rules, nil
}

type miner struct {
	rel *relation.Relation
	o   Options
	// fdHolds records embedded FDs that hold exactly, keyed by
	// "x-set|a", for minimality pruning.
	fdHolds map[string]bool
}

func fdKey(x []int, a int) string {
	b := make([]byte, 0, 2*len(x)+2)
	for _, v := range x {
		b = append(b, byte(v), ',')
	}
	b = append(b, '|', byte(a))
	return string(b)
}

// subsetHolds reports whether some strict subset of x (of size |x|-1)
// already determines a.
func (m *miner) subsetHolds(x []int, a int) bool {
	if len(x) <= 1 {
		return false
	}
	sub := make([]int, 0, len(x)-1)
	for skip := range x {
		sub = sub[:0]
		for i, v := range x {
			if i != skip {
				sub = append(sub, v)
			}
		}
		if m.fdHolds[fdKey(sub, a)] {
			return true
		}
	}
	return false
}

// mineFD evaluates the candidate X → A and returns a mined rule when
// either the plain FD holds (wildcard row) or enough supported constant
// rows exist.
func (m *miner) mineFD(x []int, a int) (Rule, bool) {
	if m.subsetHolds(x, a) {
		return Rule{}, false // not minimal; the subset rule covers it
	}
	s := m.rel.Schema()
	groups := m.rel.GroupBy(x)

	type groupStat struct {
		xvals   []relation.Value
		size    int
		value   string
		agree   int
		hasNull bool
	}
	var stats []groupStat
	allAgree := true
	for _, ts := range groups {
		st := groupStat{xvals: ts[0].Project(x), size: len(ts)}
		counts := make(map[string]int)
		for _, t := range ts {
			v := t.Vals[a]
			if v.Null {
				st.hasNull = true
				continue
			}
			counts[v.Str]++
		}
		for v, n := range counts {
			if n > st.agree || (n == st.agree && v < st.value) {
				st.value, st.agree = v, n
			}
		}
		if st.agree < st.size {
			allAgree = false
		}
		for _, xv := range st.xvals {
			if xv.Null {
				st.hasNull = true
			}
		}
		stats = append(stats, st)
	}

	lhs := make([]string, len(x))
	for i, xa := range x {
		lhs[i] = s.Attr(xa)
	}
	rhs := []string{s.Attr(a)}
	name := fmt.Sprintf("mined:%s->%s", joinAttrs(lhs), rhs[0])

	if allAgree {
		m.fdHolds[fdKey(x, a)] = true
		// The wildcard row carries the FD itself; well-supported groups
		// additionally become constant rows. The constants are what make
		// a mined rule useful for repair: a single tuple deviating from
		// a frequent pattern is caught (and guided back) even when it
		// has no partner to violate the embedded FD with.
		wild := make([]cfd.Cell, len(x)+1)
		for i := range wild {
			wild[i] = cfd.W
		}
		rows := [][]cfd.Cell{wild}
		sort.Slice(stats, func(i, j int) bool { return stats[i].size > stats[j].size })
		for _, st := range stats {
			if st.size < m.o.MinSupport || st.hasNull || st.agree != st.size {
				continue
			}
			row := make([]cfd.Cell, 0, len(x)+1)
			for _, xv := range st.xvals {
				row = append(row, cfd.C(xv.Str))
			}
			row = append(row, cfd.C(st.value))
			rows = append(rows, row)
		}
		φ, err := cfd.New(name, s, lhs, rhs, rows...)
		if err != nil {
			return Rule{}, false
		}
		return Rule{CFD: φ, Support: m.rel.Size(), Exact: true}, true
	}

	// Constant rows: supported groups that (nearly) agree on A.
	var rows [][]cfd.Cell
	support := 0
	exact := true
	sort.Slice(stats, func(i, j int) bool { return stats[i].size > stats[j].size })
	for _, st := range stats {
		if st.size < m.o.MinSupport || st.hasNull || st.agree == 0 {
			continue
		}
		conf := float64(st.agree) / float64(st.size)
		if conf < m.o.MinConfidence {
			continue
		}
		if st.agree != st.size {
			exact = false
		}
		row := make([]cfd.Cell, 0, len(x)+1)
		for _, xv := range st.xvals {
			row = append(row, cfd.C(xv.Str))
		}
		row = append(row, cfd.C(st.value))
		rows = append(rows, row)
		support += st.size
	}
	if len(rows) == 0 {
		return Rule{}, false
	}
	φ, err := cfd.New(name, s, lhs, rhs, rows...)
	if err != nil {
		return Rule{}, false
	}
	return Rule{CFD: φ, Support: support, Exact: exact}, true
}

func joinAttrs(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// combinations returns all size-k subsets of attrs, preserving order.
func combinations(attrs []int, k int) [][]int {
	var out [][]int
	cur := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < len(attrs); i++ {
			cur[depth] = attrs[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}
