package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cfdclean/internal/metrics"
	"cfdclean/internal/store"
)

// Prometheus text exposition (GET /metrics). The JSON report at
// /v1/metrics stays the human- and test-facing shape; this endpoint
// renders the same instruments in the exposition format scrapers
// expect: HELP/TYPE headers, cumulative le-labelled histogram buckets
// ending in +Inf, and one series per session for the per-tenant
// instruments. Everything is assembled from atomic counter loads and
// per-histogram snapshots — a scrape never touches a session's worker
// or its lock.

// promContentType is the exposition format version scrapers negotiate.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates one exposition document. Metric families are
// written whole — HELP, TYPE, then every series — which is what the
// format requires (a family's series must be consecutive).
type promWriter struct {
	b strings.Builder
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline. Session names can legally
// contain quotes (only slashes, colons and whitespace are banned), so
// this is not optional.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a sample value; exposition floats use the
// shortest representation that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a bucket bound for the le label; the last bucket is
// literally "+Inf".
func formatLE(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func (p *promWriter) header(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one series; labels alternate key, value and values are
// escaped here.
func (p *promWriter) sample(name string, labels []string, value string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(value)
	p.b.WriteByte('\n')
}

// counter writes a single-series counter family.
func (p *promWriter) counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	p.sample(name, nil, strconv.FormatUint(v, 10))
}

// gauge writes a single-series gauge family.
func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.sample(name, nil, formatValue(v))
}

// histogramSeries writes one histogram's bucket/sum/count series under
// the shared family name, with the given base labels.
func (p *promWriter) histogramSeries(name string, labels []string, h *metrics.Histogram) {
	buckets, count, sum := h.Cumulative()
	for _, b := range buckets {
		p.sample(name+"_bucket", append(append([]string(nil), labels...), "le", formatLE(b.LE)), strconv.FormatUint(b.Count, 10))
	}
	p.sample(name+"_sum", labels, formatValue(sum))
	p.sample(name+"_count", labels, strconv.FormatUint(count, 10))
}

// labelledCounter is one (session, value) pair of a per-session counter
// family.
type labelledCounter struct {
	session string
	value   uint64
}

func (p *promWriter) sessionCounter(name, help string, vals []labelledCounter) {
	p.header(name, help, "counter")
	for _, v := range vals {
		p.sample(name, []string{"session", v.session}, strconv.FormatUint(v.value, 10))
	}
}

// handlePrometheus serves the exposition document. Sessions come from
// the registry listing (already name-sorted), so scrape output is
// deterministic for a fixed state — which is also what the parser-based
// test relies on.
func (s *Server) handlePrometheus(w http.ResponseWriter, req *http.Request) {
	hs := s.reg.List() // name-sorted
	p := &promWriter{}

	// Service-wide gauges and counters.
	p.gauge("cfdserved_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	p.gauge("cfdserved_sessions", "Hosted sessions.", float64(len(hs)))
	p.counter("cfdserved_passes_total", "Engine passes completed.", s.reg.passes.Load())
	p.counter("cfdserved_batches_total", "Client batches accepted.", s.reg.batches.Load())
	p.counter("cfdserved_coalesced_total", "Client batches merged into a shared engine pass.", s.reg.coalesced.Load())
	p.counter("cfdserved_rejected_total", "Async ingests refused with a full queue (backpressure 429).", s.reg.rejected.Load())
	p.counter("cfdserved_rate_limited_total", "Writes refused by a tenant quota (429/403).", s.reg.rateLimited.Load())
	p.counter("cfdserved_error_batches_total", "Engine passes that returned an error.", s.reg.errorPasses.Load())
	p.counter("cfdserved_tuples_total", "Tuples inserted.", s.reg.tuples.Load())
	p.counter("cfdserved_sse_dropped_total", "Events dropped at slow SSE subscribers.", s.reg.sseDrops.Load())

	// Service-wide histograms.
	p.header("cfdserved_pass_duration_seconds", "Engine pass duration.", "histogram")
	p.histogramSeries("cfdserved_pass_duration_seconds", nil, s.reg.passLat)
	p.header("cfdserved_fsync_lag_seconds", "WAL append to fsync-acknowledged lag.", "histogram")
	p.histogramSeries("cfdserved_fsync_lag_seconds", nil, s.reg.walLag)
	p.header("cfdserved_fold_batches", "Client batches folded per engine pass.", "histogram")
	p.histogramSeries("cfdserved_fold_batches", nil, s.reg.foldSize)

	// Per-session gauges: queue occupancy and relation size.
	p.header("cfdserved_session_queue_depth", "Work-queue occupancy per session.", "gauge")
	for _, h := range hs {
		p.sample("cfdserved_session_queue_depth", []string{"session", h.name}, strconv.Itoa(len(h.queue)))
	}
	p.header("cfdserved_session_queue_capacity", "Work-queue capacity per session.", "gauge")
	for _, h := range hs {
		p.sample("cfdserved_session_queue_capacity", []string{"session", h.name}, strconv.Itoa(cap(h.queue)))
	}
	p.header("cfdserved_session_relation_size", "Tuples currently in the session's relation.", "gauge")
	for _, h := range hs {
		p.sample("cfdserved_session_relation_size", []string{"session", h.name}, strconv.Itoa(h.sess.Snapshot().Size))
	}

	// Per-session store gauges render only for disk-backed sessions; a
	// memory-only node emits the headers with no series, which parsers
	// accept and keeps the document shape stable.
	type storeSample struct {
		session string
		st      *store.Stats
	}
	var stores []storeSample
	for _, h := range hs {
		if st := h.pers.storeStats(); st != nil {
			stores = append(stores, storeSample{h.name, st})
		}
	}
	p.header("cfdserved_session_store_gen", "Committed page-store manifest generation per disk-backed session.", "gauge")
	for _, s := range stores {
		p.sample("cfdserved_session_store_gen", []string{"session", s.session}, strconv.FormatUint(s.st.Gen, 10))
	}
	p.header("cfdserved_session_store_pages", "Committed pages in the session's page store.", "gauge")
	for _, s := range stores {
		p.sample("cfdserved_session_store_pages", []string{"session", s.session}, strconv.Itoa(s.st.Pages))
	}
	p.header("cfdserved_session_store_dirty_pages", "Dirty pages awaiting the session's next store flush.", "gauge")
	for _, s := range stores {
		p.sample("cfdserved_session_store_dirty_pages", []string{"session", s.session}, strconv.Itoa(s.st.DirtyPages))
	}
	p.header("cfdserved_session_store_cached_pages", "Clean pages held by the session store's LRU cache.", "gauge")
	for _, s := range stores {
		p.sample("cfdserved_session_store_cached_pages", []string{"session", s.session}, strconv.Itoa(s.st.CachedPages))
	}
	p.header("cfdserved_session_store_dict_entries", "Persisted intern-dictionary entries in the session's page store.", "gauge")
	for _, s := range stores {
		p.sample("cfdserved_session_store_dict_entries", []string{"session", s.session}, strconv.Itoa(s.st.DictEntries))
	}
	p.header("cfdserved_session_store_disk_bytes", "On-disk footprint of the session's page store.", "gauge")
	for _, s := range stores {
		p.sample("cfdserved_session_store_disk_bytes", []string{"session", s.session}, strconv.FormatInt(s.st.DiskBytes, 10))
	}

	// Per-session histograms: one family per instrument, one series set
	// per session.
	p.header("cfdserved_session_pass_duration_seconds", "Engine pass duration per session.", "histogram")
	for _, h := range hs {
		if h.ops != nil {
			p.histogramSeries("cfdserved_session_pass_duration_seconds", []string{"session", h.name}, h.ops.passLat)
		}
	}
	p.header("cfdserved_session_fsync_lag_seconds", "WAL append to fsync-acknowledged lag per session.", "histogram")
	for _, h := range hs {
		if h.ops != nil {
			p.histogramSeries("cfdserved_session_fsync_lag_seconds", []string{"session", h.name}, h.ops.walLag)
		}
	}
	p.header("cfdserved_session_fold_batches", "Client batches folded per engine pass per session.", "histogram")
	for _, h := range hs {
		if h.ops != nil {
			p.histogramSeries("cfdserved_session_fold_batches", []string{"session", h.name}, h.ops.foldSize)
		}
	}

	// Per-session counters.
	var dropped, errored, limited []labelledCounter
	for _, h := range hs {
		if h.ops == nil {
			continue
		}
		dropped = append(dropped, labelledCounter{h.name, h.ops.sseDropped.Load()})
		errored = append(errored, labelledCounter{h.name, h.ops.errorPasses.Load()})
		limited = append(limited, labelledCounter{h.name, h.ops.rateLimited.Load()})
	}
	p.sessionCounter("cfdserved_session_sse_dropped_total", "Events dropped at this session's slow SSE subscribers.", dropped)
	p.sessionCounter("cfdserved_session_error_batches_total", "Engine passes that returned an error, per session.", errored)
	p.sessionCounter("cfdserved_session_rate_limited_total", "Writes refused by this session's quota.", limited)

	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(p.b.String()))
}
