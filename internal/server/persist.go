package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/store"
	"cfdclean/internal/wal"
)

// Durable sessions. When Options.DataDir is set, every hosted session
// owns a directory <data-dir>/<name>/ holding generation-numbered
// snapshot/WAL pairs:
//
//	snap-<gen>.snap   full-state session snapshot (atomic tmp+rename)
//	wal-<gen>.log     batches accepted after that snapshot
//
// The session's committer goroutine — the pipeline stage downstream of
// the single-writer engine worker — appends one WAL record per
// successful engine pass (a coalesced ingest run is one pass and one
// record) *before* replying to the client, so under the per-batch fsync
// policy an acknowledged apply is on disk; the fsync itself is amortized
// across sessions by the registry's group-fsync goroutine. Every
// SnapshotEvery batches the persister rotates: it writes snapshot gen+1,
// starts an empty WAL gen+1, and deletes generations older than the
// previous one — the previous pair is kept as a fallback in case the
// newest snapshot is damaged. Recovery (Server.Recover) walks the session directories,
// restores the newest readable snapshot, and replays the WAL records
// after it through the ordinary ApplyOps path; the journal-version
// cursor carried by every record (wal.Batch) makes the replay
// idempotent across generations and detects gaps. A torn or corrupted
// WAL tail — the expected artifact of kill -9 — is detected by CRC,
// discarded, and the file truncated back to the last intact record;
// committed batches before the damage are never lost.
//
// A pass that fails *partway* (validation rejects before any mutation,
// so this is nearly impossible) leaves relation state that no WAL
// record describes; the persister resynchronizes by rotating to a fresh
// snapshot immediately, keeping the on-disk image authoritative.

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncBatch syncs after every accepted batch, before the client
	// sees the reply: an acknowledged batch survives power loss. The
	// safest and slowest policy.
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Options.FsyncInterval): a crash
	// loses at most the last interval's batches, all of which were
	// acknowledged. The usual production trade.
	FsyncInterval
	// FsyncOff never syncs explicitly; the OS flushes on its own
	// schedule. A process kill loses nothing (the page cache survives);
	// power loss may lose recent batches.
	FsyncOff
)

// ParseFsyncPolicy maps the -fsync flag values onto policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want batch, interval or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// persistConfig is the registry-wide durability configuration; nil on
// the Registry means persistence is off.
type persistConfig struct {
	dir       string
	policy    FsyncPolicy
	interval  time.Duration
	snapEvery int
	// kind is the node's default tuple-storage backend for new sessions
	// (-store); KindDefault/KindMem write full inline snapshots, KindDisk
	// gives each session a write-through page store whose snapshots are
	// slim headers. A create request may override per session.
	kind store.Kind
	// storeOpts tunes disk-backed sessions (-store-page, -store-cache).
	storeOpts store.Options
}

// storeDirName is the page store's subdirectory inside a session's data
// directory. It never collides with the generation files (snap-*/wal-*)
// and is pruned with the directory on destroy.
const storeDirName = "store"

// roleMarkerName is the follower-role marker inside a session's
// directory: present means the durable state belongs to a replica,
// absent means primary. The marker records the STEADY-STATE role only —
// transient flips (the quiesce window of a rebalance transfer) never
// touch it — so a restarted node re-hosts each session in the role it
// was really serving. Without it a rebooted follower would come back as
// a primary: the true primary's shipper then hits 421 and stops
// (split-brain guard), while the stale copy silently serves — the
// split brain the marker exists to prevent.
const roleMarkerName = "follower.role"

// writeRoleMarker syncs the on-disk role marker to the given role.
// Written via tmp+rename so a crash can only leave the old role or the
// new one, never a torn marker.
func writeRoleMarker(dir string, follower bool) error {
	path := filepath.Join(dir, roleMarkerName)
	if !follower {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		return nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte("follower\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readRoleMarker reports whether dir is marked as holding a follower
// replica's state.
func readRoleMarker(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, roleMarkerName))
	return err == nil
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%010d.snap", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%010d.log", gen))
}

// persister is one session's durability sidecar, driven by the
// session's committer goroutine (the pipeline stage downstream of the
// engine worker — see hosted.committer). The mutex fences the
// committer's appends against the interval-fsync ticker and the
// registry's group-fsync goroutine; all state transitions happen on the
// committer.
type persister struct {
	cfg  *persistConfig
	dir  string
	name string

	mu       sync.Mutex
	gen      uint64
	log      *wal.Log
	last     uint64 // journal version after the last logged batch
	appended uint64 // last version appended to the open log
	synced   uint64 // last version known to be on stable storage
	// sinceSnap is the rotation budget carried out of recovery (replayed
	// records already in the tip WAL); the session worker seeds its own
	// rotation counter from it and owns the count from then on.
	sinceSnap int
	broken    error // first unrecoverable persistence failure; sticky

	// st is the session's disk page store, nil for memory-backed
	// sessions. The persister owns its lifecycle: created or reopened
	// alongside the snapshot/WAL pair, closed on close(), removed with
	// the directory on destroy().
	st *store.Disk

	tick chan struct{} // closed to stop the interval-sync goroutine
}

// newPersister sets up durability for a freshly created session: its
// directory is (re)created empty, snapshot generation 0 captures the
// post-initial-cleaning state, and an empty WAL is opened. Any stale
// directory content under the same name — left by a session that could
// not be recovered — is replaced. quota is the session's quota mark
// (wal.Quota{} for inherited defaults); it rides in every snapshot
// header so explicit overrides survive recovery and ship to replicas.
//
// kind picks the tuple-storage backend: KindDefault inherits the node's
// -store configuration. A disk-backed session gets a page store seeded
// from the live relation, and its generation-0 snapshot is a slim
// header referencing store generation 0 instead of carrying every tuple
// inline.
func newPersister(cfg *persistConfig, name string, sess *increpair.Session, quota wal.Quota, kind store.Kind) (*persister, error) {
	dir := filepath.Join(cfg.dir, name)
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if kind == store.KindDefault {
		kind = cfg.kind
	}
	var (
		st   *store.Disk
		snap *wal.Snapshot
		err  error
	)
	if kind == store.KindDisk {
		arity := sess.Current().Schema().Arity()
		st, err = store.Create(filepath.Join(dir, storeDirName), arity, cfg.storeOpts)
		if err != nil {
			return nil, err
		}
		if err = sess.AttachStore(st, true); err != nil {
			st.Close()
			return nil, err
		}
		var fl *store.Flush
		if snap, fl, err = sess.PersistBoundary(name); err != nil {
			st.Close()
			return nil, err
		}
		snap.Quota = quota
		if err = fl.Commit(0); err != nil {
			st.Close()
			return nil, err
		}
	} else {
		if snap, err = sess.PersistSnapshot(name); err != nil {
			return nil, err
		}
		snap.Quota = quota
	}
	if err := wal.WriteSnapshotFile(snapPath(dir, 0), snap); err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	log, err := wal.Create(walPath(dir, 0))
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	p := &persister{
		cfg: cfg, dir: dir, name: name, log: log, st: st,
		last: snap.Version, appended: snap.Version, synced: snap.Version,
	}
	p.startTicker()
	return p, nil
}

func (p *persister) startTicker() {
	if p.cfg.policy != FsyncInterval {
		return
	}
	// The goroutine watches a local copy of the stop channel: stopTicker
	// nils the field afterwards, and re-reading it here would race.
	stop := make(chan struct{})
	p.tick = stop
	go func() {
		t := time.NewTicker(p.cfg.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.mu.Lock()
				p.syncLocked()
				p.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
}

// appendBatch logs one successful engine pass: delta-encode, CRC-frame
// and append, without syncing. Called by the session's committer, which
// is how the encode and the append run concurrently with the worker's
// NEXT engine pass — the WAL is off the single-writer hot path while
// record order still equals pass order (the commit channel is FIFO).
// The ops slices are the batch's original decoded inputs, which the
// engine never mutates (TUPLERESOLVE clones arriving tuples), so
// reading them here races nothing.
func (p *persister) appendBatch(ops []relation.Delta, version uint64) error {
	b := wal.Batch{PrevVersion: p.last, Version: version, Ops: ops}
	payload := b.Encode() // off-lock: overlaps the ticker and group syncer
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return p.broken
	}
	if err := p.log.Append(payload); err != nil {
		p.broken = err
		return err
	}
	p.last = version
	p.appended = version
	return nil
}

// syncNow flushes the log to stable storage; the group-fsync goroutine
// calls it once per log per sync window.
func (p *persister) syncNow() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncLocked()
}

// syncLocked is the shared sync step (committer-driven group sync and
// the interval ticker): on success everything appended so far is known
// durable.
func (p *persister) syncLocked() error {
	if p.broken != nil {
		return p.broken
	}
	if p.log == nil {
		return nil
	}
	if err := p.log.Sync(); err != nil {
		p.broken = err
		return err
	}
	p.synced = p.appended
	return nil
}

// syncedVersion reports the newest journal version known to be on
// stable storage — what the group-fsync ordering test asserts against:
// under the per-batch policy no acknowledged version may exceed it.
func (p *persister) syncedVersion() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.synced
}

// markBroken records a persistence failure discovered outside the
// persister (e.g. the worker failing to capture a rotation snapshot).
func (p *persister) markBroken(err error) {
	p.mu.Lock()
	if p.broken == nil {
		p.broken = err
	}
	p.mu.Unlock()
}

// rotateTo advances to a new snapshot/WAL generation anchored on snap
// and prunes generations older than the previous one. The snapshot is
// captured by the session WORKER at the exact batch boundary that
// triggered the rotation (not here on the committer): the worker may
// already be several passes ahead by the time this runs, and a snapshot
// taken now would be newer than the WAL cursor — the new generation's
// base must equal the last logged record's state. On any failure the
// persister marks itself broken: the session keeps serving, the
// recorded state stops advancing, and the condition surfaces through
// info().
func (p *persister) rotateTo(snap *wal.Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return
	}
	next := p.gen + 1
	if err := wal.WriteSnapshotFile(snapPath(p.dir, next), snap); err != nil {
		p.broken = err
		return
	}
	log, err := wal.Create(walPath(p.dir, next))
	if err != nil {
		p.broken = err
		return
	}
	old := p.log
	p.log = log
	p.gen = next
	p.last = snap.Version
	p.appended = snap.Version
	p.synced = snap.Version // WriteSnapshotFile fsyncs file and directory
	if err := old.Close(); err != nil && p.broken == nil {
		p.broken = err
	}
	// Keep the previous generation as a fallback; drop everything older.
	if next >= 2 {
		pruneGenerations(p.dir, next-2)
	}
}

// rotationCapture is one rotation's boundary image, captured by the
// session worker at the exact batch boundary that triggered it. For a
// memory-backed session it is just the full snapshot; for a disk-backed
// session the snapshot is a slim header and flush holds the dirty pages
// to commit under the new generation. Exactly one of rotate/abort must
// consume it.
type rotationCapture struct {
	snap  *wal.Snapshot
	flush *store.Flush
}

// abort releases an unconsumed capture (purge raced in, the WAL append
// failed, the persister broke): the flush's pinned view and pages are
// handed back so the next rotation carries them.
func (rc *rotationCapture) abort() {
	if rc != nil && rc.flush != nil {
		rc.flush.Abort()
	}
}

// rotateCapture advances to the next generation from a worker-captured
// boundary. Disk-backed sessions commit the page flush first — the
// store's manifest for generation N is durable before the slim snapshot
// that references it — so a crash between the two leaves a readable
// previous generation, never a snapshot pointing at missing pages.
func (p *persister) rotateCapture(rc *rotationCapture) {
	p.mu.Lock()
	if p.broken != nil {
		p.mu.Unlock()
		rc.abort()
		return
	}
	next := p.gen + 1
	p.mu.Unlock()
	if rc.flush != nil {
		// Store generations track snapshot generations one-to-one; the
		// flush commit is the store's own atomic step (manifest rename).
		if err := rc.flush.Commit(next); err != nil {
			p.markBroken(err)
			return
		}
		rc.snap.StoreGen = next
	}
	p.rotateTo(rc.snap)
}

// pruneGenerations removes snapshot and WAL files of generations <= max.
func pruneGenerations(dir string, max uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		gen, kind, ok := parseGenName(e.Name())
		if ok && kind != "" && gen <= max {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// parseGenName splits "snap-0000000001.snap" / "wal-0000000001.log"
// into (generation, kind); ok is false for anything else (including the
// .tmp siblings of in-flight snapshot writes).
func parseGenName(name string) (gen uint64, kind string, ok bool) {
	switch {
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		kind = "snap"
		name = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind = "wal"
		name = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	default:
		return 0, "", false
	}
	gen, err := strconv.ParseUint(name, 10, 64)
	if err != nil {
		return 0, "", false
	}
	return gen, kind, true
}

// close ends persistence gracefully (drain/shutdown): sync, close, keep
// the data for the next boot.
func (p *persister) close() {
	p.stopTicker()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log != nil {
		if err := p.log.Close(); err != nil && p.broken == nil {
			p.broken = err
		}
		p.log = nil
	}
	if p.st != nil {
		p.st.Close()
		p.st = nil
	}
}

// destroy ends persistence and deletes the session's directory — the
// durable counterpart of DELETE /v1/sessions/{name}: a removed session
// must not resurrect on the next boot.
func (p *persister) destroy() {
	p.stopTicker()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log != nil {
		p.log.Close()
		p.log = nil
	}
	if p.st != nil {
		p.st.Close()
		p.st = nil
	}
	os.RemoveAll(p.dir)
}

func (p *persister) stopTicker() {
	if p.tick != nil {
		close(p.tick)
		p.tick = nil
	}
}

// storeStats reports the page store's stats, or nil for memory-backed
// (or closed) sessions; session listings and /metrics render it.
func (p *persister) storeStats() *store.Stats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st := p.st
	p.mu.Unlock()
	if st == nil {
		return nil
	}
	s := st.Stats()
	return &s
}

// status renders the persistence state for session listings.
func (p *persister) status() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return "error: " + p.broken.Error()
	}
	return "ok"
}

// restorePaged rebuilds a disk-backed session from a slim snapshot
// header: open the page store at the referenced generation, stream its
// rows in the persisted physical order (with the persisted intern
// dictionary preloaded so every ValueID reproduces exactly), and
// re-attach the store so the WAL replay that follows writes through
// again. No relation-sized snapshot record is ever decoded — recovery
// reads the order file once and only the pages it names.
func restorePaged(cfg *persistConfig, dir, name string, snap *wal.Snapshot, workers int) (*increpair.Session, error) {
	st, err := store.Open(filepath.Join(dir, storeDirName), snap.StoreGen, len(snap.Attrs), cfg.storeOpts)
	if err != nil {
		return nil, fmt.Errorf("server: recover %s: store gen %d: %w", name, snap.StoreGen, err)
	}
	src, err := st.Source()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("server: recover %s: store gen %d: %w", name, snap.StoreGen, err)
	}
	sess, err := increpair.RestoreFromSnapshotSource(snap, src, workers, st.Strings())
	src.Close()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("server: recover %s: store gen %d: %w", name, snap.StoreGen, err)
	}
	if err := sess.AttachStore(st, false); err != nil {
		sess.Close()
		st.Close()
		return nil, err
	}
	return sess, nil
}

// recoverSession rebuilds one session from its directory: newest
// readable snapshot generation first, then WAL replay across that and
// any later generations. It returns the restored session plus a
// persister positioned to continue appending, and the quota mark read
// from the chosen snapshot (Set only for explicit per-session
// overrides). warn, when non-nil,
// reports acknowledged records that could NOT be replayed — payload
// corruption mid-log or a gap between generations — after which the
// session still serves, re-anchored on the recovered prefix; the
// operator must hear about the dropped suffix. (A torn *tail* in the
// newest log is not warned: those bytes never completed their append,
// so nothing acknowledged is behind them.) workers > 0 overrides the
// persisted per-session engine worker count.
func recoverSession(cfg *persistConfig, name string, workers int) (*increpair.Session, *persister, wal.Quota, error, error) {
	dir := filepath.Join(cfg.dir, name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, wal.Quota{}, nil, err
	}
	var snapGens, walGens []uint64
	for _, e := range ents {
		gen, kind, ok := parseGenName(e.Name())
		if !ok {
			continue
		}
		if kind == "snap" {
			snapGens = append(snapGens, gen)
		} else {
			walGens = append(walGens, gen)
		}
	}
	if len(snapGens) == 0 {
		return nil, nil, wal.Quota{}, nil, fmt.Errorf("server: recover %s: no snapshot found", name)
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	var (
		sess    *increpair.Session
		baseGen uint64
		quota   wal.Quota
		lastErr error
	)
	for _, g := range snapGens {
		snap, err := wal.ReadSnapshotFile(snapPath(dir, g))
		if err != nil {
			lastErr = err
			continue
		}
		if snap.Name != "" && snap.Name != name {
			lastErr = fmt.Errorf("server: recover %s: snapshot names session %q", name, snap.Name)
			continue
		}
		var s *increpair.Session
		if snap.StoreKind == wal.StorePaged {
			// Slim header: the rows live in the page store at the
			// referenced generation. Any store damage fails THIS
			// generation only — the loop falls back to the previous
			// snapshot, exactly as for a corrupt snapshot file.
			s, err = restorePaged(cfg, dir, name, snap, workers)
		} else {
			s, err = increpair.RestoreFromSnapshot(snap, workers)
		}
		if err != nil {
			lastErr = err
			continue
		}
		sess, baseGen, quota = s, g, snap.Quota
		break
	}
	if sess == nil {
		return nil, nil, wal.Quota{}, nil, fmt.Errorf("server: recover %s: no usable snapshot: %w", name, lastErr)
	}

	// Replay the logs from the restored generation forward. The version
	// cursor skips records already contained in the snapshot, so replay
	// is correct even when the chosen snapshot is newer than a log's
	// records (or older, after a fallback to the previous generation).
	var (
		tip      *wal.Log // open log of the newest generation, append-ready
		damaged  bool
		warn     error
		replayed int // records applied into the tip generation's session
	)
	for i, g := range walGens {
		if g < baseGen {
			continue
		}
		last := i == len(walGens)-1
		log, payloads, discarded, err := wal.Open(walPath(dir, g))
		if err != nil {
			damaged = true
			warn = fmt.Errorf("server: recover %s: wal generation %d unreadable (%w); later records discarded", name, g, err)
			break
		}
		if discarded > 0 {
			damaged = true
			if !last {
				// Tail damage in a non-final generation is a hole:
				// the next generation's records cannot chain onto it.
				warn = fmt.Errorf("server: recover %s: wal generation %d has a damaged tail (%d bytes) with later generations present; those are discarded", name, g, discarded)
			}
		}
		replayFailed := false
		replayed = 0
		for ri, payload := range payloads {
			b, derr := wal.DecodeBatch(payload)
			if derr == nil {
				var applied bool
				if applied, derr = sess.ReplayBatch(b); derr == nil {
					if applied {
						replayed++
					}
					continue
				}
			}
			// Payload-level damage: everything from here on is
			// untrusted, in this and any later generation — and unlike
			// a torn tail these records WERE acknowledged, so say so.
			replayFailed = true
			warn = fmt.Errorf("server: recover %s: wal generation %d record %d does not replay (%w); this and later acknowledged records are discarded", name, g, ri, derr)
			break
		}
		if replayFailed {
			log.Close()
			damaged = true
			break
		}
		if last && !damaged {
			tip = log // keep the handle: appends continue here
		} else {
			log.Close()
		}
	}

	v := sess.Snapshot().Version
	p := &persister{cfg: cfg, dir: dir, name: name, st: sess.Store(), last: v, appended: v, synced: v}
	if tip != nil {
		p.gen = walGens[len(walGens)-1]
		p.log = tip
		// Count the replayed records against the rotation budget: a
		// server that crash-loops just under SnapshotEvery fresh
		// batches per life must still rotate, or the tip WAL (and
		// every boot's replay) would grow without bound.
		p.sinceSnap = replayed
		p.startTicker()
		return sess, p, quota, warn, nil
	}
	// No appendable tip (damage, or the newest WAL is missing): start a
	// fresh generation whose snapshot captures the recovered state.
	next := uint64(0)
	if len(walGens) > 0 && walGens[len(walGens)-1] >= snapGens[0] {
		next = walGens[len(walGens)-1] + 1
	} else {
		next = snapGens[0] + 1
	}
	// closeRecovered releases everything the failed re-anchor opened:
	// the session, and the page store it may have re-attached.
	closeRecovered := func() {
		sess.Close()
		if st := sess.Store(); st != nil {
			st.Close()
		}
	}
	var snap *wal.Snapshot
	if sess.Store() != nil {
		// Disk-backed re-anchor: commit the replay's dirty pages as store
		// generation next, then write the slim snapshot referencing it.
		snap2, fl, berr := sess.PersistBoundary(name)
		if berr == nil {
			if berr = fl.Commit(next); berr == nil {
				snap2.StoreGen = next
			}
		}
		if berr != nil {
			closeRecovered()
			return nil, nil, wal.Quota{}, nil, berr
		}
		snap = snap2
	} else {
		var perr error
		if snap, perr = sess.PersistSnapshot(name); perr != nil {
			closeRecovered()
			return nil, nil, wal.Quota{}, nil, perr
		}
	}
	snap.Quota = quota // the override survives the re-anchoring rotation
	if err := wal.WriteSnapshotFile(snapPath(dir, next), snap); err != nil {
		closeRecovered()
		return nil, nil, wal.Quota{}, nil, err
	}
	log, err := wal.Create(walPath(dir, next))
	if err != nil {
		closeRecovered()
		return nil, nil, wal.Quota{}, nil, err
	}
	p.gen = next
	p.log = log
	p.last = snap.Version
	p.appended = snap.Version
	p.synced = snap.Version
	if next >= 2 {
		pruneGenerations(p.dir, next-2)
	}
	p.startTicker()
	return sess, p, quota, warn, nil
}

// Recover scans Options.DataDir and re-hosts every persisted session.
// It must run before the server accepts traffic. Sessions that cannot
// be recovered at all are skipped, and sessions recovered with
// acknowledged records discarded (mid-log corruption, generation gaps)
// still come up but are reported — both land in the joined error, so
// one corrupt tenant never keeps the rest offline and the operator
// still hears about every dropped batch. Unrecoverable directories are
// left untouched for inspection (creating a session under the same
// name replaces them).
func (s *Server) Recover() (restored int, err error) {
	cfg := s.reg.persist
	if cfg == nil {
		return 0, nil
	}
	ents, readErr := os.ReadDir(cfg.dir)
	if readErr != nil {
		if errors.Is(readErr, os.ErrNotExist) {
			return 0, nil
		}
		return 0, readErr
	}
	var errs []error
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		sess, p, wq, warn, rerr := recoverSession(cfg, name, 0)
		if rerr != nil {
			errs = append(errs, rerr)
			continue
		}
		if warn != nil {
			errs = append(errs, warn)
		}
		// An explicit per-session override persisted in the snapshot
		// beats the boot-time defaults; inherited quotas re-resolve.
		quota := s.reg.quota
		if wq.Set {
			quota = quotaFromWAL(wq)
		}
		// A session whose directory carries the follower marker was a
		// replica when this node went down; re-host it as one, so the
		// true primary's shipping stream resumes (healing any missed
		// batches by gap-detected resync) instead of hitting a phantom
		// primary and stopping. On a node rebooted WITHOUT peers the
		// marker is ignored — and cleared by adopt — because a follower
		// with no cluster would refuse writes forever.
		role := rolePrimary
		if s.reg.cluster != nil && readRoleMarker(filepath.Join(cfg.dir, name)) {
			role = roleFollower
		}
		if _, cerr := s.reg.adopt(name, sess, sess.Current().Schema(), p, quota, role); cerr != nil {
			p.close()
			sess.Close()
			errs = append(errs, fmt.Errorf("server: recover %s: %w", name, cerr))
			continue
		}
		restored++
	}
	return restored, errors.Join(errs...)
}
