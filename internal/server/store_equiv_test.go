package server

// The disk-vs-memory equivalence battery (PR 10's acceptance gate): a
// session spilled to the page store must be indistinguishable from a
// memory-backed one through every read surface — CSV dumps, violation
// listings and stats fingerprints compare with bytes.Equal, not
// semantically — at every supported worker count, and a disk-backed
// tenant killed at any batch boundary must recover byte-identical and
// keep serving. The storage backend is an implementation detail of the
// durability boundary; the moment it becomes observable in a response
// body, determinism-by-construction is broken.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// createStored opens a session with an explicit storage backend and the
// given engine options.
func createStored(t *testing.T, base, name, storeKind string, wo *WireOptions) {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name:    name,
		CFDs:    recoveryCFDs,
		BaseCSV: recoveryBase,
		Options: wo,
		Store:   storeKind,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s (store=%q): %d: %s", name, storeKind, resp.StatusCode, body)
	}
}

// statsFingerprint renders the comparable per-session state as one
// byte string: the published snapshot (counters, cost, violation count)
// plus the violation listing body.
func statsFingerprint(t *testing.T, base, name string) []byte {
	t.Helper()
	dump, snap, vios := sessionState(t, base, name)
	var b bytes.Buffer
	fmt.Fprintf(&b, "snap=%+v\nvios=%s\ndumplen=%d\n", snap, vios, len(dump))
	return b.Bytes()
}

// TestDiskMemEquivalenceAcrossWorkers drives the identical batch
// sequence — repaired and clean inserts, deletes, sets — through a
// memory-backed and a disk-backed service at workers 0/1/2/4 and
// requires byte-identical dumps, violation listings and stats.
func TestDiskMemEquivalenceAcrossWorkers(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			wo := &WireOptions{Ordering: "linear", Workers: workers}
			// Same session name on two servers, so response bodies that
			// embed the name still compare byte-for-byte.
			const name = "t"
			opts := Options{Fsync: FsyncOff, SnapshotEvery: 3, QueueDepth: 8}
			optsMem, optsDisk := opts, opts
			optsMem.DataDir = t.TempDir()
			optsDisk.DataDir = t.TempDir()
			_, tsMem := newTestService(t, optsMem)
			_, tsDisk := newTestService(t, optsDisk)

			createStored(t, tsMem.URL, name, "mem", wo)
			createStored(t, tsDisk.URL, name, "disk", wo)

			drive := func(base string) {
				for i := 0; i < 8; i++ { // crosses SnapshotEvery=3 rotations
					applyRecovery(t, base, name, i)
				}
				// One mixed batch: delete the first streamed tuple, dirty
				// one surviving cell.
				resp, body := do(t, "POST", base+"/v1/sessions/"+name+"/apply", ApplyRequest{
					Deletes: []int64{5},
					Sets:    []WireSet{{ID: 6, Attr: "CT", Value: strp("PHI")}},
				})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("mixed apply: %d: %s", resp.StatusCode, body)
				}
			}
			drive(tsMem.URL)
			drive(tsDisk.URL)

			memDump, memSnap, memVios := sessionState(t, tsMem.URL, name)
			diskDump, diskSnap, diskVios := sessionState(t, tsDisk.URL, name)
			if !bytes.Equal(memDump, diskDump) {
				t.Fatalf("dump diverged across backends:\nmem:\n%s\ndisk:\n%s", memDump, diskDump)
			}
			if memSnap != diskSnap {
				t.Fatalf("snapshot diverged across backends:\nmem  %+v\ndisk %+v", memSnap, diskSnap)
			}
			if memVios != diskVios {
				t.Fatalf("violations diverged across backends:\nmem  %s\ndisk %s", memVios, diskVios)
			}
			if !bytes.Equal(statsFingerprint(t, tsMem.URL, name), statsFingerprint(t, tsDisk.URL, name)) {
				t.Fatal("stats fingerprints diverged across backends")
			}

			// The backend IS observable in the one place it should be:
			// the disk session's listing carries store stats, the
			// memory session's stays byte-stable without them.
			var memInfo, diskInfo SessionInfo
			_, body := do(t, "GET", tsMem.URL+"/v1/sessions/"+name, nil)
			if err := json.Unmarshal(body, &memInfo); err != nil {
				t.Fatal(err)
			}
			_, body = do(t, "GET", tsDisk.URL+"/v1/sessions/"+name, nil)
			if err := json.Unmarshal(body, &diskInfo); err != nil {
				t.Fatal(err)
			}
			if memInfo.Store != nil {
				t.Fatalf("memory-backed listing reports store stats: %+v", memInfo.Store)
			}
			if diskInfo.Store == nil {
				t.Fatal("disk-backed listing reports no store stats")
			}
			if diskInfo.Store.Kind != "disk" || diskInfo.Store.Gen == 0 || diskInfo.Store.Tuples == 0 {
				t.Fatalf("disk store stats never advanced: %+v", diskInfo.Store)
			}
		})
	}
}

// TestDiskRecoveryKillAtEveryBoundary kills a disk-backed tenant (no
// drain, no graceful close — the in-process equivalent of kill -9)
// after every batch boundary from 0 through 7 and requires recovery to
// reproduce the exact pre-kill state and keep serving. FsyncBatch makes
// the acknowledged state the durable state, so the captured responses
// are the contract.
func TestDiskRecoveryKillAtEveryBoundary(t *testing.T) {
	const name = "crashy"
	const total = 7
	for k := 0; k <= total; k++ {
		t.Run(fmt.Sprintf("boundary=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{DataDir: dir, Fsync: FsyncBatch, SnapshotEvery: 2, QueueDepth: 8}

			// First life: never drained, never shut down — its goroutines
			// are simply abandoned, exactly what SIGKILL leaves behind
			// minus the page cache (shared here, as on a real crash).
			s1 := New(opts)
			ts1 := httptest.NewServer(s1.Handler())
			createStored(t, ts1.URL, name, "disk", &WireOptions{Ordering: "linear", Workers: 2})
			for i := 0; i < k; i++ {
				applyRecovery(t, ts1.URL, name, i)
			}
			wantDump, wantSnap, wantVios := sessionState(t, ts1.URL, name)
			ts1.Close() // kill: the listener dies mid-life, nothing flushes

			s2, ts2 := newTestService(t, opts)
			if n, err := s2.Recover(); err != nil || n != 1 {
				t.Fatalf("recover after kill at boundary %d: n=%d err=%v", k, n, err)
			}
			gotDump, gotSnap, gotVios := sessionState(t, ts2.URL, name)
			if !bytes.Equal(gotDump, wantDump) {
				t.Fatalf("boundary %d: dump diverged after kill\nwant:\n%s\ngot:\n%s", k, wantDump, gotDump)
			}
			if gotSnap != wantSnap {
				t.Fatalf("boundary %d: snapshot diverged after kill\nwant %+v\ngot  %+v", k, wantSnap, gotSnap)
			}
			if gotVios != wantVios {
				t.Fatalf("boundary %d: violations diverged after kill:\nwant %s\ngot  %s", k, wantVios, gotVios)
			}

			// The recovered tenant is a working disk-backed session, not a
			// read-only relic: it takes writes, persists them, and survives
			// a second (graceful) bounce.
			applyRecovery(t, ts2.URL, name, 100+k)
			d2, _, _ := sessionState(t, ts2.URL, name)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s2.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			ts2.Close()

			s3, ts3 := newTestService(t, opts)
			if n, err := s3.Recover(); err != nil || n != 1 {
				t.Fatalf("second recovery: n=%d err=%v", n, err)
			}
			d3, _, _ := sessionState(t, ts3.URL, name)
			if !bytes.Equal(d3, d2) {
				t.Fatalf("boundary %d: post-recovery batch did not survive the next bounce", k)
			}
		})
	}
}

// TestDiskStoreFilesOnDisk sanity-checks the physical layout: a
// disk-backed tenant owns a store/ subdirectory with a manifest and
// page files, its snapshots are slim (no inline tuple payload), and
// removal deletes all of it.
func TestDiskStoreFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: FsyncOff, SnapshotEvery: 2, QueueDepth: 8}
	s, ts := newTestService(t, opts)
	createStored(t, ts.URL, "phys", "disk", nil)
	for i := 0; i < 5; i++ {
		applyRecovery(t, ts.URL, "phys", i)
	}

	storeDir := filepath.Join(dir, "phys", "store")
	ents, err := os.ReadDir(storeDir)
	if err != nil {
		t.Fatalf("disk-backed tenant has no store dir: %v", err)
	}
	var manifests, pages int
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "manifest-"):
			manifests++
		case strings.HasPrefix(e.Name(), "pages-"):
			pages++
		}
	}
	if manifests == 0 || pages == 0 {
		t.Fatalf("store dir holds %d manifests, %d page files; want both > 0 (entries: %v)", manifests, pages, ents)
	}

	// Slim snapshots: with 9+ tuples resident, the snapshot file must
	// stay far below what inline tuple encoding would need — the page
	// store holds the rows.
	sents, err := os.ReadDir(filepath.Join(dir, "phys"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sents {
		if !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 4096 {
			t.Fatalf("snapshot %s is %d bytes — the tuple payload leaked inline", e.Name(), fi.Size())
		}
	}

	resp, body := do(t, "DELETE", ts.URL+"/v1/sessions/phys", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d: %s", resp.StatusCode, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "phys")); !os.IsNotExist(err) {
		t.Fatalf("removed tenant's directory (store included) still exists: %v", err)
	}
	_ = s
}
