package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
)

// Registry errors surfaced to HTTP status codes by the handler layer.
var (
	// ErrNotFound reports an unknown session name.
	ErrNotFound = errors.New("server: no such session")
	// ErrExists reports a create with an already-taken name.
	ErrExists = errors.New("server: session already exists")
	// ErrDraining reports an operation against a draining service or a
	// session being shut down.
	ErrDraining = errors.New("server: draining")
	// ErrBacklog reports an async ingest rejected because the session's
	// work queue is full — the wire layer's backpressure signal.
	ErrBacklog = errors.New("server: session queue is full")
)

const registryShards = 16

// Registry is the sharded session table: name → hosted session, spread
// over fixed shards by name hash so concurrent create/lookup/remove on
// different sessions rarely contend on one lock. Each hosted session
// owns a bounded work queue drained by a dedicated worker goroutine —
// the session's single writer by construction — so HTTP handlers never
// run an engine pass themselves; they enqueue and either wait for the
// reply (apply) or return immediately (ingest).
type Registry struct {
	queueDepth int

	// persist, when non-nil, gives every session a durability sidecar
	// (WAL + snapshots under persist.dir; see persist.go). nil hosts
	// sessions purely in memory, as before PR 5.
	persist *persistConfig

	shards [registryShards]shard

	// draining flips once, when Drain begins: creates and new work are
	// refused while in-flight queues run dry.
	draining atomic.Bool

	// Service-wide counters (see MetricsResponse).
	passes    atomic.Uint64 // engine passes completed
	batches   atomic.Uint64 // client batches accepted
	coalesced atomic.Uint64 // client batches merged into a shared pass
	rejected  atomic.Uint64 // ingests refused with ErrBacklog
	tuples    atomic.Uint64 // tuples inserted
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*hosted
}

// NewRegistry builds an empty registry; queueDepth bounds each session's
// work queue (minimum 1).
func NewRegistry(queueDepth int) *Registry {
	if queueDepth < 1 {
		queueDepth = 1
	}
	r := &Registry{queueDepth: queueDepth}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*hosted)
	}
	return r
}

func (r *Registry) shard(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &r.shards[h.Sum32()%registryShards]
}

// hosted is one session plus its service furniture: the work queue, the
// worker goroutine's lifecycle channels, the event fan-out and a bounded
// latency window.
type hosted struct {
	name   string
	schema *relation.Schema
	attrs  []string
	sess   *increpair.Session

	// pers is the session's durability sidecar (nil when the registry
	// runs in memory); purge tells the exiting worker to delete the
	// session's on-disk data instead of keeping it for the next boot —
	// set by Remove, never by Drain.
	pers  *persister
	purge atomic.Bool

	queue chan job
	// quit is closed to ask the worker to drain and exit; done is closed
	// by the worker after the queue is drained and the session closed.
	quit     chan struct{}
	done     chan struct{}
	quitOnce sync.Once
	// sendMu fences async enqueues against the worker's final drain: an
	// ingest holds the read side across its check-quit-then-send window,
	// and the exiting worker takes the write side (after quit is closed)
	// before its last sweep of the queue. Every 202-accepted batch is
	// therefore either swept or never accepted — no silent drops.
	// Synchronous applies don't need the fence: they wait on a reply and
	// detect an unprocessed job via done.
	sendMu sync.RWMutex

	seq  atomic.Uint64 // engine passes completed on this session
	subs subscribers
	lat  latWindow
}

// job is one unit of queued work. Async insert-only jobs (reply == nil,
// coalescable) may be merged with queued neighbours into a single
// engine pass; synchronous jobs always get a pass of their own so their
// reply is byte-identical to the equivalent in-process ApplyOps call.
type job struct {
	deletes     []relation.TupleID
	sets        []increpair.SetOp
	inserts     []*relation.Tuple
	coalescable bool
	// extra counts client batches folded into this job beyond the first
	// (set by the worker while coalescing).
	extra int
	reply chan jobReply
}

type jobReply struct {
	res     *increpair.Result
	deleted int
	seq     uint64
	// snap is the session snapshot right after this job's pass — the
	// pass's own state, not whatever is current when the handler runs.
	snap increpair.Snapshot
	err  error
}

// Create opens a session under name and starts its worker. The caller
// supplies a ready increpair.Session (built from the decoded create
// request) and the schema used for wire encoding and attribute lookup.
func (r *Registry) Create(name string, sess *increpair.Session, schema *relation.Schema) (*hosted, error) {
	return r.register(name, sess, schema, nil)
}

// adopt re-hosts a recovered session with its existing persister —
// Create's boot-time sibling, which must not write a fresh generation 0
// over the recovered files.
func (r *Registry) adopt(name string, sess *increpair.Session, schema *relation.Schema, p *persister) (*hosted, error) {
	return r.register(name, sess, schema, p)
}

func (r *Registry) register(name string, sess *increpair.Session, schema *relation.Schema, p *persister) (*hosted, error) {
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Checked under the shard lock: either this create is observed by
	// Drain's sweep of the shard (and drained with everything else), or
	// it sees draining and refuses. Checked before the lock, a create
	// could slip in after the sweep and leak a live worker past Drain.
	if r.draining.Load() {
		return nil, ErrDraining
	}
	if _, dup := sh.m[name]; dup {
		return nil, ErrExists
	}
	if p == nil && r.persist != nil {
		// Creating the durability sidecar under the shard lock keeps a
		// racing create of the same name from touching the same
		// directory. Creates are rare; the lock is per-shard.
		var err error
		if p, err = newPersister(r.persist, name, sess); err != nil {
			return nil, fmt.Errorf("server: persist %s: %w", name, err)
		}
	}
	h := &hosted{
		name:   name,
		schema: schema,
		attrs:  schema.Attrs(),
		sess:   sess,
		pers:   p,
		queue:  make(chan job, r.queueDepth),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	sh.m[name] = h
	go h.run(r)
	return h, nil
}

// Get returns the hosted session or ErrNotFound.
func (r *Registry) Get(name string) (*hosted, error) {
	sh := r.shard(name)
	sh.mu.RLock()
	h := sh.m[name]
	sh.mu.RUnlock()
	if h == nil {
		return nil, ErrNotFound
	}
	return h, nil
}

// List returns the hosted sessions in name order.
func (r *Registry) List() []*hosted {
	var out []*hosted
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, h := range sh.m {
			out = append(out, h)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Apply enqueues a synchronous batch on h and waits for its engine
// pass. The reply is exactly what the equivalent in-process ApplyOps
// returned. Taking the resolved session — not a name — matters: the
// caller decoded the batch against h's schema, and a name lookup here
// could resolve a different session if the name was deleted and
// re-created mid-request.
func (r *Registry) Apply(ctx context.Context, h *hosted, deletes []relation.TupleID, sets []increpair.SetOp, inserts []*relation.Tuple) (jobReply, error) {
	j := job{deletes: deletes, sets: sets, inserts: inserts, reply: make(chan jobReply, 1)}
	select {
	case h.queue <- j:
	case <-h.quit:
		return jobReply{}, ErrDraining
	case <-ctx.Done():
		return jobReply{}, ctx.Err()
	}
	r.batches.Add(1)
	select {
	case rep := <-j.reply:
		return rep, nil
	case <-h.done:
		// The worker drained the queue and exited; if our job was
		// processed during the drain its reply is already buffered.
		select {
		case rep := <-j.reply:
			return rep, nil
		default:
			return jobReply{}, ErrDraining
		}
	case <-ctx.Done():
		return jobReply{}, ctx.Err()
	}
}

// Ingest enqueues an asynchronous insert-only batch on h. It never
// blocks: a full queue returns ErrBacklog immediately (the caller maps
// it to 429), which is the service's backpressure signal. Like Apply it
// takes the resolved session so the batch lands where it was decoded.
func (r *Registry) Ingest(h *hosted, inserts []*relation.Tuple) error {
	j := job{inserts: inserts, coalescable: true}
	// Both the quit check and the send happen under the fence, so the
	// worker's final drain cannot slip between them (see hosted.sendMu).
	h.sendMu.RLock()
	defer h.sendMu.RUnlock()
	select {
	case <-h.quit:
		return ErrDraining
	default:
	}
	select {
	case h.queue <- j:
		r.batches.Add(1)
		return nil
	default:
		r.rejected.Add(1)
		return ErrBacklog
	}
}

// Remove drains and closes one session, waiting up to ctx for its queue
// to run dry, and deletes it from the table.
func (r *Registry) Remove(ctx context.Context, name string) error {
	sh := r.shard(name)
	sh.mu.Lock()
	h := sh.m[name]
	if h == nil {
		sh.mu.Unlock()
		return ErrNotFound
	}
	// A deleted session must not resurrect on the next boot: the
	// exiting worker removes its on-disk data after the final drain.
	// purge is set BEFORE the name is freed (still under the shard
	// lock), so a create that wins the freed name happens-after the
	// flag is visible — the draining worker's persister checks it and
	// stops writing into a directory the new tenant now owns.
	h.purge.Store(true)
	delete(sh.m, name)
	sh.mu.Unlock()
	h.quitOnce.Do(func() { close(h.quit) })
	select {
	case <-h.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain shuts the whole registry down gracefully: new creates and new
// work are refused, every session worker finishes its queued batches,
// closes its session, and Drain returns when all workers have exited
// (or ctx expires first).
func (r *Registry) Drain(ctx context.Context) error {
	r.draining.Store(true)
	var hs []*hosted
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n, h := range sh.m {
			hs = append(hs, h)
			delete(sh.m, n)
		}
		sh.mu.Unlock()
	}
	for _, h := range hs {
		h.quitOnce.Do(func() { close(h.quit) })
	}
	for _, h := range hs {
		select {
		case <-h.done:
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %w", ctx.Err())
		}
	}
	return nil
}

// run is the session worker: the hosted session's single writer. It
// applies queued jobs in arrival order, coalescing runs of consecutive
// async insert-only batches into one engine pass, and on quit drains
// the queue before closing the session — no accepted batch is dropped.
func (h *hosted) run(r *Registry) {
	defer close(h.done)
	defer h.subs.closeAll()
	defer h.sess.Close()
	defer h.finishPersist(r) // runs first: after the final drained batch
	for {
		select {
		case j := <-h.queue:
			h.dispatch(r, j)
		case <-h.quit:
			// Fence out async producers: once this Lock is acquired,
			// every in-flight Ingest has either enqueued (and is swept
			// below) or will observe the closed quit and refuse. Sync
			// applies may still race the sweep, but they detect an
			// unprocessed job through done and fail loudly.
			h.sendMu.Lock()
			h.sendMu.Unlock() //nolint:staticcheck // barrier, not critical section
			for {
				select {
				case j := <-h.queue:
					h.dispatch(r, j)
				default:
					return
				}
			}
		}
	}
}

// dispatch runs one queued job, first folding any directly following
// coalescable jobs into it: their inserts concatenate in arrival order
// and the whole run is repaired by a single engine pass. A synchronous
// job is never folded — its reply must match a dedicated in-process
// call — so a sync job encountered while folding just flushes the
// accumulated pass and runs next.
func (h *hosted) dispatch(r *Registry, j job) {
	for j.coalescable {
		var next job
		select {
		case next = <-h.queue:
		default:
			h.apply(r, j, 1+j.extra)
			return
		}
		if next.coalescable {
			j.inserts = append(j.inserts, next.inserts...)
			j.extra++
			r.coalesced.Add(1)
			continue
		}
		h.apply(r, j, 1+j.extra)
		j = next
	}
	h.apply(r, j, 1)
}

// apply runs one engine pass for job j (which may represent several
// coalesced client batches), logs it to the WAL, records latency,
// replies if the job was synchronous, and broadcasts the pass event.
// The WAL commit happens before the reply is sent: under the per-batch
// fsync policy an acknowledged batch is on disk.
func (h *hosted) apply(r *Registry, j job, batches int) {
	start := time.Now()
	res, deleted, err := h.sess.ApplyOps(j.deletes, j.sets, j.inserts)
	snap := h.sess.Snapshot()
	if h.pers != nil {
		if err == nil {
			h.pers.commit(h, j, snap.Version)
		} else {
			// The failed pass may have mutated state no WAL record
			// describes; re-anchor the on-disk image on a fresh snapshot.
			h.pers.resync(h)
		}
	}
	h.lat.record(time.Since(start))
	var seq uint64
	if err == nil {
		seq = h.seq.Add(1)
		r.passes.Add(1)
		r.tuples.Add(uint64(len(res.Inserted)))
	}
	if j.reply != nil {
		j.reply <- jobReply{res: res, deleted: deleted, seq: seq, snap: snap, err: err}
	}
	if err != nil {
		return
	}
	h.subs.broadcast(Event{
		Session:   h.name,
		Seq:       seq,
		Coalesced: batches,
		Inserted:  len(res.Inserted),
		Deleted:   deleted,
		Dirty:     changedCells(res, h.attrs),
		Snapshot:  encodeSnapshot(snap),
	})
}

// finishPersist ends the session's durability on worker exit: purge
// (Remove) deletes the on-disk data, drain keeps it for the next boot.
// The deletion happens under the name's shard lock and only if this
// hosted session still owns the name: Remove frees the name before the
// worker finishes draining (it may wait out a context and return
// early), so a client can have re-created the session by now — and the
// new tenant's freshly written directory must not be swept away by the
// old worker.
func (h *hosted) finishPersist(r *Registry) {
	if h.pers == nil {
		return
	}
	if !h.purge.Load() {
		h.pers.close()
		return
	}
	sh := r.shard(h.name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur := sh.m[h.name]; cur != nil && cur != h {
		// Superseded: a new session took the name, and newPersister
		// rebuilt the directory from scratch under this same lock.
		// Close our handles; the files they point to were already
		// unlinked by that rebuild.
		h.pers.close()
		return
	}
	h.pers.destroy()
}

// latWindow keeps a bounded ring of recent engine-pass latencies; big
// enough for meaningful percentiles, small enough to never grow.
type latWindow struct {
	mu   sync.Mutex
	ring [1024]time.Duration
	n    int // total recorded
}

func (l *latWindow) record(d time.Duration) {
	l.mu.Lock()
	l.ring[l.n%len(l.ring)] = d
	l.n++
	l.mu.Unlock()
}

// window returns a copy of the recorded latencies (at most the ring
// size, the most recent ones).
func (l *latWindow) window() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]time.Duration, n)
	copy(out, l.ring[:n])
	return out
}

// LatencySummary summarizes a latency sample into the wire shape
// (nearest-rank percentiles in milliseconds); it sorts all in place.
// Shared by /v1/metrics and the workload load driver so both report
// identically defined p50/p99.
func LatencySummary(all []time.Duration) *WireLatency {
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	return &WireLatency{
		Count: len(all),
		P50ms: pick(0.50),
		P99ms: pick(0.99),
		Maxms: float64(all[len(all)-1]) / float64(time.Millisecond),
	}
}
