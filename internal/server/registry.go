package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfdclean/internal/cluster/ship"
	"cfdclean/internal/increpair"
	"cfdclean/internal/metrics"
	"cfdclean/internal/relation"
	"cfdclean/internal/store"
	"cfdclean/internal/wal"
)

// Registry errors surfaced to HTTP status codes by the handler layer.
var (
	// ErrNotFound reports an unknown session name.
	ErrNotFound = errors.New("server: no such session")
	// ErrExists reports a create with an already-taken name.
	ErrExists = errors.New("server: session already exists")
	// ErrDraining reports an operation against a draining service or a
	// session being shut down.
	ErrDraining = errors.New("server: draining")
	// ErrBacklog reports an async ingest rejected because the session's
	// work queue is full — the wire layer's backpressure signal.
	ErrBacklog = errors.New("server: session queue is full")
	// ErrFollower reports a write against a session hosted here as a
	// replica — mapped to 421 with the primary's address, the redirect
	// contract of the thin-proxy routing scheme.
	ErrFollower = errors.New("server: session is a replica on this node")
)

// A hosted session's replication role. Primaries run the full write
// pipeline; followers keep their worker idle and advance only by
// applying batches shipped from the primary (ReplicateBatch), until
// promotion flips the role and the session resumes the WAL as its own.
const (
	rolePrimary int32 = iota
	roleFollower
)

const registryShards = 16

// Registry is the sharded session table: name → hosted session, spread
// over fixed shards by name hash so concurrent create/lookup/remove on
// different sessions rarely contend on one lock. Each hosted session is
// a two-stage pipeline: a bounded work queue drained by a dedicated
// worker goroutine — the session's single writer by construction, and
// the ONLY stage serialized per session — feeding a committer goroutine
// that delta-encodes, appends to the WAL, waits out the (group) fsync,
// acknowledges the client, and publishes the pass event. HTTP handlers
// never run an engine pass themselves; they decode and enqueue, then
// either wait for the committer's reply (apply) or return immediately
// (ingest). While the committer of pass N is encoding and syncing, the
// worker is already folding and repairing pass N+1.
type Registry struct {
	queueDepth int

	// coalesceMax, when > 0, caps the tuples folded into one ingest
	// pass; coalesceDelay, when > 0, lets the worker linger that long
	// for more coalescable work before starting a pass on an otherwise
	// empty queue. Zero values reproduce pure adjacency coalescing.
	coalesceMax   int
	coalesceDelay time.Duration

	// persist, when non-nil, gives every session a durability sidecar
	// (WAL + snapshots under persist.dir; see persist.go). nil hosts
	// sessions purely in memory, as before PR 5.
	persist *persistConfig

	// quota is the server-wide default admission-control configuration;
	// a create request may override it per session (see quota.go). The
	// zero value is fully unlimited.
	quota QuotaConfig

	// cluster, when non-nil, is this node's replication and routing
	// state (-peers/-self/-ack; see cluster.go). nil runs single-node,
	// exactly as before PR 9.
	cluster *clusterState
	// installMu serializes replica installs and teardowns so two
	// concurrent snapshot ships for one name cannot interleave their
	// deregister/register pairs.
	installMu sync.Mutex
	// replicaApplied counts batches applied on this node as a follower.
	replicaApplied atomic.Uint64

	// Group fsync: committers under the per-batch policy funnel sync
	// requests through one lazily started goroutine that drains a
	// window of pending requests and issues one Fsync per distinct WAL
	// (see groupSync). The goroutine lives for the process — the
	// registry has no Close — which is one small bounded goroutine per
	// durable registry.
	syncOnce sync.Once
	syncCh   chan syncReq

	shards [registryShards]shard

	// draining flips once, when Drain begins: creates and new work are
	// refused while in-flight queues run dry.
	draining atomic.Bool

	// Service-wide counters (see MetricsResponse).
	passes      atomic.Uint64 // engine passes completed
	batches     atomic.Uint64 // client batches accepted
	coalesced   atomic.Uint64 // client batches merged into a shared pass
	rejected    atomic.Uint64 // ingests refused with ErrBacklog
	rateLimited atomic.Uint64 // writes refused by a tenant quota (429/403)
	tuples      atomic.Uint64 // tuples inserted
	errorPasses atomic.Uint64 // engine passes that returned an error

	// Operational instruments (see OpsMetrics).
	passLat  *metrics.Histogram // engine pass duration, seconds
	walLag   *metrics.Histogram // WAL append→fsync-acknowledged lag, seconds
	foldSize *metrics.Histogram // client batches folded per engine pass
	sseDrops atomic.Uint64      // events dropped at slow SSE subscribers
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*hosted
}

// NewRegistry builds an empty registry; queueDepth bounds each session's
// work queue (minimum 1).
func NewRegistry(queueDepth int) *Registry {
	if queueDepth < 1 {
		queueDepth = 1
	}
	r := &Registry{
		queueDepth: queueDepth,
		passLat:    metrics.NewHistogram(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
		walLag:     metrics.NewHistogram(0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5),
		foldSize:   metrics.NewHistogram(1, 2, 4, 8, 16, 32, 64),
	}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*hosted)
	}
	return r
}

func (r *Registry) shard(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &r.shards[h.Sum32()%registryShards]
}

// hosted is one session plus its service furniture: the work queue, the
// worker and committer goroutines' lifecycle channels, the event
// fan-out and a bounded latency window.
// sessionOps is one session's operational instrumentation: the same
// hot-path histograms the registry keeps service-wide, but per tenant,
// which is what the Prometheus exposition labels by session. Counters
// live here too so a tenant's error and drop history survives scrapes
// (but not the session's removal — registry totals do).
type sessionOps struct {
	passLat     *metrics.Histogram // engine pass duration, seconds
	walLag      *metrics.Histogram // WAL append→fsync-acknowledged lag, seconds
	foldSize    *metrics.Histogram // client batches folded per engine pass
	sseDropped  atomic.Uint64      // events dropped at this session's slow subscribers
	errorPasses atomic.Uint64      // engine passes that returned an error
	rateLimited atomic.Uint64      // writes refused by this session's quota
}

func newSessionOps() *sessionOps {
	return &sessionOps{
		passLat:  metrics.NewHistogram(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
		walLag:   metrics.NewHistogram(0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5),
		foldSize: metrics.NewHistogram(1, 2, 4, 8, 16, 32, 64),
	}
}

type hosted struct {
	name   string
	schema *relation.Schema
	attrs  []string
	sess   *increpair.Session

	// quota is the session's admission-control state (nil limiter
	// fields = unlimited); ops the per-tenant instruments behind the
	// Prometheus exposition.
	quota *quotaState
	ops   *sessionOps

	// pers is the session's durability sidecar (nil when the registry
	// runs in memory); purge tells the exiting worker to delete the
	// session's on-disk data instead of keeping it for the next boot —
	// set by Remove, never by Drain.
	pers  *persister
	purge atomic.Bool
	// sinceSnap is the worker's rotation budget: successful passes since
	// the last snapshot, seeded from recovery's replay count. Worker-only
	// state — the worker must capture the rotation snapshot at the exact
	// batch boundary (the committer may lag several passes behind).
	sinceSnap int

	queue chan job
	// commits carries finished passes, in pass order, from the worker to
	// the committer: the downstream pipeline stage that encodes, logs,
	// syncs, replies and publishes. Closed by the exiting worker after
	// the final drain; committerDone is closed by the exiting committer.
	commits       chan commitItem
	committerDone chan struct{}
	// quit is closed to ask the worker to drain and exit; done is closed
	// by the worker after the queue is drained and the session closed.
	quit     chan struct{}
	done     chan struct{}
	quitOnce sync.Once
	// sendMu fences async enqueues against the worker's final drain: an
	// ingest holds the read side across its check-quit-then-send window,
	// and the exiting worker takes the write side (after quit is closed)
	// before its last sweep of the queue. Every 202-accepted batch is
	// therefore either swept or never accepted — no silent drops.
	// Synchronous applies don't need the fence: they wait on a reply and
	// detect an unprocessed job via done.
	sendMu sync.RWMutex

	seq  atomic.Uint64 // engine passes completed on this session
	subs subscribers
	lat  latWindow
	// views shares pinned read views among this session's streaming
	// readers (see views.go); cursor tokens name versions in it.
	views *viewCache

	// role is the session's replication role (rolePrimary/roleFollower);
	// clustered records whether the hosting registry runs with peers, so
	// info() knows to render the role at all.
	role      atomic.Int32
	clustered bool
	// replMu serializes replicated applies against each other and
	// against promotion: a batch in flight when promote lands either
	// fully applies before the role flips or observes the flip and is
	// refused — never half of each.
	replMu sync.Mutex
	// replSince is the follower-side rotation budget (guarded by
	// replMu), the replica twin of sinceSnap.
	replSince int
	// shipper, when set, streams this primary's committed batches to its
	// follower. Swapped atomically so the committer reads it without a
	// lock; the target rides along for listings and rebalance decisions.
	shipper atomic.Pointer[sessionShipper]
}

// sessionShipper pairs a live shipping stream with its target address.
type sessionShipper struct {
	sp     *ship.Shipper
	target string
}

// job is one unit of queued work. Async insert-only jobs (reply == nil,
// coalescable) may be merged with queued neighbours into a single
// engine pass; synchronous jobs always get a pass of their own so their
// reply is byte-identical to the equivalent in-process ApplyOps call.
type job struct {
	deletes     []relation.TupleID
	sets        []increpair.SetOp
	inserts     []*relation.Tuple
	coalescable bool
	// quiesce marks a sentinel with no engine pass of its own: it rides
	// the queue and the commits channel like any batch, and its reply
	// therefore PROVES every job enqueued before it has been applied and
	// committed — including a 202-accepted ingest the worker was holding
	// in the coalesce linger, which no amount of len(queue) polling can
	// see. Rebalance transfers use it as the positive quiescence signal.
	quiesce bool
	// enqueued is when the job entered the queue (zero for tests that
	// drive dispatch directly); the reply reports the queue wait.
	enqueued time.Time
	// extra counts client batches folded into this job beyond the first
	// (set by the worker while coalescing).
	extra int
	reply chan jobReply
}

type jobReply struct {
	res     *increpair.Result
	deleted int
	seq     uint64
	// snap is the session snapshot right after this job's pass — the
	// pass's own state, not whatever is current when the handler runs.
	snap increpair.Snapshot
	err  error
	// Per-stage timings, surfaced as X-Stage-* response headers (headers
	// only — the body stays byte-identical to an in-process call).
	wait    time.Duration // queue entry → pass start
	engine  time.Duration // the pass itself
	persist time.Duration // pass end → durable and acknowledged
}

// commitItem is one finished engine pass travelling from the worker to
// the committer. The job's op slices are safe to read downstream while
// the worker runs the next pass: the engine never mutates them
// (TUPLERESOLVE clones arriving tuples before insertion), and res/snap
// are immutable after the pass.
type commitItem struct {
	j       job
	batches int // client batches folded into the pass
	rep     jobReply
	version uint64 // journal version after the pass
	// prev is the journal version before the pass — with version it
	// brackets the batch for the replication stream, whose frames carry
	// the same (PrevVersion, Version] chain the WAL uses.
	prev     uint64
	passDone time.Time // when the engine finished; start of persist stage
	// rotate / resync are boundary images the WORKER captured at this
	// exact batch boundary: rotate advances the persister's generation
	// (a routine rotation, or the re-anchor after a failed pass whose
	// partial effects no WAL record can describe); resync is the full
	// inline snapshot the shipper sends a follower after a failed pass —
	// always inline, since a slim disk-backed header carries no rows.
	rotate *rotationCapture
	resync *wal.Snapshot
}

// Create opens a session under name and starts its worker, with the
// registry's default quota. The caller supplies a ready
// increpair.Session (built from the decoded create request) and the
// schema used for wire encoding and attribute lookup.
func (r *Registry) Create(name string, sess *increpair.Session, schema *relation.Schema) (*hosted, error) {
	return r.register(name, sess, schema, nil, r.quota, rolePrimary, store.KindDefault)
}

// CreateWithQuota is Create with a per-session quota override layered
// over the registry defaults (zero fields inherit, negative fields
// lift the default; see resolveQuota).
func (r *Registry) CreateWithQuota(name string, sess *increpair.Session, schema *relation.Schema, wq *WireQuota) (*hosted, error) {
	return r.register(name, sess, schema, nil, resolveQuota(r.quota, wq), rolePrimary, store.KindDefault)
}

// CreateWithStore is CreateWithQuota plus an explicit tuple-storage
// backend for the session; KindDefault inherits the node's -store
// configuration. kind only matters on durable registries — an in-memory
// registry has no persister to host the page store.
func (r *Registry) CreateWithStore(name string, sess *increpair.Session, schema *relation.Schema, wq *WireQuota, kind store.Kind) (*hosted, error) {
	return r.register(name, sess, schema, nil, resolveQuota(r.quota, wq), rolePrimary, kind)
}

// adopt re-hosts a recovered session with its existing persister —
// Create's boot-time sibling, which must not write a fresh generation 0
// over the recovered files. quota is the resolved admission state: an
// explicit override read back from the snapshot header, or the current
// registry defaults; role is the replication role read back from the
// directory's marker (see Server.Recover).
func (r *Registry) adopt(name string, sess *increpair.Session, schema *relation.Schema, p *persister, quota QuotaConfig, role int32) (*hosted, error) {
	return r.register(name, sess, schema, p, quota, role, store.KindDefault)
}

func (r *Registry) register(name string, sess *increpair.Session, schema *relation.Schema, p *persister, quota QuotaConfig, role int32, kind store.Kind) (*hosted, error) {
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Checked under the shard lock: either this create is observed by
	// Drain's sweep of the shard (and drained with everything else), or
	// it sees draining and refuses. Checked before the lock, a create
	// could slip in after the sweep and leak a live worker past Drain.
	if r.draining.Load() {
		return nil, ErrDraining
	}
	if _, dup := sh.m[name]; dup {
		return nil, ErrExists
	}
	if p == nil && r.persist != nil {
		// Creating the durability sidecar under the shard lock keeps a
		// racing create of the same name from touching the same
		// directory. Creates are rare; the lock is per-shard.
		var err error
		if p, err = newPersister(r.persist, name, sess, walQuota(quota), kind); err != nil {
			return nil, fmt.Errorf("server: persist %s: %w", name, err)
		}
	}
	h := &hosted{
		name:          name,
		schema:        schema,
		attrs:         schema.Attrs(),
		sess:          sess,
		quota:         newQuotaState(quota),
		ops:           newSessionOps(),
		pers:          p,
		queue:         make(chan job, r.queueDepth),
		commits:       make(chan commitItem, r.queueDepth),
		committerDone: make(chan struct{}),
		quit:          make(chan struct{}),
		done:          make(chan struct{}),
		views:         newViewCache(sess),
	}
	h.subs.drops = &r.sseDrops
	h.subs.sessionDrops = &h.ops.sseDropped
	h.subs.max = quota.MaxSubscribers
	if p != nil {
		// Carry recovery's replay count into the rotation budget so a
		// crash-looping server still rotates (see recoverSession).
		h.sinceSnap = p.sinceSnap
		// Record the steady-state role on disk so a restart re-hosts the
		// session as what it really was (see roleMarkerName). Failing to
		// record it risks a phantom primary after the next crash, which
		// is a persistence failure like any other.
		if err := writeRoleMarker(p.dir, role == roleFollower); err != nil {
			p.markBroken(err)
		}
	}
	if c := r.cluster; c != nil {
		h.clustered = true
		h.role.Store(role)
		if role == rolePrimary {
			if target := c.shipTarget(name); target != "" {
				h.startShipper(c, target)
			}
		}
	}
	sh.m[name] = h
	go h.run(r)
	go h.committer(r)
	return h, nil
}

// captureSnapshot is the one snapshot capture path: a quiescent image of
// the live session with the quota mark stamped in, so every image that
// reaches disk or a follower carries the session's explicit override.
// Caller discipline matters as much as here as for PersistSnapshot
// itself: rotation/resync images must be captured by the worker at the
// exact batch boundary.
func (h *hosted) captureSnapshot() (*wal.Snapshot, error) {
	snap, err := h.sess.PersistSnapshot(h.name)
	if err != nil {
		return nil, err
	}
	if h.quota != nil {
		snap.Quota = walQuota(h.quota.cfg)
	}
	return snap, nil
}

// captureRotation captures the persister's rotation boundary under the
// same caller discipline as captureSnapshot (worker, exact batch
// boundary). For a store-backed session it is a slim snapshot header
// plus the store's dirty-page flush — the committer resolves the pair
// through rotateCapture or abort — while a memory-backed session gets a
// plain full inline snapshot wrapped with no flush.
func (h *hosted) captureRotation() (*rotationCapture, error) {
	if h.sess.Store() != nil {
		snap, fl, err := h.sess.PersistBoundary(h.name)
		if err != nil {
			return nil, err
		}
		if h.quota != nil {
			snap.Quota = walQuota(h.quota.cfg)
		}
		return &rotationCapture{snap: snap, flush: fl}, nil
	}
	snap, err := h.captureSnapshot()
	if err != nil {
		return nil, err
	}
	return &rotationCapture{snap: snap}, nil
}

// startShipper hooks the session's committer to a follower on target.
func (h *hosted) startShipper(c *clusterState, target string) {
	sp := ship.NewShipper(h.name, c.transport(target), h.captureSnapshot)
	h.shipper.Store(&sessionShipper{sp: sp, target: target})
}

// stopShipper tears the current shipping stream down, if any.
func (h *hosted) stopShipper() {
	if ref := h.shipper.Swap(nil); ref != nil {
		ref.sp.Close()
	}
}

// Get returns the hosted session or ErrNotFound.
func (r *Registry) Get(name string) (*hosted, error) {
	sh := r.shard(name)
	sh.mu.RLock()
	h := sh.m[name]
	sh.mu.RUnlock()
	if h == nil {
		return nil, ErrNotFound
	}
	return h, nil
}

// List returns the hosted sessions in name order.
func (r *Registry) List() []*hosted {
	var out []*hosted
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, h := range sh.m {
			out = append(out, h)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// admit runs the session's quota checks for one write batch BEFORE it
// can occupy a queue slot: a rejected tenant never reaches the worker,
// so its burst cannot starve the other sessions' passes. The relation
// size fed to the cap check is the current snapshot — queued
// not-yet-applied batches are not counted, so the cap is approximate by
// up to one queue's worth, which is the price of keeping admission off
// the worker's lock.
func (r *Registry) admit(h *hosted, tuples, deletes int) error {
	q := h.quota
	if q == nil {
		return nil
	}
	size := 0
	if q.cfg.MaxRelationSize > 0 {
		size = h.sess.Snapshot().Size
	}
	if err := q.admit(size, tuples, deletes, time.Now()); err != nil {
		r.rateLimited.Add(1)
		if h.ops != nil {
			h.ops.rateLimited.Add(1)
		}
		return err
	}
	return nil
}

// Apply enqueues a synchronous batch on h and waits for its engine
// pass. The reply is exactly what the equivalent in-process ApplyOps
// returned. Taking the resolved session — not a name — matters: the
// caller decoded the batch against h's schema, and a name lookup here
// could resolve a different session if the name was deleted and
// re-created mid-request.
func (r *Registry) Apply(ctx context.Context, h *hosted, deletes []relation.TupleID, sets []increpair.SetOp, inserts []*relation.Tuple) (jobReply, error) {
	if h.role.Load() == roleFollower {
		return jobReply{}, ErrFollower
	}
	if err := r.admit(h, len(inserts), len(deletes)); err != nil {
		return jobReply{}, err
	}
	j := job{deletes: deletes, sets: sets, inserts: inserts, enqueued: time.Now(), reply: make(chan jobReply, 1)}
	select {
	case h.queue <- j:
	case <-h.quit:
		return jobReply{}, ErrDraining
	case <-ctx.Done():
		return jobReply{}, ctx.Err()
	}
	r.batches.Add(1)
	select {
	case rep := <-j.reply:
		return rep, nil
	case <-h.done:
		// The worker drained the queue and exited; if our job was
		// processed during the drain its reply is already buffered.
		select {
		case rep := <-j.reply:
			return rep, nil
		default:
			return jobReply{}, ErrDraining
		}
	case <-ctx.Done():
		return jobReply{}, ctx.Err()
	}
}

// Ingest enqueues an asynchronous insert-only batch on h. It never
// blocks: a full queue returns ErrBacklog immediately (the caller maps
// it to 429), which is the service's backpressure signal. Like Apply it
// takes the resolved session so the batch lands where it was decoded.
func (r *Registry) Ingest(h *hosted, inserts []*relation.Tuple) error {
	if h.role.Load() == roleFollower {
		return ErrFollower
	}
	if err := r.admit(h, len(inserts), 0); err != nil {
		return err
	}
	j := job{inserts: inserts, coalescable: true, enqueued: time.Now()}
	// Both the quit check and the send happen under the fence, so the
	// worker's final drain cannot slip between them (see hosted.sendMu).
	h.sendMu.RLock()
	defer h.sendMu.RUnlock()
	select {
	case <-h.quit:
		return ErrDraining
	default:
	}
	select {
	case h.queue <- j:
		r.batches.Add(1)
		return nil
	default:
		r.rejected.Add(1)
		return ErrBacklog
	}
}

// Remove drains and closes one session, waiting up to ctx for its queue
// to run dry, and deletes it from the table.
func (r *Registry) Remove(ctx context.Context, name string) error {
	sh := r.shard(name)
	sh.mu.Lock()
	h := sh.m[name]
	if h == nil {
		sh.mu.Unlock()
		return ErrNotFound
	}
	// A deleted session must not resurrect on the next boot: the
	// exiting worker removes its on-disk data after the final drain.
	// purge is set BEFORE the name is freed (still under the shard
	// lock), so a create that wins the freed name happens-after the
	// flag is visible — the draining worker's persister checks it and
	// stops writing into a directory the new tenant now owns.
	h.purge.Store(true)
	delete(sh.m, name)
	sh.mu.Unlock()
	h.quitOnce.Do(func() { close(h.quit) })
	select {
	case <-h.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain shuts the whole registry down gracefully: new creates and new
// work are refused, every session worker finishes its queued batches,
// closes its session, and Drain returns when all workers have exited
// (or ctx expires first).
func (r *Registry) Drain(ctx context.Context) error {
	r.draining.Store(true)
	var hs []*hosted
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n, h := range sh.m {
			hs = append(hs, h)
			delete(sh.m, n)
		}
		sh.mu.Unlock()
	}
	for _, h := range hs {
		h.quitOnce.Do(func() { close(h.quit) })
	}
	for _, h := range hs {
		select {
		case <-h.done:
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %w", ctx.Err())
		}
	}
	return nil
}

// run is the session worker: the hosted session's single writer and the
// only per-session serialization point. It applies queued jobs in
// arrival order, coalescing runs of async insert-only batches into one
// engine pass, hands each finished pass to the committer, and on quit
// drains the queue before closing the session — no accepted batch is
// dropped. Deferred teardown runs innermost-first: the committer drains
// every pending commit (replies, WAL records, events) before
// persistence is finalized, the session closes, subscribers are
// released, and done is closed.
func (h *hosted) run(r *Registry) {
	defer close(h.done)
	defer h.subs.closeAll()
	defer h.sess.Close()
	defer h.views.closeAll()
	defer h.finishPersist(r)
	// The shipper stops only after the committer has drained: the last
	// commits may still ship synchronously under ack=quorum.
	defer h.stopShipper()
	defer func() {
		close(h.commits)
		<-h.committerDone
	}()
	for {
		select {
		case j := <-h.queue:
			h.dispatch(r, j)
		case <-h.quit:
			// Fence out async producers: once this Lock is acquired,
			// every in-flight Ingest has either enqueued (and is swept
			// below) or will observe the closed quit and refuse. Sync
			// applies may still race the sweep, but they detect an
			// unprocessed job through done and fail loudly.
			h.sendMu.Lock()
			h.sendMu.Unlock() //nolint:staticcheck // barrier, not critical section
			for {
				select {
				case j := <-h.queue:
					h.dispatch(r, j)
				default:
					return
				}
			}
		}
	}
}

// dispatch runs one queued job, first folding any directly following
// coalescable jobs into it: their inserts concatenate in arrival order
// and the whole run is repaired by a single engine pass. Folding stops
// at the registry's tuple cap (coalesceMax), and an empty queue waits
// out the remainder of the coalesce window (coalesceDelay, one deadline
// per fold) before starting the pass — with both at zero only queue
// adjacency folds, the original behavior. A synchronous job is never
// folded — its reply must match a dedicated in-process call — so a sync
// job encountered while folding just flushes the accumulated pass and
// runs next.
func (h *hosted) dispatch(r *Registry, j job) {
	var deadline *time.Timer
	defer func() {
		if deadline != nil {
			deadline.Stop()
		}
	}()
	for j.coalescable {
		if r.coalesceMax > 0 && len(j.inserts) >= r.coalesceMax {
			h.apply(r, j, 1+j.extra)
			return
		}
		var next job
		select {
		case next = <-h.queue:
		default:
			if r.coalesceDelay <= 0 {
				h.apply(r, j, 1+j.extra)
				return
			}
			if deadline == nil {
				deadline = time.NewTimer(r.coalesceDelay)
			}
			select {
			case next = <-h.queue:
			case <-deadline.C:
				h.apply(r, j, 1+j.extra)
				return
			case <-h.quit:
				// Shutdown: flush immediately; run()'s final sweep
				// handles whatever is still queued.
				h.apply(r, j, 1+j.extra)
				return
			}
		}
		if next.coalescable {
			j.inserts = append(j.inserts, next.inserts...)
			j.extra++
			r.coalesced.Add(1)
			continue
		}
		h.apply(r, j, 1+j.extra)
		j = next
	}
	h.apply(r, j, 1)
}

// apply runs one engine pass for job j (which may represent several
// coalesced client batches) and hands the result to the committer.
// Everything after the pass — delta encode, WAL append, fsync, client
// reply, event fan-out — happens downstream, overlapped with this
// worker's next pass; only the pass itself is serialized per session.
// Pass order fixes seq and the journal-version order, and the commits
// channel is FIFO, so the committer observes them in the same order.
func (h *hosted) apply(r *Registry, j job, batches int) {
	if j.quiesce {
		// No pass, no WAL record, no event: the sentinel only carries
		// its reply through the pipeline in order.
		h.commits <- commitItem{j: j}
		return
	}
	var wait time.Duration
	if !j.enqueued.IsZero() {
		wait = time.Since(j.enqueued)
	}
	// The pre-pass journal version brackets the batch for replication;
	// worker-only read, so no lock needed.
	prev := h.sess.Snapshot().Version
	start := time.Now()
	res, deleted, err := h.sess.ApplyOps(j.deletes, j.sets, j.inserts)
	snap := h.sess.Snapshot()
	engine := time.Since(start)
	h.lat.record(engine)
	r.passLat.Observe(engine.Seconds())
	r.foldSize.Observe(float64(batches))
	if h.ops != nil {
		h.ops.passLat.Observe(engine.Seconds())
		h.ops.foldSize.Observe(float64(batches))
	}
	var seq uint64
	if err == nil {
		seq = h.seq.Add(1)
		r.passes.Add(1)
		r.tuples.Add(uint64(len(res.Inserted)))
	} else {
		r.errorPasses.Add(1)
		if h.ops != nil {
			h.ops.errorPasses.Add(1)
		}
	}
	item := commitItem{
		j: j, batches: batches, version: snap.Version, prev: prev, passDone: time.Now(),
		rep: jobReply{res: res, deleted: deleted, seq: seq, snap: snap, err: err, wait: wait, engine: engine},
	}
	// Rotation and resync snapshots must capture THIS batch boundary; by
	// the time the committer handles the item the worker may be passes
	// ahead, so the capture cannot be deferred downstream. A failed pass
	// forces a resync snapshot even for a memory-only session when a
	// follower is attached: the partial effects no batch frame can
	// describe must reach the replica as a full image too.
	needPersist := h.pers != nil && !h.purge.Load()
	needShip := h.shipper.Load() != nil
	if err != nil {
		// The failed pass may have mutated state no WAL record
		// describes; re-anchor the on-disk image on a fresh boundary
		// capture, and hand the follower a full inline image too.
		if needPersist {
			if rc, serr := h.captureRotation(); serr != nil {
				h.pers.markBroken(serr)
			} else {
				item.rotate = rc
				h.sinceSnap = 0
			}
		}
		if needShip {
			if item.rotate != nil && item.rotate.flush == nil {
				// The memory-backed capture is already a full inline
				// snapshot; share it with the shipper.
				item.resync = item.rotate.snap
			} else if rs, serr := h.captureSnapshot(); serr == nil {
				// A store-backed capture is a slim header with no rows —
				// the follower needs its own inline image. A capture
				// failure here only degrades replication; the follower
				// heals by snapshot on the next gap it refuses.
				item.resync = rs
			}
		}
	} else if needPersist {
		h.sinceSnap++
		if h.sinceSnap >= h.pers.cfg.snapEvery {
			if rc, serr := h.captureRotation(); serr != nil {
				h.pers.markBroken(serr)
			} else {
				item.rotate = rc
				h.sinceSnap = 0
			}
		}
	}
	h.commits <- item
}

// committer is the pipeline stage downstream of the session worker: it
// receives finished passes in pass order and, for each, appends the WAL
// record, waits out the fsync (grouped across sessions under the
// per-batch policy), sends the client reply, and publishes the pass
// event. The reply still happens strictly after the record is durable —
// fsync-before-ack is preserved per batch — but the fsync of pass N now
// overlaps the worker's pass N+1 instead of blocking it.
//
// A purged session (Remove in progress) stops persisting immediately:
// its directory is doomed — and may already belong to a re-created
// session of the same name — so drained batches apply in memory only
// and their waiting clients are still answered.
func (h *hosted) committer(r *Registry) {
	defer close(h.committerDone)
	for item := range h.commits {
		if item.j.quiesce {
			// The quiesce sentinel: everything before it in the pipeline
			// is applied AND committed; answer and move on. It must not
			// touch the WAL, the shipper or the event stream — its
			// version fields are zero.
			if item.j.reply != nil {
				item.j.reply <- item.rep
			}
			continue
		}
		// ops is computed at most once per pass and shared by the WAL
		// append and the replication frame.
		var ops []relation.Delta
		if item.rep.err == nil && (h.pers != nil || h.shipper.Load() != nil) {
			ops = increpair.OpsToDeltas(item.j.deletes, item.j.sets, item.j.inserts)
		}
		if h.pers != nil && !h.purge.Load() {
			if item.rep.err != nil {
				// Failed pass: the capture is a re-anchor, applied without
				// (and instead of) a WAL append.
				if item.rotate != nil {
					h.pers.rotateCapture(item.rotate)
					item.rotate = nil
				}
			} else {
				if aerr := h.pers.appendBatch(ops, item.version); aerr == nil {
					if h.pers.cfg.policy == FsyncBatch {
						appended := time.Now()
						if r.groupSync(h.pers) == nil {
							lag := time.Since(appended).Seconds()
							r.walLag.Observe(lag)
							if h.ops != nil {
								h.ops.walLag.Observe(lag)
							}
						}
					}
					if item.rotate != nil {
						h.pers.rotateCapture(item.rotate)
						item.rotate = nil
					}
				}
			}
		}
		if item.rotate != nil {
			// Unconsumed capture — a purge raced in, or the append failed
			// before the rotation point. Release the store's flush lease so
			// the next boundary can begin one.
			item.rotate.abort()
			item.rotate = nil
		}
		// Replication, strictly after the local fsync: a follower can
		// never hold a batch the primary's own disk does not. ack=quorum
		// ships synchronously — the client's reply waits for the
		// follower's acknowledgement — while ack=leader hands the frame
		// to the background drain. Ship failures degrade (counted in the
		// shipper's stats), never fail the write: the primary keeps
		// serving through a dead follower, and the stream heals by
		// snapshot once the follower is back.
		if ref := h.shipper.Load(); ref != nil {
			if item.resync != nil {
				ref.sp.EnqueueSnapshot(item.resync)
			} else if item.rep.err == nil {
				b := &wal.Batch{PrevVersion: item.prev, Version: item.version, Ops: ops}
				if r.cluster != nil && r.cluster.ack == AckQuorum {
					_ = ref.sp.ShipSync(b)
				} else {
					ref.sp.EnqueueBatch(b)
				}
			}
		}
		item.rep.persist = time.Since(item.passDone)
		if item.j.reply != nil {
			item.j.reply <- item.rep
		}
		if item.rep.err != nil {
			continue
		}
		rep := item.rep
		h.subs.publish(Event{
			Session:   h.name,
			Seq:       rep.seq,
			Coalesced: item.batches,
			Inserted:  len(rep.res.Inserted),
			Deleted:   rep.deleted,
			Dirty:     changedCells(rep.res, h.attrs),
			Snapshot:  encodeSnapshot(rep.snap),
		})
	}
}

// syncReq asks the group-fsync goroutine to make one persister's log
// durable; done receives the sync result.
type syncReq struct {
	p    *persister
	done chan error
}

// groupSync makes p's appended records durable, batching with whatever
// other sessions are syncing in the same window: while one fsync is in
// flight, later requests pile up in syncCh, and the loop then satisfies
// the whole window with a single Fsync per distinct WAL. Under N
// concurrent durable sessions this amortizes the dominant per-batch
// cost N ways without weakening fsync-before-ack — every caller blocks
// until a sync that covers its append has completed.
func (r *Registry) groupSync(p *persister) error {
	r.syncOnce.Do(func() {
		r.syncCh = make(chan syncReq, 4*registryShards)
		go r.syncLoop()
	})
	req := syncReq{p: p, done: make(chan error, 1)}
	r.syncCh <- req
	return <-req.done
}

func (r *Registry) syncLoop() {
	for req := range r.syncCh {
		window := []syncReq{req}
	drain:
		for {
			select {
			case more := <-r.syncCh:
				window = append(window, more)
			default:
				break drain
			}
		}
		// One Fsync per distinct persister covers every append that
		// happened before its request entered the window.
		results := make(map[*persister]error, 1)
		for _, q := range window {
			if _, done := results[q.p]; !done {
				results[q.p] = q.p.syncNow()
			}
		}
		for _, q := range window {
			q.done <- results[q.p]
		}
	}
}

// finishPersist ends the session's durability on worker exit: purge
// (Remove) deletes the on-disk data, drain keeps it for the next boot.
// The deletion happens under the name's shard lock and only if this
// hosted session still owns the name: Remove frees the name before the
// worker finishes draining (it may wait out a context and return
// early), so a client can have re-created the session by now — and the
// new tenant's freshly written directory must not be swept away by the
// old worker.
func (h *hosted) finishPersist(r *Registry) {
	if h.pers == nil {
		return
	}
	if !h.purge.Load() {
		h.pers.close()
		return
	}
	sh := r.shard(h.name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur := sh.m[h.name]; cur != nil && cur != h {
		// Superseded: a new session took the name, and newPersister
		// rebuilt the directory from scratch under this same lock.
		// Close our handles; the files they point to were already
		// unlinked by that rebuild.
		h.pers.close()
		return
	}
	h.pers.destroy()
}

// latWindow keeps a bounded ring of recent engine-pass latencies; big
// enough for meaningful percentiles, small enough to never grow.
type latWindow struct {
	mu   sync.Mutex
	ring [1024]time.Duration
	n    int // total recorded
}

func (l *latWindow) record(d time.Duration) {
	l.mu.Lock()
	l.ring[l.n%len(l.ring)] = d
	l.n++
	l.mu.Unlock()
}

// window returns a copy of the recorded latencies (at most the ring
// size, the most recent ones).
func (l *latWindow) window() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]time.Duration, n)
	copy(out, l.ring[:n])
	return out
}

// LatencySummary summarizes a latency sample into the wire shape
// (nearest-rank percentiles in milliseconds); it sorts all in place.
// Shared by /v1/metrics and the workload load driver so both report
// identically defined p50/p99 — and the SLO gate asserts on these
// numbers, so the definition is load-bearing: the q-th percentile is
// the ceil(q·n)-th smallest sample (never an interpolation, never a
// sample below the true rank — a single-sample run reports that sample
// for every percentile, and p99 of two samples is the larger one).
func LatencySummary(all []time.Duration) *WireLatency {
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(all)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(all[i]) / float64(time.Millisecond)
	}
	return &WireLatency{
		Count: len(all),
		P50ms: pick(0.50),
		P99ms: pick(0.99),
		Maxms: float64(all[len(all)-1]) / float64(time.Millisecond),
	}
}
