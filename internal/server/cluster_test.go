package server

// Two-node cluster tests: real HTTP between two Servers wired as peers
// — routing through the thin proxy, WAL shipping under ack=quorum,
// write fencing on the follower (421 + X-Primary), kill-the-primary
// failover with byte-identical promoted state, the read plane served
// from a replica across a mid-read promotion, quota shipping, and the
// peer-list rebalance that moves a session wholesale to its new owner.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

type clusterNode struct {
	srv  *Server
	hs   *http.Server
	addr string
	url  string
}

// kill stops the node's listener without draining — the cluster-side
// view of a primary crash. The in-process Server object survives so the
// test can still introspect it, but no peer can reach it.
func (n *clusterNode) kill() { n.hs.Close() }

// newClusterPair boots two Servers on real loopback listeners, each
// configured with the other as a peer.
func newClusterPair(t *testing.T, mk func(self string, peers []string) Options) (*clusterNode, *clusterNode) {
	t.Helper()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{ln1.Addr().String(), ln2.Addr().String()}
	node := func(ln net.Listener) *clusterNode {
		self := ln.Addr().String()
		s := New(mk(self, peers))
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		n := &clusterNode{srv: s, hs: hs, addr: self, url: "http://" + self}
		t.Cleanup(func() {
			n.hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		return n
	}
	return node(ln1), node(ln2)
}

func quorumOpts(self string, peers []string) Options {
	return Options{QueueDepth: 16, Peers: peers, Self: self, Ack: AckQuorum}
}

// ownerAndFollower resolves which node the ring makes primary for name.
func ownerAndFollower(a, b *clusterNode, name string) (owner, follower *clusterNode) {
	if a.srv.reg.cluster.primary(name) == a.addr {
		return a, b
	}
	return b, a
}

// waitFollower polls until the node hosts name as a replica (the
// shipper bootstraps in the background).
func waitFollower(t *testing.T, n *clusterNode, name string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := do(t, "GET", n.url+"/v1/cluster", nil)
		if resp.StatusCode == http.StatusOK {
			var ci ClusterInfo
			if err := json.Unmarshal(body, &ci); err != nil {
				t.Fatal(err)
			}
			for _, cs := range ci.Sessions {
				if cs.Name == name && cs.Role == "follower" {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower for %q never appeared on %s", name, n.addr)
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	return do(t, "GET", url, nil)
}

// readState captures what the failover acceptance compares: the full
// CSV dump bytes and the violation listing body (minus the session
// version header, asserted separately).
func readState(t *testing.T, base, name string) (dump []byte, vios ViolationsResponse) {
	t.Helper()
	resp, body := getBody(t, base+"/v1/sessions/"+name+"/dump")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dump: %d: %s", resp.StatusCode, body)
	}
	dump = body
	resp, body = getBody(t, base+"/v1/sessions/"+name+"/violations")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("violations: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &vios); err != nil {
		t.Fatal(err)
	}
	return dump, vios
}

func applyDirty(t *testing.T, base, name string, i int) ApplyResponse {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/sessions/"+name+"/apply", ApplyRequest{
		Inserts: []WireTuple{
			{Vals: []*string{strp("212"), strp("NYC")}},
			{Vals: []*string{strp("212"), strp(fmt.Sprintf("X%d", i))}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply %d: %d: %s", i, resp.StatusCode, body)
	}
	var ar ApplyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

// TestClusterFailover is the end-to-end tentpole check: create through
// the router, replicate under ack=quorum, fence writes on the follower,
// kill the primary, promote, and require the promoted node to serve the
// exact bytes the primary would have — then keep accepting writes.
func TestClusterFailover(t *testing.T) {
	a, b := newClusterPair(t, quorumOpts)
	const name = "orders"
	owner, follower := ownerAndFollower(a, b, name)

	// Create via the NON-owner: the router must forward to the owner.
	createTiny(t, follower.url, name)
	waitFollower(t, follower, name)

	var lastSeq uint64
	for i := 0; i < 5; i++ {
		lastSeq = applyDirty(t, owner.url, name, i).Seq
	}

	// Under quorum ack every reply means the follower acknowledged, so
	// both nodes serve identical bytes immediately.
	wantDump, wantVios := readState(t, owner.url, name)
	gotDump, gotVios := readState(t, follower.url, name)
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("replica dump differs:\nprimary:\n%s\nfollower:\n%s", wantDump, gotDump)
	}
	if wantVios.Total != gotVios.Total || wantVios.Version != gotVios.Version {
		t.Fatalf("replica violations differ: %+v vs %+v", wantVios, gotVios)
	}

	// Writes to the follower are fenced with 421 and the primary's
	// address — the client redirect contract.
	resp, body := do(t, "POST", follower.url+"/v1/sessions/"+name+"/apply", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
	})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower write: %d (want 421): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Primary"); got != owner.addr {
		t.Fatalf("X-Primary = %q, want %q", got, owner.addr)
	}
	var mis misdirectedResponse
	if err := json.Unmarshal(body, &mis); err != nil || mis.Primary != owner.addr {
		t.Fatalf("misdirected body: %s (err %v)", body, err)
	}

	// Kill the primary mid-flight and promote the survivor.
	owner.kill()
	resp, body = do(t, "POST", follower.url+"/v1/sessions/"+name+"/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d: %s", resp.StatusCode, body)
	}
	var pr PromoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Role != "primary" || pr.Session != name {
		t.Fatalf("promote response: %+v", pr)
	}

	// The promoted state is byte-for-byte the pre-crash primary state.
	gotDump, gotVios = readState(t, follower.url, name)
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("promoted dump differs:\nwant:\n%s\ngot:\n%s", wantDump, gotDump)
	}
	if wantVios.Total != gotVios.Total {
		t.Fatalf("promoted violations differ: %+v vs %+v", wantVios, gotVios)
	}

	// Promotion is a resumption, not a restart: the write path continues
	// with the next sequence number.
	ar := applyDirty(t, follower.url, name, 99)
	if ar.Seq != lastSeq+1 {
		t.Fatalf("post-promotion seq = %d, want %d", ar.Seq, lastSeq+1)
	}

	// Promote is idempotent.
	resp, _ = do(t, "POST", follower.url+"/v1/sessions/"+name+"/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-promote: %d", resp.StatusCode)
	}
}

// TestClusterFollowerReadPlane: the PR 7 read plane — paginated
// violations, streamed dumps, SSE — served from a replica, with a
// promotion landing in the middle of a paginated read. The pinned view
// must stay consistent and X-Session-Version monotone across the role
// change.
func TestClusterFollowerReadPlane(t *testing.T) {
	a, b := newClusterPair(t, quorumOpts)
	const name = "reads"
	owner, follower := ownerAndFollower(a, b, name)
	createTiny(t, owner.url, name)
	waitFollower(t, follower, name)
	for i := 0; i < 4; i++ {
		applyDirty(t, owner.url, name, i)
	}

	// Page 1 from the follower.
	resp, body := getBody(t, follower.url+"/v1/sessions/"+name+"/violations?limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower violations: %d: %s", resp.StatusCode, body)
	}
	v1, err := strconv.ParseUint(resp.Header.Get("X-Session-Version"), 10, 64)
	if err != nil {
		t.Fatalf("X-Session-Version: %v", err)
	}
	var page1 ViolationsResponse
	if err := json.Unmarshal(body, &page1); err != nil {
		t.Fatal(err)
	}
	if page1.NextCursor == "" && page1.Total > 1 {
		t.Fatalf("page 1 of %d violations has no cursor: %s", page1.Total, body)
	}

	// SSE subscriber on the follower sees replicated batches.
	sseReq, err := http.NewRequest("GET", follower.url+"/v1/sessions/"+name+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	nextEvent := func() (id uint64, ev Event) {
		t.Helper()
		var haveID bool
		for {
			select {
			case l, ok := <-lines:
				if !ok {
					t.Fatal("SSE stream ended early")
				}
				if strings.HasPrefix(l, "id: ") {
					id, _ = strconv.ParseUint(strings.TrimPrefix(l, "id: "), 10, 64)
					haveID = true
				}
				if strings.HasPrefix(l, "data: ") && haveID {
					if err := json.Unmarshal([]byte(strings.TrimPrefix(l, "data: ")), &ev); err != nil {
						t.Fatal(err)
					}
					return id, ev
				}
			case <-time.After(10 * time.Second):
				t.Fatal("timed out waiting for SSE event")
			}
		}
	}

	applyDirty(t, owner.url, name, 50)
	id1, ev := nextEvent()
	if ev.Session != name {
		t.Fatalf("replicated event: %+v", ev)
	}

	// Promote mid-read (old primary still up: its next ship will be
	// refused with a role conflict and the stream stops — split-brain
	// guard, not tested here).
	resp, body = do(t, "POST", follower.url+"/v1/sessions/"+name+"/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d: %s", resp.StatusCode, body)
	}

	// Page 2 with the page-1 cursor: the pinned view survives the role
	// change, and the version header never moves backwards.
	if page1.NextCursor != "" {
		resp, body = getBody(t, follower.url+"/v1/sessions/"+name+"/violations?cursor="+page1.NextCursor)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page 2 across promotion: %d: %s", resp.StatusCode, body)
		}
		var page2 ViolationsResponse
		if err := json.Unmarshal(body, &page2); err != nil {
			t.Fatal(err)
		}
		if page2.Version != page1.Version {
			t.Fatalf("cursor view moved across promotion: %d -> %d", page1.Version, page2.Version)
		}
		v2, _ := strconv.ParseUint(resp.Header.Get("X-Session-Version"), 10, 64)
		if v2 < v1 {
			t.Fatalf("X-Session-Version went backwards across promotion: %d -> %d", v1, v2)
		}
	}

	// Streamed dump from the (now primary) replica still runs to the
	// completion trailer.
	dumpResp, err := http.Get(follower.url + "/v1/sessions/" + name + "/dump")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(dumpResp.Body); err != nil {
		t.Fatal(err)
	}
	dumpResp.Body.Close()
	if dumpResp.Trailer.Get("X-Dump-Complete") != "true" {
		t.Fatal("follower dump missing completion trailer")
	}

	// The SSE stream survives the promotion: the next write (now served
	// locally) publishes with a monotonically increasing event id.
	applyDirty(t, follower.url, name, 51)
	id2, _ := nextEvent()
	if id2 <= id1 {
		t.Fatalf("event id not monotone across promotion: %d then %d", id1, id2)
	}
}

// TestClusterQuotaShipsToFollower: an explicit per-session quota is
// session state — it must ride the snapshot to the replica and still
// govern after promotion.
func TestClusterQuotaShipsToFollower(t *testing.T) {
	a, b := newClusterPair(t, quorumOpts)
	const name = "limited"
	owner, follower := ownerAndFollower(a, b, name)

	resp, body := do(t, "POST", owner.url+"/v1/sessions", CreateRequest{
		Name:   name,
		Schema: &WireSchema{Name: "orders", Attrs: []string{"AC", "CT"}},
		CFDs:   tinyCFDs,
		Quota:  &WireQuota{OpsPerSec: 123, MaxRelationSize: 456},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
	waitFollower(t, follower, name)

	resp, body = do(t, "POST", follower.url+"/v1/sessions/"+name+"/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d: %s", resp.StatusCode, body)
	}
	resp, body = getBody(t, follower.url+"/v1/sessions/"+name)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d: %s", resp.StatusCode, body)
	}
	var si SessionInfo
	if err := json.Unmarshal(body, &si); err != nil {
		t.Fatal(err)
	}
	if si.Quota == nil || si.Quota.OpsPerSec != 123 || si.Quota.MaxRelationSize != 456 {
		t.Fatalf("promoted session lost its quota: %s", body)
	}
}

// TestClusterRebalance: shrinking the peer list transfers every
// misplaced session to its new owner — snapshot ship, remote promote,
// local purge — and the session keeps serving there.
func TestClusterRebalance(t *testing.T) {
	a, b := newClusterPair(t, quorumOpts)
	const name = "mover"
	owner, other := ownerAndFollower(a, b, name)
	createTiny(t, owner.url, name)
	waitFollower(t, other, name)
	applyDirty(t, owner.url, name, 0)
	wantDump, _ := readState(t, owner.url, name)

	// Tell the owner the cluster is now just the other node.
	resp, body := do(t, "PUT", owner.url+"/v1/cluster/peers", PeersRequest{Peers: []string{other.addr}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peers: %d: %s", resp.StatusCode, body)
	}
	var prr PeersResponse
	if err := json.Unmarshal(body, &prr); err != nil {
		t.Fatal(err)
	}
	if len(prr.Errors) != 0 {
		t.Fatalf("rebalance errors: %v", prr.Errors)
	}
	found := false
	for _, m := range prr.Moved {
		if m == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("session not moved: %+v", prr)
	}

	// The new owner serves the session as primary with identical bytes;
	// the old owner no longer hosts it.
	gotDump, _ := readState(t, other.url, name)
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("transferred dump differs:\nwant:\n%s\ngot:\n%s", wantDump, gotDump)
	}
	if ar := applyDirty(t, other.url, name, 1); ar.Seq == 0 {
		t.Fatal("transferred session refused writes")
	}
	_, body = getBody(t, owner.url+"/v1/cluster")
	var ci ClusterInfo
	if err := json.Unmarshal(body, &ci); err != nil {
		t.Fatal(err)
	}
	for _, cs := range ci.Sessions {
		if cs.Name == name {
			t.Fatalf("old owner still hosts %q as %s", name, cs.Role)
		}
	}
}

// TestClusterFollowerRestartStaysFollower: the split-brain regression.
// A node hosting replicas goes down and comes back — the most ordinary
// cluster event there is — and must re-host them as FOLLOWERS: the
// durable role marker survives the restart, writes stay fenced with
// 421, the read plane serves the recovered replica, and the primary's
// shipping stream resumes instead of hitting a phantom primary and
// stopping. Promotion then clears the durable role.
func TestClusterFollowerRestartStaysFollower(t *testing.T) {
	dirs := map[string]string{}
	durable := func(self string, peers []string) Options {
		d, ok := dirs[self]
		if !ok {
			d = t.TempDir()
			dirs[self] = d
		}
		return Options{QueueDepth: 16, Peers: peers, Self: self, Ack: AckQuorum, DataDir: d}
	}
	a, b := newClusterPair(t, durable)
	const name = "restarted"
	owner, follower := ownerAndFollower(a, b, name)
	createTiny(t, owner.url, name)
	waitFollower(t, follower, name)
	for i := 0; i < 3; i++ {
		applyDirty(t, owner.url, name, i)
	}
	wantDump, wantVios := readState(t, owner.url, name)

	if !readRoleMarker(filepath.Join(dirs[follower.addr], name)) {
		t.Fatal("replica session directory carries no follower marker")
	}
	if readRoleMarker(filepath.Join(dirs[owner.addr], name)) {
		t.Fatal("primary session directory carries a follower marker")
	}

	// Stop the follower node and boot a fresh server on its data dir,
	// address and identity — an ordinary follower restart.
	follower.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := follower.srv.Shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("follower shutdown: %v", err)
	}
	ln, err := net.Listen("tcp", follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(durable(follower.addr, []string{a.addr, b.addr}))
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	hs2 := &http.Server{Handler: s2.Handler()}
	go hs2.Serve(ln)
	t.Cleanup(func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})

	// Drop keep-alive connections pooled against the dead server: a
	// non-replayable POST reusing one would surface EOF instead of
	// reaching the restarted node.
	http.DefaultClient.CloseIdleConnections()

	h, err := s2.reg.Get(name)
	if err != nil {
		t.Fatalf("recovered node lost the session: %v", err)
	}
	if h.roleString() != "follower" {
		t.Fatalf("recovered role = %s, want follower", h.roleString())
	}

	// Writes are still fenced toward the true primary.
	resp, body := do(t, "POST", follower.url+"/v1/sessions/"+name+"/apply", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
	})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("restarted follower write: %d (want 421): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Primary"); got != owner.addr {
		t.Fatalf("X-Primary = %q, want %q", got, owner.addr)
	}

	// The read plane serves the recovered replica byte-identically.
	gotDump, gotVios := readState(t, follower.url, name)
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("recovered replica dump differs:\nwant:\n%s\ngot:\n%s", wantDump, gotDump)
	}
	if wantVios.Total != gotVios.Total {
		t.Fatalf("recovered replica violations differ: %+v vs %+v", wantVios, gotVios)
	}

	// The primary's shipping stream resumes: a post-restart quorum write
	// reaches the restarted replica (healing by resync if need be).
	applyDirty(t, owner.url, name, 9)
	wantDump, wantVios = readState(t, owner.url, name)
	deadline := time.Now().Add(10 * time.Second)
	for {
		gotDump, gotVios = readState(t, follower.url, name)
		if bytes.Equal(wantDump, gotDump) && wantVios.Total == gotVios.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted follower never caught up:\nwant:\n%s\ngot:\n%s", wantDump, gotDump)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Promotion flips the durable role with the live one.
	resp, body = do(t, "POST", follower.url+"/v1/sessions/"+name+"/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d: %s", resp.StatusCode, body)
	}
	if readRoleMarker(filepath.Join(dirs[follower.addr], name)) {
		t.Fatal("promotion left the durable follower marker in place")
	}
}

// TestClusterRebalanceDrainsCoalesceLinger: an accepted (202) ingest
// the worker is holding in the coalesce linger sits in neither the
// queue nor the commits channel — invisible to any len() poll — when a
// rebalance transfer starts. The positive quiesce sentinel must flush
// it through the pipeline before the transfer snapshot is captured;
// with inferred quiescence the batch would apply locally after the
// snapshot shipped and vanish when the local session is purged.
func TestClusterRebalanceDrainsCoalesceLinger(t *testing.T) {
	linger := func(self string, peers []string) Options {
		return Options{QueueDepth: 16, Peers: peers, Self: self, Ack: AckLeader,
			CoalesceDelay: 400 * time.Millisecond}
	}
	a, b := newClusterPair(t, linger)
	const name = "lingering"
	owner, other := ownerAndFollower(a, b, name)
	createTiny(t, owner.url, name)

	// Accept one async batch and give the worker a moment to dequeue it
	// into the linger window.
	resp, body := do(t, "POST", owner.url+"/v1/sessions/"+name+"/ingest", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp("646"), strp("SFO")}}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	time.Sleep(50 * time.Millisecond)

	// Shrink the ring to the other node while the batch is parked: the
	// session must transfer WITH the accepted batch.
	resp, body = do(t, "PUT", owner.url+"/v1/cluster/peers", PeersRequest{Peers: []string{other.addr}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peers: %d: %s", resp.StatusCode, body)
	}
	var pr PeersResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Errors) > 0 {
		t.Fatalf("transfer errors: %v", pr.Errors)
	}
	if len(pr.Moved) != 1 || pr.Moved[0] != name {
		t.Fatalf("moved = %v, want [%s]", pr.Moved, name)
	}

	dump, _ := readState(t, other.url, name)
	if !strings.Contains(string(dump), "646,SFO") {
		t.Fatalf("transferred session lost the lingering ingest:\n%s", dump)
	}
}
