package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newTokenBucket(2) // burst 2, refill 2/s

	if ok, _ := b.take(2, t0); !ok {
		t.Fatal("full bucket must admit its burst")
	}
	ok, wait := b.take(1, t0)
	if ok {
		t.Fatal("empty bucket must reject")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want (0, 1s] for 1 token at 2/s", wait)
	}
	// After the advertised wait the same request must be admitted — the
	// Retry-After contract.
	if ok, _ := b.take(1, t0.Add(wait)); !ok {
		t.Fatal("bucket must admit after its own advertised wait")
	}

	// Refill caps at the burst: a long idle stretch is not a credit line.
	if ok, _ := b.take(2, t0.Add(time.Hour)); !ok {
		t.Fatal("bucket must be full after idling")
	}
	if ok, _ := b.take(1, t0.Add(time.Hour)); ok {
		t.Fatal("burst must cap accumulated tokens")
	}

	// A request beyond the burst is charged across future windows, not
	// rejected forever.
	big := newTokenBucket(1)
	if ok, _ := big.take(10, t0); !ok {
		t.Fatal("over-burst request must be admitted (and charged)")
	}
	if ok, wait := big.take(1, t0); ok || wait < 9*time.Second {
		t.Fatalf("deficit must carry: ok=%v wait=%v", ok, wait)
	}

	// refund restores tokens for a request that was not admitted.
	rb := newTokenBucket(4)
	rb.take(4, t0)
	rb.refund(1)
	if ok, _ := rb.take(1, t0); !ok {
		t.Fatal("refunded token must be spendable")
	}
}

func TestResolveQuota(t *testing.T) {
	def := QuotaConfig{OpsPerSec: 10, TuplesPerSec: 100, MaxRelationSize: 1000, MaxSubscribers: 4}
	if got := resolveQuota(def, nil); got != def {
		t.Fatalf("nil override must inherit: %+v", got)
	}
	// Zero fields inherit, positive fields override, negative fields
	// lift the default.
	got := resolveQuota(def, &WireQuota{OpsPerSec: 5, TuplesPerSec: -1, MaxSubscribers: -1})
	want := QuotaConfig{Explicit: true, OpsPerSec: 5, TuplesPerSec: 0, MaxRelationSize: 1000, MaxSubscribers: 0}
	if got != want {
		t.Fatalf("resolve = %+v, want %+v", got, want)
	}
	if (QuotaConfig{}).wire() != nil {
		t.Fatal("fully unlimited quota must not serialize")
	}
	if w := want.wire(); w == nil || w.OpsPerSec != 5 || w.MaxRelationSize != 1000 {
		t.Fatalf("wire = %+v", w)
	}
}

// TestLatencySummaryNearestRank pins the percentile definition the SLO
// gate asserts on: the q-th percentile is the ceil(q*n)-th smallest
// sample. Small samples are the load-bearing cases — a 2-sample p99
// must be the LARGER sample, not the smaller one an (n-1)-scaled index
// would pick.
func TestLatencySummaryNearestRank(t *testing.T) {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	if LatencySummary(nil) != nil {
		t.Fatal("empty sample must summarize to nil")
	}
	one := LatencySummary([]time.Duration{ms(7)})
	if one.Count != 1 || one.P50ms != 7 || one.P99ms != 7 || one.Maxms != 7 {
		t.Fatalf("single sample: %+v", one)
	}
	two := LatencySummary([]time.Duration{ms(30), ms(10)})
	if two.P50ms != 10 {
		t.Fatalf("p50 of {10,30} = %g, want 10 (ceil(.5*2)=1st)", two.P50ms)
	}
	if two.P99ms != 30 {
		t.Fatalf("p99 of {10,30} = %g, want 30 (ceil(.99*2)=2nd)", two.P99ms)
	}
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = ms(float64(100 - i))
	}
	h := LatencySummary(hundred)
	if h.P50ms != 50 || h.P99ms != 99 || h.Maxms != 100 {
		t.Fatalf("1..100ms: p50=%g p99=%g max=%g, want 50/99/100", h.P50ms, h.P99ms, h.Maxms)
	}
}

// createWithQuota creates a session named name over the tiny schema
// with a per-session quota override.
func createWithQuota(t *testing.T, base, name string, q *WireQuota) {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name:   name,
		Schema: &WireSchema{Name: "orders", Attrs: []string{"AC", "CT"}},
		CFDs:   tinyCFDs,
		Base:   []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
		Quota:  q,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
}

// TestQuotaOpsRateLimit exercises the ops token bucket end to end: the
// burst is admitted, the next write is 429 with both backoff headers,
// and the unquota'd session next door is untouched.
func TestQuotaOpsRateLimit(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createWithQuota(t, base, "limited", &WireQuota{OpsPerSec: 1})
	createTiny(t, base, "free")

	apply := func(name string) (*http.Response, []byte) {
		return do(t, "POST", base+"/v1/sessions/"+name+"/apply", ApplyRequest{
			Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
		})
	}
	if resp, body := apply("limited"); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst apply: %d: %s", resp.StatusCode, body)
	}
	resp, body := apply("limited")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second apply: %d, want 429: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	ms, err := strconv.Atoi(resp.Header.Get("X-Retry-After-Ms"))
	if err != nil || ms < 1 || ms > ra*1000 {
		t.Fatalf("X-Retry-After-Ms = %q, want 1..%d", resp.Header.Get("X-Retry-After-Ms"), ra*1000)
	}

	// The other tenant's writes are unaffected by its neighbour's limit.
	for i := 0; i < 3; i++ {
		if resp, body := apply("free"); resp.StatusCode != http.StatusOK {
			t.Fatalf("free apply %d: %d: %s", i, resp.StatusCode, body)
		}
	}

	// The rejection is visible in the service counters.
	resp, body = do(t, "GET", base+"/v1/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var mr MetricsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.RateLimited < 1 {
		t.Fatalf("rate_limited = %d, want >= 1: %s", mr.RateLimited, body)
	}

	// And the effective quota is reported in the session listing.
	resp, body = do(t, "GET", base+"/v1/sessions/limited", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", resp.StatusCode)
	}
	var si SessionInfo
	if err := json.Unmarshal(body, &si); err != nil {
		t.Fatal(err)
	}
	if si.Quota == nil || si.Quota.OpsPerSec != 1 {
		t.Fatalf("session quota not reported: %s", body)
	}
}

// TestQuotaTuplesBackoffRecovers drives the full 429 contract on the
// ingest path: reject, wait exactly the advertised backoff, retry,
// succeed. The tuple rate is high so the advertised wait is a few
// milliseconds and the test stays fast.
func TestQuotaTuplesBackoffRecovers(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createWithQuota(t, base, "s", &WireQuota{TuplesPerSec: 1000})

	batch := func(n int) ApplyRequest {
		ar := ApplyRequest{}
		for i := 0; i < n; i++ {
			ar.Inserts = append(ar.Inserts, WireTuple{Vals: []*string{strp("212"), strp("NYC")}})
		}
		return ar
	}
	// Drain the burst (1000 tuples), then a 500-tuple ingest must be
	// rejected with a sub-second precise backoff: the bucket needs half
	// a second of refill before it fits, far more than any request
	// round trip (so the rejection is deterministic even under -race
	// slowdowns).
	if resp, body := do(t, "POST", base+"/v1/sessions/s/ingest", batch(1000)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("burst ingest: %d: %s", resp.StatusCode, body)
	}
	resp, body := do(t, "POST", base+"/v1/sessions/s/ingest", batch(500))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota ingest: %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	ms, err := strconv.Atoi(resp.Header.Get("X-Retry-After-Ms"))
	if err != nil || ms < 1 {
		t.Fatalf("X-Retry-After-Ms = %q", resp.Header.Get("X-Retry-After-Ms"))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		resp, body = do(t, "POST", base+"/v1/sessions/s/ingest", batch(500))
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
			t.Fatalf("retry after backoff: %d: %s", resp.StatusCode, body)
		}
		ms, _ = strconv.Atoi(resp.Header.Get("X-Retry-After-Ms"))
		if ms < 1 {
			ms = 1
		}
	}
}

// TestRelationSizeCap: a batch that would push the relation past its
// cap is 403, a same-size churn batch (delete + insert) passes, and the
// rejection does not consume rate tokens.
func TestRelationSizeCap(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createWithQuota(t, base, "s", &WireQuota{MaxRelationSize: 2})

	ins := ApplyRequest{Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}}}
	if resp, body := do(t, "POST", base+"/v1/sessions/s/apply", ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("apply to cap: %d: %s", resp.StatusCode, body)
	}
	resp, body := do(t, "POST", base+"/v1/sessions/s/apply", ins)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("over-cap apply: %d, want 403: %s", resp.StatusCode, body)
	}
	// Churn at the cap is fine: the batch's own deletes make room. The
	// base tuple has id 1.
	churn := ApplyRequest{
		Deletes: []int64{1},
		Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
	}
	if resp, body := do(t, "POST", base+"/v1/sessions/s/apply", churn); resp.StatusCode != http.StatusOK {
		t.Fatalf("churn at cap: %d: %s", resp.StatusCode, body)
	}
}

// TestSubscriberCap: the session's SSE consumer cap answers 409 to the
// subscriber past it, and a disconnect frees the slot.
func TestSubscriberCap(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createWithQuota(t, base, "s", &WireQuota{MaxSubscribers: 1})

	_, cancel := openSSE(t, base+"/v1/sessions/s/events", "")
	resp, err := http.Get(base + "/v1/sessions/s/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second subscriber: %d, want 409", resp.StatusCode)
	}
	cancel()
	// The slot frees asynchronously with the reader teardown.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sessions/s/events")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDefaultQuota: Options.Quota applies to every created
// session, and a per-session override can lift it.
func TestServerDefaultQuota(t *testing.T) {
	_, ts := newTestService(t, Options{Quota: QuotaConfig{MaxRelationSize: 2}})
	base := ts.URL
	createTiny(t, base, "capped")
	createWithQuota(t, base, "lifted", &WireQuota{MaxRelationSize: -1})

	ins := ApplyRequest{Inserts: []WireTuple{
		{Vals: []*string{strp("212"), strp("NYC")}},
		{Vals: []*string{strp("212"), strp("NYC")}},
	}}
	resp, body := do(t, "POST", base+"/v1/sessions/capped/apply", ins)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("default cap: %d, want 403: %s", resp.StatusCode, body)
	}
	if resp, body := do(t, "POST", base+"/v1/sessions/lifted/apply", ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("lifted cap: %d: %s", resp.StatusCode, body)
	}
	// The lifted session is fully unlimited, so no quota is listed.
	resp, body = do(t, "GET", base+"/v1/sessions/lifted", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", resp.StatusCode)
	}
	var si SessionInfo
	if err := json.Unmarshal(body, &si); err != nil {
		t.Fatal(err)
	}
	if si.Quota != nil {
		t.Fatalf("lifted session must list no quota: %s", body)
	}
}

// TestQuotaRejectionCostsNothing: a batch the tuple bucket rejects must
// refund its ops token, so a rejected tenant is not double-charged.
func TestQuotaRejectionCostsNothing(t *testing.T) {
	q := newQuotaState(QuotaConfig{OpsPerSec: 2, TuplesPerSec: 1})
	now := time.Unix(2000, 0)
	// First: 1 op + 1 tuple, admitted.
	if err := q.admit(0, 1, 0, now); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	// Second: tuple bucket empty → rejected; the ops token must come back.
	err := q.admit(0, 1, 0, now)
	rle := &RateLimitError{}
	if err == nil || !asRateLimit(err, &rle) || rle.What != "tuples" {
		t.Fatalf("want tuples rate limit, got %v", err)
	}
	// A tuple-free op must still be admitted on the refunded token: ops
	// had burst 2, spent 1+1, refunded 1 → 1 left.
	if err := q.admit(0, 0, 0, now); err != nil {
		t.Fatalf("refunded op: %v", err)
	}
}

func asRateLimit(err error, out **RateLimitError) bool {
	e, ok := err.(*RateLimitError)
	if ok {
		*out = e
	}
	return ok
}

// TestEffectiveLimitHeader: the violation listing's ?limit= clamp is
// not silent — X-Effective-Limit always reports the page size actually
// applied, clamped or not, so clients can tell a truncated page from an
// exhausted listing.
func TestEffectiveLimitHeader(t *testing.T) {
	_, ts := newTestService(t, Options{MaxReadLimit: 5})
	base := ts.URL
	createTiny(t, base, "s")

	for _, tc := range []struct {
		query string
		want  string
	}{
		{"", "5"},           // default page size (100) clamps to the cap
		{"?limit=3", "3"},   // under the cap: echoed as-is
		{"?limit=5", "5"},   // exactly the cap
		{"?limit=999", "5"}, // over the cap: clamped
	} {
		resp, body := do(t, "GET", base+"/v1/sessions/s/violations"+tc.query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("violations%s: %d: %s", tc.query, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Effective-Limit"); got != tc.want {
			t.Fatalf("violations%s: X-Effective-Limit = %q, want %q", tc.query, got, tc.want)
		}
	}
}

// TestRetryAfterSeconds pins the header rendering: ceil to whole
// seconds, at least 1.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int
	}{
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	} {
		e := &RateLimitError{What: "ops", RetryAfter: tc.wait}
		if got := e.retryAfterSeconds(); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
	if s := (&RateLimitError{What: "ops", RetryAfter: time.Second}).Error(); s == "" {
		t.Fatal("error text must not be empty")
	}
	_ = fmt.Sprintf("%v", ErrRelationFull)
}

// TestQuotaSurvivesReboot: an explicit per-session quota override is
// durable session state — it rides the snapshot header and comes back
// on recovery — while a session that merely inherited the server
// defaults re-resolves against whatever defaults the NEW process was
// started with.
func TestQuotaSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Options{DataDir: dir, Quota: QuotaConfig{OpsPerSec: 10}})
	ts1 := httptest.NewServer(s1.Handler())

	mk := func(name string, q *WireQuota) {
		resp, body := do(t, "POST", ts1.URL+"/v1/sessions", CreateRequest{
			Name:   name,
			Schema: &WireSchema{Name: "orders", Attrs: []string{"AC", "CT"}},
			CFDs:   tinyCFDs,
			Quota:  q,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d: %s", name, resp.StatusCode, body)
		}
	}
	mk("capped", &WireQuota{OpsPerSec: 555, MaxSubscribers: 7})
	mk("plain", nil)
	shutdownService(t, s1, ts1)

	// Reboot with different defaults.
	s2 := New(Options{DataDir: dir, Quota: QuotaConfig{OpsPerSec: 20}})
	ts2 := httptest.NewServer(s2.Handler())
	defer shutdownService(t, s2, ts2)
	if n, err := s2.Recover(); err != nil || n != 2 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}

	get := func(name string) SessionInfo {
		resp, body := do(t, "GET", ts2.URL+"/v1/sessions/"+name, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get %s: %d: %s", name, resp.StatusCode, body)
		}
		var si SessionInfo
		if err := json.Unmarshal(body, &si); err != nil {
			t.Fatal(err)
		}
		return si
	}
	capped := get("capped")
	if capped.Quota == nil || capped.Quota.OpsPerSec != 555 || capped.Quota.MaxSubscribers != 7 {
		t.Fatalf("explicit quota lost across reboot: %+v", capped.Quota)
	}
	plain := get("plain")
	if plain.Quota == nil || plain.Quota.OpsPerSec != 20 {
		t.Fatalf("inherited quota should re-resolve to the new default: %+v", plain.Quota)
	}
}
