package server

import (
	"fmt"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/metrics"
	"cfdclean/internal/relation"
)

// The wire layer: JSON shapes for every request and response the service
// speaks, plus the conversions to and from the in-process types. SQL
// null is represented as JSON null (a nil *string); everything else is a
// plain string. Field order in the structs below is part of the wire
// contract — responses serialize deterministically, which is what lets
// the equivalence suite compare server output byte for byte against the
// in-process API.

// WireTuple is one tuple on the wire. ID must be omitted (zero) on
// insert requests — the session assigns ids in arrival order, and a
// client-supplied id is rejected with 400 — and is always present on
// responses. W carries optional per-attribute confidence weights.
type WireTuple struct {
	ID   int64     `json:"id,omitempty"`
	Vals []*string `json:"vals"`
	W    []float64 `json:"w,omitempty"`
}

// WireSet is one cell update: set attribute Attr (by name) of tuple ID
// to Value; a JSON-null Value sets SQL null. The updated tuple is
// re-cleaned by the session's repair pass, so the stored value may
// differ from the requested one if the update introduced violations.
type WireSet struct {
	ID    int64   `json:"id"`
	Attr  string  `json:"attr"`
	Value *string `json:"value"`
}

// WireChange reports one repaired cell of an applied batch: the engine
// stored To where the arriving tuple carried From.
type WireChange struct {
	ID   int64   `json:"id"`
	Attr string  `json:"attr"`
	From *string `json:"from"`
	To   *string `json:"to"`
}

// WireSnapshot is increpair.Snapshot on the wire.
type WireSnapshot struct {
	Watermark  int64   `json:"watermark"`
	Version    uint64  `json:"version"`
	Size       int     `json:"size"`
	Batches    int     `json:"batches"`
	Inserted   int     `json:"inserted"`
	Deleted    int     `json:"deleted"`
	Cost       float64 `json:"cost"`
	Changes    int     `json:"changes"`
	Violations int     `json:"violations"`
	Satisfied  bool    `json:"satisfied"`
	Closed     bool    `json:"closed"`
}

// CreateRequest opens a named session. The base database comes either
// from BaseCSV (a full CSV document whose header names the attributes;
// Schema may then be omitted) or from Schema plus Base rows; an empty
// base is a schema-only session. CFDs is the constraint set in the
// package's text format (see ParseCFDs).
type CreateRequest struct {
	Name    string       `json:"name"`
	Schema  *WireSchema  `json:"schema,omitempty"`
	CFDs    string       `json:"cfds"`
	BaseCSV string       `json:"base_csv,omitempty"`
	Base    []WireTuple  `json:"base,omitempty"`
	Options *WireOptions `json:"options,omitempty"`
	// Quota overrides the server's default admission-control limits for
	// this session: zero fields inherit the -quota-* defaults, negative
	// fields mean explicitly unlimited.
	Quota *WireQuota `json:"quota,omitempty"`
	// Store selects this session's tuple storage backend: "mem" (full
	// inline snapshots), "disk" (page-file spill store; requires a
	// durable server), or "" to inherit the node's -store default.
	Store string `json:"store,omitempty"`
}

// WireQuota is a session's admission-control configuration on the wire:
// token-bucket rates plus hard caps. In a create request, zero fields
// inherit the server defaults and negative fields lift them; in session
// listings it reports the effective limits (absent when fully
// unlimited). A rate-limited write is answered 429 with Retry-After;
// the size cap maps to 403 and the subscriber cap to 409.
type WireQuota struct {
	OpsPerSec       float64 `json:"ops_per_sec,omitempty"`
	TuplesPerSec    float64 `json:"tuples_per_sec,omitempty"`
	MaxRelationSize int     `json:"max_relation_size,omitempty"`
	MaxSubscribers  int     `json:"max_subscribers,omitempty"`
}

// WireSchema names a relation and its attributes.
type WireSchema struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// WireOptions tunes the session's INCREPAIR engine; zero values take
// the engine defaults (k = 2, linear ordering, all cores).
type WireOptions struct {
	// Ordering is the ΔD processing order: "linear", "vio" or "weight".
	Ordering string `json:"ordering,omitempty"`
	// K is TUPLERESOLVE's attribute-subset size.
	K int `json:"k,omitempty"`
	// NearestK is the per-attribute fan-out of the cost-based index.
	NearestK int `json:"nearest_k,omitempty"`
	// Workers bounds candidate-evaluation parallelism inside one engine
	// pass (sessions are single-writer; this is intra-batch parallelism).
	Workers int `json:"workers,omitempty"`
}

// CreateResponse acknowledges a created session. Initial summarizes the
// §5.3 cleaning performed when the base was dirty, or is absent.
type CreateResponse struct {
	Name     string        `json:"name"`
	Attrs    []string      `json:"attrs"`
	Rules    int           `json:"rules"`
	Initial  *BatchSummary `json:"initial,omitempty"`
	Snapshot WireSnapshot  `json:"snapshot"`
}

// BatchSummary condenses one engine pass.
type BatchSummary struct {
	Tuples  int     `json:"tuples"`
	Cost    float64 `json:"cost"`
	Changes int     `json:"changes"`
}

// ApplyRequest is one mutation batch: deletes, then cell updates, then
// inserts, applied by a single engine pass (see Session.ApplyOps).
type ApplyRequest struct {
	Inserts []WireTuple `json:"inserts,omitempty"`
	Deletes []int64     `json:"deletes,omitempty"`
	Sets    []WireSet   `json:"sets,omitempty"`
}

// ApplyResponse reports one synchronously applied batch. Seq is the
// session's engine-pass sequence number; Inserted holds the repaired
// tuples under their assigned ids, and Changed lists the cells the
// repair modified relative to the arriving values.
type ApplyResponse struct {
	Session  string       `json:"session"`
	Seq      uint64       `json:"seq"`
	Inserted []WireTuple  `json:"inserted"`
	Changed  []WireChange `json:"changed,omitempty"`
	Deleted  int          `json:"deleted"`
	Cost     float64      `json:"cost"`
	Changes  int          `json:"changes"`
	Snapshot WireSnapshot `json:"snapshot"`
}

// IngestResponse acknowledges an asynchronously queued batch (202): the
// batch will be applied — possibly coalesced with queued neighbours into
// one engine pass — and its effect observed via the events stream or the
// session snapshot.
type IngestResponse struct {
	Session string `json:"session"`
	Queued  int    `json:"queued"`
}

// WireViolation is one CFD violation: tuple T violates rule Rule; With
// is the partner tuple for variable-RHS violations, 0 for single-tuple
// (constant) violations.
type WireViolation struct {
	T    int64  `json:"t"`
	Rule string `json:"rule"`
	With int64  `json:"with,omitempty"`
}

// ViolationsResponse is one page of a session's violation listing,
// read at one pinned journal version (Version; also the response's
// X-Session-Version header). Total counts ALL violations at that
// version, before filters and paging. NextCursor, when present, is the
// opaque token for the next page at the same version: pass it back as
// ?cursor= with no other filter parameters. A cursor whose version the
// server no longer retains is answered 410 Gone — restart the listing
// without a cursor.
type ViolationsResponse struct {
	Session    string          `json:"session"`
	Version    uint64          `json:"version"`
	Total      int             `json:"total"`
	Violations []WireViolation `json:"violations"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// SessionInfo describes one hosted session in listings. Persist is
// absent on an in-memory service, "ok" while the session's WAL is
// advancing, and "error: ..." once persistence broke (the session keeps
// serving; its durable image stops advancing).
type SessionInfo struct {
	Name     string     `json:"name"`
	Attrs    []string   `json:"attrs"`
	Queue    int        `json:"queue"`
	QueueCap int        `json:"queue_cap"`
	Persist  string     `json:"persist,omitempty"`
	Quota    *WireQuota `json:"quota,omitempty"`
	// Role ("primary"/"follower") and Replication ("target@version",
	// the follower's acknowledged journal version) render only on
	// clustered nodes; single-node listings stay byte-stable.
	Role        string       `json:"role,omitempty"`
	Replication string       `json:"replication,omitempty"`
	// Store reports the disk-backed page store's state; absent for
	// memory-backed sessions, so their listings stay byte-stable.
	Store    *WireStore   `json:"store,omitempty"`
	Snapshot WireSnapshot `json:"snapshot"`
}

// WireStore reports a session's disk-backed tuple store in listings:
// the committed manifest generation, page counts (committed / dirty in
// memory / clean cached), row and dictionary sizes at the last flush,
// and the store's total on-disk footprint.
type WireStore struct {
	Kind        string `json:"kind"`
	Gen         uint64 `json:"gen"`
	Pages       int    `json:"pages"`
	DirtyPages  int    `json:"dirty_pages"`
	CachedPages int    `json:"cached_pages"`
	Tuples      int    `json:"tuples"`
	DictEntries int    `json:"dict_entries"`
	DiskBytes   int64  `json:"disk_bytes"`
}

// ListResponse enumerates hosted sessions in name order.
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// MetricsResponse is the service-wide counter and latency report.
// RateLimited counts writes refused by tenant quotas (429/403);
// ErrorPasses counts engine passes that returned an error. Both are
// omitted while zero so pre-quota clients see unchanged bodies.
type MetricsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Sessions      int          `json:"sessions"`
	Passes        uint64       `json:"passes"`
	Batches       uint64       `json:"batches"`
	Coalesced     uint64       `json:"coalesced"`
	Rejected      uint64       `json:"rejected"`
	RateLimited   uint64       `json:"rate_limited,omitempty"`
	ErrorPasses   uint64       `json:"error_passes,omitempty"`
	Tuples        uint64       `json:"tuples"`
	Latency       *WireLatency `json:"latency,omitempty"`
	Ops           *OpsMetrics  `json:"ops,omitempty"`
}

// OpsMetrics is the pipeline's operational instrumentation: per-session
// queue depths plus histograms over the hot-path stages (engine pass,
// WAL append→fsync lag, ingest fold size) and the slow-SSE drop count.
type OpsMetrics struct {
	Queues      []QueueGauge      `json:"queues,omitempty"`
	PassSeconds *metrics.Snapshot `json:"pass_seconds,omitempty"`
	FsyncLag    *metrics.Snapshot `json:"fsync_lag_seconds,omitempty"`
	FoldBatches *metrics.Snapshot `json:"fold_batches,omitempty"`
	SSEDropped  uint64            `json:"sse_dropped,omitempty"`
	// Replication counters, summed over this node's shipping streams
	// (primary side) plus the batches it applied as a follower. All
	// omitted while zero so single-node bodies are unchanged.
	ShipBatches    uint64 `json:"ship_batches,omitempty"`
	ShipSnapshots  uint64 `json:"ship_snapshots,omitempty"`
	ShipDegraded   uint64 `json:"ship_degraded,omitempty"`
	ShipDropped    uint64 `json:"ship_dropped,omitempty"`
	ReplicaApplied uint64 `json:"replica_applied,omitempty"`
}

// QueueGauge is one session's work-queue occupancy at scrape time.
type QueueGauge struct {
	Session string `json:"session"`
	Depth   int    `json:"depth"`
	Cap     int    `json:"cap"`
}

// WireLatency summarizes engine-pass latencies over a bounded window of
// recent passes (milliseconds).
type WireLatency struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
	Maxms float64 `json:"max_ms"`
}

// Event is one server-sent notification, emitted after every engine
// pass: which session advanced, how many client batches the pass
// coalesced, the dirty tuples the repair had to touch, and the resulting
// snapshot. Clients stream these from GET /v1/sessions/{name}/events.
// Resync is set on the first event a slow subscriber receives after
// events were dropped for it: the sequence has a gap, but the embedded
// snapshot is still the session's current authoritative state.
type Event struct {
	Session   string       `json:"session"`
	Seq       uint64       `json:"seq"`
	Resync    bool         `json:"resync,omitempty"`
	Coalesced int          `json:"coalesced"`
	Inserted  int          `json:"inserted"`
	Deleted   int          `json:"deleted"`
	Dirty     []WireChange `json:"dirty,omitempty"`
	Snapshot  WireSnapshot `json:"snapshot"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// misdirectedResponse is the 421 body a replica answers writes with: the
// primary's address rides in the body and the X-Primary header.
type misdirectedResponse struct {
	Error   string `json:"error"`
	Primary string `json:"primary,omitempty"`
}

// PromoteResponse reports a promotion's outcome (idempotent: promoting
// a primary reports its current state).
type PromoteResponse struct {
	Session string `json:"session"`
	Role    string `json:"role"`
	Version uint64 `json:"version"`
}

// ClusterInfo is this node's view of the cluster: its identity, the
// ring membership, and every session it hosts with ownership and
// shipping state. Served by GET /v1/cluster on any node (clustered or
// not — a single-node server reports just its sessions).
type ClusterInfo struct {
	Self     string           `json:"self,omitempty"`
	Peers    []string         `json:"peers,omitempty"`
	Ack      string           `json:"ack,omitempty"`
	Sessions []ClusterSession `json:"sessions"`
}

// ClusterSession is one hosted session's replication placement: its
// role here, the ring owner, and — for shipping primaries — the
// follower's address and acknowledged journal version.
type ClusterSession struct {
	Name     string `json:"name"`
	Role     string `json:"role"`
	Version  uint64 `json:"version"`
	Owner    string `json:"owner,omitempty"`
	Follower string `json:"follower,omitempty"`
	Shipped  uint64 `json:"shipped,omitempty"`
	// LastError is the stream's most recent delivery failure, empty when
	// the last delivery succeeded — the operator-visible reason a
	// follower is lagging (e.g. a snapshot install the receiver refused).
	LastError string `json:"last_error,omitempty"`
}

// PeersRequest swaps the cluster's peer list (PUT /v1/cluster/peers).
type PeersRequest struct {
	Peers []string `json:"peers"`
}

// PeersResponse reports the rebalance a peer-list change triggered:
// sessions transferred to their new owners, and per-session transfer
// failures (those sessions keep serving on this node).
type PeersResponse struct {
	Peers  []string `json:"peers"`
	Moved  []string `json:"moved,omitempty"`
	Errors []string `json:"errors,omitempty"`
}

func encodeValue(v relation.Value) *string {
	if v.Null {
		return nil
	}
	s := v.Str
	return &s
}

func decodeValue(p *string) relation.Value {
	if p == nil {
		return relation.NullValue
	}
	return relation.S(*p)
}

// EncodeTuple converts a tuple to its wire form (used by the handlers,
// the load driver and the equivalence tests; inverse of decodeTuple up
// to id assignment).
func EncodeTuple(t *relation.Tuple) WireTuple {
	wt := WireTuple{ID: int64(t.ID), Vals: make([]*string, len(t.Vals))}
	for i, v := range t.Vals {
		wt.Vals[i] = encodeValue(v)
	}
	if t.W != nil {
		wt.W = append([]float64(nil), t.W...)
	}
	return wt
}

func decodeTuple(wt WireTuple, arity int) (*relation.Tuple, error) {
	if len(wt.Vals) != arity {
		return nil, fmt.Errorf("tuple has %d values, want %d", len(wt.Vals), arity)
	}
	if wt.W != nil && len(wt.W) != arity {
		return nil, fmt.Errorf("tuple has %d weights, want %d", len(wt.W), arity)
	}
	t := &relation.Tuple{ID: relation.TupleID(wt.ID), Vals: make([]relation.Value, arity)}
	for i, p := range wt.Vals {
		t.Vals[i] = decodeValue(p)
	}
	if wt.W != nil {
		t.W = append([]float64(nil), wt.W...)
	}
	return t, nil
}

func encodeSnapshot(sn increpair.Snapshot) WireSnapshot {
	return WireSnapshot{
		Watermark:  int64(sn.Watermark),
		Version:    sn.Version,
		Size:       sn.Size,
		Batches:    sn.Batches,
		Inserted:   sn.Inserted,
		Deleted:    sn.Deleted,
		Cost:       sn.Cost,
		Changes:    sn.Changes,
		Violations: sn.Violations,
		Satisfied:  sn.Satisfied,
		Closed:     sn.Closed,
	}
}

// changedCells diffs each repaired tuple against its arriving original.
func changedCells(res *increpair.Result, attrs []string) []WireChange {
	var out []WireChange
	for i, rt := range res.Inserted {
		orig := res.Originals[i]
		for a := range rt.Vals {
			if !relation.StrictEq(orig.Vals[a], rt.Vals[a]) {
				out = append(out, WireChange{
					ID:   int64(rt.ID),
					Attr: attrs[a],
					From: encodeValue(orig.Vals[a]),
					To:   encodeValue(rt.Vals[a]),
				})
			}
		}
	}
	return out
}

func encodeViolations(vs []cfd.Violation) []WireViolation {
	out := make([]WireViolation, len(vs))
	for i, v := range vs {
		out[i] = WireViolation{T: int64(v.T), Rule: v.N.Name, With: int64(v.With)}
	}
	return out
}

// decodeOptions maps wire options onto engine options.
func decodeOptions(wo *WireOptions) (*increpair.Options, error) {
	o := &increpair.Options{}
	if wo == nil {
		return o, nil
	}
	switch wo.Ordering {
	case "", "linear":
		o.Ordering = increpair.Linear
	case "vio":
		o.Ordering = increpair.ByViolations
	case "weight":
		o.Ordering = increpair.ByWeight
	default:
		return nil, fmt.Errorf("unknown ordering %q (want linear, vio or weight)", wo.Ordering)
	}
	o.K = wo.K
	o.NearestK = wo.NearestK
	o.Workers = wo.Workers
	return o, nil
}
