package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cfdclean/internal/cfd"
)

// Tests for the streaming read path: cursor-paginated violation
// listings, chunked CSV dumps with completion trailers, version-pinned
// view reuse with 410 on eviction, and SSE resume from Last-Event-ID.

func applyOne(t *testing.T, base, name string, ac, ct string) WireSnapshot {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/sessions/"+name+"/apply", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp(ac), strp(ct)}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d: %s", resp.StatusCode, body)
	}
	var ar ApplyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return ar.Snapshot
}

func TestViolationsParamValidation(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")

	for _, c := range []struct {
		query string
		want  int
	}{
		{"", http.StatusOK},
		{"?limit=5", http.StatusOK},
		{"?limit=0", http.StatusBadRequest},
		{"?limit=-3", http.StatusBadRequest},
		{"?limit=abc", http.StatusBadRequest},
		{"?attr=CT", http.StatusOK},
		{"?attr=NOPE", http.StatusBadRequest},
		{"?rule=phi1&min_id=1&max_id=9", http.StatusOK},
		{"?min_id=-1", http.StatusBadRequest},
		{"?max_id=x", http.StatusBadRequest},
		{"?cursor=!!!", http.StatusBadRequest},
	} {
		resp, body := do(t, "GET", base+"/v1/sessions/s/violations"+c.query, nil)
		if resp.StatusCode != c.want {
			t.Errorf("violations%s: %d (want %d): %s", c.query, resp.StatusCode, c.want, body)
		}
		if c.want == http.StatusOK && resp.Header.Get("X-Session-Version") == "" {
			t.Errorf("violations%s: no X-Session-Version header", c.query)
		}
	}

	// A cursor fixes the filter; explicit filter params alongside it are
	// ambiguous and refused.
	tok := encodeCursor(readCursor{version: 1, f: cfd.AnyVio()})
	resp, body := do(t, "GET", base+"/v1/sessions/s/violations?cursor="+tok+"&rule=phi1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cursor+filter: %d: %s", resp.StatusCode, body)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	for _, c := range []readCursor{
		{version: 7, offset: 120, f: cfd.AnyVio()},
		{version: 1, offset: 0, f: cfd.VioFilter{Rule: "phi:with:colons", Attr: 3, MinID: 5, MaxID: 900}},
	} {
		got, err := decodeCursor(encodeCursor(c))
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("cursor round trip: got %+v want %+v", got, c)
		}
	}
	for _, bad := range []string{
		"", "AAAA", "!!!",
		base64.RawURLEncoding.EncodeToString([]byte("9:9:9:9")),     // too few fields
		base64.RawURLEncoding.EncodeToString([]byte("1:x:0:0:0:r")), // bad offset
	} {
		if _, err := decodeCursor(bad); err == nil {
			t.Fatalf("decodeCursor(%q) accepted", bad)
		}
	}
}

// TestDumpStreamsWithTrailer: the dump is served chunked with the
// completion trailer, carries the pinned version, and its bytes are
// identical to the in-process buffered serialization at that version.
func TestDumpStreamsWithTrailer(t *testing.T) {
	s, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")
	applyOne(t, base, "s", "215", "PHI")

	resp, body := do(t, "GET", base+"/v1/sessions/s/dump", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dump: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Trailer.Get("X-Dump-Complete"); got != "true" {
		t.Fatalf("X-Dump-Complete trailer = %q, want \"true\"", got)
	}
	ver := resp.Header.Get("X-Session-Version")
	if ver == "" {
		t.Fatal("dump carries no X-Session-Version")
	}
	h, err := s.Registry().Get("s")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := h.sess.Dump(&want); err != nil {
		t.Fatal(err)
	}
	if cur := strconv.FormatUint(h.sess.Snapshot().Version, 10); cur != ver {
		t.Fatalf("version moved between dump (%s) and check (%s)", ver, cur)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("streamed dump differs from buffered serialization:\n%s\nvs\n%s", body, want.Bytes())
	}
}

// TestCursorGoneAfterEviction: a cursor pinned at an old version is
// answered 410 once enough newer versions have rotated it out of the
// view cache; a cursor at the session's current version is always
// servable (it re-pins).
func TestCursorGoneAfterEviction(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")

	resp, _ := do(t, "GET", base+"/v1/sessions/s/violations", nil)
	v1, err := strconv.ParseUint(resp.Header.Get("X-Session-Version"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the session past the cache cap: each read caches its own
	// version, and pruning keeps only the most recent idle views.
	for i := 0; i < maxCachedViews+1; i++ {
		applyOne(t, base, "s", fmt.Sprintf("6%02d", i), "NYC")
		do(t, "GET", base+"/v1/sessions/s/violations", nil)
	}

	tok := encodeCursor(readCursor{version: v1, f: cfd.AnyVio()})
	resp, body := do(t, "GET", base+"/v1/sessions/s/violations?cursor="+tok, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor: %d (want 410): %s", resp.StatusCode, body)
	}

	// The current version always works, cached or not.
	resp, _ = do(t, "GET", base+"/v1/sessions/s/violations", nil)
	cur := resp.Header.Get("X-Session-Version")
	curV, _ := strconv.ParseUint(cur, 10, 64)
	tok = encodeCursor(readCursor{version: curV, f: cfd.AnyVio()})
	resp, body = do(t, "GET", base+"/v1/sessions/s/violations?cursor="+tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("current-version cursor: %d: %s", resp.StatusCode, body)
	}
	var vr ViolationsResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Version != curV {
		t.Fatalf("cursor at %d served version %d", curV, vr.Version)
	}
}

// TestServerReadersRaceWriter is the service-level read/write battery:
// four goroutines page violation listings and two stream dumps while
// the writer applies batches. Every read must be internally consistent
// — dumps at the same pinned version byte-identical, trailers present,
// versions monotone per reader — and the final streamed dump must match
// the in-process buffered state. Run under -race.
func TestServerReadersRaceWriter(t *testing.T) {
	s, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "race")

	var (
		mu      sync.Mutex
		byVer   = map[string][]byte{}
		stop    = make(chan struct{})
		readers sync.WaitGroup
	)
	checkDump := func() error {
		resp, body := do(t, "GET", base+"/v1/sessions/race/dump", nil)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("dump: %d: %s", resp.StatusCode, body)
		}
		if resp.Trailer.Get("X-Dump-Complete") != "true" {
			return fmt.Errorf("dump missing completion trailer")
		}
		ver := resp.Header.Get("X-Session-Version")
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := byVer[ver]; ok {
			if !bytes.Equal(prev, body) {
				return fmt.Errorf("two dumps at version %s differ", ver)
			}
		} else {
			byVer[ver] = body
		}
		return nil
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := checkDump(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			queries := []string{"?limit=5", "?limit=3&rule=phi1", "?limit=7&attr=CT", "?limit=2&min_id=1&max_id=50"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := do(t, "GET", base+"/v1/sessions/race/violations"+queries[(g+i)%len(queries)], nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("violations: %d: %s", resp.StatusCode, body)
					return
				}
				var vr ViolationsResponse
				if err := json.Unmarshal(body, &vr); err != nil {
					t.Error(err)
					return
				}
				// The INCREPAIR invariant holds at every pinned version:
				// batches leave the session consistent.
				if vr.Total != 0 || len(vr.Violations) != 0 {
					t.Errorf("violations at version %d: total %d", vr.Version, vr.Total)
					return
				}
			}
		}(g)
	}

	for i := 0; i < 25; i++ {
		ct := "NYC"
		if i%3 == 0 {
			ct = "PHI" // dirty: repaired by the pass
		}
		applyOne(t, base, "race", "212", ct)
	}
	close(stop)
	readers.Wait()

	// Final streamed read equals the in-process buffered state.
	h, err := s.Registry().Get("race")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := h.sess.Dump(&want); err != nil {
		t.Fatal(err)
	}
	resp, body := do(t, "GET", base+"/v1/sessions/race/dump", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("final streamed dump diverged (%d)", resp.StatusCode)
	}
	// Idle views may stay cached for cursor continuation, but never more
	// than the cap — and all of them must be releasable (no leaked refs).
	if n := h.sess.Current().ActiveViews(); n > maxCachedViews {
		t.Fatalf("ActiveViews = %d after readers stopped, want <= %d", n, maxCachedViews)
	}
	h.views.closeAll()
	if n := h.sess.Current().ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d after cache close, want 0 (leaked reader refs)", n)
	}
}

// sseClient consumes one SSE stream in the background, emitting
// (id, event) pairs parsed from the wire format.
type sseEvent struct {
	id uint64
	ev Event
}

func openSSE(t *testing.T, url, lastEventID string) (<-chan sseEvent, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: %d", resp.StatusCode)
	}
	out := make(chan sseEvent, 64)
	go func() {
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		var cur sseEvent
		for sc.Scan() {
			l := sc.Text()
			switch {
			case strings.HasPrefix(l, "id: "):
				cur.id, _ = strconv.ParseUint(strings.TrimPrefix(l, "id: "), 10, 64)
			case strings.HasPrefix(l, "data: "):
				if json.Unmarshal([]byte(strings.TrimPrefix(l, "data: ")), &cur.ev) == nil {
					out <- cur
				}
				cur = sseEvent{}
			}
		}
	}()
	return out, func() { resp.Body.Close() }
}

func collectSSE(t *testing.T, ch <-chan sseEvent, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	for len(out) < n {
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatalf("stream ended after %d/%d events", len(out), n)
			}
			out = append(out, e)
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d/%d events", len(out), n)
		}
	}
	return out
}

// TestSSEResumeFromLastEventID: a client that reconnects with the last
// journal version it saw receives exactly the missed tail — replayed
// from the event ring, no resync — and keeps receiving live events
// seamlessly past it.
func TestSSEResumeFromLastEventID(t *testing.T) {
	s, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")

	ch, cancel := openSSE(t, base+"/v1/sessions/s/events", "")
	for i := 0; i < 3; i++ {
		applyOne(t, base, "s", "212", "NYC")
	}
	got := collectSSE(t, ch, 3)
	cancel()
	lastID := got[2].id
	if lastID == 0 {
		t.Fatal("events carry no id")
	}

	// Offline: three more passes land in the ring.
	for i := 0; i < 3; i++ {
		applyOne(t, base, "s", "215", "NYC")
	}
	// The ring is written by the committer after the apply reply; wait
	// for it to catch up before resuming.
	h, err := s.Registry().Get("s")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.subs.mu.Lock()
		n := len(h.subs.tail(lastID))
		h.subs.mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ring never saw the offline passes")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ch, cancel = openSSE(t, base+"/v1/sessions/s/events", strconv.FormatUint(lastID, 10))
	defer cancel()
	replay := collectSSE(t, ch, 3)
	for i, e := range replay {
		if e.id <= lastID {
			t.Fatalf("replayed event %d has id %d <= Last-Event-ID %d", i, e.id, lastID)
		}
		if e.ev.Resync {
			t.Fatalf("covered resume replayed a resync event: %+v", e.ev)
		}
		if e.ev.Seq != got[2].ev.Seq+uint64(i)+1 {
			t.Fatalf("replay gap: event %d has seq %d, want %d", i, e.ev.Seq, got[2].ev.Seq+uint64(i)+1)
		}
	}
	// Live continuation after the replayed tail.
	applyOne(t, base, "s", "212", "NYC")
	live := collectSSE(t, ch, 1)
	if live[0].ev.Seq != replay[2].ev.Seq+1 || live[0].ev.Resync {
		t.Fatalf("live event after replay: %+v", live[0].ev)
	}
}

// TestSSEResumeBeyondRing: when the ring no longer covers the client's
// Last-Event-ID, the replay degrades to resync semantics — the first
// replayed event is flagged, and its snapshot re-anchors the client.
func TestSSEResumeBeyondRing(t *testing.T) {
	s, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")
	h, err := s.Registry().Get("s")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the replay ring before any event is published.
	h.subs.mu.Lock()
	h.subs.ringCap = 2
	h.subs.mu.Unlock()

	first := applyOne(t, base, "s", "212", "NYC")
	for i := 0; i < 4; i++ {
		applyOne(t, base, "s", "215", "NYC")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.subs.mu.Lock()
		evicted := h.subs.dropVersion >= first.Version
		h.subs.mu.Unlock()
		if evicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ring never evicted the first pass")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ch, cancel := openSSE(t, base+"/v1/sessions/s/events", strconv.FormatUint(first.Version, 10))
	defer cancel()
	replay := collectSSE(t, ch, 2)
	if !replay[0].ev.Resync {
		t.Fatalf("uncovered resume: first replayed event not resync-flagged: %+v", replay[0].ev)
	}
	if replay[1].ev.Resync {
		t.Fatalf("resync flag leaked past the first replayed event: %+v", replay[1].ev)
	}
	if !replay[1].ev.Snapshot.Satisfied {
		t.Fatalf("replayed snapshot not authoritative: %+v", replay[1].ev.Snapshot)
	}
}
