package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
)

// tinyCFDs is the README example: area code 212 implies city NYC.
const tinyCFDs = "cfd phi1: [AC] -> [CT]\n(212 || NYC)\n"

func strp(s string) *string { return &s }

func newTestService(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func createTiny(t *testing.T, base string, name string) {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name:   name,
		Schema: &WireSchema{Name: "orders", Attrs: []string{"AC", "CT"}},
		CFDs:   tinyCFDs,
		Base:   []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
}

func TestServiceRoundTrip(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL

	resp, body := do(t, "GET", base+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d: %s", resp.StatusCode, body)
	}

	createTiny(t, base, "orders")

	// Apply one clean and one dirty insert: the 212/PHI tuple must be
	// repaired to satisfy phi1.
	resp, body = do(t, "POST", base+"/v1/sessions/orders/apply", ApplyRequest{
		Inserts: []WireTuple{
			{Vals: []*string{strp("212"), strp("NYC")}},
			{Vals: []*string{strp("212"), strp("PHI")}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d: %s", resp.StatusCode, body)
	}
	var ar ApplyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Seq != 1 || len(ar.Inserted) != 2 {
		t.Fatalf("apply response: seq=%d inserted=%d", ar.Seq, len(ar.Inserted))
	}
	if !ar.Snapshot.Satisfied || ar.Snapshot.Size != 3 {
		t.Fatalf("apply snapshot: %+v", ar.Snapshot)
	}
	if ar.Changes == 0 || len(ar.Changed) == 0 {
		t.Fatal("dirty insert was not repaired")
	}

	resp, body = do(t, "GET", base+"/v1/sessions/orders/violations", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("violations: %d: %s", resp.StatusCode, body)
	}
	var vr ViolationsResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Total != 0 || len(vr.Violations) != 0 {
		t.Fatalf("session should be consistent, got %+v", vr)
	}

	resp, body = do(t, "GET", base+"/v1/sessions/orders/dump", nil)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "AC,CT\n") {
		t.Fatalf("dump: %d: %q", resp.StatusCode, body)
	}
	// The repair may fix either side of the violating tuple (here it
	// nulls AC, the cheaper change); what must be gone is the violating
	// combination itself.
	if strings.Contains(string(body), "212,PHI") {
		t.Fatalf("dump still contains the violating row:\n%s", body)
	}

	resp, body = do(t, "GET", base+"/v1/sessions", nil)
	var lr ListResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Sessions) != 1 || lr.Sessions[0].Name != "orders" {
		t.Fatalf("list: %s", body)
	}

	resp, body = do(t, "GET", base+"/v1/metrics", nil)
	var mr MetricsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Sessions != 1 || mr.Passes != 1 || mr.Batches != 1 || mr.Tuples != 2 {
		t.Fatalf("metrics: %s", body)
	}
	if mr.Latency == nil || mr.Latency.Count != 1 {
		t.Fatalf("metrics latency: %s", body)
	}

	resp, _ = do(t, "DELETE", base+"/v1/sessions/orders", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", base+"/v1/sessions/orders", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.StatusCode)
	}
}

func TestServiceApplyDeletesAndSets(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")

	// Insert a second tuple, then update its CT to a violating value —
	// the set is re-cleaned — and delete the base tuple.
	resp, body := do(t, "POST", base+"/v1/sessions/s/apply", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("NYC")}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d: %s", resp.StatusCode, body)
	}
	var first ApplyResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	newID := first.Inserted[0].ID

	resp, body = do(t, "POST", base+"/v1/sessions/s/apply", ApplyRequest{
		Deletes: []int64{1},
		Sets:    []WireSet{{ID: newID, Attr: "CT", Value: strp("PHI")}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply ops: %d: %s", resp.StatusCode, body)
	}
	var ar ApplyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Deleted != 1 || !ar.Snapshot.Satisfied || ar.Snapshot.Size != 1 {
		t.Fatalf("apply ops response: %s", body)
	}
	// The update introduced a phi1 violation, so the repair must have
	// touched the tuple (either CT back or AC away).
	if ar.Changes == 0 {
		t.Fatalf("violating set was stored untouched: %s", body)
	}

	// Engine-level validation errors surface as 422.
	resp, body = do(t, "POST", base+"/v1/sessions/s/apply", ApplyRequest{Deletes: []int64{424242}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown delete id: %d: %s", resp.StatusCode, body)
	}
	// Wire-level validation errors surface as 400.
	resp, body = do(t, "POST", base+"/v1/sessions/s/apply", ApplyRequest{
		Sets: []WireSet{{ID: newID, Attr: "NOPE", Value: strp("x")}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown attr: %d: %s", resp.StatusCode, body)
	}
	// The wire contract assigns insert ids server-side; a client-supplied
	// id is refused before anything reaches the engine.
	resp, body = do(t, "POST", base+"/v1/sessions/s/apply", ApplyRequest{
		Inserts: []WireTuple{{ID: 99, Vals: []*string{strp("212"), strp("NYC")}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("insert with client id: %d: %s", resp.StatusCode, body)
	}
}

func TestServiceCreateValidation(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL

	cases := []struct {
		name string
		req  CreateRequest
	}{
		{"empty name", CreateRequest{CFDs: tinyCFDs, Schema: &WireSchema{Name: "r", Attrs: []string{"A"}}}},
		{"bad name", CreateRequest{Name: "a/b", CFDs: tinyCFDs, Schema: &WireSchema{Name: "r", Attrs: []string{"A"}}}},
		{"no cfds", CreateRequest{Name: "x", Schema: &WireSchema{Name: "r", Attrs: []string{"A"}}}},
		{"no base", CreateRequest{Name: "x", CFDs: tinyCFDs}},
		{"bad cfd text", CreateRequest{Name: "x", CFDs: "cfd broken", Schema: &WireSchema{Name: "r", Attrs: []string{"AC", "CT"}}}},
		{"bad ordering", CreateRequest{Name: "x", CFDs: tinyCFDs,
			Schema:  &WireSchema{Name: "r", Attrs: []string{"AC", "CT"}},
			Options: &WireOptions{Ordering: "bogus"}}},
	}
	for _, c := range cases {
		resp, body := do(t, "POST", base+"/v1/sessions", c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d: %s", c.name, resp.StatusCode, body)
		}
	}

	createTiny(t, base, "dup")
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name:   "dup",
		Schema: &WireSchema{Name: "orders", Attrs: []string{"AC", "CT"}},
		CFDs:   tinyCFDs,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d: %s", resp.StatusCode, body)
	}

	resp, _ = do(t, "POST", base+"/v1/sessions/nope/apply", ApplyRequest{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("apply to unknown session: %d", resp.StatusCode)
	}
}

// TestCoalescing drives the worker's fold loop directly: three queued
// async batches must collapse into one engine pass with all tuples
// applied, while a synchronous job is never folded.
func TestCoalescing(t *testing.T) {
	r := NewRegistry(8)
	h := newTinyHosted(t, r, 8)

	mk := func(ct string) []*relation.Tuple {
		return []*relation.Tuple{relation.NewTuple(0, "212", ct)}
	}
	// Two queued async batches behind the one the worker "picked up".
	h.queue <- job{inserts: mk("NYC"), coalescable: true}
	h.queue <- job{inserts: mk("PHI"), coalescable: true}
	h.dispatch(r, job{inserts: mk("NYC"), coalescable: true})

	if got := h.seq.Load(); got != 1 {
		t.Fatalf("coalesced run took %d passes, want 1", got)
	}
	if r.coalesced.Load() != 2 {
		t.Fatalf("coalesced counter = %d, want 2", r.coalesced.Load())
	}
	sn := h.sess.Snapshot()
	if sn.Inserted != 3 || !sn.Satisfied {
		t.Fatalf("after coalesced pass: %+v", sn)
	}

	// A sync job parked behind an async one flushes the fold: two passes.
	reply := make(chan jobReply, 1)
	h.queue <- job{inserts: mk("NYC"), reply: reply}
	h.dispatch(r, job{inserts: mk("NYC"), coalescable: true})
	rep := <-reply
	if rep.err != nil {
		t.Fatal(rep.err)
	}
	if got := h.seq.Load(); got != 3 {
		t.Fatalf("async+sync run took %d total passes, want 3", got)
	}
}

// newTinyHosted builds a hosted session over the AC/CT fixture without
// starting a worker, so tests can drive dispatch deterministically. The
// committer stage IS started (dispatch hands every finished pass to it);
// cleanup drains it before the session closes, mirroring run()'s order.
func newTinyHosted(t *testing.T, r *Registry, queueDepth int) *hosted {
	t.Helper()
	sch := relation.MustSchema("orders", "AC", "CT")
	rel := relation.New(sch)
	rel.MustInsert(relation.NewTuple(0, "212", "NYC"))
	parsed, err := cfd.Parse(sch, strings.NewReader(tinyCFDs))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := increpair.NewSession(rel, cfd.NormalizeAll(parsed), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	h := &hosted{
		name:          "tiny",
		schema:        sch,
		attrs:         sch.Attrs(),
		sess:          sess,
		queue:         make(chan job, queueDepth),
		commits:       make(chan commitItem, queueDepth),
		committerDone: make(chan struct{}),
		quit:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	go h.committer(r)
	t.Cleanup(func() {
		close(h.commits)
		<-h.committerDone
	})
	return h
}

// TestBackpressure: with no worker draining a depth-1 queue, the second
// ingest must be refused with ErrBacklog (the handlers map it to 429).
func TestBackpressure(t *testing.T) {
	r := NewRegistry(1)
	h := newTinyHosted(t, r, 1)
	sh := r.shard("tiny")
	sh.m["tiny"] = h

	one := []*relation.Tuple{relation.NewTuple(0, "212", "NYC")}
	if err := r.Ingest(h, one); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if err := r.Ingest(h, one); err != ErrBacklog {
		t.Fatalf("second ingest: got %v, want ErrBacklog", err)
	}
	if r.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", r.rejected.Load())
	}

	rec := httptest.NewRecorder()
	writeError(rec, ErrBacklog)
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("ErrBacklog must map to 429 + Retry-After, got %d", rec.Code)
	}
}

// TestIngestEndToEnd: async batches are applied eventually; accepted
// work is observable via the snapshot.
func TestIngestEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Options{QueueDepth: 16})
	base := ts.URL
	createTiny(t, base, "s")

	const n = 5
	for i := 0; i < n; i++ {
		resp, body := do(t, "POST", base+"/v1/sessions/s/ingest", ApplyRequest{
			Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("PHI")}}},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	// Ingest refuses non-insert ops.
	resp, body := do(t, "POST", base+"/v1/sessions/s/ingest", ApplyRequest{Deletes: []int64{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ingest with deletes: %d: %s", resp.StatusCode, body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := do(t, "GET", base+"/v1/sessions/s", nil)
		var si SessionInfo
		if err := json.Unmarshal(body, &si); err != nil {
			t.Fatal(err)
		}
		if si.Snapshot.Inserted == n {
			if !si.Snapshot.Satisfied {
				t.Fatalf("ingested batches left violations: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested batches never applied: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrain: shutdown refuses new work but finishes every accepted
// batch before closing sessions.
func TestDrain(t *testing.T) {
	s := New(Options{QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := ts.URL
	createTiny(t, base, "s")

	const n = 4
	for i := 0; i < n; i++ {
		resp, body := do(t, "POST", base+"/v1/sessions/s/ingest", ApplyRequest{
			Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("PHI")}}},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
		}
	}
	h, err := s.Registry().Get("s")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	sn := h.sess.Snapshot()
	if sn.Inserted != n {
		t.Fatalf("drain dropped batches: inserted %d, want %d", sn.Inserted, n)
	}
	if !sn.Closed {
		t.Fatal("session not closed after drain")
	}

	resp, _ := do(t, "GET", base+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d", resp.StatusCode)
	}
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name:   "late",
		Schema: &WireSchema{Name: "orders", Attrs: []string{"AC", "CT"}},
		CFDs:   tinyCFDs,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while drained: %d: %s", resp.StatusCode, body)
	}
}

// TestEvents: the SSE stream delivers one batch event per engine pass
// and ends when the session is deleted.
func TestEvents(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")

	req, err := http.NewRequest("GET", base+"/v1/sessions/s/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type: %s", ct)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	expect := func(want string) string {
		t.Helper()
		for {
			select {
			case l, ok := <-lines:
				if !ok {
					t.Fatalf("stream ended waiting for %q", want)
				}
				if l == "" {
					continue
				}
				if strings.HasPrefix(l, want) {
					return l
				}
				if strings.HasPrefix(l, ":") {
					continue // comment / keep-alive
				}
				t.Fatalf("unexpected stream line %q (want prefix %q)", l, want)
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out waiting for %q", want)
			}
		}
	}

	// The server writes an initial comment; then apply a batch and
	// expect its event.
	do(t, "POST", base+"/v1/sessions/s/apply", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("PHI")}}},
	})
	expect("id: ")
	expect("event: batch")
	data := expect("data: ")
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Session != "s" || ev.Seq != 1 || ev.Inserted != 1 || len(ev.Dirty) == 0 {
		t.Fatalf("event: %+v", ev)
	}
	if !ev.Snapshot.Satisfied {
		t.Fatalf("event snapshot unsatisfied: %+v", ev)
	}

	do(t, "DELETE", base+"/v1/sessions/s", nil)
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-lines:
			if !ok {
				return // stream ended cleanly
			}
		case <-deadline:
			t.Fatal("stream did not end after session delete")
		}
	}
}

// TestErrorPaths sweeps the handler-level failure mapping: unknown
// sessions, malformed bodies and parameters, and post-drain behavior.
func TestErrorPaths(t *testing.T) {
	s, ts := newTestService(t, Options{})
	base := ts.URL
	createTiny(t, base, "s")

	for _, c := range []struct {
		method, path string
		body         any
		want         int
	}{
		{"GET", "/v1/sessions/nope", nil, http.StatusNotFound},
		{"DELETE", "/v1/sessions/nope", nil, http.StatusNotFound},
		{"GET", "/v1/sessions/nope/violations", nil, http.StatusNotFound},
		{"GET", "/v1/sessions/nope/dump", nil, http.StatusNotFound},
		{"GET", "/v1/sessions/nope/events", nil, http.StatusNotFound},
		{"POST", "/v1/sessions/nope/ingest", ApplyRequest{}, http.StatusNotFound},
		{"GET", "/v1/sessions/s/violations?limit=abc", nil, http.StatusBadRequest},
	} {
		resp, body := do(t, c.method, base+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: got %d (%s), want %d", c.method, c.path, resp.StatusCode, body, c.want)
		}
	}

	// Malformed JSON and unknown fields are 400s.
	resp, err := http.Post(base+"/v1/sessions/s/apply", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/sessions/s/apply", "application/json", strings.NewReader(`{"bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}

	// Registry paths not reachable over clean HTTP: apply to a session
	// already being shut down, and a canceled client context.
	h, err2 := s.Registry().Get("s")
	if err2 != nil {
		t.Fatal(err2)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	one := []*relation.Tuple{relation.NewTuple(0, "212", "NYC")}
	if _, err := s.Registry().Apply(ctx, h, nil, nil, one); err != context.Canceled {
		t.Fatalf("canceled apply: got %v", err)
	}
	// While the worker is still draining, a racing apply may legitimately
	// be accepted and processed; once the worker has exited (done
	// closed), both paths must refuse deterministically — never hang,
	// never silently drop.
	h.quitOnce.Do(func() { close(h.quit) })
	<-h.done
	if _, err := s.Registry().Apply(context.Background(), h, nil, nil, one); err != ErrDraining {
		t.Fatalf("apply to drained session: got %v", err)
	}
	if err := s.Registry().Ingest(h, one); err != ErrDraining {
		t.Fatalf("ingest to drained session: got %v", err)
	}

	// Shutdown without a caller deadline picks up DrainTimeout.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRemoveWaitsForQueue(t *testing.T) {
	s, ts := newTestService(t, Options{QueueDepth: 16})
	base := ts.URL
	createTiny(t, base, "s")
	h, err := s.Registry().Get("s")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, body := do(t, "POST", base+"/v1/sessions/s/ingest", ApplyRequest{
			Inserts: []WireTuple{{Vals: []*string{strp("212"), strp("PHI")}}},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
		}
	}
	resp, _ := do(t, "DELETE", base+"/v1/sessions/s", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	sn := h.sess.Snapshot()
	if sn.Inserted != 3 || !sn.Closed {
		t.Fatalf("remove dropped queued work: %+v", sn)
	}
}
