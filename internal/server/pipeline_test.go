package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
)

// Pipeline tests: the coalescing extensions (fold-size cap, linger
// window) and the durability ordering the committer/group-fsync split
// must preserve — no batch is acknowledged before its WAL record is on
// stable storage.

// TestCoalescingFoldCap: with CoalesceMaxTuples set, a run of queued
// async batches is split into passes at the tuple cap instead of being
// folded whole.
func TestCoalescingFoldCap(t *testing.T) {
	r := NewRegistry(8)
	r.coalesceMax = 2
	h := newTinyHosted(t, r, 8)

	mk := func(ct string) []*relation.Tuple {
		return []*relation.Tuple{relation.NewTuple(0, "212", ct)}
	}
	h.queue <- job{inserts: mk("PHI"), coalescable: true}
	h.queue <- job{inserts: mk("NYC"), coalescable: true}
	h.queue <- job{inserts: mk("PHI"), coalescable: true}
	h.dispatch(r, job{inserts: mk("NYC"), coalescable: true})
	h.dispatch(r, <-h.queue)

	// 4 batches at cap 2 → two passes of two batches each.
	if got := h.seq.Load(); got != 2 {
		t.Fatalf("capped run took %d passes, want 2", got)
	}
	if r.coalesced.Load() != 2 {
		t.Fatalf("coalesced counter = %d, want 2", r.coalesced.Load())
	}
	if sn := h.sess.Snapshot(); sn.Inserted != 4 || !sn.Satisfied {
		t.Fatalf("after capped passes: %+v", sn)
	}
}

// TestCoalescingDeadline: with CoalesceDelay set, a worker whose queue
// ran dry lingers for more coalescable work — a batch arriving inside
// the window joins the pass — and flushes when the window expires.
func TestCoalescingDeadline(t *testing.T) {
	r := NewRegistry(8)
	r.coalesceDelay = 200 * time.Millisecond
	h := newTinyHosted(t, r, 8)

	mk := func(ct string) []*relation.Tuple {
		return []*relation.Tuple{relation.NewTuple(0, "212", ct)}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Queue is empty: dispatch must linger, fold the late batch, and
		// only then (window expired) run one pass for both.
		h.dispatch(r, job{inserts: mk("NYC"), coalescable: true})
	}()
	time.Sleep(20 * time.Millisecond)
	h.queue <- job{inserts: mk("PHI"), coalescable: true}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch did not flush after the coalesce window")
	}
	if got := h.seq.Load(); got != 1 {
		t.Fatalf("lingering fold took %d passes, want 1", got)
	}
	if r.coalesced.Load() != 1 {
		t.Fatalf("coalesced counter = %d, want 1", r.coalesced.Load())
	}
	if sn := h.sess.Snapshot(); sn.Inserted != 2 {
		t.Fatalf("after lingering pass: %+v", sn)
	}

	// An expiring window with nothing arriving flushes the lone batch.
	start := time.Now()
	h.dispatch(r, job{inserts: mk("NYC"), coalescable: true})
	if waited := time.Since(start); waited < r.coalesceDelay/2 {
		t.Fatalf("expiry flush returned after %v, expected to linger ~%v", waited, r.coalesceDelay)
	}
	if got := h.seq.Load(); got != 2 {
		t.Fatalf("expiry flush took %d total passes, want 2", got)
	}
}

// TestGroupFsyncOrdering: under the per-batch policy with many sessions
// committing concurrently — the group-fsync window at work — no apply
// may be acknowledged before the WAL version it produced is on stable
// storage. This is the fsync-before-ack invariant the pipelined
// committer must not weaken.
func TestGroupFsyncOrdering(t *testing.T) {
	s := New(Options{QueueDepth: 8, DataDir: t.TempDir(), Fsync: FsyncBatch})
	reg := s.reg
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	const sessions = 4
	sch := relation.MustSchema("orders", "AC", "CT")
	hs := make([]*hosted, sessions)
	for i := range hs {
		rel := relation.New(sch)
		rel.MustInsert(relation.NewTuple(0, "212", "NYC"))
		parsed, err := cfd.Parse(sch, strings.NewReader(tinyCFDs))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := increpair.NewSession(rel, cfd.NormalizeAll(parsed), nil)
		if err != nil {
			t.Fatal(err)
		}
		h, err := reg.Create(fmt.Sprintf("g%d", i), sess, sch)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}

	const perSession = 16
	errc := make(chan error, sessions)
	var wg sync.WaitGroup
	for _, h := range hs {
		wg.Add(1)
		go func(h *hosted) {
			defer wg.Done()
			for k := 0; k < perSession; k++ {
				ins := []*relation.Tuple{relation.NewTuple(0, "212", "NYC")}
				rep, err := reg.Apply(context.Background(), h, nil, nil, ins)
				if err != nil {
					errc <- err
					return
				}
				if rep.err != nil {
					errc <- rep.err
					return
				}
				// The ack for version V happened-before this read; the
				// durable watermark must already cover V.
				if synced := h.pers.syncedVersion(); synced < rep.snap.Version {
					errc <- fmt.Errorf("session %s: acked version %d with synced watermark %d", h.name, rep.snap.Version, synced)
					return
				}
			}
			errc <- nil
		}(h)
	}
	wg.Wait()
	for range hs {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubscriberDropResync: a subscriber that stops reading has events
// dropped (counted registry-wide), and the first event it receives
// after the gap carries resync: true.
func TestSubscriberDropResync(t *testing.T) {
	var drops atomic.Uint64
	s := subscribers{drops: &drops}
	ch, cancel := s.subscribe()
	defer cancel()
	defer s.closeAll()

	for i := 0; i < subscriberBuffer; i++ {
		s.deliver(Event{Seq: uint64(i + 1)})
	}
	s.deliver(Event{Seq: 100}) // buffer full: dropped, gap recorded
	if drops.Load() != 1 {
		t.Fatalf("drop counter = %d, want 1", drops.Load())
	}
	<-ch // reader catches up by one
	s.deliver(Event{Seq: 101})

	var last Event
	for i := 0; i < subscriberBuffer; i++ {
		fr := <-ch
		last = Event{}
		if err := json.Unmarshal(fr.data, &last); err != nil {
			t.Fatal(err)
		}
		if last.Seq < 100 && last.Resync {
			t.Fatalf("pre-gap event %d flagged resync", last.Seq)
		}
	}
	if last.Seq != 101 || !last.Resync {
		t.Fatalf("post-gap event = %+v, want seq 101 with resync", last)
	}
}

// TestPublishAsync: publish never blocks the caller even when no one
// drains the fanout queue, and the whole stream shuts down cleanly.
func TestPublishAsync(t *testing.T) {
	var drops atomic.Uint64
	s := subscribers{drops: &drops}
	_, cancel := s.subscribe()
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10*fanoutBuffer; i++ {
			s.publish(Event{Seq: uint64(i + 1)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a saturated stream")
	}
	s.closeAll()
	if s.fanDone != nil {
		<-s.fanDone // closeAll already waited; must not hang either way
	}
}
