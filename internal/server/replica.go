package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cfdclean/internal/increpair"
	"cfdclean/internal/store"
	"cfdclean/internal/wal"
)

// Follower-side replication: the registry half of the WAL-shipping
// stream (see internal/cluster/ship for the wire and the primary half).
// A follower session is an ordinary hosted session whose worker and
// committer sit idle: state advances only through ReplicateBatch, under
// the same journal-version discipline WAL replay uses, so a promoted
// follower is byte-identical to a primary that was never lost. The
// follower keeps its own persister in lockstep — every shipped batch is
// appended to the replica's local WAL before acknowledgement — which is
// what lets promotion simply resume the log as its own.

// Replication errors mapped by the handler layer.
var (
	// errReplicaConflict reports a replication message for a session this
	// node hosts as a primary — mapped to 421; the shipper stops rather
	// than resync (split-brain guard).
	errReplicaConflict = errors.New("server: session is primary on this node")
	// errReplicaGap reports a shipped batch that cannot chain onto the
	// replica's journal version — mapped to 409, which the primary heals
	// by reshipping a snapshot.
	errReplicaGap = errors.New("server: replica gap")
)

// InstallReplica installs (or replaces) a follower session from a
// shipped snapshot — the bootstrap for a follower joining mid-stream and
// the healing move after any gap. An existing follower under the name is
// torn down and rebuilt from the image; a primary under the name refuses
// with errReplicaConflict.
func (r *Registry) InstallReplica(name string, snap *wal.Snapshot) error {
	if r.draining.Load() {
		return ErrDraining
	}
	r.installMu.Lock()
	defer r.installMu.Unlock()
	if h, err := r.Get(name); err == nil {
		if h.role.Load() != roleFollower {
			return errReplicaConflict
		}
		// Replace: free the name, stop the old replica's goroutines and
		// wait them out. The old persister keeps its files; register
		// below rebuilds the directory from the new image.
		sh := r.shard(name)
		sh.mu.Lock()
		if sh.m[name] == h {
			delete(sh.m, name)
		}
		sh.mu.Unlock()
		h.quitOnce.Do(func() { close(h.quit) })
		<-h.done
	}
	sess, err := increpair.RestoreFromSnapshot(snap, 0)
	if err != nil {
		return fmt.Errorf("server: install replica %s: %w", name, err)
	}
	// An explicit quota override travels in the snapshot header; without
	// one the replica runs this node's defaults (it only matters after
	// promotion — followers take no writes).
	quota := r.quota
	if snap.Quota.Set {
		quota = quotaFromWAL(snap.Quota)
	}
	if _, err := r.register(name, sess, sess.Current().Schema(), nil, quota, roleFollower, store.KindDefault); err != nil {
		sess.Close()
		return err
	}
	return nil
}

// ReplicateBatch applies one shipped batch to the follower session under
// the replay discipline: duplicates are skipped, a gap refuses with
// errReplicaGap and leaves the replica untouched — a batch never applies
// out of order. On success the batch is appended to the replica's own
// WAL (group-fsynced under the per-batch policy) and the same pass event
// a primary would publish goes out to this node's SSE subscribers.
func (r *Registry) ReplicateBatch(name string, b *wal.Batch) error {
	h, err := r.Get(name)
	if err != nil {
		return err
	}
	h.replMu.Lock()
	defer h.replMu.Unlock()
	if h.role.Load() != roleFollower {
		return errReplicaConflict
	}
	res, deleted, applied, err := h.sess.ReplayBatchResult(b)
	if err != nil {
		if errors.Is(err, increpair.ErrReplayGap) {
			return fmt.Errorf("%w: %v", errReplicaGap, err)
		}
		// Any other replay failure (undecodable ops, divergence) heals
		// the same way a gap does: the primary reships a full image.
		return fmt.Errorf("%w: %v", errReplicaGap, err)
	}
	if !applied {
		return nil // duplicate frame; the cursor already covers it
	}
	r.replicaApplied.Add(1)
	if h.pers != nil && !h.purge.Load() {
		if aerr := h.pers.appendBatch(b.Ops, b.Version); aerr == nil {
			if h.pers.cfg.policy == FsyncBatch {
				_ = r.groupSync(h.pers)
			}
			h.replSince++
			if h.replSince >= h.pers.cfg.snapEvery {
				if rc, serr := h.captureRotation(); serr != nil {
					h.pers.markBroken(serr)
				} else {
					h.pers.rotateCapture(rc)
					h.replSince = 0
				}
			}
		}
	}
	// The replica's read plane is live: publish the pass event exactly as
	// the primary's committer would, so SSE consumers on the follower see
	// the same stream (seq continues across promotion).
	snap := h.sess.Snapshot()
	h.subs.publish(Event{
		Session:   h.name,
		Seq:       h.seq.Add(1),
		Coalesced: 1,
		Inserted:  len(res.Inserted),
		Deleted:   deleted,
		Dirty:     changedCells(res, h.attrs),
		Snapshot:  encodeSnapshot(snap),
	})
	return nil
}

// Promote flips a follower session to primary: writes are accepted from
// the next request on, and the session's WAL — kept in lockstep while
// following — continues as its own. Idempotent: promoting a primary is a
// no-op. Re-establishing replication toward a new follower is the ring's
// business: after a failover promotion the old primary is presumed dead,
// and a two-node cluster has no third peer to ship to, so a shipper is
// started only when the updated peer list (PUT /v1/cluster/peers) or the
// ring already names this node the session's owner with a live follower.
func (r *Registry) Promote(name string) (*hosted, error) {
	h, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	h.replMu.Lock()
	defer h.replMu.Unlock()
	if h.role.CompareAndSwap(roleFollower, rolePrimary) {
		// The durable role flips with the live one: a promoted session
		// restarting must come back a primary, not re-demote itself.
		if h.pers != nil {
			if err := writeRoleMarker(h.pers.dir, false); err != nil {
				h.pers.markBroken(err)
			}
		}
		if c := r.cluster; c != nil {
			// Ship onward only when the ring says this node owns the
			// session (a rebalance transfer): the target is then the
			// ring follower, which is neither self nor a dead peer.
			if c.primary(name) == c.self {
				if target := c.shipTarget(name); target != "" {
					h.startShipper(c, target)
				}
			}
		}
	}
	return h, nil
}

// DropReplica removes a follower session from this node — the cleanup
// path when the primary deletes the session or a rebalance moves its
// replica elsewhere. Refuses for primaries: deleting live state needs
// the ordinary DELETE, routed to the owner.
func (r *Registry) DropReplica(ctx context.Context, name string) error {
	h, err := r.Get(name)
	if err != nil {
		return err
	}
	if h.role.Load() != roleFollower {
		return errReplicaConflict
	}
	return r.Remove(ctx, name)
}

// waitQuiesce blocks until h's pipeline is provably empty — every job
// accepted before the call is applied AND committed — or the deadline
// passes. Used by rebalance after flipping a primary to follower: new
// writes are already refused, so once the pipeline drains the session
// is quiescent and the transfer snapshot captured next misses nothing
// acknowledged.
//
// Quiescence is positive, not inferred: a quiesce sentinel job rides
// the FIFO queue and the FIFO commits channel, so its reply proves the
// drain. Polling len(queue)+len(commits) cannot — a 202-accepted ingest
// the worker dequeued and parked in the coalesce linger (configurable
// far beyond any settle delay) is in neither channel, and a snapshot
// captured across it would silently lose the batch when the local
// session is purged after transfer. The sentinel, being non-coalescable,
// also flushes any lingering fold before it is answered. A straggler
// write that slipped past the role flip re-arms the loop: the sentinel
// is resent until both channels are empty at acknowledgement time.
func (h *hosted) waitQuiesce(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		j := job{quiesce: true, reply: make(chan jobReply, 1)}
		select {
		case h.queue <- j:
		case <-h.quit:
			return false
		case <-time.After(time.Until(deadline)):
			return false
		}
		select {
		case <-j.reply:
		case <-h.done:
			return false
		case <-time.After(time.Until(deadline)):
			return false
		}
		if len(h.queue) == 0 && len(h.commits) == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
