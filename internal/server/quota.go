package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"cfdclean/internal/wal"
)

// Per-tenant admission control. Every hosted session carries a quota:
// token-bucket rate limits on operations and on tuples, plus hard caps
// on relation size and SSE subscriber count. Limits are enforced in the
// registry BEFORE a batch reaches the worker queue, so one tenant's
// burst is rejected at its own front door instead of occupying queue
// slots (and engine passes) the other tenants need. Server-wide
// defaults come from Options (the -quota-* flags); a create request may
// override them per session — stricter or looser — with -1 meaning
// explicitly unlimited.
//
// A rate-limited request is answered 429 with a Retry-After header
// computed from the bucket's actual refill time (integer seconds,
// rounded up, so a compliant client never retries into another
// rejection); the precise wait rides alongside in
// X-Retry-After-Ms for clients that want sub-second backoff. The hard
// caps are not retryable-later in the same sense: a relation at its
// size cap answers 403 (shrink or raise the quota), a session at its
// subscriber cap answers 409 (disconnect a consumer first).

// Registry errors specific to admission control.
var (
	// ErrRelationFull reports an insert batch that would push the
	// session's relation past its size cap — mapped to 403.
	ErrRelationFull = errors.New("server: relation size quota exceeded")
	// ErrSubscriberLimit reports a subscribe refused because the session
	// is at its SSE subscriber cap — mapped to 409.
	ErrSubscriberLimit = errors.New("server: subscriber limit reached")
)

// RateLimitError reports a request rejected by a token-bucket limiter;
// RetryAfter is how long until the bucket has refilled enough to admit
// the same request. Mapped to 429 with a Retry-After header.
type RateLimitError struct {
	What       string // "ops" or "tuples"
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("server: %s rate limit exceeded, retry in %v", e.What, e.RetryAfter.Round(time.Millisecond))
}

// retryAfterSeconds renders the header value: integer seconds, rounded
// up, at least 1 — a compliant client that waits this long is
// guaranteed admission for the same request size.
func (e *RateLimitError) retryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// QuotaConfig is one tenant's effective admission-control settings.
// Zero values mean unlimited. It doubles as the server-wide default set
// (Options.Quota) and as the resolved per-session state's shape.
type QuotaConfig struct {
	// Explicit marks a per-session override (a create request carried a
	// quota) as opposed to inherited server defaults. Explicit quotas
	// are session state: they are recorded in snapshots, survive
	// recovery and ship to replicas, whereas inherited ones re-resolve
	// against whatever defaults the restoring server was booted with.
	Explicit bool `json:"-"`
	// OpsPerSec bounds accepted write requests (apply + ingest) per
	// second, with a burst of one second's worth (at least 1).
	OpsPerSec float64
	// TuplesPerSec bounds tuples accepted per second across the
	// session's write requests, with a one-second burst.
	TuplesPerSec float64
	// MaxRelationSize caps the session's relation: an insert batch that
	// would exceed it is rejected with 403.
	MaxRelationSize int
	// MaxSubscribers caps concurrent SSE consumers per session; further
	// subscribes are rejected with 409.
	MaxSubscribers int
}

// resolveQuota layers a per-session wire override over the server
// defaults: zero fields inherit, negative fields mean explicitly
// unlimited.
func resolveQuota(def QuotaConfig, wq *WireQuota) QuotaConfig {
	q := def
	if wq == nil {
		return q
	}
	q.Explicit = true
	override := func(dst *float64, v float64) {
		if v < 0 {
			*dst = 0
		} else if v > 0 {
			*dst = v
		}
	}
	override(&q.OpsPerSec, wq.OpsPerSec)
	override(&q.TuplesPerSec, wq.TuplesPerSec)
	if wq.MaxRelationSize < 0 {
		q.MaxRelationSize = 0
	} else if wq.MaxRelationSize > 0 {
		q.MaxRelationSize = wq.MaxRelationSize
	}
	if wq.MaxSubscribers < 0 {
		q.MaxSubscribers = 0
	} else if wq.MaxSubscribers > 0 {
		q.MaxSubscribers = wq.MaxSubscribers
	}
	return q
}

// wire renders the effective quota for session listings; nil when the
// session is entirely unlimited so unquota'd services stay byte-stable.
// Explicitness alone does not render: an explicitly all-unlimited quota
// looks like no quota on the wire, as before.
func (q QuotaConfig) wire() *WireQuota {
	if q.OpsPerSec == 0 && q.TuplesPerSec == 0 && q.MaxRelationSize == 0 && q.MaxSubscribers == 0 {
		return nil
	}
	return &WireQuota{
		OpsPerSec:       q.OpsPerSec,
		TuplesPerSec:    q.TuplesPerSec,
		MaxRelationSize: q.MaxRelationSize,
		MaxSubscribers:  q.MaxSubscribers,
	}
}

// walQuota renders a session's quota for a snapshot header. Only
// explicit overrides are recorded (Set=true, values verbatim — all-zero
// means explicitly unlimited); inherited defaults write an empty mark so
// a restoring server re-resolves against its own boot-time defaults.
func walQuota(q QuotaConfig) wal.Quota {
	if !q.Explicit {
		return wal.Quota{}
	}
	return wal.Quota{
		Set:             true,
		OpsPerSec:       q.OpsPerSec,
		TuplesPerSec:    q.TuplesPerSec,
		MaxRelationSize: q.MaxRelationSize,
		MaxSubscribers:  q.MaxSubscribers,
	}
}

// quotaFromWAL restores a persisted explicit override. Call only when
// wq.Set; unset marks mean "inherit the server defaults".
func quotaFromWAL(wq wal.Quota) QuotaConfig {
	return QuotaConfig{
		Explicit:        true,
		OpsPerSec:       wq.OpsPerSec,
		TuplesPerSec:    wq.TuplesPerSec,
		MaxRelationSize: wq.MaxRelationSize,
		MaxSubscribers:  wq.MaxSubscribers,
	}
}

// tokenBucket is a standard token-bucket rate limiter: capacity `burst`
// tokens, refilled at `rate` tokens/second. take is mutex-guarded and
// O(1) — cheap enough for the admission path of every request.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket holding one second of rate (at least
// one token, so a single maximal request is always admissible), full at
// start.
func newTokenBucket(rate float64) *tokenBucket {
	burst := math.Max(rate, 1)
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take withdraws n tokens if available; otherwise it reports how long
// until the bucket will hold n (requests larger than the burst are
// charged over multiple refill windows rather than rejected forever).
func (b *tokenBucket) take(n float64, now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	// A request beyond the burst would never fit a full bucket; letting
	// the deficit go negative charges it across future windows instead.
	if n > b.burst {
		b.tokens -= n
		return true, 0
	}
	return false, time.Duration((n - b.tokens) / b.rate * float64(time.Second))
}

// refund returns tokens withdrawn for a request that was ultimately not
// admitted (e.g. the ops token of a batch the tuple limiter rejected).
func (b *tokenBucket) refund(n float64) {
	b.mu.Lock()
	b.tokens = math.Min(b.burst, b.tokens+n)
	b.mu.Unlock()
}

// quotaState is one hosted session's live admission-control state: nil
// limiter fields mean unlimited.
type quotaState struct {
	cfg    QuotaConfig
	ops    *tokenBucket
	tuples *tokenBucket
}

func newQuotaState(cfg QuotaConfig) *quotaState {
	q := &quotaState{cfg: cfg}
	if cfg.OpsPerSec > 0 {
		q.ops = newTokenBucket(cfg.OpsPerSec)
	}
	if cfg.TuplesPerSec > 0 {
		q.tuples = newTokenBucket(cfg.TuplesPerSec)
	}
	return q
}

// admit runs the full admission check for one write batch of `tuples`
// arriving tuples against a session currently holding `size` tuples
// (with `deletes` of them leaving in the same batch). Order: hard size
// cap first (no point charging rate tokens for a batch that can never
// fit), then the ops bucket, then the tuple bucket — with the ops token
// refunded if the tuple bucket rejects, so a rejected request costs the
// tenant nothing.
func (q *quotaState) admit(size, tuples, deletes int, now time.Time) error {
	if q == nil {
		return nil
	}
	if q.cfg.MaxRelationSize > 0 && size+tuples-deletes > q.cfg.MaxRelationSize {
		return fmt.Errorf("%w: relation holds %d tuples, batch adds %d, cap %d",
			ErrRelationFull, size, tuples-deletes, q.cfg.MaxRelationSize)
	}
	if q.ops != nil {
		if ok, wait := q.ops.take(1, now); !ok {
			return &RateLimitError{What: "ops", RetryAfter: wait}
		}
	}
	if q.tuples != nil && tuples > 0 {
		if ok, wait := q.tuples.take(float64(tuples), now); !ok {
			if q.ops != nil {
				q.ops.refund(1)
			}
			return &RateLimitError{What: "tuples", RetryAfter: wait}
		}
	}
	return nil
}
