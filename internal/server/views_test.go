package server

import (
	"strings"
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
)

func newViewTestSession(t *testing.T) *increpair.Session {
	t.Helper()
	sch := relation.MustSchema("orders", "AC", "CT")
	rel := relation.New(sch)
	rel.MustInsert(relation.NewTuple(0, "212", "NYC"))
	parsed, err := cfd.Parse(sch, strings.NewReader(tinyCFDs))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := increpair.NewSession(rel, cfd.NormalizeAll(parsed), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return sess
}

// A view abandoned after its last release must expire by TTL with NO
// further cache traffic: the sweep timer, not the next reader, releases
// the pin. Before the timer existed, pruneLocked only ran on cache
// touches, so an idle service retained the view's COW pre-images
// forever — viewTTL was only nominally enforced.
func TestViewTTLSweepsWithoutTraffic(t *testing.T) {
	sess := newViewTestSession(t)
	c := newViewCache(sess)
	c.ttl = 20 * time.Millisecond
	t.Cleanup(c.closeAll)

	_, release, err := c.acquireCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if n := sess.Current().ActiveViews(); n != 1 {
		t.Fatalf("ActiveViews = %d while acquired, want 1", n)
	}
	release()
	// The released view is idle but cached for cursor continuation; it
	// must still be pinned right now (that retention is the feature).
	if n := sess.Current().ActiveViews(); n != 1 {
		t.Fatalf("ActiveViews = %d just after release, want 1 (cached for cursors)", n)
	}

	// No acquire, no release, no prune from here on: only the sweep
	// timer can drop the pin.
	deadline := time.Now().Add(5 * time.Second)
	for sess.Current().ActiveViews() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveViews = %d long past the TTL with no further reads: idle view never swept",
				sess.Current().ActiveViews())
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.mu.Lock()
	cached := len(c.views)
	c.mu.Unlock()
	if cached != 0 {
		t.Fatalf("view table holds %d entries after sweep, want 0", cached)
	}
}

// An in-use view must survive every sweep — TTL applies to idle views
// only — and the timer must shut down with closeAll.
func TestViewTTLSweepSkipsHeldViews(t *testing.T) {
	sess := newViewTestSession(t)
	c := newViewCache(sess)
	c.ttl = 10 * time.Millisecond
	t.Cleanup(c.closeAll)

	_, release, err := c.acquireCurrent()
	if err != nil {
		t.Fatal(err)
	}
	// Advance the session so a second, idle view at a newer version can
	// arm the sweep alongside the held one.
	if _, err := sess.ApplyDelta([]*relation.Tuple{relation.NewTuple(0, "212", "NYC")}); err != nil {
		t.Fatal(err)
	}
	_, release2, err := c.acquireCurrent()
	if err != nil {
		t.Fatal(err)
	}
	release2()

	deadline := time.Now().Add(5 * time.Second)
	for sess.Current().ActiveViews() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveViews = %d: sweep did not drop the idle view (or dropped the held one)",
				sess.Current().ActiveViews())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(5 * c.ttl) // more sweeps fire; the held view must survive them
	if n := sess.Current().ActiveViews(); n != 1 {
		t.Fatalf("ActiveViews = %d after sweeps with one reader still holding, want 1", n)
	}
	release()
}
