package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
)

// The equivalence battery: every response the service produces must be
// byte-identical to driving the in-process Session API with the same
// call sequence. inProcess replays exactly what the handler stack does —
// same CSV parse, same wire decode, same ApplyOps, same wire encode — so
// any divergence (ordering, float formatting, id assignment, snapshot
// bookkeeping) fails a bytes.Equal, not a fuzzy comparison.

// inProcess replays a server session's life in-process and returns the
// responses the server should have produced, normalized to JSON bytes.
type inProcess struct {
	t    *testing.T
	name string
	sess *increpair.Session
	rel  *relation.Relation
	seq  uint64
}

func newInProcess(t *testing.T, name, baseCSV, cfds string, wo *WireOptions) *inProcess {
	t.Helper()
	rel, err := relation.ReadCSV("data", strings.NewReader(baseCSV))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := cfd.Parse(rel.Schema(), strings.NewReader(cfds))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := decodeOptions(wo)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := increpair.NewSession(rel, cfd.NormalizeAll(parsed), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return &inProcess{t: t, name: name, sess: sess, rel: rel}
}

// createResponse builds the CreateResponse the server should return.
func (p *inProcess) createResponse(rules int) []byte {
	resp := CreateResponse{
		Name:     p.name,
		Attrs:    p.rel.Schema().Attrs(),
		Rules:    rules,
		Snapshot: encodeSnapshot(p.sess.Snapshot()),
	}
	if ini := p.sess.Initial(); ini != nil {
		resp.Initial = &BatchSummary{Tuples: len(ini.Inserted), Cost: ini.Cost, Changes: ini.Changes}
	}
	return mustJSON(p.t, resp)
}

// apply replays one wire batch exactly as handleApply does.
func (p *inProcess) apply(ar ApplyRequest) []byte {
	p.t.Helper()
	h := &hosted{name: p.name, schema: p.rel.Schema(), attrs: p.rel.Schema().Attrs(), sess: p.sess}
	deletes, sets, inserts, err := h.decodeApply(ar)
	if err != nil {
		p.t.Fatal(err)
	}
	res, deleted, err := p.sess.ApplyOps(deletes, sets, inserts)
	if err != nil {
		p.t.Fatal(err)
	}
	p.seq++
	resp := ApplyResponse{
		Session:  p.name,
		Seq:      p.seq,
		Inserted: make([]WireTuple, 0, len(res.Inserted)),
		Changed:  changedCells(res, h.attrs),
		Deleted:  deleted,
		Cost:     res.Cost,
		Changes:  res.Changes,
		Snapshot: encodeSnapshot(p.sess.Snapshot()),
	}
	for _, tt := range res.Inserted {
		resp.Inserted = append(resp.Inserted, EncodeTuple(tt))
	}
	return mustJSON(p.t, resp)
}

func (p *inProcess) dump() []byte {
	var b bytes.Buffer
	if err := p.sess.Dump(&b); err != nil {
		p.t.Fatal(err)
	}
	return b.Bytes()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// normalize re-marshals a raw server body through the wire struct so it
// compares byte-for-byte with locally built responses (the server's
// json.Encoder appends a newline; struct order and value formatting are
// identical by construction).
func normalize[T any](t *testing.T, raw []byte) []byte {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal %T: %v: %s", v, err, raw)
	}
	return mustJSON(t, v)
}

// wireBatches turns a dataset's dirty stream into wire insert batches
// (ids zeroed: the session assigns arrival-order ids).
func wireBatches(ds *gen.Dataset, n int) [][]WireTuple {
	deltas, _ := ds.StreamBatches(n)
	out := make([][]WireTuple, len(deltas))
	for i, delta := range deltas {
		out[i] = make([]WireTuple, len(delta))
		for j, tt := range delta {
			wt := EncodeTuple(tt)
			wt.ID = 0
			out[i][j] = wt
		}
	}
	return out
}

func datasetWire(t *testing.T, size int, seed int64) (baseCSV, cfds string, ds *gen.Dataset) {
	t.Helper()
	ds, err := gen.New(gen.Config{Size: size, NoiseRate: 0.1, Seed: seed, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, cfdBuf bytes.Buffer
	if err := relation.WriteCSV(ds.Opt, &csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := cfd.Format(&cfdBuf, ds.CFDs); err != nil {
		t.Fatal(err)
	}
	return csvBuf.String(), cfdBuf.String(), ds
}

// TestServerByteIdenticalToInProcess drives the same batch sequence —
// streamed inserts plus a final mixed deletes/sets/inserts batch —
// through the HTTP service and the in-process API at several worker
// counts and orderings, requiring byte-identical responses and dumps.
func TestServerByteIdenticalToInProcess(t *testing.T) {
	baseCSV, cfds, ds := datasetWire(t, 240, 42)
	batches := wireBatches(ds, 3)
	if len(batches) < 2 {
		t.Fatal("fixture produced too few batches")
	}

	for _, tc := range []struct {
		workers  int
		ordering string
	}{
		{1, "linear"}, {2, "linear"}, {4, "linear"}, {0, "linear"},
		{1, "vio"}, {2, "vio"}, {4, "vio"},
	} {
		t.Run(fmt.Sprintf("workers=%d/%s", tc.workers, tc.ordering), func(t *testing.T) {
			_, ts := newTestService(t, Options{})
			base := ts.URL
			name := "equiv"
			wo := &WireOptions{Ordering: tc.ordering, Workers: tc.workers}

			resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
				Name: name, CFDs: cfds, BaseCSV: baseCSV, Options: wo,
			})
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("create: %d: %s", resp.StatusCode, body)
			}
			p := newInProcess(t, name, baseCSV, cfds, wo)
			parsed, _ := cfd.Parse(p.rel.Schema(), strings.NewReader(cfds))
			if got, want := normalize[CreateResponse](t, body), p.createResponse(len(cfd.NormalizeAll(parsed))); !bytes.Equal(got, want) {
				t.Fatalf("create response diverged:\nserver %s\nlocal  %s", got, want)
			}

			var insertedIDs []int64
			for i, wb := range batches {
				req := ApplyRequest{Inserts: wb}
				resp, body := do(t, "POST", base+"/v1/sessions/"+name+"/apply", req)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("apply %d: %d: %s", i, resp.StatusCode, body)
				}
				got := normalize[ApplyResponse](t, body)
				want := p.apply(req)
				if !bytes.Equal(got, want) {
					t.Fatalf("batch %d diverged:\nserver %s\nlocal  %s", i, got, want)
				}
				var ar ApplyResponse
				json.Unmarshal(body, &ar)
				for _, wt := range ar.Inserted {
					insertedIDs = append(insertedIDs, wt.ID)
				}
			}

			// One mixed batch: delete two streamed tuples, dirty one
			// surviving cell, insert one fresh tuple.
			attrs := p.rel.Schema().Attrs()
			mixed := ApplyRequest{
				Deletes: insertedIDs[:2],
				Sets:    []WireSet{{ID: insertedIDs[2], Attr: attrs[6], Value: strp("PHL")}},
				Inserts: batches[0][:1],
			}
			resp, body = do(t, "POST", base+"/v1/sessions/"+name+"/apply", mixed)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mixed apply: %d: %s", resp.StatusCode, body)
			}
			if got, want := normalize[ApplyResponse](t, body), p.apply(mixed); !bytes.Equal(got, want) {
				t.Fatalf("mixed batch diverged:\nserver %s\nlocal  %s", got, want)
			}

			_, dumpBody := do(t, "GET", base+"/v1/sessions/"+name+"/dump", nil)
			if !bytes.Equal(dumpBody, p.dump()) {
				t.Fatal("final dump diverged from in-process relation")
			}
		})
	}
}

// TestServerGoldenFixtureInitialClean opens a session over a committed
// golden fixture's dirty database: the create response (including the
// §5.3 initial-clean summary) and the resulting dump must byte-match
// the in-process API.
func TestServerGoldenFixtureInitialClean(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "golden", "paper-fig1")
	dirty, err := os.ReadFile(filepath.Join(dir, "dirty.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := os.ReadFile(filepath.Join(dir, "cfds.txt"))
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestService(t, Options{})
	base := ts.URL
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name: "golden", CFDs: string(rules), BaseCSV: string(dirty),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, body)
	}
	var cr CreateResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Initial == nil || cr.Initial.Tuples == 0 {
		t.Fatalf("dirty golden base must trigger an initial clean: %s", body)
	}

	p := newInProcess(t, "golden", string(dirty), string(rules), nil)
	parsed, _ := cfd.Parse(p.rel.Schema(), strings.NewReader(string(rules)))
	if got, want := normalize[CreateResponse](t, body), p.createResponse(len(cfd.NormalizeAll(parsed))); !bytes.Equal(got, want) {
		t.Fatalf("golden create diverged:\nserver %s\nlocal  %s", got, want)
	}
	_, dumpBody := do(t, "GET", base+"/v1/sessions/golden/dump", nil)
	if !bytes.Equal(dumpBody, p.dump()) {
		t.Fatal("golden dump diverged from in-process clean")
	}
}

// TestServerConcurrentSessionsByteIdentical hosts many sessions driven
// concurrently — different tenants, different seeds, mixed worker
// counts — and requires every session's full response stream and final
// dump to byte-match an in-process replay. Run under -race in CI, this
// is the multi-tenant isolation proof: tenants sharing the service
// cannot perturb each other's repairs.
func TestServerConcurrentSessionsByteIdentical(t *testing.T) {
	const tenants = 9
	_, ts := newTestService(t, Options{QueueDepth: 8})
	base := ts.URL

	type tenant struct {
		name    string
		baseCSV string
		cfds    string
		wo      *WireOptions
		batches [][]WireTuple
		bodies  [][]byte
		dump    []byte
	}
	workerChoice := []int{1, 2, 4, 0}
	tens := make([]*tenant, tenants)
	for i := range tens {
		baseCSV, cfds, ds := datasetWire(t, 120, int64(100+i))
		tens[i] = &tenant{
			name:    fmt.Sprintf("tenant-%d", i),
			baseCSV: baseCSV,
			cfds:    cfds,
			wo:      &WireOptions{Ordering: "linear", Workers: workerChoice[i%len(workerChoice)]},
			batches: wireBatches(ds, 2),
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for _, tn := range tens {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
				Name: tn.name, CFDs: tn.cfds, BaseCSV: tn.baseCSV, Options: tn.wo,
			})
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("%s create: %d: %s", tn.name, resp.StatusCode, body)
				return
			}
			for i, wb := range tn.batches {
				resp, body := do(t, "POST", base+"/v1/sessions/"+tn.name+"/apply", ApplyRequest{Inserts: wb})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s apply %d: %d: %s", tn.name, i, resp.StatusCode, body)
					return
				}
				tn.bodies = append(tn.bodies, body)
			}
			_, dump := do(t, "GET", base+"/v1/sessions/"+tn.name+"/dump", nil)
			tn.dump = dump
		}(tn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Replay each tenant in-process, serially, and compare.
	for _, tn := range tens {
		p := newInProcess(t, tn.name, tn.baseCSV, tn.cfds, tn.wo)
		for i, wb := range tn.batches {
			want := p.apply(ApplyRequest{Inserts: wb})
			got := normalize[ApplyResponse](t, tn.bodies[i])
			if !bytes.Equal(got, want) {
				t.Fatalf("%s batch %d diverged under concurrency:\nserver %s\nlocal  %s", tn.name, i, got, want)
			}
		}
		if !bytes.Equal(tn.dump, p.dump()) {
			t.Fatalf("%s dump diverged under concurrency", tn.name)
		}
	}
}
