// Package server hosts many named streaming cleaning sessions behind an
// HTTP/JSON interface — the paper's §5 online scenario (INCREPAIR over
// arriving ΔD batches) turned into a multi-tenant service. Each session
// is an increpair.Session: a base database plus a CFD set, cleaned once
// at creation, then kept consistent under streamed mutation batches with
// per-batch cost O(|ΔD|).
//
// # Concurrency architecture
//
// Sessions live in a sharded registry (name-hash → shard, one RWMutex
// per shard), so tenants contend only on registry metadata, never on
// each other's data. Every session is a pipeline in which the engine
// pass is the only per-session serialization point:
//
//	handler: decode + validate            (per-request goroutine)
//	worker:  fold coalescable batches,    (the session's single writer)
//	         run the engine pass
//	committer: delta-encode, WAL append,  (overlaps the next pass)
//	         group fsync, reply, event
//	         └─ shipper: frame + forward  (after the local fsync)
//	              └────────────────────────▶ follower: ReplicateBatch
//
// The shipping arm exists only on clustered nodes (Options.Peers): the
// committer hands each fsynced batch to a per-session Shipper, which
// frames it (CRC-32C, version-bracketed) and forwards it to the ring
// follower, where ReplicateBatch replays it onto a standby session and
// appends it to the replica's own WAL — so a promoted follower resumes
// the journal as its own. Under Options.Ack == AckQuorum the committer
// waits for the follower's acknowledgement before replying; under
// AckLeader shipping is asynchronous and lost frames heal via the
// follower's gap detection plus a snapshot resync.
//
// The worker is the session's single writer by construction, which is
// what keeps service results byte-identical to driving the in-process
// API: it issues the same ApplyOps calls a single-threaded caller
// would, and the reply content is fixed at the pass boundary before the
// committer ships it. Everything downstream of the pass — WAL encoding,
// fsync (amortized across sessions by a registry-wide group-commit
// goroutine), response encoding, SSE fan-out — runs concurrently with
// the worker's next pass.
//
// Two write paths feed the queue. POST .../apply is synchronous: the
// handler enqueues and waits for the pass's reply (a full queue makes it
// wait — natural backpressure bounded by the client's context). POST
// .../ingest is asynchronous: it enqueues and returns 202 immediately,
// or 429 when the queue is full; the worker coalesces runs of adjacent
// ingested batches into one engine pass — optionally up to a tuple cap
// and a linger window (Options.CoalesceMaxTuples, CoalesceDelay) — to
// amortize per-pass overhead under burst load.
//
// Reads never hold the session lock beyond a pinned-view handoff:
// session snapshots are published atomically after every pass, and the
// streaming reads — violation pages and CSV dumps — run against
// snapshot-isolated ReadViews (see views.go). The lock is taken only to
// pin the view; serialization streams outside it while the writer
// preserves page pre-images copy-on-write. Every read reply carries
// X-Session-Version, the journal version it was served at; paginated
// listings continue at that exact version via an opaque cursor,
// answered 410 Gone once the version is evicted.
//
// Shutdown is graceful: Drain refuses new work, lets every worker finish
// its queued batches, and closes the sessions — no accepted batch is
// ever dropped.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/store"
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds each session's work queue; a full queue blocks
	// synchronous applies and rejects async ingests with 429. Default 32.
	QueueDepth int
	// DrainTimeout bounds Shutdown's wait for queued work. Default 10s.
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// MaxReadLimit caps the page size of violation listings: a ?limit=
	// beyond it is clamped (the response's X-Effective-Limit header
	// reports the limit actually applied). Default 1000.
	MaxReadLimit int

	// Quota is the server-wide default admission-control configuration
	// (the -quota-* flags): token-bucket rate limits on writes plus hard
	// caps on relation size and SSE subscribers, enforced per session
	// ahead of the worker queue. The zero value is fully unlimited; a
	// create request may override per session (CreateRequest.Quota).
	Quota QuotaConfig

	// CoalesceMaxTuples caps the tuples folded into one ingest pass; 0
	// (the default) leaves the fold bounded only by queue content.
	CoalesceMaxTuples int
	// CoalesceDelay lets a session worker linger this long for more
	// coalescable work before starting a pass on an otherwise empty
	// queue — trading a bounded latency for larger folds under steady
	// ingest. 0 (the default) folds only already-queued batches.
	CoalesceDelay time.Duration

	// DataDir, when non-empty, makes every session durable: each gets
	// <DataDir>/<name>/ with WAL + snapshot generations (see persist.go),
	// and Server.Recover re-hosts persisted sessions on boot. Empty
	// keeps the service purely in memory.
	DataDir string
	// Fsync selects when WAL appends reach stable storage (per batch,
	// on an interval, or never explicitly). Default FsyncBatch.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval policy's timer. Default 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery rotates to a fresh snapshot generation after this
	// many logged batches, bounding replay time and WAL growth.
	// Default 64.
	SnapshotEvery int

	// Store selects the node-default tuple storage backend for durable
	// sessions: store.KindMem (the default) keeps full inline snapshots,
	// store.KindDisk spills tuples into generation-numbered page files
	// with a slim snapshot header (see internal/store). A create request
	// may override per session (CreateRequest.Store). Ignored without
	// DataDir.
	Store store.Kind
	// StorePageSize is the disk store's page size in bytes (4–64 KiB,
	// power of two). 0 takes the store default.
	StorePageSize int
	// StoreCachePages bounds the disk store's hot-set page cache. 0
	// takes the store default.
	StoreCachePages int

	// Peers is the cluster's static node list (host:port each); Self is
	// this node's own entry in it. With both set the server runs
	// clustered: session names hash consistently across the peers, every
	// node routes requests it does not own to the owner, and each
	// primary ships its WAL to the session's ring follower (see
	// cluster.go and internal/cluster/ship). Empty runs single-node.
	Peers []string
	Self  string
	// Ack selects what a write waits for: AckLeader (default) answers
	// after the primary's fsync, AckQuorum also waits for the follower's
	// acknowledgement.
	Ack AckMode
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 32
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxReadLimit <= 0 {
		o.MaxReadLimit = 1000
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 64
	}
	return o
}

// Server is the HTTP face of the session registry. Build one with New,
// mount Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	opts    Options
	reg     *Registry
	mux     *http.ServeMux
	started time.Time
}

// New builds a Server with an empty registry.
func New(opts Options) *Server {
	s := &Server{opts: opts.withDefaults(), started: time.Now()}
	s.reg = NewRegistry(s.opts.QueueDepth)
	s.reg.coalesceMax = s.opts.CoalesceMaxTuples
	s.reg.coalesceDelay = s.opts.CoalesceDelay
	s.reg.quota = s.opts.Quota
	if s.opts.DataDir != "" {
		s.reg.persist = &persistConfig{
			dir:       s.opts.DataDir,
			policy:    s.opts.Fsync,
			interval:  s.opts.FsyncInterval,
			snapEvery: s.opts.SnapshotEvery,
			kind:      s.opts.Store,
			storeOpts: store.Options{PageSize: s.opts.StorePageSize, CachePages: s.opts.StoreCachePages},
		}
	}
	if len(s.opts.Peers) > 0 && s.opts.Self != "" {
		s.reg.cluster = newClusterState(s.opts.Peers, s.opts.Self, s.opts.Ack)
	}
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", s.handleHealth)
	m.HandleFunc("GET /metrics", s.handlePrometheus)
	m.HandleFunc("GET /v1/metrics", s.handleMetrics)
	m.HandleFunc("GET /v1/sessions", s.handleList)
	m.HandleFunc("POST /v1/sessions", s.handleCreate)
	m.HandleFunc("GET /v1/sessions/{name}", s.handleGet)
	m.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	m.HandleFunc("POST /v1/sessions/{name}/apply", s.handleApply)
	m.HandleFunc("POST /v1/sessions/{name}/ingest", s.handleIngest)
	m.HandleFunc("GET /v1/sessions/{name}/violations", s.handleViolations)
	m.HandleFunc("GET /v1/sessions/{name}/dump", s.handleDump)
	m.HandleFunc("GET /v1/sessions/{name}/events", s.handleEvents)
	m.HandleFunc("POST /v1/sessions/{name}/promote", s.handlePromote)
	m.HandleFunc("PUT /v1/replica/{name}", s.handleReplicaInstall)
	m.HandleFunc("POST /v1/replica/{name}/batch", s.handleReplicaBatch)
	m.HandleFunc("DELETE /v1/replica/{name}", s.handleReplicaDrop)
	m.HandleFunc("GET /v1/cluster", s.handleCluster)
	m.HandleFunc("PUT /v1/cluster/peers", s.handlePeers)
	s.mux = m
	return s
}

// Handler returns the service's HTTP handler. Clustered nodes wrap the
// mux in the routing layer (serve locally / 421 to the primary / proxy
// to the owner); single-node servers expose the mux directly.
func (s *Server) Handler() http.Handler {
	if s.reg.cluster != nil {
		return http.HandlerFunc(s.route)
	}
	return s.mux
}

// Registry exposes the session registry (the load driver and tests talk
// to it directly).
func (s *Server) Registry() *Registry { return s.reg }

// Shutdown drains the registry gracefully: refuses new work, finishes
// queued batches, closes every session. If ctx carries no deadline a
// DrainTimeout one is applied.
func (s *Server) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DrainTimeout)
		defer cancel()
	}
	return s.reg.Drain(ctx)
}

func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	if s.reg.draining.Load() {
		writeStatus(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) {
	var cr CreateRequest
	if !decodeBody(w, req, s.opts.MaxBodyBytes, &cr) {
		return
	}
	// The leading-dot ban keeps names usable as data-dir entries ("." and
	// ".." foremost) and applies whether or not persistence is on — a
	// name accepted by an in-memory service must stay valid when the
	// operator turns -data-dir on. Backslash and colon are banned for
	// the same reason: on Windows they are path syntax, and a name like
	// `a\..\x` would escape the data dir through filepath.Join.
	if cr.Name == "" || strings.ContainsAny(cr.Name, "/\\: \t\n") || len(cr.Name) > 128 || strings.HasPrefix(cr.Name, ".") {
		writeStatus(w, http.StatusBadRequest, "session name must be non-empty, at most 128 bytes, contain no slash, backslash, colon or whitespace, and not start with a dot")
		return
	}
	if strings.TrimSpace(cr.CFDs) == "" {
		writeStatus(w, http.StatusBadRequest, "cfds must hold at least one constraint (text format, see ParseCFDs)")
		return
	}

	// Assemble the base relation: full CSV, or schema + rows.
	var rel *relation.Relation
	switch {
	case cr.BaseCSV != "":
		name := "data"
		if cr.Schema != nil && cr.Schema.Name != "" {
			name = cr.Schema.Name
		}
		var err error
		rel, err = relation.ReadCSV(name, strings.NewReader(cr.BaseCSV))
		if err != nil {
			writeStatus(w, http.StatusBadRequest, fmt.Sprintf("base_csv: %v", err))
			return
		}
	case cr.Schema != nil:
		sch, err := relation.NewSchema(cr.Schema.Name, cr.Schema.Attrs...)
		if err != nil {
			writeStatus(w, http.StatusBadRequest, err.Error())
			return
		}
		rel = relation.New(sch)
		for i, wt := range cr.Base {
			t, err := decodeTuple(wt, sch.Arity())
			if err != nil {
				writeStatus(w, http.StatusBadRequest, fmt.Sprintf("base[%d]: %v", i, err))
				return
			}
			if err := rel.Insert(t); err != nil {
				writeStatus(w, http.StatusBadRequest, fmt.Sprintf("base[%d]: %v", i, err))
				return
			}
		}
	default:
		writeStatus(w, http.StatusBadRequest, "either base_csv or schema is required")
		return
	}

	parsed, err := cfd.Parse(rel.Schema(), strings.NewReader(cr.CFDs))
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	sigma := cfd.NormalizeAll(parsed)
	opts, err := decodeOptions(cr.Options)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}

	kind, err := store.ParseKind(cr.Store)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	if kind == store.KindDisk && s.reg.persist == nil {
		writeStatus(w, http.StatusBadRequest, "store \"disk\" requires a durable server (-data-dir)")
		return
	}

	sess, err := increpair.NewSession(rel, sigma, opts)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	h, err := s.reg.CreateWithStore(cr.Name, sess, rel.Schema(), cr.Quota, kind)
	if err != nil {
		sess.Close()
		writeError(w, err)
		return
	}
	resp := CreateResponse{
		Name:     h.name,
		Attrs:    h.attrs,
		Rules:    len(sigma),
		Snapshot: encodeSnapshot(sess.Snapshot()),
	}
	if ini := sess.Initial(); ini != nil {
		resp.Initial = &BatchSummary{Tuples: len(ini.Inserted), Cost: ini.Cost, Changes: ini.Changes}
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	hs := s.reg.List()
	resp := ListResponse{Sessions: make([]SessionInfo, 0, len(hs))}
	for _, h := range hs {
		resp.Sessions = append(resp.Sessions, h.info())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, h.info())
}

func (h *hosted) info() SessionInfo {
	si := SessionInfo{
		Name:     h.name,
		Attrs:    h.attrs,
		Queue:    len(h.queue),
		QueueCap: cap(h.queue),
		Persist:  h.pers.status(),
		Snapshot: encodeSnapshot(h.sess.Snapshot()),
	}
	if h.quota != nil {
		si.Quota = h.quota.cfg.wire()
	}
	// Store renders only for disk-backed sessions, so memory-backed
	// listings stay byte-stable.
	if st := h.pers.storeStats(); st != nil {
		si.Store = &WireStore{
			Kind:        "disk",
			Gen:         st.Gen,
			Pages:       st.Pages,
			DirtyPages:  st.DirtyPages,
			CachedPages: st.CachedPages,
			Tuples:      st.Tuples,
			DictEntries: st.DictEntries,
			DiskBytes:   st.DiskBytes,
		}
	}
	// Replication fields render only on clustered nodes, so single-node
	// listings stay byte-stable.
	if h.clustered {
		si.Role = h.roleString()
		if ref := h.shipper.Load(); ref != nil {
			st := ref.sp.Stats()
			si.Replication = fmt.Sprintf("%s@%d", ref.target, st.LastShipped)
			if st.LastError != "" {
				si.Replication += fmt.Sprintf(" (failing: %s)", st.LastError)
			} else if st.Degraded > 0 {
				si.Replication += " (degraded)"
			}
		}
	}
	return si
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	if err := s.reg.Remove(req.Context(), req.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// decodeApply turns a wire batch into engine inputs against h's schema.
func (h *hosted) decodeApply(ar ApplyRequest) (deletes []relation.TupleID, sets []increpair.SetOp, inserts []*relation.Tuple, err error) {
	sch := h.schema
	for _, id := range ar.Deletes {
		deletes = append(deletes, relation.TupleID(id))
	}
	for i, ws := range ar.Sets {
		a, err := sch.Index(ws.Attr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sets[%d]: %v", i, err)
		}
		sets = append(sets, increpair.SetOp{ID: relation.TupleID(ws.ID), Attr: a, Value: decodeValue(ws.Value)})
	}
	for i, wt := range ar.Inserts {
		// The wire contract assigns insert ids server-side, in arrival
		// order: a client-supplied id could collide mid-pass or jump the
		// id watermark for every later tuple.
		if wt.ID != 0 {
			return nil, nil, nil, fmt.Errorf("inserts[%d]: inserts must not carry an id (the session assigns them)", i)
		}
		t, err := decodeTuple(wt, sch.Arity())
		if err != nil {
			return nil, nil, nil, fmt.Errorf("inserts[%d]: %v", i, err)
		}
		inserts = append(inserts, t)
	}
	return deletes, sets, inserts, nil
}

func (s *Server) handleApply(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	h, err := s.reg.Get(name)
	if err != nil {
		writeError(w, err)
		return
	}
	var ar ApplyRequest
	if !decodeBody(w, req, s.opts.MaxBodyBytes, &ar) {
		return
	}
	deletes, sets, inserts, err := h.decodeApply(ar)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	rep, err := s.reg.Apply(req.Context(), h, deletes, sets, inserts)
	if err != nil {
		writeError(w, err)
		return
	}
	if rep.err != nil {
		writeStatus(w, http.StatusUnprocessableEntity, rep.err.Error())
		return
	}
	// Per-stage timings ride as headers, never in the body: the body must
	// stay byte-identical to the equivalent in-process call.
	hdr := w.Header()
	hdr.Set("X-Stage-Queue-Us", strconv.FormatInt(rep.wait.Microseconds(), 10))
	hdr.Set("X-Stage-Engine-Us", strconv.FormatInt(rep.engine.Microseconds(), 10))
	hdr.Set("X-Stage-Persist-Us", strconv.FormatInt(rep.persist.Microseconds(), 10))
	resp := ApplyResponse{
		Session:  name,
		Seq:      rep.seq,
		Inserted: make([]WireTuple, 0, len(rep.res.Inserted)),
		Changed:  changedCells(rep.res, h.attrs),
		Deleted:  rep.deleted,
		Cost:     rep.res.Cost,
		Changes:  rep.res.Changes,
		Snapshot: encodeSnapshot(rep.snap),
	}
	for _, t := range rep.res.Inserted {
		resp.Inserted = append(resp.Inserted, EncodeTuple(t))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	h, err := s.reg.Get(name)
	if err != nil {
		writeError(w, err)
		return
	}
	var ar ApplyRequest
	if !decodeBody(w, req, s.opts.MaxBodyBytes, &ar) {
		return
	}
	if len(ar.Deletes) > 0 || len(ar.Sets) > 0 {
		writeStatus(w, http.StatusBadRequest, "ingest accepts inserts only; use apply for deletes and sets")
		return
	}
	_, _, inserts, err := h.decodeApply(ar)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.reg.Ingest(h, inserts); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Session: name, Queued: len(inserts)})
}

// handleViolations serves one page of a session's violation listing,
// read from a pinned snapshot view. Without a cursor it pins the
// current version, applies the optional rule/attr/min_id/max_id
// pushdown filters, and returns the first limit entries of the
// canonical (tuple id, rule, partner) order; when entries remain, the
// response carries next_cursor — an opaque (version, offset, filter)
// token that continues the SAME pinned version, so the concatenation
// of pages is exactly the one-shot listing. A cursor whose version has
// been evicted gets 410 Gone: restart without a cursor.
func (s *Server) handleViolations(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	q := req.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit <= 0 {
			writeStatus(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
	}
	// The clamp is not silent: X-Effective-Limit always reports the page
	// size actually applied, so a client asking past -max-read-limit can
	// tell a truncated page from an exhausted listing.
	limit = min(limit, s.opts.MaxReadLimit)
	w.Header().Set("X-Effective-Limit", strconv.Itoa(limit))

	var cur readCursor
	if tok := q.Get("cursor"); tok != "" {
		// The filter travels in the token: every page of one pagination
		// is provably the same query at the same version.
		if q.Get("rule") != "" || q.Get("attr") != "" || q.Get("min_id") != "" || q.Get("max_id") != "" {
			writeStatus(w, http.StatusBadRequest, "cursor already carries the filter; drop rule, attr, min_id and max_id")
			return
		}
		if cur, err = decodeCursor(tok); err != nil {
			writeStatus(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		cur.f = cfd.AnyVio()
		cur.f.Rule = q.Get("rule")
		if a := q.Get("attr"); a != "" {
			if cur.f.Attr, err = h.schema.Index(a); err != nil {
				writeStatus(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		for _, p := range []struct {
			key string
			dst *relation.TupleID
		}{{"min_id", &cur.f.MinID}, {"max_id", &cur.f.MaxID}} {
			if v := q.Get(p.key); v != "" {
				id, err := strconv.ParseInt(v, 10, 64)
				if err != nil || id < 0 {
					writeStatus(w, http.StatusBadRequest, p.key+" must be a non-negative integer")
					return
				}
				*p.dst = relation.TupleID(id)
			}
		}
	}

	var (
		rv      *increpair.ReadView
		release func()
	)
	if cur.version != 0 {
		rv, release, err = h.views.acquireAt(cur.version)
	} else {
		rv, release, err = h.views.acquireCurrent()
	}
	if errors.Is(err, errVersionGone) {
		writeStatus(w, http.StatusGone, err.Error())
		return
	}
	if err != nil {
		writeStatus(w, http.StatusServiceUnavailable, "session is closed")
		return
	}
	defer release()

	page, more := rv.Violations(cur.f, cur.offset, limit)
	resp := ViolationsResponse{
		Session:    h.name,
		Version:    rv.Version(),
		Total:      rv.TotalViolations(),
		Violations: encodeViolations(page),
	}
	if more {
		resp.NextCursor = encodeCursor(readCursor{
			version: rv.Version(), offset: cur.offset + len(page), f: cur.f,
		})
	}
	w.Header().Set("X-Session-Version", strconv.FormatUint(rv.Version(), 10))
	writeJSON(w, http.StatusOK, resp)
}

// dumpFlushBytes is how much CSV accumulates between explicit flushes
// of a streaming dump: small enough that clients see steady progress,
// large enough to amortize the chunked-encoding overhead.
const dumpFlushBytes = 256 << 10

// flushWriter flushes the HTTP response every dumpFlushBytes written.
type flushWriter struct {
	w  io.Writer
	fl http.Flusher
	n  int
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.n += n
	if fw.fl != nil && fw.n >= dumpFlushBytes {
		fw.fl.Flush()
		fw.n = 0
	}
	return n, err
}

// handleDump streams the session as CSV from a pinned snapshot view:
// no full-relation buffering, peak memory one cursor page regardless
// of relation size. Completion is signaled out-of-band — the body has
// no length up front — by the X-Dump-Complete trailer; a mid-stream
// failure aborts the connection instead of ending the chunked body
// cleanly, so `curl -f` (and any client checking the trailer) can tell
// a truncated export from a finished one.
func (s *Server) handleDump(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	rv, release, err := h.views.acquireCurrent()
	if err != nil {
		// Pin failures happen before any byte is written, so a racing
		// delete still gets a clean error status.
		writeStatus(w, http.StatusServiceUnavailable, "session is closed")
		return
	}
	defer release()
	hdr := w.Header()
	hdr.Set("Content-Type", "text/csv")
	hdr.Set("X-Session-Version", strconv.FormatUint(rv.Version(), 10))
	hdr.Set("Trailer", "X-Dump-Complete")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if err := rv.WriteCSV(&flushWriter{w: w, fl: fl}); err != nil {
		// Headers are out; a clean EOF here would masquerade as a
		// successful export. Abort the connection mid-chunk instead.
		panic(http.ErrAbortHandler)
	}
	hdr.Set("X-Dump-Complete", "true")
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	hs := s.reg.List()
	var all []time.Duration
	ops := &OpsMetrics{
		PassSeconds:    s.reg.passLat.Snapshot(),
		FsyncLag:       s.reg.walLag.Snapshot(),
		FoldBatches:    s.reg.foldSize.Snapshot(),
		SSEDropped:     s.reg.sseDrops.Load(),
		ReplicaApplied: s.reg.replicaApplied.Load(),
	}
	for _, h := range hs {
		all = append(all, h.lat.window()...)
		ops.Queues = append(ops.Queues, QueueGauge{Session: h.name, Depth: len(h.queue), Cap: cap(h.queue)})
		if ref := h.shipper.Load(); ref != nil {
			st := ref.sp.Stats()
			ops.ShipBatches += st.Batches
			ops.ShipSnapshots += st.Snapshots
			ops.ShipDegraded += st.Degraded
			ops.ShipDropped += st.Dropped
		}
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Sessions:      len(hs),
		Passes:        s.reg.passes.Load(),
		Batches:       s.reg.batches.Load(),
		Coalesced:     s.reg.coalesced.Load(),
		Rejected:      s.reg.rejected.Load(),
		RateLimited:   s.reg.rateLimited.Load(),
		ErrorPasses:   s.reg.errorPasses.Load(),
		Tuples:        s.reg.tuples.Load(),
		Latency:       LatencySummary(all),
		Ops:           ops,
	})
}

func decodeBody(w http.ResponseWriter, req *http.Request, max int64, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, max))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeStatus(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeError maps registry errors onto HTTP statuses. A rate-limited
// request carries its bucket's actual refill time: Retry-After in
// integer seconds (rounded up, per RFC 9110) and the precise wait in
// X-Retry-After-Ms for clients doing sub-second backoff.
func writeError(w http.ResponseWriter, err error) {
	var rle *RateLimitError
	switch {
	case errors.As(err, &rle):
		ms := (rle.RetryAfter + time.Millisecond - 1) / time.Millisecond
		if ms < 1 {
			ms = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(rle.retryAfterSeconds()))
		w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(int64(ms), 10))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrRelationFull):
		writeStatus(w, http.StatusForbidden, err.Error())
	case errors.Is(err, ErrSubscriberLimit):
		writeStatus(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrNotFound):
		writeStatus(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrExists):
		writeStatus(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrDraining):
		writeStatus(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrBacklog):
		writeStatus(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrFollower):
		// Reached only when the routing layer is bypassed (direct or
		// forwarded requests); routed writes get the 421 with X-Primary
		// from writeMisdirected.
		writeStatus(w, http.StatusMisdirectedRequest, err.Error())
	default:
		writeStatus(w, http.StatusBadRequest, err.Error())
	}
}
