package server

// Server-level crash-recovery tests: a durable service is driven over
// HTTP, stopped (gracefully or by simulated crash artifacts: torn and
// corrupted WAL tails), and rebooted onto the same data dir; the
// recovered sessions must answer with byte-identical dumps, snapshots
// and violation listings, keep accepting traffic, and keep persisting.
// The generation machinery (snapshot rotation, pruning, fallback to the
// previous generation) is exercised with a small SnapshotEvery.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/store"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

const recoveryCFDs = `cfd phi1: [AC] -> [CT, ST]
(212 || NYC, NY)
(610 || PHI, PA)
cfd fd1: [zip] -> [CT]
(_ || _)
`

const recoveryBase = `AC,PN,CT,ST,zip
212,8983490,NYC,NY,10012
212,3456789,NYC,NY,10012
610,3345677,PHI,PA,19014
312,7654321,CHI,IL,60614
`

func createRecovery(t *testing.T, base, name string) {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/sessions", CreateRequest{
		Name:    name,
		CFDs:    recoveryCFDs,
		BaseCSV: recoveryBase,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: %d: %s", name, resp.StatusCode, body)
	}
}

// applyRecovery sends one insert batch parameterized by i so every
// batch is distinct; odd batches violate phi1 and get repaired.
func applyRecovery(t *testing.T, base, name string, i int) {
	t.Helper()
	ct, st := "NYC", "NY"
	if i%2 == 1 {
		ct, st = "PHI", "PA" // violates phi1's 212 row
	}
	resp, body := do(t, "POST", base+"/v1/sessions/"+name+"/apply", ApplyRequest{
		Inserts: []WireTuple{
			{Vals: []*string{strp("212"), strp(fmt.Sprintf("555%04d", i)), strp(ct), strp(st), strp("10012")}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply %s #%d: %d: %s", name, i, resp.StatusCode, body)
	}
}

// sessionState fetches the comparable state of one session: CSV dump
// bytes, published snapshot, violation listing.
func sessionState(t *testing.T, base, name string) (dump []byte, snap WireSnapshot, vios string) {
	t.Helper()
	resp, body := do(t, "GET", base+"/v1/sessions/"+name+"/dump", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dump %s: %d: %s", name, resp.StatusCode, body)
	}
	dump = body
	resp, body = do(t, "GET", base+"/v1/sessions/"+name, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: %d: %s", name, resp.StatusCode, body)
	}
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, "GET", base+"/v1/sessions/"+name+"/violations", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("violations %s: %d: %s", name, resp.StatusCode, body)
	}
	return dump, info.Snapshot, string(body)
}

func shutdownService(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
}

// TestServerRecoveryRoundTrip: multi-tenant durable service, mixed
// apply/ingest traffic across snapshot rotations, graceful stop, boot a
// fresh server on the same dir — every session must come back
// byte-identical, stay durable, and keep serving.
func TestServerRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: FsyncOff, SnapshotEvery: 3, QueueDepth: 8}
	s1 := New(opts)
	ts1 := httptest.NewServer(s1.Handler())
	base1 := ts1.URL

	names := []string{"tenant-a", "tenant-b"}
	for _, n := range names {
		createRecovery(t, base1, n)
	}
	for i := 0; i < 7; i++ { // crosses the SnapshotEvery=3 rotation twice
		for _, n := range names {
			applyRecovery(t, base1, n, i)
		}
	}
	// One async ingest on tenant-a; wait until its pass lands.
	resp, body := do(t, "POST", base1+"/v1/sessions/tenant-a/ingest", ApplyRequest{
		Inserts: []WireTuple{{Vals: []*string{strp("610"), strp("7770001"), strp("NYC"), strp("NY"), strp("19014")}}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, snap, _ := sessionState(t, base1, "tenant-a")
		if snap.Batches >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingested batch never applied")
		}
		time.Sleep(10 * time.Millisecond)
	}

	type state struct {
		dump []byte
		snap WireSnapshot
		vios string
	}
	want := map[string]state{}
	for _, n := range names {
		d, sn, v := sessionState(t, base1, n)
		want[n] = state{d, sn, v}
		if !sn.Satisfied {
			t.Fatalf("%s not satisfied before shutdown: %+v", n, sn)
		}
	}
	shutdownService(t, s1, ts1)

	// Rotation must have pruned old generations: at most 2 snapshot
	// generations (current + fallback) per session remain.
	for _, n := range names {
		ents, err := os.ReadDir(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		snaps := 0
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".snap") {
				snaps++
			}
		}
		if snaps == 0 || snaps > 2 {
			t.Fatalf("%s: %d snapshot generations on disk", n, snaps)
		}
	}

	s2, ts2 := newTestService(t, opts)
	n, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != len(names) {
		t.Fatalf("recovered %d sessions, want %d", n, len(names))
	}
	base2 := ts2.URL
	for _, name := range names {
		d, sn, v := sessionState(t, base2, name)
		if !bytes.Equal(d, want[name].dump) {
			t.Fatalf("%s: dump diverged after recovery\nwant:\n%s\ngot:\n%s", name, want[name].dump, d)
		}
		if sn != want[name].snap {
			t.Fatalf("%s: snapshot diverged\nwant %+v\ngot  %+v", name, want[name].snap, sn)
		}
		if v != want[name].vios {
			t.Fatalf("%s: violations diverged: %s vs %s", name, want[name].vios, v)
		}
	}

	// The recovered service keeps working and keeps persisting: apply
	// another batch, bounce again, and expect it to survive.
	applyRecovery(t, base2, "tenant-a", 100)
	d100, _, _ := sessionState(t, base2, "tenant-a")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts2.Close()

	s3, ts3 := newTestService(t, opts)
	if n, err := s3.Recover(); err != nil || n != 2 {
		t.Fatalf("second recovery: n=%d err=%v", n, err)
	}
	d3, _, _ := sessionState(t, ts3.URL, "tenant-a")
	if !bytes.Equal(d3, d100) {
		t.Fatal("batch applied after first recovery did not survive the second")
	}
}

// TestServerRecoveryCorruptTail: damage the durable log's tail after a
// stop — trailing garbage and a bit-flipped final record — and require
// the reboot to come back at the last intact batch, then re-anchor
// itself (fresh generation) so persistence continues.
func TestServerRecoveryCorruptTail(t *testing.T) {
	dir := t.TempDir()
	// Huge SnapshotEvery: all batches stay in wal gen 0, so tail damage
	// lands on real batch records.
	opts := Options{DataDir: dir, Fsync: FsyncOff, SnapshotEvery: 1 << 20, QueueDepth: 8}
	s1 := New(opts)
	ts1 := httptest.NewServer(s1.Handler())
	createRecovery(t, ts1.URL, "t")
	var perBatch [][]byte
	for i := 0; i < 5; i++ {
		applyRecovery(t, ts1.URL, "t", i)
		d, _, _ := sessionState(t, ts1.URL, "t")
		perBatch = append(perBatch, d)
	}
	shutdownService(t, s1, ts1)

	// Snapshot the pristine on-disk state; every corruption case runs
	// against its own copy so post-recovery writes cannot leak between
	// cases.
	pristine := map[string][]byte{}
	ents, err := os.ReadDir(filepath.Join(dir, "t"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, "t", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		pristine[e.Name()] = b
	}

	for _, tc := range []struct {
		name      string
		mutate    func([]byte) []byte
		wantBatch int // index into perBatch the recovery must land on
	}{
		{"trailing-garbage", func(b []byte) []byte {
			return append(append([]byte(nil), b...), "torn half-written rec"...)
		}, 4},
		{"flipped-tail-record", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-3] ^= 0x11
			return c
		}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			caseDir := t.TempDir()
			if err := os.MkdirAll(filepath.Join(caseDir, "t"), 0o755); err != nil {
				t.Fatal(err)
			}
			for name, b := range pristine {
				if name == "wal-0000000000.log" {
					b = tc.mutate(b)
				}
				if err := os.WriteFile(filepath.Join(caseDir, "t", name), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			caseOpts := opts
			caseOpts.DataDir = caseDir
			s2, ts2 := newTestService(t, caseOpts)
			if n, err := s2.Recover(); err != nil || n != 1 {
				t.Fatalf("recover: n=%d err=%v", n, err)
			}
			d, snap, _ := sessionState(t, ts2.URL, "t")
			if !bytes.Equal(d, perBatch[tc.wantBatch]) {
				t.Fatalf("recovered dump is not the last intact batch's\nwant:\n%s\ngot:\n%s", perBatch[tc.wantBatch], d)
			}
			if !snap.Satisfied {
				t.Fatalf("recovered session unsatisfied: %+v", snap)
			}
			// Still serving and persisting after damage.
			applyRecovery(t, ts2.URL, "t", 7)
			_, body := do(t, "GET", ts2.URL+"/v1/sessions", nil)
			if !strings.Contains(string(body), `"persist":"ok"`) {
				t.Fatalf("session not persisting after tail recovery: %s", body)
			}
		})
	}
}

// TestServerRecoveryReportsMidLogGap: splicing a record out of the
// middle of the WAL leaves structurally valid frames whose version
// chain has a hole. Recovery must stop at the record before the hole,
// discard the acknowledged records after it, come back serving — and
// crucially REPORT the loss through Recover's error, not swallow it.
func TestServerRecoveryReportsMidLogGap(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: FsyncOff, SnapshotEvery: 1 << 20, QueueDepth: 8}
	s1 := New(opts)
	ts1 := httptest.NewServer(s1.Handler())
	createRecovery(t, ts1.URL, "t")
	var perBatch [][]byte
	for i := 0; i < 4; i++ {
		applyRecovery(t, ts1.URL, "t", i)
		d, _, _ := sessionState(t, ts1.URL, "t")
		perBatch = append(perBatch, d)
	}
	shutdownService(t, s1, ts1)

	walFile := filepath.Join(dir, "t", "wal-0000000000.log")
	b, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	// Frame layout: 7-byte header, then [len u32][crc u32][payload].
	offsets := []int{7}
	for pos := 7; pos < len(b); {
		ln := int(uint32(b[pos]) | uint32(b[pos+1])<<8 | uint32(b[pos+2])<<16 | uint32(b[pos+3])<<24)
		pos += 8 + ln
		offsets = append(offsets, pos)
	}
	if len(offsets) != 5 {
		t.Fatalf("expected 4 records, found %d", len(offsets)-1)
	}
	// Splice out record 1 (the second batch): frames stay valid, the
	// version chain breaks between records 0 and 2.
	spliced := append(append([]byte(nil), b[:offsets[1]]...), b[offsets[2]:]...)
	if err := os.WriteFile(walFile, spliced, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestService(t, opts)
	n, err := s2.Recover()
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if err == nil || !strings.Contains(err.Error(), "does not replay") {
		t.Fatalf("mid-log gap went unreported: %v", err)
	}
	d, snap, _ := sessionState(t, ts2.URL, "t")
	if !bytes.Equal(d, perBatch[0]) {
		t.Fatalf("recovery should stop before the hole\nwant:\n%s\ngot:\n%s", perBatch[0], d)
	}
	if !snap.Satisfied || snap.Batches != 1 {
		t.Fatalf("recovered snapshot: %+v", snap)
	}
	// Re-anchored on a fresh generation and still persisting.
	applyRecovery(t, ts2.URL, "t", 9)
	_, body := do(t, "GET", ts2.URL+"/v1/sessions", nil)
	if !strings.Contains(string(body), `"persist":"ok"`) {
		t.Fatalf("session not persisting after gap recovery: %s", body)
	}
}

// TestServerResyncAfterFailedPass: a rejected batch (validation error,
// 422) makes the persister re-anchor on a fresh snapshot generation, so
// the on-disk image stays authoritative; a reboot afterwards must land
// on the live state.
func TestServerResyncAfterFailedPass(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: FsyncOff, SnapshotEvery: 1 << 20, QueueDepth: 8}
	s1 := New(opts)
	ts1 := httptest.NewServer(s1.Handler())
	createRecovery(t, ts1.URL, "t")
	applyRecovery(t, ts1.URL, "t", 1)
	// Delete of an unknown id: ApplyOps rejects it, the worker resyncs.
	resp, body := do(t, "POST", ts1.URL+"/v1/sessions/t/apply", ApplyRequest{Deletes: []int64{99999}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad delete: %d: %s", resp.StatusCode, body)
	}
	applyRecovery(t, ts1.URL, "t", 2)
	want, _, _ := sessionState(t, ts1.URL, "t")
	shutdownService(t, s1, ts1)

	if _, err := os.Stat(filepath.Join(dir, "t", "snap-0000000001.snap")); err != nil {
		t.Fatalf("failed pass did not rotate to a fresh snapshot generation: %v", err)
	}
	s2, ts2 := newTestService(t, opts)
	if n, err := s2.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	got, snap, _ := sessionState(t, ts2.URL, "t")
	if !bytes.Equal(want, got) {
		t.Fatalf("state after resync did not survive the reboot\nwant:\n%s\ngot:\n%s", want, got)
	}
	if !snap.Satisfied || snap.Batches != 2 {
		t.Fatalf("recovered snapshot: %+v", snap)
	}
}

// TestServerRemoveDeletesDurableState: DELETE must not resurrect on the
// next boot; Drain must.
func TestServerRemoveDeletesDurableState(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: FsyncBatch, QueueDepth: 8}
	s1 := New(opts)
	ts1 := httptest.NewServer(s1.Handler())
	createRecovery(t, ts1.URL, "keep")
	createRecovery(t, ts1.URL, "drop")
	applyRecovery(t, ts1.URL, "keep", 1)
	applyRecovery(t, ts1.URL, "drop", 1)
	if resp, body := do(t, "DELETE", ts1.URL+"/v1/sessions/drop", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d: %s", resp.StatusCode, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "drop")); !os.IsNotExist(err) {
		t.Fatalf("deleted session's data dir still exists: %v", err)
	}
	shutdownService(t, s1, ts1)

	s2, ts2 := newTestService(t, opts)
	if n, err := s2.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	if resp, _ := do(t, "GET", ts2.URL+"/v1/sessions/keep", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("kept session missing after reboot")
	}
	if resp, _ := do(t, "GET", ts2.URL+"/v1/sessions/drop", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatal("deleted session resurrected")
	}
}

// TestServerRecoverySkipsCorruptTenant: one tenant's files are beyond
// repair; the others must still come up, and the error must say so.
func TestServerRecoverySkipsCorruptTenant(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: FsyncOff, QueueDepth: 8}
	s1 := New(opts)
	ts1 := httptest.NewServer(s1.Handler())
	createRecovery(t, ts1.URL, "healthy")
	applyRecovery(t, ts1.URL, "healthy", 1)
	shutdownService(t, s1, ts1)

	// A tenant directory with a destroyed snapshot and one with no
	// snapshot at all.
	badDir := filepath.Join(dir, "broken")
	if err := os.MkdirAll(badDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(badDir, "snap-0000000000.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	emptyDir := filepath.Join(dir, "empty")
	if err := os.MkdirAll(emptyDir, 0o755); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestService(t, opts)
	n, err := s2.Recover()
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if err == nil || !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("recovery error does not name the corrupt tenants: %v", err)
	}
	if resp, _ := do(t, "GET", ts2.URL+"/v1/sessions/healthy", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("healthy session missing")
	}
	// The corrupt tenant's name is free to claim; creating it replaces
	// the stale files.
	createRecovery(t, ts2.URL, "broken")
	if _, err := os.Stat(filepath.Join(badDir, "wal-0000000000.log")); err != nil {
		t.Fatalf("recreated tenant has no fresh wal: %v", err)
	}
}

// TestServerFsyncPolicies drives a batch through each policy (the
// interval ticker included) and checks the flag parser.
func TestServerFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncBatch, FsyncInterval, FsyncOff} {
		dir := t.TempDir()
		s1 := New(Options{DataDir: dir, Fsync: pol, FsyncInterval: 5 * time.Millisecond, QueueDepth: 4})
		ts1 := httptest.NewServer(s1.Handler())
		createRecovery(t, ts1.URL, "p")
		applyRecovery(t, ts1.URL, "p", 1)
		if pol == FsyncInterval {
			time.Sleep(30 * time.Millisecond) // let the ticker sync at least once
		}
		want, _, _ := sessionState(t, ts1.URL, "p")
		shutdownService(t, s1, ts1)

		s2, ts2 := newTestService(t, Options{DataDir: dir, Fsync: pol, QueueDepth: 4})
		if n, err := s2.Recover(); err != nil || n != 1 {
			t.Fatalf("%v: recover: n=%d err=%v", pol, n, err)
		}
		got, _, _ := sessionState(t, ts2.URL, "p")
		if !bytes.Equal(want, got) {
			t.Fatalf("%v: dump diverged", pol)
		}
	}

	for in, want := range map[string]FsyncPolicy{"batch": FsyncBatch, "interval": FsyncInterval, "off": FsyncOff} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Fatalf("FsyncPolicy(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestDottedSessionNameRejected: names that could escape or collide in
// the data dir are refused at the wire.
func TestDottedSessionNameRejected(t *testing.T) {
	_, ts := newTestService(t, Options{})
	for _, name := range []string{".", "..", ".hidden"} {
		resp, _ := do(t, "POST", ts.URL+"/v1/sessions", CreateRequest{
			Name: name, CFDs: tinyCFDs,
			Schema: &WireSchema{Name: "o", Attrs: []string{"AC", "CT"}},
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("name %q: status %d", name, resp.StatusCode)
		}
	}
}

// TestFinishPersistSupersededKeepsData exercises the purge guard
// directly: a Remove can return on context expiry with the name freed
// while the old worker is still draining, and a client can re-create
// the session in that window. The old worker's cleanup must notice it
// was superseded and leave the new tenant's directory alone — and must
// still delete the directory when it was not superseded.
func TestFinishPersistSupersededKeepsData(t *testing.T) {
	newSess := func() *increpair.Session {
		rel, err := relation.ReadCSV("d", strings.NewReader(recoveryBase))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := cfd.Parse(rel.Schema(), strings.NewReader(recoveryCFDs))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := increpair.NewSession(rel, cfd.NormalizeAll(parsed), nil)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	reg := NewRegistry(4)
	reg.persist = &persistConfig{dir: t.TempDir(), policy: FsyncOff, interval: time.Second, snapEvery: 64}
	dataDir := filepath.Join(reg.persist.dir, "x")

	// Not superseded: purge removes the directory.
	s1 := newSess()
	p1, err := newPersister(reg.persist, "x", s1, wal.Quota{}, store.KindDefault)
	if err != nil {
		t.Fatal(err)
	}
	h1 := &hosted{name: "x", sess: s1, pers: p1}
	h1.purge.Store(true)
	h1.finishPersist(reg)
	if _, err := os.Stat(dataDir); !os.IsNotExist(err) {
		t.Fatalf("unsuperseded purge left the directory: %v", err)
	}

	// Superseded: a new hosted session owns the name (and a rebuilt
	// directory); the stale worker's purge must keep its hands off.
	s2 := newSess()
	pOld, err := newPersister(reg.persist, "x", s2, wal.Quota{}, store.KindDefault)
	if err != nil {
		t.Fatal(err)
	}
	hOld := &hosted{name: "x", sess: s2, pers: pOld}
	hOld.purge.Store(true)
	s3 := newSess()
	hNew, err := reg.Create("x", s3, s3.Current().Schema())
	if err != nil {
		t.Fatal(err)
	}
	hOld.finishPersist(reg)
	if _, err := os.Stat(filepath.Join(dataDir, "snap-0000000000.snap")); err != nil {
		t.Fatalf("stale purge destroyed the new session's data: %v", err)
	}
	// And the new session still works + cleans up through Remove.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Remove(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	<-hNew.done
	if _, err := os.Stat(dataDir); !os.IsNotExist(err) {
		t.Fatalf("real Remove left the directory: %v", err)
	}
}

func TestParseGenName(t *testing.T) {
	for name, want := range map[string]struct {
		gen  uint64
		kind string
		ok   bool
	}{
		"snap-0000000007.snap":     {7, "snap", true},
		"wal-0000000123.log":       {123, "wal", true},
		"snap-0000000007.snap.tmp": {0, "", false},
		"wal-x.log":                {0, "", false},
		"README":                   {0, "", false},
	} {
		gen, kind, ok := parseGenName(name)
		if gen != want.gen || kind != want.kind || ok != want.ok {
			t.Fatalf("parseGenName(%q) = %d %q %v", name, gen, kind, ok)
		}
	}
}
