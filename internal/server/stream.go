package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// The notification stream: every engine pass publishes one Event to the
// session's subscribers, and GET /v1/sessions/{name}/events serves them
// as server-sent events (SSE). The fan-out is fully asynchronous — the
// committer hands the event to a per-session fanout goroutine and moves
// on, so neither the engine worker nor the commit path ever waits on
// marshaling or on a slow reader. Delivery is best-effort by design: a
// subscriber that cannot keep up has whole events dropped (never torn
// ones), and the next event it does receive carries "resync": true to
// say the sequence has a gap — the authoritative state is always the
// session snapshot, which every event carries.

// subscriber is one SSE consumer: a bounded event buffer plus the
// gap flag that turns its next delivered event into a resync marker.
type subscriber struct {
	ch      chan []byte
	dropped bool
}

// subscribers is a session's event fan-out: subscriptions guarded by mu,
// and a lazily started fanout goroutine fed through queue. Lifecycle
// rule: publish is only called by the session's committer, and closeAll
// only after the committer has exited (see hosted.run's defer order), so
// publish never races the queue being closed.
type subscribers struct {
	mu     sync.Mutex
	m      map[int]*subscriber
	next   int
	closed bool

	queue   chan Event
	fanDone chan struct{}
	// drops counts events dropped at slow consumers, registry-wide
	// (nil on bare test fixtures).
	drops *atomic.Uint64
}

const (
	subscriberBuffer = 16
	fanoutBuffer     = 64
)

// subscribe registers a new event consumer; the returned cancel is
// idempotent and must be called when the consumer goes away. A nil
// channel is returned after closeAll (session shut down).
func (s *subscribers) subscribe() (ch chan []byte, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, func() {}
	}
	if s.m == nil {
		s.m = make(map[int]*subscriber)
	}
	id := s.next
	s.next++
	sub := &subscriber{ch: make(chan []byte, subscriberBuffer)}
	s.m[id] = sub
	return sub.ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.m[id]; ok {
			delete(s.m, id)
			close(c.ch)
		}
	}
}

// publish hands ev to the fanout goroutine without blocking. If even
// the fanout queue is saturated the event is dropped for every current
// subscriber — they all get resync-flagged — because the committer must
// keep acknowledging batches no matter how slow the stream side is.
func (s *subscribers) publish(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.queue == nil {
		s.queue = make(chan Event, fanoutBuffer)
		s.fanDone = make(chan struct{})
		go s.fanout(s.queue)
	}
	q := s.queue
	s.mu.Unlock()
	select {
	case q <- ev:
	default:
		s.mu.Lock()
		n := len(s.m)
		for _, sub := range s.m {
			sub.dropped = true
		}
		s.mu.Unlock()
		if s.drops != nil && n > 0 {
			s.drops.Add(uint64(n))
		}
	}
}

func (s *subscribers) fanout(queue chan Event) {
	defer close(s.fanDone)
	for ev := range queue {
		s.deliver(ev)
	}
}

// deliver marshals ev (lazily: plain and resync variants only when a
// subscriber of that kind exists) and offers the bytes to every
// subscriber buffer. Running under mu makes delivery safe against
// concurrent cancel/closeAll closing a subscriber channel — the close
// happens under the same lock.
func (s *subscribers) deliver(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.m) == 0 {
		return
	}
	var plain, resync []byte
	for _, sub := range s.m {
		var b []byte
		if sub.dropped {
			if resync == nil {
				rev := ev
				rev.Resync = true
				resync, _ = json.Marshal(rev)
			}
			b = resync
		} else {
			if plain == nil {
				plain, _ = json.Marshal(ev)
			}
			b = plain
		}
		if b == nil {
			continue
		}
		select {
		case sub.ch <- b:
			sub.dropped = false
		default:
			sub.dropped = true
			if s.drops != nil {
				s.drops.Add(1)
			}
		}
	}
}

// closeAll terminates every subscription and stops the fanout
// goroutine; streams end cleanly when the session's worker exits.
func (s *subscribers) closeAll() {
	s.mu.Lock()
	s.closed = true
	for id, sub := range s.m {
		delete(s.m, id)
		close(sub.ch)
	}
	q := s.queue
	s.queue = nil
	s.mu.Unlock()
	if q != nil {
		close(q)
		<-s.fanDone
	}
}

// handleEvents serves the SSE stream for one session: one "batch" event
// per engine pass, ending when the client disconnects or the session
// shuts down. An event with "resync": true means earlier events were
// dropped for this subscriber; its embedded snapshot is still current.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeStatus(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := h.subs.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An initial comment line lets clients know the stream is live
	// before the first pass happens.
	fmt.Fprintf(w, ": stream open session=%s\n\n", h.name)
	fl.Flush()
	if ch == nil {
		return
	}
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: batch\ndata: %s\n\n", b)
			fl.Flush()
		case <-req.Context().Done():
			return
		case <-h.done:
			return
		}
	}
}
