package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// The notification stream: every engine pass broadcasts one Event to the
// session's subscribers, and GET /v1/sessions/{name}/events serves them
// as server-sent events (SSE). Delivery is best-effort by design — a
// subscriber that cannot keep up has whole events dropped (never torn
// ones), because the worker must not block on a slow reader; the
// authoritative state is always the session snapshot, which every event
// carries.

// subscribers is a session's event fan-out. Events are marshaled once
// and the bytes shared across subscriber channels.
type subscribers struct {
	mu     sync.Mutex
	m      map[int]chan []byte
	next   int
	closed bool
}

const subscriberBuffer = 16

// subscribe registers a new event consumer; the returned cancel is
// idempotent and must be called when the consumer goes away. A nil
// channel is returned after closeAll (session shut down).
func (s *subscribers) subscribe() (ch chan []byte, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, func() {}
	}
	if s.m == nil {
		s.m = make(map[int]chan []byte)
	}
	id := s.next
	s.next++
	ch = make(chan []byte, subscriberBuffer)
	s.m[id] = ch
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.m[id]; ok {
			delete(s.m, id)
			close(c)
		}
	}
}

// broadcast fans ev out to every subscriber, dropping it for any whose
// buffer is full.
func (s *subscribers) broadcast(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.m) == 0 {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for _, ch := range s.m {
		select {
		case ch <- b:
		default:
		}
	}
}

// closeAll terminates every subscription; streams end cleanly when the
// session's worker exits.
func (s *subscribers) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for id, ch := range s.m {
		delete(s.m, id)
		close(ch)
	}
}

// handleEvents serves the SSE stream for one session: one "batch" event
// per engine pass, ending when the client disconnects or the session
// shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeStatus(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := h.subs.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An initial comment line lets clients know the stream is live
	// before the first pass happens.
	fmt.Fprintf(w, ": stream open session=%s\n\n", h.name)
	fl.Flush()
	if ch == nil {
		return
	}
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: batch\ndata: %s\n\n", b)
			fl.Flush()
		case <-req.Context().Done():
			return
		case <-h.done:
			return
		}
	}
}
