package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// The notification stream: every engine pass publishes one Event to the
// session's subscribers, and GET /v1/sessions/{name}/events serves them
// as server-sent events (SSE). The fan-out is fully asynchronous — the
// committer hands the event to a per-session fanout goroutine and moves
// on, so neither the engine worker nor the commit path ever waits on
// marshaling or on a slow reader. Delivery is best-effort by design: a
// subscriber that cannot keep up has whole events dropped (never torn
// ones), and the next event it does receive carries "resync": true to
// say the sequence has a gap — the authoritative state is always the
// session snapshot, which every event carries.
//
// Every event is written with an SSE "id:" line holding the journal
// version it advanced the session to, and a bounded ring of recent
// events is retained. A client that reconnects with Last-Event-ID
// resumes by replaying the ring's tail past that version — the journal
// tail, not a full resync — and only when the ring no longer covers
// the version does the replay fall back to resync semantics.

// subscriber is one SSE consumer: a bounded event buffer plus the
// gap flag that turns its next delivered event into a resync marker.
// afterSeq fences live delivery against the replay handed out at
// subscribe time: passes up to that engine sequence were already
// replayed (or already seen by the resuming client), so deliver skips
// them even if they are still in flight through the fanout queue.
type subscriber struct {
	ch       chan frame
	dropped  bool
	afterSeq uint64
}

// frame is one wire-ready SSE event: the marshaled data line plus the
// journal version for its id: line.
type frame struct {
	version uint64
	data    []byte
}

// subscribers is a session's event fan-out: subscriptions guarded by mu,
// and a lazily started fanout goroutine fed through queue. Lifecycle
// rule: publish is only called by the session's committer, and closeAll
// only after the committer has exited (see hosted.run's defer order), so
// publish never races the queue being closed.
type subscribers struct {
	mu     sync.Mutex
	m      map[int]*subscriber
	next   int
	closed bool

	queue   chan Event
	fanDone chan struct{}
	// drops counts events dropped at slow consumers, registry-wide;
	// sessionDrops is the same count on the session's own instruments
	// (either may be nil on bare test fixtures).
	drops        *atomic.Uint64
	sessionDrops *atomic.Uint64
	// max caps concurrent subscribers (0 = unlimited); set from the
	// session's quota at registration.
	max int

	// ring retains the most recent events in pass order for
	// Last-Event-ID replay; unmarshaled Event values, so retention costs
	// no marshaling on the committer path. dropVersion is the version of
	// the newest event ever evicted — a resume id at or past it is fully
	// covered by the ring.
	ring        []Event
	ringN       int // total events ever published
	ringCap     int // 0 means eventRingSize (tests shrink it)
	dropVersion uint64
}

const (
	subscriberBuffer = 16
	fanoutBuffer     = 64
	// eventRingSize bounds the replayable tail per session.
	eventRingSize = 256
)

func (s *subscribers) cap() int {
	if s.ringCap > 0 {
		return s.ringCap
	}
	return eventRingSize
}

// record appends ev to the replay ring. Called with mu held, by
// publish only — so ring order is pass order.
func (s *subscribers) record(ev Event) {
	c := s.cap()
	if len(s.ring) < c {
		s.ring = append(s.ring, ev)
	} else {
		i := s.ringN % c
		s.dropVersion = s.ring[i].Snapshot.Version
		s.ring[i] = ev
	}
	s.ringN++
}

// tail returns the ring's events newer than version, in pass order.
// Called with mu held.
func (s *subscribers) tail(version uint64) []Event {
	c := s.cap()
	n := len(s.ring)
	var out []Event
	for i := s.ringN - n; i < s.ringN; i++ {
		if ev := s.ring[i%c]; ev.Snapshot.Version > version {
			out = append(out, ev)
		}
	}
	return out
}

// newestSeq returns the engine sequence of the newest ring event, 0 on
// an empty ring. Called with mu held.
func (s *subscribers) newestSeq() uint64 {
	if len(s.ring) == 0 {
		return 0
	}
	return s.ring[(s.ringN-1)%s.cap()].Seq
}

// subscribe registers a new event consumer; the returned cancel is
// idempotent and must be called when the consumer goes away. A nil
// channel is returned after closeAll (session shut down) or when the
// session's subscriber cap is reached.
func (s *subscribers) subscribe() (ch chan frame, cancel func()) {
	ch, _, cancel, _ = s.subscribeFrom(0, false)
	return ch, cancel
}

// subscribeFrom registers a consumer resuming after journal version
// lastID (resume false means a fresh subscription with no replay).
// Registration and replay capture happen under one lock hold, so the
// replay plus subsequent live delivery covers every pass exactly once:
// the subscriber's afterSeq fence skips live events the replay already
// contains. When the ring no longer covers lastID the whole retained
// tail is replayed with the first event resync-flagged — the gap is
// announced, and the embedded snapshots re-anchor the client.
// A session at its subscriber cap refuses with ErrSubscriberLimit
// (mapped to 409): an existing consumer must disconnect first.
func (s *subscribers) subscribeFrom(lastID uint64, resume bool) (ch chan frame, replay []Event, cancel func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, func() {}, nil
	}
	if s.max > 0 && len(s.m) >= s.max {
		return nil, nil, func() {}, fmt.Errorf("%w: %d subscribers connected, cap %d", ErrSubscriberLimit, len(s.m), s.max)
	}
	if s.m == nil {
		s.m = make(map[int]*subscriber)
	}
	id := s.next
	s.next++
	sub := &subscriber{ch: make(chan frame, subscriberBuffer)}
	if resume {
		sub.afterSeq = s.newestSeq()
		if lastID >= s.dropVersion {
			replay = s.tail(lastID)
		} else {
			// The tail past lastID is partly evicted: replay what is
			// retained and flag the gap on its first event.
			replay = s.tail(0)
			if len(replay) > 0 {
				head := replay[0]
				head.Resync = true
				replay[0] = head
			} else {
				sub.dropped = true
			}
		}
	}
	s.m[id] = sub
	return sub.ch, replay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.m[id]; ok {
			delete(s.m, id)
			close(c.ch)
		}
	}, nil
}

// countDrops bumps the registry-wide and per-session slow-subscriber
// drop counters (either may be nil on bare test fixtures).
func (s *subscribers) countDrops(n uint64) {
	if s.drops != nil {
		s.drops.Add(n)
	}
	if s.sessionDrops != nil {
		s.sessionDrops.Add(n)
	}
}

// publish records ev in the replay ring and hands it to the fanout
// goroutine without blocking. If even the fanout queue is saturated the
// event is dropped at every current subscriber — they all get
// resync-flagged — because the committer must keep acknowledging
// batches no matter how slow the stream side is. The ring still gets
// the event, so resumers are unaffected by fanout saturation.
func (s *subscribers) publish(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.record(ev)
	if s.queue == nil {
		s.queue = make(chan Event, fanoutBuffer)
		s.fanDone = make(chan struct{})
		go s.fanout(s.queue)
	}
	q := s.queue
	s.mu.Unlock()
	select {
	case q <- ev:
	default:
		s.mu.Lock()
		n := len(s.m)
		for _, sub := range s.m {
			sub.dropped = true
		}
		s.mu.Unlock()
		if n > 0 {
			s.countDrops(uint64(n))
		}
	}
}

func (s *subscribers) fanout(queue chan Event) {
	defer close(s.fanDone)
	for ev := range queue {
		s.deliver(ev)
	}
}

// deliver marshals ev (lazily: plain and resync variants only when a
// subscriber of that kind exists) and offers the bytes to every
// subscriber buffer. Running under mu makes delivery safe against
// concurrent cancel/closeAll closing a subscriber channel — the close
// happens under the same lock.
func (s *subscribers) deliver(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.m) == 0 {
		return
	}
	var plain, resync []byte
	for _, sub := range s.m {
		if ev.Seq <= sub.afterSeq {
			// Already covered by this subscriber's replay.
			continue
		}
		var b []byte
		if sub.dropped {
			if resync == nil {
				rev := ev
				rev.Resync = true
				resync, _ = json.Marshal(rev)
			}
			b = resync
		} else {
			if plain == nil {
				plain, _ = json.Marshal(ev)
			}
			b = plain
		}
		if b == nil {
			continue
		}
		select {
		case sub.ch <- frame{version: ev.Snapshot.Version, data: b}:
			sub.dropped = false
			sub.afterSeq = ev.Seq
		default:
			sub.dropped = true
			s.countDrops(1)
		}
	}
}

// closeAll terminates every subscription and stops the fanout
// goroutine; streams end cleanly when the session's worker exits.
func (s *subscribers) closeAll() {
	s.mu.Lock()
	s.closed = true
	for id, sub := range s.m {
		delete(s.m, id)
		close(sub.ch)
	}
	q := s.queue
	s.queue = nil
	s.mu.Unlock()
	if q != nil {
		close(q)
		<-s.fanDone
	}
}

// writeSSE writes one SSE event: the id: line carries the journal
// version the event advanced the session to, which is what a client
// sends back as Last-Event-ID to resume.
func writeSSE(w http.ResponseWriter, version uint64, data []byte) {
	fmt.Fprintf(w, "id: %d\nevent: batch\ndata: %s\n\n", version, data)
}

// handleEvents serves the SSE stream for one session: one "batch" event
// per engine pass, ending when the client disconnects or the session
// shuts down. An event with "resync": true means earlier events were
// dropped for this subscriber; its embedded snapshot is still current.
// A reconnect carrying Last-Event-ID: <version> first replays the
// retained event tail past that version — no full resync while the
// ring covers the gap.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Get(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeStatus(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	var lastID uint64
	resume := false
	if v := req.Header.Get("Last-Event-ID"); v != "" {
		if id, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastID, resume = id, true
		}
	}
	ch, replay, cancel, err := h.subs.subscribeFrom(lastID, resume)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Session-Version", strconv.FormatUint(h.sess.Snapshot().Version, 10))
	w.WriteHeader(http.StatusOK)
	// An initial comment line lets clients know the stream is live
	// before the first pass happens.
	fmt.Fprintf(w, ": stream open session=%s\n\n", h.name)
	// Replay marshaling happens here, on the reader's goroutine — the
	// ring keeps Event values precisely so resumers never put marshal
	// work on the committer or fanout path.
	for _, ev := range replay {
		b, _ := json.Marshal(ev)
		writeSSE(w, ev.Snapshot.Version, b)
	}
	fl.Flush()
	if ch == nil {
		return
	}
	for {
		select {
		case fr, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, fr.version, fr.data)
			fl.Flush()
		case <-req.Context().Done():
			return
		case <-h.done:
			return
		}
	}
}
