package server

import (
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
)

// The read-side view cache: every streaming read (violation page, CSV
// dump) runs against an increpair.ReadView — a snapshot-isolated pin of
// the session at one journal version, acquired under the session lock
// for only the pin handoff. Paginated reads need the SAME pinned
// version across requests (the cursor token names it), so released
// views are retained briefly, keyed by version, and a cursor whose
// version has been evicted — or was never pinned here — gets 410 Gone:
// the client restarts from a fresh first page.
//
// Retention is deliberately small: at most maxCachedViews idle views,
// dropped by LRU and by TTL. A retained view costs the pre-images of
// pages the writer has dirtied since the pin (see relation.View), so
// the cap bounds read amplification on the write path no matter how
// many clients paginate. TTL expiry is enforced by a timer armed
// whenever idle views exist — not only on cache touches — so a view
// abandoned mid-pagination releases its pin one sweep after the TTL
// even if no reader ever comes back.

const (
	// maxCachedViews bounds idle (refcount zero) views retained for
	// cursor continuation.
	maxCachedViews = 4
	// viewTTL drops an idle view that no paginating client has touched
	// for this long.
	viewTTL = time.Minute
)

// errVersionGone maps to 410 Gone: the cursor's pinned version is no
// longer reachable (evicted, or from a previous server life).
var errVersionGone = errors.New("server: pinned version no longer available")

// pinnedView is one cached ReadView plus its reader refcount. evicted
// marks a view removed from the table while still referenced — the
// last release frees it.
type pinnedView struct {
	rv      *increpair.ReadView
	refs    int
	lastUse time.Time
	evicted bool
}

// viewCache shares pinned views among a session's readers, keyed by
// journal version. Two requests at the same version share one pin —
// equal versions describe identical state — so N paginating clients
// cost one set of COW pre-images, not N.
type viewCache struct {
	mu     sync.Mutex
	sess   *increpair.Session
	views  map[uint64]*pinnedView
	closed bool
	// ttl is viewTTL, overridable by tests; timer runs the idle sweep,
	// armed (at most one outstanding) whenever idle views remain.
	ttl   time.Duration
	timer *time.Timer
}

func newViewCache(sess *increpair.Session) *viewCache {
	return &viewCache{sess: sess, views: make(map[uint64]*pinnedView), ttl: viewTTL}
}

// acquireCurrent pins the session's current state (or shares an already
// cached pin of that version) and returns the view plus its release.
func (c *viewCache) acquireCurrent() (*increpair.ReadView, func(), error) {
	rv, err := c.sess.ReadView()
	if err != nil {
		return nil, nil, err
	}
	return c.adopt(rv)
}

// acquireAt returns a view pinned at exactly version: from the cache,
// or — when version is still the session's current one — via a fresh
// pin. Anything else is errVersionGone.
func (c *viewCache) acquireAt(version uint64) (*increpair.ReadView, func(), error) {
	c.mu.Lock()
	if pv, ok := c.views[version]; ok {
		pv.refs++
		pv.lastUse = time.Now()
		rel := c.releaser(pv)
		c.mu.Unlock()
		return pv.rv, rel, nil
	}
	c.mu.Unlock()
	rv, err := c.sess.ReadView()
	if err != nil {
		return nil, nil, err
	}
	if rv.Version() != version {
		rv.Release()
		return nil, nil, errVersionGone
	}
	return c.adopt(rv)
}

// adopt inserts a freshly pinned view into the table, or — when a
// concurrent reader already cached that version — releases the new pin
// and shares the cached one.
func (c *viewCache) adopt(rv *increpair.ReadView) (*increpair.ReadView, func(), error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// Session shutting down: serve this one request uncached.
		return rv, rv.Release, nil
	}
	if pv, ok := c.views[rv.Version()]; ok {
		rv.Release()
		pv.refs++
		pv.lastUse = time.Now()
		return pv.rv, c.releaser(pv), nil
	}
	pv := &pinnedView{rv: rv, refs: 1, lastUse: time.Now()}
	c.views[rv.Version()] = pv
	c.pruneLocked()
	return rv, c.releaser(pv), nil
}

// releaser returns the idempotent release for one acquire of pv.
func (c *viewCache) releaser(pv *pinnedView) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			pv.refs--
			pv.lastUse = time.Now()
			if pv.evicted && pv.refs == 0 {
				pv.rv.Release()
			} else {
				c.pruneLocked()
			}
			c.mu.Unlock()
		})
	}
}

// pruneLocked drops idle views past the TTL, then the least recently
// used beyond the cap, and re-arms the sweep timer while any idle view
// remains — so expiry does not depend on a future cache touch. Views
// with readers are never touched.
func (c *viewCache) pruneLocked() {
	var idle []*pinnedView
	for v, pv := range c.views {
		if pv.refs != 0 {
			continue
		}
		if time.Since(pv.lastUse) > c.ttl {
			pv.rv.Release()
			delete(c.views, v)
			continue
		}
		idle = append(idle, pv)
	}
	if len(idle) > maxCachedViews {
		sort.Slice(idle, func(i, j int) bool { return idle[i].lastUse.Before(idle[j].lastUse) })
		for _, pv := range idle[:len(idle)-maxCachedViews] {
			pv.rv.Release()
			delete(c.views, pv.rv.Version())
		}
		idle = idle[len(idle)-maxCachedViews:]
	}
	if len(idle) > 0 {
		c.armSweepLocked()
	}
}

// armSweepLocked schedules one future sweep if none is pending. The
// interval is the full TTL: a view surviving this prune has at most a
// TTL to live, so the next sweep catches it within 2x the TTL — a
// bound, not a deadline, which keeps the timer churn at one reset per
// sweep instead of one per touch.
func (c *viewCache) armSweepLocked() {
	if c.closed || c.timer != nil {
		return
	}
	c.timer = time.AfterFunc(c.ttl, c.sweep)
}

// sweep is the timer's pass: prune, which re-arms while idle views
// remain.
func (c *viewCache) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timer = nil
	if c.closed {
		return
	}
	c.pruneLocked()
}

// closeAll empties the table on session shutdown. Views still held by
// in-flight readers keep streaming — they are marked evicted and freed
// by their last release (ReadViews survive Session.Close by design).
func (c *viewCache) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	for v, pv := range c.views {
		delete(c.views, v)
		if pv.refs == 0 {
			pv.rv.Release()
		} else {
			pv.evicted = true
		}
	}
}

// readCursor is the decoded form of the opaque pagination token: the
// pinned version, the offset into the filtered listing, and the filter
// itself. The filter rides IN the token so every page of one
// pagination is provably the same query — a page request carrying both
// a cursor and explicit filter parameters is rejected.
type readCursor struct {
	version uint64
	offset  int
	f       cfd.VioFilter
}

// encodeCursor serializes c as an opaque URL-safe token. The rule name
// goes last so it may contain any character, colons included.
func encodeCursor(c readCursor) string {
	raw := fmt.Sprintf("%d:%d:%d:%d:%d:%s",
		c.version, c.offset, c.f.Attr, c.f.MinID, c.f.MaxID, c.f.Rule)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

var errBadCursor = errors.New("malformed cursor")

func decodeCursor(s string) (readCursor, error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return readCursor{}, errBadCursor
	}
	parts := strings.SplitN(string(b), ":", 6)
	if len(parts) != 6 {
		return readCursor{}, errBadCursor
	}
	var c readCursor
	if c.version, err = strconv.ParseUint(parts[0], 10, 64); err != nil {
		return readCursor{}, errBadCursor
	}
	if c.offset, err = strconv.Atoi(parts[1]); err != nil || c.offset < 0 {
		return readCursor{}, errBadCursor
	}
	if c.f.Attr, err = strconv.Atoi(parts[2]); err != nil || c.f.Attr < -1 {
		return readCursor{}, errBadCursor
	}
	minID, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || minID < 0 {
		return readCursor{}, errBadCursor
	}
	maxID, err := strconv.ParseInt(parts[4], 10, 64)
	if err != nil || maxID < 0 {
		return readCursor{}, errBadCursor
	}
	c.f.MinID, c.f.MaxID = relation.TupleID(minID), relation.TupleID(maxID)
	c.f.Rule = parts[5]
	return c, nil
}
