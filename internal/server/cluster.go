package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"cfdclean/internal/cluster/ship"
	"cfdclean/internal/wal"
)

// Clustering: a static peer list, consistent hashing of session names
// across it, and a thin proxy on every node. Any node answers any
// request: if the session lives here as a primary it is served locally;
// if it lives here as a replica, reads are served from the replica and
// writes are refused with 421 plus the primary's address (X-Primary);
// otherwise the request is forwarded to the ring owner. The
// ForwardedHeader loop guard keeps a forwarded request from bouncing —
// a node receiving one always answers from local state.
//
// The local-primary-first rule is what makes failover work with a stale
// ring: after a follower is promoted, the ring still names the dead
// node as owner, but the promoted node now hosts the session as a
// primary and serves it regardless of what the ring says. Clients (and
// peers following 421 redirects) find it either directly or via the
// X-Primary address a follower hands out.

// AckMode selects what a write waits for before the client is answered.
type AckMode int

const (
	// AckLeader answers after the primary's own fsync; replication to
	// the follower is asynchronous. A primary crash can lose batches the
	// follower had not yet received (they are still on the primary's
	// disk, recoverable — just not from the replica).
	AckLeader AckMode = iota
	// AckQuorum answers only after the follower has acknowledged the
	// batch too: an acknowledged write survives the loss of either node.
	// Ship failures still degrade rather than fail the write — a primary
	// with a dead follower keeps serving (availability over strictness;
	// the degradation is visible in the metrics and session listings).
	AckQuorum
)

// ParseAckMode maps the -ack flag values onto modes.
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "leader":
		return AckLeader, nil
	case "quorum":
		return AckQuorum, nil
	}
	return 0, fmt.Errorf("unknown ack mode %q (want leader or quorum)", s)
}

func (m AckMode) String() string {
	switch m {
	case AckLeader:
		return "leader"
	case AckQuorum:
		return "quorum"
	}
	return fmt.Sprintf("AckMode(%d)", int(m))
}

// clusterState is one node's view of the cluster: its own address, the
// ack mode, and the consistent-hash ring over the peer list (swappable
// at runtime via PUT /v1/cluster/peers).
type clusterState struct {
	self string
	ack  AckMode

	mu   sync.RWMutex
	ring *ship.Ring

	// shipClient bounds node-to-node replication calls; proxyClient has
	// no timeout of its own (forwarded requests inherit the client's
	// context, and SSE subscriptions are deliberately long-lived).
	shipClient  *http.Client
	proxyClient *http.Client
}

func newClusterState(peers []string, self string, ack AckMode) *clusterState {
	return &clusterState{
		self:        self,
		ack:         ack,
		ring:        ship.NewRing(peers),
		shipClient:  &http.Client{Timeout: 2 * time.Minute},
		proxyClient: &http.Client{},
	}
}

func (c *clusterState) getRing() *ship.Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

func (c *clusterState) setPeers(peers []string) {
	c.mu.Lock()
	c.ring = ship.NewRing(peers)
	c.mu.Unlock()
}

// primary returns the ring owner for a session name.
func (c *clusterState) primary(name string) string {
	return c.getRing().Primary(name)
}

// shipTarget returns the peer this node ships name's batches to when it
// is the session's primary: the ring follower, unless that is self (or
// the ring is too small to have one).
func (c *clusterState) shipTarget(name string) string {
	f := c.getRing().Follower(name)
	if f == c.self {
		return ""
	}
	return f
}

// baseURL turns a peer address into a base URL; bare host:port addresses
// get the http scheme.
func (c *clusterState) baseURL(peer string) string {
	if strings.Contains(peer, "://") {
		return peer
	}
	return "http://" + peer
}

// transport builds the shipping transport toward one peer.
func (c *clusterState) transport(peer string) *ship.HTTPTransport {
	return &ship.HTTPTransport{Base: c.baseURL(peer), Client: c.shipClient}
}

// route is the cluster-mode entry point wrapped around the mux: decide
// locally, serve locally, or forward to the owner.
func (s *Server) route(w http.ResponseWriter, req *http.Request) {
	c := s.reg.cluster
	name, sub, routable := sessionTarget(s, w, req)
	if !routable || name == "" || req.Header.Get(ship.ForwardedHeader) != "" {
		s.mux.ServeHTTP(w, req)
		return
	}
	if h, err := s.reg.Get(name); err == nil {
		if h.role.Load() == rolePrimary {
			// Local primary wins over the ring: this is how a freshly
			// promoted node serves sessions the (stale) ring still maps
			// to the dead peer.
			s.mux.ServeHTTP(w, req)
			return
		}
		// Hosted here as a replica: the read plane is local and live;
		// writes go to the primary, which the client learns via 421.
		if req.Method == http.MethodGet || sub == "promote" {
			s.mux.ServeHTTP(w, req)
			return
		}
		writeMisdirected(w, c.primary(name))
		return
	}
	owner := c.primary(name)
	if owner == "" || owner == c.self {
		s.mux.ServeHTTP(w, req)
		return
	}
	s.forward(w, req, owner)
}

// sessionTarget extracts the session name a request is about, plus the
// trailing operation segment ("apply", "events", "promote", ...).
// routable=false means the request is not session-scoped (metrics,
// health, replication traffic) and is always served locally. A create
// (POST /v1/sessions) is routable by the name inside its body, which is
// peeked and restored; a false return with name=="" after the peek means
// the body was unreadable and the mux's 400 path should have it.
func sessionTarget(s *Server, w http.ResponseWriter, req *http.Request) (name, sub string, routable bool) {
	path := req.URL.Path
	if path == "/v1/sessions" {
		if req.Method != http.MethodPost {
			return "", "", false
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.opts.MaxBodyBytes))
		req.Body = io.NopCloser(bytes.NewReader(body))
		if err != nil {
			return "", "", false
		}
		var peek struct {
			Name string `json:"name"`
		}
		// Unknown fields are fine here — the real decode validates.
		if json.Unmarshal(body, &peek) != nil {
			return "", "", false
		}
		return peek.Name, "create", true
	}
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok {
		return "", "", false
	}
	seg, sub, _ := strings.Cut(rest, "/")
	name, err := url.PathUnescape(seg)
	if err != nil {
		return "", "", false
	}
	return name, sub, true
}

// forward proxies the request to owner, marking it so the peer serves it
// locally. Streaming responses (SSE, dumps) flush through; declared
// trailers (X-Dump-Complete) are copied after the body.
func (s *Server) forward(w http.ResponseWriter, req *http.Request, owner string) {
	c := s.reg.cluster
	out, err := http.NewRequestWithContext(req.Context(), req.Method,
		c.baseURL(owner)+req.URL.RequestURI(), req.Body)
	if err != nil {
		writeStatus(w, http.StatusBadGateway, fmt.Sprintf("forward to %s: %v", owner, err))
		return
	}
	out.Header = req.Header.Clone()
	out.Header.Set(ship.ForwardedHeader, c.self)
	resp, err := c.proxyClient.Do(out)
	if err != nil {
		writeStatus(w, http.StatusBadGateway, fmt.Sprintf("forward to %s: %v", owner, err))
		return
	}
	defer resp.Body.Close()
	hdr := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			hdr.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
	for k, vs := range resp.Trailer {
		for _, v := range vs {
			hdr.Add(k, v)
		}
	}
}

// copyFlush streams src to w, flushing after every read so proxied SSE
// events and dump chunks reach the client as they arrive.
func copyFlush(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// writeMisdirected answers a write that landed on a replica: 421 with
// the primary's address in both the X-Primary header and the body, the
// redirect contract clients follow.
func writeMisdirected(w http.ResponseWriter, primary string) {
	if primary != "" {
		w.Header().Set("X-Primary", primary)
	}
	writeJSON(w, http.StatusMisdirectedRequest, misdirectedResponse{
		Error:   "session is a replica on this node; write to the primary",
		Primary: primary,
	})
}

// replicaBodyLimit bounds replication request bodies by what the frame
// codec itself accepts (payload + frame header), not by MaxBodyBytes:
// the generic API cap is sized for client JSON, and applying it here
// would make any session whose snapshot outgrew it permanently unable
// to bootstrap or heal a follower.
const replicaBodyLimit = ship.MaxFrameLen + 64

// handleReplicaInstall receives a snapshot frame: PUT /v1/replica/{name}.
func (s *Server) handleReplicaInstall(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	kind, payload, err := ship.ReadFrame(http.MaxBytesReader(w, req.Body, replicaBodyLimit))
	if err != nil || kind != ship.KindSnapshot {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad snapshot frame: kind=%d err=%v", kind, err))
		return
	}
	snap, err := wal.DecodeSnapshot(payload)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad snapshot payload: %v", err))
		return
	}
	if err := s.reg.InstallReplica(name, snap); err != nil {
		writeReplicationError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaBatch receives a batch frame: POST /v1/replica/{name}/batch.
func (s *Server) handleReplicaBatch(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	kind, payload, err := ship.ReadFrame(http.MaxBytesReader(w, req.Body, replicaBodyLimit))
	if err != nil || kind != ship.KindBatch {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad batch frame: kind=%d err=%v", kind, err))
		return
	}
	b, err := wal.DecodeBatch(payload)
	if err != nil {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad batch payload: %v", err))
		return
	}
	if err := s.reg.ReplicateBatch(name, b); err != nil {
		writeReplicationError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaDrop removes a local replica: DELETE /v1/replica/{name}.
func (s *Server) handleReplicaDrop(w http.ResponseWriter, req *http.Request) {
	if err := s.reg.DropReplica(req.Context(), req.PathValue("name")); err != nil {
		writeReplicationError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePromote flips a replica to primary: POST /v1/sessions/{name}/promote.
// Idempotent — promoting a primary reports its current state.
func (s *Server) handlePromote(w http.ResponseWriter, req *http.Request) {
	h, err := s.reg.Promote(req.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{
		Session: h.name,
		Role:    h.roleString(),
		Version: h.sess.Snapshot().Version,
	})
}

// handleCluster reports the node's cluster view: GET /v1/cluster.
func (s *Server) handleCluster(w http.ResponseWriter, req *http.Request) {
	info := ClusterInfo{}
	c := s.reg.cluster
	if c != nil {
		info.Self = c.self
		info.Ack = c.ack.String()
		info.Peers = c.getRing().Peers()
	}
	for _, h := range s.reg.List() {
		cs := ClusterSession{Name: h.name, Role: h.roleString(), Version: h.sess.Snapshot().Version}
		if c != nil {
			cs.Owner = c.primary(h.name)
		}
		if ref := h.shipper.Load(); ref != nil {
			st := ref.sp.Stats()
			cs.Follower = ref.target
			cs.Shipped = st.LastShipped
			cs.LastError = st.LastError
		}
		info.Sessions = append(info.Sessions, cs)
	}
	writeJSON(w, http.StatusOK, info)
}

// handlePeers swaps the peer list and rebalances: PUT /v1/cluster/peers.
// For every local primary whose new ring owner is another node, the
// session is transferred: quiesce, snapshot, ship, promote the remote
// copy, then drop the local one. Transfer failures leave the session
// serving locally (reported per session in the response).
func (s *Server) handlePeers(w http.ResponseWriter, req *http.Request) {
	c := s.reg.cluster
	if c == nil {
		writeStatus(w, http.StatusBadRequest, "node is not clustered (start with -peers)")
		return
	}
	var pr PeersRequest
	if !decodeBody(w, req, s.opts.MaxBodyBytes, &pr) {
		return
	}
	if len(pr.Peers) == 0 {
		writeStatus(w, http.StatusBadRequest, "peers must be non-empty")
		return
	}
	c.setPeers(pr.Peers)
	resp := PeersResponse{Peers: c.getRing().Peers()}
	for _, h := range s.reg.List() {
		if h.role.Load() != rolePrimary {
			continue
		}
		owner := c.primary(h.name)
		if owner == c.self || owner == "" {
			// Still ours: just make sure the shipping stream points at
			// the new ring follower.
			desired := c.shipTarget(h.name)
			cur := ""
			if ref := h.shipper.Load(); ref != nil {
				cur = ref.target
			}
			if cur != desired {
				h.stopShipper()
				if desired != "" {
					h.startShipper(c, desired)
				}
			}
			continue
		}
		if err := s.transferSession(req.Context(), h, owner); err != nil {
			resp.Errors = append(resp.Errors, fmt.Sprintf("%s -> %s: %v", h.name, owner, err))
			continue
		}
		resp.Moved = append(resp.Moved, h.name)
	}
	writeJSON(w, http.StatusOK, resp)
}

// transferSession hands one local primary over to its new ring owner:
// stop accepting writes, drain the pipeline, ship a final snapshot (the
// WAL-tail equivalent — the image contains every committed batch),
// promote the remote copy, and remove the local session. Any remote
// failure rolls the local role back so the session keeps serving here.
func (s *Server) transferSession(ctx context.Context, h *hosted, owner string) error {
	c := s.reg.cluster
	h.stopShipper()
	h.role.Store(roleFollower) // refuses new writes from this instant
	if !h.waitQuiesce(10 * time.Second) {
		h.role.Store(rolePrimary)
		return fmt.Errorf("pipeline did not quiesce")
	}
	snap, err := h.captureSnapshot()
	if err != nil {
		h.role.Store(rolePrimary)
		return err
	}
	tr := c.transport(owner)
	if err := tr.ShipSnapshot(h.name, snap); err != nil {
		h.role.Store(rolePrimary)
		return err
	}
	if err := tr.Promote(h.name); err != nil {
		h.role.Store(rolePrimary)
		return err
	}
	// The remote copy is primary now; drop ours (purges local state).
	return s.reg.Remove(ctx, h.name)
}

// writeReplicationError maps replication-path errors: role conflicts to
// 421 (the shipper's stop signal), gaps and other replay failures to 409
// (the shipper's resync signal), unknown sessions to 404 (bootstrap).
func writeReplicationError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errReplicaConflict):
		writeStatus(w, http.StatusMisdirectedRequest, err.Error())
	case errors.Is(err, ErrNotFound):
		writeStatus(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrDraining):
		writeStatus(w, http.StatusServiceUnavailable, err.Error())
	default:
		// Gaps and every other replay failure heal the same way: the
		// primary reships a full snapshot on 409.
		writeStatus(w, http.StatusConflict, err.Error())
	}
}

func (h *hosted) roleString() string {
	if h.role.Load() == roleFollower {
		return "follower"
	}
	return "primary"
}
