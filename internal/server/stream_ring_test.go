package server

import (
	"sync/atomic"
	"testing"
)

// Deterministic unit tests for the replay ring's eviction boundary —
// the off-by-one surface of Last-Event-ID resume. dropVersion is the
// version of the NEWEST event ever evicted, so a resume id equal to it
// is still fully covered (the client saw that event before it was
// evicted); only an id strictly below it has lost part of its tail.

// ringEv builds the minimal event the ring logic cares about.
func ringEv(seq, version uint64) Event {
	return Event{Seq: seq, Snapshot: WireSnapshot{Version: version}}
}

// ringFixture publishes four passes (versions 10,20,30,40) through a
// two-slot ring, evicting versions 10 and 20.
func ringFixture(t *testing.T) *subscribers {
	t.Helper()
	s := &subscribers{ringCap: 2}
	t.Cleanup(s.closeAll)
	for i := uint64(1); i <= 4; i++ {
		s.publish(ringEv(i, 10*i))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropVersion != 20 {
		t.Fatalf("dropVersion = %d, want 20 (newest evicted)", s.dropVersion)
	}
	return s
}

func resumeAt(t *testing.T, s *subscribers, lastID uint64) []Event {
	t.Helper()
	_, replay, cancel, err := s.subscribeFrom(lastID, true)
	if err != nil {
		t.Fatalf("subscribeFrom(%d): %v", lastID, err)
	}
	cancel()
	return replay
}

func versions(evs []Event) []uint64 {
	var out []uint64
	for _, ev := range evs {
		out = append(out, ev.Snapshot.Version)
	}
	return out
}

func TestRingResumeAtDropBoundary(t *testing.T) {
	s := ringFixture(t)
	// lastID == dropVersion: the client saw version 20 before its
	// eviction, so the retained tail {30,40} IS its missing suffix — a
	// clean replay, no resync.
	replay := resumeAt(t, s, 20)
	if got := versions(replay); len(got) != 2 || got[0] != 30 || got[1] != 40 {
		t.Fatalf("replay at boundary = %v, want [30 40]", got)
	}
	for i, ev := range replay {
		if ev.Resync {
			t.Fatalf("boundary resume must not resync (event %d)", i)
		}
	}
}

func TestRingResumeBelowDropBoundary(t *testing.T) {
	s := ringFixture(t)
	// lastID one below dropVersion: version 20 was evicted unseen, so
	// the gap is real — full retained tail, first event resync-flagged.
	for _, lastID := range []uint64{19, 10, 1} {
		replay := resumeAt(t, s, lastID)
		if got := versions(replay); len(got) != 2 || got[0] != 30 || got[1] != 40 {
			t.Fatalf("replay at %d = %v, want [30 40]", lastID, got)
		}
		if !replay[0].Resync {
			t.Fatalf("resume at %d lost events but first replay is not resync-flagged", lastID)
		}
		if replay[1].Resync {
			t.Fatalf("resume at %d flagged more than the first event", lastID)
		}
	}
}

func TestRingResumeIsExclusiveOfLastSeen(t *testing.T) {
	s := ringFixture(t)
	// The tail is strictly newer than lastID: resuming at a retained
	// version must not replay that version again.
	if got := versions(resumeAt(t, s, 30)); len(got) != 1 || got[0] != 40 {
		t.Fatalf("replay at 30 = %v, want [40]", got)
	}
	// Resuming at the newest version replays nothing — and must NOT be
	// treated as a drop.
	_, replay, cancel, err := s.subscribeFrom(40, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(replay) != 0 {
		t.Fatalf("replay at head = %v, want empty", versions(replay))
	}
	s.mu.Lock()
	var sub *subscriber
	for _, v := range s.m {
		sub = v
	}
	s.mu.Unlock()
	if sub == nil || sub.dropped {
		t.Fatal("caught-up resumer must not be marked dropped")
	}
}

func TestRingResumeEmptyRing(t *testing.T) {
	s := &subscribers{ringCap: 2}
	t.Cleanup(s.closeAll)
	// Resume against a session that has not published since the ring was
	// created: nothing to replay, and nothing to resync either —
	// dropVersion is 0, so any lastID is "covered" vacuously.
	_, replay, cancel, err := s.subscribeFrom(7, true)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if len(replay) != 0 {
		t.Fatalf("empty-ring resume replayed %v", versions(replay))
	}
}

// TestRingReplayFencesLiveDelivery: the afterSeq fence set at subscribe
// time must make deliver skip passes the replay already covered, and
// admit the first genuinely new pass.
func TestRingReplayFencesLiveDelivery(t *testing.T) {
	s := ringFixture(t)
	ch, replay, cancel, err := s.subscribeFrom(30, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if got := versions(replay); len(got) != 1 || got[0] != 40 {
		t.Fatalf("replay = %v, want [40]", got)
	}
	// Seq 4 (version 40) is in the replay; a late fanout delivery of the
	// same pass must be suppressed.
	s.deliver(ringEv(4, 40))
	select {
	case fr := <-ch:
		t.Fatalf("fenced event delivered: version %d", fr.version)
	default:
	}
	// The next pass flows through.
	s.deliver(ringEv(5, 50))
	select {
	case fr := <-ch:
		if fr.version != 50 {
			t.Fatalf("live event version = %d, want 50", fr.version)
		}
	default:
		t.Fatal("live event past the fence was not delivered")
	}
}

// TestRingDropCountersBothSinks: a slow subscriber's dropped events
// count on the registry-wide sink and the per-session sink alike.
func TestRingDropCountersBothSinks(t *testing.T) {
	var global, local atomic.Uint64
	s := &subscribers{ringCap: 2, drops: &global, sessionDrops: &local}
	t.Cleanup(s.closeAll)
	ch, _, cancel, err := s.subscribeFrom(0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Fill the subscriber buffer without reading, then one more: the
	// overflow event is dropped and counted once on each sink.
	for i := uint64(1); i <= subscriberBuffer+1; i++ {
		s.deliver(ringEv(i, i))
	}
	if g, l := global.Load(), local.Load(); g != 1 || l != 1 {
		t.Fatalf("drop counters global=%d local=%d, want 1/1", g, l)
	}
	// The gap is announced: after draining, the next delivered event is
	// resync-flagged and the counters do not double-count it.
	for i := 0; i < subscriberBuffer; i++ {
		<-ch
	}
	s.deliver(ringEv(subscriberBuffer+2, subscriberBuffer+2))
	fr := <-ch
	if len(fr.data) == 0 {
		t.Fatal("no data on post-drop event")
	}
	if g := global.Load(); g != 1 {
		t.Fatalf("post-drop delivery bumped the counter to %d", g)
	}
}
