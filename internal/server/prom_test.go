package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition series.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promDoc is a parsed exposition document: samples in document order
// plus the HELP/TYPE headers per family.
type promDoc struct {
	samples []promSample
	help    map[string]string
	types   map[string]string
}

// parseProm parses the Prometheus text exposition format (version
// 0.0.4) strictly enough to catch the mistakes that break real
// scrapers: malformed label quoting, missing HELP/TYPE, non-numeric
// values, and families split across the document.
func parseProm(t *testing.T, body string) *promDoc {
	t.Helper()
	doc := &promDoc{help: map[string]string{}, types: map[string]string{}}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			doc.help[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped") {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			doc.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		doc.samples = append(doc.samples, parsePromSample(t, ln+1, line))
	}
	return doc
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("line %d: no value: %q", ln, line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			// Scan the quoted value honouring \\, \" and \n escapes.
			var val strings.Builder
			j := 0
			for {
				if j >= len(rest) {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := rest[j]
				if c == '"' {
					break
				}
				if c == '\\' {
					if j+1 >= len(rest) {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch rest[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c in %q", ln, rest[j+1], line)
					}
					j += 2
					continue
				}
				val.WriteByte(c)
				j++
			}
			s.labels[key] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if !strings.HasPrefix(rest, "}") {
				t.Fatalf("line %d: malformed label list in %q", ln, line)
			}
			rest = rest[1:]
			break
		}
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: missing space before value in %q", ln, line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	s.value = v
	return s
}

// family maps a series name to its metric family (histogram series
// carry _bucket/_sum/_count suffixes).
func (d *promDoc) family(sample string) string {
	if _, ok := d.types[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if d.types[base] == "histogram" {
				return base
			}
		}
	}
	return sample
}

// get returns the unique sample with the given name and label
// restrictions (alternating key, value).
func (d *promDoc) get(t *testing.T, name string, kv ...string) promSample {
	t.Helper()
	var found []promSample
	for _, s := range d.samples {
		if s.name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.labels[kv[i]] != kv[i+1] {
				match = false
			}
		}
		if match {
			found = append(found, s)
		}
	}
	if len(found) != 1 {
		t.Fatalf("%d samples for %s%v, want exactly 1", len(found), name, kv)
	}
	return found[0]
}

// checkHistogram asserts Prometheus histogram semantics for one series
// set: buckets are cumulative (monotone non-decreasing in le order),
// the last bucket is +Inf, and its count equals the _count series.
func (d *promDoc) checkHistogram(t *testing.T, name string, kv ...string) (count float64) {
	t.Helper()
	var les []float64
	var counts []float64
	for _, s := range d.samples {
		if s.name != name+"_bucket" {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.labels[kv[i]] != kv[i+1] {
				match = false
			}
		}
		if !match {
			continue
		}
		le, err := strconv.ParseFloat(s.labels["le"], 64)
		if s.labels["le"] == "+Inf" {
			le, err = math.Inf(1), nil
		}
		if err != nil {
			t.Fatalf("%s: bad le label %q", name, s.labels["le"])
		}
		les = append(les, le)
		counts = append(counts, s.value)
	}
	if len(les) < 2 {
		t.Fatalf("%s%v: only %d buckets", name, kv, len(les))
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Fatalf("%s: le bounds not ascending: %v", name, les)
		}
		if counts[i] < counts[i-1] {
			t.Fatalf("%s: buckets not cumulative: %v", name, counts)
		}
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("%s: last bucket is %g, want +Inf", name, les[len(les)-1])
	}
	cnt := d.get(t, name+"_count", kv...)
	if counts[len(counts)-1] != cnt.value {
		t.Fatalf("%s: +Inf bucket %g != _count %g", name, counts[len(counts)-1], cnt.value)
	}
	d.get(t, name+"_sum", kv...) // must exist and be unique
	return cnt.value
}

// TestPrometheusExposition is the acceptance test for GET /metrics: the
// document parses as exposition format 0.0.4, every family has HELP and
// TYPE and is written consecutively, histograms are cumulative with an
// +Inf bucket equal to _count, per-session series carry session labels
// (escaped — session names may legally contain double quotes), and the
// counters agree with the traffic the test just generated.
func TestPrometheusExposition(t *testing.T) {
	_, ts := newTestService(t, Options{})
	base := ts.URL
	const quoted = `q"uote` // legal name; breaks naive label rendering
	createTiny(t, base, "alpha")
	createTiny(t, base, quoted)
	for i := 0; i < 3; i++ {
		applyOne(t, base, "alpha", "212", fmt.Sprintf("X%d", i))
	}

	resp, body := do(t, "GET", base+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("content type %q, want %q", ct, promContentType)
	}
	doc := parseProm(t, string(body))

	// Every sample's family must carry HELP and TYPE, and all of a
	// family's samples must be consecutive in the document.
	seen := map[string]bool{}
	prev := ""
	for _, s := range doc.samples {
		fam := doc.family(s.name)
		if doc.help[fam] == "" || doc.types[fam] == "" {
			t.Fatalf("family %s (sample %s) missing HELP or TYPE", fam, s.name)
		}
		if fam != prev && seen[fam] {
			t.Fatalf("family %s is split across the document", fam)
		}
		seen[fam] = true
		prev = fam
	}

	// Service-wide counters reflect the three applies.
	if v := doc.get(t, "cfdserved_passes_total").value; v < 3 {
		t.Fatalf("passes_total = %g, want >= 3", v)
	}
	if v := doc.get(t, "cfdserved_sessions").value; v != 2 {
		t.Fatalf("sessions = %g, want 2", v)
	}
	for _, c := range []string{
		"cfdserved_batches_total", "cfdserved_coalesced_total", "cfdserved_rejected_total",
		"cfdserved_rate_limited_total", "cfdserved_error_batches_total",
		"cfdserved_tuples_total", "cfdserved_sse_dropped_total",
	} {
		if doc.types[c] != "counter" {
			t.Fatalf("%s: type %q, want counter", c, doc.types[c])
		}
		doc.get(t, c)
	}
	if doc.get(t, "cfdserved_uptime_seconds").value < 0 {
		t.Fatal("uptime must be non-negative")
	}

	// Registry-wide histograms: cumulative, +Inf-terminated, count
	// matches the traffic.
	if n := doc.checkHistogram(t, "cfdserved_pass_duration_seconds"); n < 3 {
		t.Fatalf("pass_duration count = %g, want >= 3", n)
	}
	doc.checkHistogram(t, "cfdserved_fold_batches")
	// No durable sessions here, so the fsync histogram is present but
	// empty — the all-zero layout scrapers expect, not an absent family.
	if n := doc.checkHistogram(t, "cfdserved_fsync_lag_seconds"); n != 0 {
		t.Fatalf("fsync_lag count = %g, want 0 in-memory", n)
	}

	// Per-session series exist for both sessions — including the one
	// whose name needs label escaping — and the gauges carry sane values.
	for _, name := range []string{"alpha", quoted} {
		if v := doc.get(t, "cfdserved_session_queue_depth", "session", name).value; v < 0 {
			t.Fatalf("queue depth %g", v)
		}
		if v := doc.get(t, "cfdserved_session_queue_capacity", "session", name).value; v < 1 {
			t.Fatalf("queue capacity %g", v)
		}
		doc.checkHistogram(t, "cfdserved_session_pass_duration_seconds", "session", name)
		doc.checkHistogram(t, "cfdserved_session_fold_batches", "session", name)
		doc.get(t, "cfdserved_session_sse_dropped_total", "session", name)
		doc.get(t, "cfdserved_session_error_batches_total", "session", name)
		doc.get(t, "cfdserved_session_rate_limited_total", "session", name)
	}
	// The applies ran on alpha only; its per-session histogram saw all
	// three passes, the quoted session none.
	if n := doc.checkHistogram(t, "cfdserved_session_pass_duration_seconds", "session", "alpha"); n < 3 {
		t.Fatalf("alpha pass count = %g, want >= 3", n)
	}
	if n := doc.checkHistogram(t, "cfdserved_session_pass_duration_seconds", "session", quoted); n != 0 {
		t.Fatalf("quoted-session pass count = %g, want 0", n)
	}
	if v := doc.get(t, "cfdserved_session_relation_size", "session", "alpha").value; v != 4 {
		t.Fatalf("alpha relation size = %g, want 4 (base + 3 inserts)", v)
	}

	// The raw document must contain the escaped form of the quoted name.
	if !strings.Contains(string(body), `session="q\"uote"`) {
		t.Fatal("quoted session name not escaped in exposition output")
	}
}

// TestPromEscapeLabel pins the three mandated escapes.
func TestPromEscapeLabel(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabel(in); got != want {
		t.Fatalf("escapeLabel(%q) = %q, want %q", in, got, want)
	}
}
