package core

import (
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
	"cfdclean/internal/relation"
	"cfdclean/internal/sampling"
)

func dataset(t *testing.T, size int, rho float64) *gen.Dataset {
	t.Helper()
	ds, err := gen.New(gen.Config{Size: size, NoiseRate: rho, Seed: 42, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigValidation(t *testing.T) {
	ds := dataset(t, 50, 0)
	bad := []Config{
		{},
		{Sigma: ds.Sigma},                       // missing ε, δ
		{Sigma: ds.Sigma, Eps: 0.1},             // missing δ
		{Sigma: ds.Sigma, Eps: 1.5, Delta: 0.9}, // ε out of range
		{Sigma: ds.Sigma, Eps: 0.1, Delta: -1},  // δ out of range
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(Config{Sigma: ds.Sigma, Eps: 0.1, Delta: 0.9}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestUnsatisfiableSigmaRejected(t *testing.T) {
	s := relation.MustSchema("r", "A", "B")
	// Two constant rows forcing B to different constants for every A.
	phi := cfd.MustNew("bad", s, []string{"A"}, []string{"B"},
		[]cfd.Cell{cfd.W, cfd.C("x")},
		[]cfd.Cell{cfd.W, cfd.C("y")})
	if _, err := New(Config{Sigma: phi.Normalize(), Eps: 0.1, Delta: 0.9}); err == nil {
		t.Fatal("unsatisfiable Σ accepted")
	}
}

func TestCleanAcceptsCleanData(t *testing.T) {
	ds := dataset(t, 300, 0)
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.05, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Clean(ds.Dirty, &sampling.Oracle{Opt: ds.Opt})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("clean database rejected")
	}
	if len(out.Rounds) != 1 {
		t.Fatalf("clean database took %d rounds", len(out.Rounds))
	}
	if !cfd.Satisfies(out.Repair, ds.Sigma) {
		t.Fatal("output violates Σ")
	}
}

func TestCleanBatchMode(t *testing.T) {
	ds := dataset(t, 600, 0.04)
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.10, Delta: 0.9, Mode: BatchMode})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Clean(ds.Dirty, &sampling.Oracle{Opt: ds.Opt})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(out.Repair, ds.Sigma) {
		t.Fatal("repair violates Σ")
	}
	if len(out.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	for i, r := range out.Rounds {
		if r.Report == nil {
			t.Fatalf("round %d missing report", i)
		}
	}
}

func TestCleanIncrementalMode(t *testing.T) {
	ds := dataset(t, 600, 0.04)
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.10, Delta: 0.9, Mode: IncrementalMode})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Clean(ds.Dirty, &sampling.Oracle{Opt: ds.Opt})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(out.Repair, ds.Sigma) {
		t.Fatal("repair violates Σ")
	}
}

// rejectOnce flags everything in round 0 and nothing afterwards,
// exercising the feedback path deterministically.
type rejectOnce struct {
	oracle *sampling.Oracle
	round  int
}

func (u *rejectOnce) Inspect(sample []*relation.Tuple) []relation.TupleID {
	u.round++
	if u.round == 1 {
		ids := make([]relation.TupleID, len(sample))
		for i, t := range sample {
			ids[i] = t.ID
		}
		return ids
	}
	return u.oracle.Inspect(sample)
}

func (u *rejectOnce) Correct(id relation.TupleID) (*relation.Tuple, bool) {
	return u.oracle.Correct(id)
}

func TestFeedbackLoopAppliesCorrections(t *testing.T) {
	ds := dataset(t, 400, 0.05)
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.9, Delta: 0.6, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	user := &rejectOnce{oracle: &sampling.Oracle{Opt: ds.Opt}}
	out, err := c.Clean(ds.Dirty, user)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rounds) < 2 {
		t.Fatalf("want ≥ 2 rounds, got %d", len(out.Rounds))
	}
	if out.Rounds[0].Corrections == 0 {
		t.Fatal("round 0 rejected but no corrections recorded")
	}
	if !cfd.Satisfies(out.Repair, ds.Sigma) {
		t.Fatal("final repair violates Σ")
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	ds := dataset(t, 200, 0.05)
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.0001, Delta: 0.999, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A user that flags everything forever: the loop must stop at 2.
	out, err := c.Clean(ds.Dirty, flagAll{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Fatal("accepted despite hostile user")
	}
	if len(out.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(out.Rounds))
	}
}

type flagAll struct{}

func (flagAll) Inspect(sample []*relation.Tuple) []relation.TupleID {
	ids := make([]relation.TupleID, len(sample))
	for i, t := range sample {
		ids[i] = t.ID
	}
	return ids
}

func TestReviseSigmaHook(t *testing.T) {
	ds := dataset(t, 200, 0.05)
	called := 0
	c, err := New(Config{
		Sigma: ds.Sigma, Eps: 0.0001, Delta: 0.999, MaxRounds: 2,
		ReviseSigma: func(round int, sigma []*cfd.Normal) []*cfd.Normal {
			called++
			return nil // keep Σ
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Clean(ds.Dirty, flagAll{}); err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Fatal("ReviseSigma never invoked on rejection")
	}
}

func TestCleanDelta(t *testing.T) {
	ds := dataset(t, 500, 0)
	// Build a small dirty ΔD by perturbing copies of existing tuples.
	dirty, err := gen.New(gen.Config{Size: 500, NoiseRate: 1, Seed: 42, Weights: true})
	if err != nil {
		t.Fatal(err)
	}
	var delta []*relation.Tuple
	for _, id := range dirty.DirtyIDs[:10] {
		tp := dirty.Dirty.Tuple(id).Clone()
		tp.ID = relation.TupleID(100000 + int(id)) // fresh ids
		delta = append(delta, tp)
	}
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.5, Delta: 0.6, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.CleanDelta(ds.Opt, delta, &sampling.Oracle{Opt: ds.Opt})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(out.Repair, ds.Sigma) {
		t.Fatal("ΔD repair violates Σ")
	}
	if out.Repair.Size() != ds.Opt.Size()+len(delta) {
		t.Fatalf("repair size %d, want %d", out.Repair.Size(), ds.Opt.Size()+len(delta))
	}
	// The trusted base D must be untouched.
	for _, tp := range ds.Opt.Tuples() {
		got := out.Repair.Tuple(tp.ID)
		if got == nil || !relation.StrictEqVals(got.Vals, tp.Vals) {
			t.Fatalf("trusted tuple %d modified", tp.ID)
		}
	}
}

func TestInputNotModified(t *testing.T) {
	ds := dataset(t, 300, 0.05)
	before := ds.Dirty.Clone()
	c, err := New(Config{Sigma: ds.Sigma, Eps: 0.2, Delta: 0.9, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Clean(ds.Dirty, &sampling.Oracle{Opt: ds.Opt}); err != nil {
		t.Fatal(err)
	}
	for _, tp := range before.Tuples() {
		got := ds.Dirty.Tuple(tp.ID)
		if !relation.StrictEqVals(got.Vals, tp.Vals) {
			t.Fatalf("input tuple %d modified by Clean", tp.ID)
		}
	}
}

func TestModeString(t *testing.T) {
	if BatchMode.String() != "batch" || IncrementalMode.String() != "incremental" {
		t.Fatal("mode names changed")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must stringify")
	}
}
