// Package core wires the paper's three modules into the data-cleaning
// framework of Fig. 3: the repairing module computes a candidate repair,
// the incremental module handles updates to an already-clean database,
// and the sampling module estimates the repair's accuracy by letting a
// user inspect a stratified sample. When the accuracy test rejects, the
// user's corrections (and, optionally, revisions to Σ) feed the next
// repair round; the loop ends when a repair is accepted or the round
// budget is exhausted.
package core

import (
	"fmt"
	"math/rand"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/repair"
	"cfdclean/internal/sampling"
)

// Mode selects the repairing engine driving the loop.
type Mode int

const (
	// BatchMode repairs with BATCHREPAIR (§4).
	BatchMode Mode = iota
	// IncrementalMode repairs with INCREPAIR in its non-incremental
	// driver (§5.3): the consistent subset of D is kept, the rest is
	// re-inserted tuple by tuple.
	IncrementalMode
)

func (m Mode) String() string {
	switch m {
	case BatchMode:
		return "batch"
	case IncrementalMode:
		return "incremental"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Corrector extends sampling.User with the "user edits the sample data"
// half of the Fig. 3 feedback arrow: for a tuple flagged inaccurate, it
// supplies the intended tuple. sampling.Oracle implements it.
type Corrector interface {
	sampling.User
	// Correct returns the intended version of the flagged tuple; ok is
	// false when the user has no correction to offer.
	Correct(id relation.TupleID) (*relation.Tuple, bool)
}

// Config configures a Cleaner.
type Config struct {
	// Sigma is the (satisfiable) constraint set in normal form.
	Sigma []*cfd.Normal
	// Eps and Delta are the accuracy bound ε and confidence δ of the
	// sampling module.
	Eps, Delta float64
	// Mode selects the repairing engine. Default BatchMode.
	Mode Mode
	// MaxRounds caps repair→sample→feedback iterations. Default 5.
	MaxRounds int
	// BatchOpts / IncOpts tune the respective engines (optional).
	BatchOpts *repair.Options
	IncOpts   *increpair.Options
	// SampleOpts tunes stratification; Eps/Delta fields here are
	// overridden by the Config's. Rng below seeds it when unset.
	SampleOpts sampling.Options
	// ReviseSigma, when non-nil, is invoked after a rejected round with
	// the current Σ and may return a revised set (the ∆Σ arrow of
	// Fig. 3). Returning nil keeps Σ unchanged.
	ReviseSigma func(round int, sigma []*cfd.Normal) []*cfd.Normal
	// Seed drives sampling randomness.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Sigma) == 0 {
		return c, fmt.Errorf("core: empty constraint set")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return c, fmt.Errorf("core: ε = %v outside (0,1)", c.Eps)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return c, fmt.Errorf("core: δ = %v outside (0,1)", c.Delta)
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 5
	}
	return c, nil
}

// Round records one repair→sample iteration.
type Round struct {
	// Report is the sampling module's verdict for this round's repair.
	Report *sampling.Report
	// Corrections counts user edits applied after this round (0 for the
	// accepted final round).
	Corrections int
	// RepairCost and RepairChanges mirror the engine result.
	RepairCost    float64
	RepairChanges int
}

// Outcome is the result of a full cleaning run.
type Outcome struct {
	// Repair is the final candidate repair.
	Repair *relation.Relation
	// Accepted reports whether the sampling module accepted Repair at
	// (ε, δ) within the round budget.
	Accepted bool
	// Rounds holds one entry per iteration, in order.
	Rounds []Round
}

// Cleaner runs the framework loop.
type Cleaner struct {
	cfg Config
}

// New validates the configuration and builds a Cleaner.
func New(cfg Config) (*Cleaner, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if _, err := cfd.Satisfiable(c.Sigma); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Cleaner{cfg: c}, nil
}

// Clean runs repair→sample→feedback rounds on the dirty database d until
// the sampling module accepts the repair or MaxRounds is reached. The
// user inspects each round's sample; if it also implements Corrector,
// flagged tuples are replaced by the user's corrections (pinned with
// weight 1 so later rounds keep them) before the next repair. d itself is
// never modified.
func (c *Cleaner) Clean(d *relation.Relation, user sampling.User) (*Outcome, error) {
	work := d.Clone()
	sigma := c.cfg.Sigma
	out := &Outcome{}
	for round := 0; round < c.cfg.MaxRounds; round++ {
		repr, rcost, rchanges, err := c.repairOnce(work, sigma)
		if err != nil {
			return nil, err
		}
		report, err := c.sampleOnce(repr, work, sigma, user, round)
		if err != nil {
			return nil, err
		}
		r := Round{Report: report, RepairCost: rcost, RepairChanges: rchanges}
		if report.Accepted {
			out.Rounds = append(out.Rounds, r)
			out.Repair = repr
			out.Accepted = true
			return out, nil
		}
		// Rejected: fold user corrections into the working database and
		// let the user revise Σ, then go again.
		if corr, ok := user.(Corrector); ok {
			r.Corrections = applyCorrections(work, corr, report.Inaccurate)
		}
		out.Rounds = append(out.Rounds, r)
		out.Repair = repr
		if c.cfg.ReviseSigma != nil {
			if revised := c.cfg.ReviseSigma(round, sigma); revised != nil {
				if _, err := cfd.Satisfiable(revised); err != nil {
					return nil, fmt.Errorf("core: revised Σ: %w", err)
				}
				sigma = revised
			}
		}
	}
	return out, nil
}

// CleanDelta is the incremental entry point (Fig. 3's ∆D input): given a
// database d known to satisfy Σ and a batch of insertions delta, it
// repairs delta with INCREPAIR and runs the same sample/feedback loop
// over the combined database. Corrections apply to the inserted tuples
// only; d is trusted and never modified.
func (c *Cleaner) CleanDelta(d *relation.Relation, delta []*relation.Tuple, user sampling.User) (*Outcome, error) {
	sigma := c.cfg.Sigma
	out := &Outcome{}
	work := make([]*relation.Tuple, len(delta))
	for i, t := range delta {
		work[i] = t.Clone()
	}
	for round := 0; round < c.cfg.MaxRounds; round++ {
		res, err := increpair.Incremental(d, work, sigma, c.cfg.IncOpts)
		if err != nil {
			return nil, err
		}
		// Stratify against a pre-repair view: d plus the raw delta.
		orig := d.Clone()
		for _, t := range work {
			if orig.Tuple(t.ID) == nil {
				orig.MustInsert(t.Clone())
			}
		}
		report, err := c.sampleOnce(res.Repair, orig, sigma, user, round)
		if err != nil {
			return nil, err
		}
		r := Round{Report: report, RepairCost: res.Cost, RepairChanges: res.Changes}
		if report.Accepted {
			out.Rounds = append(out.Rounds, r)
			out.Repair = res.Repair
			out.Accepted = true
			return out, nil
		}
		if corr, ok := user.(Corrector); ok {
			n := 0
			byID := make(map[relation.TupleID]int, len(work))
			for i, t := range work {
				byID[t.ID] = i
			}
			for _, id := range report.Inaccurate {
				i, mine := byID[id]
				if !mine {
					continue // flagged tuple belongs to the trusted base
				}
				if fixed, ok := corr.Correct(id); ok {
					fixed = fixed.Clone()
					pinWeights(fixed)
					work[i] = fixed
					n++
				}
			}
			r.Corrections = n
		}
		out.Rounds = append(out.Rounds, r)
		out.Repair = res.Repair
	}
	return out, nil
}

func (c *Cleaner) repairOnce(work *relation.Relation, sigma []*cfd.Normal) (*relation.Relation, float64, int, error) {
	switch c.cfg.Mode {
	case IncrementalMode:
		res, err := increpair.Repair(work, sigma, c.cfg.IncOpts)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Repair, res.Cost, res.Changes, nil
	default:
		res, err := repair.Batch(work, sigma, c.cfg.BatchOpts)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Repair, res.Cost, res.Changes, nil
	}
}

func (c *Cleaner) sampleOnce(repr, orig *relation.Relation, sigma []*cfd.Normal, user sampling.User, round int) (*sampling.Report, error) {
	opts := c.cfg.SampleOpts
	opts.Eps = c.cfg.Eps
	opts.Delta = c.cfg.Delta
	if opts.Rng == nil {
		opts.Rng = rand.New(rand.NewSource(c.cfg.Seed + int64(round)))
	}
	return sampling.Evaluate(repr, orig, sigma, user, opts)
}

// applyCorrections replaces flagged tuples in work by the user's
// corrections and pins their weights to 1: the cost model then treats the
// hand-checked values as maximally trustworthy, so the next repair round
// prefers editing other tuples.
func applyCorrections(work *relation.Relation, corr Corrector, flagged []relation.TupleID) int {
	n := 0
	for _, id := range flagged {
		fixed, ok := corr.Correct(id)
		if !ok {
			continue
		}
		cur := work.Tuple(id)
		if cur == nil {
			continue
		}
		for a := range fixed.Vals {
			if _, err := work.Set(id, a, fixed.Vals[a]); err != nil {
				continue
			}
		}
		pinWeights(work.Tuple(id))
		n++
	}
	return n
}

func pinWeights(t *relation.Tuple) {
	for i := range t.Vals {
		t.SetWeight(i, 1)
	}
}
