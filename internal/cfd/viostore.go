package cfd

import (
	"sort"
	"sync"

	"cfdclean/internal/relation"
)

// VioStore is a stateful, delta-maintained violation store: detection
// turned from a scan into an index. It owns a Detector over a relation,
// computes the full violation state once at construction, then subscribes
// to the relation's mutation journal and keeps that state incrementally
// up to date — per-group violation lists, per-tuple vio(t) counts, and
// the global total — paying O(affected buckets) per insert, delete or
// update instead of O(|D|) per query. Detect, VioAll, VioTuple and
// Satisfied are answered from maintained state and are always exactly
// equal to what a freshly built Detector would return (the equivalence is
// fuzz-tested in viostore_test.go).
//
// The store is the paper's IncRepair enabler: the detect→fix→re-detect
// loop of both repair engines runs against one store for the whole run,
// so each round costs O(|Δ|), never O(|D|·rounds). Close detaches the
// store from the relation's journal; after Close the relation can be
// mutated freely without maintenance cost, but the store's answers go
// stale.
//
// VioStore is not safe for concurrent mutation; like the Relation it
// observes, it assumes one mutator. Read-only queries may run
// concurrently with each other but not with mutations.
type VioStore struct {
	d   *Detector
	rel *relation.Relation

	// vio is vio(t) for every tuple with at least one violation; total is
	// the sum over all tuples (the paper's vio(D), §3.1).
	vio   map[relation.TupleID]int
	total int

	// state[i] holds the maintained violation lists of d.groups[i].
	state []groupVioState

	// comp is the maintained violation-graph connectivity (see
	// Components): a union-find over violating tuples, grown in O(α) per
	// violation entering the store and rebuilt lazily after removals.
	comp compState

	sc          *scanScratch
	unsubscribe func()
}

// compState is the union-find behind Components. Violations entering the
// store union their endpoints immediately; violations leaving the store
// can split a component, which a union-find cannot express, so removals
// only mark the structure stale and the next Components call rebuilds it
// from the maintained violation lists in O(vio(D)·α). In the insert-only
// regime of a streaming session the structure therefore stays exact
// without ever being rebuilt.
type compState struct {
	parent map[relation.TupleID]relation.TupleID
	stale  bool
}

func (c *compState) add(v Violation) {
	if c.parent == nil {
		c.parent = make(map[relation.TupleID]relation.TupleID)
	}
	c.node(v.T)
	if v.With != 0 {
		c.union(v.T, v.With)
	}
}

func (c *compState) node(id relation.TupleID) {
	if _, ok := c.parent[id]; !ok {
		c.parent[id] = id
	}
}

func (c *compState) find(id relation.TupleID) relation.TupleID {
	for c.parent[id] != id {
		c.parent[id] = c.parent[c.parent[id]] // path halving
		id = c.parent[id]
	}
	return id
}

// union merges the components of a and b; the smaller root id wins, which
// keeps the representative choice independent of union order.
func (c *compState) union(a, b relation.TupleID) {
	c.node(a)
	c.node(b)
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
}

// groupVioState is the maintained violation set of one embedded-FD group.
// Variable-RHS groups key their violations by LHS-index bucket (the unit
// of recomputation under deltas); constant-only groups have no index and
// key per tuple, since case-1 violations involve one tuple alone.
type groupVioState struct {
	total    int
	byBucket map[relation.Key][]Violation
	byTuple  map[relation.TupleID][]Violation
}

// NewVioStore builds the violation store for sigma over rel: one full
// (partition-parallel) detection pass, then subscription to rel's
// mutation journal. The relation must not be mutated concurrently with
// construction.
func NewVioStore(rel *relation.Relation, sigma []*Normal) *VioStore {
	return NewVioStoreWorkers(rel, sigma, 0)
}

// NewVioStoreWorkers is NewVioStore with explicit parallelism for the
// initial scan (and the detector's later whole-database scans): 1 forces
// the sequential path, <= 0 means runtime.GOMAXPROCS(0). The resulting
// state is identical at every setting.
func NewVioStoreWorkers(rel *relation.Relation, sigma []*Normal, workers int) *VioStore {
	d := NewDetector(rel, sigma)
	d.SetWorkers(workers)
	s := &VioStore{
		d:     d,
		rel:   rel,
		vio:   make(map[relation.TupleID]int),
		state: make([]groupVioState, len(d.groups)),
		sc:    newScanScratch(),
	}

	// Variable-RHS groups need their LHS indices live for maintenance;
	// build them now and snapshot the bucket work list. Constant-only
	// groups stay index-free (their violations are per-tuple).
	type bucketWork struct {
		gi  int
		key relation.Key
		ids []relation.TupleID
	}
	var work []bucketWork
	for gi, g := range d.groups {
		st := &s.state[gi]
		if g.hasVar {
			st.byBucket = make(map[relation.Key][]Violation)
			d.index(g).Buckets(func(key relation.Key, ids []relation.TupleID) {
				work = append(work, bucketWork{gi: gi, key: key, ids: ids})
			})
		} else {
			st.byTuple = make(map[relation.TupleID][]Violation)
		}
	}

	// Scan buckets in parallel; results land in an index-aligned slice,
	// so the merge below is deterministic regardless of worker count.
	results := make([][]Violation, len(work))
	nw := d.workers
	if nw > len(work) {
		nw = len(work)
	}
	scanOne := func(w bucketWork, sc *scanScratch) []Violation {
		var vios []Violation
		d.scanBucket(d.groups[w.gi], w.ids, sc, func(t *relation.Tuple, n *Normal, with relation.TupleID) {
			vios = append(vios, Violation{T: t.ID, N: n, With: with})
		})
		return vios
	}
	if nw > 1 {
		var wg sync.WaitGroup
		for wk := 0; wk < nw; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				sc := newScanScratch()
				for i := wk; i < len(work); i += nw {
					results[i] = scanOne(work[i], sc)
				}
			}(wk)
		}
		wg.Wait()
	} else {
		for i := range work {
			results[i] = scanOne(work[i], s.sc)
		}
	}
	for i, w := range work {
		if len(results[i]) == 0 {
			continue
		}
		s.state[w.gi].byBucket[w.key] = results[i]
		s.account(w.gi, results[i], +1)
	}

	// Constant-only groups: one pass of per-tuple pattern probes.
	for gi, g := range d.groups {
		if g.hasVar {
			continue
		}
		st := &s.state[gi]
		d.scanConstTuples(g, rel.Tuples(), func(t *relation.Tuple, n *Normal, with relation.TupleID) {
			st.byTuple[t.ID] = append(st.byTuple[t.ID], Violation{T: t.ID, N: n, With: with})
		})
		for _, vios := range st.byTuple {
			s.account(gi, vios, +1)
		}
	}

	s.unsubscribe = rel.Subscribe(s.onDelta)
	return s
}

// account applies the vio(t) and total bookkeeping for a violation list
// entering (sign +1) or leaving (sign -1) the store.
func (s *VioStore) account(gi int, vios []Violation, sign int) {
	for _, v := range vios {
		n := s.vio[v.T] + sign
		if n == 0 {
			delete(s.vio, v.T)
		} else {
			s.vio[v.T] = n
		}
	}
	if sign > 0 {
		for _, v := range vios {
			s.comp.add(v)
		}
	} else if len(vios) > 0 {
		// Removed violations can split a component; rebuild lazily.
		s.comp.stale = true
	}
	s.state[gi].total += sign * len(vios)
	s.total += sign * len(vios)
	if s.total == 0 && s.comp.parent != nil {
		// The violation graph is empty: drop the union-find outright.
		// Long-lived streaming sessions drain violations to zero after
		// every batch, so without this reset comp.parent would grow with
		// every tuple that ever violated — unbounded memory for a
		// structure Components can rebuild from the (now empty) lists.
		s.comp = compState{}
	}
}

// Close detaches the store from the relation's mutation journal. The
// store stops maintaining; its answers reflect the state at Close time.
func (s *VioStore) Close() {
	if s.unsubscribe != nil {
		s.unsubscribe()
		s.unsubscribe = nil
	}
}

// Detector returns the underlying detector (shared indices, group
// handles, scratch-tuple probes).
func (s *VioStore) Detector() *Detector { return s.d }

// Relation returns the observed relation.
func (s *VioStore) Relation() *relation.Relation { return s.rel }

// onDelta is the journal hook: it re-derives the violation state of
// exactly the buckets (or tuples) a mutation can affect.
func (s *VioStore) onDelta(dl relation.Delta) {
	switch dl.Kind {
	case relation.DeltaInsert:
		t := dl.T
		for gi, g := range s.d.groups {
			if g.hasVar {
				g.xIndex.Add(t)
				s.rescanBucket(gi, t.KeyOnIDs(g.x))
			} else {
				if g.xIndex != nil {
					g.xIndex.Add(t)
				}
				s.rescanConstTuple(gi, t)
			}
		}
	case relation.DeltaDelete:
		t := dl.T
		for gi, g := range s.d.groups {
			if g.hasVar {
				key := t.KeyOnIDs(g.x)
				g.xIndex.Remove(t.ID)
				s.rescanBucket(gi, key)
			} else {
				if g.xIndex != nil {
					g.xIndex.Remove(t.ID)
				}
				s.dropConstTuple(gi, t.ID)
			}
		}
	case relation.DeltaUpdate:
		t, a := dl.T, dl.Attr
		for gi, g := range s.d.groups {
			inX := containsAttr(g.x, a)
			if !g.hasVar {
				if g.xIndex != nil && inX {
					g.xIndex.Update(t)
				}
				if inX || g.a == a {
					s.rescanConstTuple(gi, t)
				}
				continue
			}
			if inX {
				oldKey := keyWithOverride(t, g.x, a, dl.OldID)
				g.xIndex.Update(t)
				newKey := t.KeyOnIDs(g.x)
				s.rescanBucket(gi, oldKey)
				if newKey != oldKey {
					s.rescanBucket(gi, newKey)
				}
			} else if g.a == a {
				s.rescanBucket(gi, t.KeyOnIDs(g.x))
			}
		}
	}
}

// rescanBucket recomputes the violation list of one LHS-key bucket of a
// variable-RHS group and swaps it into the maintained state.
func (s *VioStore) rescanBucket(gi int, key relation.Key) {
	st := &s.state[gi]
	if old := st.byBucket[key]; len(old) > 0 {
		s.account(gi, old, -1)
	}
	g := s.d.groups[gi]
	ids := g.xIndex.LookupKey(key)
	var vios []Violation
	if len(ids) > 0 {
		s.d.scanBucket(g, ids, s.sc, func(t *relation.Tuple, n *Normal, with relation.TupleID) {
			vios = append(vios, Violation{T: t.ID, N: n, With: with})
		})
	}
	if len(vios) == 0 {
		delete(st.byBucket, key)
		return
	}
	st.byBucket[key] = vios
	s.account(gi, vios, +1)
}

// rescanConstTuple recomputes the case-1 violations of one tuple within a
// constant-only group.
func (s *VioStore) rescanConstTuple(gi int, t *relation.Tuple) {
	s.dropConstTuple(gi, t.ID)
	st := &s.state[gi]
	var vios []Violation
	s.d.scanConstTuples(s.d.groups[gi], []*relation.Tuple{t}, func(t *relation.Tuple, n *Normal, with relation.TupleID) {
		vios = append(vios, Violation{T: t.ID, N: n, With: with})
	})
	if len(vios) == 0 {
		return
	}
	st.byTuple[t.ID] = vios
	s.account(gi, vios, +1)
}

func (s *VioStore) dropConstTuple(gi int, id relation.TupleID) {
	st := &s.state[gi]
	if old := st.byTuple[id]; len(old) > 0 {
		s.account(gi, old, -1)
	}
	delete(st.byTuple, id)
}

// keyWithOverride is t's LHS-index key with attribute a's interned id
// replaced by oldID — the bucket t occupied before an update.
func keyWithOverride(t *relation.Tuple, attrs []int, a int, oldID relation.ValueID) relation.Key {
	var buf [8]relation.ValueID
	ids := buf[:0]
	for _, x := range attrs {
		id := t.IDAt(x)
		if x == a {
			id = oldID
		}
		ids = append(ids, id)
	}
	return relation.KeyOfIDs(ids)
}

func containsAttr(xs []int, a int) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

// Detect returns every current violation in the canonical (tuple id,
// rule rank, partner id) order, straight from maintained state — no
// scan. The result is bit-identical to Detector.Detect on the same
// relation contents.
func (s *VioStore) Detect() []Violation {
	out := make([]Violation, 0, s.total)
	for gi := range s.state {
		st := &s.state[gi]
		for _, vios := range st.byBucket {
			out = append(out, vios...)
		}
		for _, vios := range st.byTuple {
			out = append(out, vios...)
		}
	}
	s.d.sortViolations(out)
	return out
}

// EachViolation visits every maintained violation together with the
// index of its embedded-FD group (per Detector.Groups order). Visit
// order is unspecified.
func (s *VioStore) EachViolation(f func(gi int, v Violation)) {
	for gi := range s.state {
		st := &s.state[gi]
		for _, vios := range st.byBucket {
			for _, v := range vios {
				f(gi, v)
			}
		}
		for _, vios := range st.byTuple {
			for _, v := range vios {
				f(gi, v)
			}
		}
	}
}

// VioAll returns a copy of the maintained vio(t) map: every tuple with at
// least one violation and its count. O(dirty tuples), no scan.
func (s *VioStore) VioAll() map[relation.TupleID]int {
	out := make(map[relation.TupleID]int, len(s.vio))
	for id, n := range s.vio {
		out[id] = n
	}
	return out
}

// VioCount returns the maintained vio(t) of the tuple with the given id
// (0 if it violates nothing).
func (s *VioStore) VioCount(id relation.TupleID) int { return s.vio[id] }

// VioTuple returns vio(t). Relation-owned tuples are answered from the
// maintained count in O(1); free-standing scratch probes fall back to the
// detector's index probes (they are not part of the maintained state).
func (s *VioStore) VioTuple(t *relation.Tuple) int {
	if t.Interned() && s.rel.Tuple(t.ID) == t {
		return s.vio[t.ID]
	}
	return s.d.VioTuple(t)
}

// TotalViolations returns the maintained vio(D) in O(1).
func (s *VioStore) TotalViolations() int { return s.total }

// GroupTotal returns the maintained violation count of one embedded-FD
// group (per Detector.Groups order), in O(1). A zero group total is a
// sound fast-path for skipping the group entirely: every violation the
// repair engines can observe is also counted here.
func (s *VioStore) GroupTotal(gi int) int { return s.state[gi].total }

// Satisfied reports rel |= sigma from the maintained total, in O(1).
func (s *VioStore) Satisfied() bool { return s.total == 0 }

// Components returns the connected components of the violation graph:
// tuples are nodes, and an edge joins two tuples that co-occur in a
// violation (the With partner of a variable-RHS violation). Tuples whose
// only violations are single-tuple (constant-RHS) ones form singleton
// components. Each component is sorted ascending by tuple id and the
// components are ordered by their smallest member, so the result is a
// canonical, deterministic partition of the currently violating tuples.
//
// Two tuples in different components share no violation, so repairing
// them is independent: this is the decomposition the component-parallel
// repair engine schedules across workers. The underlying union-find is
// maintained incrementally as violations enter the store; removals mark
// it stale and the next call rebuilds it from the maintained lists in
// O(vio(D)). The result slice is freshly allocated on every call.
func (s *VioStore) Components() [][]relation.TupleID {
	if s.comp.stale {
		s.comp.parent = nil
		s.comp.stale = false
		s.EachViolation(func(_ int, v Violation) { s.comp.add(v) })
	}
	byRoot := make(map[relation.TupleID][]relation.TupleID)
	for id := range s.vio {
		root := s.comp.find(id)
		byRoot[root] = append(byRoot[root], id)
	}
	out := make([][]relation.TupleID, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
