package cfd

import (
	"strings"
	"testing"
	"testing/quick"

	"cfdclean/internal/relation"
)

// orderSchema is the paper's running-example schema (Fig. 1).
func orderSchema() *relation.Schema {
	return relation.MustSchema("order",
		"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip")
}

// paperData loads the four tuples of Fig. 1(a).
func paperData(t testing.TB) *relation.Relation {
	t.Helper()
	r := relation.New(orderSchema())
	rows := [][]string{
		{"a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"},
		{"a23", "H. Porter", "17.99", "610", "3456789", "Spruce", "PHI", "PA", "19014"},
		{"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "PHI", "PA", "10012"},
		{"a89", "Snow White", "18.99", "212", "5674322", "Broad", "PHI", "PA", "10012"},
	}
	for _, row := range rows {
		if _, err := r.InsertRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// phi1 is CFD ϕ1 of Fig. 1(b): [AC,PN] -> [STR,CT,ST] with T1.
func phi1(s *relation.Schema) *CFD {
	return MustNew("phi1", s, []string{"AC", "PN"}, []string{"STR", "CT", "ST"},
		[]Cell{C("212"), W, W, C("NYC"), C("NY")},
		[]Cell{C("610"), W, W, C("PHI"), C("PA")},
		[]Cell{C("215"), W, W, C("PHI"), C("PA")},
	)
}

// phi2 is CFD ϕ2 of Fig. 1(b): [zip] -> [CT,ST] with T2.
func phi2(s *relation.Schema) *CFD {
	return MustNew("phi2", s, []string{"zip"}, []string{"CT", "ST"},
		[]Cell{C("10012"), C("NYC"), C("NY")},
		[]Cell{C("19014"), C("PHI"), C("PA")},
	)
}

// phi3 / phi4 are the standard FDs of Fig. 2 expressed as CFDs.
func phi3(s *relation.Schema) *CFD {
	φ, err := FD("phi3", s, []string{"id"}, []string{"name", "PR"})
	if err != nil {
		panic(err)
	}
	return φ
}

func phi4(s *relation.Schema) *CFD {
	φ, err := FD("phi4", s, []string{"CT", "STR"}, []string{"zip"})
	if err != nil {
		panic(err)
	}
	return φ
}

func TestMatchValue(t *testing.T) {
	if !MatchValue(relation.S("212"), C("212")) {
		t.Error("constant must match itself")
	}
	if MatchValue(relation.S("212"), C("215")) {
		t.Error("distinct constants must not match")
	}
	if !MatchValue(relation.S("anything"), W) {
		t.Error("wildcard must match any constant")
	}
	// §3.1 remark 2: null matches no pattern, not even the wildcard.
	if MatchValue(relation.NullValue, W) {
		t.Error("null must not match the wildcard")
	}
	if MatchValue(relation.NullValue, C("x")) {
		t.Error("null must not match a constant")
	}
}

func TestMatchValsAndCellLeq(t *testing.T) {
	vals := []relation.Value{relation.S("Walnut"), relation.S("NYC"), relation.S("NY")}
	cells := []Cell{W, C("NYC"), C("NY")}
	if !MatchVals(vals, cells) {
		t.Error("(Walnut, NYC, NY) must match (_, NYC, NY)")
	}
	if MatchVals(vals, []Cell{W, C("PHI"), W}) {
		t.Error("(Walnut, NYC, NY) must not match (_, PHI, _)")
	}
	if MatchVals(vals, cells[:2]) {
		t.Error("length mismatch must not match")
	}
	// Order on cells: constants below themselves and '_'; '_' only below '_'.
	if !CellLeq(C("a"), W) || !CellLeq(C("a"), C("a")) || !CellLeq(W, W) {
		t.Error("CellLeq basic order wrong")
	}
	if CellLeq(W, C("a")) || CellLeq(C("a"), C("b")) {
		t.Error("CellLeq must reject these")
	}
}

func TestNewValidation(t *testing.T) {
	s := orderSchema()
	if _, err := New("x", s, nil, []string{"CT"}, []Cell{W}); err == nil {
		t.Error("empty LHS must fail")
	}
	if _, err := New("x", s, []string{"zip"}, []string{"CT"}); err == nil {
		t.Error("empty tableau must fail")
	}
	if _, err := New("x", s, []string{"nope"}, []string{"CT"}, []Cell{W, W}); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := New("x", s, []string{"zip"}, []string{"CT", "CT"}, []Cell{W, W, W}); err == nil {
		t.Error("duplicate RHS attribute must fail")
	}
	if _, err := New("x", s, []string{"zip"}, []string{"CT"}, []Cell{W}); err == nil {
		t.Error("short pattern row must fail")
	}
}

func TestNormalize(t *testing.T) {
	s := orderSchema()
	ns := phi1(s).Normalize()
	// 3 pattern rows × 3 RHS attributes = 9 normal CFDs.
	if len(ns) != 9 {
		t.Fatalf("normalize(phi1) = %d rules, want 9", len(ns))
	}
	// First normal rule: [AC,PN] -> STR with pattern (212,_ || _).
	n := ns[0]
	if n.A != s.MustIndex("STR") || !n.TpA.Wildcard {
		t.Errorf("first normal rule wrong: %v", n)
	}
	if n.TpX[0].Const != "212" || !n.TpX[1].Wildcard {
		t.Errorf("first normal rule LHS pattern wrong: %v", n)
	}
	// Second: [AC,PN] -> CT with constant NYC.
	if ns[1].TpA.Const != "NYC" || ns[1].ConstantRHS() != true {
		t.Errorf("second normal rule wrong: %v", ns[1])
	}
	if ns[0].ConstantRHS() {
		t.Error("wildcard RHS must not be ConstantRHS")
	}
	if ns[0].Source != nil && ns[0].Source.Name != "phi1" {
		t.Error("normalization must track source")
	}
}

func TestEmbeddedFD(t *testing.T) {
	s := orderSchema()
	fd := phi1(s).EmbeddedFD()
	if len(fd.Tableau) != 1 {
		t.Fatalf("embedded FD tableau rows = %d", len(fd.Tableau))
	}
	for _, c := range fd.Tableau[0] {
		if !c.Wildcard {
			t.Error("embedded FD must be all wildcards")
		}
	}
}

// TestPaperViolations reproduces Example 2.2 / 1.1: the Fig. 1 data
// satisfies ϕ3, ϕ4, but t3 and t4 each violate ϕ1 and ϕ2.
func TestPaperViolations(t *testing.T) {
	r := paperData(t)
	s := r.Schema()
	if !Satisfies(r, NormalizeAll([]*CFD{phi3(s), phi4(s)})) {
		t.Error("Fig. 1 data must satisfy phi3, phi4")
	}
	sigma := NormalizeAll([]*CFD{phi1(s), phi2(s)})
	d := NewDetector(r, sigma)
	if d.Satisfied() {
		t.Fatal("Fig. 1 data must violate phi1, phi2")
	}
	vio := d.VioAll()
	t3 := r.Tuples()[2]
	t4 := r.Tuples()[3]
	// t3 violates phi1 (AC=212 but CT,ST != NYC,NY — 2 constant-RHS rules)
	// and phi2 (zip=10012 — 2 more), same for t4.
	if vio[t3.ID] != 4 {
		t.Errorf("vio(t3) = %d, want 4", vio[t3.ID])
	}
	if vio[t4.ID] != 4 {
		t.Errorf("vio(t4) = %d, want 4", vio[t4.ID])
	}
	t1 := r.Tuples()[0]
	if vio[t1.ID] != 0 {
		t.Errorf("vio(t1) = %d, want 0", vio[t1.ID])
	}
	if got := d.VioTuple(t3); got != 4 {
		t.Errorf("VioTuple(t3) = %d, want 4", got)
	}
	if d.TotalViolations() != 8 {
		t.Errorf("TotalViolations = %d, want 8", d.TotalViolations())
	}
}

// TestPaperRepairSatisfies applies the repair suggested in Example 1.1 —
// set t3[CT,ST] = t4[CT,ST] = (NYC, NY) — and checks the result satisfies
// the CFDs.
func TestPaperRepairSatisfies(t *testing.T) {
	r := paperData(t)
	s := r.Schema()
	sigma := NormalizeAll([]*CFD{phi1(s), phi2(s), phi3(s), phi4(s)})
	d := NewDetector(r, sigma)
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	for _, i := range []int{2, 3} {
		tp := r.Tuples()[i]
		if _, err := r.Set(tp.ID, ct, relation.S("NYC")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Set(tp.ID, st, relation.S("NY")); err != nil {
			t.Fatal(err)
		}
		d.UpdateTuple(tp)
	}
	if !d.Satisfied() {
		t.Error("repaired Fig. 1 data must satisfy all CFDs")
	}
}

// TestCase2Violation exercises variable-RHS (pairwise) violations: the
// paper's t5 insertion (Example 1.1) violates fd1 with t1.
func TestCase2Violation(t *testing.T) {
	r := paperData(t)
	s := r.Schema()
	// Repair t3/t4 first so the base is clean.
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	for _, i := range []int{2, 3} {
		tp := r.Tuples()[i]
		r.Set(tp.ID, ct, relation.S("NYC"))
		r.Set(tp.ID, st, relation.S("NY"))
	}
	t5, err := r.InsertRow("a45", "W. Smith", "9.99", "215", "8983490", "Walnut", "NYC", "NY", "10012")
	if err != nil {
		t.Fatal(err)
	}
	sigma := NormalizeAll([]*CFD{phi1(s)})
	d := NewDetector(r, sigma)
	// t5 agrees with t1 on (AC,PN)=(215,8983490), matches pattern row 3
	// (215,_), but CT,ST differ -> case-2 style violations... note the 215
	// row has constant RHS for CT and ST, so t5 violates those directly,
	// and STR (wildcard RHS) matches t1 so no STR violation (Walnut both).
	vio := d.VioAll()
	if vio[t5.ID] == 0 {
		t.Error("t5 must violate phi1")
	}
	// Pure variable-RHS check via the embedded FD.
	fd := NormalizeAll([]*CFD{phi1(s).EmbeddedFD()})
	d2 := NewDetector(r, fd)
	vio2 := d2.VioAll()
	// t5 and t1 disagree on CT and ST -> 2 violations each.
	t1 := r.Tuples()[0]
	if vio2[t5.ID] != 2 || vio2[t1.ID] != 2 {
		t.Errorf("fd1 violations: t5=%d t1=%d, want 2, 2", vio2[t5.ID], vio2[t1.ID])
	}
	// Partners must find each other.
	var varRule *Normal
	for _, n := range fd {
		if !n.ConstantRHS() && n.A == ct {
			varRule = n
			break
		}
	}
	ps := d2.Partners(t5, varRule)
	if len(ps) != 1 || ps[0] != t1.ID {
		t.Errorf("Partners(t5) = %v, want [t1]", ps)
	}
}

func TestNullResolvesCase2(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	r := relation.New(s)
	r.MustInsert(relation.NewTuple(0, "k", "v1"))
	t2 := relation.NewTuple(0, "k", "v2")
	r.MustInsert(t2)
	fd, err := FD("fd", s, []string{"a"}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	sigma := fd.Normalize()
	d := NewDetector(r, sigma)
	if d.Satisfied() {
		t.Fatal("k->v1/v2 must violate the FD")
	}
	// Setting one side to null resolves the violation (§4.1 case 2.3).
	r.Set(t2.ID, 1, relation.NullValue)
	d.UpdateTuple(t2)
	if !d.Satisfied() {
		t.Error("null must resolve a variable-RHS violation")
	}
}

func TestNullLHSNeverMatches(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	r := relation.New(s)
	tp := &relation.Tuple{Vals: []relation.Value{relation.NullValue, relation.S("x")}}
	r.MustInsert(tp)
	φ := MustNew("c", s, []string{"a"}, []string{"b"},
		[]Cell{W, C("y")})
	d := NewDetector(r, φ.Normalize())
	if !d.Satisfied() {
		t.Error("tuple with null LHS must not violate any CFD")
	}
}

func TestNullRHSSatisfiesConstantCFD(t *testing.T) {
	// Example 5.1 uses (null, null) to satisfy ϕ2's constant RHS: a null
	// RHS value is "unknown" and never a violation.
	s := relation.MustSchema("r", "zip", "CT")
	r := relation.New(s)
	r.MustInsert(&relation.Tuple{Vals: []relation.Value{relation.S("10012"), relation.NullValue}})
	φ := MustNew("c", s, []string{"zip"}, []string{"CT"},
		[]Cell{C("10012"), C("NYC")})
	if !Satisfies(r, φ.Normalize()) {
		t.Error("null RHS must satisfy a constant-RHS CFD")
	}
	if RHSViolates(relation.NullValue, C("NYC")) {
		t.Error("RHSViolates(null, const) must be false")
	}
	if !RHSViolates(relation.S("PHI"), C("NYC")) {
		t.Error("RHSViolates(PHI, NYC) must be true")
	}
	if RHSViolates(relation.S("x"), W) {
		t.Error("nothing violates a wildcard RHS cell by itself")
	}
}

func TestSingleTupleViolatesConstantCFD(t *testing.T) {
	// Example 2.2's point: a single tuple may violate a CFD (unlike FDs).
	s := relation.MustSchema("r", "zip", "CT")
	r := relation.New(s)
	r.MustInsert(relation.NewTuple(0, "10012", "PHI"))
	φ := MustNew("c", s, []string{"zip"}, []string{"CT"},
		[]Cell{C("10012"), C("NYC")})
	d := NewDetector(r, φ.Normalize())
	if d.Satisfied() {
		t.Error("single tuple must be able to violate a constant CFD")
	}
	if d.TotalViolations() != 1 {
		t.Errorf("TotalViolations = %d, want 1", d.TotalViolations())
	}
}

func TestDetectorLifecycle(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	r := relation.New(s)
	t1 := relation.NewTuple(0, "k", "v1")
	r.MustInsert(t1)
	fd, _ := FD("fd", s, []string{"a"}, []string{"b"})
	d := NewDetector(r, fd.Normalize())
	if !d.Satisfied() {
		t.Fatal("one tuple cannot violate an FD")
	}
	t2 := relation.NewTuple(0, "k", "v2")
	r.MustInsert(t2)
	d.AddTuple(t2)
	if d.Satisfied() {
		t.Fatal("detector must see the inserted tuple")
	}
	r.Delete(t2.ID)
	d.RemoveTuple(t2.ID)
	if !d.Satisfied() {
		t.Fatal("detector must see the deletion")
	}
}

func TestSatisfiable(t *testing.T) {
	s := orderSchema()
	// The paper's constraints are satisfiable.
	w, err := SatisfiableCFDs([]*CFD{phi1(s), phi2(s), phi3(s), phi4(s)})
	if err != nil {
		t.Fatalf("paper CFDs must be satisfiable: %v", err)
	}
	_ = w
	// Two all-wildcard-LHS rules forcing different constants conflict.
	a := MustNew("a", s, []string{"AC"}, []string{"CT"}, []Cell{W, C("NYC")})
	b := MustNew("b", s, []string{"AC"}, []string{"CT"}, []Cell{W, C("PHI")})
	if _, err := SatisfiableCFDs([]*CFD{a, b}); err == nil {
		t.Error("conflicting wildcard rules must be unsatisfiable")
	}
	// Chained forcing: _ -> CT=NYC, and (CT=NYC) -> ST=NY, (CT=NYC) -> ST=PA.
	c1 := MustNew("c1", s, []string{"CT"}, []string{"ST"}, []Cell{C("NYC"), C("NY")})
	c2 := MustNew("c2", s, []string{"CT"}, []string{"ST"}, []Cell{C("NYC"), C("PA")})
	if _, err := SatisfiableCFDs([]*CFD{a, c1, c2}); err == nil {
		t.Error("propagated conflict must be detected")
	}
	// Without the forcing rule the conflict cannot fire.
	if _, err := SatisfiableCFDs([]*CFD{c1, c2}); err != nil {
		t.Errorf("dormant conflict must be satisfiable: %v", err)
	}
}

func TestWitnessTuple(t *testing.T) {
	s := orderSchema()
	cfds := []*CFD{phi1(s), phi2(s), phi3(s), phi4(s)}
	sigma := NormalizeAll(cfds)
	w, err := WitnessTuple(s, sigma)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	r.MustInsert(w)
	if !Satisfies(r, sigma) {
		t.Error("witness tuple must satisfy sigma")
	}
}

func TestDepGraph(t *testing.T) {
	s := orderSchema()
	// phi2 (zip -> CT,ST) and phi4 (CT,STR -> zip) are mutually dependent;
	// phi3 (id -> name,PR) is independent of both.
	sigma := NormalizeAll([]*CFD{phi2(s), phi3(s), phi4(s)})
	g := NewDepGraph(sigma)
	if len(g.Order()) != len(sigma) {
		t.Fatalf("order covers %d of %d rules", len(g.Order()), len(sigma))
	}
	seen := make(map[int]bool)
	for _, i := range g.Order() {
		if seen[i] {
			t.Fatal("order repeats a rule")
		}
		seen[i] = true
	}
	// Each rule's rank is consistent with the order.
	for pos, i := range g.Order() {
		if g.Rank(i) != pos {
			t.Errorf("Rank(%d) = %d, want %d", i, g.Rank(i), pos)
		}
	}
	// phi2#0.CT (zip->CT) must have an edge to some rule with CT in LHS
	// (phi4 rows: CT,STR -> zip).
	var phi2CT, phi4zip int = -1, -1
	for i, n := range sigma {
		if strings.HasPrefix(n.Name, "phi2") && n.Schema.Attr(n.A) == "CT" {
			phi2CT = i
		}
		if strings.HasPrefix(n.Name, "phi4") {
			phi4zip = i
		}
	}
	if phi2CT < 0 || phi4zip < 0 {
		t.Fatal("rules not found")
	}
	found := false
	for _, j := range g.Succ(phi2CT) {
		if j == phi4zip {
			found = true
		}
	}
	if !found {
		t.Error("phi2 (writes CT) must point at phi4 (reads CT)")
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := orderSchema()
	spec := `
# the paper's constraints
cfd phi1: [AC, PN] -> [STR, CT, ST]
(212, _ || _, NYC, NY)
(610, _ || _, PHI, PA)
(215, _ || _, PHI, PA)

cfd phi2: [zip] -> [CT, ST]
(10012 || NYC, NY)
(19014 || PHI, PA)

cfd phi3: [id] -> [name, PR]
(_ || _, _)
`
	cfds, err := Parse(s, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) != 3 {
		t.Fatalf("parsed %d CFDs, want 3", len(cfds))
	}
	if len(cfds[0].Tableau) != 3 || len(cfds[1].Tableau) != 2 {
		t.Error("tableau row counts wrong")
	}
	if cfds[0].Tableau[0][0].Const != "212" {
		t.Error("first cell wrong")
	}
	if !cfds[2].Tableau[0][0].Wildcard {
		t.Error("FD row must be wildcard")
	}
	var buf strings.Builder
	if err := Format(&buf, cfds); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(s, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if len(again) != 3 {
		t.Fatalf("round trip lost CFDs")
	}
	for i := range again {
		if again[i].String() != cfds[i].String() {
			t.Errorf("round trip changed %s to %s", cfds[i], again[i])
		}
	}
}

func TestParseQuoted(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	spec := "cfd q: [a] -> [b]\n('New York, NY' || '_')\n"
	cfds, err := Parse(s, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	row := cfds[0].Tableau[0]
	if row[0].Const != "New York, NY" {
		t.Errorf("quoted cell = %q", row[0].Const)
	}
	if row[1].Wildcard || row[1].Const != "_" {
		t.Errorf("quoted underscore must be the constant %q, got %v", "_", row[1])
	}
}

func TestParseErrors(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	cases := []string{
		"",                                   // no constraints
		"cfd x [a] -> [b]\n(_ || _)\n",       // missing colon
		"cfd x: [a] [b]\n(_ || _)\n",         // missing arrow
		"cfd x: a -> [b]\n(_ || _)\n",        // unbracketed list
		"cfd x: [a] -> [b]\n",                // no rows
		"cfd x: [a] -> [b]\n(_, _ || _)\n",   // wrong row width
		"cfd x: [a] -> [b]\n(_ || _\n",       // missing close paren
		"cfd x: [a] -> [b]\n(_ , _)\n",       // missing separator
		"(_ || _)\n",                         // row before header
		"garbage\n",                          // unknown line
		"cfd x: [a] -> [b]\n(it's || _)\n",   // unbalanced quote
		"cfd x: [nope] -> [b]\n(_ || _)\n",   // unknown attribute
		"cfd : [a] -> [b]\n(_ || _)\n",       // empty name
		"cfd x: [a, ] -> [b]\n(_, _ || _)\n", // empty attribute
		"cfd x: [a] -> [b]\n(_ || )\n",       // empty cell
	}
	for _, c := range cases {
		if _, err := Parse(s, strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestAttrsOf(t *testing.T) {
	s := orderSchema()
	sigma := NormalizeAll([]*CFD{phi2(s)})
	attrs := AttrsOf(sigma)
	want := map[int]bool{s.MustIndex("zip"): true, s.MustIndex("CT"): true, s.MustIndex("ST"): true}
	if len(attrs) != len(want) {
		t.Fatalf("AttrsOf = %v", attrs)
	}
	for _, a := range attrs {
		if !want[a] {
			t.Errorf("unexpected attr %d", a)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := orderSchema()
	φ := phi2(s)
	if got := φ.String(); got != "phi2: [zip] -> [CT, ST]" {
		t.Errorf("CFD.String = %q", got)
	}
	n := φ.Normalize()[0]
	if got := n.String(); got != "phi2#0.CT: [zip] -> CT, (10012 || NYC)" {
		t.Errorf("Normal.String = %q", got)
	}
	if W.String() != "_" || C("x").String() != "x" {
		t.Error("Cell.String wrong")
	}
}

// Property: MatchValue(v, W) for every non-null v; and matching a constant
// cell is exactly string equality.
func TestMatchValueProperties(t *testing.T) {
	f := func(v, c string) bool {
		okW := MatchValue(relation.S(v), W)
		okC := MatchValue(relation.S(v), C(c)) == (v == c)
		return okW && okC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a relation always satisfies the embedded FD of a key-like CFD
// when every tuple has a distinct LHS.
func TestDistinctLHSAlwaysSatisfiesFD(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	fd, _ := FD("fd", s, []string{"a"}, []string{"b"})
	sigma := fd.Normalize()
	f := func(vals []string) bool {
		r := relation.New(s)
		seen := make(map[string]bool)
		for i, v := range vals {
			if seen[v] {
				continue
			}
			seen[v] = true
			r.MustInsert(relation.NewTuple(0, v, vals[(i+1)%len(vals)]))
		}
		return Satisfies(r, sigma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
