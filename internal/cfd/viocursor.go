package cfd

import (
	"sort"

	"cfdclean/internal/relation"
)

// VioFilter is the pushdown predicate of a VioCursor. Zero bounds are
// open; Rule "" matches every rule; Attr < 0 matches every attribute
// (use AnyVio for the match-everything filter — the zero value pins
// attribute 0, which is almost never what a caller wants).
type VioFilter struct {
	// Rule, when non-empty, keeps only violations of the normal CFD with
	// this name.
	Rule string
	// Attr, when >= 0, keeps only violations of rules whose embedded FD
	// mentions this attribute position (in X or as the RHS A).
	Attr int
	// MinID/MaxID, when non-zero, bound the violating tuple id T.
	MinID, MaxID relation.TupleID
}

// AnyVio returns the filter that matches every violation.
func AnyVio() VioFilter { return VioFilter{Attr: -1} }

// Match reports whether v passes the filter. It agrees exactly with the
// cursor's group-level pushdown: filtering Detect()'s output through
// Match yields the same list a filtered cursor streams.
func (f VioFilter) Match(v Violation) bool {
	if f.MinID != 0 && v.T < f.MinID {
		return false
	}
	if f.MaxID != 0 && v.T > f.MaxID {
		return false
	}
	if f.Rule != "" && v.N.Name != f.Rule {
		return false
	}
	if f.Attr >= 0 && !containsAttr(v.N.X, f.Attr) && v.N.A != f.Attr {
		return false
	}
	return true
}

// matchVio is the per-violation residue of the filter once the cursor's
// group pushdown (attr) and id pushdown (range) have been applied.
func (f VioFilter) matchVio(v Violation) bool {
	return f.Rule == "" || v.N.Name == f.Rule
}

// groupHasRule reports whether any pattern row of group g came from a
// normal CFD with the given name.
func groupHasRule(g *fdGroup, rule string) bool {
	for _, mb := range g.masks {
		for _, rows := range mb.rows {
			for _, row := range rows {
				if row.n.Name == rule {
					return true
				}
			}
		}
	}
	return false
}

// VioCursor streams the maintained violations in the canonical (tuple
// id, rule rank, partner id) order — the exact sequence Detect returns —
// without materializing the full list. It walks the dirty-tuple set in
// sorted id order and gathers each tuple's violations from the per-group
// state on demand, so a limited read costs O(dirty·log dirty + rows
// consumed), not O(vio(D)).
//
// Pushdown: groups whose embedded FD cannot produce a matching violation
// (attribute filter, rule filter, zero group total) are skipped
// entirely; the tuple-id range prunes the dirty-id walk before any
// gather happens.
//
// The cursor reads live maintained state: it must run under the same
// serialization as other VioStore queries (no concurrent mutation).
// Snapshot consumers (increpair.ReadView) drain it while still holding
// the writer's lock — cheap because streaming sessions keep vio(D) at
// zero between batches.
type VioCursor struct {
	s      *VioStore
	f      VioFilter
	groups []int // relevant group indices after pushdown
	ids    []relation.TupleID
	i      int
	cur    []Violation
	pos    int
	buf    []Violation
}

// Cursor opens a violation cursor with the given pushdown filter. See
// VioCursor for the iteration contract.
func (s *VioStore) Cursor(f VioFilter) *VioCursor {
	c := &VioCursor{s: s, f: f}
	if s.total == 0 {
		return c
	}
	for gi, g := range s.d.groups {
		if s.state[gi].total == 0 {
			continue
		}
		if f.Attr >= 0 && !containsAttr(g.x, f.Attr) && g.a != f.Attr {
			continue
		}
		if f.Rule != "" && !groupHasRule(g, f.Rule) {
			continue
		}
		c.groups = append(c.groups, gi)
	}
	if len(c.groups) == 0 {
		return c
	}
	c.ids = make([]relation.TupleID, 0, len(s.vio))
	for id := range s.vio {
		if f.MinID != 0 && id < f.MinID {
			continue
		}
		if f.MaxID != 0 && id > f.MaxID {
			continue
		}
		c.ids = append(c.ids, id)
	}
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	return c
}

// Next returns the next violation in canonical order; ok is false when
// the cursor is exhausted.
func (c *VioCursor) Next() (v Violation, ok bool) {
	for {
		if c.pos < len(c.cur) {
			v = c.cur[c.pos]
			c.pos++
			return v, true
		}
		if c.i >= len(c.ids) {
			return Violation{}, false
		}
		id := c.ids[c.i]
		c.i++
		c.cur = c.gather(id)
		c.pos = 0
	}
}

// gather collects tuple id's matching violations across the relevant
// groups, sorted by (rule rank, partner id) — the within-tuple leg of
// the canonical order. The backing buffer is reused across tuples.
func (c *VioCursor) gather(id relation.TupleID) []Violation {
	buf := c.buf[:0]
	for _, gi := range c.groups {
		g := c.s.d.groups[gi]
		st := &c.s.state[gi]
		if g.hasVar {
			// Bucketed state: every violation of t lives in t's own
			// LHS-key bucket, alongside its bucket-mates' violations.
			t := c.s.rel.Tuple(id)
			if t == nil {
				continue
			}
			for _, v := range st.byBucket[t.KeyOnIDs(g.x)] {
				if v.T == id && c.f.matchVio(v) {
					buf = append(buf, v)
				}
			}
		} else {
			for _, v := range st.byTuple[id] {
				if c.f.matchVio(v) {
					buf = append(buf, v)
				}
			}
		}
	}
	rank := c.s.d.rank
	sort.Slice(buf, func(i, j int) bool {
		if ra, rb := rank[buf[i].N], rank[buf[j].N]; ra != rb {
			return ra < rb
		}
		return buf[i].With < buf[j].With
	})
	c.buf = buf
	return buf
}
