package cfd

// DepGraph is the dependency graph over a set of normal CFDs: there is an
// edge φ → ψ whenever the attribute φ's repairs primarily write — its RHS
// attribute A(φ) — is read by ψ's LHS. Repairing ψ before φ then risks
// rework: once φ corrects A(φ), ψ's earlier fix may rest on a stale LHS
// value (and worse, may have committed a conflicting constant to an
// equivalence class, forcing LHS edits or nulls later).
//
// The optimized BATCHREPAIR (§7.2) consults this graph to pick the next
// CFD to repair: violations of upstream rules are resolved before any
// downstream rule is touched. Cyclic CFD sets (like ϕ2/ϕ4 of the paper's
// running example, zip → CT and CT,STR → zip) land in one strongly
// connected component and compete on cost within it.
type DepGraph struct {
	sigma []*Normal
	adj   [][]int // adjacency by sigma position
	order []int   // sigma positions in repair-friendly order
	rank  []int   // rank[i] = position of sigma[i] in order
	comp  []int   // comp[i] = SCC stratum of sigma[i], 0 = sources
}

// NewDepGraph builds the dependency graph for sigma.
func NewDepGraph(sigma []*Normal) *DepGraph {
	g := &DepGraph{sigma: sigma, adj: make([][]int, len(sigma))}
	// readers[a] lists the rules with attribute a in their LHS.
	readers := make(map[int][]int)
	for j, n := range sigma {
		for _, a := range n.X {
			readers[a] = append(readers[a], j)
		}
	}
	for i, n := range sigma {
		seen := make(map[int]bool)
		for _, j := range readers[n.A] {
			if j != i && !seen[j] {
				seen[j] = true
				g.adj[i] = append(g.adj[i], j)
			}
		}
	}
	g.order, g.comp = g.sccOrder()
	g.rank = make([]int, len(sigma))
	for pos, i := range g.order {
		g.rank[i] = pos
	}
	return g
}

// Order returns sigma positions in the repair-friendly order: topological
// order of the SCC condensation, sources first.
func (g *DepGraph) Order() []int { return g.order }

// Rank returns the position of sigma[i] in Order; lower ranks should be
// repaired first.
func (g *DepGraph) Rank(i int) int { return g.rank[i] }

// Comp returns the stratum of sigma[i]: the index of its strongly
// connected component in topological order. Rules sharing a cycle share a
// stratum; violations of lower strata should be resolved first.
func (g *DepGraph) Comp(i int) int { return g.comp[i] }

// Succ returns the sigma positions whose LHS reads the attribute written
// by sigma[i].
func (g *DepGraph) Succ(i int) []int { return g.adj[i] }

// sccOrder runs Tarjan's algorithm; Tarjan emits SCCs in reverse
// topological order, so reversing the component list and flattening
// yields sources first. The second result maps each rule to its
// component's topological index.
func (g *DepGraph) sccOrder() (order, comp []int) {
	n := len(g.adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	var counter int

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	order = make([]int, 0, n)
	comp = make([]int, n)
	for k := len(comps) - 1; k >= 0; k-- {
		for _, v := range comps[k] {
			comp[v] = len(comps) - 1 - k
			order = append(order, v)
		}
	}
	return order, comp
}
