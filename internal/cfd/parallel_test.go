package cfd_test

import (
	"reflect"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/gen"
)

// TestDetectParallelDeterminism asserts that partition-parallel detection
// returns the exact violation slice of the sequential path — same
// violations, same canonical order — on generated noisy instances of
// varying size, noise rate and constant share.
func TestDetectParallelDeterminism(t *testing.T) {
	cases := []gen.Config{
		{Size: 300, NoiseRate: 0.05, ConstShare: 0.5, Seed: 1},
		{Size: 300, NoiseRate: 0.25, ConstShare: 0.2, Seed: 2},
		{Size: 1200, NoiseRate: 0.05, ConstShare: 0.5, Seed: 3, Weights: true},
		{Size: 1200, NoiseRate: 0.15, ConstShare: 0.8, Seed: 4},
	}
	for _, cfg := range cases {
		ds, err := gen.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seqDet := cfd.NewDetector(ds.Dirty, ds.Sigma)
		seqDet.SetWorkers(1)
		seq := seqDet.Detect()
		if len(seq) == 0 {
			t.Fatalf("config %+v: generated instance has no violations; test is vacuous", cfg)
		}
		for _, workers := range []int{2, 3, 8} {
			parDet := cfd.NewDetector(ds.Dirty, ds.Sigma)
			parDet.SetWorkers(workers)
			par := parDet.Detect()
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("config %+v workers=%d: parallel Detect differs from sequential (%d vs %d violations)",
					cfg, workers, len(par), len(seq))
			}
			// vio(t) aggregation must agree too.
			seqVio := seqDet.VioAll()
			parVio := parDet.VioAll()
			if !reflect.DeepEqual(seqVio, parVio) {
				t.Fatalf("config %+v workers=%d: parallel VioAll differs from sequential", cfg, workers)
			}
			if got, want := parDet.TotalViolations(), len(seq); got != want {
				t.Fatalf("config %+v workers=%d: TotalViolations = %d, want %d", cfg, workers, got, want)
			}
		}
	}
}

// TestDetectCanonicalOrder asserts the documented violation order: by
// tuple id, then rule position in sigma, then partner id.
func TestDetectCanonicalOrder(t *testing.T) {
	ds, err := gen.New(gen.Config{Size: 500, NoiseRate: 0.1, ConstShare: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rank := make(map[*cfd.Normal]int, len(ds.Sigma))
	for i, n := range ds.Sigma {
		rank[n] = i
	}
	d := cfd.NewDetector(ds.Dirty, ds.Sigma)
	vs := d.Detect()
	for i := 1; i < len(vs); i++ {
		a, b := vs[i-1], vs[i]
		switch {
		case a.T < b.T:
		case a.T == b.T && rank[a.N] < rank[b.N]:
		case a.T == b.T && rank[a.N] == rank[b.N] && a.With <= b.With:
		default:
			t.Fatalf("violations out of canonical order at %d: %+v then %+v", i, a, b)
		}
	}
	// Violations(limit) must be a prefix of Detect().
	lim := len(vs) / 2
	if lim > 0 {
		pre := cfd.NewDetector(ds.Dirty, ds.Sigma).Violations(lim)
		if !reflect.DeepEqual(pre, vs[:lim]) {
			t.Fatal("Violations(limit) is not a prefix of Detect()")
		}
	}
}
