package cfd

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cfdclean/internal/relation"
)

// drainCursor collects a cursor into a slice (nil when empty, matching
// reflect.DeepEqual against a filtered empty list).
func drainCursor(c *VioCursor) []Violation {
	var out []Violation
	for v, ok := c.Next(); ok; v, ok = c.Next() {
		out = append(out, v)
	}
	return out
}

// filterDetect is the oracle: the canonical Detect list filtered through
// VioFilter.Match, order preserved.
func filterDetect(s *VioStore, f VioFilter) []Violation {
	var out []Violation
	for _, v := range s.Detect() {
		if f.Match(v) {
			out = append(out, v)
		}
	}
	return out
}

func checkCursor(t *testing.T, tag string, s *VioStore, f VioFilter) {
	t.Helper()
	got := drainCursor(s.Cursor(f))
	want := filterDetect(s, f)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: cursor(%+v) diverged:\ngot:  %v\nwant: %v", tag, f, got, want)
	}
}

func TestVioCursorMatchesDetectOnPaperData(t *testing.T) {
	rel := paperData(t)
	sigma := paperSigma(rel.Schema())
	s := NewVioStore(rel, sigma)
	defer s.Close()

	checkCursor(t, "all", s, AnyVio())
	// Per-rule pushdown, every rule in sigma.
	for _, n := range sigma {
		f := AnyVio()
		f.Rule = n.Name
		checkCursor(t, "rule "+n.Name, s, f)
	}
	// Per-attribute pushdown, every attribute.
	for a := 0; a < rel.Schema().Arity(); a++ {
		checkCursor(t, fmt.Sprintf("attr %d", a), s, VioFilter{Attr: a})
	}
	// A range that cuts the dirty set in half.
	mid := relation.TupleID(rel.Size() / 2)
	f := AnyVio()
	f.MaxID = mid
	checkCursor(t, "min side", s, f)
	f = AnyVio()
	f.MinID = mid + 1
	checkCursor(t, "max side", s, f)
}

// TestVioCursorFuzzBitIdentity drives random mutation sequences and
// asserts after each step that the unfiltered cursor streams exactly the
// canonical Detect list, and that randomly chosen pushdown filters agree
// with Match-filtering the oracle.
func TestVioCursorFuzzBitIdentity(t *testing.T) {
	schema := orderSchema()
	sigma := paperSigma(schema)
	pools := [][]string{
		{"a23", "a12", "a89"},
		{"H. Porter", "J. Denver", "Snow White"},
		{"17.99", "7.94", "18.99"},
		{"212", "215", "610", "415"},
		{"8983490", "3456789", "3345677", "5674322"},
		{"Walnut", "Spruce", "Canel", "Broad"},
		{"PHI", "NYC", "CHI"},
		{"PA", "NY", "IL"},
		{"10012", "19014", "60614"},
	}
	randVal := func(rng *rand.Rand, a int) relation.Value {
		if rng.Intn(8) == 0 {
			return relation.NullValue
		}
		p := pools[a]
		return relation.S(p[rng.Intn(len(p))])
	}
	randFilter := func(rng *rand.Rand, rel *relation.Relation) VioFilter {
		f := AnyVio()
		if rng.Intn(3) == 0 {
			f.Rule = sigma[rng.Intn(len(sigma))].Name
		}
		if rng.Intn(3) == 0 {
			f.Attr = rng.Intn(schema.Arity())
		}
		if rng.Intn(3) == 0 {
			n := rel.NextID()
			f.MinID = relation.TupleID(rng.Int63n(int64(n)))
			f.MaxID = f.MinID + relation.TupleID(rng.Int63n(int64(n)))
		}
		return f
	}

	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rel := relation.New(schema)
			for i := 0; i < 12; i++ {
				vals := make([]relation.Value, schema.Arity())
				for a := range vals {
					vals[a] = randVal(rng, a)
				}
				rel.MustInsert(&relation.Tuple{Vals: vals})
			}
			s := NewVioStore(rel, sigma)
			defer s.Close()

			for step := 0; step < 100; step++ {
				tag := fmt.Sprintf("step %d", step)
				switch op := rng.Intn(10); {
				case op < 3:
					vals := make([]relation.Value, schema.Arity())
					for a := range vals {
						vals[a] = randVal(rng, a)
					}
					rel.MustInsert(&relation.Tuple{Vals: vals})
				case op < 5:
					ts := rel.Tuples()
					if len(ts) == 0 {
						continue
					}
					rel.Delete(ts[rng.Intn(len(ts))].ID)
				default:
					ts := rel.Tuples()
					if len(ts) == 0 {
						continue
					}
					tu := ts[rng.Intn(len(ts))]
					a := rng.Intn(schema.Arity())
					if _, err := rel.Set(tu.ID, a, randVal(rng, a)); err != nil {
						t.Fatal(err)
					}
				}
				checkCursor(t, tag, s, AnyVio())
				checkCursor(t, tag+" filtered", s, randFilter(rng, rel))
			}
		})
	}
}

// The zero VioFilter pins attribute 0 by construction; AnyVio is the
// documented way to match everything. Guard the distinction.
func TestVioFilterZeroValuePinsAttrZero(t *testing.T) {
	rel := paperData(t)
	sigma := paperSigma(rel.Schema())
	s := NewVioStore(rel, sigma)
	defer s.Close()
	zero := drainCursor(s.Cursor(VioFilter{}))
	for _, v := range zero {
		if !containsAttr(v.N.X, 0) && v.N.A != 0 {
			t.Fatalf("zero-value filter leaked violation of %s (attrs %v->%d)", v.N.Name, v.N.X, v.N.A)
		}
	}
}
