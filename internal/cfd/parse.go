package cfd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cfdclean/internal/relation"
)

// Parse reads a CFD specification file over schema s. The format:
//
//	# comments and blank lines are ignored
//	cfd phi1: [AC, PN] -> [STR, CT, ST]
//	(212, _ || _, NYC, NY)
//	(610, _ || _, PHI, PA)
//	cfd fd3: [id] -> [name, PR]
//	(_ || _, _)
//
// Each `cfd` header starts a constraint; the following parenthesized rows
// are its pattern tableau, with LHS cells before `||` and RHS cells after.
// `_` is the wildcard; constants containing commas, parens, `_` or spaces
// can be single-quoted ('New York'). A standard FD is a CFD whose tableau
// is the single all-wildcard row.
func Parse(s *relation.Schema, r io.Reader) ([]*CFD, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var out []*CFD
	var cur *header
	line := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur.rows) == 0 {
			return fmt.Errorf("cfd: line %d: constraint %q has no pattern rows", cur.line, cur.name)
		}
		φ, err := New(cur.name, s, cur.lhs, cur.rhs, cur.rows...)
		if err != nil {
			return fmt.Errorf("cfd: line %d: %w", cur.line, err)
		}
		out = append(out, φ)
		cur = nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "cfd "):
			if err := flush(); err != nil {
				return nil, err
			}
			h, err := parseHeader(text, line)
			if err != nil {
				return nil, err
			}
			cur = h
		case strings.HasPrefix(text, "("):
			if cur == nil {
				return nil, fmt.Errorf("cfd: line %d: pattern row before any cfd header", line)
			}
			row, err := parseRow(text, line, len(cur.lhs), len(cur.rhs))
			if err != nil {
				return nil, err
			}
			cur.rows = append(cur.rows, row)
		default:
			return nil, fmt.Errorf("cfd: line %d: expected 'cfd' header or '(...)' pattern row, got %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cfd: reading specification: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cfd: specification contains no constraints")
	}
	return out, nil
}

type header struct {
	name     string
	lhs, rhs []string
	rows     [][]Cell
	line     int
}

// parseHeader parses `cfd name: [A, B] -> [C, D]`. The name may itself
// contain colons (mined rules are named after their dependency), so the
// delimiter is the last colon before the bracketed attribute lists.
func parseHeader(text string, line int) (*header, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, "cfd "))
	colon := strings.Index(rest, ": [")
	if colon < 0 {
		colon = strings.Index(rest, ":")
	}
	if colon < 0 {
		return nil, fmt.Errorf("cfd: line %d: header missing ':' after name", line)
	}
	name := strings.TrimSpace(rest[:colon])
	if name == "" {
		return nil, fmt.Errorf("cfd: line %d: empty constraint name", line)
	}
	body := strings.TrimSpace(rest[colon+1:])
	parts := strings.SplitN(body, "->", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("cfd: line %d: header missing '->'", line)
	}
	lhs, err := parseAttrList(parts[0], line)
	if err != nil {
		return nil, err
	}
	rhs, err := parseAttrList(parts[1], line)
	if err != nil {
		return nil, err
	}
	return &header{name: name, lhs: lhs, rhs: rhs, line: line}, nil
}

func parseAttrList(s string, line int) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("cfd: line %d: attribute list %q must be bracketed", line, s)
	}
	inner := s[1 : len(s)-1]
	var out []string
	for _, f := range strings.Split(inner, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return nil, fmt.Errorf("cfd: line %d: empty attribute in %q", line, s)
		}
		out = append(out, f)
	}
	return out, nil
}

// parseRow parses `(c1, c2 || c3)` into cells.
func parseRow(text string, line, nl, nr int) ([]Cell, error) {
	if !strings.HasSuffix(text, ")") {
		return nil, fmt.Errorf("cfd: line %d: pattern row must end with ')'", line)
	}
	inner := text[1 : len(text)-1]
	sides := strings.SplitN(inner, "||", 2)
	if len(sides) != 2 {
		return nil, fmt.Errorf("cfd: line %d: pattern row missing '||' separator", line)
	}
	l, err := parseCells(sides[0], line)
	if err != nil {
		return nil, err
	}
	r, err := parseCells(sides[1], line)
	if err != nil {
		return nil, err
	}
	if len(l) != nl || len(r) != nr {
		return nil, fmt.Errorf("cfd: line %d: pattern row has %d||%d cells, want %d||%d", line, len(l), len(r), nl, nr)
	}
	return append(l, r...), nil
}

func parseCells(s string, line int) ([]Cell, error) {
	var out []Cell
	for _, f := range splitQuoted(s) {
		f = strings.TrimSpace(f)
		switch {
		case f == "_":
			out = append(out, W)
		case len(f) >= 2 && f[0] == '\'' && f[len(f)-1] == '\'':
			out = append(out, C(f[1:len(f)-1]))
		case f == "":
			return nil, fmt.Errorf("cfd: line %d: empty pattern cell", line)
		case strings.ContainsAny(f, "'"):
			return nil, fmt.Errorf("cfd: line %d: unbalanced quote in cell %q", line, f)
		default:
			out = append(out, C(f))
		}
	}
	return out, nil
}

// splitQuoted splits on commas not inside single quotes.
func splitQuoted(s string) []string {
	var out []string
	var b strings.Builder
	quoted := false
	for _, r := range s {
		switch {
		case r == '\'':
			quoted = !quoted
			b.WriteRune(r)
		case r == ',' && !quoted:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	out = append(out, b.String())
	return out
}

// Format renders CFDs in the syntax accepted by Parse.
func Format(w io.Writer, cfds []*CFD) error {
	bw := bufio.NewWriter(w)
	for _, φ := range cfds {
		l := make([]string, len(φ.LHS))
		for i, a := range φ.LHS {
			l[i] = φ.Schema.Attr(a)
		}
		r := make([]string, len(φ.RHS))
		for i, a := range φ.RHS {
			r[i] = φ.Schema.Attr(a)
		}
		fmt.Fprintf(bw, "cfd %s: [%s] -> [%s]\n", φ.Name, strings.Join(l, ", "), strings.Join(r, ", "))
		for _, row := range φ.Tableau {
			cells := make([]string, len(row))
			for i, c := range row {
				cells[i] = formatCell(c)
			}
			fmt.Fprintf(bw, "(%s || %s)\n",
				strings.Join(cells[:len(φ.LHS)], ", "),
				strings.Join(cells[len(φ.LHS):], ", "))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func formatCell(c Cell) string {
	if c.Wildcard {
		return "_"
	}
	if c.Const == "_" || strings.ContainsAny(c.Const, ",()'|") || strings.TrimSpace(c.Const) != c.Const || c.Const == "" {
		return "'" + c.Const + "'"
	}
	return c.Const
}
