package cfd

import (
	"fmt"

	"cfdclean/internal/relation"
)

// Satisfiable decides whether a non-empty database exists satisfying all
// CFDs in sigma (§2). The repair algorithms require a satisfiable Σ.
//
// The check exploits two facts. First, a single-tuple database never
// triggers case-2 (variable-RHS) violations, and every tuple of any
// satisfying database individually satisfies all constant-RHS rules, so Σ
// is satisfiable iff a single tuple satisfying the constant-RHS rules
// exists. Second, over infinite string domains a "fresh" value — distinct
// from every constant mentioned in Σ — always exists, so the only forced
// assignments are those reachable by unit propagation: a rule whose LHS
// cells are all wildcards or constants already forced must fire. If
// propagation derives two distinct constants for one attribute, Σ is
// unsatisfiable; otherwise unassigned attributes take fresh values and no
// further rule can fire. (The general intractability result in [6]
// concerns finite attribute domains; with string-valued attributes the
// propagation above is complete and runs in O(|Σ|²).)
//
// The returned witness maps attribute positions to the forced constants
// (attributes free to take any value are absent).
func Satisfiable(sigma []*Normal) (witness map[int]string, err error) {
	assigned := make(map[int]string)
	type rule struct{ n *Normal }
	var rules []rule
	for _, n := range sigma {
		if n.ConstantRHS() {
			rules = append(rules, rule{n})
		}
	}
	fired := make([]bool, len(rules))
	for {
		progress := false
		for i, r := range rules {
			if fired[i] {
				continue
			}
			n := r.n
			matched := true
			for j, a := range n.X {
				c := n.TpX[j]
				if c.Wildcard {
					continue // any (non-null) value matches
				}
				v, ok := assigned[a]
				if !ok || v != c.Const {
					matched = false
					break
				}
			}
			if !matched {
				continue
			}
			fired[i] = true
			progress = true
			if v, ok := assigned[n.A]; ok {
				if v != n.TpA.Const {
					return nil, fmt.Errorf("cfd: unsatisfiable: %s forces %s = %q but %q was already forced",
						n.Name, n.Schema.Attr(n.A), n.TpA.Const, v)
				}
				continue
			}
			assigned[n.A] = n.TpA.Const
		}
		if !progress {
			break
		}
	}
	return assigned, nil
}

// SatisfiableCFDs is Satisfiable over general-form CFDs.
func SatisfiableCFDs(cfds []*CFD) (map[int]string, error) {
	return Satisfiable(NormalizeAll(cfds))
}

// WitnessTuple materializes a single-tuple relation satisfying sigma,
// using the forced constants from Satisfiable and a fresh constant
// elsewhere. Returns an error if sigma is unsatisfiable. Used in tests
// and as a sanity check for user-supplied constraint files.
func WitnessTuple(s *relation.Schema, sigma []*Normal) (*relation.Tuple, error) {
	w, err := Satisfiable(sigma)
	if err != nil {
		return nil, err
	}
	// A value that no pattern constant equals: grow a marker until unique.
	fresh := "\x01fresh"
	for {
		collision := false
		for _, n := range sigma {
			for _, c := range n.TpX {
				if !c.Wildcard && c.Const == fresh {
					collision = true
				}
			}
			if !n.TpA.Wildcard && n.TpA.Const == fresh {
				collision = true
			}
		}
		if !collision {
			break
		}
		fresh += "'"
	}
	t := &relation.Tuple{ID: 1, Vals: make([]relation.Value, s.Arity())}
	for i := range t.Vals {
		if v, ok := w[i]; ok {
			t.Vals[i] = relation.S(v)
		} else {
			t.Vals[i] = relation.S(fresh)
		}
	}
	return t, nil
}
