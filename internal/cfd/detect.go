package cfd

import (
	"runtime"
	"sort"
	"sync"

	"cfdclean/internal/relation"
)

// Violation records that tuple T violates the normal CFD N; for
// variable-RHS (case 2) violations, With is the partner tuple (§3.1).
type Violation struct {
	T    relation.TupleID
	N    *Normal
	With relation.TupleID // zero for single-tuple (case 1) violations
}

// fdGroup collects the normal CFDs sharing an embedded FD X → A. Grouping
// lets detection make one pass per embedded FD instead of one per pattern
// tuple — essential when tableaus carry hundreds of pattern rows (§7.1).
type fdGroup struct {
	x []int // sorted LHS attribute positions
	a int   // RHS attribute position

	// masks groups pattern rows by which positions of x carry constants;
	// each mask bucket maps the interned constants at those positions to
	// rows via a fixed-width integer key.
	masks []*maskBucket

	hasVar bool // any variable-RHS row in this group

	// xIndex is the live index of D on x, built lazily via Detector.index
	// (ixOnce makes the build safe under concurrent read-only probes).
	ixOnce sync.Once
	xIndex *relation.HashIndex
}

type maskBucket struct {
	pos  []int // positions within x that are constants for these rows
	rows map[relation.Key][]*groupRow
}

// groupRow is a normal CFD with its LHS cells permuted to the group's
// sorted attribute order.
type groupRow struct {
	n    *Normal
	tpx  []Cell // cells in group x-order
	tpa  Cell
	cons bool // constant RHS
	// tpaID is the interned id of the constant RHS (cons rows only).
	tpaID relation.ValueID
}

// Detector performs CFD violation detection over a relation, maintaining
// per-embedded-FD hash indices so that both whole-database detection and
// single-tuple checks are fast. It implements the SQL-based detection
// technique of [6] over the interned in-memory substrate: every index
// probe and pattern match compares fixed-width integer keys, never
// strings. Whole-database scans (Detect, VioAll, TotalViolations) are
// partition-parallel: index buckets — one bucket per distinct LHS key —
// are sharded by key hash across a worker pool, and per-shard results are
// merged deterministically.
type Detector struct {
	rel    *relation.Relation
	sigma  []*Normal
	groups []*fdGroup

	// rank orders normal CFDs by their position in sigma; it canonicalizes
	// the violation sort so sequential and parallel detection return
	// bit-identical slices.
	rank map[*Normal]int

	// workers is the detection parallelism; <= 1 means sequential.
	workers int
}

// NewDetector builds a detector for sigma over rel, indexing the current
// contents of rel. Pattern constants are interned into rel's dictionary
// here, before any parallel scan starts; scans themselves never intern.
func NewDetector(rel *relation.Relation, sigma []*Normal) *Detector {
	d := &Detector{
		rel:     rel,
		sigma:   sigma,
		rank:    make(map[*Normal]int, len(sigma)),
		workers: runtime.GOMAXPROCS(0),
	}
	dict := rel.Dict()
	byKey := make(map[string]*fdGroup)
	for i, n := range sigma {
		d.rank[n] = i
		// Canonical group key: sorted X positions plus A.
		perm := sortedPerm(n.X)
		x := make([]int, len(n.X))
		cells := make([]Cell, len(n.X))
		for j, p := range perm {
			x[j] = n.X[p]
			cells[j] = n.TpX[p]
		}
		key := groupKey(x, n.A)
		g, ok := byKey[key]
		if !ok {
			g = &fdGroup{x: x, a: n.A}
			byKey[key] = g
			d.groups = append(d.groups, g)
		}
		row := &groupRow{n: n, tpx: cells, tpa: n.TpA, cons: n.ConstantRHS()}
		if row.cons {
			row.tpaID = dict.InternStr(n.TpA.Const)
		} else {
			g.hasVar = true
		}
		g.addRow(row, dict)
	}
	return d
}

// index returns g's live LHS index, building it on first use. Groups with
// only constant-RHS rows never need bucket partitioning for whole-database
// scans (each tuple is checked against the pattern constants alone), so
// one-shot detection skips building their indices entirely. Laziness is
// sound under mutation too: an unbuilt index needs no maintenance — the
// eventual build reads the relation's current state.
func (d *Detector) index(g *fdGroup) *relation.HashIndex {
	g.ixOnce.Do(func() {
		g.xIndex = relation.NewHashIndex(d.rel, g.x)
	})
	return g.xIndex
}

// SetWorkers sets the parallelism of whole-database scans: n == 1 forces
// the sequential path, n > 1 sets the worker count, and n <= 0 resets to
// runtime.GOMAXPROCS(0). The violation output is identical at every
// setting.
func (d *Detector) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	d.workers = n
}

func sortedPerm(xs []int) []int {
	perm := make([]int, len(xs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return xs[perm[i]] < xs[perm[j]] })
	return perm
}

func groupKey(x []int, a int) string {
	b := make([]byte, 0, 4*(len(x)+1))
	for _, p := range x {
		b = appendInt(b, p)
	}
	b = append(b, '>')
	b = appendInt(b, a)
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), ',')
}

func (g *fdGroup) addRow(r *groupRow, dict *relation.Dict) {
	var pos []int
	for i, c := range r.tpx {
		if !c.Wildcard {
			pos = append(pos, i)
		}
	}
	key := maskKeyCells(r.tpx, pos, dict)
	for _, mb := range g.masks {
		if equalInts(mb.pos, pos) {
			mb.rows[key] = append(mb.rows[key], r)
			return
		}
	}
	mb := &maskBucket{pos: pos, rows: make(map[relation.Key][]*groupRow)}
	mb.rows[key] = append(mb.rows[key], r)
	g.masks = append(g.masks, mb)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maskKeyCells interns the constant cells at pos and packs their ids.
func maskKeyCells(cells []Cell, pos []int, dict *relation.Dict) relation.Key {
	var buf [8]relation.ValueID
	ids := buf[:0]
	for _, p := range pos {
		ids = append(ids, dict.InternStr(cells[p].Const))
	}
	return relation.KeyOfIDs(ids)
}

// matchingRows returns the pattern rows of g whose tp[X] is matched by the
// given X ids (already known to be null-free). An InvalidID component —
// a probe value absent from the dictionary — can match constants of no
// row, but still matches all-wildcard positions.
func (g *fdGroup) matchingRows(xids []relation.ValueID) []*groupRow {
	var out []*groupRow
	for _, mb := range g.masks {
		var buf [8]relation.ValueID
		sel := buf[:0]
		ok := true
		for _, p := range mb.pos {
			id := xids[p]
			if id == relation.InvalidID {
				ok = false
				break
			}
			sel = append(sel, id)
		}
		if !ok {
			continue
		}
		out = append(out, mb.rows[relation.KeyOfIDs(sel)]...)
	}
	return out
}

// xids projects t onto g.x as interned ids: directly for relation-owned
// tuples, through a read-only dictionary lookup for scratch probes (novel
// probe constants become InvalidID — they match only wildcards and agree
// with no stored tuple).
func (d *Detector) xids(g *fdGroup, t *relation.Tuple, buf []relation.ValueID) []relation.ValueID {
	if t.Interned() {
		return t.ProjectIDs(buf, g.x)
	}
	dict := d.rel.Dict()
	for _, a := range g.x {
		buf = append(buf, dict.LookupValue(t.Vals[a]))
	}
	return buf
}

// Relation returns the relation the detector is attached to.
func (d *Detector) Relation() *relation.Relation { return d.rel }

// Sigma returns the normal CFDs under detection.
func (d *Detector) Sigma() []*Normal { return d.sigma }

// UpdateTuple re-indexes t after its attribute values changed. Must be
// called after every relation.Set on a tuple, or indices go stale.
func (d *Detector) UpdateTuple(t *relation.Tuple) {
	for _, g := range d.groups {
		if g.xIndex != nil {
			g.xIndex.Update(t)
		}
	}
}

// AddTuple indexes a newly inserted tuple.
func (d *Detector) AddTuple(t *relation.Tuple) {
	for _, g := range d.groups {
		if g.xIndex != nil {
			g.xIndex.Add(t)
		}
	}
}

// RemoveTuple un-indexes a deleted tuple.
func (d *Detector) RemoveTuple(id relation.TupleID) {
	for _, g := range d.groups {
		if g.xIndex != nil {
			g.xIndex.Remove(id)
		}
	}
}

// VioTuple returns vio(t): the number of violations incurred by t (§3.1).
// Case 1 adds one per violated constant-RHS CFD; case 2 adds one per
// (CFD, partner-tuple) pair.
func (d *Detector) VioTuple(t *relation.Tuple) int {
	total := 0
	for _, g := range d.groups {
		total += d.vioInGroup(g, t)
	}
	return total
}

func (d *Detector) vioInGroup(g *fdGroup, t *relation.Tuple) int {
	if t.HasNullOn(g.x) {
		return 0 // null never matches a pattern (§3.1 remark 2)
	}
	var buf [8]relation.ValueID
	xids := d.xids(g, t, buf[:0])
	rows := g.matchingRows(xids)
	if len(rows) == 0 {
		return 0
	}
	total := 0
	av := t.Vals[g.a]
	// partners is the number of bucket tuples disagreeing with t on A.
	// It is the same for every variable-RHS row of the group, so the
	// bucket is scanned once per call, on interned ids: a probe value
	// absent from the dictionary (avID == InvalidID) can equal no stored
	// id, so every non-null partner disagrees — exactly what the string
	// comparison would conclude.
	partners := -1
	for _, r := range rows {
		if r.cons {
			if RHSViolates(av, r.tpa) {
				total++
			}
			continue
		}
		// Variable RHS: count partners with a different non-null A.
		if av.Null {
			continue // null A is Eq to everything: already resolved (§4.1 case 2.3)
		}
		if partners < 0 {
			partners = 0
			avID := t.IDAt(g.a)
			if !t.Interned() {
				avID = d.rel.Dict().LookupValue(av)
			}
			for _, id := range d.index(g).LookupIDs(xids) {
				if id == t.ID {
					continue
				}
				vid := d.rel.Tuple(id).IDAt(g.a)
				if vid != relation.NullID && vid != avID {
					partners++
				}
			}
		}
		total += partners
	}
	return total
}

// VioAll returns vio(t) for every tuple with at least one violation.
// It makes one partition-parallel pass per embedded-FD group using the
// live indices.
func (d *Detector) VioAll() map[relation.TupleID]int {
	out := make(map[relation.TupleID]int)
	d.scanAll(func(t *relation.Tuple, n *Normal, with relation.TupleID) {
		out[t.ID]++
	}, func(part []Violation) {
		for _, v := range part {
			out[v.T]++
		}
	})
	return out
}

// Detect returns every violation of sigma in the relation, sorted by
// (tuple id, rule rank, partner id). Detection shards the per-group index
// buckets — one bucket per distinct LHS key — across the configured
// worker pool; the canonical sort makes the output bit-identical to the
// sequential path.
func (d *Detector) Detect() []Violation {
	var out []Violation
	d.scanAll(func(t *relation.Tuple, n *Normal, with relation.TupleID) {
		out = append(out, Violation{T: t.ID, N: n, With: with})
	}, func(part []Violation) {
		out = append(out, part...)
	})
	d.sortViolations(out)
	return out
}

// Violations returns up to limit violations (limit <= 0 means all), in
// the canonical (tuple id, rule rank, partner id) order. The canonical
// order requires full detection even for small limits; use Satisfied for
// a cheap consistency probe.
func (d *Detector) Violations(limit int) []Violation {
	out := d.Detect()
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (d *Detector) sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if ra, rb := d.rank[a.N], d.rank[b.N]; ra != rb {
			return ra < rb
		}
		return a.With < b.With
	})
}

// scanScratch holds per-scan reusable buffers: one per worker, so bucket
// scans allocate nothing on the steady path.
type scanScratch struct {
	ts     []*relation.Tuple
	counts map[relation.ValueID]int
}

func newScanScratch() *scanScratch {
	return &scanScratch{counts: make(map[relation.ValueID]int)}
}

// scanBucket visits every violation within one LHS-key bucket of group g.
// All bucket tuples are relation-owned, so every comparison runs on
// interned ids. The RHS-value histogram and the partner labels are shared
// by every variable-RHS row of the group, so they are computed once per
// bucket, in O(bucket).
func (d *Detector) scanBucket(g *fdGroup, ids []relation.TupleID, sc *scanScratch, visit func(t *relation.Tuple, n *Normal, with relation.TupleID)) {
	if len(ids) == 0 {
		return
	}
	rep := d.rel.Tuple(ids[0])
	if rep.HasNullOn(g.x) {
		return
	}
	var buf [8]relation.ValueID
	xids := rep.ProjectIDs(buf[:0], g.x)
	rows := g.matchingRows(xids)
	if len(rows) == 0 {
		return
	}
	a := g.a
	sc.ts = sc.ts[:0]
	for _, id := range ids {
		sc.ts = append(sc.ts, d.rel.Tuple(id))
	}
	// Lazily prepared state for variable-RHS rows.
	prepared := false
	nonNull := 0
	// Partner labels: s1 is the smallest tuple id with a non-null A value
	// v1; s2 the smallest id whose A value differs from v1. Every tuple's
	// canonical partner is s1 (if they disagree with v1) or s2 (if they
	// carry v1), independent of bucket order.
	var s1, s2 relation.TupleID
	var v1 relation.ValueID
	for _, r := range rows {
		if r.cons {
			for _, t := range sc.ts {
				vid := t.IDAt(a)
				if vid != relation.NullID && vid != r.tpaID {
					visit(t, r.n, 0)
				}
			}
			continue
		}
		if !prepared {
			prepared = true
			clear(sc.counts)
			nonNull = 0
			s1, s2, v1 = 0, 0, relation.NullID
			for _, t := range sc.ts {
				vid := t.IDAt(a)
				if vid == relation.NullID {
					continue
				}
				sc.counts[vid]++
				nonNull++
				if s1 == 0 || t.ID < s1 {
					s1, v1 = t.ID, vid
				}
			}
			for _, t := range sc.ts {
				vid := t.IDAt(a)
				if vid == relation.NullID || vid == v1 {
					continue
				}
				if s2 == 0 || t.ID < s2 {
					s2 = t.ID
				}
			}
		}
		if len(sc.counts) < 2 {
			continue
		}
		for _, t := range sc.ts {
			vid := t.IDAt(a)
			if vid == relation.NullID {
				continue
			}
			diff := nonNull - sc.counts[vid]
			if diff == 0 {
				continue
			}
			partner := s1
			if vid == v1 {
				partner = s2
			}
			for k := 0; k < diff; k++ {
				visit(t, r.n, partner)
			}
		}
	}
}

// scanConstTuples visits the violations of a constant-RHS-only group over
// a slice of tuples directly — no bucket partitioning (and hence no LHS
// index) is needed, since constant-RHS violations are per-tuple (§3.1
// case 1).
func (d *Detector) scanConstTuples(g *fdGroup, tuples []*relation.Tuple, visit func(t *relation.Tuple, n *Normal, with relation.TupleID)) {
	a := g.a
	for _, t := range tuples {
		if t.HasNullOn(g.x) {
			continue
		}
		var buf [8]relation.ValueID
		rows := g.matchingRows(t.ProjectIDs(buf[:0], g.x))
		if len(rows) == 0 {
			continue
		}
		vid := t.IDAt(a)
		if vid == relation.NullID {
			continue
		}
		for _, r := range rows {
			if vid != r.tpaID {
				visit(t, r.n, 0)
			}
		}
	}
}

// groupScan visits every violation in group g exactly once per the
// paper's counting, sequentially.
func (d *Detector) groupScan(g *fdGroup, visit func(t *relation.Tuple, n *Normal, with relation.TupleID)) {
	if !g.hasVar {
		d.scanConstTuples(g, d.rel.Tuples(), visit)
		return
	}
	sc := newScanScratch()
	d.index(g).Buckets(func(_ relation.Key, ids []relation.TupleID) {
		d.scanBucket(g, ids, sc, visit)
	})
}

// shardedWork is one unit of parallel scan work: either one LHS-key
// bucket of a variable-RHS group, or a chunk of tuples of a constant-only
// group.
type shardedWork struct {
	g      *fdGroup
	ids    []relation.TupleID // bucket work (variable-RHS groups)
	tuples []*relation.Tuple  // chunk work (constant-only groups)
}

// scanAll drives a whole-database scan. The sequential path calls visit
// for every violation; the parallel path shards variable-RHS groups'
// index buckets by LHS-key hash and constant-only groups' tuples by
// chunk across workers, each worker collects its shard's violations, and
// merge consumes one per-shard list at a time on the caller's goroutine.
// The partition is a partition of the violation multiset, so every merge
// order yields the same final set; callers that need a canonical sequence
// sort afterwards.
func (d *Detector) scanAll(visit func(t *relation.Tuple, n *Normal, with relation.TupleID), merge func(part []Violation)) {
	nw := d.workers
	if nw > 1 && d.rel.Size() < 4*nw {
		nw = 1
	}
	if nw <= 1 {
		for _, g := range d.groups {
			d.groupScan(g, visit)
		}
		return
	}
	shards := make([][]shardedWork, nw)
	tuples := d.rel.Tuples()
	for _, g := range d.groups {
		if !g.hasVar {
			chunk := (len(tuples) + nw - 1) / nw
			for w := 0; w < nw && w*chunk < len(tuples); w++ {
				end := (w + 1) * chunk
				if end > len(tuples) {
					end = len(tuples)
				}
				shards[w] = append(shards[w], shardedWork{g: g, tuples: tuples[w*chunk : end]})
			}
			continue
		}
		d.index(g).Buckets(func(key relation.Key, ids []relation.TupleID) {
			w := int(key.Hash() % uint64(nw))
			shards[w] = append(shards[w], shardedWork{g: g, ids: ids})
		})
	}
	parts := make([][]Violation, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []Violation
			sc := newScanScratch()
			emit := func(t *relation.Tuple, n *Normal, with relation.TupleID) {
				local = append(local, Violation{T: t.ID, N: n, With: with})
			}
			for _, sw := range shards[w] {
				if sw.tuples != nil {
					d.scanConstTuples(sw.g, sw.tuples, emit)
				} else {
					d.scanBucket(sw.g, sw.ids, sc, emit)
				}
			}
			parts[w] = local
		}(w)
	}
	wg.Wait()
	for _, part := range parts {
		merge(part)
	}
}

// Partners returns the ids of tuples with which t violates the variable-RHS
// normal CFD n (empty for constant-RHS CFDs or when t does not match).
func (d *Detector) Partners(t *relation.Tuple, n *Normal) []relation.TupleID {
	if n.ConstantRHS() || !n.MatchesLHS(t) || t.Vals[n.A].Null {
		return nil
	}
	g := d.groupFor(n)
	if g == nil {
		return nil
	}
	var buf [8]relation.ValueID
	xids := d.xids(g, t, buf[:0])
	var out []relation.TupleID
	for _, id := range d.index(g).LookupIDs(xids) {
		if id == t.ID {
			continue
		}
		v := d.rel.Tuple(id).Vals[n.A]
		if !v.Null && v.Str != t.Vals[n.A].Str {
			out = append(out, id)
		}
	}
	return out
}

func (d *Detector) groupFor(n *Normal) *fdGroup {
	perm := sortedPerm(n.X)
	x := make([]int, len(n.X))
	for i, p := range perm {
		x[i] = n.X[p]
	}
	key := groupKey(x, n.A)
	for _, g := range d.groups {
		if groupKey(g.x, g.a) == key {
			return g
		}
	}
	return nil
}

// Satisfied reports whether the relation currently satisfies all CFDs.
func (d *Detector) Satisfied() bool {
	for _, g := range d.groups {
		sat := true
		d.groupScan(g, func(*relation.Tuple, *Normal, relation.TupleID) { sat = false })
		if !sat {
			return false
		}
	}
	return true
}

// TotalViolations returns the sum of vio(t) over all tuples — the paper's
// vio(C) for C = D (§3.1).
func (d *Detector) TotalViolations() int {
	total := 0
	d.scanAll(func(*relation.Tuple, *Normal, relation.TupleID) {
		total++
	}, func(part []Violation) {
		total += len(part)
	})
	return total
}

// Satisfies reports whether rel |= sigma, without building indices
// incrementally; convenience for tests and one-shot checks.
func Satisfies(rel *relation.Relation, sigma []*Normal) bool {
	return NewDetector(rel, sigma).Satisfied()
}

// Group is a public handle on one embedded-FD group of the detector:
// all normal CFDs sharing LHS attributes X and RHS attribute A, together
// with the detector's live index on X. The repair algorithms track dirty
// tuples per group instead of per pattern row, which keeps bookkeeping
// proportional to the number of embedded FDs rather than the (often
// thousands of) pattern tuples (§7.1).
type Group struct {
	d *Detector
	g *fdGroup
}

// Groups returns the embedded-FD groups of the detector, in construction
// order.
func (d *Detector) Groups() []Group {
	out := make([]Group, len(d.groups))
	for i, g := range d.groups {
		out[i] = Group{d: d, g: g}
	}
	return out
}

// X returns the group's LHS attribute positions (sorted).
func (g Group) X() []int { return g.g.x }

// A returns the group's RHS attribute position.
func (g Group) A() int { return g.g.a }

// Rep returns a representative normal CFD of the group: same X and A as
// every rule in the group, with an all-wildcard pattern. Useful for
// building attribute-level structures (e.g. dependency graphs) at group
// granularity.
func (g Group) Rep() *Normal {
	cells := make([]Cell, len(g.g.x))
	for i := range cells {
		cells[i] = W
	}
	var schema *relation.Schema
	for _, mb := range g.g.masks {
		for _, rows := range mb.rows {
			if len(rows) > 0 {
				schema = rows[0].n.Schema
				break
			}
		}
		if schema != nil {
			break
		}
	}
	return &Normal{
		Name:   "group",
		Schema: schema,
		X:      append([]int(nil), g.g.x...),
		A:      g.g.a,
		TpX:    cells,
		TpA:    W,
	}
}

// MatchingRules returns the normal CFDs of the group whose LHS pattern is
// matched by t (nil if t has a null among X). Cheap: one integer-key hash
// lookup per constant mask in the group.
func (g Group) MatchingRules(t *relation.Tuple) []*Normal {
	if t.HasNullOn(g.g.x) {
		return nil
	}
	var buf [8]relation.ValueID
	rows := g.g.matchingRows(g.d.xids(g.g, t, buf[:0]))
	if len(rows) == 0 {
		return nil
	}
	out := make([]*Normal, len(rows))
	for i, r := range rows {
		out[i] = r.n
	}
	return out
}

// Bucket returns the ids of tuples agreeing with t on the group's X
// (via the live index); includes t itself.
func (g Group) Bucket(t *relation.Tuple) []relation.TupleID {
	return g.d.index(g.g).LookupTuple(t)
}

// VioCount returns vio(t) restricted to this group — the group's
// contribution to the paper's vio(t) (§3.1). It is the allocation-free
// fast path behind TUPLERESOLVE's candidate probing: one pattern match,
// one index probe, and one interned-id bucket scan shared by every
// variable-RHS rule of the group, with no rule slice materialized.
func (g Group) VioCount(t *relation.Tuple) int {
	return g.d.vioInGroup(g.g, t)
}
