package cfd

import (
	"sort"

	"cfdclean/internal/relation"
)

// Violation records that tuple T violates the normal CFD N; for
// variable-RHS (case 2) violations, With is the partner tuple (§3.1).
type Violation struct {
	T    relation.TupleID
	N    *Normal
	With relation.TupleID // zero for single-tuple (case 1) violations
}

// fdGroup collects the normal CFDs sharing an embedded FD X → A. Grouping
// lets detection make one pass per embedded FD instead of one per pattern
// tuple — essential when tableaus carry hundreds of pattern rows (§7.1).
type fdGroup struct {
	x []int // sorted LHS attribute positions
	a int   // RHS attribute position

	// masks groups pattern rows by which positions of x carry constants;
	// each mask bucket maps the constants at those positions to rows.
	masks []*maskBucket

	hasVar bool // any variable-RHS row in this group

	xIndex *relation.HashIndex // live index of D on x
}

type maskBucket struct {
	pos  []int // positions within x that are constants for these rows
	rows map[string][]*groupRow
}

// groupRow is a normal CFD with its LHS cells permuted to the group's
// sorted attribute order.
type groupRow struct {
	n    *Normal
	tpx  []Cell // cells in group x-order
	tpa  Cell
	cons bool // constant RHS
}

// Detector performs CFD violation detection over a relation, maintaining
// per-embedded-FD hash indices so that both whole-database detection and
// single-tuple checks are fast. It implements the SQL-based detection
// technique of [6] over the in-memory substrate.
type Detector struct {
	rel    *relation.Relation
	sigma  []*Normal
	groups []*fdGroup
}

// NewDetector builds a detector for sigma over rel, indexing the current
// contents of rel.
func NewDetector(rel *relation.Relation, sigma []*Normal) *Detector {
	d := &Detector{rel: rel, sigma: sigma}
	byKey := make(map[string]*fdGroup)
	for _, n := range sigma {
		// Canonical group key: sorted X positions plus A.
		perm := sortedPerm(n.X)
		x := make([]int, len(n.X))
		cells := make([]Cell, len(n.X))
		for i, p := range perm {
			x[i] = n.X[p]
			cells[i] = n.TpX[p]
		}
		key := groupKey(x, n.A)
		g, ok := byKey[key]
		if !ok {
			g = &fdGroup{x: x, a: n.A}
			byKey[key] = g
			d.groups = append(d.groups, g)
		}
		row := &groupRow{n: n, tpx: cells, tpa: n.TpA, cons: n.ConstantRHS()}
		if !row.cons {
			g.hasVar = true
		}
		g.addRow(row)
	}
	for _, g := range d.groups {
		g.xIndex = relation.NewHashIndex(rel, g.x)
	}
	return d
}

func sortedPerm(xs []int) []int {
	perm := make([]int, len(xs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return xs[perm[i]] < xs[perm[j]] })
	return perm
}

func groupKey(x []int, a int) string {
	b := make([]byte, 0, 4*(len(x)+1))
	for _, p := range x {
		b = appendInt(b, p)
	}
	b = append(b, '>')
	b = appendInt(b, a)
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), ',')
}

func (g *fdGroup) addRow(r *groupRow) {
	var pos []int
	for i, c := range r.tpx {
		if !c.Wildcard {
			pos = append(pos, i)
		}
	}
	for _, mb := range g.masks {
		if equalInts(mb.pos, pos) {
			mb.rows[maskKeyCells(r.tpx, pos)] = append(mb.rows[maskKeyCells(r.tpx, pos)], r)
			return
		}
	}
	mb := &maskBucket{pos: pos, rows: make(map[string][]*groupRow)}
	mb.rows[maskKeyCells(r.tpx, pos)] = append(mb.rows[maskKeyCells(r.tpx, pos)], r)
	g.masks = append(g.masks, mb)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maskKeyCells(cells []Cell, pos []int) string {
	vals := make([]relation.Value, len(pos))
	for i, p := range pos {
		vals[i] = relation.S(cells[p].Const)
	}
	return relation.KeyOf(vals...)
}

func maskKeyVals(vals []relation.Value, pos []int) string {
	sel := make([]relation.Value, len(pos))
	for i, p := range pos {
		sel[i] = vals[p]
	}
	return relation.KeyOf(sel...)
}

// matchingRows returns the pattern rows of g whose tp[X] is matched by the
// given X values (already known to be null-free).
func (g *fdGroup) matchingRows(xvals []relation.Value) []*groupRow {
	var out []*groupRow
	for _, mb := range g.masks {
		out = append(out, mb.rows[maskKeyVals(xvals, mb.pos)]...)
	}
	return out
}

// Relation returns the relation the detector is attached to.
func (d *Detector) Relation() *relation.Relation { return d.rel }

// Sigma returns the normal CFDs under detection.
func (d *Detector) Sigma() []*Normal { return d.sigma }

// UpdateTuple re-indexes t after its attribute values changed. Must be
// called after every relation.Set on a tuple, or indices go stale.
func (d *Detector) UpdateTuple(t *relation.Tuple) {
	for _, g := range d.groups {
		g.xIndex.Update(t)
	}
}

// AddTuple indexes a newly inserted tuple.
func (d *Detector) AddTuple(t *relation.Tuple) {
	for _, g := range d.groups {
		g.xIndex.Add(t)
	}
}

// RemoveTuple un-indexes a deleted tuple.
func (d *Detector) RemoveTuple(id relation.TupleID) {
	for _, g := range d.groups {
		g.xIndex.Remove(id)
	}
}

// VioTuple returns vio(t): the number of violations incurred by t (§3.1).
// Case 1 adds one per violated constant-RHS CFD; case 2 adds one per
// (CFD, partner-tuple) pair.
func (d *Detector) VioTuple(t *relation.Tuple) int {
	total := 0
	for _, g := range d.groups {
		total += d.vioInGroup(g, t)
	}
	return total
}

func (d *Detector) vioInGroup(g *fdGroup, t *relation.Tuple) int {
	if t.HasNullOn(g.x) {
		return 0 // null never matches a pattern (§3.1 remark 2)
	}
	xvals := t.Project(g.x)
	rows := g.matchingRows(xvals)
	if len(rows) == 0 {
		return 0
	}
	total := 0
	av := t.Vals[g.a]
	var bucket []relation.TupleID
	for _, r := range rows {
		if r.cons {
			if RHSViolates(av, r.tpa) {
				total++
			}
			continue
		}
		// Variable RHS: count partners with a different non-null A.
		if av.Null {
			continue // null A is Eq to everything: already resolved (§4.1 case 2.3)
		}
		if bucket == nil {
			bucket = g.xIndex.Lookup(xvals)
		}
		for _, id := range bucket {
			if id == t.ID {
				continue
			}
			o := d.rel.Tuple(id).Vals[g.a]
			if !o.Null && o.Str != av.Str {
				total++
			}
		}
	}
	return total
}

// VioAll returns vio(t) for every tuple with at least one violation.
// It makes one pass per embedded-FD group using the live indices.
func (d *Detector) VioAll() map[relation.TupleID]int {
	out := make(map[relation.TupleID]int)
	for _, g := range d.groups {
		d.groupScan(g, func(t *relation.Tuple, n *Normal, with relation.TupleID) {
			out[t.ID]++
		})
	}
	return out
}

// Violations returns up to limit violations (limit <= 0 means all).
// Case-2 violations are reported once per ordered (t, t') pair, matching
// the paper's per-tuple counting.
func (d *Detector) Violations(limit int) []Violation {
	var out []Violation
	for _, g := range d.groups {
		if limit > 0 && len(out) >= limit {
			break
		}
		d.groupScan(g, func(t *relation.Tuple, n *Normal, with relation.TupleID) {
			if limit <= 0 || len(out) < limit {
				out = append(out, Violation{T: t.ID, N: n, With: with})
			}
		})
	}
	return out
}

// groupScan visits every violation in group g exactly once per the
// paper's counting and invokes visit for each.
func (d *Detector) groupScan(g *fdGroup, visit func(t *relation.Tuple, n *Normal, with relation.TupleID)) {
	g.xIndex.Buckets(func(key string, ids []relation.TupleID) {
		if len(ids) == 0 {
			return
		}
		rep := d.rel.Tuple(ids[0])
		if rep.HasNullOn(g.x) {
			return
		}
		xvals := rep.Project(g.x)
		rows := g.matchingRows(xvals)
		if len(rows) == 0 {
			return
		}
		for _, r := range rows {
			if r.cons {
				for _, id := range ids {
					t := d.rel.Tuple(id)
					if RHSViolates(t.Vals[g.a], r.tpa) {
						visit(t, r.n, 0)
					}
				}
				continue
			}
			// Variable RHS: per tuple, one violation per differing partner.
			// Count occurrences of each non-null A value in the bucket.
			counts := make(map[string]int)
			nonNull := 0
			for _, id := range ids {
				v := d.rel.Tuple(id).Vals[g.a]
				if !v.Null {
					counts[v.Str]++
					nonNull++
				}
			}
			if len(counts) < 2 {
				continue
			}
			for _, id := range ids {
				t := d.rel.Tuple(id)
				v := t.Vals[g.a]
				if v.Null {
					continue
				}
				diff := nonNull - counts[v.Str]
				for k := 0; k < diff; k++ {
					visit(t, r.n, partnerOf(d.rel, ids, t, g.a))
				}
			}
		}
	})
}

// partnerOf returns some tuple id in ids whose A value differs from t's;
// used to label case-2 violations with a concrete partner.
func partnerOf(rel *relation.Relation, ids []relation.TupleID, t *relation.Tuple, a int) relation.TupleID {
	for _, id := range ids {
		if id == t.ID {
			continue
		}
		v := rel.Tuple(id).Vals[a]
		if !v.Null && v.Str != t.Vals[a].Str {
			return id
		}
	}
	return 0
}

// Partners returns the ids of tuples with which t violates the variable-RHS
// normal CFD n (empty for constant-RHS CFDs or when t does not match).
func (d *Detector) Partners(t *relation.Tuple, n *Normal) []relation.TupleID {
	if n.ConstantRHS() || !n.MatchesLHS(t) || t.Vals[n.A].Null {
		return nil
	}
	g := d.groupFor(n)
	if g == nil {
		return nil
	}
	xvals := t.Project(g.x)
	var out []relation.TupleID
	for _, id := range g.xIndex.Lookup(xvals) {
		if id == t.ID {
			continue
		}
		v := d.rel.Tuple(id).Vals[n.A]
		if !v.Null && v.Str != t.Vals[n.A].Str {
			out = append(out, id)
		}
	}
	return out
}

func (d *Detector) groupFor(n *Normal) *fdGroup {
	perm := sortedPerm(n.X)
	x := make([]int, len(n.X))
	for i, p := range perm {
		x[i] = n.X[p]
	}
	key := groupKey(x, n.A)
	for _, g := range d.groups {
		if groupKey(g.x, g.a) == key {
			return g
		}
	}
	return nil
}

// Satisfied reports whether the relation currently satisfies all CFDs.
func (d *Detector) Satisfied() bool {
	for _, g := range d.groups {
		sat := true
		d.groupScan(g, func(*relation.Tuple, *Normal, relation.TupleID) { sat = false })
		if !sat {
			return false
		}
	}
	return true
}

// TotalViolations returns the sum of vio(t) over all tuples — the paper's
// vio(C) for C = D (§3.1).
func (d *Detector) TotalViolations() int {
	total := 0
	for _, g := range d.groups {
		d.groupScan(g, func(*relation.Tuple, *Normal, relation.TupleID) { total++ })
	}
	return total
}

// Satisfies reports whether rel |= sigma, without building indices
// incrementally; convenience for tests and one-shot checks.
func Satisfies(rel *relation.Relation, sigma []*Normal) bool {
	return NewDetector(rel, sigma).Satisfied()
}

// Group is a public handle on one embedded-FD group of the detector:
// all normal CFDs sharing LHS attributes X and RHS attribute A, together
// with the detector's live index on X. The repair algorithms track dirty
// tuples per group instead of per pattern row, which keeps bookkeeping
// proportional to the number of embedded FDs rather than the (often
// thousands of) pattern tuples (§7.1).
type Group struct {
	d *Detector
	g *fdGroup
}

// Groups returns the embedded-FD groups of the detector, in construction
// order.
func (d *Detector) Groups() []Group {
	out := make([]Group, len(d.groups))
	for i, g := range d.groups {
		out[i] = Group{d: d, g: g}
	}
	return out
}

// X returns the group's LHS attribute positions (sorted).
func (g Group) X() []int { return g.g.x }

// A returns the group's RHS attribute position.
func (g Group) A() int { return g.g.a }

// Rep returns a representative normal CFD of the group: same X and A as
// every rule in the group, with an all-wildcard pattern. Useful for
// building attribute-level structures (e.g. dependency graphs) at group
// granularity.
func (g Group) Rep() *Normal {
	cells := make([]Cell, len(g.g.x))
	for i := range cells {
		cells[i] = W
	}
	var schema *relation.Schema
	for _, mb := range g.g.masks {
		for _, rows := range mb.rows {
			if len(rows) > 0 {
				schema = rows[0].n.Schema
				break
			}
		}
		if schema != nil {
			break
		}
	}
	return &Normal{
		Name:   "group",
		Schema: schema,
		X:      append([]int(nil), g.g.x...),
		A:      g.g.a,
		TpX:    cells,
		TpA:    W,
	}
}

// MatchingRules returns the normal CFDs of the group whose LHS pattern is
// matched by t (nil if t has a null among X). Cheap: one hash lookup per
// constant mask in the group.
func (g Group) MatchingRules(t *relation.Tuple) []*Normal {
	if t.HasNullOn(g.g.x) {
		return nil
	}
	rows := g.g.matchingRows(t.Project(g.g.x))
	if len(rows) == 0 {
		return nil
	}
	out := make([]*Normal, len(rows))
	for i, r := range rows {
		out[i] = r.n
	}
	return out
}

// Bucket returns the ids of tuples agreeing with t on the group's X
// (via the live index); includes t itself.
func (g Group) Bucket(t *relation.Tuple) []relation.TupleID {
	return g.g.xIndex.Lookup(t.Project(g.g.x))
}
