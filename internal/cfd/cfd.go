// Package cfd implements conditional functional dependencies (CFDs) as
// defined in the paper (§2): a CFD φ = (R: X → Y, Tp) pairs an embedded
// functional dependency with a pattern tableau Tp whose rows contain
// constants and the unnamed variable '_'. The package provides the match
// order ≼, satisfaction semantics, the normal form (R: X → A, tp), an
// indexed violation detector implementing the paper's vio(t) counting
// (§3.1), satisfiability checking (§2), and a dependency graph over CFDs
// used by the optimized batch-repair algorithm (§7.2).
package cfd

import (
	"fmt"
	"strings"

	"cfdclean/internal/relation"
)

// Cell is a single entry of a pattern tuple: a constant or the unnamed
// variable '_' ("don't care").
type Cell struct {
	Const    string
	Wildcard bool
}

// W is the wildcard cell.
var W = Cell{Wildcard: true}

// C returns a constant cell.
func C(s string) Cell { return Cell{Const: s} }

// String renders the cell, using "_" for the wildcard.
func (c Cell) String() string {
	if c.Wildcard {
		return "_"
	}
	return c.Const
}

// MatchValue reports v ≼ c: the data value matches the pattern cell.
// Per the paper (§3.1 remark 2), a null data value matches no pattern
// cell — not even the wildcard — so CFDs apply only to tuples that
// precisely match a pattern tuple.
func MatchValue(v relation.Value, c Cell) bool {
	if v.Null {
		return false
	}
	return c.Wildcard || v.Str == c.Const
}

// RHSViolates reports whether RHS value v conflicts with pattern cell c.
// Unlike LHS matching, a null RHS never violates: null means "unknown or
// cannot be made certain" (§3.1), and the paper's Example 5.1 explicitly
// uses (null, null) to satisfy a constant-RHS CFD. Only a non-null value
// failing the pattern is a violation.
func RHSViolates(v relation.Value, c Cell) bool {
	if v.Null {
		return false
	}
	return !c.Wildcard && v.Str != c.Const
}

// MatchVals reports vals ≼ cells componentwise.
func MatchVals(vals []relation.Value, cells []Cell) bool {
	if len(vals) != len(cells) {
		return false
	}
	for i := range vals {
		if !MatchValue(vals[i], cells[i]) {
			return false
		}
	}
	return true
}

// CellLeq reports c1 ≼ c2 on pattern cells themselves (used for tableau
// containment reasoning): a constant is below the same constant and below
// '_'; '_' is only below '_'.
func CellLeq(c1, c2 Cell) bool {
	if c2.Wildcard {
		return true
	}
	return !c1.Wildcard && c1.Const == c2.Const
}

// CFD is a conditional functional dependency in its general form
// (R: X → Y, Tp). LHS and RHS hold attribute positions in the schema;
// every tableau row has len(LHS)+len(RHS) cells, LHS cells first.
type CFD struct {
	Name    string
	Schema  *relation.Schema
	LHS     []int
	RHS     []int
	Tableau [][]Cell
}

// New builds a CFD over schema s from attribute names. Every pattern row
// must have len(lhs)+len(rhs) cells.
func New(name string, s *relation.Schema, lhs, rhs []string, rows ...[]Cell) (*CFD, error) {
	if len(lhs) == 0 || len(rhs) == 0 {
		return nil, fmt.Errorf("cfd %s: empty LHS or RHS", name)
	}
	li, err := s.Indexes(lhs...)
	if err != nil {
		return nil, fmt.Errorf("cfd %s: %w", name, err)
	}
	ri, err := s.Indexes(rhs...)
	if err != nil {
		return nil, fmt.Errorf("cfd %s: %w", name, err)
	}
	seen := make(map[int]bool, len(ri))
	for _, a := range ri {
		if seen[a] {
			return nil, fmt.Errorf("cfd %s: duplicate RHS attribute %s", name, s.Attr(a))
		}
		seen[a] = true
	}
	for i, row := range rows {
		if len(row) != len(li)+len(ri) {
			return nil, fmt.Errorf("cfd %s: pattern row %d has %d cells, want %d", name, i, len(row), len(li)+len(ri))
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("cfd %s: empty pattern tableau", name)
	}
	return &CFD{Name: name, Schema: s, LHS: li, RHS: ri, Tableau: rows}, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(name string, s *relation.Schema, lhs, rhs []string, rows ...[]Cell) *CFD {
	φ, err := New(name, s, lhs, rhs, rows...)
	if err != nil {
		panic(err)
	}
	return φ
}

// FD builds the CFD encoding of a standard functional dependency
// X → Y: a single pattern row of wildcards (§2, Fig. 2).
func FD(name string, s *relation.Schema, lhs, rhs []string) (*CFD, error) {
	row := make([]Cell, len(lhs)+len(rhs))
	for i := range row {
		row[i] = W
	}
	return New(name, s, lhs, rhs, row)
}

// String renders the CFD header, e.g. "phi1: [AC, PN] -> [STR, CT, ST]".
func (φ *CFD) String() string {
	l := make([]string, len(φ.LHS))
	for i, a := range φ.LHS {
		l[i] = φ.Schema.Attr(a)
	}
	r := make([]string, len(φ.RHS))
	for i, a := range φ.RHS {
		r[i] = φ.Schema.Attr(a)
	}
	return fmt.Sprintf("%s: [%s] -> [%s]", φ.Name, strings.Join(l, ", "), strings.Join(r, ", "))
}

// EmbeddedFD returns a copy of φ whose tableau is collapsed to the single
// all-wildcard row — the standard FD embedded in φ (§2). The experiment of
// paper Fig. 8 repairs with embedded FDs to quantify the value of patterns.
func (φ *CFD) EmbeddedFD() *CFD {
	row := make([]Cell, len(φ.LHS)+len(φ.RHS))
	for i := range row {
		row[i] = W
	}
	return &CFD{
		Name:    φ.Name + "_fd",
		Schema:  φ.Schema,
		LHS:     append([]int(nil), φ.LHS...),
		RHS:     append([]int(nil), φ.RHS...),
		Tableau: [][]Cell{row},
	}
}

// Normal is a CFD in the paper's normal form: (R: X → A, tp) with a single
// RHS attribute and a single pattern tuple (§2). All repair algorithms
// work on normal-form CFDs.
type Normal struct {
	Name   string
	Schema *relation.Schema
	X      []int  // LHS attribute positions
	A      int    // RHS attribute position
	TpX    []Cell // pattern over X
	TpA    Cell   // pattern over A
	Source *CFD   // the general CFD this row was normalized from (may be nil)
}

// ConstantRHS reports whether tp[A] is a constant. Constant-RHS CFDs can
// be violated by a single tuple (§3.1 case 1); variable-RHS CFDs need a
// pair of tuples (case 2). The split drives paper Figs. 14–15.
func (n *Normal) ConstantRHS() bool { return !n.TpA.Wildcard }

// MatchesLHS reports t[X] ≼ tp[X].
func (n *Normal) MatchesLHS(t *relation.Tuple) bool {
	for i, a := range n.X {
		if !MatchValue(t.Vals[a], n.TpX[i]) {
			return false
		}
	}
	return true
}

// String renders the normal CFD with its pattern.
func (n *Normal) String() string {
	xs := make([]string, len(n.X))
	ps := make([]string, len(n.X))
	for i, a := range n.X {
		xs[i] = n.Schema.Attr(a)
		ps[i] = n.TpX[i].String()
	}
	return fmt.Sprintf("%s: [%s] -> %s, (%s || %s)",
		n.Name, strings.Join(xs, ", "), n.Schema.Attr(n.A),
		strings.Join(ps, ", "), n.TpA.String())
}

// Normalize rewrites φ into the paper's normal form: one Normal per
// (pattern row, RHS attribute) pair. If an attribute appears in both X
// and Y, its LHS and RHS pattern cells are kept separate (tp[AL], tp[AR]).
func (φ *CFD) Normalize() []*Normal {
	var out []*Normal
	for ri, row := range φ.Tableau {
		lhsCells := row[:len(φ.LHS)]
		for yi, a := range φ.RHS {
			n := &Normal{
				Name:   fmt.Sprintf("%s#%d.%s", φ.Name, ri, φ.Schema.Attr(a)),
				Schema: φ.Schema,
				X:      append([]int(nil), φ.LHS...),
				A:      a,
				TpX:    append([]Cell(nil), lhsCells...),
				TpA:    row[len(φ.LHS)+yi],
				Source: φ,
			}
			out = append(out, n)
		}
	}
	return out
}

// NormalizeAll normalizes a set of general CFDs.
func NormalizeAll(cfds []*CFD) []*Normal {
	var out []*Normal
	for _, φ := range cfds {
		out = append(out, φ.Normalize()...)
	}
	return out
}

// AttrsOf returns the set of attribute positions mentioned by the normal
// CFDs (X ∪ {A} over all of them).
func AttrsOf(sigma []*Normal) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(a int) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, n := range sigma {
		for _, a := range n.X {
			add(a)
		}
		add(n.A)
	}
	return out
}
