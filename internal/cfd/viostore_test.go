package cfd

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cfdclean/internal/relation"
)

// checkStoreEquivalence asserts the store's maintained state is exactly
// what a freshly built detector computes over the relation's current
// contents: the canonical violation list bit for bit (tuples, rules,
// partners, merge order), the vio(t) map, and the total.
func checkStoreEquivalence(t *testing.T, tag string, s *VioStore, rel *relation.Relation, sigma []*Normal) {
	t.Helper()
	fresh := NewDetector(rel, sigma)
	wantVios := fresh.Detect()
	gotVios := s.Detect()
	if !(len(gotVios) == 0 && len(wantVios) == 0) && !reflect.DeepEqual(gotVios, wantVios) {
		t.Fatalf("%s: store Detect diverged: got %d violations, want %d\ngot:  %v\nwant: %v",
			tag, len(gotVios), len(wantVios), gotVios, wantVios)
	}
	wantAll := fresh.VioAll()
	gotAll := s.VioAll()
	if !reflect.DeepEqual(gotAll, wantAll) {
		t.Fatalf("%s: store VioAll diverged:\ngot:  %v\nwant: %v", tag, gotAll, wantAll)
	}
	if got, want := s.TotalViolations(), fresh.TotalViolations(); got != want {
		t.Fatalf("%s: store total %d, fresh total %d", tag, got, want)
	}
	if got, want := s.Satisfied(), fresh.Satisfied(); got != want {
		t.Fatalf("%s: store Satisfied %v, fresh %v", tag, got, want)
	}
	// Per-tuple counts through the owned-tuple fast path.
	for _, tt := range rel.Tuples() {
		if got, want := s.VioTuple(tt), fresh.VioTuple(tt); got != want {
			t.Fatalf("%s: VioTuple(t%d) = %d, fresh %d", tag, tt.ID, got, want)
		}
	}
	// Group totals must cover the whole multiset.
	sum := 0
	for gi := range fresh.Groups() {
		sum += s.GroupTotal(gi)
	}
	if sum != s.TotalViolations() {
		t.Fatalf("%s: group totals sum %d != total %d", tag, sum, s.TotalViolations())
	}
	// The maintained violation-graph components must equal the partition
	// a scratch union-find derives from the fresh violation list.
	if got, want := s.Components(), referenceComponents(wantVios); !reflect.DeepEqual(got, want) {
		if len(got) != 0 || len(want) != 0 {
			t.Fatalf("%s: components diverged:\ngot:  %v\nwant: %v", tag, got, want)
		}
	}
}

// referenceComponents computes the violation-graph partition from a
// violation list with a throwaway union-find, in the canonical order
// Components promises (members ascending, components by smallest member).
func referenceComponents(vios []Violation) [][]relation.TupleID {
	parent := make(map[relation.TupleID]relation.TupleID)
	var find func(relation.TupleID) relation.TupleID
	find = func(id relation.TupleID) relation.TupleID {
		if parent[id] == id {
			return id
		}
		r := find(parent[id])
		parent[id] = r
		return r
	}
	node := func(id relation.TupleID) {
		if _, ok := parent[id]; !ok {
			parent[id] = id
		}
	}
	for _, v := range vios {
		node(v.T)
		if v.With != 0 {
			node(v.With)
			ra, rb := find(v.T), find(v.With)
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	byRoot := make(map[relation.TupleID][]relation.TupleID)
	for id := range parent {
		byRoot[find(id)] = append(byRoot[find(id)], id)
	}
	out := make([][]relation.TupleID, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func paperSigma(s *relation.Schema) []*Normal {
	return NormalizeAll([]*CFD{phi1(s), phi2(s), phi3(s), phi4(s)})
}

func TestVioStoreMatchesDetectorOnPaperData(t *testing.T) {
	rel := paperData(t)
	sigma := paperSigma(rel.Schema())
	s := NewVioStore(rel, sigma)
	defer s.Close()
	checkStoreEquivalence(t, "initial", s, rel, sigma)

	// The Fig. 1 repair: t1[CT] := NYC resolves phi1's 212 pattern rows.
	first := rel.Tuples()[2]
	if _, err := rel.Set(first.ID, 6, relation.S("NYC")); err != nil {
		t.Fatal(err)
	}
	checkStoreEquivalence(t, "after Set CT", s, rel, sigma)

	// Insert a fresh violating tuple.
	tu, err := rel.InsertRow("a23", "H. Porter", "99.99", "215", "8983490", "Walnut", "CHI", "IL", "19014")
	if err != nil {
		t.Fatal(err)
	}
	checkStoreEquivalence(t, "after insert", s, rel, sigma)

	// Delete it again.
	rel.Delete(tu.ID)
	checkStoreEquivalence(t, "after delete", s, rel, sigma)
}

// TestVioStoreFuzzEquivalence drives random insert/delete/update
// sequences against a store and asserts, after every mutation, that the
// maintained state is bit-identical to a freshly built detector.
func TestVioStoreFuzzEquivalence(t *testing.T) {
	schema := orderSchema()
	sigma := paperSigma(schema)

	// Small value pools per attribute keep collisions (and hence
	// violations, bucket moves, pattern matches) frequent.
	pools := [][]string{
		{"a23", "a12", "a89"},                        // id
		{"H. Porter", "J. Denver", "Snow White"},     // name
		{"17.99", "7.94", "18.99"},                   // PR
		{"212", "215", "610", "415"},                 // AC
		{"8983490", "3456789", "3345677", "5674322"}, // PN
		{"Walnut", "Spruce", "Canel", "Broad"},       // STR
		{"PHI", "NYC", "CHI"},                        // CT
		{"PA", "NY", "IL"},                           // ST
		{"10012", "19014", "60614"},                  // zip
	}
	randVal := func(rng *rand.Rand, a int) relation.Value {
		if rng.Intn(8) == 0 {
			return relation.NullValue
		}
		p := pools[a]
		return relation.S(p[rng.Intn(len(p))])
	}

	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rel := relation.New(schema)
			// Seed population.
			for i := 0; i < 12; i++ {
				vals := make([]relation.Value, schema.Arity())
				for a := range vals {
					vals[a] = randVal(rng, a)
				}
				rel.MustInsert(&relation.Tuple{Vals: vals})
			}
			s := NewVioStore(rel, sigma)
			defer s.Close()
			checkStoreEquivalence(t, "seeded", s, rel, sigma)

			for step := 0; step < 120; step++ {
				tag := fmt.Sprintf("step %d", step)
				switch op := rng.Intn(10); {
				case op < 3: // insert
					vals := make([]relation.Value, schema.Arity())
					for a := range vals {
						vals[a] = randVal(rng, a)
					}
					rel.MustInsert(&relation.Tuple{Vals: vals})
				case op < 5: // delete
					ts := rel.Tuples()
					if len(ts) == 0 {
						continue
					}
					rel.Delete(ts[rng.Intn(len(ts))].ID)
				default: // update
					ts := rel.Tuples()
					if len(ts) == 0 {
						continue
					}
					tu := ts[rng.Intn(len(ts))]
					a := rng.Intn(schema.Arity())
					if _, err := rel.Set(tu.ID, a, randVal(rng, a)); err != nil {
						t.Fatal(err)
					}
				}
				checkStoreEquivalence(t, tag, s, rel, sigma)
			}
		})
	}
}

// TestVioStoreCloseDetaches asserts mutations after Close are no longer
// maintained (and cost nothing): the store keeps its last state.
func TestVioStoreCloseDetaches(t *testing.T) {
	rel := paperData(t)
	sigma := paperSigma(rel.Schema())
	s := NewVioStore(rel, sigma)
	before := s.TotalViolations()
	s.Close()
	if _, err := rel.InsertRow("zz", "X", "1", "212", "3345677", "Canel", "LA", "CA", "10012"); err != nil {
		t.Fatal(err)
	}
	if s.TotalViolations() != before {
		t.Fatalf("store kept maintaining after Close: %d -> %d", before, s.TotalViolations())
	}
}

// TestVioStoreApplyUndoProbe exercises the apply/undo pattern the repair
// layers use: insert scratch tuples, read maintained counts, delete them,
// rewind the id mark — the store must return exactly to its prior state.
func TestVioStoreApplyUndoProbe(t *testing.T) {
	rel := paperData(t)
	sigma := paperSigma(rel.Schema())
	s := NewVioStore(rel, sigma)
	defer s.Close()
	beforeVios := s.Detect()
	beforeNext := rel.NextID()

	probe := relation.NewTuple(0, "a23", "H. Porter", "1.00", "215", "8983490", "Walnut", "CHI", "IL", "19014")
	rel.MustInsert(probe)
	if s.VioCount(probe.ID) == 0 {
		t.Fatal("probe tuple should violate (CT/ST disagree with the 215 bucket)")
	}
	rel.Delete(probe.ID)
	rel.RestoreNextID(beforeNext)

	if got := rel.NextID(); got != beforeNext {
		t.Fatalf("id mark not restored: %d != %d", got, beforeNext)
	}
	afterVios := s.Detect()
	if !reflect.DeepEqual(beforeVios, afterVios) {
		t.Fatalf("apply/undo left residue:\nbefore: %v\nafter:  %v", beforeVios, afterVios)
	}
	checkStoreEquivalence(t, "after undo", s, rel, sigma)
}

// TestVioStoreComponentStateDrains pins the streaming-session memory
// bound: when the violation total drains back to zero the union-find
// behind Components is dropped outright, instead of accumulating an
// entry for every tuple that ever violated. Re-entering violations must
// rebuild it correctly from scratch.
func TestVioStoreComponentStateDrains(t *testing.T) {
	rel := paperData(t)
	sigma := paperSigma(rel.Schema())
	s := NewVioStore(rel, sigma)
	defer s.Close()
	if s.Satisfied() {
		t.Fatal("paper data should start dirty")
	}
	if s.comp.parent == nil {
		t.Fatal("violations present but no union-find state")
	}

	// Drain to zero by deleting every violating tuple; each tuple that
	// ever violated would be a permanent comp.parent entry without the
	// reset.
	for !s.Satisfied() {
		var victim relation.TupleID
		for id := range s.VioAll() {
			victim = id
			break
		}
		rel.Delete(victim)
	}
	if s.comp.parent != nil || s.comp.stale {
		t.Fatalf("drained store kept union-find state: %d entries, stale=%v",
			len(s.comp.parent), s.comp.stale)
	}
	if got := s.Components(); len(got) != 0 {
		t.Fatalf("drained store has %d components", len(got))
	}

	// Violations re-entering rebuild the structure from scratch and
	// Components stays canonical.
	if _, err := rel.InsertRow("a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "CHI", "IL", "19014"); err != nil {
		t.Fatal(err)
	}
	if s.Satisfied() {
		t.Fatal("inserted tuple should violate")
	}
	if got, want := s.Components(), referenceComponents(s.Detect()); !reflect.DeepEqual(got, want) {
		t.Fatalf("components after rebuild = %v, want %v", got, want)
	}
}
