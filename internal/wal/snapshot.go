package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cfdclean/internal/relation"
)

// Batch is one WAL record: a mutation batch a session accepted, with the
// journal Version cursor bracketing it. PrevVersion is the relation's
// mutation counter before the batch's engine pass and Version the counter
// after it — together they totally order records and make replay
// idempotent: a record whose Version is at or below the restored
// session's counter is already contained in the snapshot and is skipped,
// and a record whose PrevVersion does not meet the session's counter
// reveals a gap (a missing or out-of-order log) instead of silently
// corrupting state.
//
// Ops encodes the batch *inputs* (not the engine's output mutations),
// as relation Deltas under the conventions of increpair.OpsToDeltas:
// replay pushes them through the same ApplyOps path the live session
// ran, and the engine's determinism-by-construction guarantees the
// replayed pass rebuilds relation, violation store and counters
// bit-identically at any worker count.
type Batch struct {
	PrevVersion uint64
	Version     uint64
	Ops         []relation.Delta
}

// Encode renders the batch as a WAL record payload.
func (b *Batch) Encode() []byte {
	out := binary.LittleEndian.AppendUint64(nil, b.PrevVersion)
	out = binary.LittleEndian.AppendUint64(out, b.Version)
	out = binary.AppendUvarint(out, uint64(len(b.Ops)))
	for i := range b.Ops {
		out = relation.AppendDelta(out, &b.Ops[i])
	}
	return out
}

// DecodeBatch parses a WAL record payload.
func DecodeBatch(p []byte) (*Batch, error) {
	if len(p) < 16 {
		return nil, fmt.Errorf("%w: batch record of %d bytes", ErrCorrupt, len(p))
	}
	b := &Batch{
		PrevVersion: binary.LittleEndian.Uint64(p),
		Version:     binary.LittleEndian.Uint64(p[8:]),
	}
	pos := 16
	nops, n := binary.Uvarint(p[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch record truncated at op count", ErrCorrupt)
	}
	pos += n
	for i := uint64(0); i < nops; i++ {
		d, n, err := relation.DecodeDelta(p[pos:])
		if err != nil {
			return nil, fmt.Errorf("%w: batch op %d: %v", ErrCorrupt, i, err)
		}
		b.Ops = append(b.Ops, d)
		pos += n
	}
	if pos != len(p) {
		return nil, fmt.Errorf("%w: batch record carries %d trailing bytes", ErrCorrupt, len(p)-pos)
	}
	return b, nil
}

// Quota is the hosting service's per-session admission policy as
// recorded in a snapshot, so that an explicitly configured tenant quota
// survives recovery and ships to replicas instead of resetting to
// whatever defaults the restoring process was booted with. Set
// distinguishes "this session was created with an explicit quota"
// (restore exactly these values — all-zero means explicitly unlimited)
// from "the session inherited service defaults" (restore whatever the
// restoring server's defaults are). The engine itself never reads this;
// it is carried for the server layer.
type Quota struct {
	Set             bool
	OpsPerSec       float64
	TuplesPerSec    float64
	MaxRelationSize int
	MaxSubscribers  int
}

// SnapTuple is one relation row inside a snapshot, in the relation's
// physical order. Ids are explicit — the physical slot order and the id
// assignment both matter for byte-identical recovery (Delete compacts by
// swapping, so physical order diverges from id order as soon as anything
// is deleted).
type SnapTuple struct {
	ID   relation.TupleID
	Vals []relation.Value
	W    []float64
}

// Snapshot is a full-state image of one streaming session at a quiescent
// point (no engine pass in flight): everything RestoreSession needs to
// rebuild the session so that its Dump, Violations and Stats are
// byte-identical to the original's at the same journal watermark. The
// violation store itself is deliberately absent — it is a pure function
// of the relation contents and is rebuilt by one deterministic detection
// pass on restore, which keeps the format small and immune to store
// layout changes.
type Snapshot struct {
	// Name is the hosting service's session name ("" outside the server).
	Name string
	// Relname and Attrs reproduce the schema.
	Relname string
	Attrs   []string
	// CFDs is the constraint set in the cfd.Parse text format.
	CFDs string

	// Engine options (cost model excluded: sessions always run the
	// default model; see increpair.Options).
	Ordering uint8
	K        int
	NearestK int
	Workers  int

	// Cumulative session counters (see increpair.Snapshot).
	Batches  int
	Inserted int
	Deleted  int
	Changes  int
	Cost     float64

	// Journal marks at snapshot time.
	NextID  relation.TupleID
	Version uint64

	// Quota is the hosting service's admission policy for the session
	// (zero value when the session inherits service defaults).
	Quota Quota

	// StoreKind records where the relation rows live. StoreInline (the
	// zero value, and the only possibility before format version 3)
	// means Tuples carries them; StorePaged means the session runs the
	// disk-backed page store (internal/store) and the rows live in its
	// page files at generation StoreGen — Tuples is then empty and the
	// snapshot is a slim header, which is what makes recovery ~O(dirty)
	// instead of O(relation).
	StoreKind byte
	StoreGen  uint64

	// Tuples is the relation content in physical row order (StoreInline
	// only).
	Tuples []SnapTuple
}

// StoreKind values.
const (
	StoreInline byte = 0
	StorePaged  byte = 1
)

// appendHeader renders every snapshot field through the tuple count —
// the prefix shared by the wire payload (Encode) and the version-3 file
// header record.
func (s *Snapshot) appendHeader(out []byte) []byte {
	out = appendString(out, s.Name)
	out = appendString(out, s.Relname)
	out = binary.AppendUvarint(out, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		out = appendString(out, a)
	}
	out = appendString(out, s.CFDs)
	out = append(out, s.Ordering)
	out = binary.AppendUvarint(out, uint64(s.K))
	out = binary.AppendUvarint(out, uint64(s.NearestK))
	out = binary.AppendUvarint(out, uint64(s.Workers))
	out = binary.AppendUvarint(out, uint64(s.Batches))
	out = binary.AppendUvarint(out, uint64(s.Inserted))
	out = binary.AppendUvarint(out, uint64(s.Deleted))
	out = binary.AppendUvarint(out, uint64(s.Changes))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Cost))
	out = binary.AppendVarint(out, int64(s.NextID))
	out = binary.AppendUvarint(out, s.Version)
	if s.Quota.Set {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Quota.OpsPerSec))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Quota.TuplesPerSec))
	out = binary.AppendVarint(out, int64(s.Quota.MaxRelationSize))
	out = binary.AppendVarint(out, int64(s.Quota.MaxSubscribers))
	out = append(out, s.StoreKind)
	out = binary.AppendUvarint(out, s.StoreGen)
	out = binary.AppendUvarint(out, uint64(len(s.Tuples)))
	return out
}

// appendSnapTuple renders one tuple row.
func appendSnapTuple(out []byte, arity int, t *SnapTuple) []byte {
	out = binary.AppendVarint(out, int64(t.ID))
	for a := 0; a < arity; a++ {
		out = relation.AppendValue(out, t.Vals[a])
	}
	if t.W != nil {
		out = append(out, 1)
		for _, w := range t.W {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(w))
		}
	} else {
		out = append(out, 0)
	}
	return out
}

// Encode renders the snapshot as one contiguous payload — header fields
// followed by the tuples inline. This is the replication-wire layout;
// snapshot files chunk the tuples into separate records instead (see
// WriteSnapshot).
func (s *Snapshot) Encode() []byte {
	out := s.appendHeader(make([]byte, 0, s.EncodedSize()))
	arity := len(s.Attrs)
	for i := range s.Tuples {
		out = appendSnapTuple(out, arity, &s.Tuples[i])
	}
	return out
}

// EncodedSize returns len(s.Encode()) without building the buffer, so
// the shipper can refuse an over-cap snapshot before allocating and
// framing hundreds of megabytes.
func (s *Snapshot) EncodedSize() int {
	n := stringLen(s.Name) + stringLen(s.Relname) + uvarintLen(uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		n += stringLen(a)
	}
	n += stringLen(s.CFDs)
	n += 1 // ordering
	n += uvarintLen(uint64(s.K)) + uvarintLen(uint64(s.NearestK)) + uvarintLen(uint64(s.Workers))
	n += uvarintLen(uint64(s.Batches)) + uvarintLen(uint64(s.Inserted)) + uvarintLen(uint64(s.Deleted)) + uvarintLen(uint64(s.Changes))
	n += 8 // cost
	n += varintLen(int64(s.NextID)) + uvarintLen(s.Version)
	n += 1 + 8 + 8 + varintLen(int64(s.Quota.MaxRelationSize)) + varintLen(int64(s.Quota.MaxSubscribers))
	n += 1 + uvarintLen(s.StoreGen) // store kind + gen
	n += uvarintLen(uint64(len(s.Tuples)))
	arity := len(s.Attrs)
	for i := range s.Tuples {
		t := &s.Tuples[i]
		n += varintLen(int64(t.ID))
		for a := 0; a < arity; a++ {
			if t.Vals[a].Null {
				n++
			} else {
				n += 1 + stringLen(t.Vals[a].Str)
			}
		}
		n++ // weight flag
		if t.W != nil {
			n += 8 * len(t.W)
		}
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

func stringLen(s string) int {
	return uvarintLen(uint64(len(s))) + len(s)
}

// DecodeSnapshot parses a snapshot payload in the current format.
// File readers go through decodeSnapshotVersion instead, keyed on the
// file header's version byte; this entry point is for the replication
// wire, whose frames are always produced by the running build.
func DecodeSnapshot(p []byte) (*Snapshot, error) {
	return decodeSnapshotVersion(p, Version)
}

// decodeSnapshotPrefix parses the snapshot header fields (through the
// tuple count) from d under format version ver. Version 1 predates the
// quota block and versions 1–2 the store block: absent blocks read back
// as zero values — the session inherits the restoring service's
// defaults and the rows are inline, exactly what those deployments got.
func decodeSnapshotPrefix(d *decoder, ver byte) (*Snapshot, uint64) {
	s := &Snapshot{}
	s.Name = d.str("name")
	s.Relname = d.str("relation name")
	nattrs := d.uvarint("attribute count")
	if d.err == nil && nattrs > 1<<16 {
		d.err = fmt.Errorf("%w: snapshot: implausible attribute count %d", ErrCorrupt, nattrs)
		return s, 0
	}
	for i := uint64(0); i < nattrs && d.err == nil; i++ {
		s.Attrs = append(s.Attrs, d.str("attribute"))
	}
	s.CFDs = d.str("cfds")
	s.Ordering = d.byte("ordering")
	s.K = int(d.uvarint("k"))
	s.NearestK = int(d.uvarint("nearest_k"))
	s.Workers = int(d.uvarint("workers"))
	s.Batches = int(d.uvarint("batches"))
	s.Inserted = int(d.uvarint("inserted"))
	s.Deleted = int(d.uvarint("deleted"))
	s.Changes = int(d.uvarint("changes"))
	s.Cost = math.Float64frombits(d.u64("cost"))
	s.NextID = relation.TupleID(d.varint("next id"))
	s.Version = d.uvarint("version")
	if ver >= 2 {
		switch d.byte("quota flag") {
		case 0:
		case 1:
			s.Quota.Set = true
		default:
			if d.err == nil {
				d.err = fmt.Errorf("%w: snapshot: bad quota flag", ErrCorrupt)
			}
		}
		s.Quota.OpsPerSec = math.Float64frombits(d.u64("quota ops/sec"))
		s.Quota.TuplesPerSec = math.Float64frombits(d.u64("quota tuples/sec"))
		s.Quota.MaxRelationSize = int(d.varint("quota max relation size"))
		s.Quota.MaxSubscribers = int(d.varint("quota max subscribers"))
	}
	if ver >= 3 {
		s.StoreKind = d.byte("store kind")
		if d.err == nil && s.StoreKind > StorePaged {
			d.err = fmt.Errorf("%w: snapshot: unknown store kind %d", ErrCorrupt, s.StoreKind)
		}
		s.StoreGen = d.uvarint("store generation")
	}
	return s, d.uvarint("tuple count")
}

// decodeSnapTuple parses one tuple row.
func decodeSnapTuple(d *decoder, arity int, i uint64) SnapTuple {
	t := SnapTuple{ID: relation.TupleID(d.varint("tuple id"))}
	for a := 0; a < arity; a++ {
		t.Vals = append(t.Vals, d.value("tuple value"))
	}
	switch d.byte("weight flag") {
	case 0:
	case 1:
		for a := 0; a < arity; a++ {
			t.W = append(t.W, math.Float64frombits(d.u64("weight")))
		}
	default:
		// Strict like the Delta codec: silently dropping weights
		// would let a restored session score repairs differently.
		if d.err == nil {
			d.err = fmt.Errorf("%w: snapshot: bad weight flag on tuple %d", ErrCorrupt, i)
		}
	}
	return t
}

// decodeSnapshotVersion parses a contiguous snapshot payload (header
// fields with the tuples inline) written under format version ver.
func decodeSnapshotVersion(p []byte, ver byte) (*Snapshot, error) {
	d := &decoder{b: p}
	s, ntuples := decodeSnapshotPrefix(d, ver)
	arity := len(s.Attrs)
	for i := uint64(0); i < ntuples && d.err == nil; i++ {
		s.Tuples = append(s.Tuples, decodeSnapTuple(d, arity, i))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(p) {
		return nil, fmt.Errorf("%w: snapshot carries %d trailing bytes", ErrCorrupt, len(p)-d.pos)
	}
	return s, nil
}

// snapChunkTuples bounds the tuples per chunk record in a snapshot
// file: large enough to amortize framing, small enough that writer and
// reader never hold more than one modest buffer.
const snapChunkTuples = 4096

// appendSnapFrame frames one CRC-checked record.
func appendSnapFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// WriteSnapshot writes the framed snapshot to w: magic and version,
// one header record, then the tuples as bounded chunk records — the
// whole relation is never materialized as a single buffer.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	buf := append([]byte(snapMagic), Version)
	buf = appendSnapFrame(buf, s.appendHeader(nil))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	arity := len(s.Attrs)
	var chunk, frame []byte
	for start := 0; start < len(s.Tuples); start += snapChunkTuples {
		end := min(start+snapChunkTuples, len(s.Tuples))
		chunk = binary.AppendUvarint(chunk[:0], uint64(end-start))
		for i := start; i < end; i++ {
			chunk = appendSnapTuple(chunk, arity, &s.Tuples[i])
		}
		frame = appendSnapFrame(frame[:0], chunk)
		if _, err := w.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// readSnapFrame reads and verifies one framed record. Every failure —
// including a clean EOF, which at a call site always means a record is
// missing — wraps ErrCorrupt: snapshots are atomic, so any damage
// rejects the whole file.
func readSnapFrame(br *bufio.Reader) ([]byte, error) {
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return nil, fmt.Errorf("%w: snapshot record torn: %v", ErrCorrupt, err)
	}
	ln := binary.LittleEndian.Uint32(h[:4])
	crc := binary.LittleEndian.Uint32(h[4:])
	if ln > maxRecordLen {
		return nil, fmt.Errorf("%w: snapshot record of implausible length %d", ErrCorrupt, ln)
	}
	p := make([]byte, ln)
	if _, err := io.ReadFull(br, p); err != nil {
		return nil, fmt.Errorf("%w: snapshot record torn: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(p, castagnoli) != crc {
		return nil, fmt.Errorf("%w: snapshot record checksum mismatch", ErrCorrupt)
	}
	return p, nil
}

// ReadSnapshot reads and verifies a framed snapshot from r, record by
// record. Files at format version <= 2 (one record covering the whole
// stream) decode through the legacy path.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(snapMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: bad %s header: %v", ErrCorrupt, snapMagic, err)
	}
	if string(hdr[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad %s header", ErrCorrupt, snapMagic)
	}
	ver := hdr[len(snapMagic)]
	if ver < minVersion || ver > Version {
		return nil, fmt.Errorf("%w: format version %d, reader supports %d..%d", ErrCorrupt, ver, minVersion, Version)
	}
	if ver < 3 {
		// Legacy layout: exactly one record covering the rest of the
		// stream; a torn tail or trailing garbage means the atomic write
		// protocol was violated — reject entirely.
		b, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		if len(b) < frameHeaderLen {
			return nil, fmt.Errorf("%w: snapshot stream is torn", ErrCorrupt)
		}
		ln := binary.LittleEndian.Uint32(b[:4])
		crc := binary.LittleEndian.Uint32(b[4:])
		if ln > maxRecordLen || int(ln) != len(b)-frameHeaderLen {
			return nil, fmt.Errorf("%w: snapshot stream is torn or trailed by garbage", ErrCorrupt)
		}
		payload := b[frameHeaderLen:]
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
		}
		return decodeSnapshotVersion(payload, ver)
	}
	hp, err := readSnapFrame(br)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: hp}
	s, ntuples := decodeSnapshotPrefix(d, ver)
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(hp) {
		return nil, fmt.Errorf("%w: snapshot header record carries %d trailing bytes", ErrCorrupt, len(hp)-d.pos)
	}
	arity := len(s.Attrs)
	for got := uint64(0); got < ntuples; {
		cp, err := readSnapFrame(br)
		if err != nil {
			return nil, err
		}
		cd := &decoder{b: cp}
		n := cd.uvarint("chunk tuple count")
		if cd.err == nil && (n == 0 || got+n > ntuples) {
			cd.err = fmt.Errorf("%w: snapshot chunk of %d tuples at row %d of %d", ErrCorrupt, n, got, ntuples)
		}
		for i := uint64(0); i < n && cd.err == nil; i++ {
			s.Tuples = append(s.Tuples, decodeSnapTuple(cd, arity, got+i))
		}
		if cd.err != nil {
			return nil, cd.err
		}
		if cd.pos != len(cp) {
			return nil, fmt.Errorf("%w: snapshot chunk carries %d trailing bytes", ErrCorrupt, len(cp)-cd.pos)
		}
		got += n
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: snapshot stream trailed by garbage", ErrCorrupt)
	}
	return s, nil
}

// decoder is a cursor over a snapshot payload that latches the first
// error, so field-by-field parsing reads linearly without per-field
// error plumbing.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: snapshot truncated at %s", ErrCorrupt, what)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil || d.pos >= len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.pos+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *decoder) str(what string) string {
	ln := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	end := d.pos + int(ln)
	if ln > uint64(len(d.b)) || end > len(d.b) {
		d.fail(what)
		return ""
	}
	v := string(d.b[d.pos:end])
	d.pos = end
	return v
}

// value reads one Value through the shared relation codec, so the
// snapshot format can never fork from the WAL delta format at the
// value level.
func (d *decoder) value(what string) relation.Value {
	if d.err != nil {
		return relation.Value{}
	}
	v, n, err := relation.DecodeValue(d.b[d.pos:])
	if err != nil {
		d.err = fmt.Errorf("%w: snapshot: %s: %v", ErrCorrupt, what, err)
		return relation.Value{}
	}
	d.pos += n
	return v
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
