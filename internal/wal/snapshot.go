package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cfdclean/internal/relation"
)

// Batch is one WAL record: a mutation batch a session accepted, with the
// journal Version cursor bracketing it. PrevVersion is the relation's
// mutation counter before the batch's engine pass and Version the counter
// after it — together they totally order records and make replay
// idempotent: a record whose Version is at or below the restored
// session's counter is already contained in the snapshot and is skipped,
// and a record whose PrevVersion does not meet the session's counter
// reveals a gap (a missing or out-of-order log) instead of silently
// corrupting state.
//
// Ops encodes the batch *inputs* (not the engine's output mutations),
// as relation Deltas under the conventions of increpair.OpsToDeltas:
// replay pushes them through the same ApplyOps path the live session
// ran, and the engine's determinism-by-construction guarantees the
// replayed pass rebuilds relation, violation store and counters
// bit-identically at any worker count.
type Batch struct {
	PrevVersion uint64
	Version     uint64
	Ops         []relation.Delta
}

// Encode renders the batch as a WAL record payload.
func (b *Batch) Encode() []byte {
	out := binary.LittleEndian.AppendUint64(nil, b.PrevVersion)
	out = binary.LittleEndian.AppendUint64(out, b.Version)
	out = binary.AppendUvarint(out, uint64(len(b.Ops)))
	for i := range b.Ops {
		out = relation.AppendDelta(out, &b.Ops[i])
	}
	return out
}

// DecodeBatch parses a WAL record payload.
func DecodeBatch(p []byte) (*Batch, error) {
	if len(p) < 16 {
		return nil, fmt.Errorf("%w: batch record of %d bytes", ErrCorrupt, len(p))
	}
	b := &Batch{
		PrevVersion: binary.LittleEndian.Uint64(p),
		Version:     binary.LittleEndian.Uint64(p[8:]),
	}
	pos := 16
	nops, n := binary.Uvarint(p[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch record truncated at op count", ErrCorrupt)
	}
	pos += n
	for i := uint64(0); i < nops; i++ {
		d, n, err := relation.DecodeDelta(p[pos:])
		if err != nil {
			return nil, fmt.Errorf("%w: batch op %d: %v", ErrCorrupt, i, err)
		}
		b.Ops = append(b.Ops, d)
		pos += n
	}
	if pos != len(p) {
		return nil, fmt.Errorf("%w: batch record carries %d trailing bytes", ErrCorrupt, len(p)-pos)
	}
	return b, nil
}

// Quota is the hosting service's per-session admission policy as
// recorded in a snapshot, so that an explicitly configured tenant quota
// survives recovery and ships to replicas instead of resetting to
// whatever defaults the restoring process was booted with. Set
// distinguishes "this session was created with an explicit quota"
// (restore exactly these values — all-zero means explicitly unlimited)
// from "the session inherited service defaults" (restore whatever the
// restoring server's defaults are). The engine itself never reads this;
// it is carried for the server layer.
type Quota struct {
	Set             bool
	OpsPerSec       float64
	TuplesPerSec    float64
	MaxRelationSize int
	MaxSubscribers  int
}

// SnapTuple is one relation row inside a snapshot, in the relation's
// physical order. Ids are explicit — the physical slot order and the id
// assignment both matter for byte-identical recovery (Delete compacts by
// swapping, so physical order diverges from id order as soon as anything
// is deleted).
type SnapTuple struct {
	ID   relation.TupleID
	Vals []relation.Value
	W    []float64
}

// Snapshot is a full-state image of one streaming session at a quiescent
// point (no engine pass in flight): everything RestoreSession needs to
// rebuild the session so that its Dump, Violations and Stats are
// byte-identical to the original's at the same journal watermark. The
// violation store itself is deliberately absent — it is a pure function
// of the relation contents and is rebuilt by one deterministic detection
// pass on restore, which keeps the format small and immune to store
// layout changes.
type Snapshot struct {
	// Name is the hosting service's session name ("" outside the server).
	Name string
	// Relname and Attrs reproduce the schema.
	Relname string
	Attrs   []string
	// CFDs is the constraint set in the cfd.Parse text format.
	CFDs string

	// Engine options (cost model excluded: sessions always run the
	// default model; see increpair.Options).
	Ordering uint8
	K        int
	NearestK int
	Workers  int

	// Cumulative session counters (see increpair.Snapshot).
	Batches  int
	Inserted int
	Deleted  int
	Changes  int
	Cost     float64

	// Journal marks at snapshot time.
	NextID  relation.TupleID
	Version uint64

	// Quota is the hosting service's admission policy for the session
	// (zero value when the session inherits service defaults).
	Quota Quota

	// Tuples is the relation content in physical row order.
	Tuples []SnapTuple
}

// Encode renders the snapshot payload.
func (s *Snapshot) Encode() []byte {
	out := appendString(nil, s.Name)
	out = appendString(out, s.Relname)
	out = binary.AppendUvarint(out, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		out = appendString(out, a)
	}
	out = appendString(out, s.CFDs)
	out = append(out, s.Ordering)
	out = binary.AppendUvarint(out, uint64(s.K))
	out = binary.AppendUvarint(out, uint64(s.NearestK))
	out = binary.AppendUvarint(out, uint64(s.Workers))
	out = binary.AppendUvarint(out, uint64(s.Batches))
	out = binary.AppendUvarint(out, uint64(s.Inserted))
	out = binary.AppendUvarint(out, uint64(s.Deleted))
	out = binary.AppendUvarint(out, uint64(s.Changes))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Cost))
	out = binary.AppendVarint(out, int64(s.NextID))
	out = binary.AppendUvarint(out, s.Version)
	if s.Quota.Set {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Quota.OpsPerSec))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Quota.TuplesPerSec))
	out = binary.AppendVarint(out, int64(s.Quota.MaxRelationSize))
	out = binary.AppendVarint(out, int64(s.Quota.MaxSubscribers))
	out = binary.AppendUvarint(out, uint64(len(s.Tuples)))
	arity := len(s.Attrs)
	for _, t := range s.Tuples {
		out = binary.AppendVarint(out, int64(t.ID))
		for a := 0; a < arity; a++ {
			out = relation.AppendValue(out, t.Vals[a])
		}
		if t.W != nil {
			out = append(out, 1)
			for _, w := range t.W {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(w))
			}
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// DecodeSnapshot parses a snapshot payload in the current format.
// File readers go through decodeSnapshotVersion instead, keyed on the
// file header's version byte; this entry point is for the replication
// wire, whose frames are always produced by the running build.
func DecodeSnapshot(p []byte) (*Snapshot, error) {
	return decodeSnapshotVersion(p, Version)
}

// decodeSnapshotVersion parses a snapshot payload written under format
// version ver. Version 1 predates the quota block: the block is simply
// absent, and the snapshot reads back with a zero Quota — the session
// inherits the restoring service's defaults, exactly what v1 deployments
// got.
func decodeSnapshotVersion(p []byte, ver byte) (*Snapshot, error) {
	d := &decoder{b: p}
	s := &Snapshot{}
	s.Name = d.str("name")
	s.Relname = d.str("relation name")
	nattrs := d.uvarint("attribute count")
	if d.err == nil && nattrs > 1<<16 {
		return nil, fmt.Errorf("%w: snapshot: implausible attribute count %d", ErrCorrupt, nattrs)
	}
	for i := uint64(0); i < nattrs && d.err == nil; i++ {
		s.Attrs = append(s.Attrs, d.str("attribute"))
	}
	s.CFDs = d.str("cfds")
	s.Ordering = d.byte("ordering")
	s.K = int(d.uvarint("k"))
	s.NearestK = int(d.uvarint("nearest_k"))
	s.Workers = int(d.uvarint("workers"))
	s.Batches = int(d.uvarint("batches"))
	s.Inserted = int(d.uvarint("inserted"))
	s.Deleted = int(d.uvarint("deleted"))
	s.Changes = int(d.uvarint("changes"))
	s.Cost = math.Float64frombits(d.u64("cost"))
	s.NextID = relation.TupleID(d.varint("next id"))
	s.Version = d.uvarint("version")
	if ver >= 2 {
		switch d.byte("quota flag") {
		case 0:
		case 1:
			s.Quota.Set = true
		default:
			if d.err == nil {
				d.err = fmt.Errorf("%w: snapshot: bad quota flag", ErrCorrupt)
			}
		}
		s.Quota.OpsPerSec = math.Float64frombits(d.u64("quota ops/sec"))
		s.Quota.TuplesPerSec = math.Float64frombits(d.u64("quota tuples/sec"))
		s.Quota.MaxRelationSize = int(d.varint("quota max relation size"))
		s.Quota.MaxSubscribers = int(d.varint("quota max subscribers"))
	}
	ntuples := d.uvarint("tuple count")
	arity := len(s.Attrs)
	for i := uint64(0); i < ntuples && d.err == nil; i++ {
		t := SnapTuple{ID: relation.TupleID(d.varint("tuple id"))}
		for a := 0; a < arity; a++ {
			t.Vals = append(t.Vals, d.value("tuple value"))
		}
		switch d.byte("weight flag") {
		case 0:
		case 1:
			for a := 0; a < arity; a++ {
				t.W = append(t.W, math.Float64frombits(d.u64("weight")))
			}
		default:
			// Strict like the Delta codec: silently dropping weights
			// would let a restored session score repairs differently.
			if d.err == nil {
				d.err = fmt.Errorf("%w: snapshot: bad weight flag on tuple %d", ErrCorrupt, i)
			}
		}
		s.Tuples = append(s.Tuples, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(p) {
		return nil, fmt.Errorf("%w: snapshot carries %d trailing bytes", ErrCorrupt, len(p)-d.pos)
	}
	return s, nil
}

// WriteSnapshot writes the framed snapshot (magic, version, one
// CRC-checked record) to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	payload := s.Encode()
	buf := append([]byte(snapMagic), Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadSnapshot reads and verifies a framed snapshot from r.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	payloads, ver, good, err := scanFrames(b, snapMagic)
	if err != nil {
		return nil, err
	}
	if len(payloads) != 1 || good != int64(len(b)) {
		return nil, fmt.Errorf("%w: snapshot stream is torn or trailed by garbage", ErrCorrupt)
	}
	return decodeSnapshotVersion(payloads[0], ver)
}

// decoder is a cursor over a snapshot payload that latches the first
// error, so field-by-field parsing reads linearly without per-field
// error plumbing.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: snapshot truncated at %s", ErrCorrupt, what)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil || d.pos >= len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.pos+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *decoder) str(what string) string {
	ln := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	end := d.pos + int(ln)
	if ln > uint64(len(d.b)) || end > len(d.b) {
		d.fail(what)
		return ""
	}
	v := string(d.b[d.pos:end])
	d.pos = end
	return v
}

// value reads one Value through the shared relation codec, so the
// snapshot format can never fork from the WAL delta format at the
// value level.
func (d *decoder) value(what string) relation.Value {
	if d.err != nil {
		return relation.Value{}
	}
	v, n, err := relation.DecodeValue(d.b[d.pos:])
	if err != nil {
		d.err = fmt.Errorf("%w: snapshot: %s: %v", ErrCorrupt, what, err)
		return relation.Value{}
	}
	d.pos += n
	return v
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
