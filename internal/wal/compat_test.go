package wal_test

// Backward compatibility: version 2 added the quota block to the
// snapshot payload, and a durable deployment upgrading across that
// bump must still read every file it wrote before it. This battery
// writes faithful version-1 files — the snapshot payload without the
// quota block, under a header stamped 1 — and requires that today's
// readers restore and replay them to the same byte-identical state the
// recovery battery proves for current files.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

var compatCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeSnapshotV1 renders a snapshot payload exactly as the version-1
// writer did: field for field the current codec, minus the quota block
// between the journal version and the tuple count.
func encodeSnapshotV1(t *testing.T, s *wal.Snapshot) []byte {
	t.Helper()
	if s.Quota != (wal.Quota{}) {
		t.Fatal("a v1 writer could not have recorded a quota")
	}
	str := func(dst []byte, v string) []byte {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		return append(dst, v...)
	}
	out := str(nil, s.Name)
	out = str(out, s.Relname)
	out = binary.AppendUvarint(out, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		out = str(out, a)
	}
	out = str(out, s.CFDs)
	out = append(out, s.Ordering)
	out = binary.AppendUvarint(out, uint64(s.K))
	out = binary.AppendUvarint(out, uint64(s.NearestK))
	out = binary.AppendUvarint(out, uint64(s.Workers))
	out = binary.AppendUvarint(out, uint64(s.Batches))
	out = binary.AppendUvarint(out, uint64(s.Inserted))
	out = binary.AppendUvarint(out, uint64(s.Deleted))
	out = binary.AppendUvarint(out, uint64(s.Changes))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Cost))
	out = binary.AppendVarint(out, int64(s.NextID))
	out = binary.AppendUvarint(out, s.Version)
	out = binary.AppendUvarint(out, uint64(len(s.Tuples)))
	arity := len(s.Attrs)
	for _, tp := range s.Tuples {
		out = binary.AppendVarint(out, int64(tp.ID))
		for a := 0; a < arity; a++ {
			out = relation.AppendValue(out, tp.Vals[a])
		}
		if tp.W != nil {
			out = append(out, 1)
			for _, w := range tp.W {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(w))
			}
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// frameV1 builds a whole version-1 file: magic, version byte 1, then
// one CRC-framed record per payload.
func frameV1(magic string, payloads ...[]byte) []byte {
	out := append([]byte(magic), 1)
	for _, p := range payloads {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(p, compatCRC))
		out = append(out, p...)
	}
	return out
}

// TestV1FilesStillRecover writes a session's snapshot and WAL in the
// version-1 format and requires the current readers to reproduce the
// recorded session byte for byte: equal dump, violations and stats,
// with the quota reading back zero (= inherit service defaults).
func TestV1FilesStillRecover(t *testing.T) {
	rec := record(t, 77, increpair.Linear, 1, 5, true)

	// Downgrade the recorded v2 snapshot: decode, re-encode without the
	// quota block, stamp the header 1.
	snap, err := wal.ReadSnapshot(bytes.NewReader(rec.snap0))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap-0000000000.snap")
	walPath := filepath.Join(dir, "wal-0000000000.log")
	if err := os.WriteFile(snapPath, frameV1("CFDSNAP", encodeSnapshotV1(t, snap)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, frameV1("CFDWAL", rec.payloads...), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := wal.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("v1 snapshot unreadable: %v", err)
	}
	if got.Quota != (wal.Quota{}) {
		t.Fatalf("v1 snapshot read back a quota: %+v", got.Quota)
	}
	if got.Version != snap.Version || got.Name != snap.Name || len(got.Tuples) != len(snap.Tuples) {
		t.Fatalf("v1 snapshot decoded wrong: %+v", got)
	}

	l, payloads, discarded, err := wal.Open(walPath)
	if err != nil {
		t.Fatalf("v1 wal unreadable: %v", err)
	}
	if discarded != 0 {
		t.Fatalf("clean v1 wal reported %d discarded bytes", discarded)
	}
	if len(payloads) != len(rec.payloads) {
		t.Fatalf("v1 wal recovered %d records, want %d", len(payloads), len(rec.payloads))
	}

	sess, err := increpair.RestoreFromSnapshot(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i, p := range payloads {
		b, err := wal.DecodeBatch(p)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if _, err := sess.ReplayBatch(b); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	requireEqual(t, "v1 recovery", rec.fps[len(rec.fps)-1], capture(t, sess))

	// The reopened v1 log stays appendable — the upgraded server keeps
	// writing into it — and a further open replays the mixed file.
	extra := wal.Batch{PrevVersion: 1 << 40, Version: 1<<40 + 1}
	if err := l.Append(extra.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, payloads, _, err = wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != len(rec.payloads)+1 {
		t.Fatalf("append after upgrade lost: %d records", len(payloads))
	}

	// A version from the future still refuses loudly.
	future := frameV1("CFDSNAP", encodeSnapshotV1(t, snap))
	future[len("CFDSNAP")] = 99
	futPath := filepath.Join(dir, "snap-0000000001.snap")
	if err := os.WriteFile(futPath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.ReadSnapshotFile(futPath); err == nil {
		t.Fatal("version-99 snapshot decoded without error")
	}
}
