// Package wal is the durability substrate of the streaming-session
// stack: a length-prefixed, CRC-checked binary write-ahead log for
// relation mutation batches, plus full-state session snapshots. The
// relation journal (internal/relation) already exposes every accepted
// batch as a totally-ordered stream of typed Deltas; this package
// serializes that stream so a session can be reconstructed after a crash
// by loading the newest valid snapshot and replaying the batches logged
// after it (see increpair.RestoreSession and internal/server's
// persister).
//
// # File formats
//
// Both file kinds open with a magic string and a single format version
// byte; writers stamp Version, readers accept minVersion..Version and
// decode version-gated blocks per the header byte, so old data dirs
// survive an upgrade. Any codec change that breaks old logs must bump
// Version (the golden fixture under testdata/golden/wal-session fails
// loudly when this is forgotten).
//
//	wal file      = "CFDWAL"  version(u8) record*
//	snapshot file = "CFDSNAP" version(u8) header-record chunk-record*
//	record        = length(u32 LE) crc(u32 LE) payload
//
// Snapshot files at format version <= 2 carried exactly one record (the
// whole relation in one payload); version 3 streams a header record
// (everything through the tuple count) followed by bounded tuple-chunk
// records, so snapshots of any size are written and read without a
// relation-sized allocation.
//
// crc is the CRC-32C (Castagnoli) checksum of the payload alone; length
// counts payload bytes. Record payloads are opaque at this layer —
// Batch and Snapshot (snapshot.go) define the two payload codecs.
//
// # Crash semantics
//
// A crash can leave a torn record at the log's tail: a short header, a
// payload shorter than its declared length, or a payload whose checksum
// no longer matches. Open detects all three, reports how many intact
// records precede the damage, and truncates the file back to the last
// intact record boundary so the log is append-clean again. Damage is
// only ever accepted at the tail — a bad record invalidates everything
// after it, because record boundaries downstream of a torn write cannot
// be trusted.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Version is the on-disk format version byte shared by WAL and snapshot
// files; writers always stamp it. Bump it on any incompatible codec
// change. Readers accept every version back to minVersion — a durable
// deployment's existing files must stay readable across an upgrade —
// and decode version-gated blocks per the file's own header byte.
// Version 2 added the quota block to the snapshot payload (see
// Snapshot.Quota); a v1 snapshot reads back with a zero Quota
// (= inherit service defaults). Version 3 added the storage-backend
// block (Snapshot.StoreKind / StoreGen) and switched snapshot FILES
// from a single whole-relation record to a header record followed by
// bounded tuple-chunk records, so writing and reading a snapshot
// streams instead of materializing one relation-sized buffer; v1/v2
// single-record snapshot files stay readable, and the WAL record codec
// is unchanged across all three versions.
const Version = 3

// minVersion is the oldest format version readers still decode.
const minVersion = 1

const (
	walMagic  = "CFDWAL"
	snapMagic = "CFDSNAP"

	frameHeaderLen = 8 // u32 length + u32 crc
	// maxRecordLen rejects absurd lengths decoded from a torn or
	// corrupted frame header before they drive a huge allocation.
	maxRecordLen = 1 << 28 // 256 MiB
)

// ErrCorrupt reports structural damage: a bad magic or version, a torn
// or checksum-failing record, or a payload that does not decode. Tail
// corruption inside Open is handled (discarded) and NOT returned as an
// error; ErrCorrupt surfaces where no valid prefix can be salvaged.
var ErrCorrupt = errors.New("wal: corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only WAL file. It is not safe for concurrent use;
// the server gives each session's single-writer worker exclusive
// ownership of its log, which is the same discipline the session's
// relation already requires.
type Log struct {
	f     *os.File
	path  string
	dirty bool // appended since last Sync
}

// Create makes a new empty log at path (truncating any existing file)
// and syncs the header to disk.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := append([]byte(walMagic), Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path}, nil
}

// Open reads an existing log: it validates the header, decodes every
// intact record, discards a torn or corrupted tail (truncating the file
// back to the last intact boundary so appends continue cleanly), and
// returns the payloads in log order. discarded reports how many bytes
// of damaged tail were dropped — zero for a cleanly closed log.
func Open(path string) (l *Log, payloads [][]byte, discarded int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	payloads, _, good, scanErr := scanFrames(b, walMagic)
	if scanErr != nil {
		return nil, nil, 0, scanErr
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	discarded = int64(len(b)) - good
	if discarded > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &Log{f: f, path: path}, payloads, discarded, nil
}

// scanFrames walks the framed records after a magic+version header,
// returning the intact payloads, the file's format version, and the
// offset just past the last intact record. A torn or checksum-failing
// record ends the scan without error (tail damage is the expected crash
// artifact); a bad header is ErrCorrupt — nothing in the file can be
// trusted.
func scanFrames(b []byte, magic string) (payloads [][]byte, ver byte, good int64, err error) {
	hdr := len(magic) + 1
	if len(b) < hdr || string(b[:len(magic)]) != magic {
		return nil, 0, 0, fmt.Errorf("%w: bad %s header", ErrCorrupt, magic)
	}
	ver = b[len(magic)]
	if ver < minVersion || ver > Version {
		return nil, 0, 0, fmt.Errorf("%w: format version %d, reader supports %d..%d", ErrCorrupt, ver, minVersion, Version)
	}
	pos := hdr
	for {
		if pos == len(b) {
			return payloads, ver, int64(pos), nil // clean end
		}
		if pos+frameHeaderLen > len(b) {
			return payloads, ver, int64(pos), nil // torn frame header
		}
		ln := binary.LittleEndian.Uint32(b[pos:])
		crc := binary.LittleEndian.Uint32(b[pos+4:])
		if ln > maxRecordLen || pos+frameHeaderLen+int(ln) > len(b) {
			return payloads, ver, int64(pos), nil // torn or garbage payload length
		}
		payload := b[pos+frameHeaderLen : pos+frameHeaderLen+int(ln)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return payloads, ver, int64(pos), nil // checksum mismatch
		}
		payloads = append(payloads, payload)
		pos += frameHeaderLen + int(ln)
	}
}

// Append writes one record. The bytes reach the file (and the OS page
// cache) before Append returns; they reach the disk at the next Sync,
// per the owner's fsync policy.
func (l *Log) Append(payload []byte) error {
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderLen:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.dirty = true
	return nil
}

// Sync flushes appended records to stable storage (fsync). It is a
// no-op when nothing was appended since the last Sync.
func (l *Log) Sync() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Close syncs and closes the file.
func (l *Log) Close() error {
	serr := l.Sync()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// WriteSnapshotFile atomically writes a snapshot file: the encoded
// snapshot goes to a temporary sibling, is fsynced, and is renamed over
// path, so a crash mid-write can never leave a half-written snapshot
// under the final name. The directory is fsynced after the rename so
// the new name itself survives a crash.
func WriteSnapshotFile(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshotFile reads and verifies a snapshot file written by
// WriteSnapshotFile, streaming record by record. Any damage — header,
// checksum, payload, torn chunk stream — returns an error wrapping
// ErrCorrupt so callers can fall back to an older generation.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
