package wal_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal-0000000000.log")
}

func TestLogRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload"), {0, 1, 2, 255}}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, discarded, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if discarded != 0 {
		t.Fatalf("clean log reported %d discarded bytes", discarded)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], recs[i])
		}
	}
	// The reopened log must accept appends that a further open sees.
	if err := l2.Append([]byte("appended-after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _, err = wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)+1 || string(got[len(recs)]) != "appended-after-reopen" {
		t.Fatalf("append after reopen lost: %d records", len(got))
	}
}

// TestLogTornTail cuts a valid log at every possible byte length and
// requires: no error, only intact records recovered, damage truncated,
// and the truncated file appendable again — the crash-recovery
// contract at record granularity.
func TestLogTornTail(t *testing.T) {
	path := tmpLog(t)
	l, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("first"), []byte("second record"), []byte("3rd")}
	// boundaries[i] is the file length with exactly i intact records.
	boundaries := []int{7} // magic + version
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+8+len(r))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != boundaries[len(boundaries)-1] {
		t.Fatalf("file length %d, want %d", len(whole), boundaries[len(boundaries)-1])
	}

	intactAt := func(cut int) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}
	for cut := 7; cut <= len(whole); cut++ {
		p := filepath.Join(t.TempDir(), "cut.log")
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, discarded, err := wal.Open(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := intactAt(cut)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		wantDiscard := int64(cut - boundaries[want])
		if discarded != wantDiscard {
			t.Fatalf("cut %d: discarded %d bytes, want %d", cut, discarded, wantDiscard)
		}
		// After truncation the log must append cleanly.
		if err := l.Append([]byte("post-crash")); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, got, _, err = wal.Open(p)
		if err != nil || len(got) != want+1 {
			t.Fatalf("cut %d: reopen after heal: %d records, err %v", cut, len(got), err)
		}
	}
}

// TestLogCorruptRecord flips one byte in each record in turn; the
// damaged record and everything after it must be discarded — record
// boundaries downstream of corruption cannot be trusted.
func TestLogCorruptRecord(t *testing.T) {
	path := tmpLog(t)
	l, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("first"), []byte("second record"), []byte("3rd")}
	offsets := []int{7}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, offsets[len(offsets)-1]+8+len(r))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, _ := os.ReadFile(path)

	for i := range recs {
		corrupted := append([]byte(nil), whole...)
		corrupted[offsets[i]+8] ^= 0x40 // first payload byte of record i
		p := filepath.Join(t.TempDir(), "corrupt.log")
		if err := os.WriteFile(p, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, discarded, err := wal.Open(p)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		l.Close()
		if len(got) != i {
			t.Fatalf("corrupt record %d: recovered %d records, want %d", i, len(got), i)
		}
		if discarded != int64(len(whole)-offsets[i]) {
			t.Fatalf("corrupt record %d: discarded %d bytes, want %d", i, discarded, len(whole)-offsets[i])
		}
	}
}

func TestLogBadHeader(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.log":   {},
		"short.log":   []byte("CFD"),
		"magic.log":   []byte("NOTWAL\x01rest"),
		"version.log": append([]byte("CFDWAL"), 99),
		"snapmag.log": append([]byte("CFDSNAP"), 1),
		"garbage.log": []byte("garbage everywhere, no structure"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := wal.Open(p); !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func sampleSnapshot() *wal.Snapshot {
	return &wal.Snapshot{
		Name:     "tenant-7",
		Relname:  "order",
		Attrs:    []string{"id", "name", "CT"},
		CFDs:     "cfd phi1: [id] -> [CT]\n(_ || _)\n",
		Ordering: 1,
		K:        2,
		NearestK: 4,
		Workers:  3,
		Batches:  11,
		Inserted: 42,
		Deleted:  5,
		Changes:  17,
		Cost:     3.25,
		NextID:   77,
		Version:  191,
		Tuples: []wal.SnapTuple{
			{ID: 3, Vals: []relation.Value{relation.S("a23"), relation.NullValue, relation.S("NYC")}},
			{ID: 1, Vals: []relation.Value{relation.S(""), relation.S("quote'y,va|l"), relation.NullValue},
				W: []float64{1, 0.25, 0.5}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	got, err := wal.DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v", got, s)
	}

	var buf bytes.Buffer
	if err := wal.WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err = wal.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("framed snapshot round trip mismatch")
	}
}

// TestSnapshotFileAtomicity: the file helper round-trips, rejects torn
// and bit-flipped images with ErrCorrupt, and never leaves a .tmp
// behind on success.
func TestSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "snap-0000000000.snap")
	s := sampleSnapshot()
	if err := wal.WriteSnapshotFile(p, s); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("snapshot write left %d entries (tmp not cleaned?)", len(ents))
	}
	got, err := wal.ReadSnapshotFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("snapshot file round trip mismatch")
	}

	whole, _ := os.ReadFile(p)
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 1
			return c
		}},
		{"trailing", func(b []byte) []byte { return append(append([]byte(nil), b...), 'x') }},
	} {
		bad := filepath.Join(dir, tc.name)
		if err := os.WriteFile(bad, tc.mut(whole), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := wal.ReadSnapshotFile(bad); !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

// TestSnapshotTruncationSafety decodes every strict prefix of a valid
// snapshot payload; all of them must error rather than yield a snapshot
// (the decoder's field-by-field truncation handling).
func TestSnapshotTruncationSafety(t *testing.T) {
	payload := sampleSnapshot().Encode()
	for cut := 0; cut < len(payload); cut++ {
		if _, err := wal.DecodeSnapshot(payload[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(payload))
		}
	}
	// Bit flips in the payload must either error or decode to a
	// *different* snapshot — never crash the decoder.
	for off := 0; off < len(payload); off++ {
		mut := append([]byte(nil), payload...)
		mut[off] ^= 0xff
		wal.DecodeSnapshot(mut) // must not panic
	}
}

// TestBatchRoundTrip fuzzes the batch codec: random op mixes must
// round-trip exactly, and every strict prefix of the encoding must fail
// to decode rather than mis-decode.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := func(n int) []relation.Value {
		out := make([]relation.Value, n)
		for i := range out {
			switch rng.Intn(3) {
			case 0:
				out[i] = relation.NullValue
			case 1:
				out[i] = relation.S("")
			default:
				out[i] = relation.S(string(rune('a' + rng.Intn(26))))
			}
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		b := &wal.Batch{PrevVersion: rng.Uint64(), Version: rng.Uint64()}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				b.Ops = append(b.Ops, relation.Delta{Kind: relation.DeltaDelete,
					T: &relation.Tuple{ID: relation.TupleID(rng.Intn(100) + 1)}})
			case 1:
				b.Ops = append(b.Ops, relation.Delta{Kind: relation.DeltaUpdate,
					T:    &relation.Tuple{ID: relation.TupleID(rng.Intn(100) + 1)},
					Attr: rng.Intn(5), Old: vals(1)[0]})
			default:
				tp := &relation.Tuple{ID: relation.TupleID(rng.Intn(3)), Vals: vals(1 + rng.Intn(4))}
				if rng.Intn(2) == 0 {
					tp.W = make([]float64, len(tp.Vals))
					for j := range tp.W {
						tp.W[j] = rng.Float64()
					}
				}
				b.Ops = append(b.Ops, relation.Delta{Kind: relation.DeltaInsert, T: tp})
			}
		}
		enc := b.Encode()
		got, err := wal.DecodeBatch(enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.PrevVersion != b.PrevVersion || got.Version != b.Version || len(got.Ops) != len(b.Ops) {
			t.Fatalf("trial %d: header mismatch", trial)
		}
		for i := range b.Ops {
			w, g := b.Ops[i], got.Ops[i]
			if w.Kind != g.Kind || w.Attr != g.Attr || w.T.ID != g.T.ID ||
				!relation.StrictEq(w.Old, g.Old) ||
				!relation.StrictEqVals(w.T.Vals, g.T.Vals) ||
				!reflect.DeepEqual(w.T.W, g.T.W) {
				t.Fatalf("trial %d op %d: %+v != %+v", trial, i, w, g)
			}
		}
		if cut := rng.Intn(len(enc)); cut < len(enc) {
			if _, err := wal.DecodeBatch(enc[:cut]); err == nil {
				t.Fatalf("trial %d: truncated batch at %d decoded", trial, cut)
			}
		}
	}
}
