package wal_test

// The golden WAL fixture: one recorded session — snapshot plus WAL —
// committed under testdata/golden/wal-session, with the expected
// post-replay state next to it. The recovery battery proves today's
// writer and today's reader agree; this test proves today's reader
// still understands *yesterday's files*. Any codec change that breaks
// previously written logs fails here loudly; the escape hatch is an
// explicit format break — bump wal.Version (the version byte both file
// headers carry) so old files are rejected as unreadable rather than
// silently misread, and regenerate the fixture with
//
//	go test ./internal/wal -run TestGoldenWALReplay -update
//
// after convincing yourself the break is worth orphaning old data dirs.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cfdclean/internal/increpair"
	"cfdclean/internal/wal"
)

var updateWALGolden = flag.Bool("update", false, "regenerate the wal-session golden fixture")

const goldenDir = "../../testdata/golden/wal-session"

// goldenMeta pins the replayed session's non-CSV state.
type goldenMeta struct {
	FormatVersion int     `json:"format_version"`
	Batches       int     `json:"batches"`
	Inserted      int     `json:"inserted"`
	Deleted       int     `json:"deleted"`
	Changes       int     `json:"changes"`
	Cost          float64 `json:"cost"`
	Watermark     int64   `json:"watermark"`
	Version       uint64  `json:"version"`
	Violations    int     `json:"violations"`
	Records       int     `json:"records"`
}

// goldenRecording regenerates the deterministic session the fixture
// pins: dirty base (so the snapshot embeds an initial cleaning), six
// random mixed batches, seed 101.
func goldenRecording(t *testing.T) *recording {
	return record(t, 101, increpair.Linear, 1, 6, true)
}

func TestGoldenWALReplay(t *testing.T) {
	if *updateWALGolden {
		rec := goldenRecording(t)
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, "snapshot.snap"), rec.snap0, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := wal.Create(filepath.Join(goldenDir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rec.payloads {
			if err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		final := rec.fps[len(rec.fps)-1]
		if err := os.WriteFile(filepath.Join(goldenDir, "expected.csv"), final.dump, 0o644); err != nil {
			t.Fatal(err)
		}
		meta := goldenMeta{
			FormatVersion: wal.Version,
			Batches:       final.snap.Batches,
			Inserted:      final.snap.Inserted,
			Deleted:       final.snap.Deleted,
			Changes:       final.snap.Changes,
			Cost:          final.snap.Cost,
			Watermark:     int64(final.snap.Watermark),
			Version:       final.snap.Version,
			Violations:    final.snap.Violations,
			Records:       len(rec.payloads),
		}
		mb, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, "expected.json"), append(mb, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("wal-session fixture regenerated")
		return
	}

	snap, err := os.ReadFile(filepath.Join(goldenDir, "snapshot.snap"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var meta goldenMeta
	mb, err := os.ReadFile(filepath.Join(goldenDir, "expected.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.FormatVersion != wal.Version {
		t.Fatalf("fixture was recorded at format version %d, reader is at %d: regenerate the fixture alongside the version bump", meta.FormatVersion, wal.Version)
	}
	expected, err := os.ReadFile(filepath.Join(goldenDir, "expected.csv"))
	if err != nil {
		t.Fatal(err)
	}

	l, payloads, discarded, err := wal.Open(filepath.Join(goldenDir, "wal.log"))
	if err != nil {
		t.Fatalf("committed wal.log no longer opens: %v", err)
	}
	l.Close()
	if discarded != 0 {
		t.Fatalf("committed wal.log reports %d damaged bytes", discarded)
	}
	if len(payloads) != meta.Records {
		t.Fatalf("committed wal.log decodes to %d records, fixture recorded %d", len(payloads), meta.Records)
	}

	for _, workers := range []int{1, 4} {
		got := restoreAndReplay(t, snap, payloads, workers)
		if !bytes.Equal(got.dump, expected) {
			t.Fatalf("workers=%d: replayed dump diverges from the committed expectation\nwant:\n%s\ngot:\n%s", workers, expected, got.dump)
		}
		if got.snap.Batches != meta.Batches || got.snap.Inserted != meta.Inserted ||
			got.snap.Deleted != meta.Deleted || got.snap.Changes != meta.Changes ||
			got.snap.Cost != meta.Cost || int64(got.snap.Watermark) != meta.Watermark ||
			got.snap.Version != meta.Version || got.snap.Violations != meta.Violations {
			t.Fatalf("workers=%d: replayed state diverges from expected.json: %+v vs %+v", workers, got.snap, meta)
		}
	}

	// The golden run must itself be reproducible: re-recording the same
	// seed today yields the committed bytes. If this fails while the
	// replay above passes, the *writer* changed — old logs still read,
	// but new logs differ; decide whether that warrants a version bump.
	rec := goldenRecording(t)
	if !bytes.Equal(rec.snap0, snap) {
		t.Fatal("re-recorded snapshot bytes differ from the committed fixture (writer changed)")
	}
	for i, p := range rec.payloads {
		if !bytes.Equal(p, payloads[i]) {
			t.Fatalf("re-recorded WAL record %d differs from the committed fixture (writer changed)", i)
		}
	}
}
