package wal_test

// The crash-recovery battery. A live streaming session is driven with
// random mutation batches while its WAL is recorded exactly the way the
// server's persister records it; the battery then kills the log at
// arbitrary byte offsets (record boundaries included), corrupts tail
// records, and replays — asserting that the recovered session is
// *byte-identical* to the live session at the same watermark: equal CSV
// dumps (bytes.Equal), equal violation listings and totals, equal
// cumulative Stats and equal published Snapshots, across restore worker
// counts 0/1/2/4 and both batch orderings. Runs under -race in CI.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

func batterySchema() *relation.Schema {
	return relation.MustSchema("order", "AC", "PN", "CT", "ST", "zip")
}

func batteryCFDs(t testing.TB, s *relation.Schema) []*cfd.Normal {
	t.Helper()
	spec := `
cfd phi1: [AC] -> [CT, ST]
(212 || NYC, NY)
(610 || PHI, PA)
(215 || PHI, PA)
cfd fd1: [zip] -> [CT]
(_ || _)
`
	parsed, err := cfd.Parse(s, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return cfd.NormalizeAll(parsed)
}

func batteryBase(t testing.TB, dirty bool) *relation.Relation {
	t.Helper()
	r := relation.New(batterySchema())
	rows := [][]string{
		{"212", "8983490", "NYC", "NY", "10012"},
		{"212", "3456789", "NYC", "NY", "10012"},
		{"610", "3345677", "PHI", "PA", "19014"},
		{"215", "5674322", "PHI", "PA", "19014"},
		{"215", "5674000", "PHI", "PA", "19014"},
		{"312", "7654321", "CHI", "IL", "60614"},
	}
	for _, row := range rows {
		r.MustInsert(relation.NewTuple(0, row...))
	}
	if dirty {
		r.MustInsert(relation.NewTuple(0, "212", "9999999", "PHI", "PA", "19014"))
		r.MustInsert(relation.NewTuple(0, "610", "8888888", "NYC", "NY", "10012"))
	}
	return r
}

// randomOps builds one valid ApplyOps batch against the session's
// current relation: a few deletes, cell updates and inserts drawn from
// value pools that collide with the constraint patterns.
func randomOps(rng *rand.Rand, cur *relation.Relation) (deletes []relation.TupleID, sets []increpair.SetOp, inserts []*relation.Tuple) {
	acs := []string{"212", "610", "215", "312"}
	pns := []string{"1000001", "1000002", "1000003", "1000004", "1000005"}
	cts := []string{"NYC", "PHI", "CHI"}
	sts := []string{"NY", "PA", "IL"}
	zips := []string{"10012", "19014", "60614"}
	pools := [][]string{acs, pns, cts, sts, zips}

	live := cur.Tuples()
	var ids []relation.TupleID
	for _, t := range live {
		ids = append(ids, t.ID)
	}
	taken := make(map[relation.TupleID]bool)

	if len(ids) > 4 && rng.Intn(2) == 0 {
		for i, n := 0, rng.Intn(2)+1; i < n; i++ {
			id := ids[rng.Intn(len(ids))]
			if !taken[id] {
				taken[id] = true
				deletes = append(deletes, id)
			}
		}
	}
	if len(ids) > 0 && rng.Intn(2) == 0 {
		for i, n := 0, rng.Intn(2)+1; i < n; i++ {
			id := ids[rng.Intn(len(ids))]
			if taken[id] {
				continue
			}
			a := rng.Intn(len(pools))
			v := relation.S(pools[a][rng.Intn(len(pools[a]))])
			if rng.Intn(8) == 0 {
				v = relation.NullValue
			}
			sets = append(sets, increpair.SetOp{ID: id, Attr: a, Value: v})
		}
	}
	for i, n := 0, rng.Intn(3)+1; i < n; i++ {
		vals := make([]relation.Value, len(pools))
		for a, p := range pools {
			vals[a] = relation.S(p[rng.Intn(len(p))])
		}
		tp := &relation.Tuple{Vals: vals}
		if rng.Intn(3) == 0 {
			tp.W = make([]float64, len(vals))
			for j := range tp.W {
				tp.W[j] = 0.25 + 0.75*rng.Float64()
			}
		}
		inserts = append(inserts, tp)
	}
	return deletes, sets, inserts
}

// fingerprint is everything the acceptance criterion compares: the CSV
// dump bytes, the full published snapshot, and the violation listing.
type fingerprint struct {
	dump  []byte
	snap  increpair.Snapshot
	vios  string
	total int
}

func capture(t testing.TB, sess *increpair.Session) fingerprint {
	t.Helper()
	var buf bytes.Buffer
	if err := sess.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	vs, total := sess.Violations(0)
	var vb strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&vb, "%d/%s/%d;", v.T, v.N.Name, v.With)
	}
	return fingerprint{dump: buf.Bytes(), snap: sess.Snapshot(), vios: vb.String(), total: total}
}

func requireEqual(t testing.TB, ctx string, want, got fingerprint) {
	t.Helper()
	if !bytes.Equal(want.dump, got.dump) {
		t.Fatalf("%s: dumps differ\nwant:\n%s\ngot:\n%s", ctx, want.dump, got.dump)
	}
	if want.snap != got.snap {
		t.Fatalf("%s: snapshots differ\nwant %+v\ngot  %+v", ctx, want.snap, got.snap)
	}
	if want.vios != got.vios || want.total != got.total {
		t.Fatalf("%s: violations differ: want %q (%d), got %q (%d)", ctx, want.vios, want.total, got.vios, got.total)
	}
}

// recording is one live run's durable artifacts: the initial snapshot,
// a mid-run snapshot, the encoded WAL records, and the fingerprint
// after every batch (fps[0] is the pre-batch initial state).
type recording struct {
	snap0    []byte
	snapMid  []byte
	midIndex int
	payloads [][]byte
	fps      []fingerprint
}

// record drives a live session through nBatches random batches exactly
// like the server's single-writer worker would, logging each accepted
// batch with its journal-version bracket.
func record(t testing.TB, seed int64, ordering increpair.Ordering, workers, nBatches int, dirtyBase bool) *recording {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sess, err := increpair.NewSession(batteryBase(t, dirtyBase), batteryCFDs(t, batterySchema()),
		&increpair.Options{Ordering: ordering, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	rec := &recording{midIndex: nBatches / 2}
	var buf bytes.Buffer
	if err := sess.Persist("battery", &buf); err != nil {
		t.Fatal(err)
	}
	rec.snap0 = append([]byte(nil), buf.Bytes()...)
	rec.fps = append(rec.fps, capture(t, sess))

	for b := 0; b < nBatches; b++ {
		deletes, sets, inserts := randomOps(rng, sess.Current())
		prev := sess.Snapshot().Version
		if _, _, err := sess.ApplyOps(deletes, sets, inserts); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		batch := wal.Batch{
			PrevVersion: prev,
			Version:     sess.Snapshot().Version,
			Ops:         increpair.OpsToDeltas(deletes, sets, inserts),
		}
		rec.payloads = append(rec.payloads, batch.Encode())
		rec.fps = append(rec.fps, capture(t, sess))
		if b+1 == rec.midIndex {
			buf.Reset()
			if err := sess.Persist("battery", &buf); err != nil {
				t.Fatal(err)
			}
			rec.snapMid = append([]byte(nil), buf.Bytes()...)
		}
	}
	return rec
}

// restoreAndReplay rebuilds a session from a snapshot and replays the
// given WAL payloads, returning its fingerprint.
func restoreAndReplay(t testing.TB, snap []byte, payloads [][]byte, workers int) fingerprint {
	t.Helper()
	sess, err := increpair.RestoreSession(bytes.NewReader(snap), workers)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i, p := range payloads {
		b, err := wal.DecodeBatch(p)
		if err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if _, err := sess.ReplayBatch(b); err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
	}
	return capture(t, sess)
}

// TestRecoveryEquivalence is the core property: for every batch prefix,
// restoring the initial snapshot and replaying the logged records
// reproduces the live session bit for bit — dumps, violations, stats,
// snapshots — at every restore worker count, for clean and dirty bases
// and both batch orderings.
func TestRecoveryEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		seed     int64
		ordering increpair.Ordering
		dirty    bool
	}{
		{"linear-clean", 1, increpair.Linear, false},
		{"linear-dirty", 2, increpair.Linear, true},
		{"vio-clean", 3, increpair.ByViolations, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := record(t, tc.seed, tc.ordering, 1, 8, tc.dirty)
			for _, workers := range []int{0, 1, 2, 4} {
				for k := 0; k <= len(rec.payloads); k++ {
					got := restoreAndReplay(t, rec.snap0, rec.payloads[:k], workers)
					requireEqual(t, fmt.Sprintf("workers=%d prefix=%d", workers, k), rec.fps[k], got)
				}
			}
		})
	}
}

// TestRecoverySkipsContainedRecords restores from the mid-run snapshot
// while replaying the *whole* log: records already contained in the
// snapshot must be skipped by the version cursor, later ones applied —
// the exact situation after a crash between snapshot rotation and WAL
// truncation.
func TestRecoverySkipsContainedRecords(t *testing.T) {
	rec := record(t, 17, increpair.Linear, 1, 8, false)
	for _, workers := range []int{1, 4} {
		got := restoreAndReplay(t, rec.snapMid, rec.payloads, workers)
		requireEqual(t, fmt.Sprintf("mid-snapshot workers=%d", workers), rec.fps[len(rec.fps)-1], got)
	}
}

// TestRecoveryKillAtArbitraryOffsets writes the recording to a real WAL
// file, truncates it at every byte offset in turn (simulating kill -9
// mid-write), and requires recovery to land exactly on the fingerprint
// of the last intact batch — committed batches before the cut are never
// lost, the torn tail is never half-applied.
func TestRecoveryKillAtArbitraryOffsets(t *testing.T) {
	rec := record(t, 23, increpair.Linear, 1, 6, false)
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0000000000.log")
	l, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int{7}
	for _, p := range rec.payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+8+len(p))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	intactAt := func(cut int) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}
	// Every record boundary, plus a deterministic sample of mid-record
	// offsets (every 7th byte) to keep the -race run quick.
	cuts := map[int]bool{}
	for _, b := range boundaries {
		cuts[b] = true
	}
	for c := 7; c <= len(whole); c += 7 {
		cuts[c] = true
	}
	for cut := range cuts {
		p := filepath.Join(t.TempDir(), "cut.log")
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, payloads, _, err := wal.Open(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		l.Close()
		k := intactAt(cut)
		if len(payloads) != k {
			t.Fatalf("cut %d: %d intact records, want %d", cut, len(payloads), k)
		}
		got := restoreAndReplay(t, rec.snap0, payloads, 2)
		requireEqual(t, fmt.Sprintf("kill at %d (batch %d)", cut, k), rec.fps[k], got)
	}
}

// TestRecoveryCorruptTail flips bytes inside the framed log — payloads
// and frame headers both — and requires the damaged suffix to be
// discarded cleanly while every batch before it survives.
func TestRecoveryCorruptTail(t *testing.T) {
	rec := record(t, 29, increpair.Linear, 1, 5, false)
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := wal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{7}
	for _, p := range rec.payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, offsets[len(offsets)-1]+8+len(p))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, _ := os.ReadFile(path)

	for recI := 0; recI < len(rec.payloads); recI++ {
		for _, delta := range []int{0, 4, 8, 12} { // length, crc, payload bytes
			off := offsets[recI] + delta
			if off >= offsets[recI+1] {
				continue
			}
			corrupted := append([]byte(nil), whole...)
			corrupted[off] ^= 0x5a
			p := filepath.Join(t.TempDir(), "bad.log")
			if err := os.WriteFile(p, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}
			l, payloads, discarded, err := wal.Open(p)
			if err != nil {
				t.Fatalf("corrupt rec %d+%d: %v", recI, delta, err)
			}
			l.Close()
			if len(payloads) > recI {
				t.Fatalf("corrupt rec %d+%d: %d records survived damage at record %d", recI, delta, len(payloads), recI)
			}
			if len(payloads) == recI && discarded == 0 {
				t.Fatalf("corrupt rec %d+%d: no bytes discarded", recI, delta)
			}
			got := restoreAndReplay(t, rec.snap0, payloads, 1)
			requireEqual(t, fmt.Sprintf("corrupt rec %d+%d", recI, delta), rec.fps[len(payloads)], got)
		}
	}
}

// TestReplayDetectsGaps: a record whose PrevVersion does not meet the
// session's cursor must be rejected, not applied — a hole in the log
// means the recovered state cannot be trusted.
func TestReplayDetectsGaps(t *testing.T) {
	rec := record(t, 31, increpair.Linear, 1, 4, false)
	sess, err := increpair.RestoreSession(bytes.NewReader(rec.snap0), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Skip record 0, try record 1: gap.
	b, err := wal.DecodeBatch(rec.payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ReplayBatch(b); err == nil {
		t.Fatal("replay accepted a batch across a log hole")
	}
	// Record 0 still applies (the failed attempt must not have mutated).
	b0, _ := wal.DecodeBatch(rec.payloads[0])
	if applied, err := sess.ReplayBatch(b0); err != nil || !applied {
		t.Fatalf("replay of the in-order record failed: applied=%v err=%v", applied, err)
	}
	requireEqual(t, "after gap rejection", rec.fps[1], capture(t, sess))

	// Replaying the same record again is an idempotent no-op.
	if applied, err := sess.ReplayBatch(b0); err != nil || applied {
		t.Fatalf("duplicate replay: applied=%v err=%v", applied, err)
	}
}

// TestRestoredSessionKeepsWorking: recovery is not just a postmortem —
// the restored session accepts further batches, and those batches
// produce the same results the never-crashed session produces.
func TestRestoredSessionKeepsWorking(t *testing.T) {
	rec := record(t, 37, increpair.Linear, 1, 4, false)
	live, err := increpair.RestoreSession(bytes.NewReader(rec.snap0), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	for _, p := range rec.payloads {
		b, _ := wal.DecodeBatch(p)
		if _, err := live.ReplayBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Same post-recovery traffic against the recovered session and a
	// twin restored the same way must agree fingerprint for fingerprint.
	twin, err := increpair.RestoreSession(bytes.NewReader(rec.snap0), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for _, p := range rec.payloads {
		b, _ := wal.DecodeBatch(p)
		if _, err := twin.ReplayBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for b := 0; b < 3; b++ {
		deletes, sets, inserts := randomOps(rng, live.Current())
		cloned := make([]*relation.Tuple, len(inserts))
		for i, tp := range inserts {
			cloned[i] = tp.Clone()
		}
		if _, _, err := live.ApplyOps(deletes, sets, inserts); err != nil {
			t.Fatal(err)
		}
		if _, _, err := twin.ApplyOps(append([]relation.TupleID(nil), deletes...), append([]increpair.SetOp(nil), sets...), cloned); err != nil {
			t.Fatal(err)
		}
		requireEqual(t, fmt.Sprintf("post-recovery batch %d", b), capture(t, live), capture(t, twin))
	}
}
