package metrics

import (
	"strings"
	"testing"

	"cfdclean/internal/relation"
)

// mini builds a 2-attribute relation from rows of "a|b" strings; ids are
// assigned 1..n so the three relations of Evaluate stay aligned.
func mini(t *testing.T, rows ...string) *relation.Relation {
	t.Helper()
	s := relation.MustSchema("r", "A", "B")
	r := relation.New(s)
	for i, row := range rows {
		parts := strings.SplitN(row, "|", 2)
		tp := relation.NewTuple(relation.TupleID(i+1), parts[0], parts[1])
		r.MustInsert(tp)
	}
	return r
}

func TestPerfectRepair(t *testing.T) {
	d := mini(t, "x|1", "y|2")
	opt := mini(t, "x|1", "y|9")
	repr := mini(t, "x|1", "y|9")
	q, err := Evaluate(d, repr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Noises != 1 || q.Changes != 1 || q.Corrected != 1 {
		t.Fatalf("got %+v", q)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Fatalf("precision=%v recall=%v, want 1/1", q.Precision, q.Recall)
	}
	if q.Residual != 0 {
		t.Fatalf("residual = %d, want 0", q.Residual)
	}
}

func TestNoChanges(t *testing.T) {
	d := mini(t, "x|1")
	opt := mini(t, "x|2")
	q, err := Evaluate(d, d.Clone(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing repaired: precision is vacuously 1, recall 0.
	if q.Precision != 1 {
		t.Fatalf("precision = %v, want 1 (no changes)", q.Precision)
	}
	if q.Recall != 0 {
		t.Fatalf("recall = %v, want 0", q.Recall)
	}
}

func TestNoNoise(t *testing.T) {
	d := mini(t, "x|1")
	q, err := Evaluate(d, d.Clone(), d.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Fatalf("clean input: precision=%v recall=%v", q.Precision, q.Recall)
	}
}

func TestIntroducedNoise(t *testing.T) {
	d := mini(t, "x|1", "y|2")
	opt := mini(t, "x|1", "y|2")  // input was already clean
	repr := mini(t, "x|1", "z|2") // repair broke a cell
	q, err := Evaluate(d, repr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes != 1 || q.Corrected != 0 {
		t.Fatalf("got %+v", q)
	}
	if q.Precision != 0 {
		t.Fatalf("precision = %v, want 0", q.Precision)
	}
	if q.Residual != 1 {
		t.Fatalf("residual = %d, want 1", q.Residual)
	}
}

func TestMixedRepair(t *testing.T) {
	// Two noisy cells; the repair fixes one, misses one, and breaks a
	// clean cell.
	d := mini(t, "x|1", "y|2", "z|3")
	opt := mini(t, "X|1", "Y|2", "z|3")
	repr := mini(t, "X|1", "y|2", "z|9")
	q, err := Evaluate(d, repr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Noises != 2 || q.Changes != 2 || q.Corrected != 1 {
		t.Fatalf("got %+v", q)
	}
	if q.Precision != 0.5 || q.Recall != 0.5 {
		t.Fatalf("precision=%v recall=%v, want 0.5/0.5", q.Precision, q.Recall)
	}
	// Residual: the missed noise (y) plus the new break (z).
	if q.Residual != 2 {
		t.Fatalf("residual = %d, want 2", q.Residual)
	}
}

func TestNullCounting(t *testing.T) {
	// A null over a correct value is an error; a null over noise is a
	// correction only if Dopt is null there — otherwise the cell stays
	// wrong but differs from both.
	s := relation.MustSchema("r", "A")
	d := relation.New(s)
	d.MustInsert(relation.NewTuple(1, "noisy"))
	opt := relation.New(s)
	opt.MustInsert(relation.NewTuple(1, "right"))
	repr := relation.New(s)
	tp := relation.NewTuple(1, "x")
	tp.Vals[0] = relation.NullValue
	repr.MustInsert(tp)
	q, err := Evaluate(d, repr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes != 1 || q.Corrected != 0 || q.Residual != 1 {
		t.Fatalf("null over noise without null truth: %+v", q)
	}
}

func TestSizeMismatch(t *testing.T) {
	d := mini(t, "x|1")
	opt := mini(t, "x|1", "y|2")
	if _, err := Evaluate(d, d.Clone(), opt); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestAccuracy(t *testing.T) {
	repr := mini(t, "x|1", "y|2")
	opt := mini(t, "x|1", "y|9")
	// 1 of 4 cells differs.
	if got := Accuracy(repr, opt); got != 0.25 {
		t.Fatalf("Accuracy = %v, want 0.25", got)
	}
	if got := Accuracy(repr, repr.Clone()); got != 0 {
		t.Fatalf("Accuracy(self) = %v, want 0", got)
	}
}

func TestQualityString(t *testing.T) {
	q := &Quality{Noises: 10, Changes: 8, Corrected: 7, Precision: 0.875, Recall: 0.7}
	s := q.String()
	if !strings.Contains(s, "precision") || !strings.Contains(s, "recall") {
		t.Fatalf("String() = %q", s)
	}
}
