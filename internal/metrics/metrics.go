// Package metrics implements the repair-quality measures of §7.1.
//
// A repair can err in two ways: noise it failed to fix, and new noise it
// introduced. Following the paper, both are captured by Precision and
// Recall over attribute-level differences:
//
//	noises    = dif(D, Dopt)                 — cells the noise changed
//	changes   = dif(D, Repr)                 — cells the repair changed
//	corrected = dif(D, Repr) − dif(Dopt, Repr)
//	Precision = corrected / changes          — repair correctness
//	Recall    = corrected / noises           — repair completeness
//
// A null written over a correct value counts as an error; a null written
// over noise counts as a correction (§7.1).
package metrics

import (
	"fmt"

	"cfdclean/internal/cost"
	"cfdclean/internal/relation"
)

// Quality holds the accuracy measures of one repair.
type Quality struct {
	// Noises is dif(D, Dopt): the number of noisy cells in the input.
	Noises int
	// Changes is dif(D, Repr): cells the repairing algorithm modified.
	Changes int
	// Corrected is the number of noisy cells correctly repaired.
	Corrected int
	// Precision = Corrected / Changes; 1 when no changes were made.
	Precision float64
	// Recall = Corrected / Noises; 1 when there was no noise.
	Recall float64
	// Residual is dif(Dopt, Repr): cells still wrong after the repair —
	// unfixed noise plus newly introduced errors.
	Residual int
}

// Evaluate computes repair quality given the dirty input d, the repair
// repr, and the ground truth dopt. All three must share tuple ids.
func Evaluate(d, repr, dopt *relation.Relation) (*Quality, error) {
	if d.Size() != dopt.Size() || repr.Size() != d.Size() {
		return nil, fmt.Errorf("metrics: relation sizes differ: D=%d Repr=%d Dopt=%d",
			d.Size(), repr.Size(), dopt.Size())
	}
	q := &Quality{
		Noises:   cost.Dif(d, dopt),
		Changes:  cost.Dif(d, repr),
		Residual: cost.Dif(dopt, repr),
	}
	// §7.1 computes corrected as dif(D, Repr) − dif(Dopt, Repr), which
	// under-counts when noisy cells are left untouched (they appear in
	// the subtrahend); we count the corrected cells directly instead.
	q.Corrected = corrected(d, repr, dopt)
	if q.Changes > 0 {
		q.Precision = float64(q.Corrected) / float64(q.Changes)
	} else {
		q.Precision = 1
	}
	if q.Noises > 0 {
		q.Recall = float64(q.Corrected) / float64(q.Noises)
	} else {
		q.Recall = 1
	}
	return q, nil
}

// corrected counts cells that were noisy in d (≠ Dopt) and are equal to
// Dopt in the repair.
func corrected(d, repr, dopt *relation.Relation) int {
	n := 0
	for _, td := range d.Tuples() {
		to := dopt.Tuple(td.ID)
		tr := repr.Tuple(td.ID)
		if to == nil || tr == nil {
			continue
		}
		for a := range td.Vals {
			if !relation.StrictEq(td.Vals[a], to.Vals[a]) &&
				relation.StrictEq(tr.Vals[a], to.Vals[a]) {
				n++
			}
		}
	}
	return n
}

// Accuracy returns |dif(Repr, Dopt)| / |Dopt| measured at attribute
// level — the bound the sampling module guarantees (§1, §3.3).
func Accuracy(repr, dopt *relation.Relation) float64 {
	cells := cost.Cells(dopt)
	if cells == 0 {
		return 0
	}
	return float64(cost.Dif(repr, dopt)) / float64(cells)
}

// String renders the quality as a one-line summary.
func (q *Quality) String() string {
	return fmt.Sprintf("precision=%.4f recall=%.4f (noises=%d changes=%d corrected=%d residual=%d)",
		q.Precision, q.Recall, q.Noises, q.Changes, q.Corrected, q.Residual)
}
