package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	if h.Snapshot() != nil {
		t.Fatal("empty histogram must snapshot to nil")
	}
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := map[float64]uint64{0.01: 2, 0.1: 1, 1: 1}
	for _, b := range s.Buckets {
		if b.Count != want[b.LE] {
			t.Fatalf("bucket le=%g count=%d, want %d", b.LE, b.Count, want[b.LE])
		}
		delete(want, b.LE)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}
	if s.Overflow != 2 {
		t.Fatalf("overflow = %d, want 2", s.Overflow)
	}
	if s.Mean <= 0 || s.Sum <= 0 {
		t.Fatalf("sum/mean: %+v", s)
	}
	// The snapshot must be JSON-safe (no +Inf bound anywhere).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not serialize: %v", err)
	}
}

// TestHistogramCumulative pins the Prometheus exposition semantics of
// the conversion: one bucket per bound plus +Inf, each counting
// observations <= its bound (cumulative, monotone non-decreasing),
// empty buckets retained, and the +Inf bucket equal to the total count.
func TestHistogramCumulative(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1, 10}
	h := NewHistogram(bounds...)

	// Empty histogram: full bucket layout, all zeros.
	buckets, count, sum := h.Cumulative()
	if len(buckets) != len(bounds)+1 || count != 0 || sum != 0 {
		t.Fatalf("empty cumulative: %v count=%d sum=%g", buckets, count, sum)
	}
	for _, b := range buckets {
		if b.Count != 0 {
			t.Fatalf("empty histogram has non-zero bucket: %+v", b)
		}
	}

	obs := []float64{0.005, 0.01, 0.05, 0.5, 1, 2, 50, 60}
	for _, v := range obs {
		h.Observe(v)
	}
	buckets, count, sum = h.Cumulative()
	if count != uint64(len(obs)) {
		t.Fatalf("count = %d, want %d", count, len(obs))
	}
	// Each bucket's count must equal the direct count of observations at
	// or below its bound — the Prometheus definition of le.
	var prev uint64
	for i, b := range buckets {
		want := uint64(0)
		for _, v := range obs {
			if v <= b.LE {
				want++
			}
		}
		if b.Count != want {
			t.Fatalf("bucket le=%g count=%d, want %d", b.LE, b.Count, want)
		}
		if b.Count < prev {
			t.Fatalf("bucket %d not monotone: %d after %d", i, b.Count, prev)
		}
		prev = b.Count
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.LE, 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", last.LE)
	}
	if last.Count != count {
		t.Fatalf("+Inf bucket %d != count %d", last.Count, count)
	}
	var wantSum float64
	for _, v := range obs {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
	// Cumulative and Snapshot describe the same state.
	if s := h.Snapshot(); s.Count != count || s.Sum != sum {
		t.Fatalf("snapshot disagrees with cumulative: %+v vs count=%d sum=%g", s, count, sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
