package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	if h.Snapshot() != nil {
		t.Fatal("empty histogram must snapshot to nil")
	}
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := map[float64]uint64{0.01: 2, 0.1: 1, 1: 1}
	for _, b := range s.Buckets {
		if b.Count != want[b.LE] {
			t.Fatalf("bucket le=%g count=%d, want %d", b.LE, b.Count, want[b.LE])
		}
		delete(want, b.LE)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}
	if s.Overflow != 2 {
		t.Fatalf("overflow = %d, want 2", s.Overflow)
	}
	if s.Mean <= 0 || s.Sum <= 0 {
		t.Fatalf("sum/mean: %+v", s)
	}
	// The snapshot must be JSON-safe (no +Inf bound anywhere).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not serialize: %v", err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
