// Operational metrics. Besides the paper's repair-quality measures,
// the long-running service (internal/server, cmd/cfdserved) needs
// cheap, concurrency-safe instruments for its hot paths: pass latency,
// WAL append→fsync lag, coalesce fold sizes. A fixed-bucket histogram
// covers all of them — bounded memory, lock per observation, and a
// JSON-ready snapshot for the /v1/metrics endpoint.

package metrics

import (
	"math"
	"sync"
)

// Histogram is a fixed-bucket histogram safe for concurrent use. Bounds
// are upper bucket edges in increasing order; an observation lands in
// the first bucket whose bound is >= the value, or in the overflow
// bucket past the last bound. Observations are a mutex and two adds —
// cheap enough for per-request paths.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1: the last slot is the overflow bucket
	n      uint64
	sum    float64
}

// NewHistogram builds a histogram over the given upper bucket bounds
// (must be increasing; the overflow bucket is implicit).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Bucket is one histogram bucket in a snapshot: Count observations with
// value <= LE (per-bucket counts, not cumulative).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot is a point-in-time copy of a histogram, shaped for JSON.
// Overflow counts observations past the last bucket bound (kept out of
// Buckets because +Inf does not serialize).
type Snapshot struct {
	Count    uint64   `json:"count"`
	Sum      float64  `json:"sum"`
	Mean     float64  `json:"mean"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow uint64   `json:"overflow,omitempty"`
}

// CumBucket is one Prometheus-style cumulative bucket: Count is the
// number of observations with value <= LE, and the final bucket's LE is
// +Inf (its count equals the total observation count).
type CumBucket struct {
	LE    float64
	Count uint64
}

// Cumulative converts the histogram into Prometheus exposition
// semantics: one bucket per configured bound plus the +Inf bucket, each
// carrying the cumulative count of observations at or below its bound.
// Unlike Snapshot, empty buckets are kept — a scraper needs the full
// bucket layout to compute quantiles — and an unobserved histogram
// returns all-zero buckets rather than nil, so idle series still
// expose their shape.
func (h *Histogram) Cumulative() (buckets []CumBucket, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets = make([]CumBucket, 0, len(h.bounds)+1)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		buckets = append(buckets, CumBucket{LE: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)]
	buckets = append(buckets, CumBucket{LE: math.Inf(1), Count: cum})
	return buckets, h.n, h.sum
}

// Snapshot copies the current state; nil when nothing was observed, so
// idle instruments vanish from JSON via omitempty.
func (h *Histogram) Snapshot() *Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return nil
	}
	s := &Snapshot{Count: h.n, Sum: h.sum, Mean: h.sum / float64(h.n)}
	for i, b := range h.bounds {
		if h.counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{LE: b, Count: h.counts[i]})
		}
	}
	s.Overflow = h.counts[len(h.bounds)]
	return s
}
