package metrics

import (
	"testing"

	"cfdclean/internal/gen"
	"cfdclean/internal/relation"
)

// These tests pin the precision/recall computation against the noise
// injector: gen.New knows exactly which cells it perturbed (NoisyCells,
// and the Dirty/Opt diff), so every measure has a hand-computable
// expected value for repairs we construct cell by cell.

func genDataset(t *testing.T) *gen.Dataset {
	t.Helper()
	ds, err := gen.New(gen.Config{Size: 200, NoiseRate: 0.10, ConstShare: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NoisyCells == 0 {
		t.Fatal("generator injected no noise; test is vacuous")
	}
	return ds
}

// noisyCells enumerates the injected noise as (tuple, attr) pairs in
// canonical order.
func noisyCells(ds *gen.Dataset) [][2]int {
	var out [][2]int
	for _, tu := range ds.Opt.Tuples() {
		dirty := ds.Dirty.Tuple(tu.ID)
		for a := range tu.Vals {
			if !relation.StrictEq(tu.Vals[a], dirty.Vals[a]) {
				out = append(out, [2]int{int(tu.ID), a})
			}
		}
	}
	return out
}

// TestPerfectRepairScoresOne: handing back the ground truth corrects
// every injected cell and touches nothing else.
func TestPerfectRepairScoresOne(t *testing.T) {
	ds := genDataset(t)
	q, err := Evaluate(ds.Dirty, ds.Opt, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Noises != ds.NoisyCells {
		t.Errorf("Noises = %d, generator injected %d", q.Noises, ds.NoisyCells)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Errorf("perfect repair scored %v", q)
	}
	if q.Changes != ds.NoisyCells || q.Corrected != ds.NoisyCells || q.Residual != 0 {
		t.Errorf("perfect repair counters: %+v", q)
	}
}

// TestNoopRepairScores: returning the dirty database unchanged has
// precision 1 by convention (no changes, none wrong) and recall 0.
func TestNoopRepairScores(t *testing.T) {
	ds := genDataset(t)
	q, err := Evaluate(ds.Dirty, ds.Dirty, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes != 0 || q.Corrected != 0 {
		t.Errorf("noop repair counters: %+v", q)
	}
	if q.Precision != 1 {
		t.Errorf("noop precision = %v, want 1 (convention)", q.Precision)
	}
	if q.Recall != 0 {
		t.Errorf("noop recall = %v, want 0", q.Recall)
	}
	if q.Residual != ds.NoisyCells {
		t.Errorf("noop residual = %d, want %d", q.Residual, ds.NoisyCells)
	}
}

// TestHalfRepairMatchesHandComputedPR: fixing exactly the first half of
// the injected cells (from ground truth) yields precision 1 and recall
// fixed/noises, computed by hand from the generator's bookkeeping.
func TestHalfRepairMatchesHandComputedPR(t *testing.T) {
	ds := genDataset(t)
	cells := noisyCells(ds)
	k := len(cells) / 2
	repr := ds.Dirty.Clone()
	for _, c := range cells[:k] {
		id, a := relation.TupleID(c[0]), c[1]
		if _, err := repr.Set(id, a, ds.Opt.Tuple(id).Vals[a]); err != nil {
			t.Fatal(err)
		}
	}
	q, err := Evaluate(ds.Dirty, repr, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes != k || q.Corrected != k {
		t.Errorf("fixed %d cells, measured changes=%d corrected=%d", k, q.Changes, q.Corrected)
	}
	if q.Precision != 1 {
		t.Errorf("precision = %v, want 1", q.Precision)
	}
	want := float64(k) / float64(ds.NoisyCells)
	if q.Recall != want {
		t.Errorf("recall = %v, want %v (%d/%d)", q.Recall, want, k, ds.NoisyCells)
	}
	if q.Residual != ds.NoisyCells-k {
		t.Errorf("residual = %d, want %d", q.Residual, ds.NoisyCells-k)
	}
}

// TestBotchedRepairPenalizesWrongWrites: fixing half the noise but also
// overwriting clean cells with garbage drops precision exactly by the
// garbage share, and residual counts both the unfixed noise and the new
// damage.
func TestBotchedRepairPenalizesWrongWrites(t *testing.T) {
	ds := genDataset(t)
	cells := noisyCells(ds)
	k := len(cells) / 2
	repr := ds.Dirty.Clone()
	for _, c := range cells[:k] {
		id, a := relation.TupleID(c[0]), c[1]
		if _, err := repr.Set(id, a, ds.Opt.Tuple(id).Vals[a]); err != nil {
			t.Fatal(err)
		}
	}
	// Damage g clean cells: attribute 0 of tuples the injector left
	// untouched (values there always differ from "!!garbage!!").
	g := 0
	dirtySet := make(map[relation.TupleID]bool)
	for _, id := range ds.DirtyIDs {
		dirtySet[id] = true
	}
	for _, tu := range ds.Opt.Tuples() {
		if g >= 10 {
			break
		}
		if dirtySet[tu.ID] {
			continue
		}
		if _, err := repr.Set(tu.ID, 0, relation.S("!!garbage!!")); err != nil {
			t.Fatal(err)
		}
		g++
	}
	q, err := Evaluate(ds.Dirty, repr, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes != k+g || q.Corrected != k {
		t.Errorf("changes=%d corrected=%d, want %d and %d", q.Changes, q.Corrected, k+g, k)
	}
	wantP := float64(k) / float64(k+g)
	if q.Precision != wantP {
		t.Errorf("precision = %v, want %v", q.Precision, wantP)
	}
	if q.Residual != ds.NoisyCells-k+g {
		t.Errorf("residual = %d, want %d", q.Residual, ds.NoisyCells-k+g)
	}
}
