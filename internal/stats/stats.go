// Package stats provides the statistical machinery of the sampling module
// (§6): the normal approximation to the binomial test statistic, critical
// values at a confidence level, the Chernoff-bound sample-size rule of
// Theorem 6.1, and Vitter's reservoir sampling [33].
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// NormalQuantile returns Φ⁻¹(p) for p ∈ (0,1): the x with Φ(x) = p.
// Computed by bisection on the CDF — 80 iterations give ~1e-15 accuracy,
// and the sampling module calls this a handful of times per run.
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile probability %v outside (0,1)", p)
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// CriticalValue returns z_α for confidence level δ, with α = 1 − δ: the
// value with Φ(z_α) = 1 − α = δ. The one-sided test of §6 rejects the
// null hypothesis ("the inaccuracy rate is above ε") when z ≤ −z_α.
func CriticalValue(delta float64) (float64, error) {
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("stats: confidence level %v outside (0,1)", delta)
	}
	return NormalQuantile(delta)
}

// ZStatistic computes z = (p̂ − ε)/sqrt(ε(1−ε)/k) for inaccuracy rate p̂
// observed in a sample of size k against the bound ε (§6 "Statistical
// Test"). The binomial count of inaccurate tuples is approximated by a
// normal for large enough k.
func ZStatistic(pHat, eps float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("stats: sample size %d must be positive", k)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("stats: bound ε = %v outside (0,1)", eps)
	}
	if pHat < 0 || pHat > 1 {
		return 0, fmt.Errorf("stats: p̂ = %v outside [0,1]", pHat)
	}
	return (pHat - eps) / math.Sqrt(eps*(1-eps)/float64(k)), nil
}

// AcceptRepair runs the one-sided test of §6: it returns true when
// z ≤ −z_α, i.e. when the sample supports — at confidence δ — rejecting
// the hypothesis that the repair's inaccuracy rate exceeds ε.
func AcceptRepair(pHat, eps, delta float64, k int) (accept bool, z, zAlpha float64, err error) {
	z, err = ZStatistic(pHat, eps, k)
	if err != nil {
		return false, 0, 0, err
	}
	zAlpha, err = CriticalValue(delta)
	if err != nil {
		return false, 0, 0, err
	}
	return z <= -zAlpha, z, zAlpha, nil
}

// ChernoffSampleSize returns the smallest k satisfying Theorem 6.1: for a
// sample of size k, the probability that at least c inaccurate tuples
// appear (when the true inaccuracy rate is ε) is at least δ. Intuitively,
// the lower the inaccuracy rate, the larger the sample needed for
// inaccurate tuples to show up at all.
func ChernoffSampleSize(c float64, eps, delta float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("stats: ε = %v outside (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("stats: δ = %v outside (0,1)", delta)
	}
	if c <= 0 {
		return 0, fmt.Errorf("stats: c = %v must be positive", c)
	}
	ln := math.Log(1 / (1 - delta))
	k := c/eps + ln/eps + math.Sqrt(ln*ln+2*c*ln)/eps
	return int(math.Ceil(k)) + 1, nil // strict inequality in the theorem
}

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of items, using Vitter's algorithm R [33]: one pass, constant
// space.
type Reservoir[T any] struct {
	items []T
	cap   int
	seen  int
	rng   *rand.Rand
}

// NewReservoir creates a reservoir holding up to capacity items, driven
// by the given source (nil seeds from 1 for determinism in tests).
func NewReservoir[T any](capacity int, rng *rand.Rand) *Reservoir[T] {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Reservoir[T]{cap: capacity, rng: rng}
}

// Add offers one stream item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.cap {
		r.items[j] = item
	}
}

// Items returns the current sample (shared slice; do not modify).
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns how many items have been offered.
func (r *Reservoir[T]) Seen() int { return r.seen }
