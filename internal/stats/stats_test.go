package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{1.645, 0.95},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("Φ(%v) = %v, want ≈%v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98) + 0.01 // into (0.01, 0.99)
		x, err := NormalQuantile(p)
		if err != nil {
			return false
		}
		return math.Abs(NormalCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := NormalQuantile(0); err == nil {
		t.Error("quantile at 0 must fail")
	}
	if _, err := NormalQuantile(1); err == nil {
		t.Error("quantile at 1 must fail")
	}
}

func TestCriticalValue(t *testing.T) {
	z, err := CriticalValue(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1.6449) > 1e-3 {
		t.Errorf("z for δ=0.95 = %v, want ≈1.645", z)
	}
	if _, err := CriticalValue(1.5); err == nil {
		t.Error("δ outside (0,1) must fail")
	}
}

func TestZStatistic(t *testing.T) {
	// p̂ = ε gives z = 0.
	z, err := ZStatistic(0.05, 0.05, 100)
	if err != nil || z != 0 {
		t.Errorf("z(p̂=ε) = %v, %v", z, err)
	}
	// Lower observed inaccuracy gives negative z.
	z, _ = ZStatistic(0.01, 0.05, 400)
	if z >= 0 {
		t.Errorf("z = %v, want negative", z)
	}
	// Known value: (0.02-0.05)/sqrt(0.05*0.95/100) = -0.03/0.02179 ≈ -1.3765.
	z, _ = ZStatistic(0.02, 0.05, 100)
	if math.Abs(z-(-1.3765)) > 1e-3 {
		t.Errorf("z = %v, want ≈-1.3765", z)
	}
	for _, bad := range []struct {
		p, e float64
		k    int
	}{{-0.1, 0.05, 10}, {0.5, 0, 10}, {0.5, 1, 10}, {0.5, 0.5, 0}} {
		if _, err := ZStatistic(bad.p, bad.e, bad.k); err == nil {
			t.Errorf("ZStatistic(%v) should fail", bad)
		}
	}
}

func TestAcceptRepair(t *testing.T) {
	// A clean sample of decent size is accepted at ε=5%, δ=0.95.
	ok, z, za, err := AcceptRepair(0.0, 0.05, 0.95, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("clean sample must be accepted: z=%v zα=%v", z, za)
	}
	// A sample at exactly the bound is not accepted.
	ok, _, _, err = AcceptRepair(0.05, 0.05, 0.95, 200)
	if err != nil || ok {
		t.Error("sample at the bound must not be accepted")
	}
	// A very dirty sample is rejected.
	ok, _, _, _ = AcceptRepair(0.5, 0.05, 0.95, 200)
	if ok {
		t.Error("dirty sample must be rejected")
	}
}

func TestChernoffSampleSize(t *testing.T) {
	k, err := ChernoffSampleSize(5, 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: at ε=5%, expecting ≥5 inaccurate tuples with 95% confidence
	// needs a few hundred samples; the bound must exceed the naive c/ε.
	if k <= 100 {
		t.Errorf("Chernoff size %d suspiciously small", k)
	}
	// Monotonicity: lower ε requires larger samples.
	k2, _ := ChernoffSampleSize(5, 0.01, 0.95)
	if k2 <= k {
		t.Errorf("lower ε must need more samples: %d vs %d", k2, k)
	}
	// Higher confidence requires larger samples.
	k3, _ := ChernoffSampleSize(5, 0.05, 0.99)
	if k3 <= k {
		t.Errorf("higher δ must need more samples: %d vs %d", k3, k)
	}
	for _, bad := range []struct{ c, e, d float64 }{{0, 0.05, 0.9}, {5, 0, 0.9}, {5, 0.05, 1}} {
		if _, err := ChernoffSampleSize(bad.c, bad.e, bad.d); err == nil {
			t.Errorf("ChernoffSampleSize(%v) should fail", bad)
		}
	}
}

// TestChernoffGuarantee verifies the theorem empirically: drawing samples
// of the recommended size, at least c inaccurate items appear with
// frequency ≥ δ (up to simulation noise).
func TestChernoffGuarantee(t *testing.T) {
	const (
		eps   = 0.05
		delta = 0.9
		c     = 3.0
	)
	k, err := ChernoffSampleSize(c, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	trials := 2000
	hits := 0
	for i := 0; i < trials; i++ {
		bad := 0
		for j := 0; j < k; j++ {
			if rng.Float64() < eps {
				bad++
			}
		}
		if float64(bad) >= c {
			hits++
		}
	}
	freq := float64(hits) / float64(trials)
	if freq < delta-0.02 {
		t.Errorf("observed hit rate %v below guaranteed δ=%v (k=%d)", freq, delta, k)
	}
}

func TestReservoirBasics(t *testing.T) {
	r := NewReservoir[int](3, nil)
	for i := 0; i < 10; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 3 {
		t.Fatalf("reservoir holds %d, want 3", len(r.Items()))
	}
	if r.Seen() != 10 {
		t.Errorf("Seen = %d", r.Seen())
	}
	// Fewer items than capacity: all kept.
	r2 := NewReservoir[string](5, nil)
	r2.Add("a")
	r2.Add("b")
	if len(r2.Items()) != 2 {
		t.Errorf("small stream must keep everything")
	}
}

// TestReservoirUniformity: over many runs, each stream position is
// selected with roughly equal probability.
func TestReservoirUniformity(t *testing.T) {
	const n, k, runs = 20, 5, 20000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for run := 0; run < runs; run++ {
		r := NewReservoir[int](k, rng)
		for i := 0; i < n; i++ {
			r.Add(i)
		}
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	want := float64(runs) * k / n // 5000
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Errorf("position %d selected %d times, want ≈%.0f", i, c, want)
		}
	}
}
