// Package sampling implements the paper's sampling module (§6): the
// accuracy of an automatically generated repair is estimated by letting a
// (possibly simulated) domain expert inspect a stratified sample, and the
// repair is accepted only when a one-sided z-test supports — at
// confidence δ — that its inaccuracy rate lies below the bound ε.
//
// Tuples are stratified by how dirty they originally were (vio(t), §3.1):
// heavily violating tuples are more likely to have been repaired wrongly,
// so higher strata receive larger sampling coefficients. Samples within a
// stratum are drawn by reservoir sampling in one pass and constant space.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
	"cfdclean/internal/stats"
)

// User inspects repaired tuples and flags the ones that fall short of
// expectation (§6). Implementations range from interactive review to the
// oracle used in the paper's own evaluation.
type User interface {
	// Inspect returns the ids of the sample tuples judged inaccurate.
	Inspect(sample []*relation.Tuple) []relation.TupleID
}

// Oracle is the paper's evaluation shortcut (§7.1): with the correct
// database Dopt known, a repaired tuple is inaccurate iff it differs from
// its Dopt counterpart. It also supplies corrections, playing the "user
// edits the sample" role in the framework loop (Fig. 3).
type Oracle struct {
	Opt *relation.Relation
}

// Inspect flags sample tuples differing from Dopt.
func (o *Oracle) Inspect(sample []*relation.Tuple) []relation.TupleID {
	var out []relation.TupleID
	for _, t := range sample {
		want := o.Opt.Tuple(t.ID)
		if want == nil || !relation.StrictEqVals(t.Vals, want.Vals) {
			out = append(out, t.ID)
		}
	}
	return out
}

// Correct returns the Dopt version of the tuple, standing in for a manual
// edit; ok is false when Dopt has no counterpart.
func (o *Oracle) Correct(id relation.TupleID) (*relation.Tuple, bool) {
	t := o.Opt.Tuple(id)
	if t == nil {
		return nil, false
	}
	return t.Clone(), true
}

// Options configures a sampling evaluation.
type Options struct {
	// Eps is the predefined inaccuracy bound ε; Delta the confidence δ.
	Eps, Delta float64
	// SampleSize is the total draw k; 0 derives it from Theorem 6.1 with
	// ExpectBad inaccurate tuples expected in the sample.
	SampleSize int
	// ExpectBad is the constant c of Theorem 6.1 (default 5).
	ExpectBad float64
	// VioThresholds are the ascending stratum boundaries over vio(t):
	// stratum i holds tuples with vio(t) in [threshold[i-1], threshold[i])
	// and the last stratum is open-ended. Default {1, 3} (three strata:
	// clean, lightly violating, heavily violating).
	VioThresholds []int
	// Xi are the per-stratum sampling coefficients ξ_i (ascending, summing
	// to 1; §6). Default {0.2, 0.3, 0.5}.
	Xi []float64
	// Rng drives the reservoirs; nil seeds deterministically.
	Rng *rand.Rand
}

func (o Options) withDefaults() (Options, error) {
	if o.Eps <= 0 || o.Eps >= 1 {
		return o, fmt.Errorf("sampling: ε = %v outside (0,1)", o.Eps)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return o, fmt.Errorf("sampling: δ = %v outside (0,1)", o.Delta)
	}
	if o.ExpectBad <= 0 {
		o.ExpectBad = 5
	}
	if o.SampleSize == 0 {
		k, err := stats.ChernoffSampleSize(o.ExpectBad, o.Eps, o.Delta)
		if err != nil {
			return o, err
		}
		o.SampleSize = k
	}
	if o.SampleSize < 1 {
		return o, fmt.Errorf("sampling: sample size %d must be positive", o.SampleSize)
	}
	if len(o.VioThresholds) == 0 {
		o.VioThresholds = []int{1, 3}
	}
	if len(o.Xi) == 0 {
		o.Xi = []float64{0.2, 0.3, 0.5}
	}
	if len(o.Xi) != len(o.VioThresholds)+1 {
		return o, fmt.Errorf("sampling: %d coefficients for %d strata", len(o.Xi), len(o.VioThresholds)+1)
	}
	var sum float64
	for i, x := range o.Xi {
		if x <= 0 {
			return o, fmt.Errorf("sampling: coefficient ξ[%d] = %v must be positive", i, x)
		}
		if i > 0 && o.Xi[i] < o.Xi[i-1] {
			return o, fmt.Errorf("sampling: coefficients must be ascending (dirtier strata sampled more)")
		}
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		return o, fmt.Errorf("sampling: coefficients sum to %v, want 1", sum)
	}
	if !sort.IntsAreSorted(o.VioThresholds) {
		return o, fmt.Errorf("sampling: vio thresholds must be ascending")
	}
	return o, nil
}

// Report is the outcome of one sampling evaluation.
type Report struct {
	// Accepted is true when z ≤ −z_α: the repair's inaccuracy rate is
	// below ε at confidence δ.
	Accepted bool
	// PHat is the weighted sample inaccuracy rate p̂ (§6).
	PHat float64
	// Z and ZAlpha are the test statistic and critical value.
	Z, ZAlpha float64
	// SampleSize is the number of tuples actually drawn.
	SampleSize int
	// Sample holds the drawn (repaired) tuples.
	Sample []*relation.Tuple
	// Inaccurate lists the sampled tuple ids the user flagged.
	Inaccurate []relation.TupleID
	// StratumSizes and StratumDrawn and StratumBad describe the strata.
	StratumSizes, StratumDrawn, StratumBad []int
}

// Evaluate draws a stratified sample of the repair repr, lets the user
// inspect it, and runs the acceptance test. orig is the pre-repair
// database used to stratify tuples by their original vio(t); sigma the
// constraints.
func Evaluate(repr, orig *relation.Relation, sigma []*cfd.Normal, user User, opts Options) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if repr.Size() == 0 {
		return nil, fmt.Errorf("sampling: empty repair")
	}
	rng := o.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(99))
	}
	// Stratify by the original tuples' violation counts.
	vio := cfd.NewDetector(orig, sigma).VioAll()
	m := len(o.Xi)
	stratumOf := func(id relation.TupleID) int {
		v := vio[id]
		for i, th := range o.VioThresholds {
			if v < th {
				return i
			}
		}
		return m - 1
	}
	reservoirs := make([]*stats.Reservoir[*relation.Tuple], m)
	sizes := make([]int, m)
	for i := range reservoirs {
		quota := int(float64(o.SampleSize)*o.Xi[i] + 0.5)
		if quota < 1 {
			quota = 1
		}
		reservoirs[i] = stats.NewReservoir[*relation.Tuple](quota, rng)
	}
	for _, t := range repr.Tuples() {
		i := stratumOf(t.ID)
		sizes[i]++
		reservoirs[i].Add(t)
	}
	var sample []*relation.Tuple
	drawn := make([]int, m)
	for i, r := range reservoirs {
		drawn[i] = len(r.Items())
		sample = append(sample, r.Items()...)
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("sampling: no tuples drawn")
	}
	inaccurate := user.Inspect(sample)
	// Weighted inaccuracy rate. With s_i = |P_i| / n_i (n_i the actual
	// draw, which equals ξ_i·k except for small strata), Σ e_i·s_i is the
	// unbiased estimate of the total number of inaccurate tuples; divided
	// by N it is the standard stratified estimator of the inaccuracy
	// rate. (§6 prints the denominator as Σ |P_i|·s_i = Σ |P_i|²/n_i,
	// which exceeds N whenever sampling rates differ across strata and
	// would bias p̂ downward — we use the unbiased N.)
	bad := make([]int, m)
	flagged := make(map[relation.TupleID]bool, len(inaccurate))
	for _, id := range inaccurate {
		flagged[id] = true
	}
	for _, t := range sample {
		if flagged[t.ID] {
			bad[stratumOf(t.ID)]++
		}
	}
	var num float64
	for i := 0; i < m; i++ {
		if drawn[i] == 0 {
			continue
		}
		si := float64(sizes[i]) / float64(drawn[i])
		num += float64(bad[i]) * si
	}
	pHat := num / float64(repr.Size())
	if pHat > 1 {
		pHat = 1
	}
	accepted, z, zAlpha, err := stats.AcceptRepair(pHat, o.Eps, o.Delta, len(sample))
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:     accepted,
		PHat:         pHat,
		Z:            z,
		ZAlpha:       zAlpha,
		SampleSize:   len(sample),
		Sample:       sample,
		Inaccurate:   inaccurate,
		StratumSizes: sizes,
		StratumDrawn: drawn,
		StratumBad:   bad,
	}, nil
}
