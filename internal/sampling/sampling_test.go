package sampling

import (
	"fmt"
	"math/rand"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// scenario builds Dopt (clean), D (noisy copy) and Repr (a repair that
// fixed most but not all noise), plus the constraint used to stratify.
func scenario(t testing.TB, n int, noiseRate, missRate float64) (dopt, d, repr *relation.Relation, sigma []*cfd.Normal) {
	t.Helper()
	s := relation.MustSchema("r", "zip", "CT")
	dopt = relation.New(s)
	rng := rand.New(rand.NewSource(5))
	zips := []string{"10012", "19014", "60601"}
	cities := map[string]string{"10012": "NYC", "19014": "PHI", "60601": "CHI"}
	for i := 0; i < n; i++ {
		z := zips[rng.Intn(len(zips))]
		dopt.MustInsert(relation.NewTuple(0, z, cities[z]))
	}
	d = dopt.Clone()
	repr = dopt.Clone()
	for _, tp := range d.Tuples() {
		if rng.Float64() < noiseRate {
			d.Set(tp.ID, 1, relation.S("BAD"))
			if rng.Float64() < missRate {
				// The "repair" kept the noise: inaccurate tuple.
				repr.Set(tp.ID, 1, relation.S("BAD2"))
			}
		}
	}
	var rows [][]cfd.Cell
	for _, z := range zips {
		rows = append(rows, []cfd.Cell{cfd.C(z), cfd.C(cities[z])})
	}
	φ := cfd.MustNew("zipct", s, []string{"zip"}, []string{"CT"}, rows...)
	sigma = φ.Normalize()
	return dopt, d, repr, sigma
}

func TestOracleInspect(t *testing.T) {
	dopt, _, _, _ := scenario(t, 10, 0, 0)
	bad := dopt.Clone()
	id := bad.Tuples()[3].ID
	bad.Set(id, 1, relation.S("WRONG"))
	o := &Oracle{Opt: dopt}
	flagged := o.Inspect(bad.Tuples())
	if len(flagged) != 1 || flagged[0] != id {
		t.Errorf("Inspect = %v, want [%d]", flagged, id)
	}
	// Correct returns the clean version.
	fixedTuple, ok := o.Correct(id)
	if !ok || !relation.StrictEqVals(fixedTuple.Vals, dopt.Tuple(id).Vals) {
		t.Error("Correct must return the Dopt tuple")
	}
	if _, ok := o.Correct(99999); ok {
		t.Error("Correct of unknown id must fail")
	}
}

func TestEvaluateAcceptsPerfectRepair(t *testing.T) {
	dopt, d, _, sigma := scenario(t, 2000, 0.05, 0) // repair fixed everything
	rep, err := Evaluate(dopt, d, sigma, &Oracle{Opt: dopt}, Options{Eps: 0.05, Delta: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Errorf("perfect repair must be accepted: p̂=%v z=%v zα=%v", rep.PHat, rep.Z, rep.ZAlpha)
	}
	if rep.PHat != 0 {
		t.Errorf("p̂ = %v, want 0", rep.PHat)
	}
	if len(rep.Inaccurate) != 0 {
		t.Errorf("no tuple should be flagged, got %d", len(rep.Inaccurate))
	}
}

func TestEvaluateRejectsBadRepair(t *testing.T) {
	dopt, d, repr, sigma := scenario(t, 2000, 0.3, 0.9) // most noise kept
	rep, err := Evaluate(repr, d, sigma, &Oracle{Opt: dopt}, Options{Eps: 0.05, Delta: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Errorf("bad repair must be rejected: p̂=%v z=%v", rep.PHat, rep.Z)
	}
	if rep.PHat == 0 {
		t.Error("p̂ must be positive for a bad repair")
	}
	if len(rep.Inaccurate) == 0 {
		t.Error("the oracle must flag inaccurate tuples")
	}
}

// TestStratificationTargetsDirtyTuples: dirty tuples (higher vio in the
// original D) are oversampled relative to their population share.
func TestStratificationTargetsDirtyTuples(t *testing.T) {
	dopt, d, repr, sigma := scenario(t, 5000, 0.05, 0.5)
	rep, err := Evaluate(repr, d, sigma, &Oracle{Opt: dopt},
		Options{Eps: 0.05, Delta: 0.95, SampleSize: 300, VioThresholds: []int{1}, Xi: []float64{0.4, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StratumSizes) != 2 {
		t.Fatalf("strata = %v", rep.StratumSizes)
	}
	cleanSize, dirtySize := rep.StratumSizes[0], rep.StratumSizes[1]
	cleanDrawn, dirtyDrawn := rep.StratumDrawn[0], rep.StratumDrawn[1]
	if dirtySize == 0 || cleanSize == 0 {
		t.Skip("degenerate scenario")
	}
	dirtyRate := float64(dirtyDrawn) / float64(dirtySize)
	cleanRate := float64(cleanDrawn) / float64(cleanSize)
	if dirtyRate <= cleanRate {
		t.Errorf("dirty stratum sampling rate %v must exceed clean %v", dirtyRate, cleanRate)
	}
}

func TestEvaluateOptionValidation(t *testing.T) {
	dopt, d, _, sigma := scenario(t, 100, 0.05, 0)
	o := &Oracle{Opt: dopt}
	bad := []Options{
		{Eps: 0, Delta: 0.9},
		{Eps: 0.05, Delta: 0},
		{Eps: 0.05, Delta: 0.9, Xi: []float64{1}},                                      // strata mismatch
		{Eps: 0.05, Delta: 0.9, Xi: []float64{0.5, 0.3, 0.2}},                          // not ascending
		{Eps: 0.05, Delta: 0.9, Xi: []float64{0.1, 0.2, 0.2}},                          // sum != 1
		{Eps: 0.05, Delta: 0.9, VioThresholds: []int{3, 1}, Xi: []float64{.2, .3, .5}}, // thresholds unsorted
		{Eps: 0.05, Delta: 0.9, SampleSize: -1},
	}
	for i, opt := range bad {
		if _, err := Evaluate(dopt, d, sigma, o, opt); err == nil {
			t.Errorf("options %d should fail", i)
		}
	}
	empty := relation.New(dopt.Schema())
	if _, err := Evaluate(empty, d, sigma, o, Options{Eps: 0.05, Delta: 0.9}); err == nil {
		t.Error("empty repair must fail")
	}
}

func TestDefaultSampleSizeFromChernoff(t *testing.T) {
	dopt, d, _, sigma := scenario(t, 5000, 0.05, 0)
	rep, err := Evaluate(dopt, d, sigma, &Oracle{Opt: dopt}, Options{Eps: 0.05, Delta: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 6.1 with c=5, ε=0.05, δ=0.95 needs a sample in the hundreds.
	if rep.SampleSize < 100 {
		t.Errorf("derived sample size %d too small", rep.SampleSize)
	}
}

// TestAcceptanceCalibration: across repeated draws on a repair whose true
// inaccuracy is clearly below ε, acceptance should be the norm; on one
// clearly above, rejection should be the norm.
func TestAcceptanceCalibration(t *testing.T) {
	for _, tc := range []struct {
		miss   float64
		expect bool
	}{
		{0.0, true},
		{0.95, false},
	} {
		t.Run(fmt.Sprintf("miss=%v", tc.miss), func(t *testing.T) {
			dopt, d, repr, sigma := scenario(t, 4000, 0.2, tc.miss)
			agree := 0
			for seed := int64(0); seed < 10; seed++ {
				rep, err := Evaluate(repr, d, sigma, &Oracle{Opt: dopt},
					Options{Eps: 0.05, Delta: 0.9, Rng: rand.New(rand.NewSource(seed))})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Accepted == tc.expect {
					agree++
				}
			}
			if agree < 8 {
				t.Errorf("only %d/10 draws agreed with expected accept=%v", agree, tc.expect)
			}
		})
	}
}
