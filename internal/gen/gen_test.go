package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
	"cfdclean/internal/strdist"
)

func mustNew(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	ds, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return ds
}

func TestCleanDataSatisfiesSigma(t *testing.T) {
	ds := mustNew(t, Config{Size: 500, NoiseRate: 0, Seed: 1})
	if !cfd.Satisfies(ds.Opt, ds.Sigma) {
		t.Fatal("Dopt violates Σ")
	}
	if ds.NoisyCells != 0 || len(ds.DirtyIDs) != 0 {
		t.Fatalf("noise injected at ρ=0: cells=%d dirty=%d", ds.NoisyCells, len(ds.DirtyIDs))
	}
	if !cfd.Satisfies(ds.Dirty, ds.Sigma) {
		t.Fatal("D violates Σ at ρ=0")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Size: 200, NoiseRate: 0.05, Seed: 7, Weights: true}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	if a.Dirty.Size() != b.Dirty.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Dirty.Size(), b.Dirty.Size())
	}
	for _, ta := range a.Dirty.Tuples() {
		tb := b.Dirty.Tuple(ta.ID)
		if !relation.StrictEqVals(ta.Vals, tb.Vals) {
			t.Fatalf("tuple %d differs between runs", ta.ID)
		}
		for i := range ta.Vals {
			if ta.Weight(i) != tb.Weight(i) {
				t.Fatalf("weight (%d,%d) differs", ta.ID, i)
			}
		}
	}
}

func TestNoiseRateRealized(t *testing.T) {
	ds := mustNew(t, Config{Size: 1000, NoiseRate: 0.05, Seed: 3})
	want := 50
	got := len(ds.DirtyIDs)
	if got < want-5 || got > want {
		t.Fatalf("dirty tuples = %d, want ≈ %d", got, want)
	}
	if ds.NoisyCells < got {
		t.Fatalf("noisy cells %d < dirty tuples %d", ds.NoisyCells, got)
	}
}

func TestDirtyTuplesViolate(t *testing.T) {
	ds := mustNew(t, Config{Size: 800, NoiseRate: 0.08, Seed: 5})
	det := cfd.NewDetector(ds.Dirty, ds.Sigma)
	if det.Satisfied() {
		t.Fatal("dirty database satisfies Σ")
	}
	vio := det.VioAll()
	violating := 0
	for _, id := range ds.DirtyIDs {
		if vio[id] > 0 {
			violating++
		}
	}
	// Constant-CFD perturbations are guaranteed violations; variable ones
	// can occasionally be masked when the partner was itself perturbed.
	if frac := float64(violating) / float64(len(ds.DirtyIDs)); frac < 0.9 {
		t.Fatalf("only %.0f%% of dirty tuples violate Σ", frac*100)
	}
}

func TestConstShareExtremes(t *testing.T) {
	// With ConstShare=1 every dirty tuple violates a constant rule; the
	// number of single-tuple violations must dominate.
	ds := mustNew(t, Config{Size: 500, NoiseRate: 0.1, ConstShare: 1, Seed: 11})
	det := cfd.NewDetector(ds.Dirty, ds.Sigma)
	vio := det.VioAll()
	n := 0
	for _, id := range ds.DirtyIDs {
		if vio[id] > 0 {
			n++
		}
	}
	if n != len(ds.DirtyIDs) {
		t.Fatalf("const-share=1: %d of %d dirty tuples violate", n, len(ds.DirtyIDs))
	}
}

func TestWeightsProtocol(t *testing.T) {
	ds := mustNew(t, Config{Size: 300, NoiseRate: 0.1, Seed: 13, Weights: true})
	for _, tp := range ds.Dirty.Tuples() {
		want := ds.Opt.Tuple(tp.ID)
		for i := range tp.Vals {
			w := tp.Weight(i)
			if relation.StrictEq(tp.Vals[i], want.Vals[i]) {
				if w < 0.5 || w > 1 {
					t.Fatalf("clean cell (%d,%d) weight %v outside [0.5,1]", tp.ID, i, w)
				}
			} else if w < 0 || w > 0.6 {
				t.Fatalf("dirty cell (%d,%d) weight %v outside [0,0.6]", tp.ID, i, w)
			}
		}
	}
}

func TestUnweightedDefaults(t *testing.T) {
	ds := mustNew(t, Config{Size: 100, NoiseRate: 0.1, Seed: 17})
	for _, tp := range ds.Dirty.Tuples() {
		for i := range tp.Vals {
			if tp.Weight(i) != 1 {
				t.Fatalf("weight (%d,%d) = %v, want 1", tp.ID, i, tp.Weight(i))
			}
		}
	}
}

func TestPatternRowsScale(t *testing.T) {
	small := mustNew(t, Config{Size: 100, Seed: 19, PatternRows: 300})
	big := mustNew(t, Config{Size: 100, Seed: 19, PatternRows: 3000})
	if small.PatternRows < 150 || small.PatternRows > 900 {
		t.Fatalf("small tableau = %d rows, want around 300", small.PatternRows)
	}
	if big.PatternRows <= 2*small.PatternRows {
		t.Fatalf("big tableau %d not much larger than small %d", big.PatternRows, small.PatternRows)
	}
}

func TestEmbeddedFDs(t *testing.T) {
	ds := mustNew(t, Config{Size: 200, NoiseRate: 0.05, Seed: 23})
	fds := ds.EmbeddedFDs()
	for _, n := range fds {
		if n.ConstantRHS() {
			t.Fatalf("embedded FD %s has constant RHS", n)
		}
	}
	// Dopt satisfies the embedded FDs too (they are weaker than Σ).
	if !cfd.Satisfies(ds.Opt, fds) {
		t.Fatal("Dopt violates the embedded FDs")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Size: 0},
		{Size: 10, NoiseRate: -0.1},
		{Size: 10, NoiseRate: 1.5},
		{Size: 10, ConstShare: 2},
		{Size: 10, WeightA: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestTypoDistanceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inputs := []string{"Philadelphia", "19014", "8983490", "Walnut St", "US", "a"}
	for i := 0; i < 500; i++ {
		s := inputs[i%len(inputs)]
		v := typo(rng, s)
		if d := strdist.DamerauLevenshtein(s, v); d > 6+2 {
			// Transpositions of repeated characters can compound; allow
			// slight slack but catch runaway edits.
			t.Fatalf("typo(%q) = %q at distance %d", s, v, d)
		}
	}
}

func TestTypoChangesStringProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(s string) bool {
		if s == "" || len(s) > 40 {
			return true
		}
		// At least one of a few tries must differ from the input.
		for i := 0; i < 4; i++ {
			if typo(rng, s) != s {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := buildGeo(rng, deriveDims(600))
	for z, ci := range g.zipCity {
		found := false
		for _, zz := range g.cities[ci].zips {
			if zz == z {
				found = true
			}
		}
		if !found {
			t.Fatalf("zip %s not in its city's pool", z)
		}
	}
	for a, ci := range g.acCity {
		found := false
		for _, aa := range g.cities[ci].acs {
			if aa == a {
				found = true
			}
		}
		if !found {
			t.Fatalf("area code %s not in its city's pool", a)
		}
	}
	// Every city owns at least one zip and one area code, or customers
	// could not be placed there.
	for _, c := range g.cities {
		if len(c.zips) == 0 || len(c.acs) == 0 || len(c.streets) == 0 {
			t.Fatalf("city %s lacks zips/acs/streets", c.name)
		}
	}
}

func TestCustomersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := buildGeo(rng, deriveDims(400))
	for _, cu := range buildCustomers(rng, g, 200) {
		ci, ok := g.acCity[cu.ac]
		if !ok {
			t.Fatalf("customer area code %s unknown", cu.ac)
		}
		c := g.cities[ci]
		if cu.ct != c.name || cu.st != c.state {
			t.Fatalf("customer city %s/%s mismatches area code city %s/%s",
				cu.ct, cu.st, c.name, c.state)
		}
		if g.zipCity[cu.zip] != ci {
			t.Fatalf("customer zip %s not in city %s", cu.zip, c.name)
		}
	}
}
