package gen

import (
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/metrics"
	"cfdclean/internal/repair"
)

func TestSmokeBatchRepair(t *testing.T) {
	size := 2000
	if testing.Short() {
		size = 500
	}
	ds := mustNew(t, Config{Size: size, NoiseRate: 0.05, Seed: 99, Weights: true})
	t0 := time.Now()
	res, err := repair.Batch(ds.Dirty, ds.Sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, ds.Sigma) {
		t.Fatal("repair violates Σ")
	}
	q, err := metrics.Evaluate(ds.Dirty, res.Repair, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batch: %v  (%.2fs)", q, time.Since(t0).Seconds())
	t0 = time.Now()
	res2, err := increpair.Repair(ds.Dirty, ds.Sigma, &increpair.Options{Ordering: increpair.ByViolations})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res2.Repair, ds.Sigma) {
		t.Fatal("increpair violates Σ")
	}
	q2, err := metrics.Evaluate(ds.Dirty, res2.Repair, ds.Opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vinc: %v  (%.2fs)", q2, time.Since(t0).Seconds())
}
