package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// The pools below synthesize the correlated value universe of the paper's
// extended order schema (§7.1): countries with VAT rates, states, cities
// with their zip codes and area codes, streets with per-(city,street) zip
// assignments, customers (phone + address) and items (id, name, price).
// All correlations are functional so that the clean database Dopt
// satisfies Σ by construction.

// country groups states; every sale into the country carries its VAT.
type country struct {
	name string
	vat  string
}

// city is the unit of geographic correlation: one state, one country, a
// set of zip codes and a set of area codes that belong to it alone.
type city struct {
	name    string
	state   string
	country int // index into geo.countries
	zips    []string
	acs     []string
	streets []street
}

// street fixes the zip of every (city, street) pair, making the embedded
// FD of ϕ4 hold on clean data.
type street struct {
	name string
	zip  string
}

// geo is the complete synthetic geography.
type geo struct {
	countries []country
	cities    []city
	// zipCity[z] and acCity[a] locate the owning city, for tableau
	// construction and noise targeting.
	zipCity map[string]int
	acCity  map[string]int
}

// customer owns a phone number and an address drawn from the geography.
// [AC,PN] → address is functional because customers are fixed.
type customer struct {
	ac, pn           string
	str, ct, st, zip string
	cty              string
}

// item fixes name and price per id (ϕ3) and a display title.
type item struct {
	id, name, pr, tt string
}

var (
	citySyllables = []string{
		"Ash", "Bel", "Cla", "Dor", "Eve", "Fair", "Glen", "Hart",
		"Iron", "Jas", "Kirk", "Lan", "Mill", "Nor", "Oak", "Pine",
		"Quin", "Ros", "Spring", "Thorn", "Ulm", "Ver", "Wood", "York",
	}
	citySuffixes = []string{
		"ville", "ton", "field", "burg", "ford", "haven", "port",
		"dale", "wood", "mont", "side", "view",
	}
	streetNames = []string{
		"Walnut", "Spruce", "Canel", "Broad", "Maple", "Cedar", "Elm",
		"Chestnut", "Locust", "Market", "Vine", "Arch", "Race", "Pine",
		"Juniper", "Filbert", "Sansom", "Lombard", "Catharine", "Bain",
		"Fulton", "Monroe", "Carpenter", "Christian", "Reed", "Dickinson",
		"Tasker", "Morris", "Moore", "Mifflin", "Snyder", "Jackson",
	}
	firstNames = []string{
		"H.", "J.", "K.", "L.", "M.", "N.", "P.", "R.", "S.", "T.",
		"A.", "B.", "C.", "D.", "E.", "F.", "G.", "W.",
	}
	lastNames = []string{
		"Porter", "Denver", "White", "Avery", "Brook", "Carter", "Dale",
		"Ellis", "Frost", "Gray", "Hale", "Irwin", "Jones", "Keller",
		"Lane", "Mason", "Nash", "Owens", "Price", "Quill", "Reyes",
		"Stone", "Tate", "Usher", "Vale", "Webb", "Young", "Zeller",
	}
	itemNouns = []string{
		"Lamp", "Kettle", "Novel", "Atlas", "Radio", "Teapot", "Globe",
		"Puzzle", "Blanket", "Clock", "Mirror", "Basket", "Ladder",
		"Journal", "Compass", "Camera", "Helmet", "Wallet", "Scarf",
		"Candle", "Easel", "Hammock", "Lantern", "Satchel", "Telescope",
	}
	itemAdjectives = []string{
		"Brass", "Oak", "Velvet", "Copper", "Linen", "Marble", "Cedar",
		"Ivory", "Slate", "Amber", "Pearl", "Crimson", "Walnut", "Jade",
	}
	countryPool = []country{
		{"US", "0.00"}, {"UK", "20.00"}, {"DE", "19.00"}, {"FR", "19.60"},
		{"NL", "21.00"}, {"IT", "22.00"},
	}
	statePool = []string{
		"PA", "NY", "NJ", "DE", "MD", "VA", "OH", "MA", "CT", "RI",
		"NH", "VT", "ME", "MI", "IL", "IN", "WI", "MN", "IA", "MO",
	}
)

// dims derives pool sizes from the requested tableau volume. PatternRows
// is an approximate total across Σ; the exact count is reported by the
// Dataset. The split keeps ϕ2 (per-zip rows) the largest tableau, as in
// the paper's setup where zip patterns dominate.
type dims struct {
	nCountries int
	nCities    int
	nZips      int
	nACs       int
	nStreets   int // streets carried per city
}

func deriveDims(patternRows int) dims {
	var d dims
	d.nZips = patternRows / 2
	if d.nZips < 8 {
		d.nZips = 8
	}
	d.nACs = patternRows / 5
	if d.nACs < 4 {
		d.nACs = 4
	}
	d.nCities = patternRows / 10
	if d.nCities < 4 {
		d.nCities = 4
	}
	if d.nCities > d.nZips {
		d.nCities = d.nZips
	}
	if d.nCities > d.nACs {
		d.nCities = d.nACs
	}
	d.nCountries = len(countryPool)
	if d.nCountries > 2+d.nCities/4 {
		d.nCountries = 2 + d.nCities/4
	}
	d.nStreets = 12
	return d
}

// buildGeo synthesizes the geography deterministically from rng.
func buildGeo(rng *rand.Rand, d dims) *geo {
	g := &geo{
		zipCity: make(map[string]int),
		acCity:  make(map[string]int),
	}
	g.countries = append(g.countries, countryPool[:d.nCountries]...)

	seenCity := make(map[string]bool)
	for len(g.cities) < d.nCities {
		name := citySyllables[rng.Intn(len(citySyllables))] +
			citySuffixes[rng.Intn(len(citySuffixes))]
		if seenCity[name] {
			// Disambiguate rather than loop forever on a small pool.
			name = fmt.Sprintf("%s %d", name, len(g.cities))
		}
		seenCity[name] = true
		g.cities = append(g.cities, city{
			name:    name,
			state:   statePool[rng.Intn(len(statePool))],
			country: rng.Intn(len(g.countries)),
		})
	}

	// Zips: 5-digit strings, unique, assigned round-robin with jitter so
	// every city owns at least one zip.
	zipSeen := make(map[string]bool)
	for i := 0; i < d.nZips; i++ {
		var z string
		for {
			z = fmt.Sprintf("%05d", 10000+rng.Intn(89999))
			if !zipSeen[z] {
				break
			}
		}
		zipSeen[z] = true
		ci := i % len(g.cities)
		g.cities[ci].zips = append(g.cities[ci].zips, z)
		g.zipCity[z] = ci
	}

	// Area codes: 3-digit strings starting with 2-9, unique per city.
	acSeen := make(map[string]bool)
	for i := 0; i < d.nACs; i++ {
		var a string
		for {
			a = fmt.Sprintf("%d%02d", 2+rng.Intn(8), rng.Intn(100))
			if !acSeen[a] {
				break
			}
		}
		acSeen[a] = true
		ci := i % len(g.cities)
		g.cities[ci].acs = append(g.cities[ci].acs, a)
		g.acCity[a] = ci
	}

	// Streets: each city carries d.nStreets named streets, each pinned to
	// one of the city's zips.
	for ci := range g.cities {
		c := &g.cities[ci]
		perm := rng.Perm(len(streetNames))
		n := d.nStreets
		if n > len(streetNames) {
			n = len(streetNames)
		}
		for _, si := range perm[:n] {
			c.streets = append(c.streets, street{
				name: streetNames[si] + " St",
				zip:  c.zips[rng.Intn(len(c.zips))],
			})
		}
	}
	return g
}

// buildCustomers draws n customers; (AC,PN) is unique, the address is
// internally consistent with the geography. City popularity is skewed
// (a power law, as in real location data): a few cities hold most
// customers while many zip and area-code groups stay near-singleton.
// The skew matters for the CFD-vs-FD comparison (Fig. 8): in a sparse
// group a dirty tuple has no partner to violate an embedded FD with, so
// only the constant pattern rows of the CFDs can catch it.
func buildCustomers(rng *rand.Rand, g *geo, n int) []customer {
	out := make([]customer, 0, n)
	seen := make(map[string]bool)
	for len(out) < n {
		u := rng.Float64()
		ci := int(u * u * float64(len(g.cities)))
		if ci >= len(g.cities) {
			ci = len(g.cities) - 1
		}
		c := g.cities[ci]
		ac := c.acs[rng.Intn(len(c.acs))]
		pn := fmt.Sprintf("%07d", 1000000+rng.Intn(8999999))
		if seen[ac+"|"+pn] {
			continue
		}
		seen[ac+"|"+pn] = true
		st := c.streets[rng.Intn(len(c.streets))]
		out = append(out, customer{
			ac: ac, pn: pn,
			str: st.name, ct: c.name, st: c.state, zip: st.zip,
			cty: g.countries[c.country].name,
		})
	}
	return out
}

// buildItems draws n items with unique ids and names; name and price are
// fixed per id so that ϕ3 holds on clean data. Ids are sparse in their
// value space and names unique, mirroring real catalog data (ASINs,
// product titles): a typo'd sparse id almost never collides with another
// real id, whereas dense sequential ids one edit apart would make every
// id typo ambiguous — an artifact of generation, not of the paper's
// scraped data.
func buildItems(rng *rand.Rand, n int) []item {
	out := make([]item, 0, n)
	seenID := make(map[string]bool, n)
	seenName := make(map[string]bool, n)
	for len(out) < n {
		id := fmt.Sprintf("%c%c%06d",
			'a'+rng.Intn(26), 'a'+rng.Intn(26), rng.Intn(1000000))
		if seenID[id] {
			continue
		}
		seenID[id] = true
		adj := itemAdjectives[rng.Intn(len(itemAdjectives))]
		noun := itemNouns[rng.Intn(len(itemNouns))]
		name := adj + " " + noun
		if seenName[name] {
			name = fmt.Sprintf("%s %d", name, 100+rng.Intn(900))
			if seenName[name] {
				name = fmt.Sprintf("%s No. %d", name, len(out))
			}
		}
		seenName[name] = true
		out = append(out, item{
			id:   id,
			name: name,
			pr:   fmt.Sprintf("%d.%02d", 1+rng.Intn(199), rng.Intn(100)),
			tt:   strings.ToUpper(noun[:1]) + noun[1:] + " Classic",
		})
	}
	return out
}

// personName composes a customer-facing item buyer name; it is only used
// for the name attribute of items in the paper's Fig. 1, which we keep as
// the item name, so this helper serves the examples.
func personName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}
