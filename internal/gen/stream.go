package gen

import "cfdclean/internal/relation"

// StreamBatches arranges the dataset's perturbed tuples as a stream of
// ΔD insertion batches for the §5 online scenario: the clean Opt serves
// as the trusted base, and the dirty versions of the perturbed tuples
// arrive as new orders to be cleaned on insertion. It returns n parallel
// batch pairs — deltas[i] holds dirty tuples, truth[i] their ground-truth
// versions under the same (fresh) ids, disjoint from Opt's id range — so
// harnesses can both drive a streaming session and score its output.
// Batches are contiguous slices of the perturbation order. After
// clamping n to [1, number of dirty tuples], exactly n non-empty batches
// are returned (sizes differ by at most one); a dataset with no dirty
// tuples yields none.
func (d *Dataset) StreamBatches(n int) (deltas, truth [][]*relation.Tuple) {
	ids := d.DirtyIDs
	if len(ids) == 0 {
		return nil, nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	base := relation.TupleID(d.cfg.Size)
	deltas = make([][]*relation.Tuple, 0, n)
	truth = make([][]*relation.Tuple, 0, n)
	for b := 0; b < n; b++ {
		// Balanced partition: exactly n batches whose sizes differ by at
		// most one, all non-empty when len(ids) >= n.
		start := b * len(ids) / n
		end := (b + 1) * len(ids) / n
		db := make([]*relation.Tuple, 0, end-start)
		tb := make([]*relation.Tuple, 0, end-start)
		for i, id := range ids[start:end] {
			fresh := base + relation.TupleID(start+i) + 1
			dt := d.Dirty.Tuple(id).Clone()
			dt.ID = fresh
			ct := d.Opt.Tuple(id).Clone()
			ct.ID = fresh
			db = append(db, dt)
			tb = append(tb, ct)
		}
		deltas = append(deltas, db)
		truth = append(truth, tb)
	}
	return deltas, truth
}
