package gen

import (
	"math/rand"

	"cfdclean/internal/relation"
)

// Noise protocol (§7.1): a fraction ρ of tuples is perturbed so that each
// perturbed tuple violates at least one CFD. A perturbed attribute is
// changed either to a new value that is DL-close to the original
// (distance 1–6) or to the value another tuple holds in that attribute.
// ConstShare of the dirty tuples are made to violate a constant CFD (the
// first perturbed attribute is the RHS of a constant pattern row the
// tuple matches); the rest violate a variable CFD (the attribute is the
// RHS of an embedded FD for which the tuple has at least one partner
// agreeing on the LHS).

// constTargets are attributes bound by constant pattern rows every clean
// tuple matches: CT and ST via ϕ2/ϕ6 (zip and area code rows), VAT via
// ϕ5, CTY via ϕ7's per-city rows. Changing any of them away from the
// pattern constant is a guaranteed single-tuple violation (§3.1 case 1).
var constTargets = []int{ACT, AST, AVAT, ACTY}

func (ds *Dataset) injectNoise(rng *rand.Rand) {
	c := ds.cfg
	nDirty := int(float64(c.Size)*c.NoiseRate + 0.5)
	if nDirty == 0 {
		return
	}

	// Partner counts for the variable targets: a variable violation
	// needs a second tuple agreeing on the embedded FD's LHS.
	idCount := make(map[string]int)
	custCount := make(map[string]int) // (AC,PN)
	addrCount := make(map[string]int) // (CT,STR)
	for _, t := range ds.Opt.Tuples() {
		idCount[t.Vals[AID].Str]++
		custCount[t.Vals[AAC].Str+"\x00"+t.Vals[APN].Str]++
		addrCount[t.Vals[ACT].Str+"\x00"+t.Vals[ASTR].Str]++
	}

	perm := rng.Perm(c.Size)
	dirtied := 0
	for _, pi := range perm {
		if dirtied >= nDirty {
			break
		}
		id := relation.TupleID(pi + 1)
		t := ds.Dirty.Tuple(id)
		wantConst := rng.Float64() < c.ConstShare

		var first int
		if wantConst {
			first = constTargets[rng.Intn(len(constTargets))]
		} else {
			var cands []int
			if idCount[t.Vals[AID].Str] > 1 {
				cands = append(cands, AName, APR)
			}
			if custCount[t.Vals[AAC].Str+"\x00"+t.Vals[APN].Str] > 1 {
				cands = append(cands, ASTR)
			}
			if addrCount[t.Vals[ACT].Str+"\x00"+t.Vals[ASTR].Str] > 1 {
				cands = append(cands, AZip)
			}
			if len(cands) == 0 {
				// No partner anywhere (tiny datasets): fall back to a
				// constant violation so the tuple is still dirty.
				first = constTargets[rng.Intn(len(constTargets))]
			} else {
				first = cands[rng.Intn(len(cands))]
			}
		}

		n := 1 + rng.Intn(c.MaxNoisyAttrs)
		changed := ds.perturb(rng, id, first)
		for extra := 1; extra < n; extra++ {
			var a int
			if wantConst {
				a = constTargets[rng.Intn(len(constTargets))]
			} else {
				a = []int{AName, APR, ASTR, AZip}[rng.Intn(4)]
			}
			if a == first {
				continue
			}
			if ds.perturb(rng, id, a) {
				changed = true
			}
		}
		if changed {
			ds.DirtyIDs = append(ds.DirtyIDs, id)
			dirtied++
		}
	}
}

// perturb changes attribute a of tuple id to a typo or to another
// tuple's value; it reports whether the stored value actually changed.
func (ds *Dataset) perturb(rng *rand.Rand, id relation.TupleID, a int) bool {
	t := ds.Dirty.Tuple(id)
	old := t.Vals[a]
	if old.Null {
		return false
	}
	var nv string
	if rng.Float64() < 0.5 {
		nv = typo(rng, old.Str)
	} else {
		nv = stealValue(rng, ds.Opt, a, old.Str)
	}
	if nv == old.Str {
		nv = typo(rng, old.Str)
	}
	if nv == old.Str {
		return false
	}
	if _, err := ds.Dirty.Set(id, a, relation.S(nv)); err != nil {
		return false
	}
	ds.NoisyCells++
	return true
}

// stealValue picks the a-attribute value of a random other tuple,
// preferring one that differs from old; after a few tries it gives up
// and returns old (the caller then falls back to a typo).
func stealValue(rng *rand.Rand, d *relation.Relation, a int, old string) string {
	ts := d.Tuples()
	for try := 0; try < 8; try++ {
		v := ts[rng.Intn(len(ts))].Vals[a]
		if !v.Null && v.Str != old {
			return v.Str
		}
	}
	return old
}

// typo applies 1–6 single-character edits (substitution, insertion,
// deletion, adjacent transposition), keeping digits digits so that
// numeric fields stay plausible.
func typo(rng *rand.Rand, s string) string {
	if s == "" {
		return string(randChar(rng, 'a'))
	}
	b := []byte(s)
	edits := 1 + rng.Intn(6)
	for e := 0; e < edits; e++ {
		if len(b) == 0 {
			b = append(b, randChar(rng, 'a'))
			continue
		}
		i := rng.Intn(len(b))
		switch rng.Intn(4) {
		case 0: // substitution
			c := randChar(rng, b[i])
			if c == b[i] {
				c = randChar(rng, b[i]+1)
			}
			b[i] = c
		case 1: // insertion
			b = append(b[:i], append([]byte{randChar(rng, b[i])}, b[i:]...)...)
		case 2: // deletion
			if len(b) > 1 {
				b = append(b[:i], b[i+1:]...)
			}
		case 3: // transposition
			if i+1 < len(b) && b[i] != b[i+1] {
				b[i], b[i+1] = b[i+1], b[i]
			} else if len(b) > 1 {
				j := (i + 1) % len(b)
				b[i], b[j] = b[j], b[i]
			}
		}
	}
	return string(b)
}

// randChar draws a character of the same class as ref: digit for digit,
// letter otherwise (case-preserving).
func randChar(rng *rand.Rand, ref byte) byte {
	switch {
	case ref >= '0' && ref <= '9':
		return byte('0' + rng.Intn(10))
	case ref >= 'A' && ref <= 'Z':
		return byte('A' + rng.Intn(26))
	default:
		return byte('a' + rng.Intn(26))
	}
}

// assignWeights implements the §7.1 weight protocol on the dirty
// database: dirty cells get w ∈ [0, a], clean cells w ∈ [b, 1]. Without
// the Weights flag all weights stay 1.
func (ds *Dataset) assignWeights(rng *rand.Rand) {
	if !ds.cfg.Weights {
		return
	}
	a, b := ds.cfg.WeightA, ds.cfg.WeightB
	for _, t := range ds.Dirty.Tuples() {
		want := ds.Opt.Tuple(t.ID)
		for i := range t.Vals {
			if relation.StrictEq(t.Vals[i], want.Vals[i]) {
				t.SetWeight(i, b+rng.Float64()*(1-b))
			} else {
				t.SetWeight(i, rng.Float64()*a)
			}
		}
	}
}
