// Package gen synthesizes the paper's experimental workload (§7.1): an
// extended order relation populated with correlated values, a set Σ of
// seven CFDs whose pattern tableaus carry hundreds to thousands of
// pattern tuples, controlled noise at rate ρ, and the weight protocol
// used by the cost model.
//
// The paper scraped real data from AMAZON and other websites; this
// package is the documented substitution (DESIGN.md §2): a deterministic
// generator producing data with the same structural properties — a clean
// Dopt consistent with Σ, a dirty D in which every dirty tuple violates
// at least one CFD, noise that is either a DL-close typo (edit distance
// 1–6) or a value copied from another tuple, and attribute weights drawn
// from [0,a] for dirty cells and [b,1] for clean cells.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// Attribute names of the extended order schema (§7.1): the Fig. 1 schema
// plus country CTY, tax rate VAT, title TT and quantity QTT.
var OrderAttrs = []string{
	"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip",
	"CTY", "VAT", "TT", "QTT",
}

// Attribute positions, fixed by OrderAttrs.
const (
	AID = iota
	AName
	APR
	AAC
	APN
	ASTR
	ACT
	AST
	AZip
	ACTY
	AVAT
	ATT
	AQTT
)

// Config controls one generated dataset.
type Config struct {
	// Size is the number of order tuples.
	Size int
	// NoiseRate is ρ ∈ [0,1]: the fraction of tuples perturbed.
	NoiseRate float64
	// ConstShare is the fraction of dirty tuples made to violate a
	// constant CFD (Figs. 14–15 vary it); the rest violate a variable
	// CFD. Default 0.5.
	ConstShare float64
	// PatternRows is the approximate total number of pattern tuples
	// across the tableaus of Σ (the paper uses 300–5,000). Default 600.
	PatternRows int
	// Customers and Items bound the respective pools; defaults derive
	// from Size so that ids and addresses repeat across orders (variable
	// CFDs then have partners to violate with).
	Customers, Items int
	// MaxNoisyAttrs caps perturbed attributes per dirty tuple. Default 2.
	MaxNoisyAttrs int
	// Weights enables the weight protocol; WeightA and WeightB are the
	// paper's a and b (defaults 0.6 and 0.5). Without Weights all
	// weights stay 1 (§3.2 remark 1).
	Weights          bool
	WeightA, WeightB float64
	// Seed drives all randomness; the same Config yields the same data.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Size <= 0 {
		return c, fmt.Errorf("gen: size %d must be positive", c.Size)
	}
	if c.NoiseRate < 0 || c.NoiseRate > 1 {
		return c, fmt.Errorf("gen: noise rate %v outside [0,1]", c.NoiseRate)
	}
	if c.ConstShare == 0 {
		c.ConstShare = 0.5
	}
	if c.ConstShare < 0 || c.ConstShare > 1 {
		return c, fmt.Errorf("gen: constant share %v outside [0,1]", c.ConstShare)
	}
	if c.PatternRows <= 0 {
		// Scale the tableau with the data, as the paper's scraped data
		// does (its distinct zips and area codes grow with the crawl,
		// and its tableaus carry 300–5,000 pattern tuples): one pattern
		// row per ten tuples keeps per-zip tuple groups realistically
		// small. Clamp to the paper's range.
		c.PatternRows = c.Size / 10
		if c.PatternRows < 300 {
			c.PatternRows = 300
		}
		if c.PatternRows > 5000 {
			c.PatternRows = 5000
		}
	}
	if c.Customers <= 0 {
		// Most customers place a single order (their tuples have no
		// embedded-FD partners; only constant CFD patterns can catch
		// noise there), while the skewed pick below gives a head of
		// repeat customers whose orders exercise the variable rules.
		c.Customers = c.Size/2 + 1
	}
	if c.Items <= 0 {
		c.Items = c.Size/5 + 1
	}
	if c.MaxNoisyAttrs <= 0 {
		c.MaxNoisyAttrs = 2
	}
	if c.WeightA == 0 {
		c.WeightA = 0.6
	}
	if c.WeightB == 0 {
		c.WeightB = 0.5
	}
	if c.WeightA < 0 || c.WeightA > 1 || c.WeightB < 0 || c.WeightB > 1 {
		return c, fmt.Errorf("gen: weight bounds a=%v b=%v outside [0,1]", c.WeightA, c.WeightB)
	}
	return c, nil
}

// Dataset is one generated workload.
type Dataset struct {
	// Schema is the extended order schema.
	Schema *relation.Schema
	// Opt is the clean database Dopt (consistent with Sigma).
	Opt *relation.Relation
	// Dirty is D: Opt with noise injected. Tuple ids align with Opt.
	Dirty *relation.Relation
	// CFDs is Σ in general form; Sigma is its normal form.
	CFDs  []*cfd.CFD
	Sigma []*cfd.Normal
	// DirtyIDs lists tuples that were perturbed; NoisyCells counts
	// perturbed attribute values, dif(D, Dopt).
	DirtyIDs   []relation.TupleID
	NoisyCells int
	// PatternRows is the realized total tableau size of Σ.
	PatternRows int

	cfg Config
	g   *geo
}

// New generates a dataset.
func New(cfg Config) (*Dataset, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	schema := relation.MustSchema("order", OrderAttrs...)

	g := buildGeo(rng, deriveDims(c.PatternRows))
	customers := buildCustomers(rng, g, c.Customers)
	items := buildItems(rng, c.Items)

	opt := relation.New(schema)
	skewed := func(n int) int {
		u := rng.Float64()
		i := int(u * math.Sqrt(u) * float64(n))
		if i >= n {
			i = n - 1
		}
		return i
	}
	for i := 0; i < c.Size; i++ {
		cu := customers[skewed(len(customers))]
		it := items[skewed(len(items))]
		ci := g.cities[g.acCity[cu.ac]]
		vat := g.countries[ci.country].vat
		qtt := fmt.Sprintf("%d", 1+rng.Intn(9))
		t := relation.NewTuple(relation.TupleID(i+1),
			it.id, it.name, it.pr,
			cu.ac, cu.pn, cu.str, cu.ct, cu.st, cu.zip,
			cu.cty, vat, it.tt, qtt)
		opt.MustInsert(t)
	}

	ds := &Dataset{
		Schema: schema,
		Opt:    opt,
		cfg:    c,
		g:      g,
	}
	ds.CFDs = buildSigma(schema, g)
	ds.Sigma = cfd.NormalizeAll(ds.CFDs)
	for _, φ := range ds.CFDs {
		ds.PatternRows += len(φ.Tableau)
	}

	if !cfd.Satisfies(opt, ds.Sigma) {
		return nil, fmt.Errorf("gen: internal error: clean data violates Σ")
	}

	ds.Dirty = opt.Clone()
	ds.injectNoise(rng)
	ds.assignWeights(rng)
	return ds, nil
}

// EmbeddedFDs returns Σ reduced to its embedded FDs (single all-wildcard
// pattern rows), the baseline of the Fig. 8 comparison.
func (d *Dataset) EmbeddedFDs() []*cfd.Normal {
	fds := make([]*cfd.CFD, len(d.CFDs))
	for i, φ := range d.CFDs {
		fds[i] = φ.EmbeddedFD()
	}
	return cfd.NormalizeAll(fds)
}

// buildSigma assembles the seven CFDs of §7.1: ϕ1–ϕ4 from the paper's
// Figs. 1–2 (with tableaus filled from the synthetic geography), ϕ5 on
// country/VAT, and the cyclic ϕ6/ϕ7 closing a loop through CT/ST and zip.
func buildSigma(s *relation.Schema, g *geo) []*cfd.CFD {
	w := cfd.W

	// ϕ1: [AC,PN] → [STR,CT,ST]; wildcard row is fd1, plus one constant
	// row per area code binding its city and state (paper Fig. 1(b)).
	rows1 := [][]cfd.Cell{{w, w, w, w, w}}
	for ci := range g.cities {
		c := g.cities[ci]
		for _, ac := range c.acs {
			rows1 = append(rows1, []cfd.Cell{
				cfd.C(ac), w, w, cfd.C(c.name), cfd.C(c.state),
			})
		}
	}
	φ1 := cfd.MustNew("phi1", s, []string{"AC", "PN"}, []string{"STR", "CT", "ST"}, rows1...)

	// ϕ2: [zip] → [CT,ST]; wildcard row is fd2, plus one row per zip.
	rows2 := [][]cfd.Cell{{w, w, w}}
	for ci := range g.cities {
		c := g.cities[ci]
		for _, z := range c.zips {
			rows2 = append(rows2, []cfd.Cell{
				cfd.C(z), cfd.C(c.name), cfd.C(c.state),
			})
		}
	}
	φ2 := cfd.MustNew("phi2", s, []string{"zip"}, []string{"CT", "ST"}, rows2...)

	// ϕ3, ϕ4: the standard FDs of Fig. 2.
	φ3 := cfd.MustNew("phi3", s, []string{"id"}, []string{"name", "PR"},
		[]cfd.Cell{w, w, w})
	φ4 := cfd.MustNew("phi4", s, []string{"CT", "STR"}, []string{"zip"},
		[]cfd.Cell{w, w, w})

	// ϕ5: [CTY] → [VAT], one constant row per country: a pure constant
	// CFD (every row binds the RHS to a constant).
	var rows5 [][]cfd.Cell
	for _, co := range g.countries {
		rows5 = append(rows5, []cfd.Cell{cfd.C(co.name), cfd.C(co.vat)})
	}
	φ5 := cfd.MustNew("phi5", s, []string{"CTY"}, []string{"VAT"}, rows5...)

	// ϕ6: [AC] → [CT,ST], one constant row per area code. Together with
	// ϕ4 (CT,STR → zip) and ϕ2 (zip → CT,ST) the dependency graph is
	// cyclic on {CT, zip}: repairing one can re-violate the other, the
	// situation of the paper's Example 4.1.
	var rows6 [][]cfd.Cell
	for ci := range g.cities {
		c := g.cities[ci]
		for _, ac := range c.acs {
			rows6 = append(rows6, []cfd.Cell{
				cfd.C(ac), cfd.C(c.name), cfd.C(c.state),
			})
		}
	}
	φ6 := cfd.MustNew("phi6", s, []string{"AC"}, []string{"CT", "ST"}, rows6...)

	// ϕ7: [CT,ST] → [CTY], wildcard row plus one row per city; reads the
	// attributes ϕ2/ϕ6 write and writes the attribute ϕ5 reads,
	// lengthening the repair chains.
	rows7 := [][]cfd.Cell{{w, w, w}}
	for ci := range g.cities {
		c := g.cities[ci]
		rows7 = append(rows7, []cfd.Cell{
			cfd.C(c.name), cfd.C(c.state), cfd.C(g.countries[c.country].name),
		})
	}
	φ7 := cfd.MustNew("phi7", s, []string{"CT", "ST"}, []string{"CTY"}, rows7...)

	return []*cfd.CFD{φ1, φ2, φ3, φ4, φ5, φ6, φ7}
}
