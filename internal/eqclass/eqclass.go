// Package eqclass implements the equivalence classes of tuple attributes
// that drive the batch-repair algorithm (§4.1). An equivalence class E is
// a set of (tuple, attribute) pairs that the repair has decided must share
// one value, its target value targ(E). Targets upgrade monotonically
//
//	'_'  →  constant a  →  null
//
// ('_' = not yet fixed, null = cannot be made certain); a target never
// moves from one constant to another and never leaves null. Separating
// "which attribute values must be equal" from "what value they take"
// lets the algorithm defer value assignment and avoid poor local
// decisions (paper Example 4.1).
package eqclass

import (
	"fmt"

	"cfdclean/internal/relation"
)

// Key identifies one attribute of one tuple: the paper's (t, A) pair.
type Key struct {
	T relation.TupleID
	A int
}

// Kind is the state of a class's target value.
type Kind int

const (
	// Unset is the paper's '_': the target is not yet fixed.
	Unset Kind = iota
	// Const: the class will take a specific constant.
	Const
	// Null: the value cannot be made certain; the class takes SQL null.
	Null
)

func (k Kind) String() string {
	switch k {
	case Unset:
		return "_"
	case Const:
		return "const"
	case Null:
		return "null"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// class is a union-find node; fields are meaningful at roots only.
type class struct {
	parent int
	size   int
	kind   Kind
	// val is the interned id of the constant target (kind == Const).
	// Storing the id instead of the string makes target comparisons and
	// merges O(1) integer operations.
	val     relation.ValueID
	members []Key // maintained at the root
}

// Classes manages the equivalence classes over (tuple, attribute) pairs.
// Classes are created lazily: every key starts in its own singleton class
// with target '_'. Constant targets are interned in the dictionary the
// manager was created with (normally the working relation's).
type Classes struct {
	dict  *relation.Dict
	nodes []class
	index map[Key]int

	assigned int // classes whose target is Const or Null (roots only)
}

// New creates an empty class manager interning constant targets in dict.
// A nil dict gets a private dictionary.
func New(dict *relation.Dict) *Classes {
	return NewSized(dict, 0)
}

// NewSized is New with a capacity hint: the node table and key index are
// pre-sized for about n keys, so a repair whose working-set cardinality
// is known up front (e.g. from the violation store's maintained counts)
// skips the incremental map growth entirely. The hint is advisory and
// has no effect on behaviour.
func NewSized(dict *relation.Dict, n int) *Classes {
	if dict == nil {
		dict = relation.NewDict()
	}
	if n < 0 {
		n = 0
	}
	return &Classes{dict: dict, nodes: make([]class, 0, n), index: make(map[Key]int, n)}
}

// Reset empties the manager for reuse, keeping its dictionary and the
// allocated capacity of the node table and key index. The component-
// parallel repair engine runs one equivalence-class universe per
// violation-graph component; Reset is what lets a worker reuse one
// Classes (its per-worker scratch state) across the components it is
// assigned instead of reallocating per component.
func (c *Classes) Reset() {
	c.nodes = c.nodes[:0]
	clear(c.index)
	c.assigned = 0
}

func (c *Classes) node(k Key) int {
	if i, ok := c.index[k]; ok {
		return i
	}
	i := len(c.nodes)
	c.nodes = append(c.nodes, class{parent: i, size: 1, members: []Key{k}})
	c.index[k] = i
	return i
}

func (c *Classes) find(i int) int {
	for c.nodes[i].parent != i {
		c.nodes[i].parent = c.nodes[c.nodes[i].parent].parent
		i = c.nodes[i].parent
	}
	return i
}

// Target returns the target kind and constant (when kind is Const) of the
// class containing k.
func (c *Classes) Target(k Key) (Kind, string) {
	r := c.find(c.node(k))
	n := &c.nodes[r]
	if n.kind == Const {
		return Const, c.dict.Str(n.val)
	}
	return n.kind, ""
}

// TargetID returns the target kind and the interned constant id of k's
// class; the id is only meaningful when kind is Const.
func (c *Classes) TargetID(k Key) (Kind, relation.ValueID) {
	r := c.find(c.node(k))
	return c.nodes[r].kind, c.nodes[r].val
}

// Value renders the target of k's class as a relation value; ok is false
// while the target is still '_'.
func (c *Classes) Value(k Key) (v relation.Value, ok bool) {
	kind, id := c.TargetID(k)
	switch kind {
	case Const:
		return c.dict.Value(id), true
	case Null:
		return relation.NullValue, true
	default:
		return relation.Value{}, false
	}
}

// Members returns the keys in k's class (shared slice; do not modify).
func (c *Classes) Members(k Key) []Key {
	r := c.find(c.node(k))
	return c.nodes[r].members
}

// Size returns |eq(k)|.
func (c *Classes) Size(k Key) int {
	r := c.find(c.node(k))
	return c.nodes[r].size
}

// SameClass reports whether k1 and k2 are in one class.
func (c *Classes) SameClass(k1, k2 Key) bool {
	return c.find(c.node(k1)) == c.find(c.node(k2))
}

// SetConst upgrades the target of k's class from '_' to the constant v.
// It fails if the target is already a different constant or null — those
// upgrades are irreversible (§4.1).
func (c *Classes) SetConst(k Key, v string) error {
	r := c.find(c.node(k))
	id := c.dict.InternStr(v)
	switch c.nodes[r].kind {
	case Unset:
		c.nodes[r].kind = Const
		c.nodes[r].val = id
		c.assigned++
		return nil
	case Const:
		if c.nodes[r].val == id {
			return nil
		}
		return fmt.Errorf("eqclass: target already fixed to %q, cannot change to %q", c.dict.Str(c.nodes[r].val), v)
	default:
		return fmt.Errorf("eqclass: target already null, cannot set constant %q", v)
	}
}

// SetNull upgrades the target of k's class to null. Always permitted:
// null is the top of the upgrade order.
func (c *Classes) SetNull(k Key) {
	r := c.find(c.node(k))
	if c.nodes[r].kind == Unset {
		c.assigned++
	}
	c.nodes[r].kind = Null
	c.nodes[r].val = relation.NullID
}

// CanMerge reports whether the classes of k1 and k2 may be merged under
// the rules of §4.1 case 2: neither target is null and they do not carry
// distinct constants. (When one side is null the violation is already
// resolved by the null semantics — case 2.3 — so no merge is needed;
// distinct constants are case 2.2 and require an LHS edit instead.)
func (c *Classes) CanMerge(k1, k2 Key) bool {
	r1, r2 := c.find(c.node(k1)), c.find(c.node(k2))
	if r1 == r2 {
		return true
	}
	n1, n2 := &c.nodes[r1], &c.nodes[r2]
	if n1.kind == Null || n2.kind == Null {
		return false
	}
	if n1.kind == Const && n2.kind == Const && n1.val != n2.val {
		return false
	}
	return true
}

// Merge unions the classes of k1 and k2 (§4.1 case 2.1). The resulting
// target is '_' if both were '_', otherwise the constant carried by
// either side. Merge fails exactly when CanMerge is false.
func (c *Classes) Merge(k1, k2 Key) error {
	r1, r2 := c.find(c.node(k1)), c.find(c.node(k2))
	if r1 == r2 {
		return nil
	}
	if !c.CanMerge(k1, k2) {
		n1, n2 := c.nodes[r1], c.nodes[r2]
		return fmt.Errorf("eqclass: cannot merge targets %v(%q) and %v(%q)",
			n1.kind, c.dict.Str(n1.val), n2.kind, c.dict.Str(n2.val))
	}
	// Weighted union: attach the smaller tree under the larger.
	if c.nodes[r1].size < c.nodes[r2].size {
		r1, r2 = r2, r1
	}
	n1, n2 := &c.nodes[r1], &c.nodes[r2]
	// Combine targets.
	switch {
	case n1.kind == Const && n2.kind == Const:
		c.assigned-- // two assigned classes become one
	case n2.kind == Const:
		n1.kind, n1.val = Const, n2.val
	}
	n1.size += n2.size
	n1.members = append(n1.members, n2.members...)
	n2.members = nil
	n2.parent = r1
	return nil
}

// NumClasses returns the current number of distinct classes among the keys
// seen so far — the paper's N, which never increases.
func (c *Classes) NumClasses() int {
	roots := 0
	for i := range c.nodes {
		if c.nodes[i].parent == i {
			roots++
		}
	}
	return roots
}

// NumAssigned returns the number of classes whose target is a constant or
// null — the paper's H, which never decreases. Together with NumClasses
// it witnesses the termination argument of Theorem 4.2.
func (c *Classes) NumAssigned() int { return c.assigned }

// Keys returns every key registered so far, in registration order.
func (c *Classes) Keys() []Key {
	out := make([]Key, 0, len(c.index))
	for i := range c.nodes {
		// Registration order == node order; members[0] of a fresh node is
		// its own key, but after merges member slices move. Track via the
		// index map instead.
		_ = i
	}
	for k := range c.index {
		out = append(out, k)
	}
	return out
}

// Roots invokes f once per class with any representative key and the
// class target.
func (c *Classes) Roots(f func(rep Key, kind Kind, val string, members []Key)) {
	for i := range c.nodes {
		if c.nodes[i].parent != i || len(c.nodes[i].members) == 0 {
			continue
		}
		n := &c.nodes[i]
		val := ""
		if n.kind == Const {
			val = c.dict.Str(n.val)
		}
		f(n.members[0], n.kind, val, n.members)
	}
}
