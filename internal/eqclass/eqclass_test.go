package eqclass

import (
	"testing"
	"testing/quick"

	"cfdclean/internal/relation"
)

func k(t int64, a int) Key { return Key{T: relation.TupleID(t), A: a} }

func TestSingletonDefaults(t *testing.T) {
	c := New(nil)
	kind, _ := c.Target(k(1, 0))
	if kind != Unset {
		t.Errorf("fresh class target = %v, want Unset", kind)
	}
	if c.Size(k(1, 0)) != 1 {
		t.Error("fresh class size must be 1")
	}
	if _, ok := c.Value(k(1, 0)); ok {
		t.Error("unset target must not produce a value")
	}
}

func TestSetConstUpgrades(t *testing.T) {
	c := New(nil)
	if err := c.SetConst(k(1, 0), "NYC"); err != nil {
		t.Fatal(err)
	}
	kind, v := c.Target(k(1, 0))
	if kind != Const || v != "NYC" {
		t.Errorf("target = %v %q", kind, v)
	}
	// Idempotent on the same constant.
	if err := c.SetConst(k(1, 0), "NYC"); err != nil {
		t.Errorf("same-constant set must succeed: %v", err)
	}
	// Constant-to-constant is forbidden (§4.1).
	if err := c.SetConst(k(1, 0), "PHI"); err == nil {
		t.Error("constant-to-constant upgrade must fail")
	}
	// Constant-to-null is allowed; null is terminal.
	c.SetNull(k(1, 0))
	if kind, _ := c.Target(k(1, 0)); kind != Null {
		t.Error("SetNull must stick")
	}
	if err := c.SetConst(k(1, 0), "NYC"); err == nil {
		t.Error("null-to-constant must fail")
	}
	if v, ok := c.Value(k(1, 0)); !ok || !v.Null {
		t.Error("null target must produce the null value")
	}
}

func TestMergeCombinesTargets(t *testing.T) {
	c := New(nil)
	// unset + unset -> unset
	if err := c.Merge(k(1, 0), k(2, 0)); err != nil {
		t.Fatal(err)
	}
	if kind, _ := c.Target(k(1, 0)); kind != Unset {
		t.Error("unset+unset must stay unset")
	}
	if !c.SameClass(k(1, 0), k(2, 0)) {
		t.Error("merge must join classes")
	}
	if c.Size(k(1, 0)) != 2 {
		t.Errorf("merged size = %d", c.Size(k(1, 0)))
	}
	// unset + const -> const, visible from both sides.
	c.SetConst(k(3, 0), "PHI")
	if err := c.Merge(k(1, 0), k(3, 0)); err != nil {
		t.Fatal(err)
	}
	for _, key := range []Key{k(1, 0), k(2, 0), k(3, 0)} {
		kind, v := c.Target(key)
		if kind != Const || v != "PHI" {
			t.Errorf("Target(%v) = %v %q, want Const PHI", key, kind, v)
		}
	}
}

func TestMergeRejections(t *testing.T) {
	c := New(nil)
	c.SetConst(k(1, 0), "NYC")
	c.SetConst(k(2, 0), "PHI")
	if c.CanMerge(k(1, 0), k(2, 0)) {
		t.Error("distinct constants must not merge (case 2.2)")
	}
	if err := c.Merge(k(1, 0), k(2, 0)); err == nil {
		t.Error("Merge must fail on distinct constants")
	}
	// Same constants merge fine.
	c.SetConst(k(3, 0), "NYC")
	if err := c.Merge(k(1, 0), k(3, 0)); err != nil {
		t.Errorf("equal constants must merge: %v", err)
	}
	// Null never merges (case 2.3: violation already resolved).
	c.SetNull(k(4, 0))
	if c.CanMerge(k(4, 0), k(5, 0)) {
		t.Error("null class must not merge")
	}
	// Self-merge is trivially fine even when null.
	if !c.CanMerge(k(4, 0), k(4, 0)) {
		t.Error("self merge must be allowed")
	}
	if err := c.Merge(k(4, 0), k(4, 0)); err != nil {
		t.Error("self merge must succeed")
	}
}

func TestMembers(t *testing.T) {
	c := New(nil)
	c.Merge(k(1, 0), k(2, 0))
	c.Merge(k(1, 0), k(3, 1))
	ms := c.Members(k(2, 0))
	if len(ms) != 3 {
		t.Fatalf("members = %v", ms)
	}
	seen := make(map[Key]bool)
	for _, m := range ms {
		seen[m] = true
	}
	for _, want := range []Key{k(1, 0), k(2, 0), k(3, 1)} {
		if !seen[want] {
			t.Errorf("members missing %v", want)
		}
	}
}

// TestTerminationMeasures verifies the invariants behind Theorem 4.2:
// merging reduces N (class count) and never reduces H (assigned count);
// target upgrades increase H.
func TestTerminationMeasures(t *testing.T) {
	c := New(nil)
	for i := int64(1); i <= 6; i++ {
		c.Target(k(i, 0)) // register
	}
	if c.NumClasses() != 6 || c.NumAssigned() != 0 {
		t.Fatalf("initial N=%d H=%d", c.NumClasses(), c.NumAssigned())
	}
	c.Merge(k(1, 0), k(2, 0))
	if c.NumClasses() != 5 {
		t.Errorf("N after merge = %d, want 5", c.NumClasses())
	}
	c.SetConst(k(3, 0), "x")
	if c.NumAssigned() != 1 {
		t.Errorf("H after SetConst = %d, want 1", c.NumAssigned())
	}
	c.SetNull(k(4, 0))
	if c.NumAssigned() != 2 {
		t.Errorf("H after SetNull = %d, want 2", c.NumAssigned())
	}
	// SetNull on an assigned class does not double-count.
	c.SetNull(k(3, 0))
	if c.NumAssigned() != 2 {
		t.Errorf("H after re-null = %d, want 2", c.NumAssigned())
	}
	// Merging const with unset keeps H (const class absorbs).
	c.Merge(k(5, 0), k(6, 0))
	h := c.NumAssigned()
	c.SetConst(k(5, 0), "y")
	if c.NumAssigned() != h+1 {
		t.Errorf("H after const on merged = %d, want %d", c.NumAssigned(), h+1)
	}
	// Merging two const classes with the same value reduces H by one
	// (two assigned classes become one).
	c.SetConst(k(7, 0), "y")
	h = c.NumAssigned()
	if err := c.Merge(k(5, 0), k(7, 0)); err != nil {
		t.Fatal(err)
	}
	if c.NumAssigned() != h-1 {
		t.Errorf("H after const-const merge = %d, want %d", c.NumAssigned(), h-1)
	}
}

func TestRoots(t *testing.T) {
	c := New(nil)
	c.Merge(k(1, 0), k(2, 0))
	c.SetConst(k(1, 0), "v")
	c.Target(k(3, 0))
	var classes, assigned int
	c.Roots(func(rep Key, kind Kind, val string, members []Key) {
		classes++
		if kind == Const {
			assigned++
			if val != "v" || len(members) != 2 {
				t.Errorf("const class: val=%q members=%v", val, members)
			}
		}
	})
	if classes != 2 || assigned != 1 {
		t.Errorf("Roots saw %d classes, %d assigned", classes, assigned)
	}
}

func TestKindString(t *testing.T) {
	if Unset.String() != "_" || Const.String() != "const" || Null.String() != "null" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must render something")
	}
}

// Property: union-find transitivity — after arbitrary merges of unset
// classes, SameClass is an equivalence relation.
func TestUnionFindTransitive(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		c := New(nil)
		for _, p := range pairs {
			c.Merge(k(int64(p[0]), 0), k(int64(p[1]), 0))
		}
		// Transitivity spot-check over the registered keys.
		keys := c.Keys()
		for i := 0; i < len(keys) && i < 8; i++ {
			for j := 0; j < len(keys) && j < 8; j++ {
				for l := 0; l < len(keys) && l < 8; l++ {
					if c.SameClass(keys[i], keys[j]) && c.SameClass(keys[j], keys[l]) && !c.SameClass(keys[i], keys[l]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: N + (merges that succeeded) stays constant: every successful
// merge of two distinct classes reduces NumClasses by exactly one.
func TestMergeReducesN(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		c := New(nil)
		seen := make(map[Key]bool)
		for _, p := range pairs {
			seen[k(int64(p[0]), 0)] = true
			seen[k(int64(p[1]), 0)] = true
		}
		for key := range seen {
			c.Target(key)
		}
		n := c.NumClasses()
		for _, p := range pairs {
			a, b := k(int64(p[0]), 0), k(int64(p[1]), 0)
			joined := !c.SameClass(a, b)
			if err := c.Merge(a, b); err != nil {
				return false
			}
			if joined {
				n--
			}
			if c.NumClasses() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
