package ind

import (
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

func orders(t *testing.T, rows ...[]string) *relation.Relation {
	t.Helper()
	s := relation.MustSchema("orders", "item", "city")
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.InsertRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func catalog(t *testing.T, rows ...[]string) *relation.Relation {
	t.Helper()
	s := relation.MustSchema("catalog", "sku", "title")
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.InsertRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func ordersIntoCatalog(t *testing.T, child, parent *relation.Relation) *IND {
	t.Helper()
	d, err := New("fk", child.Schema(), []string{"item"}, parent.Schema(), []string{"sku"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	c := orders(t)
	p := catalog(t)
	if _, err := New("bad", c.Schema(), nil, p.Schema(), nil); err == nil {
		t.Fatal("empty attribute lists accepted")
	}
	if _, err := New("bad", c.Schema(), []string{"item"}, p.Schema(), []string{"sku", "title"}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := New("bad", c.Schema(), []string{"nope"}, p.Schema(), []string{"sku"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestDetection(t *testing.T) {
	child := orders(t, []string{"a1", "PHI"}, []string{"a2", "NYC"}, []string{"a9", "LA"})
	parent := catalog(t, []string{"a1", "Lamp"}, []string{"a2", "Kettle"})
	d := ordersIntoCatalog(t, child, parent)
	got := Violations(child, parent, d)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("violations = %v, want [3]", got)
	}
	if Satisfies(child, parent, d) {
		t.Fatal("Satisfies must be false")
	}
}

func TestNullChildSatisfies(t *testing.T) {
	child := orders(t)
	tp := relation.NewTuple(0, "x", "PHI")
	tp.Vals[0] = relation.NullValue
	child.MustInsert(tp)
	parent := catalog(t, []string{"a1", "Lamp"})
	d := ordersIntoCatalog(t, child, parent)
	if !Satisfies(child, parent, d) {
		t.Fatal("null X-attribute must satisfy the IND")
	}
}

func TestRepairByModification(t *testing.T) {
	// "a11" is one edit from catalog sku "a1": cheaper to fix the child.
	child := orders(t, []string{"a11", "PHI"})
	parent := catalog(t, []string{"a1", "Lamp"}, []string{"zz9", "Kettle"})
	d := ordersIntoCatalog(t, child, parent)
	res, err := Repair(child, parent, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Modified != 1 || res.Inserted != 0 {
		t.Fatalf("modified=%d inserted=%d, want 1/0", res.Modified, res.Inserted)
	}
	if got := res.Child.Tuple(1).Vals[0].Str; got != "a1" {
		t.Fatalf("child item = %q, want a1", got)
	}
	if !Satisfies(res.Child, res.Parent, d) {
		t.Fatal("repair does not satisfy the IND")
	}
	// Inputs untouched.
	if child.Tuple(1).Vals[0].Str != "a11" {
		t.Fatal("input child modified")
	}
}

func TestRepairByInsertion(t *testing.T) {
	// Child value is far from every catalog sku: inserting is cheaper.
	child := orders(t, []string{"completely-different", "PHI"})
	parent := catalog(t, []string{"a1", "Lamp"})
	d := ordersIntoCatalog(t, child, parent)
	res, err := Repair(child, parent, d, &Options{InsertCost: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Modified != 0 {
		t.Fatalf("modified=%d inserted=%d, want 0/1", res.Modified, res.Inserted)
	}
	if !Satisfies(res.Child, res.Parent, d) {
		t.Fatal("repair does not satisfy the IND")
	}
	// The inserted parent tuple carries the child value on sku and null
	// on the rest.
	found := false
	for _, tp := range res.Parent.Tuples() {
		if tp.Vals[0].Str == "completely-different" {
			found = true
			if !tp.Vals[1].Null {
				t.Fatal("inserted tuple must be null outside Y")
			}
		}
	}
	if !found {
		t.Fatal("inserted parent tuple missing")
	}
}

func TestRepairWeightsGuideChoice(t *testing.T) {
	// A trusted (weight 1) child value far-ish from the only sku: the
	// modification cost exceeds InsertCost, so insertion wins; with a
	// low weight the same edit is cheap and modification wins.
	parent := catalog(t, []string{"abcd", "Lamp"})
	for _, tc := range []struct {
		w          float64
		wantInsert bool
	}{
		{w: 1.0, wantInsert: true},
		{w: 0.1, wantInsert: false},
	} {
		child := orders(t)
		tp := relation.NewTuple(0, "wxyz", "PHI")
		tp.SetWeight(0, tc.w)
		child.MustInsert(tp)
		d := ordersIntoCatalog(t, child, parent)
		res, err := Repair(child, parent, d, &Options{InsertCost: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if tc.wantInsert && res.Inserted != 1 {
			t.Fatalf("w=%v: want insertion, got %+v", tc.w, res)
		}
		if !tc.wantInsert && res.Modified != 1 {
			t.Fatalf("w=%v: want modification, got %+v", tc.w, res)
		}
	}
}

func TestMultiAttributeIND(t *testing.T) {
	cs := relation.MustSchema("c", "a", "b")
	ps := relation.MustSchema("p", "x", "y", "z")
	child := relation.New(cs)
	child.MustInsert(relation.NewTuple(0, "k1", "v2"))
	parent := relation.New(ps)
	parent.MustInsert(relation.NewTuple(0, "k1", "v1", "t"))
	parent.MustInsert(relation.NewTuple(0, "k2", "v2", "t"))
	d, err := New("pair", cs, []string{"a", "b"}, ps, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if Satisfies(child, parent, d) {
		t.Fatal("(k1,v2) is not a parent combination")
	}
	res, err := Repair(child, parent, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Satisfies(res.Child, res.Parent, d) {
		t.Fatal("repair violates the IND")
	}
	// The nearest combination is one edit away on a single attribute.
	if res.Modified != 1 {
		t.Fatalf("want one modification, got %+v", res)
	}
}

func TestRepairWithCFDs(t *testing.T) {
	// Orders with a CFD on city and an IND into the catalog: the dirty
	// tuple violates both; the combined driver must fix both.
	cs := relation.MustSchema("orders", "item", "zip", "city")
	child := relation.New(cs)
	child.MustInsert(relation.NewTuple(0, "a1", "10012", "NYC"))
	child.MustInsert(relation.NewTuple(0, "a77", "10012", "PHI")) // CFD + IND dirty
	parent := catalog(t, []string{"a1", "Lamp"}, []string{"a7", "Kettle"})

	phi, err := cfd.New("zipcity", cs, []string{"zip"}, []string{"city"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC")})
	if err != nil {
		t.Fatal(err)
	}
	sigma := cfd.NormalizeAll([]*cfd.CFD{phi})
	d, err := New("fk", cs, []string{"item"}, parent.Schema(), []string{"sku"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RepairWithCFDs(child, parent, sigma, []*IND{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Child, sigma) {
		t.Fatal("combined repair violates Σ")
	}
	if !Satisfies(res.Child, res.Parent, d) {
		t.Fatal("combined repair violates the IND")
	}
}

func TestStringer(t *testing.T) {
	child := orders(t)
	parent := catalog(t)
	d := ordersIntoCatalog(t, child, parent)
	s := d.String()
	if s == "" || d.Name != "fk" {
		t.Fatalf("String() = %q", s)
	}
}
