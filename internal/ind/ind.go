// Package ind implements inclusion dependencies (INDs) and their
// cost-based repair, the paper's second item of future work (§9: "to
// effectively clean real-life data, it is often necessary to consider
// both CFDs and inclusion dependencies [5]").
//
// An IND R1[X] ⊆ R2[Y] demands that every X-projection of the child
// relation occurs as a Y-projection of the parent. Following [5]
// (Bohannon et al., SIGMOD 2005), violations are repaired either by
// modifying the child tuple's X-attributes to the nearest existing
// parent combination under the weighted DL cost model, or — when no
// parent combination is acceptably close — by inserting a new parent
// tuple carrying the child's values on Y and null elsewhere. The
// combined driver alternates CFD and IND repairs to a fixpoint, since
// each kind of fix can surface violations of the other.
package ind

import (
	"fmt"
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cost"
	"cfdclean/internal/relation"
	"cfdclean/internal/repair"
)

// IND is an inclusion dependency Child[X] ⊆ Parent[Y] between two
// relations (possibly the same one).
type IND struct {
	Name   string
	Child  *relation.Schema
	X      []int
	Parent *relation.Schema
	Y      []int
}

// New builds an IND from attribute names.
func New(name string, child *relation.Schema, x []string, parent *relation.Schema, y []string) (*IND, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ind %s: attribute lists must be non-empty and of equal length", name)
	}
	xi, err := child.Indexes(x...)
	if err != nil {
		return nil, fmt.Errorf("ind %s: %w", name, err)
	}
	yi, err := parent.Indexes(y...)
	if err != nil {
		return nil, fmt.Errorf("ind %s: %w", name, err)
	}
	return &IND{Name: name, Child: child, X: xi, Parent: parent, Y: yi}, nil
}

// String renders the IND.
func (d *IND) String() string {
	xs := make([]string, len(d.X))
	ys := make([]string, len(d.Y))
	for i := range d.X {
		xs[i] = d.Child.Attr(d.X[i])
		ys[i] = d.Parent.Attr(d.Y[i])
	}
	return fmt.Sprintf("%s: %s[%v] ⊆ %s[%v]", d.Name, d.Child.Name(), xs, d.Parent.Name(), ys)
}

// Violations returns the ids of child tuples whose X-projection does not
// occur in parent[Y]. A child tuple with a null X-attribute satisfies the
// IND trivially (SQL semantics, as in [5]).
func Violations(child, parent *relation.Relation, d *IND) []relation.TupleID {
	idx := relation.NewHashIndex(parent, d.Y)
	var out []relation.TupleID
	for _, t := range child.Tuples() {
		if t.HasNullOn(d.X) {
			continue
		}
		if len(idx.Lookup(t.Project(d.X))) == 0 {
			out = append(out, t.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Satisfies reports child |= d against parent.
func Satisfies(child, parent *relation.Relation, d *IND) bool {
	return len(Violations(child, parent, d)) == 0
}

// Options tunes IND repair.
type Options struct {
	// CostModel scores child-side modifications; nil means the default.
	CostModel *cost.Model
	// InsertCost is the cost charged for inserting a new parent tuple;
	// a child-side modification cheaper than this wins. Default 1 (one
	// maximally-weighted full-cell change).
	InsertCost float64
	// MaxCandidates bounds how many parent combinations are scored per
	// violating tuple. Default 64.
	MaxCandidates int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.CostModel == nil {
		out.CostModel = cost.Default()
	}
	if out.InsertCost <= 0 {
		out.InsertCost = 1
	}
	if out.MaxCandidates <= 0 {
		out.MaxCandidates = 64
	}
	return out
}

// Result reports one IND repair.
type Result struct {
	// Child and Parent are the repaired relations (inputs unmodified).
	Child, Parent *relation.Relation
	// Modified counts child tuples whose X-attributes were edited;
	// Inserted counts new parent tuples.
	Modified, Inserted int
	// Cost is the total modification cost plus InsertCost per insertion.
	Cost float64
}

// Repair makes child satisfy d against parent by child-side value
// modifications or parent-side insertions, whichever is cheaper per
// violating tuple. The inputs are not modified.
func Repair(child, parent *relation.Relation, d *IND, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	outChild := child.Clone()
	outParent := parent.Clone()
	res := &Result{Child: outChild, Parent: outParent}

	idx := relation.NewHashIndex(outParent, d.Y)
	// Candidate parent combinations for nearest-match scoring.
	combos := comboList(outParent, d.Y)

	for _, id := range Violations(child, parent, d) {
		t := outChild.Tuple(id)
		best, bestCost := []relation.Value(nil), -1.0
		scored := 0
		for _, c := range combos {
			var chg float64
			for i, a := range d.X {
				chg += o.CostModel.Change(t, a, c[i])
			}
			if bestCost < 0 || chg < bestCost {
				best, bestCost = c, chg
			}
			scored++
			if scored >= o.MaxCandidates {
				break
			}
		}
		if bestCost >= 0 && bestCost <= o.InsertCost {
			// Modify the child's X-attributes to the nearest combination.
			for i, a := range d.X {
				if _, err := outChild.Set(id, a, best[i]); err != nil {
					return nil, fmt.Errorf("ind: repairing child tuple %d: %w", id, err)
				}
			}
			res.Modified++
			res.Cost += bestCost
			continue
		}
		// Insert a parent tuple carrying the child's values on Y.
		nt := relation.NewTuple(0)
		nt.Vals = make([]relation.Value, outParent.Schema().Arity())
		for i := range nt.Vals {
			nt.Vals[i] = relation.NullValue
		}
		for i, a := range d.Y {
			nt.Vals[a] = t.Vals[d.X[i]]
		}
		if err := outParent.Insert(nt); err != nil {
			return nil, fmt.Errorf("ind: inserting parent tuple: %w", err)
		}
		idx.Add(nt)
		combos = append(combos, nt.Project(d.Y))
		res.Inserted++
		res.Cost += o.InsertCost
	}
	return res, nil
}

// comboList returns the distinct Y-projections of parent, largest
// support first (the most common combinations are scored first, so the
// MaxCandidates cut keeps the likely matches).
func comboList(parent *relation.Relation, y []int) [][]relation.Value {
	groups := parent.GroupBy(y)
	type entry struct {
		vals []relation.Value
		n    int
	}
	entries := make([]entry, 0, len(groups))
	for _, ts := range groups {
		entries = append(entries, entry{ts[0].Project(y), len(ts)})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return relation.KeyOf(entries[i].vals...) < relation.KeyOf(entries[j].vals...)
	})
	out := make([][]relation.Value, len(entries))
	for i, e := range entries {
		out[i] = e.vals
	}
	return out
}

// RepairWithCFDs alternates CFD repair on the child with IND repair
// against the parent until both constraint kinds hold or rounds are
// exhausted — the combined cleaning the paper's future work calls for.
// CFD repairs can break inclusion (a corrected key may no longer occur in
// the parent) and IND repairs can break CFDs (a borrowed combination may
// disagree with a pattern), hence the fixpoint loop.
func RepairWithCFDs(child, parent *relation.Relation, sigma []*cfd.Normal, inds []*IND, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	curChild, curParent := child, parent
	res := &Result{}
	const maxRounds = 4
	for round := 0; round < maxRounds; round++ {
		br, err := repair.Batch(curChild, sigma, nil)
		if err != nil {
			return nil, err
		}
		curChild = br.Repair
		dirty := false
		for _, d := range inds {
			ir, err := Repair(curChild, curParent, d, &o)
			if err != nil {
				return nil, err
			}
			if ir.Modified+ir.Inserted > 0 {
				dirty = true
			}
			curChild, curParent = ir.Child, ir.Parent
			res.Modified += ir.Modified
			res.Inserted += ir.Inserted
			res.Cost += ir.Cost
		}
		if !dirty && cfd.Satisfies(curChild, sigma) {
			break
		}
	}
	res.Child, res.Parent = curChild, curParent
	return res, nil
}
