// Package store is the pluggable tuple-storage layer behind a streaming
// session's relation. The default backend is the relation's own in-memory
// tuple array — zero overhead, exactly the pre-store behavior. The disk
// backend (Disk) is a write-through page store subscribed to the
// relation's mutation journal: fixed-width interned rows in
// generation-numbered page files, a persistent intern dictionary keyed by
// the relation Dict's dense ValueIDs, and an LRU cache over clean pages.
//
// The disk backend does not move the working set out of RAM — the repair
// engine operates on the in-memory relation either way. What it removes
// is the O(relation) cost at the durability boundary: snapshot rotation
// flushes only the pages dirtied since the last rotation (the snapshot
// file shrinks to a slim header pointing at a page-file generation), and
// recovery streams rows back from the page files instead of decoding a
// relation-sized snapshot record, reopening pages lazily as they are
// touched. See internal/server for the wiring.
package store

import "fmt"

// Kind selects a session's tuple-storage backend.
type Kind int

const (
	// KindDefault inherits the node's configured default backend.
	KindDefault Kind = iota
	// KindMem keeps rows only in the relation's in-memory array;
	// snapshots carry the full relation inline (the pre-store format).
	KindMem
	// KindDisk runs the write-through page store; snapshots are slim
	// headers referencing a page-file generation.
	KindDisk
)

// ParseKind parses the textual backend names used by the -store flag and
// the per-session create option.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "":
		return KindDefault, nil
	case "mem":
		return KindMem, nil
	case "disk":
		return KindDisk, nil
	}
	return KindDefault, fmt.Errorf("store: unknown backend %q (want mem or disk)", s)
}

// String renders the flag spelling.
func (k Kind) String() string {
	switch k {
	case KindMem:
		return "mem"
	case KindDisk:
		return "disk"
	}
	return "default"
}

// Page size bounds. A page buffers rowsPerPage = PageSize/rowWidth rows;
// wide schemas whose single row exceeds PageSize degrade to one row per
// page rather than failing.
const (
	MinPageSize     = 4 << 10
	MaxPageSize     = 64 << 10
	DefaultPageSize = 16 << 10
)

// DefaultCachePages bounds the clean-page LRU when Options leaves it
// zero: 256 × 16 KiB ≈ 4 MiB of hot rows per session.
const DefaultCachePages = 256

// Options tunes a Disk store.
type Options struct {
	// PageSize is the page buffer size in bytes, clamped to
	// [MinPageSize, MaxPageSize]; zero means DefaultPageSize. It only
	// matters at Create: an existing store's geometry is read from its
	// manifest, since row addressing must stay stable for its lifetime.
	PageSize int
	// CachePages bounds the clean-page LRU; zero means
	// DefaultCachePages, negative disables caching.
	CachePages int
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PageSize < MinPageSize {
		o.PageSize = MinPageSize
	}
	if o.PageSize > MaxPageSize {
		o.PageSize = MaxPageSize
	}
	if o.CachePages == 0 {
		o.CachePages = DefaultCachePages
	}
	if o.CachePages < 0 {
		o.CachePages = 0
	}
	return o
}

// Stats is a point-in-time summary of a Disk store, surfaced in session
// listings and /metrics.
type Stats struct {
	// Gen is the last committed manifest generation.
	Gen uint64
	// Pages counts pages in the committed page table; DirtyPages the
	// pages buffered in memory awaiting the next flush (including
	// flushes in flight); CachedPages the clean pages held by the LRU.
	Pages       int
	DirtyPages  int
	CachedPages int
	// Tuples is the row count at the last committed flush and
	// DictEntries the persisted intern-dictionary size.
	Tuples      int
	DictEntries int
	// DiskBytes is the total size of the store's files on disk.
	DiskBytes int64
}
