package store

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

// On-disk layout of one Disk store directory:
//
//	pages-<gen>.dat    page records written by flush <gen>
//	order-<gen>.dat    physical row order at flush <gen>
//	manifest-<gen>.mft page table + geometry at flush <gen>
//	dict.log           append-only intern dictionary (shared by all gens)
//
// All files open with a magic string and a version byte. Records are
// CRC-32C framed like the WAL's. A page file holds full page images:
//
//	page record  = pageNo(u64 LE) length(u32 LE) crc(u32 LE) payload
//
// and is written once per flush, then never modified — a later flush
// that re-dirties a page writes the page's new image into its own
// generation's file and repoints the page table. The manifest is the
// atomic commit point (tmp + fsync + rename + dirsync): it names, for
// every page, the generation file and offset holding its newest image.
// Because old page files are immutable, the previous manifest remains a
// consistent fallback, which is exactly what snapshot-generation pruning
// (keep the newest two) requires.
//
// Rows are fixed-width and addressed by TupleID:
//
//	row  = used(u8) wflag(u8) id(i64 LE) valueID(u32 LE)×arity weight(f64 LE)×arity
//	page(id) = id / rowsPerPage,  slot(id) = id % rowsPerPage
//
// Values are the relation Dict's dense uint32 ids; dict.log persists the
// dictionary as length-prefixed strings in intern order, so ordinal i
// reproduces ValueID i+1 on reload. The dictionary delta is fsynced
// before the pages that reference it.

const (
	storeVersion  = 1
	pageMagic     = "CFDPAGE"
	orderMagic    = "CFDORDR"
	manifestMagic = "CFDSTOR"
	dictMagic     = "CFDDICT"

	// orderChunkIDs bounds the row ids per order-file record.
	orderChunkIDs = 1 << 16
)

var storeCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// errCorrupt reports structural damage in a store file; recovery treats
// it like a damaged snapshot and falls back to an older generation.
var errCorrupt = errors.New("store: corrupt")

func pagesName(gen uint64) string    { return fmt.Sprintf("pages-%010d.dat", gen) }
func orderName(gen uint64) string    { return fmt.Sprintf("order-%010d.dat", gen) }
func manifestName(gen uint64) string { return fmt.Sprintf("manifest-%010d.mft", gen) }

const dictName = "dict.log"

// pageLoc locates a page's newest committed image.
type pageLoc struct {
	gen uint64
	off int64 // record start within pages-<gen>.dat
}

// Disk is the disk-backed tuple store for one session. It subscribes to
// the live relation's mutation journal and maintains, write-through, a
// dirty in-memory image of every page touched since the last flush;
// BeginFlush/Commit move that image into a new file generation at
// snapshot-rotation boundaries. All methods are safe for the session
// pipeline's concurrency: the worker writes through observe while the
// committer commits a prior flush.
type Disk struct {
	dir         string
	arity       int
	rowWidth    int
	rowsPerPage uint64
	pageBytes   int
	cacheCap    int

	mu    sync.Mutex
	dict  *relation.Dict
	unsub func()

	// dictNext counts non-null dictionary ordinals already persisted;
	// dictOff is the append offset in dict.log.
	dictNext int
	dictFile *os.File
	dictOff  int64

	// Committed state: the newest manifest and its page table, plus the
	// previous manifest's file references for prune safety.
	gen         uint64
	hasManifest bool
	table       map[uint64]pageLoc
	tupleCount  int
	prevGen     uint64
	prevRefs    map[uint64]bool
	hasPrev     bool

	// strs resolves persisted ValueIDs on the read path (ordinal i ->
	// ValueID i+1); populated by Open, extended on dict flush.
	strs []string

	dirty   map[uint64][]byte
	pending []*Flush
	cache   *pageLRU
	files   map[uint64]*os.File // read handles, keyed by generation

	err    error
	closed bool
}

// Create initializes an empty store directory for a relation of the
// given arity. Any previous contents are removed.
func Create(dir string, arity int, opts Options) (*Disk, error) {
	opts = opts.withDefaults()
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := newDisk(dir, arity, opts.PageSize, opts.CachePages)
	f, err := os.OpenFile(filepath.Join(dir, dictName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := append([]byte(dictMagic), storeVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	d.dictFile = f
	d.dictOff = int64(len(hdr))
	return d, nil
}

func newDisk(dir string, arity, pageSize, cachePages int) *Disk {
	rowWidth := 2 + 8 + 4*arity + 8*arity
	rpp := pageSize / rowWidth
	if rpp < 1 {
		rpp = 1
	}
	return &Disk{
		dir:         dir,
		arity:       arity,
		rowWidth:    rowWidth,
		rowsPerPage: uint64(rpp),
		pageBytes:   rpp * rowWidth,
		cacheCap:    cachePages,
		table:       make(map[uint64]pageLoc),
		dirty:       make(map[uint64][]byte),
		cache:       newPageLRU(cachePages),
		files:       make(map[uint64]*os.File),
	}
}

// Attach subscribes the store to rel's mutation journal, write-through
// from the next mutation on. Must be called from the relation's writer
// serialization context (increpair.Session holds its lock).
func (d *Disk) Attach(rel *relation.Relation) {
	d.mu.Lock()
	d.dict = rel.Dict()
	d.mu.Unlock()
	d.unsub = rel.Subscribe(d.observe)
}

// SeedAll writes every current row of rel into the dirty image — the
// bootstrap for a freshly created store under a live relation. Must be
// called from the writer context, after Attach.
func (d *Disk) SeedAll(rel *relation.Relation) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range rel.Tuples() {
		d.writeRowLocked(t)
	}
}

func (d *Disk) observe(dl relation.Delta) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.err != nil {
		return
	}
	switch dl.Kind {
	case relation.DeltaInsert, relation.DeltaUpdate:
		d.writeRowLocked(dl.T)
	case relation.DeltaDelete:
		d.clearRowLocked(dl.T.ID)
	}
}

func (d *Disk) writeRowLocked(t *relation.Tuple) {
	page, off := d.slotLocked(t.ID)
	if page == nil {
		return
	}
	row := page[off : off+d.rowWidth]
	row[0] = 1
	if t.W != nil {
		row[1] = 1
	} else {
		row[1] = 0
	}
	binary.LittleEndian.PutUint64(row[2:], uint64(t.ID))
	p := 10
	for a := 0; a < d.arity; a++ {
		binary.LittleEndian.PutUint32(row[p:], uint32(t.IDAt(a)))
		p += 4
	}
	for a := 0; a < d.arity; a++ {
		var w float64
		if t.W != nil {
			w = t.W[a]
		}
		binary.LittleEndian.PutUint64(row[p:], math.Float64bits(w))
		p += 8
	}
}

func (d *Disk) clearRowLocked(id relation.TupleID) {
	page, off := d.slotLocked(id)
	if page == nil {
		return
	}
	clear(page[off : off+d.rowWidth])
}

// slotLocked returns the dirty page holding id's row and the row's byte
// offset, materializing the page copy-on-write from the newest prior
// image (pending flush, clean cache, or committed file).
func (d *Disk) slotLocked(id relation.TupleID) ([]byte, int) {
	if d.err != nil {
		return nil, 0
	}
	no := uint64(id) / d.rowsPerPage
	off := int(uint64(id)%d.rowsPerPage) * d.rowWidth
	if b, ok := d.dirty[no]; ok {
		return b, off
	}
	b := make([]byte, d.pageBytes)
	if src := d.findPageLocked(no); src != nil {
		copy(b, src)
	} else if d.err != nil {
		return nil, 0 // read failure latched; stop advancing the image
	}
	d.dirty[no] = b
	return b, off
}

// findPageLocked returns the newest non-dirty image of page no: an
// in-flight flush (newest first), the clean LRU, or the committed file.
// A missing page (never written) returns nil with no error; a failing
// disk read latches d.err and returns nil.
func (d *Disk) findPageLocked(no uint64) []byte {
	for i := len(d.pending) - 1; i >= 0; i-- {
		if b, ok := d.pending[i].pages[no]; ok {
			return b
		}
	}
	if b, ok := d.cache.get(no); ok {
		return b
	}
	loc, ok := d.table[no]
	if !ok {
		return nil
	}
	b, err := d.readPageLocked(no, loc)
	if err != nil {
		d.err = err
		return nil
	}
	d.cache.put(no, b)
	return b
}

// readPageLocked reads and verifies one committed page image.
func (d *Disk) readPageLocked(no uint64, loc pageLoc) ([]byte, error) {
	f, ok := d.files[loc.gen]
	if !ok {
		var err error
		f, err = os.Open(filepath.Join(d.dir, pagesName(loc.gen)))
		if err != nil {
			return nil, err
		}
		d.files[loc.gen] = f
	}
	hdr := make([]byte, 16)
	if _, err := f.ReadAt(hdr, loc.off); err != nil {
		return nil, fmt.Errorf("%w: page %d record header: %v", errCorrupt, no, err)
	}
	gotNo := binary.LittleEndian.Uint64(hdr)
	ln := binary.LittleEndian.Uint32(hdr[8:])
	crc := binary.LittleEndian.Uint32(hdr[12:])
	if gotNo != no || int(ln) != d.pageBytes {
		return nil, fmt.Errorf("%w: page %d record mismatch (no=%d len=%d)", errCorrupt, no, gotNo, ln)
	}
	b := make([]byte, d.pageBytes)
	if _, err := f.ReadAt(b, loc.off+16); err != nil {
		return nil, fmt.Errorf("%w: page %d payload: %v", errCorrupt, no, err)
	}
	if crc32.Checksum(b, storeCastagnoli) != crc {
		return nil, fmt.Errorf("%w: page %d checksum mismatch", errCorrupt, no)
	}
	return b, nil
}

// Flush is the dirty image captured at one snapshot-rotation boundary,
// between BeginFlush (worker, at the boundary) and Commit or Abort
// (committer, in commit order).
type Flush struct {
	d       *Disk
	pages   map[uint64][]byte
	view    *relation.View
	dictLen int
	rows    int
	done    bool
}

// BeginFlush captures the dirty image, the physical row order (via the
// pinned view) and the dictionary watermark at a quiescent boundary.
// Must be called from the writer context. The returned Flush must be
// resolved with exactly one Commit or Abort, in FIFO order relative to
// other flushes of the same store.
func (d *Disk) BeginFlush(v *relation.View, rows int) *Flush {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &Flush{d: d, pages: d.dirty, view: v, rows: rows}
	if d.dict != nil {
		f.dictLen = d.dict.Len()
	}
	d.dirty = make(map[uint64][]byte)
	d.pending = append(d.pending, f)
	return f
}

// Abort releases the flush without committing: its pages merge back
// into the newer image (only where a newer copy does not supersede
// them) and the pinned view is released.
func (f *Flush) Abort() {
	if f.done {
		return
	}
	f.done = true
	d := f.d
	d.mu.Lock()
	idx := -1
	for i, p := range d.pending {
		if p == f {
			idx = i
			break
		}
	}
	if idx >= 0 {
		d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
		// Re-home pages that nothing newer has copied forward. Newer
		// images (later pending flushes, the dirty map) were CoW'd from
		// this one, so where they exist they strictly supersede it.
	merge:
		for no, b := range f.pages {
			if _, ok := d.dirty[no]; ok {
				continue
			}
			for i := idx; i < len(d.pending); i++ {
				if _, ok := d.pending[i].pages[no]; ok {
					continue merge
				}
			}
			if idx < len(d.pending) {
				d.pending[idx].pages[no] = b
			} else {
				d.dirty[no] = b
			}
		}
	}
	d.mu.Unlock()
	f.view.Release()
}

// Commit durably writes the flush as generation gen: dictionary delta
// first (fsync), then the page images and the row order (fsync), then
// the manifest (tmp + rename + dirsync) as the atomic commit point. On
// success the store's committed state advances and files no manifest of
// the two newest generations references are pruned. On failure the
// flush is aborted and the error is latched — the caller (the
// persister) marks the session's durability broken, exactly as for a
// failed snapshot write.
func (f *Flush) Commit(gen uint64) error {
	d := f.d
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		f.Abort()
		return ErrClosed
	}
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		f.Abort()
		return err
	}
	dictStart := d.dictNext
	d.mu.Unlock()

	err := d.commitFiles(f, gen, dictStart)
	if err != nil {
		d.fail(err)
		f.Abort()
		return err
	}
	return nil
}

func (d *Disk) commitFiles(f *Flush, gen uint64, dictStart int) error {
	// 1. Dictionary delta, fsynced before any page referencing it.
	delta := d.dict.StringsFrom(dictStart, f.dictLen)
	if len(delta) > 0 {
		var buf []byte
		for _, s := range delta {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		if _, err := d.dictFile.WriteAt(buf, d.dictOff); err != nil {
			return err
		}
		if err := d.dictFile.Sync(); err != nil {
			return err
		}
		d.mu.Lock()
		d.dictOff += int64(len(buf))
		d.strs = append(d.strs, delta...)
		d.mu.Unlock()
	}

	// 2. Page images.
	locs := make(map[uint64]pageLoc, len(f.pages))
	if len(f.pages) > 0 {
		if err := d.writePages(gen, f.pages, locs); err != nil {
			return err
		}
	}

	// 3. Physical row order, streamed from the pinned view.
	if err := d.writeOrder(gen, f.view, f.rows); err != nil {
		return err
	}

	// 4. Manifest: the commit point.
	d.mu.Lock()
	newTable := make(map[uint64]pageLoc, len(d.table)+len(locs))
	for no, loc := range d.table {
		newTable[no] = loc
	}
	oldGen, oldTable, hadManifest := d.gen, d.table, d.hasManifest
	d.mu.Unlock()
	for no, loc := range locs {
		newTable[no] = loc
	}
	if err := d.writeManifest(gen, newTable, f.dictLen, f.rows); err != nil {
		return err
	}

	// 5. Advance committed state and prune.
	d.mu.Lock()
	if hadManifest {
		d.prevGen, d.prevRefs, d.hasPrev = oldGen, tableRefs(oldTable, oldGen), true
	}
	d.gen, d.table, d.hasManifest = gen, newTable, true
	d.tupleCount = f.rows
	d.dictNext = f.dictLen
	if idx := pendingIndex(d.pending, f); idx >= 0 {
		d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
	}
	for no, b := range f.pages {
		if _, ok := d.dirty[no]; !ok {
			d.cache.put(no, b)
		}
	}
	keep := tableRefs(newTable, gen)
	if d.hasPrev {
		for g := range d.prevRefs {
			keep[g] = true
		}
		keep[d.prevGen] = true
	}
	d.pruneLocked(keep)
	d.mu.Unlock()

	f.done = true
	f.view.Release()
	return nil
}

func pendingIndex(pending []*Flush, f *Flush) int {
	for i, p := range pending {
		if p == f {
			return i
		}
	}
	return -1
}

func tableRefs(table map[uint64]pageLoc, gen uint64) map[uint64]bool {
	refs := make(map[uint64]bool, 4)
	for _, loc := range table {
		refs[loc.gen] = true
	}
	refs[gen] = true
	return refs
}

func (d *Disk) writePages(gen uint64, pages map[uint64][]byte, locs map[uint64]pageLoc) error {
	nos := make([]uint64, 0, len(pages))
	for no := range pages {
		nos = append(nos, no)
	}
	sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
	f, err := os.OpenFile(filepath.Join(d.dir, pagesName(gen)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(append([]byte(pageMagic), storeVersion)); err != nil {
		f.Close()
		return err
	}
	off := int64(len(pageMagic) + 1)
	hdr := make([]byte, 16)
	for _, no := range nos {
		b := pages[no]
		binary.LittleEndian.PutUint64(hdr, no)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b)))
		binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(b, storeCastagnoli))
		if _, err := w.Write(hdr); err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(b); err != nil {
			f.Close()
			return err
		}
		locs[no] = pageLoc{gen: gen, off: off}
		off += 16 + int64(len(b))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *Disk) writeOrder(gen uint64, v *relation.View, rows int) error {
	f, err := os.OpenFile(filepath.Join(d.dir, orderName(gen)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(append([]byte(orderMagic), storeVersion)); err != nil {
		f.Close()
		return err
	}
	var chunk, frame []byte
	var ids, total, n int
	var prev int64
	body := make([]byte, 0, orderChunkIDs*2)
	flushChunk := func() error {
		if n == 0 {
			return nil
		}
		chunk = binary.AppendUvarint(chunk[:0], uint64(n))
		chunk = append(chunk, body...)
		frame = frame[:0]
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(chunk)))
		frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(chunk, storeCastagnoli))
		frame = append(frame, chunk...)
		body, n = body[:0], 0
		_, err := w.Write(frame)
		return err
	}
	_ = ids
	for cur := v.Rows(); ; {
		t := cur.Next()
		if t == nil {
			break
		}
		body = binary.AppendVarint(body, int64(t.ID)-prev)
		prev = int64(t.ID)
		n++
		total++
		if n == orderChunkIDs {
			if err := flushChunk(); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := flushChunk(); err != nil {
		f.Close()
		return err
	}
	if total != rows {
		f.Close()
		return fmt.Errorf("store: order stream saw %d rows, boundary captured %d", total, rows)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *Disk) writeManifest(gen uint64, table map[uint64]pageLoc, dictLen, rows int) error {
	payload := binary.AppendUvarint(nil, uint64(d.arity))
	payload = binary.AppendUvarint(payload, uint64(d.rowWidth))
	payload = binary.AppendUvarint(payload, d.rowsPerPage)
	payload = binary.AppendUvarint(payload, uint64(d.pageBytes))
	payload = binary.AppendUvarint(payload, uint64(dictLen))
	payload = binary.AppendUvarint(payload, uint64(rows))
	payload = binary.AppendUvarint(payload, uint64(len(table)))
	nos := make([]uint64, 0, len(table))
	for no := range table {
		nos = append(nos, no)
	}
	sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
	for _, no := range nos {
		loc := table[no]
		payload = binary.AppendUvarint(payload, no)
		payload = binary.AppendUvarint(payload, loc.gen)
		payload = binary.AppendUvarint(payload, uint64(loc.off))
	}
	buf := append([]byte(manifestMagic), storeVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, storeCastagnoli))
	buf = append(buf, payload...)

	path := filepath.Join(d.dir, manifestName(gen))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	dh, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer dh.Close()
	return dh.Sync()
}

// pruneLocked removes generation files not in keep, closing any cached
// read handle first. Best-effort: a leftover file is garbage collected
// at the next commit.
func (d *Disk) pruneLocked(keep map[uint64]bool) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		var gen uint64
		name := e.Name()
		switch {
		case scanGenName(name, "pages-", ".dat", &gen),
			scanGenName(name, "order-", ".dat", &gen),
			scanGenName(name, "manifest-", ".mft", &gen):
			if !keep[gen] {
				if f, ok := d.files[gen]; ok {
					f.Close()
					delete(d.files, gen)
				}
				os.Remove(filepath.Join(d.dir, name))
			}
		}
	}
}

func scanGenName(name, prefix, suffix string, gen *uint64) bool {
	if len(name) != len(prefix)+10+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	var g uint64
	for _, c := range name[len(prefix) : len(prefix)+10] {
		if c < '0' || c > '9' {
			return false
		}
		g = g*10 + uint64(c-'0')
	}
	*gen = g
	return true
}

// fail latches the first error; every later write path refuses.
func (d *Disk) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

// Err returns the latched error, if any.
func (d *Disk) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Gen returns the last committed manifest generation.
func (d *Disk) Gen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// Stats summarizes the store for listings and metrics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	dirtyPages := len(d.dirty)
	for _, f := range d.pending {
		dirtyPages += len(f.pages)
	}
	s := Stats{
		Gen:         d.gen,
		Pages:       len(d.table),
		DirtyPages:  dirtyPages,
		CachedPages: d.cache.len(),
		Tuples:      d.tupleCount,
		DictEntries: d.dictNext,
	}
	d.mu.Unlock()
	if ents, err := os.ReadDir(d.dir); err == nil {
		for _, e := range ents {
			if info, err := e.Info(); err == nil {
				s.DiskBytes += info.Size()
			}
		}
	}
	return s
}

// Close detaches from the relation's journal and closes every file.
// Idempotent. It does not remove the directory; the owner decides
// whether the store outlives the process (crash recovery reopens it) or
// dies with the session (Destroy).
func (d *Disk) Close() {
	if d.unsub != nil {
		d.unsub()
		d.unsub = nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	for gen, f := range d.files {
		f.Close()
		delete(d.files, gen)
	}
	if d.dictFile != nil {
		d.dictFile.Close()
		d.dictFile = nil
	}
}

// Open loads the store at manifest generation gen, reading the
// dictionary prefix the manifest covers and truncating any orphan tail
// dict.log carries past it (a crash between dict append and manifest
// commit leaves entries no manifest references; a fresh append would
// otherwise land them at wrong ordinals). Pages open lazily as rows are
// read — this is what makes recovery ~O(dirty) instead of O(relation).
func Open(dir string, gen uint64, arity int, opts Options) (*Disk, error) {
	opts = opts.withDefaults()
	b, err := os.ReadFile(filepath.Join(dir, manifestName(gen)))
	if err != nil {
		return nil, err
	}
	geom, table, dictLen, rows, err := decodeManifest(b)
	if err != nil {
		return nil, err
	}
	if geom.arity != arity {
		return nil, fmt.Errorf("%w: manifest arity %d, relation has %d", errCorrupt, geom.arity, arity)
	}
	d := newDisk(dir, arity, opts.PageSize, opts.CachePages)
	// The persisted geometry wins: row addressing must stay stable.
	d.rowWidth = geom.rowWidth
	d.rowsPerPage = geom.rowsPerPage
	d.pageBytes = geom.pageBytes
	d.gen, d.hasManifest = gen, true
	d.table = table
	d.tupleCount = rows
	d.dictNext = dictLen

	if err := d.openDict(dictLen); err != nil {
		return nil, err
	}
	// The previous manifest's references guard pruning: the persister
	// keeps two snapshot generations, so their page files must survive.
	if gen > 0 {
		if pb, err := os.ReadFile(filepath.Join(dir, manifestName(gen-1))); err == nil {
			if _, pt, _, _, err := decodeManifest(pb); err == nil {
				d.prevGen, d.prevRefs, d.hasPrev = gen-1, tableRefs(pt, gen-1), true
			}
		}
	}
	return d, nil
}

type manifestGeom struct {
	arity       int
	rowWidth    int
	rowsPerPage uint64
	pageBytes   int
}

func decodeManifest(b []byte) (geom manifestGeom, table map[uint64]pageLoc, dictLen, rows int, err error) {
	hdr := len(manifestMagic) + 1
	if len(b) < hdr+8 || string(b[:len(manifestMagic)]) != manifestMagic {
		return geom, nil, 0, 0, fmt.Errorf("%w: bad manifest header", errCorrupt)
	}
	if b[len(manifestMagic)] != storeVersion {
		return geom, nil, 0, 0, fmt.Errorf("%w: manifest version %d, reader supports %d", errCorrupt, b[len(manifestMagic)], storeVersion)
	}
	ln := binary.LittleEndian.Uint32(b[hdr:])
	crc := binary.LittleEndian.Uint32(b[hdr+4:])
	payload := b[hdr+8:]
	if int(ln) != len(payload) || crc32.Checksum(payload, storeCastagnoli) != crc {
		return geom, nil, 0, 0, fmt.Errorf("%w: manifest torn or checksum mismatch", errCorrupt)
	}
	u := func() uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			err = fmt.Errorf("%w: manifest truncated", errCorrupt)
			return 0
		}
		payload = payload[n:]
		return v
	}
	geom.arity = int(u())
	geom.rowWidth = int(u())
	geom.rowsPerPage = u()
	geom.pageBytes = int(u())
	dictLen = int(u())
	rows = int(u())
	n := u()
	if err != nil {
		return geom, nil, 0, 0, err
	}
	if geom.rowsPerPage == 0 || geom.rowWidth <= 0 || geom.pageBytes != int(geom.rowsPerPage)*geom.rowWidth {
		return geom, nil, 0, 0, fmt.Errorf("%w: manifest geometry inconsistent", errCorrupt)
	}
	table = make(map[uint64]pageLoc, n)
	for i := uint64(0); i < n; i++ {
		no := u()
		g := u()
		off := u()
		if err != nil {
			return geom, nil, 0, 0, err
		}
		table[no] = pageLoc{gen: g, off: int64(off)}
	}
	if len(payload) != 0 {
		return geom, nil, 0, 0, fmt.Errorf("%w: manifest carries %d trailing bytes", errCorrupt, len(payload))
	}
	return geom, table, dictLen, rows, nil
}

// openDict reads exactly dictLen entries from dict.log, truncates any
// orphan tail, and positions the append cursor.
func (d *Disk) openDict(dictLen int) error {
	f, err := os.OpenFile(filepath.Join(d.dir, dictName), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(dictMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr[:len(dictMagic)]) != dictMagic || hdr[len(dictMagic)] != storeVersion {
		f.Close()
		return fmt.Errorf("%w: bad dict.log header", errCorrupt)
	}
	off := int64(len(hdr))
	strs := make([]string, 0, dictLen)
	buf := make([]byte, 0, 256)
	for i := 0; i < dictLen; i++ {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			f.Close()
			return fmt.Errorf("%w: dict.log truncated at entry %d of %d", errCorrupt, i, dictLen)
		}
		if cap(buf) < int(ln) {
			buf = make([]byte, ln)
		}
		buf = buf[:ln]
		if _, err := io.ReadFull(br, buf); err != nil {
			f.Close()
			return fmt.Errorf("%w: dict.log truncated at entry %d of %d", errCorrupt, i, dictLen)
		}
		strs = append(strs, string(buf))
		off += int64(uvarintSize(ln)) + int64(ln)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	d.dictFile = f
	d.dictOff = off
	d.strs = strs
	return nil
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Iterator streams the store's committed rows in physical order as
// snapshot tuples — the recovery-time replacement for a snapshot file's
// inline tuple records. It holds one page buffer and reads page files
// lazily; Close releases the order-file handle (Next does so on
// exhaustion or error as well).
type Iterator struct {
	d         *Disk
	f         *os.File
	br        *bufio.Reader
	remaining int
	chunk     []byte
	inChunk   uint64
	prev      int64
	pageNo    uint64
	page      []byte
	hasPage   bool
	err       error
}

// Source opens an iterator over the last committed generation's rows.
func (d *Disk) Source() (*Iterator, error) {
	d.mu.Lock()
	gen, rows := d.gen, d.tupleCount
	d.mu.Unlock()
	f, err := os.Open(filepath.Join(d.dir, orderName(gen)))
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(orderMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr[:len(orderMagic)]) != orderMagic || hdr[len(orderMagic)] != storeVersion {
		f.Close()
		return nil, fmt.Errorf("%w: bad order file header", errCorrupt)
	}
	return &Iterator{d: d, f: f, br: br, remaining: rows}, nil
}

// Strings returns the persisted dictionary in intern order. Restoring
// interns these into the fresh relation's dictionary first, which
// reproduces the persisted ValueIDs exactly (a Dict assigns dense ids
// in intern order and only grows).
func (d *Disk) Strings() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.strs
}

// Next returns the next row. ok is false at clean exhaustion; a damaged
// order record, page or row returns an error (the caller falls back to
// an older snapshot generation, like any torn snapshot).
func (it *Iterator) Next() (wal.SnapTuple, bool, error) {
	if it.err != nil {
		return wal.SnapTuple{}, false, it.err
	}
	if it.remaining == 0 {
		it.Close()
		return wal.SnapTuple{}, false, nil
	}
	if it.inChunk == 0 {
		if err := it.readChunk(); err != nil {
			return wal.SnapTuple{}, false, it.fail(err)
		}
	}
	delta, n := binary.Varint(it.chunk)
	if n <= 0 {
		return wal.SnapTuple{}, false, it.fail(fmt.Errorf("%w: order chunk truncated", errCorrupt))
	}
	it.chunk = it.chunk[n:]
	it.inChunk--
	it.remaining--
	id := it.prev + delta
	it.prev = id
	if id <= 0 {
		return wal.SnapTuple{}, false, it.fail(fmt.Errorf("%w: order stream yields row id %d", errCorrupt, id))
	}
	t, err := it.row(relation.TupleID(id))
	if err != nil {
		return wal.SnapTuple{}, false, it.fail(err)
	}
	return t, true, nil
}

func (it *Iterator) fail(err error) error {
	it.err = err
	it.Close()
	return err
}

func (it *Iterator) readChunk() error {
	var h [8]byte
	if _, err := io.ReadFull(it.br, h[:]); err != nil {
		return fmt.Errorf("%w: order record torn: %v", errCorrupt, err)
	}
	ln := binary.LittleEndian.Uint32(h[:4])
	crc := binary.LittleEndian.Uint32(h[4:])
	if ln > 1<<24 {
		return fmt.Errorf("%w: order record of implausible length %d", errCorrupt, ln)
	}
	if cap(it.chunk) < int(ln) {
		it.chunk = make([]byte, ln)
	}
	it.chunk = it.chunk[:ln]
	if _, err := io.ReadFull(it.br, it.chunk); err != nil {
		return fmt.Errorf("%w: order record torn: %v", errCorrupt, err)
	}
	if crc32.Checksum(it.chunk, storeCastagnoli) != crc {
		return fmt.Errorf("%w: order record checksum mismatch", errCorrupt)
	}
	n, sz := binary.Uvarint(it.chunk)
	if sz <= 0 || n == 0 {
		return fmt.Errorf("%w: order record with bad row count", errCorrupt)
	}
	it.chunk = it.chunk[sz:]
	it.inChunk = n
	return nil
}

func (it *Iterator) row(id relation.TupleID) (wal.SnapTuple, error) {
	d := it.d
	no := uint64(id) / d.rowsPerPage
	if !it.hasPage || it.pageNo != no {
		d.mu.Lock()
		var b []byte
		if cb, ok := d.cache.get(no); ok {
			b = cb
		} else if loc, ok := d.table[no]; ok {
			var err error
			b, err = d.readPageLocked(no, loc)
			if err != nil {
				d.mu.Unlock()
				return wal.SnapTuple{}, err
			}
			d.cache.put(no, b)
		}
		d.mu.Unlock()
		if b == nil {
			return wal.SnapTuple{}, fmt.Errorf("%w: row %d points at missing page %d", errCorrupt, id, no)
		}
		it.page, it.pageNo, it.hasPage = b, no, true
	}
	off := int(uint64(id)%d.rowsPerPage) * d.rowWidth
	row := it.page[off : off+d.rowWidth]
	if row[0] != 1 {
		return wal.SnapTuple{}, fmt.Errorf("%w: row %d slot is empty", errCorrupt, id)
	}
	if got := relation.TupleID(binary.LittleEndian.Uint64(row[2:])); got != id {
		return wal.SnapTuple{}, fmt.Errorf("%w: row slot for %d holds id %d", errCorrupt, id, got)
	}
	t := wal.SnapTuple{ID: id, Vals: make([]relation.Value, d.arity)}
	p := 10
	for a := 0; a < d.arity; a++ {
		vid := binary.LittleEndian.Uint32(row[p:])
		p += 4
		if vid == 0 {
			t.Vals[a] = relation.NullValue
			continue
		}
		if int(vid) > len(d.strs) {
			return wal.SnapTuple{}, fmt.Errorf("%w: row %d references value id %d beyond dictionary (%d entries)", errCorrupt, id, vid, len(d.strs))
		}
		t.Vals[a] = relation.Value{Str: d.strs[vid-1]}
	}
	if row[1] == 1 {
		t.W = make([]float64, d.arity)
		for a := 0; a < d.arity; a++ {
			t.W[a] = math.Float64frombits(binary.LittleEndian.Uint64(row[p:]))
			p += 8
		}
	}
	return t, nil
}

// Close releases the iterator's order-file handle. Idempotent.
func (it *Iterator) Close() {
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
}

// pageLRU is a minimal LRU over clean page images.
type pageLRU struct {
	cap int
	m   map[uint64]*list.Element
	l   *list.List
}

type lruEntry struct {
	no uint64
	b  []byte
}

func newPageLRU(cap int) *pageLRU {
	return &pageLRU{cap: cap, m: make(map[uint64]*list.Element), l: list.New()}
}

func (c *pageLRU) get(no uint64) ([]byte, bool) {
	e, ok := c.m[no]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(e)
	return e.Value.(*lruEntry).b, true
}

func (c *pageLRU) put(no uint64, b []byte) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.m[no]; ok {
		e.Value.(*lruEntry).b = b
		c.l.MoveToFront(e)
		return
	}
	c.m[no] = c.l.PushFront(&lruEntry{no: no, b: b})
	for c.l.Len() > c.cap {
		e := c.l.Back()
		c.l.Remove(e)
		delete(c.m, e.Value.(*lruEntry).no)
	}
}

func (c *pageLRU) len() int { return c.l.Len() }
