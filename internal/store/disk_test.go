package store

import (
	"os"
	"path/filepath"
	"testing"

	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

func testRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s, err := relation.NewSchema("r", "a", "b", "c")
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return relation.New(s)
}

// drain reads the iterator to exhaustion.
func drain(t *testing.T, it *Iterator) []wal.SnapTuple {
	t.Helper()
	var out []wal.SnapTuple
	for {
		st, ok, err := it.Next()
		if err != nil {
			t.Fatalf("iterator: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, st)
	}
}

// expect compares the store's streamed rows against the relation's
// physical order.
func expect(t *testing.T, rel *relation.Relation, got []wal.SnapTuple) {
	t.Helper()
	want := rel.Tuples()
	if len(got) != len(want) {
		t.Fatalf("streamed %d rows, relation has %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.ID != w.ID {
			t.Fatalf("row %d: id %d, want %d", i, g.ID, w.ID)
		}
		if !relation.StrictEqVals(g.Vals, w.Vals) {
			t.Fatalf("row %d: vals %v, want %v", i, g.Vals, w.Vals)
		}
		if (g.W == nil) != (w.W == nil) {
			t.Fatalf("row %d: weight presence %v, want %v", i, g.W != nil, w.W != nil)
		}
		for a := range g.W {
			if g.W[a] != w.W[a] {
				t.Fatalf("row %d attr %d: weight %v, want %v", i, a, g.W[a], w.W[a])
			}
		}
	}
}

func flushCommit(t *testing.T, d *Disk, rel *relation.Relation, gen uint64) {
	t.Helper()
	f := d.BeginFlush(rel.Pin(), rel.Size())
	if err := f.Commit(gen); err != nil {
		t.Fatalf("commit gen %d: %v", gen, err)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rel := testRelation(t)
	d, err := Create(dir, 3, Options{PageSize: MinPageSize, CachePages: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	d.Attach(rel)

	wt := relation.NewTuple(0, "x", "y", "z")
	wt.SetWeight(1, 0.25)
	rel.MustInsert(wt)
	rel.MustInsert(&relation.Tuple{Vals: []relation.Value{relation.S("a"), relation.NullValue, relation.S("c")}})
	for i := 0; i < 500; i++ {
		if _, err := rel.InsertRow("k", "v", "w"); err != nil {
			t.Fatal(err)
		}
	}
	flushCommit(t, d, rel, 0)

	// Mutate across the boundary: updates, deletes, inserts.
	if _, err := rel.Set(1, 0, relation.S("x2")); err != nil {
		t.Fatal(err)
	}
	rel.Delete(2)
	if _, err := rel.InsertRow("new", "row", "!"); err != nil {
		t.Fatal(err)
	}
	flushCommit(t, d, rel, 1)
	d.Close()

	d2, err := Open(dir, 1, 3, Options{PageSize: MinPageSize, CachePages: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d2.Close()
	it, err := d2.Source()
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	expect(t, rel, drain(t, it))

	// The previous generation must remain a readable fallback.
	d1, err := Open(dir, 0, 3, Options{})
	if err != nil {
		t.Fatalf("open previous gen: %v", err)
	}
	defer d1.Close()
	it1, err := d1.Source()
	if err != nil {
		t.Fatalf("source previous gen: %v", err)
	}
	if n := len(drain(t, it1)); n != 502 {
		t.Fatalf("previous generation streams %d rows, want 502", n)
	}
}

func TestDiskDictOrphanTailTruncated(t *testing.T) {
	dir := t.TempDir()
	rel := testRelation(t)
	d, err := Create(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Attach(rel)
	rel.MustInsert(relation.NewTuple(0, "p", "q", "r"))
	flushCommit(t, d, rel, 0)
	d.Close()

	// A crash between dict append and manifest commit leaves orphan
	// entries past the manifest's dictLen; reopening must truncate them
	// so later appends land at the right ordinals.
	path := filepath.Join(dir, "dict.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{3, 'z', 'z', 'z'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	d2, err := Open(dir, 0, 3, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("orphan dict tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	it, err := d2.Source()
	if err != nil {
		t.Fatal(err)
	}
	expect(t, rel, drain(t, it))
	d2.Close()
}

func TestDiskAbortRemerges(t *testing.T) {
	dir := t.TempDir()
	rel := testRelation(t)
	d, err := Create(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Attach(rel)
	rel.MustInsert(relation.NewTuple(0, "a", "b", "c"))
	f := d.BeginFlush(rel.Pin(), rel.Size())
	// Newer write to the same page supersedes the aborted copy.
	if _, err := rel.Set(1, 2, relation.S("c2")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if rel.ActiveViews() != 0 {
		t.Fatalf("abort leaked the pinned view")
	}
	flushCommit(t, d, rel, 0)
	d.Close()

	d2, err := Open(dir, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	it, err := d2.Source()
	if err != nil {
		t.Fatal(err)
	}
	expect(t, rel, drain(t, it))
}

func TestDiskStats(t *testing.T) {
	dir := t.TempDir()
	rel := testRelation(t)
	d, err := Create(dir, 3, Options{PageSize: MinPageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Attach(rel)
	for i := 0; i < 1000; i++ {
		if _, err := rel.InsertRow("a", "b", "c"); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.DirtyPages == 0 {
		t.Fatalf("expected dirty pages before flush, got %+v", s)
	}
	flushCommit(t, d, rel, 0)
	s := d.Stats()
	if s.DirtyPages != 0 || s.Pages == 0 || s.Tuples != 1000 || s.DictEntries != 3 || s.DiskBytes == 0 {
		t.Fatalf("unexpected stats after flush: %+v", s)
	}
}
