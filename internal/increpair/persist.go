package increpair

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

// Durability: a Session serializes to a full-state snapshot
// (wal.Snapshot) and replays logged mutation batches (wal.Batch) through
// its ordinary ApplyOps path. Recovery is byte-identical by
// construction: the snapshot pins the relation's physical row order,
// tuple ids, journal marks and session counters; the violation store is
// a pure function of the relation contents and is rebuilt by one
// deterministic detection pass; and every replayed batch runs the same
// deterministic engine pass the live session ran, so the restored
// session's Dump, Violations and Stats equal the original's at the same
// watermark — at any worker count (see internal/wal/recovery_test.go).

// OpsToDeltas encodes one ApplyOps input batch as relation Deltas — the
// WAL's op triple convention:
//
//   - a delete is a DeltaDelete whose tuple carries only the id;
//   - a set is a DeltaUpdate whose tuple carries the id, with Attr the
//     target attribute and Old the value to store (an input op has no
//     "old" value, so the field transports the operand);
//   - an insert is a DeltaInsert carrying the full arriving tuple —
//     id (zero for session-assigned), values and weights.
//
// DeltasToOps inverts the mapping.
func OpsToDeltas(deletes []relation.TupleID, sets []SetOp, inserts []*relation.Tuple) []relation.Delta {
	out := make([]relation.Delta, 0, len(deletes)+len(sets)+len(inserts))
	for _, id := range deletes {
		out = append(out, relation.Delta{Kind: relation.DeltaDelete, T: &relation.Tuple{ID: id}})
	}
	for _, op := range sets {
		out = append(out, relation.Delta{Kind: relation.DeltaUpdate, T: &relation.Tuple{ID: op.ID}, Attr: op.Attr, Old: op.Value})
	}
	for _, t := range inserts {
		out = append(out, relation.Delta{Kind: relation.DeltaInsert, T: t})
	}
	return out
}

// DeltasToOps decodes a WAL op sequence back into ApplyOps inputs. Ops
// are grouped by kind in first-appearance order; ApplyOps applies
// deletes, then sets, then inserts regardless of interleaving, so the
// grouping preserves the recorded batch's semantics exactly.
func DeltasToOps(ops []relation.Delta) (deletes []relation.TupleID, sets []SetOp, inserts []*relation.Tuple, err error) {
	for i, d := range ops {
		if d.T == nil {
			return nil, nil, nil, fmt.Errorf("increpair: wal op %d has no tuple", i)
		}
		switch d.Kind {
		case relation.DeltaDelete:
			deletes = append(deletes, d.T.ID)
		case relation.DeltaUpdate:
			sets = append(sets, SetOp{ID: d.T.ID, Attr: d.Attr, Value: d.Old})
		case relation.DeltaInsert:
			inserts = append(inserts, d.T)
		default:
			return nil, nil, nil, fmt.Errorf("increpair: wal op %d has unknown kind %d", i, d.Kind)
		}
	}
	return deletes, sets, inserts, nil
}

// Persist writes the session's full state as a framed snapshot: schema,
// CFD set, engine options, cumulative counters, journal marks and every
// tuple in physical row order. name is recorded for the hosting service
// ("" outside it). Persist takes the session lock, so the image is a
// quiescent point — never a half-applied batch — and is safe to call
// concurrently with readers and writers.
func (s *Session) Persist(name string, w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	snap, err := s.walSnapshotLocked(name, true)
	if err != nil {
		return err
	}
	return wal.WriteSnapshot(w, snap)
}

// PersistSnapshot builds the session's full-state snapshot without
// serializing it — the hosting service uses it with
// wal.WriteSnapshotFile for atomic on-disk rotation, while Persist
// serves stream targets. Like Persist it captures a quiescent point
// under the session lock.
func (s *Session) PersistSnapshot(name string) (*wal.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	return s.walSnapshotLocked(name, true)
}

// walSnapshotLocked builds the session's snapshot header; withTuples
// additionally copies every tuple inline (the memory-backend format).
// A store-backed boundary passes false — its rows live in the page
// files, and the slim header only references their generation.
func (s *Session) walSnapshotLocked(name string, withTuples bool) (*wal.Snapshot, error) {
	if s.sigmaText == "" {
		text, err := formatSigma(s.e.det.Sigma())
		if err != nil {
			return nil, err
		}
		s.sigmaText = text
	}
	repr := s.e.repr
	sch := repr.Schema()
	snap := &wal.Snapshot{
		Name:     name,
		Relname:  sch.Name(),
		Attrs:    sch.Attrs(),
		CFDs:     s.sigmaText,
		Ordering: uint8(s.e.opts.Ordering),
		K:        s.e.opts.K,
		NearestK: s.e.opts.NearestK,
		Workers:  s.e.opts.Workers,
		Batches:  s.batches,
		Inserted: s.applied,
		Deleted:  s.deleted,
		Changes:  s.changes,
		Cost:     s.cost,
		NextID:   repr.NextID(),
		Version:  repr.Version(),
	}
	if withTuples {
		for _, t := range repr.Tuples() {
			st := wal.SnapTuple{ID: t.ID, Vals: append([]relation.Value(nil), t.Vals...)}
			if t.W != nil {
				st.W = append([]float64(nil), t.W...)
			}
			snap.Tuples = append(snap.Tuples, st)
		}
	}
	return snap, nil
}

// formatSigma renders the session's constraint set in the cfd.Parse text
// format, by way of the source CFDs the normal rules were derived from.
// Byte-identical recovery needs the restored sigma to reproduce rule
// names and ranks exactly, so persistence requires sigma to be the full,
// in-order normalization of its sources — which every session built from
// parsed or Normalize'd CFDs satisfies — and verifies the text
// round-trips before committing to it.
func formatSigma(sigma []*cfd.Normal) (string, error) {
	var srcs []*cfd.CFD
	seen := make(map[*cfd.CFD]bool)
	for _, n := range sigma {
		if n.Source == nil {
			return "", fmt.Errorf("increpair: persist: rule %s has no source CFD; only sessions built from parsed or normalized CFDs can be persisted", n.Name)
		}
		if !seen[n.Source] {
			seen[n.Source] = true
			srcs = append(srcs, n.Source)
		}
	}
	if !sigmaEqual(sigma, cfd.NormalizeAll(srcs)) {
		return "", fmt.Errorf("increpair: persist: sigma is not the full normalization of its source CFDs; a reordered or partial rule set cannot be persisted faithfully")
	}
	var buf bytes.Buffer
	if err := cfd.Format(&buf, srcs); err != nil {
		return "", err
	}
	reparsed, err := cfd.Parse(srcs[0].Schema, strings.NewReader(buf.String()))
	if err != nil {
		return "", fmt.Errorf("increpair: persist: formatted CFD set does not re-parse: %w", err)
	}
	if !sigmaEqual(sigma, cfd.NormalizeAll(reparsed)) {
		return "", fmt.Errorf("increpair: persist: CFD set does not round-trip through its text form")
	}
	return buf.String(), nil
}

// sigmaEqual compares two normalized rule lists structurally: names,
// attribute positions and pattern cells, in order.
func sigmaEqual(a, b []*cfd.Normal) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Name != y.Name || x.A != y.A || len(x.X) != len(y.X) {
			return false
		}
		for j := range x.X {
			if x.X[j] != y.X[j] || x.TpX[j] != y.TpX[j] {
				return false
			}
		}
		if x.TpA != y.TpA {
			return false
		}
	}
	return true
}

// RestoreSession rebuilds a session from a snapshot written by Persist.
// The relation is reconstructed tuple by tuple in the recorded physical
// order under the recorded ids, the journal marks are restored, and a
// fresh violation store is built by one deterministic detection pass —
// after which the restored session is indistinguishable from the
// original at the snapshot point. Batches logged after the snapshot are
// reapplied with ReplayBatch.
//
// workers > 0 overrides the persisted engine worker count (the engine's
// output is identical at every setting); 0 keeps the persisted value.
// The determinism-relevant options — ordering, K, NearestK — always come
// from the snapshot, since replay must re-run the exact passes that were
// logged.
func RestoreSession(r io.Reader, workers int) (*Session, error) {
	snap, err := wal.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return RestoreFromSnapshot(snap, workers)
}

// RestoreFromSnapshot is RestoreSession over an already-decoded
// snapshot; the server's recovery path uses it after choosing the
// newest valid snapshot generation itself.
func RestoreFromSnapshot(snap *wal.Snapshot, workers int) (*Session, error) {
	return RestoreFromSnapshotSource(snap, &sliceSource{ts: snap.Tuples}, workers, nil)
}

// restoreTail finishes a restore once the relation is rebuilt: journal
// marks, constraint re-parse, one deterministic detection pass via
// newEngine, and the persisted session counters.
func restoreTail(snap *wal.Snapshot, sch *relation.Schema, rel *relation.Relation, workers int) (*Session, error) {
	if snap.NextID < rel.NextID() {
		return nil, fmt.Errorf("increpair: restore: snapshot watermark %d below the rebuilt relation's %d", snap.NextID, rel.NextID())
	}
	rel.RestoreJournalMarks(snap.NextID, snap.Version)

	parsed, err := cfd.Parse(sch, strings.NewReader(snap.CFDs))
	if err != nil {
		return nil, fmt.Errorf("increpair: restore: %w", err)
	}
	o := Options{
		Ordering: Ordering(snap.Ordering),
		K:        snap.K,
		NearestK: snap.NearestK,
		Workers:  snap.Workers,
	}
	if workers > 0 {
		o.Workers = workers
	}
	o = (&o).withDefaults()
	e, err := newEngine(rel, cfd.NormalizeAll(parsed), o)
	if err != nil {
		return nil, err
	}
	s := &Session{
		e:       e,
		batches: snap.Batches,
		applied: snap.Inserted,
		deleted: snap.Deleted,
		cost:    snap.Cost,
		changes: snap.Changes,
	}
	s.publish()
	return s, nil
}

// ErrReplayGap reports a hole in a replayed batch stream: the batch's
// PrevVersion is ahead of the session's journal counter, so one or more
// intermediate batches are missing. Crash recovery treats it as tail
// damage; a replication follower treats it as the signal to resync from
// a fresh snapshot instead of applying out of order.
var ErrReplayGap = fmt.Errorf("increpair: replay gap")

// ReplayBatch reapplies one logged batch. The batch's journal-version
// bracket makes replay idempotent and gap-safe: a batch already
// contained in the restored snapshot (Version at or below the session's
// counter) is skipped, a batch whose PrevVersion does not meet the
// session's counter reports a hole in the log (ErrReplayGap), and a
// pass that does not land exactly on the recorded post-version reports
// divergence — the session can no longer be trusted to equal the
// pre-crash one. applied reports whether the batch ran (false for the
// idempotent skip).
func (s *Session) ReplayBatch(b *wal.Batch) (applied bool, err error) {
	_, _, applied, err = s.ReplayBatchResult(b)
	return applied, err
}

// ReplayBatchResult is ReplayBatch returning the engine pass's Result
// and delete count alongside the applied flag — a replication follower
// uses them to publish the same change events a primary's committer
// publishes. res is nil when the batch was skipped or failed.
func (s *Session) ReplayBatchResult(b *wal.Batch) (res *Result, deleted int, applied bool, err error) {
	cur := s.snap.Load().Version
	if b.Version <= cur {
		return nil, 0, false, nil
	}
	if b.PrevVersion != cur {
		return nil, 0, false, fmt.Errorf("%w: batch expects journal version %d, session is at %d", ErrReplayGap, b.PrevVersion, cur)
	}
	deletes, sets, inserts, err := DeltasToOps(b.Ops)
	if err != nil {
		return nil, 0, false, err
	}
	res, deleted, err = s.ApplyOps(deletes, sets, inserts)
	if err != nil {
		return nil, 0, false, fmt.Errorf("increpair: replay: %w", err)
	}
	if got := s.snap.Load().Version; got != b.Version {
		return res, deleted, true, fmt.Errorf("increpair: replay: pass should end at journal version %d, session landed on %d", b.Version, got)
	}
	return res, deleted, true, nil
}
