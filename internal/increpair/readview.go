package increpair

import (
	"io"
	"sync"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// ReadView is a pinned, consistent read-only view of a Session at one
// journal version — the unit of the streaming read path. It is captured
// under the session lock in O(vio(D)) (zero in the steady state, where
// the INCREPAIR invariant drains violations after every batch) plus one
// relation pin, and from then on every read streams without touching the
// writer's lock: the relation view is snapshot-isolated by page-level
// copy-on-write (see relation.View), and the violation listing was
// captured at pin time.
//
// A ReadView holds resources until Release: its relation generation pins
// pre-images of every page the writer dirties while the view is open.
// Callers must release promptly; Release is idempotent and safe from any
// goroutine. Views survive Session.Close — a dump in flight keeps
// streaming from its pinned state after the session shuts down.
type ReadView struct {
	rel     *relation.View
	snap    Snapshot
	vios    []cfd.Violation
	release sync.Once
}

// ReadView pins the session's current state. The lock is held only for
// the pin handoff: a relation slice-header capture plus the violation
// capture (empty between batches). Fails after Close.
func (s *Session) ReadView() (*ReadView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	v := &ReadView{rel: s.e.repr.Pin(), snap: *s.snap.Load()}
	if !s.e.store.Satisfied() {
		v.vios = make([]cfd.Violation, 0, s.e.store.TotalViolations())
		c := s.e.store.Cursor(cfd.AnyVio())
		for vi, ok := c.Next(); ok; vi, ok = c.Next() {
			v.vios = append(v.vios, vi)
		}
	}
	return v, nil
}

// Release drops the view's pin on the relation generation. Idempotent.
func (v *ReadView) Release() {
	v.release.Do(v.rel.Release)
}

// Version returns the journal version the view is pinned at. Two views
// with equal versions describe the identical relation state.
func (v *ReadView) Version() uint64 { return v.snap.Version }

// Snapshot returns the session snapshot captured at pin time; its
// counters are mutually consistent with the view's rows and violations.
func (v *ReadView) Snapshot() Snapshot { return v.snap }

// Len returns the number of tuples in the view.
func (v *ReadView) Len() int { return v.rel.Len() }

// Schema returns the session's schema.
func (v *ReadView) Schema() *relation.Schema { return v.rel.Schema() }

// Rows opens a cursor over the view's tuples in pinned physical order.
func (v *ReadView) Rows() *relation.RowCursor { return v.rel.Rows() }

// RowsRange opens a row cursor restricted to tuple ids in [minID,
// maxID]; zero bounds are open.
func (v *ReadView) RowsRange(minID, maxID relation.TupleID) *relation.RowCursor {
	return v.rel.RowsRange(minID, maxID)
}

// WriteCSV streams the view as CSV — byte-identical to Session.Dump at
// the same version, with peak buffering of one page.
func (v *ReadView) WriteCSV(w io.Writer) error { return v.rel.WriteCSV(w) }

// TotalViolations returns vio(D) at the pinned version.
func (v *ReadView) TotalViolations() int { return v.snap.Violations }

// Violations returns one page of the view's violation listing: entries
// [offset, offset+limit) of the canonical (tuple id, rule, partner)
// sequence after applying f, limit <= 0 meaning the rest. more reports
// whether matching entries remain past the page — the server's
// next-cursor signal. Paging at a fixed version is stable: the
// concatenation of pages is byte-identical to a one-shot listing.
func (v *ReadView) Violations(f cfd.VioFilter, offset, limit int) (page []cfd.Violation, more bool) {
	if offset < 0 {
		offset = 0
	}
	skipped, taken := 0, 0
	for _, vi := range v.vios {
		if !f.Match(vi) {
			continue
		}
		if skipped < offset {
			skipped++
			continue
		}
		if limit > 0 && taken == limit {
			return page, true
		}
		page = append(page, vi)
		taken++
	}
	return page, false
}
