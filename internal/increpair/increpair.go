// Package increpair implements the paper's incremental repairing module:
// algorithm INCREPAIR (§5, Fig. 6) with procedure TUPLERESOLVE (Fig. 7).
// Given a clean database D and a batch ΔD of tuples to insert, it repairs
// the tuples of ΔD one at a time — in one of three orderings (§5.2) — so
// that D ⊕ ΔDRepr |= Σ, never touching the clean D. Deletions never
// introduce CFD violations, so only insertions need repair (§3.3).
//
// The local repairing problem solved by TUPLERESOLVE is NP-complete even
// for standard FDs (Theorem 5.2), so the procedure is greedy: it covers
// attr(R) by repeatedly choosing the best set C of at most k attributes
// and values v̂ minimizing costfix(C, v̂) = cost(t, t[C/v̂]) · vio(t[C/v̂])
// among candidates consistent with the CFDs already decidable (Σ(C ∪ C̄)).
//
// Section 5.3's observation — extract the violation-free tuples of a
// dirty database and treat the rest as ΔD — turns INCREPAIR into a batch
// cleaner; Repair implements it.
//
// Every entry point runs against exactly one delta-maintained violation
// store (cfd.VioStore) for the whole run: detection state is computed
// once and then maintained under the engine's own inserts and deletes
// through the relation's mutation journal, so per-tuple work is O(|Δ|),
// never O(|D|). Session exposes this engine as a long-lived streaming
// cleaner: open it over D once, push ΔD batches with ApplyDelta, and the
// maintained state carries over from batch to batch.
package increpair

import (
	"fmt"
	"runtime"
	"sort"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cluster"
	"cfdclean/internal/cost"
	"cfdclean/internal/relation"
)

// Ordering selects the tuple-processing order of §5.2.
type Ordering int

const (
	// Linear processes ΔD in the given order (L-INCREPAIR): no extra
	// cost, no quality help.
	Linear Ordering = iota
	// ByViolations processes tuples in increasing vio(t) (V-INCREPAIR):
	// likely-correct tuples enter the repair first and inform the
	// cleaning of less accurate ones.
	ByViolations
	// ByWeight processes tuples in decreasing total weight wt(t)
	// (W-INCREPAIR): trusted tuples first.
	ByWeight
)

func (o Ordering) String() string {
	switch o {
	case Linear:
		return "L-IncRepair"
	case ByViolations:
		return "V-IncRepair"
	case ByWeight:
		return "W-IncRepair"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Options configures INCREPAIR.
type Options struct {
	// CostModel scores value changes; nil means the paper default.
	CostModel *cost.Model
	// K is the attribute-subset size of TUPLERESOLVE; the paper reports
	// good results for k = 1, 2 (§5.1). Default 2.
	K int
	// Ordering is the ΔD processing order. Default Linear.
	Ordering Ordering
	// NearestK is how many similar active-domain values the cost-based
	// index contributes per attribute (§5.2). Default 4.
	NearestK int
	// SkipCleanCheck skips verifying that D |= Σ on entry. The batch-mode
	// driver sets it (its D is clean by construction).
	SkipCleanCheck bool
	// Workers bounds the parallelism of TUPLERESOLVE's candidate
	// evaluation (attribute subsets are evaluated concurrently against
	// per-worker scratch tuples) and of the violation store's initial
	// scan. 0 means runtime.GOMAXPROCS(0); 1 forces the sequential path.
	// The result is identical at every setting.
	Workers int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.CostModel == nil {
		out.CostModel = cost.Default()
	}
	if out.K <= 0 {
		out.K = 2
	}
	if out.NearestK <= 0 {
		out.NearestK = 4
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Result reports a completed incremental repair (one run, or one Session
// batch).
type Result struct {
	// Repair is D ⊕ ΔDRepr: the clean database with the repaired tuples
	// inserted. Input relations and tuples are never modified.
	Repair *relation.Relation
	// Inserted holds the repaired versions of the ΔD tuples in
	// processing order; Originals the corresponding inputs.
	Inserted  []*relation.Tuple
	Originals []*relation.Tuple
	// Cost is cost(ΔDRepr, ΔD) (§3.3).
	Cost float64
	// Changes counts modified attribute values across ΔD.
	Changes int
}

// engine holds the state of one INCREPAIR run or Session. It is built
// around exactly one violation store: all detection questions — the
// clean check, dirty-tuple extraction, V-ordering, candidate probing —
// are answered from (or through) the store's maintained state.
type engine struct {
	repr  *relation.Relation
	store *cfd.VioStore
	det   *cfd.Detector
	model *cost.Model
	opts  Options

	groups []groupInfo
	arity  int

	// scratches[w] is worker w's memoized view of the cost model: a
	// lock-free local distance memo over the shared one, so concurrent
	// candidate scoring does not serialize on the model's mutex. Sized
	// lazily to the worker count; scratches[0] serves the sequential
	// path.
	scratches []*cost.Scratch

	// clusterIdx[a] is the cost-based index over adom(Repr, a); built
	// lazily for the attributes Σ constrains.
	clusterIdx map[int]cluster.Index
	// nearCache memoizes clusterIdx[a].Nearest(v, NearestK): TUPLERESOLVE
	// evaluates every size-k attribute subset, so the same (a, v) query
	// recurs once per subset containing a. Entries are invalidated per
	// attribute when a repaired tuple grows the active domain.
	nearCache map[int]map[string][]string
}

type groupInfo struct {
	g    cfd.Group
	mask uint64 // attribute-set bitmask of X ∪ {A}
}

// newEngine builds the engine over repr, which it takes ownership of
// (callers clone their input first). Exactly one detector/store is
// constructed here; nothing downstream builds another.
func newEngine(repr *relation.Relation, sigma []*cfd.Normal, o Options) (*engine, error) {
	if _, err := cfd.Satisfiable(sigma); err != nil {
		return nil, fmt.Errorf("increpair: %w", err)
	}
	if repr.Schema().Arity() > 64 {
		return nil, fmt.Errorf("increpair: schemas beyond 64 attributes are not supported")
	}
	store := cfd.NewVioStoreWorkers(repr, sigma, o.Workers)
	e := &engine{
		repr:       repr,
		store:      store,
		det:        store.Detector(),
		model:      o.CostModel,
		opts:       o,
		arity:      repr.Schema().Arity(),
		clusterIdx: make(map[int]cluster.Index),
		nearCache:  make(map[int]map[string][]string),
	}
	for _, g := range e.det.Groups() {
		var m uint64
		for _, a := range g.X() {
			m |= 1 << uint(a)
		}
		m |= 1 << uint(g.A())
		e.groups = append(e.groups, groupInfo{g: g, mask: m})
	}
	return e, nil
}

// close detaches the violation store from the working relation, so the
// returned repair can be mutated by the caller without maintenance cost.
func (e *engine) close() {
	e.store.Close()
}

// invalidateDomainCaches drops the cost-based cluster indices and the
// nearest-neighbour cache. Both are derived from the active domain and
// only ever grow under inserts; after a delete or update shrinks the
// domain they could hand out values present nowhere in the database, so
// the session's mixed-batch path clears them and lets the next
// TUPLERESOLVE rebuild from the current domain.
func (e *engine) invalidateDomainCaches() {
	clear(e.clusterIdx)
	clear(e.nearCache)
}

// invalidateDomainCachesFor drops the domain-derived caches of a single
// attribute: the per-attribute refinement of invalidateDomainCaches used
// by the session's mixed-batch path, which checks which attribute
// domains a batch actually shrank and keeps every other attribute's
// index warm across batches.
func (e *engine) invalidateDomainCachesFor(a int) {
	delete(e.clusterIdx, a)
	delete(e.nearCache, a)
}

// insertBatch repairs the tuples of delta one at a time (in the
// configured ordering) and inserts them into Repr; the violation store
// maintains itself under each insert. This is the INCREPAIR main loop
// (Fig. 6), shared by Incremental, Repair and Session.ApplyDelta.
func (e *engine) insertBatch(delta []*relation.Tuple) (*Result, error) {
	for _, t := range delta {
		if len(t.Vals) != e.arity {
			return nil, fmt.Errorf("increpair: delta tuple %d has arity %d, want %d", t.ID, len(t.Vals), e.arity)
		}
	}
	ordered := e.orderDelta(delta)
	res := &Result{Repair: e.repr}
	for _, t := range ordered {
		rt := e.tupleResolve(t)
		if err := e.repr.Insert(rt); err != nil {
			return nil, fmt.Errorf("increpair: inserting repaired tuple: %w", err)
		}
		for a, ix := range e.clusterIdx {
			if !rt.Vals[a].Null {
				before := ix.Len()
				ix.Add(rt.Vals[a].Str)
				if ix.Len() != before {
					// The active domain grew; cached Nearest results for
					// this attribute may now miss the new value.
					delete(e.nearCache, a)
				}
			}
		}
		c, err := e.model.Tuple(t, rt)
		if err != nil {
			return nil, err
		}
		res.Cost += c
		for a := range t.Vals {
			if !relation.StrictEq(t.Vals[a], rt.Vals[a]) {
				res.Changes++
			}
		}
		res.Inserted = append(res.Inserted, rt)
		res.Originals = append(res.Originals, t)
	}
	return res, nil
}

// Incremental runs INCREPAIR: repairs each tuple of delta against d ∪
// (already repaired tuples) and returns the combined repair. d must
// satisfy sigma (checked unless Options.SkipCleanCheck).
func Incremental(d *relation.Relation, delta []*relation.Tuple, sigma []*cfd.Normal, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	e, err := newEngine(d.Clone(), sigma, o)
	if err != nil {
		return nil, err
	}
	defer e.close()
	if !o.SkipCleanCheck && !e.store.Satisfied() {
		return nil, fmt.Errorf("increpair: input database does not satisfy sigma; use Repair for dirty databases")
	}
	return e.insertBatch(delta)
}

// Repair cleans a dirty database with INCREPAIR per §5.3: the tuples
// violating no constraint form the clean core D; the rest are re-inserted
// as ΔD, one repaired tuple at a time. (Finding a maximum consistent
// subset is NP-hard — Proposition 5.4 — but the violation-free subset is
// computable by detection alone and is large at realistic error rates.)
//
// One working clone, one violation store: the dirty tuples are read off
// the store's maintained vio(t) map, their deletion streams through the
// mutation journal (draining the store to zero), and the same store then
// serves the re-insertion loop.
func Repair(d *relation.Relation, sigma []*cfd.Normal, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	e, err := newEngine(d.Clone(), sigma, o)
	if err != nil {
		return nil, err
	}
	defer e.close()
	delta := e.extractDirty()
	return e.insertBatch(delta)
}

// extractDirty removes every violating tuple from Repr and returns their
// clones as the ΔD batch, per §5.3. Deletions happen in sorted id order:
// the repair content does not depend on it, but Delete compacts by
// swapping, so a fixed order keeps the physical row order of the result —
// and hence its serialized form — reproducible run to run.
func (e *engine) extractDirty() []*relation.Tuple {
	dirty := e.store.VioAll()
	ids := make([]relation.TupleID, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	delta := make([]*relation.Tuple, 0, len(ids))
	for _, id := range ids {
		t := e.repr.Tuple(id)
		if t == nil {
			continue
		}
		delta = append(delta, t.Clone())
		e.repr.Delete(id)
	}
	return delta
}

// orderDelta applies the §5.2 ordering to the delta batch. The
// ByViolations pass ranks ΔD with apply/undo probes against the
// violation store: the delta tuples are inserted into Repr (the journal
// maintains the store in O(|Δ|)), vio(t) is read off the maintained
// counts, and the tuples are deleted again, restoring the store — and
// the id sequence — to their prior state. No database clone, no second
// detector.
func (e *engine) orderDelta(delta []*relation.Tuple) []*relation.Tuple {
	out := append([]*relation.Tuple(nil), delta...)
	switch e.opts.Ordering {
	case ByViolations:
		// vio(t) is counted against D ⊕ ΔD (§5.2), so all probes are
		// applied before any count is read.
		mark := e.repr.NextID()
		scratch := make([]*relation.Tuple, len(out))
		for i, t := range out {
			c := t.Clone()
			c.ID = 0
			e.repr.MustInsert(c)
			scratch[i] = c
		}
		vio := make([]int, len(out))
		for i, c := range scratch {
			vio[i] = e.store.VioCount(c.ID)
		}
		for i := len(scratch) - 1; i >= 0; i-- {
			e.repr.Delete(scratch[i].ID)
		}
		e.repr.RestoreNextID(mark)
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool { return vio[idx[i]] < vio[idx[j]] })
		reordered := make([]*relation.Tuple, len(out))
		for pos, i := range idx {
			reordered[pos] = out[i]
		}
		out = reordered
	case ByWeight:
		sort.SliceStable(out, func(i, j int) bool { return out[i].TotalWeight() > out[j].TotalWeight() })
	}
	return out
}
