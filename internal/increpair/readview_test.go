package increpair

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

func TestReadViewPinsStateAcrossApplies(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	s, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var want bytes.Buffer
	if err := s.Dump(&want); err != nil {
		t.Fatal(err)
	}
	rv, err := s.ReadView()
	if err != nil {
		t.Fatal(err)
	}
	if rv.Version() != s.Snapshot().Version {
		t.Fatalf("view version %d != snapshot version %d", rv.Version(), s.Snapshot().Version)
	}

	rng := rand.New(rand.NewSource(11))
	for batch := 0; batch < 5; batch++ {
		if _, err := s.ApplyDelta(randomDelta(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned view replays the pre-apply serialization bit for bit,
	// and does so repeatedly (cursors do not consume the view).
	for rep := 0; rep < 2; rep++ {
		var got bytes.Buffer
		if err := rv.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("rep %d: pinned view drifted from pin-time dump", rep)
		}
	}
	// The live session moved on.
	var live bytes.Buffer
	if err := s.Dump(&live); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(live.Bytes(), want.Bytes()) {
		t.Fatal("live dump unchanged after 5 batches")
	}
	if s.Snapshot().Version == rv.Version() {
		t.Fatal("version did not advance")
	}
	rv.Release()
	rv.Release() // idempotent
}

func TestReadViewSurvivesClose(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	s, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := s.Dump(&want); err != nil {
		t.Fatal(err)
	}
	rv, err := s.ReadView()
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Release()
	s.Close()

	// A view pinned before Close keeps serving its pinned state...
	var got bytes.Buffer
	if err := rv.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("pinned view lost state across Close")
	}
	// ...but new pins are refused.
	if _, err := s.ReadView(); err == nil {
		t.Fatal("ReadView after Close succeeded")
	}
}

// TestReadViewViolationPaging drives the page iterator against a
// synthetic captured listing (streaming sessions drain violations to
// zero between batches, so a non-empty listing only occurs after a
// failed pass — fabricate one): every (filter, page size) combination
// must concatenate to exactly the one-shot filtered listing, with the
// more flag flipping on the last page.
func TestReadViewViolationPaging(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	s, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rv, err := s.ReadView()
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Release()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 57; i++ {
		rv.vios = append(rv.vios, cfd.Violation{
			T:    relation.TupleID(1 + rng.Intn(40)),
			N:    sigma[rng.Intn(len(sigma))],
			With: relation.TupleID(rng.Intn(3) * (1 + rng.Intn(40))),
		})
	}

	filters := []cfd.VioFilter{
		cfd.AnyVio(),
		{Rule: sigma[0].Name, Attr: -1},
		{Attr: sigma[1].A},
		{Attr: -1, MinID: 10, MaxID: 30},
	}
	for fi, f := range filters {
		oneShot, more := rv.Violations(f, 0, 0)
		if more {
			t.Fatalf("filter %d: unlimited read reports more", fi)
		}
		for _, limit := range []int{1, 3, 7, 100} {
			var paged []cfd.Violation
			for offset := 0; ; {
				page, more := rv.Violations(f, offset, limit)
				paged = append(paged, page...)
				offset += len(page)
				if !more {
					break
				}
				if len(page) != limit {
					t.Fatalf("filter %d limit %d: short page with more=true", fi, limit)
				}
			}
			if !reflect.DeepEqual(paged, oneShot) {
				t.Fatalf("filter %d limit %d: paged read != one-shot (%d vs %d entries)",
					fi, limit, len(paged), len(oneShot))
			}
		}
	}
}

// TestSessionReadsRaceWriter pins views, pages violations and streams
// dumps from several goroutines while a writer applies batches — the
// -race companion of the server-level battery, at the Session layer.
func TestSessionReadsRaceWriter(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	s, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rv, err := s.ReadView()
				if err != nil {
					t.Error(err)
					return
				}
				a := make([]byte, 0, 1024)
				var b1, b2 bytes.Buffer
				if err := rv.WriteCSV(&b1); err != nil {
					t.Error(err)
				}
				if err := rv.WriteCSV(&b2); err != nil {
					t.Error(err)
				}
				a = append(a, b1.Bytes()...)
				if !bytes.Equal(a, b2.Bytes()) {
					t.Errorf("reader %d: two streams of one view differ", g)
				}
				if _, more := rv.Violations(cfd.AnyVio(), 0, 10); more {
					t.Errorf("reader %d: clean session reports more violations", g)
				}
				rv.Release()
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(21))
	for batch := 0; batch < 12; batch++ {
		if _, err := s.ApplyDelta(randomDelta(rng, 6)); err != nil {
			t.Fatal(err)
		}
		if err := s.Dump(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n := s.Current().ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d after all readers released, want 0", n)
	}
}
