package increpair

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// The Session concurrency battery: these tests exist to run under -race
// (CI does) and pin the contract of session.go — mutations serialize,
// snapshot reads are lock-free and never observe a half-applied batch,
// and Close is safe against racing readers and writers.

// TestSessionConcurrentApplyAndRead races many writers (ApplyDelta),
// snapshot readers (Snapshot/Satisfied/Stats), and structure readers
// (Violations, Dump) against one session.
func TestSessionConcurrentApplyAndRead(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const writers, batches, perBatch = 4, 6, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot readers: spin until writers finish; every observed
	// snapshot must be internally consistent (a completed batch never
	// leaves violations) and versions must be monotone per reader.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := sess.Snapshot()
				if sn.Version < lastVersion {
					t.Error("snapshot version went backwards")
					return
				}
				lastVersion = sn.Version
				if sn.Satisfied != (sn.Violations == 0) {
					t.Errorf("snapshot inconsistent: satisfied=%v violations=%d", sn.Satisfied, sn.Violations)
					return
				}
				_, _, _, _ = sess.Stats()
				_ = sess.Satisfied()
			}
		}()
	}
	// One structure reader exercising the locked read path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = sess.Violations(0)
		}
	}()

	var applied atomic.Int64
	var werr atomic.Value
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				if _, err := sess.ApplyDelta(randomDelta(rng, perBatch)); err != nil {
					werr.Store(err)
					return
				}
				applied.Add(1)
			}
		}(int64(100 + w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if err, ok := werr.Load().(error); ok {
		t.Fatal(err)
	}

	sn := sess.Snapshot()
	if sn.Batches != writers*batches || sn.Inserted != writers*batches*perBatch {
		t.Fatalf("snapshot counted %d batches / %d tuples, want %d / %d",
			sn.Batches, sn.Inserted, writers*batches, writers*batches*perBatch)
	}
	if !sess.Satisfied() || !cfd.Satisfies(sess.Current(), sigma) {
		t.Fatal("session inconsistent after concurrent applies")
	}
}

// TestSessionConcurrentClose races Close against writers and readers:
// nothing may panic, applies observed after the close fail cleanly, and
// the final snapshot is marked Closed.
func TestSessionConcurrentClose(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < 8; b++ {
				if _, err := sess.ApplyDelta(randomDelta(rng, 2)); err != nil {
					if err != errClosed {
						t.Errorf("unexpected apply error: %v", err)
					}
					return
				}
			}
		}(int64(7 + w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			_ = sess.Snapshot()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess.Close()
		sess.Close() // idempotent
	}()
	wg.Wait()

	if sn := sess.Snapshot(); !sn.Closed {
		t.Fatal("final snapshot not marked closed")
	}
	if _, err := sess.ApplyDelta(randomDelta(rand.New(rand.NewSource(1)), 1)); err != errClosed {
		t.Fatalf("apply after close: got %v, want errClosed", err)
	}
}

// TestSessionApplyOps covers the mixed-batch entry point: deletes, cell
// updates re-cleaned through the engine, and inserts in one pass, plus
// the validate-before-mutate guarantee.
func TestSessionApplyOps(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	size0 := sess.Snapshot().Size
	victim := sess.Current().Tuples()[0].ID

	// A set that dirties CT on a tuple matching phi2's 19014 row must be
	// repaired back to consistency; the delete shrinks the relation; the
	// insert arrives as usual.
	res, deleted, err := sess.ApplyOps(
		[]relation.TupleID{victim},
		[]SetOp{{ID: sess.Current().Tuples()[1].ID, Attr: 6, Value: relation.S("PHL")}},
		[]*relation.Tuple{t5()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Fatalf("deleted = %d, want 1", deleted)
	}
	// One updated tuple re-cleaned + one insert = two tuples through the
	// engine; net size: -1 (delete) +1 (insert), update is net zero.
	if len(res.Inserted) != 2 {
		t.Fatalf("engine pass repaired %d tuples, want 2", len(res.Inserted))
	}
	sn := sess.Snapshot()
	if sn.Size != size0 {
		t.Fatalf("size = %d, want %d", sn.Size, size0)
	}
	if !sn.Satisfied || !cfd.Satisfies(sess.Current(), sigma) {
		t.Fatal("ApplyOps left violations")
	}
	if sn.Deleted != 1 {
		t.Fatalf("snapshot deleted = %d, want 1", sn.Deleted)
	}

	// Validation failures must not mutate anything.
	ver := sess.Snapshot().Version
	if _, _, err := sess.ApplyOps([]relation.TupleID{999999}, nil, nil); err == nil {
		t.Fatal("delete of unknown id must fail")
	}
	if _, _, err := sess.ApplyOps(nil, []SetOp{{ID: 999999, Attr: 0, Value: relation.S("x")}}, nil); err == nil {
		t.Fatal("set on unknown id must fail")
	}
	if _, _, err := sess.ApplyOps(nil, []SetOp{{ID: victim, Attr: 99, Value: relation.S("x")}}, nil); err == nil {
		t.Fatal("set with out-of-range attr must fail")
	}
	id := sess.Current().Tuples()[0].ID
	if _, _, err := sess.ApplyOps([]relation.TupleID{id}, []SetOp{{ID: id, Attr: 0, Value: relation.S("x")}}, nil); err == nil {
		t.Fatal("set on tuple deleted in the same batch must fail")
	}
	// Insert validation is part of the same untouched-on-error contract:
	// a bad insert must not let earlier deletes/sets of the batch land.
	live := sess.Current().Tuples()[0].ID
	if _, _, err := sess.ApplyOps([]relation.TupleID{live}, nil,
		[]*relation.Tuple{relation.NewTuple(0, "only", "three", "vals")}); err == nil {
		t.Fatal("bad insert arity must fail the whole batch")
	}
	dupA, dupB := t5(), t5()
	dupA.ID, dupB.ID = 777777, 777777
	if _, _, err := sess.ApplyOps(nil, nil, []*relation.Tuple{dupA, dupB}); err == nil {
		t.Fatal("duplicate explicit insert ids must fail")
	}
	dup := t5()
	dup.ID = live
	if _, _, err := sess.ApplyOps(nil, nil, []*relation.Tuple{dup}); err == nil {
		t.Fatal("insert id colliding with a live tuple must fail")
	}
	// Mixing id-less inserts with explicit ids at/beyond the watermark
	// would let the auto-assigner take the explicit tuple's slot first
	// and silently renumber it; the batch must be rejected. Either style
	// alone is fine.
	beyond := t5()
	beyond.ID = sess.Current().NextID()
	if _, _, err := sess.ApplyOps(nil, nil, []*relation.Tuple{t5(), beyond}); err == nil {
		t.Fatal("mixed id-less + above-watermark batch must fail")
	}
	if _, _, err := sess.ApplyOps(nil, []SetOp{{ID: live, Attr: 0, Value: relation.S("x")}},
		[]*relation.Tuple{dup}); err == nil {
		t.Fatal("insert id colliding with a same-batch update must fail")
	}
	if got := sess.Snapshot().Version; got != ver {
		t.Fatalf("failed validation mutated the relation (version %d -> %d)", ver, got)
	}
	if sess.Current().Tuple(live) == nil {
		t.Fatal("failed batch applied its delete")
	}
	// Reusing a slot the batch itself frees by deletion is allowed.
	freed := t5()
	freed.ID = live
	if _, _, err := sess.ApplyOps([]relation.TupleID{live}, nil, []*relation.Tuple{freed}); err != nil {
		t.Fatalf("insert into same-batch-freed id: %v", err)
	}
	if !sess.Satisfied() {
		t.Fatal("freed-slot reuse left violations")
	}
}

// TestSessionDeleteInvalidatesDomainCaches: the engine's cost-based
// cluster indices and nearest caches are derived from the active domain
// and only grow under inserts; a batch that deletes or updates tuples
// must drop them for every attribute whose domain actually shrank, or
// TUPLERESOLVE could hand a vanished value to a later repair (§3.1
// requires donors from adom ∪ null). Attributes whose domain kept every
// removed value keep their caches — that carry-over is what the
// pipelined service leans on for steady mixed traffic.
func TestSessionDeleteInvalidatesDomainCaches(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Dirty batches force TUPLERESOLVE to build candidate indices.
	if _, err := sess.ApplyDelta(randomDelta(rand.New(rand.NewSource(2)), 8)); err != nil {
		t.Fatal(err)
	}
	if len(sess.e.clusterIdx) == 0 {
		t.Fatal("fixture did not warm the cluster indices; strengthen the delta")
	}

	// Pick the victim carrying the most domain-unique values among the
	// indexed attributes, so the shrink path is actually exercised.
	var victim *relation.Tuple
	bestUnique := -1
	for _, tu := range sess.Current().Tuples() {
		unique := 0
		for a := range sess.e.clusterIdx {
			if v := tu.Vals[a]; !v.Null && sess.Current().DomainCount(a, v.Str) == 1 {
				unique++
			}
		}
		if unique > bestUnique {
			victim, bestUnique = tu, unique
		}
	}
	if bestUnique < 1 {
		t.Fatal("fixture has no tuple with a domain-unique indexed value; strengthen the delta")
	}
	vals := append([]relation.Value(nil), victim.Vals...)
	warmIdx := make(map[int]bool, len(sess.e.clusterIdx))
	for a := range sess.e.clusterIdx {
		warmIdx[a] = true
	}
	if _, _, err := sess.ApplyOps([]relation.TupleID{victim.ID}, nil, nil); err != nil {
		t.Fatal(err)
	}
	for a := range warmIdx {
		shrank := !vals[a].Null && sess.Current().DomainCount(a, vals[a].Str) == 0
		_, idxKept := sess.e.clusterIdx[a]
		if shrank && idxKept {
			t.Errorf("attr %d: domain shrank but the cluster index survived", a)
		}
		if !shrank && !idxKept {
			t.Errorf("attr %d: domain kept every removed value but the cluster index was dropped", a)
		}
		if _, nearKept := sess.e.nearCache[a]; shrank && nearKept {
			t.Errorf("attr %d: domain shrank but the nearest cache survived", a)
		}
	}
	// The session keeps repairing correctly on the partially rebuilt caches.
	if _, err := sess.ApplyDelta(randomDelta(rand.New(rand.NewSource(3)), 4)); err != nil {
		t.Fatal(err)
	}
	if !sess.Satisfied() || !cfd.Satisfies(sess.Current(), sigma) {
		t.Fatal("session inconsistent after cache rebuild")
	}
}

// TestSessionDumpMatchesWriteCSV: Dump must serialize exactly what
// WriteCSV over Current yields when the session is quiescent.
func TestSessionDumpMatchesWriteCSV(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyDelta(randomDelta(rand.New(rand.NewSource(4)), 6)); err != nil {
		t.Fatal(err)
	}
	var a, b stringsBuilder
	if err := sess.Dump(&a); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(sess.Current(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Dump and WriteCSV diverged")
	}
	sess.Close()
	if err := sess.Dump(&a); err != errClosed {
		t.Fatalf("Dump after close: got %v, want errClosed", err)
	}
	if vs, total := sess.Violations(0); vs != nil || total != 0 {
		t.Fatalf("Violations after close must refuse, got %d entries", len(vs))
	}
}

// stringsBuilder avoids importing strings/bytes just for a writer.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }
