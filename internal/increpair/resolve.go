package increpair

import (
	"sort"
	"sync"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cluster"
	"cfdclean/internal/cost"
	"cfdclean/internal/relation"
)

// tupleResolve implements procedure TUPLERESOLVE (Fig. 7): greedily cover
// attr(R) with sets C of at most k attributes, choosing for each C the
// value tuple v̂ — drawn from adom(Repr) ∪ {null} — that keeps
// Repr ∪ {t[C/v̂]} consistent on the CFDs entirely within the fixed
// attributes and minimizes costfix.
//
// Two optimizations preserve the greedy's choices while skipping dead
// work. First, if the current tuple violates nothing, every remaining
// attribute is fixable at zero cost at once (the paper's greedy would
// pick those zero-cost sets first anyway). Second, attributes involved in
// no violated rule are likewise fixed unchanged before subsets of the
// contested attributes are enumerated — exactly the behaviour the paper
// describes in Example 5.1, where every attribute outside the violated
// CFDs is fixed without change first.
func (e *engine) tupleResolve(t *relation.Tuple) *relation.Tuple {
	rt := t.Clone()
	if e.repr.Tuple(rt.ID) != nil {
		rt.ID = 0 // let Insert assign a fresh id later
	}
	var fixed uint64
	full := uint64(1)<<uint(e.arity) - 1
	for fixed != full {
		violated := e.violatedMasks(rt)
		if len(violated) == 0 {
			// Consistent as-is: every remaining attribute is fixable
			// unchanged at zero cost (the greedy's first choices anyway).
			fixed = full
			break
		}
		// The closure of the violated rules' attributes over shared
		// embedded-FD groups: attributes outside it can never help (or
		// hurt) the open violations, because their groups are disjoint
		// from the contested ones — fix them unchanged at zero cost.
		// Attributes inside the closure stay open; Example 5.1 needs the
		// un-violated zip available when k = 3 reaches {CT, ST, zip}.
		contested := e.closure(violated) &^ fixed
		if contested == 0 {
			// All contested attributes are already fixed, yet a rule is
			// violated — impossible while the fixing invariant holds;
			// stop rather than loop (defensive).
			fixed = full
			break
		}
		if free := full &^ fixed &^ contested; free != 0 {
			fixed |= free
		}
		// Enumerate C ∈ [contested]^k and candidate values.
		attrs := bitsOf(contested)
		k := e.opts.K
		if k > len(attrs) {
			k = len(attrs)
		}
		best := e.bestFix(rt, fixed, attrs, k, violated)
		for i, a := range best.attrs {
			rt.Vals[a] = best.vals[i]
		}
		for _, a := range best.attrs {
			fixed |= 1 << uint(a)
		}
	}
	return rt
}

// violatedMasks returns the attribute masks of the embedded-FD groups
// with at least one rule currently violated by rt against Repr.
func (e *engine) violatedMasks(rt *relation.Tuple) []uint64 {
	var out []uint64
	for _, gi := range e.groups {
		if e.groupViolations(gi.g, rt) > 0 {
			out = append(out, gi.mask)
		}
	}
	return out
}

// closure expands the union of the violated masks until no group
// straddles the boundary: the connected component of the contested
// attributes in the "shares a CFD" graph.
func (e *engine) closure(violated []uint64) uint64 {
	var m uint64
	for _, v := range violated {
		m |= v
	}
	for {
		grew := false
		for _, gi := range e.groups {
			if gi.mask&m != 0 && gi.mask&^m != 0 {
				m |= gi.mask
				grew = true
			}
		}
		if !grew {
			return m
		}
	}
}

// groupViolations counts the violations of rt against Repr within one
// embedded-FD group (the vio(t) contribution of the group, §3.1). The
// counting lives in the detector (Group.VioCount), which compares
// interned ids and scans the LHS bucket once per call — this is the
// innermost loop of TUPLERESOLVE's candidate enumeration.
func (e *engine) groupViolations(g cfd.Group, rt *relation.Tuple) int {
	return g.VioCount(rt)
}

// vio returns vio(rt) against Repr over all of Σ.
func (e *engine) vio(rt *relation.Tuple) int {
	total := 0
	for _, gi := range e.groups {
		total += e.groupViolations(gi.g, rt)
	}
	return total
}

// consistentOn reports whether Repr ∪ {rt} satisfies every rule whose
// attributes lie entirely within the given attribute mask — the paper's
// Σ(C ∪ C̄) check (Fig. 7 line 5), accelerated by the detector's LHS
// indices.
func (e *engine) consistentOn(rt *relation.Tuple, mask uint64) bool {
	for _, gi := range e.groups {
		if gi.mask&mask != gi.mask {
			continue
		}
		if e.groupViolations(gi.g, rt) > 0 {
			return false
		}
	}
	return true
}

// fix is a candidate assignment to a set of attributes with its ranking.
type fix struct {
	attrs []int
	vals  []relation.Value
	// costfix ranking (Fig. 7 line 6): primary cost·vio, then cost, then
	// vio — the tie-breakers resolve the paper's many 0·0 products in
	// favor of unchanged and cheap candidates. contested breaks the
	// remaining ties toward attribute sets touching fewer violated
	// rules, so consistent attributes are pinned first and the violated
	// ones are decided last with the most context (Example 5.1).
	primary   float64
	cost      float64
	vio       int
	contested int
	valid     bool
}

func (f fix) better(g fix) bool {
	if !g.valid {
		return true
	}
	if f.primary != g.primary {
		return f.primary < g.primary
	}
	if f.cost != g.cost {
		return f.cost < g.cost
	}
	if f.vio != g.vio {
		return f.vio < g.vio
	}
	return f.contested < g.contested
}

// bestFix evaluates every C ∈ [attrs]^k with every candidate value
// combination and returns the best valid fix. At least one valid fix
// always exists: the all-null assignment matches no pattern and conflicts
// with nothing (Example 5.1's (null, null)).
//
// The attribute subsets are independent of one another, so their
// evaluation fans out across the engine's worker pool, each worker
// mutating its own clone of rt. Candidate values depend only on rt's
// current (unmutated) state and are computed once up front — this also
// keeps the nearest-neighbour cache single-threaded. The merge picks the
// fix the sequential left-to-right scan would have kept: the lowest
// subset index attaining the minimal costfix ranking.
func (e *engine) bestFix(rt *relation.Tuple, fixed uint64, attrs []int, k int, violated []uint64) fix {
	var subsets [][]int
	subset := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			subsets = append(subsets, append([]int(nil), subset...))
			return
		}
		for i := start; i < len(attrs); i++ {
			subset[depth] = attrs[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	cands := make(map[int][]relation.Value, len(attrs))
	for _, a := range attrs {
		cands[a] = e.candidates(rt, a)
	}
	var best fix
	nw := e.opts.Workers
	if nw > len(subsets) {
		nw = len(subsets)
	}
	e.ensureScratches(nw)
	if nw <= 1 {
		for _, c := range subsets {
			f := e.bestValsFor(rt, fixed, c, violated, cands, e.scratches[0])
			if f.valid && f.better(best) {
				best = f
			}
		}
	} else {
		type ranked struct {
			f   fix
			idx int
		}
		bests := make([]ranked, nw)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := ranked{idx: -1}
				wrt := rt.Clone()
				sc := e.scratches[w]
				for i := w; i < len(subsets); i += nw {
					f := e.bestValsFor(wrt, fixed, subsets[i], violated, cands, sc)
					if f.valid && f.better(local.f) {
						local = ranked{f: f, idx: i}
					}
				}
				bests[w] = local
			}(w)
		}
		wg.Wait()
		bestIdx := -1
		for _, r := range bests {
			if r.idx < 0 {
				continue
			}
			if bestIdx < 0 || r.f.better(best) || (!best.better(r.f) && r.idx < bestIdx) {
				best, bestIdx = r.f, r.idx
			}
		}
	}
	if !best.valid {
		// Defensive: the all-null fix on the first k attributes.
		vals := make([]relation.Value, k)
		for i := range vals {
			vals[i] = relation.NullValue
		}
		best = fix{attrs: attrs[:k], vals: vals, valid: true}
	}
	return best
}

// ensureScratches sizes the per-worker cost scratch pool to at least n
// (minimum one, for the sequential path). Scratches are reused across
// bestFix calls — worker w always gets scratches[w], and the WaitGroup
// barrier orders its uses — so the local memos warm up over the run.
func (e *engine) ensureScratches(n int) {
	if n < 1 {
		n = 1
	}
	for len(e.scratches) < n {
		e.scratches = append(e.scratches, e.model.Scratch())
	}
}

// bestValsFor finds the cheapest consistent value combination for the
// attribute set c, drawing per-attribute candidates from cands; sc is
// the calling worker's cost scratch.
func (e *engine) bestValsFor(rt *relation.Tuple, fixed uint64, c []int, violated []uint64, cands map[int][]relation.Value, sc *cost.Scratch) fix {
	var cmask uint64
	for _, a := range c {
		cmask |= 1 << uint(a)
	}
	checkMask := fixed | cmask
	contested := 0
	for _, m := range violated {
		if m&cmask != 0 {
			contested++
		}
	}
	// The odometer below only mutates rt's values at the attributes in c,
	// and a group's violation count depends only on rt's values at X ∪
	// {A}. Groups disjoint from c are therefore loop invariants: count
	// them once here instead of once per candidate combination. Of those,
	// a group lying entirely inside checkMask that is violated now stays
	// violated for every candidate — no combination can be consistent, so
	// the whole enumeration is skipped (exactly what the unhoisted loop
	// would conclude, one rejected candidate at a time).
	var (
		variant      []int // e.groups indices whose mask intersects c
		variantCheck []int // the variant groups within checkMask
		baseVio      int   // Σ violations of the invariant groups
	)
	for i := range e.groups {
		gi := &e.groups[i]
		if gi.mask&cmask != 0 {
			variant = append(variant, i)
			if gi.mask&checkMask == gi.mask {
				variantCheck = append(variantCheck, i)
			}
			continue
		}
		n := e.groupViolations(gi.g, rt)
		baseVio += n
		if n > 0 && gi.mask&checkMask == gi.mask {
			return fix{}
		}
	}
	cvals := make([][]relation.Value, len(c))
	for i, a := range c {
		cvals[i] = cands[a]
	}
	saved := make([]relation.Value, len(c))
	for i, a := range c {
		saved[i] = rt.Vals[a]
	}
	defer func() {
		for i, a := range c {
			rt.Vals[a] = saved[i]
		}
	}()
	var best fix
	bestIdx := make([]int, len(c)) // odometer position of best; vals materialize after the loop
	idx := make([]int, len(c))
	for {
		for i, a := range c {
			rt.Vals[a] = cvals[i][idx[i]]
		}
		consistent := true
		for _, gi := range variantCheck {
			if e.groupViolations(e.groups[gi].g, rt) > 0 {
				consistent = false
				break
			}
		}
		if consistent {
			var chg float64
			for i, a := range c {
				if !relation.StrictEq(saved[i], rt.Vals[a]) {
					chg += sc.ChangeFromInterned(e.repr.Dict(), rt, a, saved[i], rt.Vals[a])
				}
			}
			v := baseVio
			for _, gi := range variant {
				v += e.groupViolations(e.groups[gi].g, rt)
			}
			f := fix{
				attrs:     c,
				primary:   chg * float64(v),
				cost:      chg,
				vio:       v,
				contested: contested,
				valid:     true,
			}
			if f.better(best) {
				best = f
				copy(bestIdx, idx)
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(cvals[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	if best.valid {
		best.vals = make([]relation.Value, len(c))
		for i := range c {
			best.vals[i] = cvals[i][bestIdx[i]]
		}
	}
	return best
}

// candidates assembles the value candidates for attribute a of rt, in the
// spirit of FINDV (§4.2) and the cost-based indices (§5.2): the current
// value, constants from applicable pattern tuples, donor values from
// clean tuples agreeing with rt on a rule's LHS, the nearest active-
// domain values by the DL metric, and null.
func (e *engine) candidates(rt *relation.Tuple, a int) []relation.Value {
	var out []relation.Value
	seen := make(map[string]bool)
	add := func(v relation.Value) {
		if v.Null {
			return
		}
		if !seen[v.Str] {
			seen[v.Str] = true
			out = append(out, v)
		}
	}
	add(rt.Vals[a]) // unchanged first
	for _, gi := range e.groups {
		if gi.g.A() != a {
			continue
		}
		for _, n := range gi.g.MatchingRules(rt) {
			if n.ConstantRHS() {
				add(relation.S(n.TpA.Const))
				continue
			}
			// Variable RHS: the clean bucket dictates the value.
			for _, id := range gi.g.Bucket(rt) {
				if id == rt.ID {
					continue
				}
				add(e.repr.Tuple(id).Vals[a])
				break // clean buckets agree; one donor suffices
			}
		}
	}
	if !rt.Vals[a].Null {
		for _, s := range e.nearest(a, rt.Vals[a].Str) {
			add(relation.S(s))
		}
	}
	out = append(out, relation.NullValue)
	return out
}

// nearest returns the memoized cost-based index lookup for (a, v):
// TUPLERESOLVE's subset enumeration asks for the same neighbours once per
// subset containing a, and the index query dominates the profile.
func (e *engine) nearest(a int, v string) []string {
	byVal, ok := e.nearCache[a]
	if !ok {
		byVal = make(map[string][]string)
		e.nearCache[a] = byVal
	}
	if res, ok := byVal[v]; ok {
		return res
	}
	res := e.clusterIndex(a).Nearest(v, e.opts.NearestK)
	byVal[v] = res
	return res
}

// clusterIndex lazily builds the cost-based index over adom(Repr, a).
func (e *engine) clusterIndex(a int) cluster.Index {
	if ix, ok := e.clusterIdx[a]; ok {
		return ix
	}
	ix := cluster.New(e.repr.ActiveDomain(a), nil)
	e.clusterIdx[a] = ix
	return ix
}

// bitsOf expands a bitmask into sorted attribute positions.
func bitsOf(m uint64) []int {
	var out []int
	for a := 0; m != 0; a++ {
		if m&1 == 1 {
			out = append(out, a)
		}
		m >>= 1
	}
	sort.Ints(out)
	return out
}
