package increpair

import (
	"errors"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

var errClosed = errors.New("increpair: session is closed")

// Session is a long-lived streaming repair session — the paper's online
// scenario (§5) as a stateful object. NewSession opens a cleaner over a
// database D: it builds the working copy and the delta-maintained
// violation store once, cleans D with the §5.3 driver if it is dirty,
// and then keeps the engine alive. Each ApplyDelta pushes a ΔD batch
// through INCREPAIR against the maintained state, so the per-batch cost
// is O(|ΔD|) — the base is never rescanned, no detector is ever rebuilt,
// and TUPLERESOLVE's donor indices, cost-based cluster indices and
// nearest-neighbour caches all carry over from batch to batch.
type Session struct {
	e *engine

	initial *Result
	batches int
	applied int
	cost    float64
	changes int
	closed  bool
}

// NewSession opens a streaming repair session over d. The input is
// cloned, never modified. If d violates sigma, the §5.3 driver repairs
// it first; Initial reports that cleaning. opts may be nil.
func NewSession(d *relation.Relation, sigma []*cfd.Normal, opts *Options) (*Session, error) {
	o := opts.withDefaults()
	e, err := newEngine(d.Clone(), sigma, o)
	if err != nil {
		return nil, err
	}
	s := &Session{e: e}
	if !e.store.Satisfied() {
		delta := e.extractDirty()
		res, err := e.insertBatch(delta)
		if err != nil {
			e.close()
			return nil, err
		}
		s.initial = res
	}
	return s, nil
}

// ApplyDelta repairs one ΔD batch against the session's current state
// and inserts the repaired tuples. The returned Result describes this
// batch alone; Result.Repair is the session's live relation.
func (s *Session) ApplyDelta(delta []*relation.Tuple) (*Result, error) {
	if s.closed {
		return nil, errClosed
	}
	res, err := s.e.insertBatch(delta)
	if err != nil {
		return nil, err
	}
	s.batches++
	s.applied += len(res.Inserted)
	s.cost += res.Cost
	s.changes += res.Changes
	return res, nil
}

// Current returns the session's live repaired relation: D's clean core
// plus every repaired batch so far. Callers must not mutate it while the
// session is open; Close first.
func (s *Session) Current() *relation.Relation { return s.e.repr }

// Initial reports the §5.3 cleaning NewSession performed on a dirty
// input, or nil if the input already satisfied sigma.
func (s *Session) Initial() *Result { return s.initial }

// Satisfied reports whether the session's relation currently satisfies
// sigma, from the store's maintained total in O(1). It is an invariant
// of INCREPAIR that this holds after every ApplyDelta.
func (s *Session) Satisfied() bool { return s.e.store.Satisfied() }

// Stats returns cumulative session counters: batches applied, tuples
// inserted, total repair cost and changed cells (excluding the initial
// cleaning).
func (s *Session) Stats() (batches, tuples int, cost float64, changes int) {
	return s.batches, s.applied, s.cost, s.changes
}

// Close detaches the session's violation store from its relation. The
// relation remains valid (and is returned by Current); further ApplyDelta
// calls fail.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.e.close()
}
