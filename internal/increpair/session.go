package increpair

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
	"cfdclean/internal/store"
)

var errClosed = errors.New("increpair: session is closed")

// Session is a long-lived streaming repair session — the paper's online
// scenario (§5) as a stateful object. NewSession opens a cleaner over a
// database D: it builds the working copy and the delta-maintained
// violation store once, cleans D with the §5.3 driver if it is dirty,
// and then keeps the engine alive. Each ApplyDelta pushes a ΔD batch
// through INCREPAIR against the maintained state, so the per-batch cost
// is O(|ΔD|) — the base is never rescanned, no detector is ever rebuilt,
// and TUPLERESOLVE's donor indices, cost-based cluster indices and
// nearest-neighbour caches all carry over from batch to batch.
//
// # Concurrency contract
//
// A Session is safe for concurrent use under a single-writer,
// many-reader discipline that the Session itself enforces:
//
//   - Mutations (ApplyDelta, ApplyOps, Close) serialize on an internal
//     mutex. Any goroutine may call them; at most one engine pass runs
//     at a time, and passes are applied in lock-acquisition order. The
//     repaired output for a given call sequence is therefore identical
//     to issuing the same calls from one goroutine.
//   - Snapshot reads (Snapshot, Satisfied, Stats) are lock-free: after
//     every mutation the writer publishes an immutable Snapshot via an
//     atomic pointer, stamped with the relation journal's NextID
//     watermark and mutation Version. Readers load the pointer and
//     never contend with a writer, observe a half-applied batch, or
//     block behind a long engine pass.
//   - Structure reads (Violations, Dump) need the live relation and
//     violation store, so they briefly take the writer lock; they are
//     consistent but not wait-free.
//   - Current returns the live relation without locking; it is safe
//     only when the caller can rule out concurrent mutations (after
//     Close, or in single-goroutine use).
type Session struct {
	// mu serializes every mutating entry point and every structure read;
	// snapshot reads never take it.
	mu sync.Mutex
	e  *engine

	initial *Result
	batches int
	applied int
	deleted int
	cost    float64
	changes int
	closed  bool

	// snap is the last published state; rewritten (never mutated) under
	// mu after each mutation, loaded lock-free by readers.
	snap atomic.Pointer[Snapshot]

	// sigmaText caches the persisted form of the constraint set (see
	// formatSigma): sigma never changes over a session's life, and the
	// verification behind it is too expensive to repeat on every
	// snapshot rotation. Guarded by mu.
	sigmaText string

	// st is the attached disk store, nil for memory-backed sessions (see
	// AttachStore). The session does not own its lifecycle — the hosting
	// persister creates, opens and closes it. Guarded by mu.
	st *store.Disk
}

// Snapshot is an immutable, atomically published view of a Session's
// state, the unit of the lock-free read path. Watermark and Version come
// from the relation's mutation journal: Watermark is the next tuple id
// to be assigned (it advances only on inserts and names the insertion
// history), Version counts every mutation, so two Snapshots with equal
// Version describe the identical relation state.
type Snapshot struct {
	// Watermark is the journal's NextID at publication time.
	Watermark relation.TupleID
	// Version is the journal's mutation counter at publication time.
	Version uint64
	// Size is the number of tuples in the session's relation.
	Size int
	// Batches counts completed ApplyDelta/ApplyOps calls.
	Batches int
	// Inserted counts tuples repaired and inserted across all batches.
	Inserted int
	// Deleted counts tuples removed across all batches.
	Deleted int
	// Cost is the cumulative repair cost over all batches (§3.3),
	// excluding the initial cleaning.
	Cost float64
	// Changes is the cumulative count of modified cells over all
	// batches, excluding the initial cleaning.
	Changes int
	// Violations is the maintained vio(D) total; an INCREPAIR invariant
	// keeps it 0 after every completed batch.
	Violations int
	// Satisfied reports Violations == 0.
	Satisfied bool
	// Closed reports whether the session has been closed.
	Closed bool
}

// SetOp is one cell update in an ApplyOps batch: set attribute Attr of
// the existing tuple ID to Value. The updated tuple is re-cleaned — it
// is removed and its modified version re-enters through TUPLERESOLVE, so
// an update that introduces violations is repaired like any arriving
// tuple (possibly onto a different value than the one requested).
type SetOp struct {
	ID    relation.TupleID
	Attr  int
	Value relation.Value
}

// NewSession opens a streaming repair session over d. The input is
// cloned, never modified. If d violates sigma, the §5.3 driver repairs
// it first; Initial reports that cleaning. opts may be nil.
func NewSession(d *relation.Relation, sigma []*cfd.Normal, opts *Options) (*Session, error) {
	o := opts.withDefaults()
	e, err := newEngine(d.Clone(), sigma, o)
	if err != nil {
		return nil, err
	}
	s := &Session{e: e}
	if !e.store.Satisfied() {
		delta := e.extractDirty()
		res, err := e.insertBatch(delta)
		if err != nil {
			e.close()
			return nil, err
		}
		s.initial = res
	}
	s.publish()
	return s, nil
}

// ApplyDelta repairs one ΔD batch against the session's current state
// and inserts the repaired tuples. The returned Result describes this
// batch alone; Result.Repair is the session's live relation.
func (s *Session) ApplyDelta(delta []*relation.Tuple) (*Result, error) {
	res, _, err := s.ApplyOps(nil, nil, delta)
	return res, err
}

// ApplyOps applies one mixed mutation batch in a single engine pass:
// deletes first (deletions never introduce CFD violations, §3.3), then
// cell updates, then inserts. Updates are re-cleaned: each updated tuple
// is removed, its modified version keeps its id and joins the inserts as
// ΔD, and the whole ΔD is repaired by one INCREPAIR pass in the
// session's configured ordering. It returns the pass's Result and the
// number of tuples deleted (updated tuples are not counted as deleted).
//
// The batch is validated before anything mutates: unknown delete or
// update ids, out-of-range attributes, updates targeting a tuple
// deleted in the same batch, bad insert arities or weight vectors, and
// explicit insert ids that collide (with live tuples, with same-batch
// updates, or with each other) all fail with the session state
// untouched. An explicit insert id below the watermark (NextID) may
// name any currently-unused slot — one freed by an earlier batch, or by
// a deletion in this same batch; explicit ids at or beyond the
// watermark (fresh ids the caller chose) must not be mixed with id-0
// inserts in one batch, since the auto-assigner could take their slots
// first; id 0 lets the relation assign the next id.
func (s *Session) ApplyOps(deletes []relation.TupleID, sets []SetOp, inserts []*relation.Tuple) (*Result, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, errClosed
	}

	// Validate up front so errors leave the session untouched.
	arity := s.e.arity
	dropped := make(map[relation.TupleID]bool, len(deletes))
	for _, id := range deletes {
		if s.e.repr.Tuple(id) == nil {
			return nil, 0, fmt.Errorf("increpair: delete of unknown tuple id %d", id)
		}
		if dropped[id] {
			return nil, 0, fmt.Errorf("increpair: duplicate delete of tuple id %d", id)
		}
		dropped[id] = true
	}
	updatedIDs := make(map[relation.TupleID]bool, len(sets))
	for _, op := range sets {
		if op.Attr < 0 || op.Attr >= arity {
			return nil, 0, fmt.Errorf("increpair: set on tuple %d addresses attribute %d of a %d-attribute schema", op.ID, op.Attr, arity)
		}
		if dropped[op.ID] {
			return nil, 0, fmt.Errorf("increpair: set on tuple %d deleted in the same batch", op.ID)
		}
		if s.e.repr.Tuple(op.ID) == nil {
			return nil, 0, fmt.Errorf("increpair: set on unknown tuple id %d", op.ID)
		}
		updatedIDs[op.ID] = true
	}
	seenInsertIDs := make(map[relation.TupleID]bool, len(inserts))
	hasAuto, hasAboveWatermark := false, false
	for i, t := range inserts {
		if len(t.Vals) != arity {
			return nil, 0, fmt.Errorf("increpair: insert %d has arity %d, want %d", i, len(t.Vals), arity)
		}
		if t.W != nil && len(t.W) != arity {
			return nil, 0, fmt.Errorf("increpair: insert %d has %d weights, want %d", i, len(t.W), arity)
		}
		if t.ID == 0 {
			hasAuto = true
			continue
		}
		if t.ID >= s.e.repr.NextID() {
			hasAboveWatermark = true
		}
		// An explicit id may only reuse a slot this same batch frees by
		// deletion; updated tuples re-enter under their own id, so an
		// insert claiming it would collide mid-pass.
		if seenInsertIDs[t.ID] {
			return nil, 0, fmt.Errorf("increpair: duplicate insert id %d in batch", t.ID)
		}
		seenInsertIDs[t.ID] = true
		if updatedIDs[t.ID] {
			return nil, 0, fmt.Errorf("increpair: insert id %d is updated in the same batch", t.ID)
		}
		if s.e.repr.Tuple(t.ID) != nil && !dropped[t.ID] {
			return nil, 0, fmt.Errorf("increpair: insert id %d already exists", t.ID)
		}
	}
	// A batch may carry explicit ids above the watermark (a caller
	// choosing fresh ids, as StreamBatches does) or id-less inserts, but
	// not both: the auto-assigner hands out ids from the watermark up, so
	// mixing lets an id-less tuple take an explicit tuple's slot first
	// and the latecomer would be silently renumbered mid-pass.
	if hasAuto && hasAboveWatermark {
		return nil, 0, fmt.Errorf("increpair: batch mixes id-less inserts with explicit ids at or beyond the watermark %d", s.e.repr.NextID())
	}

	removed := make([]*relation.Tuple, 0, len(deletes)+len(sets))
	for _, id := range deletes {
		removed = append(removed, s.e.repr.Tuple(id))
		s.e.repr.Delete(id)
	}

	// Group cell updates per tuple (in first-appearance order), apply
	// them to a detached clone, and remove the original: the modified
	// tuple re-enters through the repair pass under its old id.
	var updated []*relation.Tuple
	mods := make(map[relation.TupleID]*relation.Tuple, len(sets))
	for _, op := range sets {
		c := mods[op.ID]
		if c == nil {
			orig := s.e.repr.Tuple(op.ID)
			removed = append(removed, orig)
			c = orig.Clone()
			mods[op.ID] = c
			updated = append(updated, c)
		}
		c.Vals[op.Attr] = op.Value
	}
	for _, c := range updated {
		s.e.repr.Delete(c.ID)
	}
	if len(removed) > 0 {
		// Values may just have left the active domain; where that actually
		// happened, drop the engine's domain-derived candidate caches so
		// TUPLERESOLVE cannot offer a vanished value as a donor (§3.1:
		// repairs draw from adom ∪ null). The check is per attribute:
		// an attribute whose domain still holds every removed value keeps
		// its cluster index and nearest-neighbour memo, so steady mixed
		// traffic does not rebuild the cost-based indices each pass.
		// (Values a batch *introduces* are handled by the insert loop,
		// which grows the index and evicts stale memo entries.)
		for a := 0; a < arity; a++ {
			for _, t := range removed {
				if v := t.Vals[a]; !v.Null && s.e.repr.DomainCount(a, v.Str) == 0 {
					s.e.invalidateDomainCachesFor(a)
					break
				}
			}
		}
	}

	delta := make([]*relation.Tuple, 0, len(updated)+len(inserts))
	delta = append(delta, updated...)
	delta = append(delta, inserts...)

	res, err := s.e.insertBatch(delta)
	if err != nil {
		// The pass may have partially applied; republish so snapshot
		// readers see the true state rather than the last good batch.
		s.publish()
		return nil, 0, err
	}
	s.batches++
	s.applied += len(res.Inserted)
	s.deleted += len(deletes)
	s.cost += res.Cost
	s.changes += res.Changes
	s.publish()
	return res, len(deletes), nil
}

// publish stores a fresh immutable Snapshot; callers hold mu (or, in
// NewSession, exclusive ownership).
func (s *Session) publish() {
	s.snap.Store(&Snapshot{
		Watermark:  s.e.repr.NextID(),
		Version:    s.e.repr.Version(),
		Size:       s.e.repr.Size(),
		Batches:    s.batches,
		Inserted:   s.applied,
		Deleted:    s.deleted,
		Cost:       s.cost,
		Changes:    s.changes,
		Violations: s.e.store.TotalViolations(),
		Satisfied:  s.e.store.Satisfied(),
		Closed:     s.closed,
	})
}

// Snapshot returns the last published session state. It is lock-free:
// concurrent ApplyOps calls never block it and it never observes a
// half-applied batch.
func (s *Session) Snapshot() Snapshot { return *s.snap.Load() }

// Current returns the session's live repaired relation: D's clean core
// plus every repaired batch so far. It does not lock; callers must not
// use it while another goroutine may be applying batches (use Dump for
// a consistent serialization, or Close first).
func (s *Session) Current() *relation.Relation { return s.e.repr }

// Initial reports the §5.3 cleaning NewSession performed on a dirty
// input, or nil if the input already satisfied sigma.
func (s *Session) Initial() *Result { return s.initial }

// Satisfied reports whether the session's relation satisfied sigma as of
// the last published snapshot, in O(1) and lock-free. It is an invariant
// of INCREPAIR that this holds after every completed batch.
func (s *Session) Satisfied() bool { return s.snap.Load().Satisfied }

// Stats returns cumulative session counters from the last published
// snapshot (lock-free): batches applied, tuples inserted, total repair
// cost and changed cells (excluding the initial cleaning).
func (s *Session) Stats() (batches, tuples int, cost float64, changes int) {
	sn := s.snap.Load()
	return sn.Batches, sn.Inserted, sn.Cost, sn.Changes
}

// Violations returns up to limit current violations (limit <= 0 means
// all) in the canonical (tuple id, rule, partner id) order, plus the
// maintained vio(D) total — the pair is mutually consistent, unlike
// combining a listing with a separately loaded Snapshot. It streams the
// store's lazy cursor, so the lock is held for O(limit + dirty tuples),
// never O(vio(D)) materialization. After Close the store is detached and
// would answer stale; like Dump, the call refuses and returns nil.
func (s *Session) Violations(limit int) (vs []cfd.Violation, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0
	}
	total = s.e.store.TotalViolations()
	if total == 0 {
		return nil, 0
	}
	n := total
	if limit > 0 && limit < n {
		n = limit
	}
	vs = make([]cfd.Violation, 0, n)
	c := s.e.store.Cursor(cfd.AnyVio())
	for v, ok := c.Next(); ok && len(vs) < n; v, ok = c.Next() {
		vs = append(vs, v)
	}
	return vs, total
}

// Dump writes the session's current relation as CSV from a pinned
// ReadView: the session lock is held only for the pin handoff, so a
// large dump no longer stalls concurrent ApplyOps. The serialization is
// consistent at one journal version and the row order is deterministic
// for a deterministic call sequence (see extractDirty on why physical
// order is pinned).
func (s *Session) Dump(w io.Writer) error {
	v, err := s.ReadView()
	if err != nil {
		return err
	}
	defer v.Release()
	return v.WriteCSV(w)
}

// Close detaches the session's violation store from its relation. The
// relation remains valid (and is returned by Current); further ApplyOps
// calls fail. Close is idempotent and safe concurrently with readers
// and writers.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.e.close()
	s.publish()
}
