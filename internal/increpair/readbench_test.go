package increpair

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// benchReadSession builds a clean n-tuple session over a 3-attribute
// schema with one variable-RHS CFD [K] -> [V]. Keys are unique, so the
// base satisfies sigma and construction does no repair work.
func benchReadSession(tb testing.TB, n int) *Session {
	s := relation.MustSchema("bench", "K", "V", "P")
	phi := cfd.MustNew("phi", s, []string{"K"}, []string{"V"},
		[]cfd.Cell{cfd.W, cfd.W})
	d := relation.New(s)
	for i := 0; i < n; i++ {
		d.MustInsert(relation.NewTuple(0,
			fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%97), "p"))
	}
	sess, err := NewSession(d, cfd.NormalizeAll([]*cfd.CFD{phi}), nil)
	if err != nil {
		tb.Fatal(err)
	}
	return sess
}

var (
	benchSessMu sync.Mutex
	benchSess   = map[int]*Session{}
)

func sharedBenchSession(tb testing.TB, n int) *Session {
	benchSessMu.Lock()
	defer benchSessMu.Unlock()
	if s, ok := benchSess[n]; ok {
		return s
	}
	s := benchReadSession(tb, n)
	benchSess[n] = s
	return s
}

// largeBenchEnabled gates the 1M-tuple rows: they need ~1 GiB and tens
// of seconds of setup, too heavy for the CI bench-compile smoke. Set
// CFD_READBENCH_LARGE=1 to run them (BENCH_PR7.json records the output).
func largeBenchEnabled(tb testing.TB) {
	if os.Getenv("CFD_READBENCH_LARGE") == "" {
		tb.Skip("set CFD_READBENCH_LARGE=1 to run the 1M-tuple read benchmarks")
	}
}

// benchmarkDumpBuffered is the pre-PR 7 read path: the full CSV
// materialized in one buffer before a byte is written out (what
// handleDump did). Allocation grows O(relation).
func benchmarkDumpBuffered(b *testing.B, n int) {
	s := sharedBenchSession(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.Dump(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// benchmarkDumpStreamed is the PR 7 read path: a pinned view streamed
// straight to the sink; peak buffering is one cursor page plus the CSV
// writer's buffer, independent of n.
func benchmarkDumpStreamed(b *testing.B, n int) {
	s := sharedBenchSession(b, n)
	cw := &countWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw.n = 0
		if err := s.Dump(cw); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(cw.n)
	}
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

func BenchmarkDumpBuffered100k(b *testing.B) { benchmarkDumpBuffered(b, 100_000) }
func BenchmarkDumpStreamed100k(b *testing.B) { benchmarkDumpStreamed(b, 100_000) }
func BenchmarkDumpBuffered1M(b *testing.B)   { largeBenchEnabled(b); benchmarkDumpBuffered(b, 1_000_000) }
func BenchmarkDumpStreamed1M(b *testing.B)   { largeBenchEnabled(b); benchmarkDumpStreamed(b, 1_000_000) }

// BenchmarkViolationsLimited measures the cursor-backed Violations read
// on a clean session: O(1) regardless of relation size, where the old
// path materialized Detect() under the lock.
func BenchmarkViolationsLimited(b *testing.B) {
	s := sharedBenchSession(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs, total := s.Violations(100); total != 0 || vs != nil {
			b.Fatal("bench session is dirty")
		}
	}
}

// writerLatency streams batches of fresh inserts through the session
// while `readers` goroutines dump continuously, and returns the sorted
// per-batch ApplyOps wall times. This is the harness behind the
// BENCH_PR7.json "writer p99 under concurrent dumps" rows: before PR 7
// each dump held the session mutex for the full serialization, so a
// dump of an n-tuple relation put an O(n) stall in the writer's tail.
func writerLatency(tb testing.TB, s *Session, batches, perBatch, readers int) []time.Duration {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Dump(io.Discard); err != nil {
					tb.Error(err)
					return
				}
			}
		}()
	}
	lats := make([]time.Duration, 0, batches)
	next := int(s.Snapshot().Watermark)
	for i := 0; i < batches; i++ {
		delta := make([]*relation.Tuple, perBatch)
		for j := range delta {
			delta[j] = relation.NewTuple(0,
				fmt.Sprintf("k%d", next), fmt.Sprintf("v%d", next%97), "p")
			next++
		}
		t0 := time.Now()
		if _, err := s.ApplyDelta(delta); err != nil {
			tb.Fatal(err)
		}
		lats = append(lats, time.Since(t0))
	}
	close(stop)
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// TestWriterLatencyUnderConcurrentDumps is the BENCH_PR7.json recorder:
// writer p50/p99 with 0 and 4 concurrent dump streams over a 1M-tuple
// session. Gated like the 1M benchmarks; run with
//
//	CFD_READBENCH_LARGE=1 go test -run WriterLatencyUnderConcurrentDumps \
//	    -v ./internal/increpair/
func TestWriterLatencyUnderConcurrentDumps(t *testing.T) {
	largeBenchEnabled(t)
	const batches, perBatch = 60, 20
	for _, readers := range []int{0, 4} {
		s := benchReadSession(t, 1_000_000)
		lats := writerLatency(t, s, batches, perBatch, readers)
		t.Logf("1M tuples, %d concurrent dumps: writer p50 %v p99 %v (n=%d, %d inserts/batch)",
			readers, quantile(lats, 0.50), quantile(lats, 0.99), batches, perBatch)
		s.Close()
	}
}

// TestWriterLatencyUnderDumpsSmoke is the always-on variant at 20k
// tuples: it asserts the structural property rather than a ratio — the
// writer keeps completing batches while 4 dumps stream, and every
// reader-pinned generation is released by the end.
func TestWriterLatencyUnderDumpsSmoke(t *testing.T) {
	s := benchReadSession(t, 20_000)
	defer s.Close()
	lats := writerLatency(t, s, 8, 10, 4)
	if len(lats) != 8 {
		t.Fatalf("writer completed %d/8 batches", len(lats))
	}
	if n := s.Current().ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d after harness, want 0", n)
	}
}
