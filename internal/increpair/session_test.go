package increpair

import (
	"bytes"
	"math/rand"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

// randomDelta builds n delta tuples over the paper schema with values
// drawn from pools that collide with the clean base.
func randomDelta(rng *rand.Rand, n int) []*relation.Tuple {
	ids := []string{"a23", "a12", "a89", "a45"}
	names := []string{"H. Porter", "J. Denver", "Snow White", "B. Good"}
	prs := []string{"17.99", "7.94", "18.99", "3.99"}
	acs := []string{"212", "215", "610"}
	pns := []string{"8983490", "3456789", "3345677", "5674322"}
	strs := []string{"Walnut", "Spruce", "Canel", "Broad"}
	cts := []string{"PHI", "NYC", "CHI"}
	sts := []string{"PA", "NY", "IL"}
	zips := []string{"10012", "19014", "60614"}
	pick := func(p []string) string { return p[rng.Intn(len(p))] }
	out := make([]*relation.Tuple, n)
	for i := range out {
		out[i] = relation.NewTuple(0,
			pick(ids), pick(names), pick(prs), pick(acs), pick(pns),
			pick(strs), pick(cts), pick(sts), pick(zips))
	}
	return out
}

// TestSessionMatchesOneShotLinear: with Linear ordering, streaming a
// delta through a session in batches walks exactly the same sequence of
// TUPLERESOLVE states as one Incremental call over the concatenation, so
// the repairs must be identical, batch boundaries notwithstanding.
func TestSessionMatchesOneShotLinear(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	delta := randomDelta(rand.New(rand.NewSource(3)), 24)

	cloneAll := func(ts []*relation.Tuple) []*relation.Tuple {
		out := make([]*relation.Tuple, len(ts))
		for i, tt := range ts {
			out[i] = tt.Clone()
		}
		return out
	}

	oneShot, err := Incremental(d, cloneAll(delta), sigma, nil)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Initial() != nil {
		t.Fatal("clean input must not trigger an initial repair")
	}
	var totalCost float64
	totalChanges := 0
	for start := 0; start < len(delta); start += 7 {
		end := start + 7
		if end > len(delta) {
			end = len(delta)
		}
		res, err := sess.ApplyDelta(cloneAll(delta[start:end]))
		if err != nil {
			t.Fatal(err)
		}
		if !sess.Satisfied() {
			t.Fatalf("session violates sigma after batch at %d", start)
		}
		totalCost += res.Cost
		totalChanges += res.Changes
	}

	// Costs accumulate in a different association order (per-batch sums
	// vs one accumulator), so allow float rounding; everything else is
	// exact.
	if diff := totalCost - oneShot.Cost; diff < -1e-9 || diff > 1e-9 || totalChanges != oneShot.Changes {
		t.Fatalf("session stream (cost %v, changes %d) != one-shot (cost %v, changes %d)",
			totalCost, totalChanges, oneShot.Cost, oneShot.Changes)
	}
	var a, b bytes.Buffer
	if err := relation.WriteCSV(sess.Current(), &a); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(oneShot.Repair, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("session stream and one-shot repair diverged")
	}
}

// TestSessionInitialMatchesRepair: opening a session over a dirty
// database performs the §5.3 cleaning, identical to Repair.
func TestSessionInitialMatchesRepair(t *testing.T) {
	d := cleanPaperData(t)
	// Dirty it: t1[CT] -> "PHL" violates phi2's 19014 row.
	first := d.Tuples()[0]
	if _, err := d.Set(first.ID, 6, relation.S("PHL")); err != nil {
		t.Fatal(err)
	}
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))

	want, err := Repair(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	init := sess.Initial()
	if init == nil {
		t.Fatal("dirty input must trigger an initial repair")
	}
	if init.Cost != want.Cost || init.Changes != want.Changes {
		t.Fatalf("initial clean (cost %v, changes %d) != Repair (cost %v, changes %d)",
			init.Cost, init.Changes, want.Cost, want.Changes)
	}
	var a, b bytes.Buffer
	if err := relation.WriteCSV(sess.Current(), &a); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(want.Repair, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("session initial clean and Repair diverged")
	}
}

// TestSessionOrderingsStaySatisfied drives every §5.2 ordering through a
// multi-batch stream and asserts the invariant Repr |= Σ after each
// batch, plus correct cumulative stats.
func TestSessionOrderingsStaySatisfied(t *testing.T) {
	sigma := cfd.NormalizeAll(paperCFDs(orderSchema()))
	for _, ord := range []Ordering{Linear, ByViolations, ByWeight} {
		d := cleanPaperData(t)
		sess, err := NewSession(d, sigma, &Options{Ordering: ord})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		rng := rand.New(rand.NewSource(9))
		wantTuples := 0
		for b := 0; b < 4; b++ {
			delta := randomDelta(rng, 5)
			if _, err := sess.ApplyDelta(delta); err != nil {
				t.Fatalf("%v batch %d: %v", ord, b, err)
			}
			wantTuples += len(delta)
			if !sess.Satisfied() {
				t.Fatalf("%v: violates sigma after batch %d", ord, b)
			}
			if !cfd.Satisfies(sess.Current(), sigma) {
				t.Fatalf("%v: full re-detection disagrees with maintained state after batch %d", ord, b)
			}
		}
		batches, tuples, _, _ := sess.Stats()
		if batches != 4 || tuples != wantTuples {
			t.Fatalf("%v: stats (%d batches, %d tuples), want (4, %d)", ord, batches, tuples, wantTuples)
		}
		sess.Close()
		if _, err := sess.ApplyDelta(randomDelta(rng, 1)); err == nil {
			t.Fatalf("%v: ApplyDelta after Close must fail", ord)
		}
	}
}

// TestSessionArityMismatch: a bad batch is rejected without corrupting
// the session.
func TestSessionArityMismatch(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ApplyDelta([]*relation.Tuple{relation.NewTuple(0, "only", "three", "vals")}); err == nil {
		t.Fatal("arity mismatch must be rejected")
	}
	if !sess.Satisfied() {
		t.Fatal("rejected batch corrupted the session")
	}
	if _, err := sess.ApplyDelta([]*relation.Tuple{t5()}); err != nil {
		t.Fatalf("session unusable after rejected batch: %v", err)
	}
}
