package increpair

import (
	"errors"
	"fmt"

	"cfdclean/internal/relation"
	"cfdclean/internal/store"
	"cfdclean/internal/wal"
)

// Disk-store integration: a session whose tuples are mirrored into a
// write-through page store (internal/store). The engine itself is
// untouched — it operates on the in-memory relation either way — but the
// durability boundary changes shape: PersistBoundary captures a slim
// snapshot header plus a page flush instead of re-encoding every tuple,
// and RestoreFromSnapshotSource streams rows back from the store's page
// files instead of a snapshot record.

// AttachStore subscribes st to the session's live relation, so every
// mutation from now on writes through to the store's dirty page image.
// With seed set, the relation's current rows are written into the image
// first (the bootstrap for a brand-new store; a store reopened by crash
// recovery already holds them). A session can hold at most one store.
func (s *Session) AttachStore(st *store.Disk, seed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if s.st != nil {
		return errors.New("increpair: session already has a store attached")
	}
	st.Attach(s.e.repr)
	if seed {
		st.SeedAll(s.e.repr)
	}
	s.st = st
	return nil
}

// Store returns the attached disk store, or nil.
func (s *Session) Store() *store.Disk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// PersistBoundary captures the session's durability boundary for a
// store-backed rotation: a slim snapshot header (StoreKind=StorePaged,
// no inline tuples — the caller stamps StoreGen once it assigns the
// generation) and a Flush holding the dirty pages, dictionary watermark
// and pinned physical order. Both are taken under the session lock, so
// they describe the same quiescent point; the caller must resolve the
// flush with exactly one Commit or Abort.
func (s *Session) PersistBoundary(name string) (*wal.Snapshot, *store.Flush, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, errClosed
	}
	if s.st == nil {
		return nil, nil, errors.New("increpair: no store attached")
	}
	snap, err := s.walSnapshotLocked(name, false)
	if err != nil {
		return nil, nil, err
	}
	snap.StoreKind = wal.StorePaged
	fl := s.st.BeginFlush(s.e.repr.Pin(), s.e.repr.Size())
	return snap, fl, nil
}

// TupleSource streams snapshot rows in physical order. Next returns
// ok=false at clean exhaustion; an error poisons the restore (the
// caller falls back to an older generation). store.Iterator implements
// it over page files; sliceSource adapts a snapshot's inline tuples.
type TupleSource interface {
	Next() (wal.SnapTuple, bool, error)
}

type sliceSource struct {
	ts []wal.SnapTuple
	i  int
}

func (s *sliceSource) Next() (wal.SnapTuple, bool, error) {
	if s.i >= len(s.ts) {
		return wal.SnapTuple{}, false, nil
	}
	t := s.ts[s.i]
	s.i++
	return t, true, nil
}

// RestoreFromSnapshotSource is RestoreFromSnapshot with the rows
// supplied by src instead of snap.Tuples — the disk-backed recovery
// path, where snap is a slim header and src streams the page store.
// preloadDict, when non-nil, is interned into the fresh relation's
// dictionary in order before any row is inserted: a relation Dict
// assigns dense ids in intern order, so preloading the store's
// persisted dictionary reproduces the persisted ValueIDs exactly and
// the reopened store's rows stay valid against the restored relation.
func RestoreFromSnapshotSource(snap *wal.Snapshot, src TupleSource, workers int, preloadDict []string) (*Session, error) {
	if snap.Ordering > uint8(ByWeight) {
		return nil, fmt.Errorf("increpair: restore: unknown ordering %d", snap.Ordering)
	}
	sch, err := relation.NewSchema(snap.Relname, snap.Attrs...)
	if err != nil {
		return nil, fmt.Errorf("increpair: restore: %w", err)
	}
	rel := relation.New(sch)
	for _, v := range preloadDict {
		rel.Dict().InternStr(v)
	}
	for i := 0; ; i++ {
		st, ok, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("increpair: restore: %w", err)
		}
		if !ok {
			break
		}
		if st.ID == 0 {
			return nil, fmt.Errorf("increpair: restore: snapshot tuple %d has no id", i)
		}
		if err := rel.Insert(&relation.Tuple{ID: st.ID, Vals: st.Vals, W: st.W}); err != nil {
			return nil, fmt.Errorf("increpair: restore: %w", err)
		}
	}
	return restoreTail(snap, sch, rel, workers)
}
