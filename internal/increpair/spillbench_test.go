package increpair_test

// The out-of-core bench harness behind BENCH_PR10.json: one process =
// one (backend, size) cell, because the headline metric is peak RSS
// (VmHWM) and a high-water mark cannot be reset between in-process
// runs. The driver is EXPERIMENTS.md's loop:
//
//	CFD_SPILL_BENCH=mem:1000000 go test -run TestSpillBench -count=1 \
//	    ./internal/increpair/
//
// Each run ingests N clean tuples in 10k batches through a live
// session, performs ~8 durability rotations spread over the run (mem:
// full inline snapshot encode + write; disk: slim header + dirty-page
// flush), then recovers the final image in-process and reports one
// JSON object on stdout: ingest throughput, mean/max rotation time,
// recovery time, bytes on disk, and VmHWM.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cfdclean/internal/cfd"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/store"
	"cfdclean/internal/wal"
)

const spillCFDs = "cfd phi1: [AC] -> [CT]\n(212 || NYC)\n(610 || PHI)\n"

func spillSession(t *testing.T) *increpair.Session {
	t.Helper()
	sch := relation.MustSchema("orders", "AC", "CT", "zip")
	rel := relation.New(sch)
	parsed, err := cfd.Parse(sch, strings.NewReader(spillCFDs))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := increpair.NewSession(rel, cfd.NormalizeAll(parsed), &increpair.Options{Ordering: increpair.Linear, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// vmHWMKiB reads the process's peak resident set from /proc (Linux
// only; 0 elsewhere, which the report marks as unavailable).
func vmHWMKiB(t *testing.T) int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				t.Fatalf("VmHWM parse: %v", err)
			}
			return kb
		}
	}
	return 0
}

func dirBytes(t *testing.T, dir string) int64 {
	var n int64
	err := filepath.Walk(dir, func(_ string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			n += fi.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpillBench(t *testing.T) {
	cfg := os.Getenv("CFD_SPILL_BENCH")
	if cfg == "" {
		t.Skip("set CFD_SPILL_BENCH=mem:100000 or disk:100000 (one process per cell: VmHWM cannot reset)")
	}
	kindStr, countStr, ok := strings.Cut(cfg, ":")
	if !ok {
		t.Fatalf("CFD_SPILL_BENCH=%q, want kind:count", cfg)
	}
	total, err := strconv.Atoi(countStr)
	if err != nil || total <= 0 {
		t.Fatalf("CFD_SPILL_BENCH count %q", countStr)
	}
	disk := kindStr == "disk"
	if !disk && kindStr != "mem" {
		t.Fatalf("CFD_SPILL_BENCH kind %q, want mem or disk", kindStr)
	}

	dir := t.TempDir()
	sess := spillSession(t)
	defer sess.Close()
	var st *store.Disk
	if disk {
		st, err = store.Create(filepath.Join(dir, "store"), 3, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.AttachStore(st, true); err != nil {
			t.Fatal(err)
		}
	}

	// rotate performs one durability boundary the way the server's
	// committer does: inline encode + snapshot write for mem, slim
	// header + dirty-page flush for disk.
	gen := uint64(0)
	rotate := func() {
		gen++
		path := filepath.Join(dir, fmt.Sprintf("snap-%010d.snap", gen))
		if disk {
			snap, fl, err := sess.PersistBoundary("bench")
			if err != nil {
				t.Fatal(err)
			}
			if err := fl.Commit(gen); err != nil {
				t.Fatal(err)
			}
			snap.StoreGen = gen
			if err := wal.WriteSnapshotFile(path, snap); err != nil {
				t.Fatal(err)
			}
		} else {
			snap, err := sess.PersistSnapshot("bench")
			if err != nil {
				t.Fatal(err)
			}
			if err := wal.WriteSnapshotFile(path, snap); err != nil {
				t.Fatal(err)
			}
		}
		if gen > 1 {
			os.Remove(filepath.Join(dir, fmt.Sprintf("snap-%010d.snap", gen-1)))
		}
	}

	// Ingest: clean tuples (no repairs — the cell measures storage, not
	// the engine), 10k per batch, ~8 rotations spread over the run so
	// every cell pays the same number of boundaries regardless of size.
	const batchSize = 10_000
	every := max(4, total/batchSize/8)
	var rotations []time.Duration
	start := time.Now()
	for done, batch := 0, 0; done < total; batch++ {
		n := min(batchSize, total-done)
		delta := make([]*relation.Tuple, n)
		for i := range delta {
			delta[i] = relation.NewTuple(0, "212", "NYC", strconv.Itoa(100000+(done+i)%9000))
		}
		if _, err := sess.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		done += n
		if batch%every == every-1 {
			r0 := time.Now()
			rotate()
			rotations = append(rotations, time.Since(r0))
		}
	}
	rotate() // final boundary: the image recovery will open
	ingest := time.Since(start)

	// Recovery of the final generation, through the exact server path.
	path := filepath.Join(dir, fmt.Sprintf("snap-%010d.snap", gen))
	r0 := time.Now()
	snap, err := wal.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec *increpair.Session
	if disk {
		st2, err := store.Open(filepath.Join(dir, "store"), snap.StoreGen, 3, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		src, err := st2.Source()
		if err != nil {
			t.Fatal(err)
		}
		rec, err = increpair.RestoreFromSnapshotSource(snap, src, 0, st2.Strings())
		if err != nil {
			t.Fatal(err)
		}
	} else {
		rec, err = increpair.RestoreFromSnapshot(snap, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	recovery := time.Since(r0)
	if got := rec.Current().Size(); got != total {
		t.Fatalf("recovered %d tuples, want %d", got, total)
	}
	rec.Close()

	var rotMean, rotMax time.Duration
	for _, d := range rotations {
		rotMean += d
		if d > rotMax {
			rotMax = d
		}
	}
	if len(rotations) > 0 {
		rotMean /= time.Duration(len(rotations))
	}
	report := map[string]any{
		"backend":        kindStr,
		"tuples":         total,
		"ingest_s":       ingest.Seconds(),
		"tuples_per_sec": float64(total) / ingest.Seconds(),
		"rotations":      len(rotations) + 1,
		"rotate_mean_ms": float64(rotMean.Microseconds()) / 1e3,
		"rotate_max_ms":  float64(rotMax.Microseconds()) / 1e3,
		"recovery_ms":    float64(recovery.Microseconds()) / 1e3,
		"disk_bytes":     dirBytes(t, dir),
		"peak_rss_kb":    vmHWMKiB(t),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	_ = st
}
