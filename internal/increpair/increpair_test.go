package increpair

import (
	"math/rand"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
)

func orderSchema() *relation.Schema {
	return relation.MustSchema("order",
		"id", "name", "PR", "AC", "PN", "STR", "CT", "ST", "zip")
}

// cleanPaperData is the Fig. 1 database after the Example 1.1 repair:
// t3/t4 carry (NYC, NY). It satisfies all four constraints.
func cleanPaperData(t testing.TB) *relation.Relation {
	t.Helper()
	r := relation.New(orderSchema())
	rows := [][]string{
		{"a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"},
		{"a23", "H. Porter", "17.99", "610", "3456789", "Spruce", "PHI", "PA", "19014"},
		{"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "NYC", "NY", "10012"},
		{"a89", "Snow White", "18.99", "212", "5674322", "Broad", "NYC", "NY", "10012"},
	}
	for _, row := range rows {
		if _, err := r.InsertRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func paperCFDs(s *relation.Schema) []*cfd.CFD {
	phi1 := cfd.MustNew("phi1", s, []string{"AC", "PN"}, []string{"STR", "CT", "ST"},
		[]cfd.Cell{cfd.C("212"), cfd.W, cfd.W, cfd.C("NYC"), cfd.C("NY")},
		[]cfd.Cell{cfd.C("610"), cfd.W, cfd.W, cfd.C("PHI"), cfd.C("PA")},
		[]cfd.Cell{cfd.C("215"), cfd.W, cfd.W, cfd.C("PHI"), cfd.C("PA")},
	)
	phi2 := cfd.MustNew("phi2", s, []string{"zip"}, []string{"CT", "ST"},
		[]cfd.Cell{cfd.C("10012"), cfd.C("NYC"), cfd.C("NY")},
		[]cfd.Cell{cfd.C("19014"), cfd.C("PHI"), cfd.C("PA")},
	)
	phi3, _ := cfd.FD("phi3", s, []string{"id"}, []string{"name", "PR"})
	phi4, _ := cfd.FD("phi4", s, []string{"CT", "STR"}, []string{"zip"})
	return []*cfd.CFD{phi1, phi2, phi3, phi4}
}

// t5 is the insertion of Example 1.1: AC=215 conflicts with CT,ST =
// (NYC, NY) under ϕ1, while zip=10012 pins (NYC, NY) under ϕ2.
func t5() *relation.Tuple {
	return relation.NewTuple(0,
		"a45", "B. Good", "3.99", "215", "8983490", "Walnut", "NYC", "NY", "10012")
}

// TestExample51KTwo reproduces the k = 2 outcome of Example 5.1: with
// only {CT, ST} changeable at once, no constant pair satisfies both ϕ1
// and ϕ2, so the repair is (null, null).
func TestExample51KTwo(t *testing.T) {
	d := cleanPaperData(t)
	s := d.Schema()
	sigma := cfd.NormalizeAll(paperCFDs(s))
	res, err := Incremental(d, []*relation.Tuple{t5()}, sigma, &Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("incremental repair must satisfy sigma")
	}
	rt := res.Inserted[0]
	ct, st := s.MustIndex("CT"), s.MustIndex("ST")
	if !rt.Vals[ct].Null || !rt.Vals[st].Null {
		t.Errorf("k=2 repair of t5: CT=%v ST=%v, want null/null (Example 5.1)", rt.Vals[ct], rt.Vals[st])
	}
	// Clean D must be untouched.
	if d.Size() != 4 {
		t.Error("input database must not change")
	}
}

// TestExample51KThree checks the k = 3 claim of Example 5.1: unlike k=2,
// a repair with certain (non-null) values exists and is found. The paper
// illustrates C = {CT, ST, zip} with v̂ = (PHI, PA, 19014); Example 1.1
// notes the alternative "correct edit could be letting t5[AC] = 212".
// Greedy tie-breaking legitimately reaches either; we accept both but no
// nulls.
func TestExample51KThree(t *testing.T) {
	d := cleanPaperData(t)
	s := d.Schema()
	sigma := cfd.NormalizeAll(paperCFDs(s))
	res, err := Incremental(d, []*relation.Tuple{t5()}, sigma, &Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("incremental repair must satisfy sigma")
	}
	rt := res.Inserted[0]
	for a, v := range rt.Vals {
		if v.Null {
			t.Errorf("k=3 repair of t5 must use certain values; attribute %s is null", s.Attr(a))
		}
	}
	ct, st, zip, ac := s.MustIndex("CT"), s.MustIndex("ST"), s.MustIndex("zip"), s.MustIndex("AC")
	paperFix := rt.Vals[ct].Str == "PHI" && rt.Vals[st].Str == "PA" && rt.Vals[zip].Str == "19014"
	altFix := rt.Vals[ac].Str == "212" && rt.Vals[ct].Str == "NYC" && rt.Vals[st].Str == "NY" && rt.Vals[zip].Str == "10012"
	if !paperFix && !altFix {
		t.Errorf("k=3 repair of t5: AC=%v CT=%v ST=%v zip=%v, want the Example 5.1 fix or the Example 1.1 AC=212 fix",
			rt.Vals[ac], rt.Vals[ct], rt.Vals[st], rt.Vals[zip])
	}
}

// TestCleanInsertPassesThrough: a consistent insertion is untouched.
func TestCleanInsertPassesThrough(t *testing.T) {
	d := cleanPaperData(t)
	s := d.Schema()
	sigma := cfd.NormalizeAll(paperCFDs(s))
	good := relation.NewTuple(0,
		"a77", "K. Reed", "5.00", "610", "9999999", "Pine", "PHI", "PA", "19014")
	res, err := Incremental(d, []*relation.Tuple{good}, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changes != 0 || res.Cost != 0 {
		t.Errorf("clean insert changed: changes=%d cost=%v", res.Changes, res.Cost)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
	if res.Repair.Size() != 5 {
		t.Errorf("repair size = %d, want 5", res.Repair.Size())
	}
}

// TestTypoFixedByConstantCFD: a typo'd city on an otherwise matching
// tuple is corrected to the pattern constant, not nulled: the pattern
// constant is a zero-violation candidate and the cluster index offers the
// original value too.
func TestTypoFixedByConstantCFD(t *testing.T) {
	d := cleanPaperData(t)
	s := d.Schema()
	sigma := cfd.NormalizeAll(paperCFDs(s))
	bad := relation.NewTuple(0,
		"a78", "L. Crane", "6.00", "610", "1111111", "Oak", "PHX", "PA", "19014")
	res, err := Incremental(d, []*relation.Tuple{bad}, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Inserted[0]
	ct := s.MustIndex("CT")
	if rt.Vals[ct].Str != "PHI" {
		t.Errorf("CT repaired to %v, want PHI", rt.Vals[ct])
	}
	if res.Changes != 1 {
		t.Errorf("Changes = %d, want 1", res.Changes)
	}
}

// TestVariableRHSDonor: an insert conflicting with the clean database on
// an FD takes the clean side's value (the LHS-index donor).
func TestVariableRHSDonor(t *testing.T) {
	s := relation.MustSchema("r", "k", "v")
	d := relation.New(s)
	d.InsertRow("key1", "value1")
	d.InsertRow("key2", "value2")
	fd, _ := cfd.FD("fd", s, []string{"k"}, []string{"v"})
	sigma := fd.Normalize()
	bad := relation.NewTuple(0, "key1", "valuX")
	res, err := Incremental(d, []*relation.Tuple{bad}, sigma, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Inserted[0]
	if rt.Vals[1].Str != "value1" {
		t.Errorf("v repaired to %v, want value1 (donor from clean D)", rt.Vals[1])
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("repair must satisfy sigma")
	}
}

// TestDirtyInputRejected: Incremental refuses a dirty base unless asked.
func TestDirtyInputRejected(t *testing.T) {
	s := relation.MustSchema("r", "k", "v")
	d := relation.New(s)
	d.InsertRow("key", "a")
	d.InsertRow("key", "b")
	fd, _ := cfd.FD("fd", s, []string{"k"}, []string{"v"})
	sigma := fd.Normalize()
	if _, err := Incremental(d, nil, sigma, nil); err == nil {
		t.Error("dirty base must be rejected")
	}
}

func TestUnsatisfiableSigma(t *testing.T) {
	s := relation.MustSchema("r", "a", "b")
	d := relation.New(s)
	c1 := cfd.MustNew("c1", s, []string{"a"}, []string{"b"}, []cfd.Cell{cfd.W, cfd.C("1")})
	c2 := cfd.MustNew("c2", s, []string{"a"}, []string{"b"}, []cfd.Cell{cfd.W, cfd.C("2")})
	if _, err := Incremental(d, nil, cfd.NormalizeAll([]*cfd.CFD{c1, c2}), nil); err == nil {
		t.Error("unsatisfiable sigma must be rejected")
	}
}

// TestOrderings: all three variants produce consistent repairs on the
// same batch; V processes low-violation tuples first, W heavy tuples
// first.
func TestOrderings(t *testing.T) {
	d := cleanPaperData(t)
	s := d.Schema()
	sigma := cfd.NormalizeAll(paperCFDs(s))
	mkDelta := func() []*relation.Tuple {
		a := t5() // violating
		b := relation.NewTuple(0,
			"a77", "K. Reed", "5.00", "610", "9999999", "Pine", "PHI", "PA", "19014") // clean
		b.SetWeight(0, 1)
		for i := range b.Vals {
			b.SetWeight(i, 0.9)
		}
		for i := range a.Vals {
			a.SetWeight(i, 0.2)
		}
		return []*relation.Tuple{a, b}
	}
	for _, ord := range []Ordering{Linear, ByViolations, ByWeight} {
		res, err := Incremental(d, mkDelta(), sigma, &Options{Ordering: ord})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if !cfd.Satisfies(res.Repair, sigma) {
			t.Errorf("%v: repair must satisfy sigma", ord)
		}
		if len(res.Inserted) != 2 {
			t.Fatalf("%v: inserted %d", ord, len(res.Inserted))
		}
		switch ord {
		case ByViolations, ByWeight:
			// The clean/heavy tuple (id a77) must be processed first.
			if res.Originals[0].Vals[0].Str != "a77" {
				t.Errorf("%v: processed %v first, want a77", ord, res.Originals[0].Vals[0])
			}
		}
	}
}

// TestBatchModeRepair exercises §5.3: clean a dirty database by
// extracting its violation-free core and reinserting the rest.
func TestBatchModeRepair(t *testing.T) {
	r := relation.New(orderSchema())
	rows := [][]string{
		{"a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"},
		{"a23", "H. Porter", "17.99", "610", "3456789", "Spruce", "PHI", "PA", "19014"},
		{"a12", "J. Denver", "7.94", "212", "3345677", "Canel", "PHI", "PA", "10012"},   // dirty
		{"a89", "Snow White", "18.99", "212", "5674322", "Broad", "PHI", "PA", "10012"}, // dirty
	}
	for _, row := range rows {
		if _, err := r.InsertRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	sigma := cfd.NormalizeAll(paperCFDs(r.Schema()))
	res, err := Repair(r, sigma, &Options{Ordering: ByViolations})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Satisfies(res.Repair, sigma) {
		t.Fatal("batch-mode repair must satisfy sigma")
	}
	if res.Repair.Size() != 4 {
		t.Errorf("repair size = %d, want 4", res.Repair.Size())
	}
	// t3/t4 should have been fixed toward (NYC, NY): their zip 10012 and
	// AC 212 both pin the city.
	s := r.Schema()
	ct := s.MustIndex("CT")
	for _, i := range []int{2, 3} {
		id := r.Tuples()[i].ID
		got := res.Repair.Tuple(id)
		if got == nil {
			t.Fatalf("tuple %d missing from repair", id)
		}
		if got.Vals[ct].Str != "NYC" && !got.Vals[ct].Null {
			t.Errorf("tuple %d CT = %v, want NYC (or null)", id, got.Vals[ct])
		}
	}
}

// TestBatchModeRandom: batch-mode repair always terminates on random
// dirty databases and satisfies sigma.
func TestBatchModeRandom(t *testing.T) {
	s := relation.MustSchema("r", "a", "b", "c")
	fd1, _ := cfd.FD("fd1", s, []string{"a"}, []string{"b"})
	phi := cfd.MustNew("phi", s, []string{"b"}, []string{"c"},
		[]cfd.Cell{cfd.C("b0"), cfd.C("c0")},
		[]cfd.Cell{cfd.C("b1"), cfd.C("c1")})
	sigma := cfd.NormalizeAll([]*cfd.CFD{fd1, phi})
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := relation.New(s)
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			d.InsertRow(
				"a"+string(rune('0'+rng.Intn(4))),
				"b"+string(rune('0'+rng.Intn(3))),
				"c"+string(rune('0'+rng.Intn(3))))
		}
		res, err := Repair(d, sigma, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !cfd.Satisfies(res.Repair, sigma) {
			t.Fatalf("seed %d: repair does not satisfy sigma", seed)
		}
		if res.Repair.Size() != d.Size() {
			t.Fatalf("seed %d: size changed %d -> %d", seed, d.Size(), res.Repair.Size())
		}
	}
}

func TestArityMismatch(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	short := relation.NewTuple(0, "only", "three", "vals")
	if _, err := Incremental(d, []*relation.Tuple{short}, sigma, nil); err == nil {
		t.Error("arity mismatch must be rejected")
	}
}

func TestOrderingString(t *testing.T) {
	if Linear.String() != "L-IncRepair" || ByViolations.String() != "V-IncRepair" || ByWeight.String() != "W-IncRepair" {
		t.Error("Ordering.String wrong")
	}
	if Ordering(9).String() == "" {
		t.Error("unknown ordering must render")
	}
}

func TestOptionDefaults(t *testing.T) {
	var o *Options
	w := o.withDefaults()
	if w.K != 2 || w.NearestK != 4 || w.CostModel == nil {
		t.Errorf("defaults wrong: %+v", w)
	}
}
