package increpair

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

// persistedSession builds a small live session and returns it with its
// serialized snapshot.
func persistedSession(t *testing.T, opts *Options) (*Session, []byte) {
	t.Helper()
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	sess, err := NewSession(d, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta := randomDelta(rand.New(rand.NewSource(5)), 12)
	if _, err := sess.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Persist("unit", &buf); err != nil {
		t.Fatal(err)
	}
	return sess, buf.Bytes()
}

// TestPersistRestoreOptions: the determinism-relevant engine options
// ride the snapshot; the worker count is overridable at restore.
func TestPersistRestoreOptions(t *testing.T) {
	sess, snap := persistedSession(t, &Options{Ordering: ByWeight, K: 1, NearestK: 3, Workers: 2})
	defer sess.Close()

	restored, err := RestoreSession(bytes.NewReader(snap), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	o := restored.e.opts
	if o.Ordering != ByWeight || o.K != 1 || o.NearestK != 3 || o.Workers != 2 {
		t.Fatalf("persisted options lost: %+v", o)
	}

	over, err := RestoreSession(bytes.NewReader(snap), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	if over.e.opts.Workers != 4 || over.e.opts.Ordering != ByWeight {
		t.Fatalf("worker override broke options: %+v", over.e.opts)
	}

	// Initial() is a creation-time artifact and does not survive
	// restoration; everything the stats path reports does.
	if restored.Initial() != nil {
		t.Fatal("restored session claims an initial repair")
	}
	wb, wt, wc, wch := sess.Stats()
	gb, gt, gc, gch := restored.Stats()
	if wb != gb || wt != gt || wc != gc || wch != gch {
		t.Fatalf("stats: want (%d %d %g %d), got (%d %d %g %d)", wb, wt, wc, wch, gb, gt, gc, gch)
	}
}

// TestPersistClosedSession: a closed session refuses to persist (its
// store is detached and would answer stale).
func TestPersistClosedSession(t *testing.T) {
	sess, _ := persistedSession(t, nil)
	sess.Close()
	var buf bytes.Buffer
	if err := sess.Persist("x", &buf); err == nil {
		t.Fatal("closed session persisted")
	}
	if _, err := sess.PersistSnapshot("x"); err == nil {
		t.Fatal("closed session built a snapshot")
	}
}

// TestPersistRequiresSourceCFDs: a sigma assembled by hand from Normal
// values (no Source) cannot round-trip through the text format and must
// be refused, not silently mangled.
func TestPersistRequiresSourceCFDs(t *testing.T) {
	d := cleanPaperData(t)
	sigma := cfd.NormalizeAll(paperCFDs(d.Schema()))
	bare := make([]*cfd.Normal, len(sigma))
	for i, n := range sigma {
		c := *n
		c.Source = nil
		bare[i] = &c
	}
	sess, err := NewSession(d, bare, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var buf bytes.Buffer
	if err := sess.Persist("x", &buf); err == nil || !strings.Contains(err.Error(), "source") {
		t.Fatalf("persist of sourceless sigma: %v", err)
	}

	// A subset of the normalization (rule picked out of its source) is
	// likewise refused: restoring it would resurrect the full source.
	sub, err := NewSession(cleanPaperData(t), sigma[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	buf.Reset()
	if err := sub.Persist("x", &buf); err == nil {
		t.Fatal("persist of a partial normalization succeeded")
	}
}

// TestRestoreRejectsDamage: structurally valid frames with semantically
// broken payload fields fail cleanly.
func TestRestoreRejectsDamage(t *testing.T) {
	_, snapBytes := persistedSession(t, nil)
	snap, err := wal.ReadSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(s *wal.Snapshot)) *wal.Snapshot {
		c := *snap
		c.Tuples = append([]wal.SnapTuple(nil), snap.Tuples...)
		c.Attrs = append([]string(nil), snap.Attrs...)
		f(&c)
		return &c
	}
	for name, broken := range map[string]*wal.Snapshot{
		"bad-ordering":    mutate(func(s *wal.Snapshot) { s.Ordering = 9 }),
		"bad-cfds":        mutate(func(s *wal.Snapshot) { s.CFDs = "not a cfd spec" }),
		"empty-attrs":     mutate(func(s *wal.Snapshot) { s.Attrs = nil }),
		"zero-tuple-id":   mutate(func(s *wal.Snapshot) { s.Tuples[0].ID = 0 }),
		"dup-tuple-id":    mutate(func(s *wal.Snapshot) { s.Tuples[1].ID = s.Tuples[0].ID }),
		"low-watermark":   mutate(func(s *wal.Snapshot) { s.NextID = 1 }),
		"cfd-wrong-attrs": mutate(func(s *wal.Snapshot) { s.CFDs = "cfd x: [nope] -> [CT]\n(_ || _)\n" }),
	} {
		if _, err := RestoreFromSnapshot(broken, 0); err == nil {
			t.Errorf("%s: restore succeeded", name)
		}
	}

	// Truncated snapshot stream.
	if _, err := RestoreSession(bytes.NewReader(snapBytes[:len(snapBytes)/2]), 0); err == nil {
		t.Fatal("restore of a torn snapshot succeeded")
	}
}

// TestDeltasToOpsRejectsGarbage guards the decode half of the op codec.
func TestDeltasToOpsRejectsGarbage(t *testing.T) {
	if _, _, _, err := DeltasToOps([]relation.Delta{{Kind: 7, T: &relation.Tuple{}}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, _, err := DeltasToOps([]relation.Delta{{Kind: relation.DeltaInsert}}); err == nil {
		t.Fatal("nil tuple accepted")
	}
	// Round trip keeps kinds sorted into ApplyOps argument positions.
	deletes := []relation.TupleID{4, 9}
	sets := []SetOp{{ID: 2, Attr: 1, Value: relation.S("x")}}
	inserts := []*relation.Tuple{relation.NewTuple(0, "a", "b")}
	d2, s2, i2, err := DeltasToOps(OpsToDeltas(deletes, sets, inserts))
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 2 || d2[0] != 4 || d2[1] != 9 || len(s2) != 1 || s2[0] != sets[0] || len(i2) != 1 {
		t.Fatalf("ops round trip: %v %v %v", d2, s2, i2)
	}
}

// TestReplayBatchDivergence: a record whose recorded post-version does
// not match what the pass produced must be reported — the state can no
// longer be trusted to mirror the pre-crash session.
func TestReplayBatchDivergence(t *testing.T) {
	sess, snapBytes := persistedSession(t, nil)
	defer sess.Close()
	restored, err := RestoreSession(bytes.NewReader(snapBytes), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	cur := restored.Snapshot().Version
	b := &wal.Batch{
		PrevVersion: cur,
		Version:     cur + 1000, // a single insert cannot move the counter this far
		Ops: OpsToDeltas(nil, nil, []*relation.Tuple{
			relation.NewTuple(0, "a23", "H. Porter", "17.99", "215", "8983490", "Walnut", "PHI", "PA", "19014"),
		}),
	}
	if _, err := restored.ReplayBatch(b); err == nil {
		t.Fatal("diverging replay went unreported")
	}
}
