// Package cluster provides similarity indices over attribute domains: the
// "cost-based indices" of §5.2, which let TUPLERESOLVE range over the
// active domain of an attribute in decreasing similarity to a given value
// and stop at the first suitable candidate.
//
// The paper arranges adom(Repr, A) in a tree built by hierarchical
// agglomerative clustering (HAC) under the DL metric and descends toward
// the child cluster closest to the probe. HAC is O(n²) in the domain
// size, which is fine for the categorical attributes CFDs constrain but
// prohibitive for key-like attributes with tens of thousands of distinct
// values. This package therefore offers two implementations of one
// Index contract:
//
//   - HAC — the paper's structure, for small domains;
//   - BKTree — a Burkhard–Keller tree, the standard metric index for edit
//     distances, with the same "values in increasing distance" contract
//     and O(n log n) construction.
//
// New picks HAC below a size threshold and BKTree above it.
package cluster

import (
	"sort"

	"cfdclean/internal/strdist"
)

// Index finds active-domain values similar to a probe string.
type Index interface {
	// Nearest returns up to k domain values ordered by increasing
	// distance to v (ties broken lexicographically). v itself may be
	// among the results if indexed.
	Nearest(v string, k int) []string
	// Add inserts a new value into the index (repairs grow the active
	// domain as tuples are inserted, §5.1).
	Add(v string)
	// Len returns the number of indexed values.
	Len() int
}

// HACSizeLimit is the domain size up to which New builds the paper's HAC
// tree; larger domains get a BK-tree. HAC construction is quadratic in
// the domain size (it materializes the pairwise distance matrix), which
// dominates whole-run profiles once domains reach the hundreds, while
// BK-tree construction is near-linearithmic with equivalent Nearest
// results for the discrete DL metric.
const HACSizeLimit = 64

// New builds an index over vals with the given metric (nil = DL).
func New(vals []string, m strdist.Metric) Index {
	if m == nil {
		m = strdist.DL
	}
	if len(vals) <= HACSizeLimit {
		return NewHAC(vals, m)
	}
	return NewBKTree(vals, m)
}

// --- BK-tree ---

type bkNode struct {
	val      string
	children map[int]*bkNode
	// maxe is the largest edge label below this node; it bounds how far
	// any descendant can be from this node's value and lets Nearest call
	// the bounded metric with a sound cutoff.
	maxe int
}

// BKTree is a Burkhard–Keller metric tree over strings.
type BKTree struct {
	metric strdist.Metric
	root   *bkNode
	size   int
	seen   map[string]bool
}

// NewBKTree indexes vals under metric m (nil = DL).
func NewBKTree(vals []string, m strdist.Metric) *BKTree {
	if m == nil {
		m = strdist.DL
	}
	t := &BKTree{metric: m, seen: make(map[string]bool, len(vals))}
	for _, v := range vals {
		t.Add(v)
	}
	return t
}

// Len returns the number of distinct indexed values.
func (t *BKTree) Len() int { return t.size }

// Add inserts v (duplicates are ignored).
func (t *BKTree) Add(v string) {
	if t.seen[v] {
		return
	}
	t.seen[v] = true
	t.size++
	if t.root == nil {
		t.root = &bkNode{val: v}
		return
	}
	cur := t.root
	for {
		d := t.metric.Distance(v, cur.val)
		if d > cur.maxe {
			cur.maxe = d
		}
		if cur.children == nil {
			cur.children = make(map[int]*bkNode)
		}
		next, ok := cur.children[d]
		if !ok {
			cur.children[d] = &bkNode{val: v}
			return
		}
		cur = next
	}
}

// MaxRadius caps the BK-tree search: repair candidates farther than this
// from the query are not meaningfully "similar" (the paper's noise is at
// DL distance 1–6, and the normalized cost of such distant values
// approaches 1 anyway), and the cap turns most distance computations into
// cheap early exits of the bounded metric.
const MaxRadius = 8

// Nearest returns up to k values within MaxRadius of v by increasing
// distance, using the triangle-inequality pruning of the BK-tree: a
// subtree at edge distance e from a node at distance d can only contain
// values within |d-e| of v.
func (t *BKTree) Nearest(v string, k int) []string {
	if t.root == nil || k <= 0 {
		return nil
	}
	bounded, hasBound := t.metric.(strdist.BoundedMetric)
	type hit struct {
		val string
		d   int
	}
	// hits holds the best ≤ k values found so far, sorted by (d, val);
	// worst is the current search radius.
	hits := make([]hit, 0, k+1)
	worst := MaxRadius
	insert := func(val string, d int) {
		i := len(hits)
		for i > 0 && (hits[i-1].d > d || (hits[i-1].d == d && hits[i-1].val > val)) {
			i--
		}
		hits = append(hits, hit{})
		copy(hits[i+1:], hits[i:])
		hits[i] = hit{val, d}
		if len(hits) > k {
			hits = hits[:k]
		}
		if len(hits) == k && hits[k-1].d < worst {
			worst = hits[k-1].d
		}
	}
	var walk func(n *bkNode)
	walk = func(n *bkNode) {
		// The distance computation may give up at worst+maxe: beyond
		// that neither the value itself (> worst away) nor any child
		// subtree (|e−D| ≥ D−maxe > worst) can contribute, so the
		// truncated result still prunes soundly.
		bound := worst + n.maxe
		var d int
		if hasBound {
			d = bounded.DistanceBounded(v, n.val, bound)
		} else {
			d = t.metric.Distance(v, n.val)
		}
		if d <= worst {
			insert(n.val, d)
		}
		if d > bound {
			return
		}
		for e, child := range n.children {
			diff := e - d
			if diff < 0 {
				diff = -diff
			}
			if diff <= worst {
				walk(child)
			}
		}
	}
	walk(t.root)
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.val
	}
	return out
}

// --- Hierarchical agglomerative clustering ---

type hacNode struct {
	medoid string
	leaves []string // only at leaf clusters
	left   *hacNode
	right  *hacNode
}

// HAC is the paper's clustering tree: values grouped by similarity under
// the DL metric, queried by descending toward the closest child medoid.
type HAC struct {
	metric strdist.Metric
	root   *hacNode
	size   int
	seen   map[string]bool
}

// NewHAC builds the tree by average-linkage agglomerative clustering.
// O(n²) in len(vals); intended for small domains (see HACSizeLimit).
func NewHAC(vals []string, m strdist.Metric) *HAC {
	if m == nil {
		m = strdist.DL
	}
	h := &HAC{metric: m, seen: make(map[string]bool, len(vals))}
	var distinct []string
	for _, v := range vals {
		if !h.seen[v] {
			h.seen[v] = true
			distinct = append(distinct, v)
		}
	}
	sort.Strings(distinct)
	h.size = len(distinct)
	if len(distinct) == 0 {
		return h
	}
	// Active clusters, merged pairwise by smallest medoid distance.
	clusters := make([]*hacNode, len(distinct))
	for i, v := range distinct {
		clusters[i] = &hacNode{medoid: v, leaves: []string{v}}
	}
	for len(clusters) > 1 {
		bi, bj, bd := 0, 1, 1<<30
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				d := m.Distance(clusters[i].medoid, clusters[j].medoid)
				if d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := &hacNode{
			left:  clusters[bi],
			right: clusters[bj],
			// Medoid of the merged cluster: keep the left medoid; exact
			// medoid recomputation is O(n²) and changes little here.
			medoid: clusters[bi].medoid,
		}
		clusters[bi] = merged
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	h.root = clusters[0]
	return h
}

// Len returns the number of distinct indexed values.
func (h *HAC) Len() int { return h.size }

// Add inserts v into the leaf cluster with the closest medoid.
func (h *HAC) Add(v string) {
	if h.seen[v] {
		return
	}
	h.seen[v] = true
	h.size++
	if h.root == nil {
		h.root = &hacNode{medoid: v, leaves: []string{v}}
		return
	}
	cur := h.root
	for cur.left != nil {
		dl := h.metric.Distance(v, cur.left.medoid)
		dr := h.metric.Distance(v, cur.right.medoid)
		if dl <= dr {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	cur.leaves = append(cur.leaves, v)
}

// Nearest descends the dendrogram toward the closest medoid, collecting
// leaves in visit order, then orders the collected pool by true distance.
func (h *HAC) Nearest(v string, k int) []string {
	if h.root == nil || k <= 0 {
		return nil
	}
	// Collect at least k candidate leaves by walking closest-first.
	var pool []string
	var walk func(n *hacNode)
	walk = func(n *hacNode) {
		if len(pool) >= 4*k {
			return
		}
		if n.left == nil {
			pool = append(pool, n.leaves...)
			return
		}
		dl := h.metric.Distance(v, n.left.medoid)
		dr := h.metric.Distance(v, n.right.medoid)
		first, second := n.left, n.right
		if dr < dl {
			first, second = n.right, n.left
		}
		walk(first)
		if len(pool) < k {
			walk(second)
		}
	}
	walk(h.root)
	type hit struct {
		val string
		d   int
	}
	hits := make([]hit, len(pool))
	for i, s := range pool {
		hits[i] = hit{s, h.metric.Distance(v, s)}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].d != hits[j].d {
			return hits[i].d < hits[j].d
		}
		return hits[i].val < hits[j].val
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]string, len(hits))
	for i, ht := range hits {
		out[i] = ht.val
	}
	return out
}
