package ship

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cfdclean/internal/wal"
)

// shipQueueDepth bounds the async shipping backlog per session. A full
// queue drops the batch — deliberately: the follower will refuse the
// next batch it does see with a gap, and the shipper heals that with a
// snapshot resync, so dropping never diverges state, it only costs one
// snapshot send. Blocking the committer on a slow follower would.
const shipQueueDepth = 128

// Shipper is the primary side of one session's replication stream. The
// committer hands it every committed batch (after the local fsync, so a
// follower can never be ahead of the primary's own durability); the
// shipper forwards frames to the follower and heals every refusal —
// gap, missing replica, lost frames — by reshipping a fresh snapshot
// captured from the live session.
//
// Two delivery modes share one serialized send path: EnqueueBatch is
// fire-and-forget for ack=leader (a background goroutine drains the
// queue), ShipSync blocks for ack=quorum (the committer waits for the
// follower's acknowledgement before answering the client). Failures in
// either mode degrade replication — counted, never fatal to the write
// path: a primary with a dead follower keeps serving, which is the
// availability half of the bargain, and the Stats surface is how the
// operator sees the lag.
type Shipper struct {
	name   string
	tr     Transport
	snapFn func() (*wal.Snapshot, error)

	// sendMu serializes all transport sends (bootstrap, queue drain and
	// sync ships), so frames leave in commit order.
	sendMu     sync.Mutex
	needSnap   bool
	failStreak int

	queue     chan shipItem
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	batches     atomic.Uint64
	snapshots   atomic.Uint64
	degraded    atomic.Uint64
	dropped     atomic.Uint64
	lastShipped atomic.Uint64
	// lastErr holds the most recent delivery failure as a string (""
	// when the last delivery succeeded): the loud, human-readable signal
	// for a stream that is persistently failing — e.g. a snapshot the
	// receiver keeps refusing — which a bare Degraded counter buries.
	lastErr atomic.Value
}

func (s *Shipper) noteErr(err error) {
	s.lastErr.Store(err.Error())
}

func (s *Shipper) noteOK() {
	s.lastErr.Store("")
}

type shipItem struct {
	batch *wal.Batch
	snap  *wal.Snapshot
}

// ShipStats is a point-in-time view of one shipping stream.
type ShipStats struct {
	Batches     uint64 // batches acknowledged by the follower
	Snapshots   uint64 // snapshot installs (bootstrap + resyncs)
	Degraded    uint64 // delivery failures absorbed
	Dropped     uint64 // frames dropped on a full backlog or backoff
	LastShipped uint64 // journal version the follower has acknowledged
	LastError   string // most recent delivery failure; "" when healthy
}

// NewShipper starts a shipping stream for the named session. snapFn
// captures a fresh quiescent snapshot from the live session — it is
// the bootstrap image and the healing move for every gap. The follower
// is bootstrapped immediately in the background.
func NewShipper(name string, tr Transport, snapFn func() (*wal.Snapshot, error)) *Shipper {
	s := &Shipper{
		name:     name,
		tr:       tr,
		snapFn:   snapFn,
		needSnap: true,
		queue:    make(chan shipItem, shipQueueDepth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Shipper) loop() {
	defer close(s.done)
	// Bootstrap the follower right away instead of waiting for the
	// first write; an empty item just triggers the pending-snapshot
	// path.
	s.send(shipItem{})
	for {
		select {
		case <-s.quit:
			return
		case it := <-s.queue:
			s.send(it)
		}
	}
}

// EnqueueBatch ships a committed batch asynchronously (ack=leader). A
// full backlog drops the frame; the follower's gap detection turns the
// loss into a snapshot resync.
func (s *Shipper) EnqueueBatch(b *wal.Batch) {
	select {
	case s.queue <- shipItem{batch: b}:
	default:
		s.dropped.Add(1)
	}
}

// EnqueueSnapshot ships a full snapshot asynchronously — the committer
// uses it when a failed pass already forced a boundary image (the
// resync path), so the follower jumps with the primary.
func (s *Shipper) EnqueueSnapshot(snap *wal.Snapshot) {
	select {
	case s.queue <- shipItem{snap: snap}:
	default:
		s.dropped.Add(1)
	}
}

// ShipSync ships a committed batch and waits for the follower's
// acknowledgement (ack=quorum). The returned error means the follower
// did not acknowledge — the caller decides whether that degrades or
// fails the write; replication state heals either way.
func (s *Shipper) ShipSync(b *wal.Batch) error {
	return s.send(shipItem{batch: b})
}

// send is the single serialized delivery path. It resolves any pending
// snapshot need first (bootstrap or healing), then the item itself;
// a batch refused for a gap is converted into a fresh snapshot ship,
// which by construction contains the batch.
func (s *Shipper) send(it shipItem) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if it.snap != nil {
		return s.shipSnapLocked(it.snap)
	}
	if s.needSnap {
		if !retryAt(s.failStreak) {
			// The follower has been refusing deliveries; back off
			// instead of eating a transport timeout (or capturing a
			// full image) per committed batch.
			s.failStreak++
			s.dropped.Add(1)
			return errors.New("ship: follower unavailable, frame dropped")
		}
		if err := s.resyncLocked(); err != nil {
			return err
		}
		// The fresh snapshot contains every committed batch, this one
		// included.
		return nil
	}
	if it.batch == nil {
		return nil
	}
	err := s.tr.ShipBatch(s.name, it.batch)
	switch {
	case err == nil:
		s.failStreak = 0
		s.batches.Add(1)
		s.lastShipped.Store(it.batch.Version)
		s.noteOK()
		return nil
	case errors.Is(err, ErrGap), errors.Is(err, ErrUnknownReplica):
		// The follower can't chain this batch (lost frames, or it's
		// joining fresh): heal with a full image.
		return s.resyncLocked()
	case errors.Is(err, ErrRoleConflict):
		// The target believes it is the primary. Resyncing would split
		// the brain; stop and surface through Stats.
		s.degraded.Add(1)
		s.noteErr(err)
		return err
	default:
		// A failed batch leaves a hole the follower will refuse anyway:
		// mark the stream for snapshot healing, which also routes every
		// subsequent send through the failStreak backoff above. A
		// black-holed follower then costs one transport timeout per
		// power-of-two streak, not one per committed write — without
		// this, every ack=quorum write blocks for the full transport
		// timeout until the follower returns.
		s.needSnap = true
		s.failStreak++
		s.degraded.Add(1)
		s.noteErr(err)
		return err
	}
}

func (s *Shipper) resyncLocked() error {
	snap, err := s.snapFn()
	if err != nil {
		s.failStreak++
		s.degraded.Add(1)
		s.noteErr(err)
		return err
	}
	return s.shipSnapLocked(snap)
}

func (s *Shipper) shipSnapLocked(snap *wal.Snapshot) error {
	// A snapshot whose frame cannot fit under MaxFrameLen will fail on
	// every attempt until the session shrinks — encoding and sending it
	// anyway would burn a relation-sized allocation per retry and bury
	// the cause in generic delivery errors. Detect it from the exact
	// pre-computed size, fail loudly through LastError, and let the
	// failure streak's exponential backoff bound the recheck cadence.
	if size := snap.EncodedSize(); size+frameHeaderLen > MaxFrameLen {
		s.needSnap = true
		s.failStreak++
		s.degraded.Add(1)
		err := fmt.Errorf("ship: session %s snapshot (%d bytes) exceeds the %d-byte frame cap; the follower cannot be bootstrapped or resynced until the session shrinks", s.name, size, MaxFrameLen)
		s.noteErr(err)
		return err
	}
	if err := s.tr.ShipSnapshot(s.name, snap); err != nil {
		s.needSnap = true
		s.failStreak++
		s.degraded.Add(1)
		s.noteErr(err)
		return err
	}
	s.needSnap = false
	s.failStreak = 0
	s.snapshots.Add(1)
	if v := snap.Version; v > s.lastShipped.Load() {
		s.lastShipped.Store(v)
	}
	s.noteOK()
	return nil
}

// retryAt spaces snapshot attempts out exponentially over a failure
// streak (attempt on streaks 0, 1, 2, 4, 8, ...), so a dead follower
// does not cost a full state capture per committed batch.
func retryAt(streak int) bool {
	return streak&(streak-1) == 0
}

// Stats reports the stream's delivery counters.
func (s *Shipper) Stats() ShipStats {
	le, _ := s.lastErr.Load().(string)
	return ShipStats{
		Batches:     s.batches.Load(),
		Snapshots:   s.snapshots.Load(),
		Degraded:    s.degraded.Load(),
		Dropped:     s.dropped.Load(),
		LastShipped: s.lastShipped.Load(),
		LastError:   le,
	}
}

// Close stops the background drain. Frames still queued are discarded;
// a promoted or removed session has no follower to feed.
func (s *Shipper) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	<-s.done
}
