package ship

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"cfdclean/internal/increpair"
	"cfdclean/internal/wal"
)

// Replica is the follower side of one session's shipping stream: a live
// increpair.Session kept in lockstep with the primary by replaying
// shipped batches under the WAL's journal-version discipline. It is the
// reference applier — the server wraps the same rules around its hosted
// sessions — and what the failover and fault-injection batteries drive
// directly.
//
// The invariant a Replica maintains is simple and absolute: its session
// only ever holds states the primary's session held, in order. A batch
// that would skip ahead is refused with ErrGap; a duplicate is skipped;
// only a snapshot install may move the session non-incrementally, and a
// snapshot is by construction a quiescent primary state.
type Replica struct {
	mu      sync.Mutex
	name    string
	workers int
	sess    *increpair.Session

	applied  uint64
	skipped  uint64
	installs uint64
}

// NewReplica creates an empty replica for the named session. workers
// bounds the replay engine's intra-batch parallelism (output is
// byte-identical at any setting; 0 keeps each snapshot's recorded
// value).
func NewReplica(name string, workers int) *Replica {
	return &Replica{name: name, workers: workers}
}

// InstallSnapshot replaces the replica's state with a full primary
// image — the bootstrap for a follower joining mid-stream and the
// healing move after any gap.
func (r *Replica) InstallSnapshot(snap *wal.Snapshot) error {
	sess, err := increpair.RestoreFromSnapshot(snap, r.workers)
	if err != nil {
		return fmt.Errorf("ship: replica %s: install: %w", r.name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess != nil {
		r.sess.Close()
	}
	r.sess = sess
	r.installs++
	return nil
}

// ApplyBatch applies one shipped batch under the replay discipline:
// duplicates are skipped (applied=false, nil error), a gap is refused
// with an ErrGap-wrapped error and the replica state is untouched — a
// batch is never applied out of order.
func (r *Replica) ApplyBatch(b *wal.Batch) (applied bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess == nil {
		return false, fmt.Errorf("%w: replica %s not bootstrapped", ErrGap, r.name)
	}
	applied, err = r.sess.ReplayBatch(b)
	if err != nil {
		if isGap(err) {
			return false, fmt.Errorf("%w: %v", ErrGap, err)
		}
		return applied, err
	}
	if applied {
		r.applied++
	} else {
		r.skipped++
	}
	return applied, nil
}

// Feed decodes and dispatches one received frame.
func (r *Replica) Feed(kind byte, payload []byte) error {
	switch kind {
	case KindSnapshot:
		snap, err := wal.DecodeSnapshot(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFrame, err)
		}
		return r.InstallSnapshot(snap)
	case KindBatch:
		b, err := wal.DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFrame, err)
		}
		_, err = r.ApplyBatch(b)
		return err
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrFrame, kind)
	}
}

// ReplayStream feeds frames from rd until the stream ends. A clean EOF
// returns (frames, nil); a torn or corrupt frame — how a primary crash
// mid-send appears to the follower — returns the count of fully applied
// frames alongside the error, with the replica left at the last good
// frame, exactly like WAL tail truncation.
func (r *Replica) ReplayStream(rd io.Reader) (frames int, err error) {
	for {
		kind, payload, err := ReadFrame(rd)
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		if err := r.Feed(kind, payload); err != nil {
			return frames, err
		}
		frames++
	}
}

// Session exposes the replica's live session for reads and for
// promotion; nil before the first snapshot install.
func (r *Replica) Session() *increpair.Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sess
}

// Version is the replica's journal version cursor (0 before bootstrap).
func (r *Replica) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess == nil {
		return 0
	}
	return r.sess.Snapshot().Version
}

// Stats reports how the replica got to its current state.
func (r *Replica) Stats() (applied, skipped, installs uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.skipped, r.installs
}

// Close releases the replica's session.
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess != nil {
		r.sess.Close()
		r.sess = nil
	}
}

func isGap(err error) bool {
	return errors.Is(err, increpair.ErrReplayGap) || errors.Is(err, ErrGap)
}
