package ship_test

// Unit tests for the two deterministic substrates of the replication
// layer: the CRC-framed wire codec (a torn or corrupted frame must
// never decode) and the consistent-hash ring (placement must be a pure
// function of the peer set, independent of listing order, with the
// follower always distinct from the primary).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"cfdclean/internal/cluster/ship"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

func sampleBatch(v uint64) *wal.Batch {
	return &wal.Batch{
		PrevVersion: v - 1,
		Version:     v,
		Ops: []relation.Delta{
			{Kind: relation.DeltaInsert, T: relation.NewTuple(7, "212", "1000001", "NYC", "NY", "10012")},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	snap, err := sampleSnapshot(t, "frames")
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	stream.Write(ship.EncodeSnapshotFrame(snap))
	stream.Write(ship.EncodeBatchFrame(sampleBatch(1)))
	stream.Write(ship.EncodeBatchFrame(sampleBatch(2)))

	rd := bytes.NewReader(stream.Bytes())
	kind, payload, err := ship.ReadFrame(rd)
	if err != nil || kind != ship.KindSnapshot {
		t.Fatalf("snapshot frame: kind=%d err=%v", kind, err)
	}
	got, err := wal.DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != snap.Name || got.Version != snap.Version {
		t.Fatalf("snapshot round-trip: got %s@%d want %s@%d", got.Name, got.Version, snap.Name, snap.Version)
	}
	for want := uint64(1); want <= 2; want++ {
		kind, payload, err = ship.ReadFrame(rd)
		if err != nil || kind != ship.KindBatch {
			t.Fatalf("batch frame: kind=%d err=%v", kind, err)
		}
		b, err := wal.DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		if b.Version != want || b.PrevVersion != want-1 || len(b.Ops) != 1 {
			t.Fatalf("batch round-trip: %+v", b)
		}
	}
	if _, _, err := ship.ReadFrame(rd); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end of stream: %v", err)
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	frame := ship.EncodeBatchFrame(sampleBatch(3))
	cases := map[string][]byte{
		"unknown kind":  append([]byte{0xEE}, frame[1:]...),
		"flipped byte":  flip(frame, len(frame)-1),
		"flipped crc":   flip(frame, 6),
		"torn payload":  frame[:len(frame)-2],
		"torn header":   frame[:4],
		"absurd length": absurdLength(frame),
	}
	for name, dam := range cases {
		if _, _, err := ship.ReadFrame(bytes.NewReader(dam)); !errors.Is(err, ship.ErrFrame) {
			t.Errorf("%s: want ErrFrame, got %v", name, err)
		}
	}
}

func flip(frame []byte, i int) []byte {
	d := append([]byte(nil), frame...)
	d[i] ^= 0xFF
	return d
}

func absurdLength(frame []byte) []byte {
	d := append([]byte(nil), frame...)
	d[1], d[2], d[3], d[4] = 0xFF, 0xFF, 0xFF, 0x7F
	return d
}

func TestRingPlacement(t *testing.T) {
	peers := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	shuffled := []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.2:8080"}
	a, b := ship.NewRing(peers), ship.NewRing(shuffled)

	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("session-%d", i)
		p, f := a.Primary(name), a.Follower(name)
		if p2, f2 := b.Primary(name), b.Follower(name); p != p2 || f != f2 {
			t.Fatalf("%s: placement depends on peer listing order (%s/%s vs %s/%s)", name, p, f, p2, f2)
		}
		if p == f {
			t.Fatalf("%s: follower equals primary (%s)", name, p)
		}
		if p == "" || f == "" {
			t.Fatalf("%s: unplaced (%q/%q)", name, p, f)
		}
		counts[p]++
	}
	// Distribution sanity: no peer owns everything or nothing.
	for _, peer := range peers {
		if counts[peer] == 0 || counts[peer] == 200 {
			t.Fatalf("degenerate distribution: %v", counts)
		}
	}
}

func TestRingStabilityUnderMembershipChange(t *testing.T) {
	peers := []string{"n1:8080", "n2:8080", "n3:8080", "n4:8080"}
	full := ship.NewRing(peers)
	reduced := ship.NewRing(peers[:3])

	moved := 0
	const sessions = 400
	for i := 0; i < sessions; i++ {
		name := fmt.Sprintf("s-%d", i)
		was, now := full.Primary(name), reduced.Primary(name)
		if was != "n4:8080" && was != now {
			moved++
		}
	}
	// Consistent hashing: removing one of four peers should strand only
	// a small fraction of the sessions that were NOT on the removed
	// peer. A modulo scheme would move ~2/3 of them.
	if moved > sessions/5 {
		t.Fatalf("membership change moved %d/%d sessions not on the removed peer", moved, sessions)
	}
}

func TestRingSingleAndEmpty(t *testing.T) {
	if r := ship.NewRing(nil); r.Primary("x") != "" || r.Follower("x") != "" {
		t.Fatal("empty ring should place nothing")
	}
	one := ship.NewRing([]string{"solo:1"})
	if one.Primary("x") != "solo:1" {
		t.Fatal("single-peer ring must own everything")
	}
	if one.Follower("x") != "" {
		t.Fatal("single-peer ring has no distinct follower")
	}
}

func TestReplicaRejectsStaleAndGappedBatches(t *testing.T) {
	snap, err := sampleSnapshot(t, "cursor")
	if err != nil {
		t.Fatal(err)
	}
	r := ship.NewReplica("cursor", 1)
	defer r.Close()
	if err := r.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	base := r.Version()

	// Versions are journal versions, which advance per-op: a twin
	// session (the stand-in for the primary) produces the real bracket.
	twin, err := increpair.RestoreFromSnapshot(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	rng := rand.New(rand.NewSource(71))
	deletes, sets, inserts := randomOps(rng, twin.Current())
	if _, _, err := twin.ApplyOps(deletes, sets, inserts); err != nil {
		t.Fatal(err)
	}
	good := &wal.Batch{PrevVersion: base, Version: twin.Snapshot().Version,
		Ops: increpair.OpsToDeltas(deletes, sets, inserts)}
	if applied, err := r.ApplyBatch(good); err != nil || !applied {
		t.Fatalf("chained batch: applied=%v err=%v", applied, err)
	}
	cur := r.Version()
	if cur != good.Version {
		t.Fatalf("cursor at %d after applying batch ending at %d", cur, good.Version)
	}
	// Duplicate: idempotent skip, no error, version unchanged.
	if applied, err := r.ApplyBatch(good); err != nil || applied {
		t.Fatalf("duplicate: applied=%v err=%v", applied, err)
	}
	if r.Version() != cur {
		t.Fatalf("duplicate moved the cursor to %d", r.Version())
	}
	// Gap: refused with ErrGap, version unchanged.
	gap := &wal.Batch{PrevVersion: cur + 5, Version: cur + 6}
	if _, err := r.ApplyBatch(gap); !errors.Is(err, ship.ErrGap) {
		t.Fatalf("gap: want ErrGap, got %v", err)
	}
	if r.Version() != cur {
		t.Fatalf("gap moved the cursor to %d", r.Version())
	}
}
