package ship_test

// Fault-injection battery: a faultConn sits between the primary's
// Shipper and an in-process follower and misbehaves like a real
// network — dropping frames, duplicating them, reordering them, and
// tearing them mid-byte. The properties under test are the tentpole's
// safety invariants: the follower detects every gap through the
// version cursor, NEVER applies a batch out of order (its version is
// monotone non-decreasing no matter what the wire does), skips
// duplicates idempotently, and converges to the primary's exact state
// because the shipper heals every refusal with a snapshot resync.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cfdclean/internal/cluster/ship"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

// faultConn wraps a LocalTransport and injures batch frames according
// to mode. Snapshot installs always pass — the healing channel has to
// work for the battery to prove convergence, and in production a
// snapshot that fails to install just repeats the resync.
type faultConn struct {
	inner *ship.LocalTransport
	mode  string
	arm   bool // faults fire only while armed
	n     int  // batch send counter

	held *wal.Batch // reorder: the delayed frame

	// versions is the follower's version after every delivery attempt —
	// the monotonicity trace that proves no out-of-order apply.
	versions []uint64
}

func (f *faultConn) ShipSnapshot(name string, snap *wal.Snapshot) error {
	err := f.inner.ShipSnapshot(name, snap)
	f.observe(name)
	return err
}

func (f *faultConn) observe(name string) {
	if r := f.inner.Replica(name); r != nil {
		f.versions = append(f.versions, r.Version())
	}
}

func (f *faultConn) deliver(name string, b *wal.Batch) error {
	err := f.inner.ShipBatch(name, b)
	f.observe(name)
	return err
}

// deliverTorn ships a frame whose tail was cut off in flight. The
// follower's frame codec must reject it before any state changes.
func (f *faultConn) deliverTorn(name string, b *wal.Batch) error {
	frame := ship.EncodeBatchFrame(b)
	_, _, err := ship.ReadFrame(bytes.NewReader(frame[:len(frame)-3]))
	f.observe(name)
	if err == nil {
		return fmt.Errorf("torn frame decoded cleanly")
	}
	return err // the sender sees the broken connection
}

func (f *faultConn) ShipBatch(name string, b *wal.Batch) error {
	f.n++
	if !f.arm {
		return f.deliver(name, b)
	}
	switch f.mode {
	case "drop":
		if f.n%3 == 0 {
			// Lost in flight; the sender believes it was delivered.
			return nil
		}
	case "dup":
		if f.n%3 == 0 {
			if err := f.deliver(name, b); err != nil {
				return err
			}
			return f.deliver(name, b)
		}
	case "reorder":
		if f.held == nil && f.n%4 == 0 {
			f.held = b // delay this frame...
			return nil
		}
		if f.held != nil {
			held := f.held
			f.held = nil
			err := f.deliver(name, b) // ...the newer frame overtakes it,
			_ = f.deliver(name, held) // then the stale one finally lands.
			return err
		}
	case "truncate":
		if f.n%3 == 0 {
			return f.deliverTorn(name, b)
		}
	}
	return f.deliver(name, b)
}

// TestFaultInjection drives a primary through random batches with each
// fault mode armed for the middle of the run, then requires exact
// convergence, a monotone follower version trace, and the healing
// evidence each mode predicts.
func TestFaultInjection(t *testing.T) {
	for _, mode := range []string{"drop", "dup", "reorder", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			const name = "faulty"
			live, err := increpair.NewSession(batteryBase(t, true), batteryCFDs(t, batterySchema()),
				&increpair.Options{Ordering: increpair.Linear, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer live.Close()

			lt := ship.NewLocalTransport(2)
			defer lt.Close()
			fc := &faultConn{inner: lt, mode: mode}
			sp := ship.NewShipper(name, fc, func() (*wal.Snapshot, error) {
				return live.PersistSnapshot(name)
			})
			defer sp.Close()

			rng := rand.New(rand.NewSource(61))
			const nBatches = 12
			var shipErrs int
			for b := 0; b < nBatches; b++ {
				// Arm faults for the middle of the run; the last batches
				// ship cleanly so the synchronous heal settles the state.
				fc.arm = b >= 2 && b < nBatches-2
				deletes, sets, inserts := randomOps(rng, live.Current())
				prev := live.Snapshot().Version
				if _, _, err := live.ApplyOps(deletes, sets, inserts); err != nil {
					t.Fatal(err)
				}
				batch := &wal.Batch{
					PrevVersion: prev,
					Version:     live.Snapshot().Version,
					Ops:         increpair.OpsToDeltas(deletes, sets, inserts),
				}
				// ack=quorum path: delivery failures surface here, heal
				// inside the same call or on the next one — never fatal.
				if err := sp.ShipSync(batch); err != nil {
					shipErrs++
				}
			}

			rep := lt.Replica(name)
			if rep == nil {
				t.Fatal("follower never bootstrapped")
			}
			requireEqual(t, "converged state", capture(t, live), capture(t, rep.Session()))

			// Monotone version trace: whatever the wire did, the replica
			// never stepped backwards and never skipped ahead of the
			// primary.
			for i := 1; i < len(fc.versions); i++ {
				if fc.versions[i] < fc.versions[i-1] {
					t.Fatalf("replica version went backwards: %d -> %d (trace %v)",
						fc.versions[i-1], fc.versions[i], fc.versions)
				}
			}
			if last := fc.versions[len(fc.versions)-1]; last != live.Snapshot().Version {
				t.Fatalf("replica at version %d, primary at %d", last, live.Snapshot().Version)
			}

			applied, skipped, installs := rep.Stats()
			st := sp.Stats()
			t.Logf("mode=%s applied=%d skipped=%d installs=%d shipper=%+v shipErrs=%d",
				mode, applied, skipped, installs, st, shipErrs)
			switch mode {
			case "drop", "reorder":
				// A lost or overtaken frame must have forced at least one
				// healing resync beyond the bootstrap install.
				if installs < 2 {
					t.Fatalf("expected a healing snapshot resync, installs=%d", installs)
				}
			case "dup":
				if skipped == 0 {
					t.Fatal("duplicate frames were not idempotently skipped")
				}
				if installs != 1 {
					t.Fatalf("duplicates should heal without resync, installs=%d", installs)
				}
			case "truncate":
				if st.Degraded == 0 {
					t.Fatal("torn frames did not degrade the stream")
				}
				if installs < 2 {
					t.Fatalf("expected a healing resync after the tear, installs=%d", installs)
				}
			}
		})
	}
}

// TestShipperDeadFollowerBackoff: when the follower refuses everything,
// the shipper must not capture a full snapshot per committed batch —
// the retry schedule is exponential over the failure streak — and the
// write path must keep going (errors absorbed as degraded).
func TestShipperDeadFollowerBackoff(t *testing.T) {
	var snaps atomic.Int64
	dead := deadTransport{}
	sp := ship.NewShipper("gone", dead, func() (*wal.Snapshot, error) {
		snaps.Add(1)
		return sampleSnapshot(t, "gone")
	})
	defer sp.Close()

	const sends = 64
	for i := 0; i < sends; i++ {
		_ = sp.ShipSync(&wal.Batch{PrevVersion: uint64(i), Version: uint64(i + 1)})
	}
	if n := snaps.Load(); n >= sends/2 {
		t.Fatalf("dead follower cost %d snapshot captures over %d sends — no backoff", n, sends)
	}
	if st := sp.Stats(); st.Degraded == 0 && st.Dropped == 0 {
		t.Fatalf("dead follower left no degradation trace: %+v", st)
	}
}

type deadTransport struct{}

func (deadTransport) ShipSnapshot(string, *wal.Snapshot) error { return fmt.Errorf("conn refused") }
func (deadTransport) ShipBatch(string, *wal.Batch) error       { return fmt.Errorf("conn refused") }

// blackholeTransport delivers normally until failing is set, then
// errors every send — the follower that was healthy and went dark.
// attempts counts transport calls made while failing: the cost a
// black-holed follower imposes on the primary's write path.
type blackholeTransport struct {
	inner    *ship.LocalTransport
	failing  atomic.Bool
	attempts atomic.Int64
}

func (b *blackholeTransport) ShipSnapshot(name string, snap *wal.Snapshot) error {
	if b.failing.Load() {
		b.attempts.Add(1)
		return fmt.Errorf("no route to host")
	}
	return b.inner.ShipSnapshot(name, snap)
}

func (b *blackholeTransport) ShipBatch(name string, batch *wal.Batch) error {
	if b.failing.Load() {
		b.attempts.Add(1)
		return fmt.Errorf("no route to host")
	}
	return b.inner.ShipBatch(name, batch)
}

// TestShipperBlackholedFollowerBatchBackoff: a follower that was healthy
// (bootstrap installed, batches flowing) and then goes dark must not
// cost the primary one transport attempt — under ack=quorum, one full
// transport timeout — per committed write. The first batch failure
// flags the stream for snapshot healing, which puts every subsequent
// send behind the exponential failStreak backoff: transport attempts
// grow ~log2 in the number of writes, the rest are fast local drops.
// When the follower returns, the stream heals with a snapshot resync
// and converges, and the LastError surface clears.
func TestShipperBlackholedFollowerBatchBackoff(t *testing.T) {
	const name = "darkened"
	live, err := increpair.NewSession(batteryBase(t, true), batteryCFDs(t, batterySchema()),
		&increpair.Options{Ordering: increpair.Linear, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	lt := ship.NewLocalTransport(2)
	defer lt.Close()
	bt := &blackholeTransport{inner: lt}
	sp := ship.NewShipper(name, bt, func() (*wal.Snapshot, error) {
		return live.PersistSnapshot(name)
	})
	defer sp.Close()

	rng := rand.New(rand.NewSource(83))
	shipOne := func() error {
		deletes, sets, inserts := randomOps(rng, live.Current())
		prev := live.Snapshot().Version
		if _, _, err := live.ApplyOps(deletes, sets, inserts); err != nil {
			t.Fatal(err)
		}
		return sp.ShipSync(&wal.Batch{
			PrevVersion: prev,
			Version:     live.Snapshot().Version,
			Ops:         increpair.OpsToDeltas(deletes, sets, inserts),
		})
	}

	// Healthy phase: bootstrap plus acknowledged batches.
	for i := 0; i < 2; i++ {
		if err := shipOne(); err != nil {
			t.Fatalf("healthy ship failed: %v", err)
		}
	}
	if st := sp.Stats(); st.LastError != "" {
		t.Fatalf("healthy stream reports an error: %q", st.LastError)
	}

	// Follower goes dark: every write degrades, few reach the wire.
	bt.failing.Store(true)
	const sends = 64
	var errs int
	for i := 0; i < sends; i++ {
		if shipOne() != nil {
			errs++
		}
	}
	if errs != sends {
		t.Fatalf("black-holed follower absorbed %d/%d sends silently", sends-errs, sends)
	}
	if n := bt.attempts.Load(); n >= sends/4 {
		t.Fatalf("black-holed follower cost %d transport attempts over %d sends — batch path has no backoff", n, sends)
	}
	st := sp.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no frames reported dropped under backoff: %+v", st)
	}
	if st.LastError == "" {
		t.Fatalf("failing stream reports no LastError: %+v", st)
	}

	// Follower returns: the stream heals (a snapshot resync at the next
	// retry point), the error surface clears, and the replica converges.
	bt.failing.Store(false)
	healed := false
	for i := 0; i < 2*sends && !healed; i++ {
		healed = shipOne() == nil
	}
	if !healed {
		t.Fatal("stream never healed after the follower returned")
	}
	if st := sp.Stats(); st.LastError != "" {
		t.Fatalf("healed stream still reports an error: %q", st.LastError)
	}
	rep := lt.Replica(name)
	if rep == nil {
		t.Fatal("follower never bootstrapped")
	}
	requireEqual(t, "healed state", capture(t, live), capture(t, rep.Session()))
}

func sampleSnapshot(t testing.TB, name string) (*wal.Snapshot, error) {
	t.Helper()
	sess, err := increpair.NewSession(batteryBase(t, false), batteryCFDs(t, batterySchema()),
		&increpair.Options{Ordering: increpair.Linear, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	return sess.PersistSnapshot(name)
}

// countingTransport records deliveries; every send succeeds. It stands
// in for a healthy follower in tests that assert a frame is refused
// BEFORE it reaches the wire.
type countingTransport struct {
	snaps   atomic.Int64
	batches atomic.Int64
}

func (c *countingTransport) ShipSnapshot(string, *wal.Snapshot) error {
	c.snaps.Add(1)
	return nil
}

func (c *countingTransport) ShipBatch(string, *wal.Batch) error {
	c.batches.Add(1)
	return nil
}

// oversizedSnapshot builds a snapshot whose encoded frame exceeds
// MaxFrameLen without allocating anywhere near that much: the tuples
// share one 16 MiB string, so EncodedSize counts it once per value
// while memory holds it once.
func oversizedSnapshot() *wal.Snapshot {
	big := relation.Value{Str: strings.Repeat("x", 16<<20)}
	snap := &wal.Snapshot{
		Name:    "huge",
		Relname: "r",
		Attrs:   []string{"A"},
		CFDs:    "cfd phi1: [A] -> [A]\n(_ || _)\n",
		NextID:  32,
		Version: 1,
	}
	for id := 1; snap.EncodedSize() <= ship.MaxFrameLen; id++ {
		snap.Tuples = append(snap.Tuples, wal.SnapTuple{
			ID:   relation.TupleID(id),
			Vals: []relation.Value{big},
		})
	}
	return snap
}

// TestShipperRefusesOversizedSnapshot: a session grown past the frame
// cap can never bootstrap or resync a follower — encoding and sending
// the image would fail on every attempt while burning a relation-sized
// allocation each time. The shipper must detect the condition from the
// pre-computed size, keep the frame off the wire entirely, and report
// it loudly and persistently through ShipStats.LastError instead of
// retrying forever in silence.
func TestShipperRefusesOversizedSnapshot(t *testing.T) {
	tr := &countingTransport{}
	snap := oversizedSnapshot()
	var captures atomic.Int64
	sp := ship.NewShipper("huge", tr, func() (*wal.Snapshot, error) {
		captures.Add(1)
		return snap, nil
	})
	defer sp.Close()

	// The background bootstrap is the first attempt; wait for its
	// verdict to land in the stats surface.
	deadline := time.Now().Add(5 * time.Second)
	for sp.Stats().LastError == "" {
		if time.Now().After(deadline) {
			t.Fatal("oversized snapshot produced no LastError — the failure is silent")
		}
		time.Sleep(time.Millisecond)
	}
	st := sp.Stats()
	if !strings.Contains(st.LastError, "frame cap") {
		t.Fatalf("LastError = %q, want the frame-cap diagnosis", st.LastError)
	}
	if st.Snapshots != 0 || tr.snaps.Load() != 0 {
		t.Fatalf("oversized snapshot reached the transport (%d shipped, %d delivered)", st.Snapshots, tr.snaps.Load())
	}

	// Committed batches keep flowing on the primary; none may reach the
	// follower (it has no base image), none may clear the error, and the
	// backoff must bound how many full captures the condition costs.
	const sends = 64
	for i := 0; i < sends; i++ {
		_ = sp.ShipSync(&wal.Batch{PrevVersion: uint64(i), Version: uint64(i + 1)})
	}
	st = sp.Stats()
	if !strings.Contains(st.LastError, "frame cap") {
		t.Fatalf("LastError = %q after %d sends, want the sticky frame-cap diagnosis", st.LastError, sends)
	}
	if tr.batches.Load() != 0 || tr.snaps.Load() != 0 {
		t.Fatalf("frames reached the un-bootstrapped follower: %d batches, %d snapshots", tr.batches.Load(), tr.snaps.Load())
	}
	if n := captures.Load(); n >= sends/2 {
		t.Fatalf("oversized session cost %d snapshot captures over %d sends — no backoff", n, sends)
	}
}
