package ship

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"cfdclean/internal/wal"
)

// HTTPTransport delivers frames to a peer cfdserved node over its
// replication endpoints:
//
//	PUT  /v1/replica/{name}        one snapshot frame (install/replace)
//	POST /v1/replica/{name}/batch  one batch frame
//
// The peer answers 404 when it hosts no replica for the session
// (bootstrap needed), 409 when the batch cannot chain (resync needed)
// and 421 when it hosts the session as a primary (stop); those map to
// the package's sentinel errors so the Shipper's healing logic is
// transport-independent.
type HTTPTransport struct {
	// Base is the peer's base URL, e.g. "http://10.0.0.2:8344".
	Base string
	// Client is the HTTP client to use; nil gets a dedicated client
	// with a conservative timeout.
	Client *http.Client
}

var defaultShipClient = &http.Client{Timeout: 2 * time.Minute}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultShipClient
}

func (t *HTTPTransport) replicaURL(name, suffix string) string {
	return t.Base + "/v1/replica/" + url.PathEscape(name) + suffix
}

// ShipSnapshot implements Transport.
func (t *HTTPTransport) ShipSnapshot(name string, snap *wal.Snapshot) error {
	req, err := http.NewRequest(http.MethodPut, t.replicaURL(name, ""), bytes.NewReader(EncodeSnapshotFrame(snap)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return t.do(req)
}

// ShipBatch implements Transport.
func (t *HTTPTransport) ShipBatch(name string, b *wal.Batch) error {
	req, err := http.NewRequest(http.MethodPost, t.replicaURL(name, "/batch"), bytes.NewReader(EncodeBatchFrame(b)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return t.do(req)
}

// Promote asks the peer to promote its replica of name to primary —
// the receiving half of a session transfer during rebalance.
func (t *HTTPTransport) Promote(name string) error {
	req, err := http.NewRequest(http.MethodPost, t.Base+"/v1/sessions/"+url.PathEscape(name)+"/promote", nil)
	if err != nil {
		return err
	}
	// Mark the request as intra-cluster so the peer's router serves it
	// locally instead of forwarding it back along the ring.
	req.Header.Set(ForwardedHeader, "1")
	return t.do(req)
}

func (t *HTTPTransport) do(req *http.Request) error {
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated, http.StatusNoContent:
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknownReplica, t.Base)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrGap, t.Base)
	case http.StatusMisdirectedRequest:
		return fmt.Errorf("%w: %s", ErrRoleConflict, t.Base)
	default:
		return fmt.Errorf("ship: %s %s: status %d: %s", req.Method, req.URL, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// ForwardedHeader marks a request that already crossed the cluster
// once — either forwarded by a peer's router or issued node-to-node —
// so the receiving router serves it locally instead of forwarding
// again (the loop guard of the thin-proxy scheme).
const ForwardedHeader = "X-CFD-Forwarded"

// LocalTransport delivers frames to in-process Replicas — the test
// harness's wire, and the reference for what a Transport must do. It
// round-trips every message through the frame codec so the bytes on
// this "wire" are exactly the bytes HTTP ships.
type LocalTransport struct {
	mu       sync.Mutex
	workers  int
	replicas map[string]*Replica
}

// NewLocalTransport creates an empty in-process follower node whose
// replicas replay at the given worker count.
func NewLocalTransport(workers int) *LocalTransport {
	return &LocalTransport{workers: workers, replicas: make(map[string]*Replica)}
}

// Replica returns the follower's replica for name, if any.
func (t *LocalTransport) Replica(name string) *Replica {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.replicas[name]
}

// ShipSnapshot implements Transport: decode through the frame codec and
// install, creating the replica on first contact.
func (t *LocalTransport) ShipSnapshot(name string, snap *wal.Snapshot) error {
	kind, payload, err := ReadFrame(bytes.NewReader(EncodeSnapshotFrame(snap)))
	if err != nil {
		return err
	}
	t.mu.Lock()
	r := t.replicas[name]
	if r == nil {
		r = NewReplica(name, t.workers)
		t.replicas[name] = r
	}
	t.mu.Unlock()
	return r.Feed(kind, payload)
}

// ShipBatch implements Transport.
func (t *LocalTransport) ShipBatch(name string, b *wal.Batch) error {
	t.mu.Lock()
	r := t.replicas[name]
	t.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, name)
	}
	kind, payload, err := ReadFrame(bytes.NewReader(EncodeBatchFrame(b)))
	if err != nil {
		return err
	}
	return r.Feed(kind, payload)
}

// Close releases every replica.
func (t *LocalTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.replicas {
		r.Close()
	}
	t.replicas = map[string]*Replica{}
}
