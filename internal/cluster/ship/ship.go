// Package ship is the replication layer of the streaming-session stack:
// a per-session WAL shipping stream from a primary to a follower. The
// primary's committer stage (internal/server) already serializes every
// accepted batch as a wal.Batch with a journal-version bracket; this
// package frames those batches (CRC-checked, version-cursored), sends
// them to the follower, and applies them there through the same
// ReplayBatch path crash recovery uses — so a follower is byte-identical
// to its primary by construction (the PR 3/5 determinism property), and
// promoting it after a primary crash is exactly as safe as restarting
// the primary itself.
//
// # Wire format
//
// Every shipped message is one frame:
//
//	frame   = kind(u8) length(u32 LE) crc(u32 LE) payload
//	kind    = 1 (snapshot, wal.Snapshot payload)
//	        | 2 (batch,    wal.Batch payload)
//
// crc is the CRC-32C (Castagnoli) checksum of the payload alone — the
// same framing discipline as the on-disk WAL, so a truncated or
// corrupted frame is detected before it can reach the replica's engine.
//
// # Healing model
//
// The stream is *not* assumed reliable. Batches carry the journal
// version bracket (PrevVersion, Version) the WAL already uses, and the
// replica applies them with the same rules as crash replay: duplicates
// (Version at or below the replica's counter) are skipped, and a batch
// whose PrevVersion is ahead of the counter is a gap — refused with
// ErrGap, never applied out of order. The shipper heals every refusal
// the same way a follower joins mid-stream in the first place: capture a
// fresh full snapshot from the live session (a quiescent image, exactly
// the recovery path) and reship it, after which the follower's counter
// has absorbed everything the lost frames carried. Dropped, duplicated,
// reordered and truncated frames therefore all converge back to the
// primary's state; see fault_test.go.
package ship

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"cfdclean/internal/wal"
)

// Frame kinds.
const (
	KindSnapshot byte = 1
	KindBatch    byte = 2
)

const (
	frameHeaderLen = 9 // kind(u8) + length(u32) + crc(u32)
	// MaxFrameLen rejects absurd lengths decoded from a corrupted
	// header before they drive a huge allocation. It is exported so the
	// HTTP endpoints that receive frames can bound request bodies to
	// exactly what the codec accepts — capping them lower (e.g. at a
	// generic API body limit) would strand sessions whose snapshot
	// outgrew the cap with no way to ever bootstrap a follower.
	MaxFrameLen = 1 << 28 // 256 MiB
)

var (
	// ErrFrame reports a structurally damaged frame: unknown kind,
	// implausible length, short read, or checksum mismatch.
	ErrFrame = errors.New("ship: bad frame")
	// ErrGap reports that the follower cannot chain a batch onto its
	// current journal version — frames are missing. The shipper heals
	// it by resyncing with a fresh snapshot; the follower never applies
	// out of order.
	ErrGap = errors.New("ship: follower cannot chain batch (gap)")
	// ErrUnknownReplica reports that the target node hosts no replica
	// for the session (a follower joining, or a node that lost its
	// state); healed by snapshot bootstrap.
	ErrUnknownReplica = errors.New("ship: no replica for session")
	// ErrRoleConflict reports that the target hosts the session as a
	// primary — shipping into it would split the brain, so the sender
	// must stop, not resync.
	ErrRoleConflict = errors.New("ship: target hosts the session as primary")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Transport delivers frames for one session to its follower. ShipBatch
// returns ErrGap (resync needed), ErrUnknownReplica (bootstrap needed)
// or ErrRoleConflict (stop) as sentinel-wrapped errors; any other error
// is a delivery failure the shipper absorbs and heals later.
type Transport interface {
	// ShipSnapshot installs a full session image on the follower,
	// replacing whatever replica state it held.
	ShipSnapshot(name string, snap *wal.Snapshot) error
	// ShipBatch forwards one committed batch.
	ShipBatch(name string, b *wal.Batch) error
}

// AppendFrame appends one framed message to dst.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// EncodeSnapshotFrame frames a full snapshot.
func EncodeSnapshotFrame(snap *wal.Snapshot) []byte {
	return AppendFrame(nil, KindSnapshot, snap.Encode())
}

// EncodeBatchFrame frames one committed batch.
func EncodeBatchFrame(b *wal.Batch) []byte {
	return AppendFrame(nil, KindBatch, b.Encode())
}

// ReadFrame reads and verifies one frame from r. A clean end of stream
// before any header byte returns io.EOF; a stream that ends inside a
// frame (the shipped analogue of a torn WAL tail) or fails its checksum
// returns an ErrFrame-wrapped error.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrFrame, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrFrame, err)
	}
	kind = hdr[0]
	if kind != KindSnapshot && kind != KindBatch {
		return 0, nil, fmt.Errorf("%w: unknown kind %d", ErrFrame, kind)
	}
	ln := binary.LittleEndian.Uint32(hdr[1:5])
	if ln > MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: implausible length %d", ErrFrame, ln)
	}
	payload = make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[5:9]); got != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	return kind, payload, nil
}
