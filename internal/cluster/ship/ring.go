package ship

import (
	"hash/fnv"
	"sort"
)

// ringVnodes is how many points each peer owns on the hash circle.
// Virtual nodes smooth the key distribution: with a handful of physical
// peers a single point each would routinely give one node most of the
// keyspace.
const ringVnodes = 64

// Ring is a consistent-hash ring over a static peer list. Session names
// hash onto a circle of peer points; the primary for a name is the peer
// owning the first point at or after the name's hash, and the follower
// is the next *distinct* peer clockwise — so adding or removing one
// peer moves only the sessions adjacent to its points, which is what
// makes node join/leave a bounded rebalance instead of a full reshuffle.
type Ring struct {
	peers  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring over peers (deduplicated; order-insensitive —
// placement depends only on the peer addresses themselves, so every
// node given the same -peers list computes the same ownership).
func NewRing(peers []string) *Ring {
	seen := make(map[string]bool, len(peers))
	r := &Ring{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
	}
	sort.Strings(r.peers)
	for _, p := range r.peers {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(p, i), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.peer < b.peer
	})
	return r
}

// Peers returns the ring's member list (sorted, deduplicated).
func (r *Ring) Peers() []string { return r.peers }

// Size is the number of distinct peers.
func (r *Ring) Size() int { return len(r.peers) }

// Primary returns the peer owning name, or "" on an empty ring.
func (r *Ring) Primary(name string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.owner(name)].peer
}

// Follower returns the peer that replicates name — the first distinct
// peer clockwise from the primary's point — or "" when the ring has
// fewer than two peers.
func (r *Ring) Follower(name string) string {
	if len(r.peers) < 2 {
		return ""
	}
	i := r.owner(name)
	primary := r.points[i].peer
	for k := 1; k < len(r.points); k++ {
		if p := r.points[(i+k)%len(r.points)].peer; p != primary {
			return p
		}
	}
	return ""
}

// owner returns the index of the first point at or after name's hash,
// wrapping around the circle.
func (r *Ring) owner(name string) int {
	h := ringHash(name, -1)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

func ringHash(s string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	if vnode >= 0 {
		h.Write([]byte{'#', byte(vnode), byte(vnode >> 8)})
	}
	return fmix64(h.Sum64())
}

// fmix64 is the 64-bit avalanche finalizer from MurmurHash3. Raw
// FNV-64a leaves similar keys ("session-1", "session-2", ...)
// clustered in a narrow band of the circle, which hands one peer
// nearly the whole keyspace; the finalizer spreads them uniformly.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
