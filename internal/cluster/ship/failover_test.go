package ship_test

// The failover equivalence battery: a live "primary" session is driven
// with random mutation batches while every batch is shipped as a framed
// replication stream; the battery then kills the stream at every batch
// boundary and at sampled mid-frame byte offsets — exactly how a
// primary crash appears to its follower — and requires the promoted
// replica to be *byte-identical* to the never-crashed oracle at the
// same watermark: equal CSV dumps (bytes.Equal), equal violation
// listings and totals, equal published snapshots, across replay worker
// counts 0/1/2/4. Runs under -race in CI.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cfdclean/internal/cfd"
	"cfdclean/internal/cluster/ship"
	"cfdclean/internal/increpair"
	"cfdclean/internal/relation"
	"cfdclean/internal/wal"
)

func batterySchema() *relation.Schema {
	return relation.MustSchema("order", "AC", "PN", "CT", "ST", "zip")
}

func batteryCFDs(t testing.TB, s *relation.Schema) []*cfd.Normal {
	t.Helper()
	spec := `
cfd phi1: [AC] -> [CT, ST]
(212 || NYC, NY)
(610 || PHI, PA)
(215 || PHI, PA)
cfd fd1: [zip] -> [CT]
(_ || _)
`
	parsed, err := cfd.Parse(s, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return cfd.NormalizeAll(parsed)
}

func batteryBase(t testing.TB, dirty bool) *relation.Relation {
	t.Helper()
	r := relation.New(batterySchema())
	rows := [][]string{
		{"212", "8983490", "NYC", "NY", "10012"},
		{"212", "3456789", "NYC", "NY", "10012"},
		{"610", "3345677", "PHI", "PA", "19014"},
		{"215", "5674322", "PHI", "PA", "19014"},
		{"215", "5674000", "PHI", "PA", "19014"},
		{"312", "7654321", "CHI", "IL", "60614"},
	}
	for _, row := range rows {
		r.MustInsert(relation.NewTuple(0, row...))
	}
	if dirty {
		r.MustInsert(relation.NewTuple(0, "212", "9999999", "PHI", "PA", "19014"))
		r.MustInsert(relation.NewTuple(0, "610", "8888888", "NYC", "NY", "10012"))
	}
	return r
}

// randomOps builds one valid ApplyOps batch against the session's
// current relation, drawn from value pools that collide with the
// constraint patterns.
func randomOps(rng *rand.Rand, cur *relation.Relation) (deletes []relation.TupleID, sets []increpair.SetOp, inserts []*relation.Tuple) {
	acs := []string{"212", "610", "215", "312"}
	pns := []string{"1000001", "1000002", "1000003", "1000004", "1000005"}
	cts := []string{"NYC", "PHI", "CHI"}
	sts := []string{"NY", "PA", "IL"}
	zips := []string{"10012", "19014", "60614"}
	pools := [][]string{acs, pns, cts, sts, zips}

	live := cur.Tuples()
	var ids []relation.TupleID
	for _, t := range live {
		ids = append(ids, t.ID)
	}
	taken := make(map[relation.TupleID]bool)

	if len(ids) > 4 && rng.Intn(2) == 0 {
		for i, n := 0, rng.Intn(2)+1; i < n; i++ {
			id := ids[rng.Intn(len(ids))]
			if !taken[id] {
				taken[id] = true
				deletes = append(deletes, id)
			}
		}
	}
	if len(ids) > 0 && rng.Intn(2) == 0 {
		for i, n := 0, rng.Intn(2)+1; i < n; i++ {
			id := ids[rng.Intn(len(ids))]
			if taken[id] {
				continue
			}
			a := rng.Intn(len(pools))
			v := relation.S(pools[a][rng.Intn(len(pools[a]))])
			if rng.Intn(8) == 0 {
				v = relation.NullValue
			}
			sets = append(sets, increpair.SetOp{ID: id, Attr: a, Value: v})
		}
	}
	for i, n := 0, rng.Intn(3)+1; i < n; i++ {
		vals := make([]relation.Value, len(pools))
		for a, p := range pools {
			vals[a] = relation.S(p[rng.Intn(len(p))])
		}
		tp := &relation.Tuple{Vals: vals}
		if rng.Intn(3) == 0 {
			tp.W = make([]float64, len(vals))
			for j := range tp.W {
				tp.W[j] = 0.25 + 0.75*rng.Float64()
			}
		}
		inserts = append(inserts, tp)
	}
	return deletes, sets, inserts
}

// fingerprint is everything the acceptance criterion compares: the CSV
// dump bytes, the full published snapshot, and the violation listing.
type fingerprint struct {
	dump  []byte
	snap  increpair.Snapshot
	vios  string
	total int
}

func capture(t testing.TB, sess *increpair.Session) fingerprint {
	t.Helper()
	var buf bytes.Buffer
	if err := sess.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	vs, total := sess.Violations(0)
	var vb strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&vb, "%d/%s/%d;", v.T, v.N.Name, v.With)
	}
	return fingerprint{dump: buf.Bytes(), snap: sess.Snapshot(), vios: vb.String(), total: total}
}

func requireEqual(t testing.TB, ctx string, want, got fingerprint) {
	t.Helper()
	if !bytes.Equal(want.dump, got.dump) {
		t.Fatalf("%s: dumps differ\nwant:\n%s\ngot:\n%s", ctx, want.dump, got.dump)
	}
	if want.snap != got.snap {
		t.Fatalf("%s: snapshots differ\nwant %+v\ngot  %+v", ctx, want.snap, got.snap)
	}
	if want.vios != got.vios || want.total != got.total {
		t.Fatalf("%s: violations differ: want %q (%d), got %q (%d)", ctx, want.vios, want.total, got.vios, got.total)
	}
}

// shipRecording is one primary run rendered as its replication stream:
// the bootstrap snapshot frame, one batch frame per accepted batch, the
// decoded batches, and the oracle fingerprint after every batch (fps[0]
// is the bootstrap state).
type shipRecording struct {
	name    string
	frames  [][]byte // frames[0] is the snapshot frame
	batches []*wal.Batch
	fps     []fingerprint
}

// recordStream drives a live session through nBatches random batches
// exactly like a primary's worker+committer would, rendering the
// shipping stream alongside.
func recordStream(t testing.TB, name string, seed int64, nBatches int, dirty bool) *shipRecording {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sess, err := increpair.NewSession(batteryBase(t, dirty), batteryCFDs(t, batterySchema()),
		&increpair.Options{Ordering: increpair.Linear, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	rec := &shipRecording{name: name}
	snap, err := sess.PersistSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	rec.frames = append(rec.frames, ship.EncodeSnapshotFrame(snap))
	rec.fps = append(rec.fps, capture(t, sess))

	for b := 0; b < nBatches; b++ {
		deletes, sets, inserts := randomOps(rng, sess.Current())
		prev := sess.Snapshot().Version
		if _, _, err := sess.ApplyOps(deletes, sets, inserts); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		batch := &wal.Batch{
			PrevVersion: prev,
			Version:     sess.Snapshot().Version,
			Ops:         increpair.OpsToDeltas(deletes, sets, inserts),
		}
		rec.batches = append(rec.batches, batch)
		rec.frames = append(rec.frames, ship.EncodeBatchFrame(batch))
		rec.fps = append(rec.fps, capture(t, sess))
	}
	return rec
}

// replayPrefix bootstraps a fresh replica and feeds the first k+1 frames
// (snapshot + k batches), returning its fingerprint.
func replayPrefix(t testing.TB, rec *shipRecording, k, workers int) fingerprint {
	t.Helper()
	r := ship.NewReplica(rec.name, workers)
	defer r.Close()
	var stream bytes.Buffer
	for _, f := range rec.frames[:k+1] {
		stream.Write(f)
	}
	frames, err := r.ReplayStream(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatalf("prefix %d: %v", k, err)
	}
	if frames != k+1 {
		t.Fatalf("prefix %d: applied %d frames, want %d", k, frames, k+1)
	}
	return capture(t, r.Session())
}

// TestFailoverEquivalenceAtEveryBoundary is the core tentpole property:
// kill the primary after ANY batch boundary, promote the follower, and
// the promoted state is bit-for-bit the oracle's state at that boundary
// — for every replay worker count and across independent tenants.
func TestFailoverEquivalenceAtEveryBoundary(t *testing.T) {
	for _, tenant := range []struct {
		name  string
		seed  int64
		dirty bool
	}{
		{"tenant-a", 41, false},
		{"tenant-b", 43, true},
	} {
		t.Run(tenant.name, func(t *testing.T) {
			rec := recordStream(t, tenant.name, tenant.seed, 8, tenant.dirty)
			for _, workers := range []int{0, 1, 2, 4} {
				for k := 0; k <= len(rec.batches); k++ {
					got := replayPrefix(t, rec, k, workers)
					requireEqual(t, fmt.Sprintf("workers=%d boundary=%d", workers, k), rec.fps[k], got)
				}
			}
		})
	}
}

// TestFailoverKillMidFrame cuts the concatenated stream at every frame
// boundary and a deterministic sample of mid-frame offsets — a primary
// dying mid-send. The replica must land exactly on the last intact
// frame, torn bytes never half-applied, and report the tear.
func TestFailoverKillMidFrame(t *testing.T) {
	rec := recordStream(t, "tenant-cut", 47, 6, false)
	var whole []byte
	boundaries := []int{0}
	for _, f := range rec.frames {
		whole = append(whole, f...)
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+len(f))
	}
	intactAt := func(cut int) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}
	cuts := map[int]bool{}
	for _, b := range boundaries {
		cuts[b] = true
	}
	for c := 7; c <= len(whole); c += 7 {
		cuts[c] = true
	}
	for cut := range cuts {
		r := ship.NewReplica("tenant-cut", 2)
		frames, err := r.ReplayStream(bytes.NewReader(whole[:cut]))
		intact := intactAt(cut)
		atBoundary := boundaries[intact] == cut
		if atBoundary && err != nil {
			t.Fatalf("cut %d (boundary): %v", cut, err)
		}
		if !atBoundary && err == nil {
			t.Fatalf("cut %d: torn frame not reported", cut)
		}
		if frames != intact {
			t.Fatalf("cut %d: %d frames applied, want %d", cut, frames, intact)
		}
		if intact == 0 {
			if r.Session() != nil {
				t.Fatalf("cut %d: replica bootstrapped from a torn snapshot frame", cut)
			}
		} else {
			got := capture(t, r.Session())
			requireEqual(t, fmt.Sprintf("cut %d (frame %d)", cut, intact), rec.fps[intact-1], got)
		}
		r.Close()
	}
}

// TestPromotedReplicaKeepsWorking: promotion is not a postmortem — the
// replica's session accepts further batches after the primary is gone,
// and produces exactly what the oracle produces for the same traffic.
func TestPromotedReplicaKeepsWorking(t *testing.T) {
	rec := recordStream(t, "tenant-promote", 53, 5, false)

	// Oracle: a never-crashed session at the final boundary.
	oracle, err := increpair.RestoreFromSnapshot(mustDecodeSnapshot(t, rec.frames[0]), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for _, b := range rec.batches {
		if _, err := oracle.ReplayBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	// Follower: the full stream, then "promote" — its session is simply
	// used as a primary from here on.
	r := ship.NewReplica("tenant-promote", 4)
	defer r.Close()
	var stream bytes.Buffer
	for _, f := range rec.frames {
		stream.Write(f)
	}
	if _, err := r.ReplayStream(bytes.NewReader(stream.Bytes())); err != nil {
		t.Fatal(err)
	}
	promoted := r.Session()

	rng := rand.New(rand.NewSource(99))
	for b := 0; b < 3; b++ {
		deletes, sets, inserts := randomOps(rng, promoted.Current())
		cloned := make([]*relation.Tuple, len(inserts))
		for i, tp := range inserts {
			cloned[i] = tp.Clone()
		}
		if _, _, err := promoted.ApplyOps(deletes, sets, inserts); err != nil {
			t.Fatal(err)
		}
		if _, _, err := oracle.ApplyOps(append([]relation.TupleID(nil), deletes...), append([]increpair.SetOp(nil), sets...), cloned); err != nil {
			t.Fatal(err)
		}
		requireEqual(t, fmt.Sprintf("post-promotion batch %d", b), capture(t, oracle), capture(t, promoted))
	}
}

func mustDecodeSnapshot(t testing.TB, frame []byte) *wal.Snapshot {
	t.Helper()
	kind, payload, err := ship.ReadFrame(bytes.NewReader(frame))
	if err != nil || kind != ship.KindSnapshot {
		t.Fatalf("snapshot frame: kind=%d err=%v", kind, err)
	}
	snap, err := wal.DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}
