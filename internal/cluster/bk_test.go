package cluster

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cfdclean/internal/strdist"
)

// bruteNearest is the reference implementation: full scan, sort by
// (distance, value), keep those within MaxRadius, cut at k.
func bruteNearest(vals []string, q string, k int) []string {
	type hit struct {
		v string
		d int
	}
	var hits []hit
	seen := map[string]bool{}
	for _, v := range vals {
		if seen[v] {
			continue
		}
		seen[v] = true
		d := strdist.DamerauLevenshtein(q, v)
		if d <= MaxRadius {
			hits = append(hits, hit{v, d})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].d != hits[j].d {
			return hits[i].d < hits[j].d
		}
		return hits[i].v < hits[j].v
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.v
	}
	return out
}

func randomWords(rng *rand.Rand, n int) []string {
	words := make([]string, n)
	for i := range words {
		b := make([]byte, 3+rng.Intn(8))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6)) // small alphabet → many near-collisions
		}
		words[i] = string(b)
	}
	return words
}

// TestBKTreeMatchesBruteForce checks that the pruned, bounded-metric
// BK-tree search returns exactly the brute-force nearest set.
func TestBKTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		words := randomWords(rng, 80)
		tree := NewBKTree(words, strdist.DL)
		for probe := 0; probe < 10; probe++ {
			q := randomWords(rng, 1)[0]
			k := 1 + rng.Intn(5)
			got := tree.Nearest(q, k)
			want := bruteNearest(words, q, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Nearest(%q,%d) = %v, want %v", trial, q, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Nearest(%q,%d) = %v, want %v", trial, q, k, got, want)
				}
			}
		}
	}
}

// TestBKTreeAddThenQuery: values added after construction are found.
func TestBKTreeAddThenQuery(t *testing.T) {
	tree := NewBKTree([]string{"alpha", "beta"}, strdist.DL)
	tree.Add("alphb")
	got := tree.Nearest("alpha", 2)
	if len(got) == 0 || got[0] != "alpha" || got[1] != "alphb" {
		t.Fatalf("Nearest after Add = %v", got)
	}
}

// TestBoundedDLAgreesWithDL: within the bound the bounded variant is
// exact; beyond it, it reports max+1.
func TestBoundedDLAgreesWithDL(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(a, b string, max8 uint8) bool {
		if len(a) > 24 || len(b) > 24 {
			return true
		}
		max := int(max8 % 12)
		d := strdist.DamerauLevenshtein(a, b)
		got := strdist.DamerauLevenshteinBounded(a, b, max)
		if d <= max {
			return got == d
		}
		return got > max
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
