package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cfdclean/internal/strdist"
)

var cities = []string{
	"NYC", "PHI", "CHI", "LA", "SF", "BOS", "DC", "SEA", "ATL", "MIA",
	"New York", "Philadelphia", "Chicago", "Los Angeles", "San Francisco",
	"Boston", "Washington", "Seattle", "Atlanta", "Miami",
}

func testIndex(t *testing.T, name string, mk func(vals []string) Index) {
	t.Run(name+"/ExactMatchFirst", func(t *testing.T) {
		ix := mk(cities)
		got := ix.Nearest("Boston", 3)
		if len(got) == 0 || got[0] != "Boston" {
			t.Errorf("Nearest(Boston) = %v, want Boston first", got)
		}
	})
	t.Run(name+"/TypoFindsOriginal", func(t *testing.T) {
		ix := mk(cities)
		got := ix.Nearest("Bostom", 1)
		if len(got) != 1 || got[0] != "Boston" {
			t.Errorf("Nearest(Bostom) = %v, want [Boston]", got)
		}
	})
	t.Run(name+"/KBounds", func(t *testing.T) {
		ix := mk(cities)
		if got := ix.Nearest("X", 0); got != nil {
			t.Errorf("k=0 must return nil, got %v", got)
		}
		if got := ix.Nearest("X", 1000); len(got) > len(cities) {
			t.Errorf("k beyond size returned %d values", len(got))
		}
	})
	t.Run(name+"/AddThenFind", func(t *testing.T) {
		ix := mk(cities)
		before := ix.Len()
		ix.Add("Pittsburgh")
		ix.Add("Pittsburgh") // duplicate ignored
		if ix.Len() != before+1 {
			t.Errorf("Len after add = %d, want %d", ix.Len(), before+1)
		}
		got := ix.Nearest("Pittsburg", 1)
		if len(got) != 1 || got[0] != "Pittsburgh" {
			t.Errorf("Nearest(Pittsburg) = %v, want [Pittsburgh]", got)
		}
	})
	t.Run(name+"/Empty", func(t *testing.T) {
		ix := mk(nil)
		if got := ix.Nearest("x", 3); got != nil {
			t.Errorf("empty index returned %v", got)
		}
		ix.Add("solo")
		if got := ix.Nearest("sol", 1); len(got) != 1 || got[0] != "solo" {
			t.Errorf("after add, Nearest = %v", got)
		}
	})
}

func TestBKTree(t *testing.T) {
	testIndex(t, "BKTree", func(vals []string) Index { return NewBKTree(vals, nil) })
}

func TestHAC(t *testing.T) {
	testIndex(t, "HAC", func(vals []string) Index { return NewHAC(vals, nil) })
}

func TestNewPicksImplementation(t *testing.T) {
	small := New(cities, nil)
	if _, ok := small.(*HAC); !ok {
		t.Error("small domain should use HAC")
	}
	big := make([]string, HACSizeLimit+1)
	for i := range big {
		big[i] = fmt.Sprintf("value-%06d", i)
	}
	large := New(big, nil)
	if _, ok := large.(*BKTree); !ok {
		t.Error("large domain should use BKTree")
	}
}

// TestBKTreeExactNearest cross-checks BK-tree results against brute force:
// the top-1 result must always be a true nearest neighbor.
func TestBKTreeExactNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]string, 200)
	for i := range vals {
		b := make([]byte, 3+rng.Intn(5))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		vals[i] = string(b)
	}
	ix := NewBKTree(vals, nil)
	for trial := 0; trial < 50; trial++ {
		b := make([]byte, 3+rng.Intn(5))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		probe := string(b)
		got := ix.Nearest(probe, 1)
		if len(got) != 1 {
			t.Fatalf("Nearest(%q) returned %v", probe, got)
		}
		bestD := 1 << 30
		for _, v := range vals {
			if d := strdist.DamerauLevenshtein(probe, v); d < bestD {
				bestD = d
			}
		}
		if d := strdist.DamerauLevenshtein(probe, got[0]); d != bestD {
			t.Errorf("Nearest(%q) = %q at distance %d, brute force found %d", probe, got[0], d, bestD)
		}
	}
}

// TestBKTreeNearestSorted: results must be in non-decreasing distance.
func TestBKTreeNearestSorted(t *testing.T) {
	f := func(vals []string, probe string) bool {
		ix := NewBKTree(vals, nil)
		got := ix.Nearest(probe, 5)
		ds := make([]int, len(got))
		for i, v := range got {
			ds[i] = strdist.DamerauLevenshtein(probe, v)
		}
		return sort.IntsAreSorted(ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestHACContainsAllLeaves: every indexed value is reachable.
func TestHACContainsAllLeaves(t *testing.T) {
	ix := NewHAC(cities, nil)
	got := ix.Nearest("NYC", len(cities))
	if len(got) != len(cities) {
		t.Errorf("HAC query for all values returned %d of %d", len(got), len(cities))
	}
}

func TestBKTreeDedup(t *testing.T) {
	ix := NewBKTree([]string{"a", "a", "b", "a"}, nil)
	if ix.Len() != 2 {
		t.Errorf("Len = %d, want 2", ix.Len())
	}
}

func BenchmarkBKTreeNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]string, 20000)
	for i := range vals {
		vals[i] = fmt.Sprintf("cust-%05d-%c%c", rng.Intn(100000), 'a'+rng.Intn(26), 'a'+rng.Intn(26))
	}
	ix := NewBKTree(vals, nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Nearest(vals[i%len(vals)], 5)
	}
}
