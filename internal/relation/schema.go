package relation

import (
	"fmt"
	"strings"
)

// Schema describes the attributes of a relation R. Attribute positions are
// stable; algorithms address attributes by index for speed and by name at
// API boundaries.
type Schema struct {
	name  string
	attrs []string
	pos   map[string]int
}

// NewSchema creates a schema for relation name with the given attributes.
// Attribute names must be unique and non-empty.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %q has no attributes", name)
	}
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: schema %q has an empty attribute name at position %d", name, i)
		}
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("relation: schema %q has duplicate attribute %q", name, a)
		}
		pos[a] = i
	}
	return &Schema{name: name, attrs: append([]string(nil), attrs...), pos: pos}, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns a copy of the attribute names in position order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Attr returns the attribute name at position i.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Index returns the position of attribute name, or an error if unknown.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.pos[name]
	if !ok {
		return 0, fmt.Errorf("relation: schema %q has no attribute %q", s.name, name)
	}
	return i, nil
}

// MustIndex is Index that panics on unknown attributes.
func (s *Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Indexes resolves several attribute names at once.
func (s *Schema) Indexes(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := s.Index(n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// Has reports whether the schema contains attribute name.
func (s *Schema) Has(name string) bool {
	_, ok := s.pos[name]
	return ok
}

// String renders the schema as R(a, b, c).
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.attrs, ", ") + ")"
}
