package relation

// Pinned snapshot views over the tuple store.
//
// A View freezes the relation's physical tuple array at a journal version
// so readers can iterate it without holding the writer's lock. The design
// is page-level copy-on-write over the flat tuple slice:
//
//   - Pin captures the current slice header (array pointer + length) and
//     joins — or opens — a view generation for the current version.
//   - While any generation is active, every mutator preserves the page it
//     is about to write into each generation that has not saved that page
//     yet, then performs the write. A page that was never dirtied is read
//     straight from the pinned array; a dirtied page is read from the
//     generation's saved pre-image.
//   - Updates under a pinned view clone-and-swap the tuple pointer instead
//     of mutating the shared Tuple in place, so tuples reachable from a
//     view are immutable for the view's lifetime.
//
// The writer's fast path stays lock-free: when no generation is active
// (the steady state — activeGens is an atomic counter) mutators skip the
// viewMu critical section entirely and behave exactly as before PR 7.
//
// Synchronization contract: Pin must be called from the writer's
// serialization context — the same mutual exclusion that orders
// Insert/Delete/Set (increpair.Session holds s.mu for both). The pin is
// what creates the happens-before edge between prior mutations and the
// readers that consume the view. After that, view reads take viewMu.RLock
// only for the duration of a page copy-out, and Release may be called
// from any goroutine (it is idempotent per View).

// viewPageSize is the COW granularity in tuples. 1024 rows ≈ 8 KiB of
// pointers per preserved page: big enough that a dump's lock hold per
// refill stays a pointer memcpy, small enough that a writer dirtying one
// row copies O(page), not O(relation).
const viewPageSize = 1024

// viewGen is one pinned generation: every View taken at the same relation
// version shares a generation (refcounted), so concurrent dumps at one
// version cost one set of pre-images no matter how many readers.
type viewGen struct {
	refs    int
	version uint64
	arr     []*Tuple         // slice header frozen at pin time
	n       int              // row count at pin time (== len(arr))
	pages   map[int][]*Tuple // page index -> pre-image, saved before first dirty write
}

// View is a consistent read-only snapshot of the relation at one journal
// version. It stays valid — and pins its generation's pre-images — until
// Release.
type View struct {
	rel      *Relation
	gen      *viewGen
	version  uint64
	nextID   TupleID
	released bool
}

// Pin captures a consistent view at the relation's current version. It
// must be called from the writer's serialization context (see the package
// comment above); the returned View may then be handed to any goroutine.
func (r *Relation) Pin() *View {
	r.viewMu.Lock()
	var g *viewGen
	if k := len(r.gens); k > 0 && r.gens[k-1].version == r.version {
		// Same version as the newest generation: share it. Versions are
		// monotone, so only the newest generation can match.
		g = r.gens[k-1]
		g.refs++
	} else {
		g = &viewGen{
			refs:    1,
			version: r.version,
			arr:     r.tuples[:len(r.tuples):len(r.tuples)],
			n:       len(r.tuples),
			pages:   make(map[int][]*Tuple),
		}
		r.gens = append(r.gens, g)
		r.activeGens.Store(int32(len(r.gens)))
	}
	r.viewMu.Unlock()
	return &View{rel: r, gen: g, version: r.version, nextID: r.nextID}
}

// Release drops the view's pin. The last release of a generation frees
// its pre-images and, once no generation is active, restores the writer's
// lock-free fast path. Safe to call more than once and from any
// goroutine, but each View must be released by at most one goroutine.
func (v *View) Release() {
	if v.released {
		return
	}
	v.released = true
	r := v.rel
	r.viewMu.Lock()
	v.gen.refs--
	if v.gen.refs == 0 {
		for i, g := range r.gens {
			if g == v.gen {
				r.gens = append(r.gens[:i], r.gens[i+1:]...)
				break
			}
		}
		r.activeGens.Store(int32(len(r.gens)))
	}
	r.viewMu.Unlock()
}

// Len returns the number of rows in the view (the relation's size at pin
// time).
func (v *View) Len() int { return v.gen.n }

// Version returns the journal version the view was pinned at.
func (v *View) Version() uint64 { return v.version }

// NextID returns the relation's id watermark at pin time.
func (v *View) NextID() TupleID { return v.nextID }

// Schema returns the relation's schema (immutable, so shared).
func (v *View) Schema() *Schema { return v.rel.schema }

// page copies view rows of page p into dst and returns the count. The
// read lock is held only for the pointer memcpy.
func (v *View) page(p int, dst []*Tuple) int {
	lo := p * viewPageSize
	if lo >= v.gen.n {
		return 0
	}
	r := v.rel
	r.viewMu.RLock()
	var n int
	if pg, ok := v.gen.pages[p]; ok {
		n = copy(dst, pg)
	} else {
		hi := min(lo+viewPageSize, v.gen.n)
		n = copy(dst, v.gen.arr[lo:hi])
	}
	r.viewMu.RUnlock()
	return n
}

// Tuple returns view row i (0 ≤ i < Len) — a per-row convenience for
// tests and spot reads; iteration should use Rows, which amortizes the
// lock over a page.
func (v *View) Tuple(i int) *Tuple {
	p := i / viewPageSize
	r := v.rel
	r.viewMu.RLock()
	defer r.viewMu.RUnlock()
	if pg, ok := v.gen.pages[p]; ok {
		return pg[i-p*viewPageSize]
	}
	return v.gen.arr[i]
}

// ActiveViews reports the number of active view generations — for tests
// and metrics; 0 means the writer is on its lock-free fast path.
func (r *Relation) ActiveViews() int {
	r.viewMu.RLock()
	defer r.viewMu.RUnlock()
	return len(r.gens)
}

// preserveLocked saves page p into every active generation that can still
// read it and has not saved it yet. It must run under viewMu's write lock
// and before the write that dirties the page. The pre-image is copied
// from each generation's own pinned array: slots below the current length
// hold pin-time content by the unset-page invariant, and slots between
// the current length and the generation's length (possible after net
// deletes) were only ever truncated, never overwritten, so the pinned
// array still holds their pin-time content too.
func (r *Relation) preserveLocked(p int) {
	lo := p * viewPageSize
	for _, g := range r.gens {
		if lo >= g.n {
			continue // page entirely beyond this generation's range
		}
		if _, ok := g.pages[p]; ok {
			continue // already preserved for this generation
		}
		hi := min(lo+viewPageSize, g.n)
		pg := make([]*Tuple, hi-lo)
		copy(pg, g.arr[lo:hi])
		g.pages[p] = pg
	}
}

// cowAppend appends t to the tuple slice while views are pinned: the
// append slot may lie inside a generation's range after net deletes, so
// its page is preserved first.
func (r *Relation) cowAppend(t *Tuple) {
	r.viewMu.Lock()
	r.preserveLocked(len(r.tuples) / viewPageSize)
	r.tuples = append(r.tuples, t)
	r.viewMu.Unlock()
}

// cowDelete performs the swap-compaction of slot i while views are
// pinned. Only slot i is written (the last slot is read and truncated,
// never overwritten), so one page preserve suffices.
func (r *Relation) cowDelete(i int) {
	r.viewMu.Lock()
	r.preserveLocked(i / viewPageSize)
	last := len(r.tuples) - 1
	r.tuples[i] = r.tuples[last]
	r.byID[r.tuples[i].ID] = i
	r.tuples = r.tuples[:last]
	r.viewMu.Unlock()
}

// cowSet applies an in-place attribute update while views are pinned by
// cloning the tuple and swapping the slot pointer, leaving the original
// object — still reachable from pinned pages and pinned arrays —
// unchanged. Returns the relation-resident tuple after the update.
func (r *Relation) cowSet(i, a int, v Value, vid ValueID) *Tuple {
	t := r.tuples[i]
	c := &Tuple{
		ID:   t.ID,
		Vals: append([]Value(nil), t.Vals...),
		ids:  append([]ValueID(nil), t.ids...),
	}
	if t.W != nil {
		c.W = append([]float64(nil), t.W...)
	}
	c.Vals[a] = v
	c.ids[a] = vid
	r.viewMu.Lock()
	r.preserveLocked(i / viewPageSize)
	r.tuples[i] = c
	r.viewMu.Unlock()
	return c
}
