package relation

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueEqSQLSemantics(t *testing.T) {
	a, b := S("x"), S("y")
	if Eq(a, b) {
		t.Error("distinct constants must not be Eq")
	}
	if !Eq(a, S("x")) {
		t.Error("equal constants must be Eq")
	}
	// Paper §3.1 remark 1: = is true if either side is null.
	if !Eq(a, NullValue) || !Eq(NullValue, b) || !Eq(NullValue, NullValue) {
		t.Error("null must compare Eq to everything")
	}
}

func TestValueStrictEq(t *testing.T) {
	if StrictEq(S("x"), NullValue) {
		t.Error("null is not StrictEq to a constant")
	}
	if !StrictEq(NullValue, NullValue) {
		t.Error("null is StrictEq to null")
	}
	if !StrictEq(S("x"), S("x")) || StrictEq(S("x"), S("y")) {
		t.Error("StrictEq on constants must be string equality")
	}
}

func TestValueKeyInjective(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := S(a), S(b)
		if a == b {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if S("N").Key() == NullValue.Key() {
		t.Error("null key must not collide with constant key")
	}
}

func TestKeyOfComposite(t *testing.T) {
	// Composite keys must not confuse ("ab","c") with ("a","bc").
	k1 := KeyOf(S("ab"), S("c"))
	k2 := KeyOf(S("a"), S("bc"))
	if k1 == k2 {
		t.Error("composite key must separate fields")
	}
}

func TestSchemaBasics(t *testing.T) {
	s, err := NewSchema("order", "id", "name", "PR")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 3 || s.Name() != "order" {
		t.Fatalf("bad schema: %v", s)
	}
	if i := s.MustIndex("PR"); i != 2 {
		t.Errorf("MustIndex(PR) = %d, want 2", i)
	}
	if _, err := s.Index("nope"); err == nil {
		t.Error("Index(nope) should fail")
	}
	if got := s.String(); got != "order(id, name, PR)" {
		t.Errorf("String() = %q", got)
	}
	ix, err := s.Indexes("PR", "id")
	if err != nil || !reflect.DeepEqual(ix, []int{2, 0}) {
		t.Errorf("Indexes = %v, %v", ix, err)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema("r"); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema("r", "a", "a"); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewSchema("r", "a", ""); err == nil {
		t.Error("empty attribute name must fail")
	}
}

func TestInsertAndActiveDomain(t *testing.T) {
	r := New(MustSchema("r", "a", "b"))
	r.MustInsert(NewTuple(0, "x", "1"))
	r.MustInsert(NewTuple(0, "y", "1"))
	r.MustInsert(NewTuple(0, "x", "2"))
	if r.Size() != 3 {
		t.Fatalf("Size = %d", r.Size())
	}
	if got := r.ActiveDomain(0); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("adom(a) = %v", got)
	}
	if got := r.ActiveDomain(1); !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("adom(b) = %v", got)
	}
	if n := r.DomainCount(0, "x"); n != 2 {
		t.Errorf("DomainCount(a,x) = %d", n)
	}
}

func TestInsertErrors(t *testing.T) {
	r := New(MustSchema("r", "a", "b"))
	if err := r.Insert(NewTuple(0, "only-one")); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := r.Insert(&Tuple{Vals: []Value{S("x"), S("y")}, W: []float64{1}}); err == nil {
		t.Error("weight length mismatch must fail")
	}
	r.MustInsert(NewTuple(7, "x", "y"))
	if err := r.Insert(NewTuple(7, "z", "w")); err == nil {
		t.Error("duplicate id must fail")
	}
	// Fresh ids continue past explicit ones.
	tp := NewTuple(0, "q", "r")
	r.MustInsert(tp)
	if tp.ID <= 7 {
		t.Errorf("fresh id %d should exceed explicit id 7", tp.ID)
	}
}

func TestSetMaintainsActiveDomain(t *testing.T) {
	r := New(MustSchema("r", "a"))
	t1 := NewTuple(0, "x")
	r.MustInsert(t1)
	old, err := r.Set(t1.ID, 0, S("y"))
	if err != nil || old.Str != "x" {
		t.Fatalf("Set: old=%v err=%v", old, err)
	}
	if got := r.ActiveDomain(0); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("adom after set = %v", got)
	}
	// Setting to null removes from the domain.
	if _, err := r.Set(t1.ID, 0, NullValue); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveDomain(0); len(got) != 0 {
		t.Errorf("adom after null = %v", got)
	}
	if _, err := r.Set(999, 0, S("z")); err == nil {
		t.Error("Set on missing tuple must fail")
	}
}

func TestDelete(t *testing.T) {
	r := New(MustSchema("r", "a"))
	t1 := NewTuple(0, "x")
	t2 := NewTuple(0, "x")
	r.MustInsert(t1)
	r.MustInsert(t2)
	if !r.Delete(t1.ID) {
		t.Fatal("Delete returned false")
	}
	if r.Size() != 1 || r.Tuple(t1.ID) != nil || r.Tuple(t2.ID) == nil {
		t.Error("delete bookkeeping wrong")
	}
	if n := r.DomainCount(0, "x"); n != 1 {
		t.Errorf("DomainCount after delete = %d", n)
	}
	if r.Delete(t1.ID) {
		t.Error("double delete should return false")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New(MustSchema("r", "a"))
	t1 := NewTuple(0, "x")
	t1.SetWeight(0, 0.5)
	r.MustInsert(t1)
	c := r.Clone()
	if _, err := c.Set(t1.ID, 0, S("y")); err != nil {
		t.Fatal(err)
	}
	if r.Tuple(t1.ID).Vals[0].Str != "x" {
		t.Error("clone mutation leaked into original")
	}
	if c.Tuple(t1.ID).Weight(0) != 0.5 {
		t.Error("clone lost weights")
	}
}

func TestTupleWeights(t *testing.T) {
	tp := NewTuple(1, "a", "b")
	if tp.Weight(0) != 1 || tp.TotalWeight() != 2 {
		t.Error("default weights must be 1")
	}
	tp.SetWeight(1, 0.25)
	if tp.Weight(0) != 1 || tp.Weight(1) != 0.25 {
		t.Error("SetWeight must preserve other weights")
	}
	if tp.TotalWeight() != 1.25 {
		t.Errorf("TotalWeight = %v", tp.TotalWeight())
	}
}

func TestTupleProjectKeyNull(t *testing.T) {
	tp := &Tuple{ID: 1, Vals: []Value{S("a"), NullValue, S("c")}}
	if got := tp.Project([]int{2, 0}); !StrictEqVals(got, []Value{S("c"), S("a")}) {
		t.Errorf("Project = %v", got)
	}
	if !tp.HasNullOn([]int{0, 1}) || tp.HasNullOn([]int{0, 2}) {
		t.Error("HasNullOn wrong")
	}
	if tp.KeyOn([]int{1}) != KeyOf(NullValue) {
		t.Error("KeyOn must encode null like KeyOf")
	}
}

func TestGroupBy(t *testing.T) {
	r := New(MustSchema("r", "a", "b"))
	r.MustInsert(NewTuple(0, "x", "1"))
	r.MustInsert(NewTuple(0, "x", "2"))
	r.MustInsert(NewTuple(0, "y", "3"))
	g := r.GroupBy([]int{0})
	if len(g) != 2 {
		t.Fatalf("groups = %d", len(g))
	}
	if len(g[KeyOf(S("x"))]) != 2 || len(g[KeyOf(S("y"))]) != 1 {
		t.Error("group contents wrong")
	}
}

func TestSelect(t *testing.T) {
	r := New(MustSchema("r", "a"))
	r.MustInsert(NewTuple(0, "x"))
	r.MustInsert(NewTuple(0, "y"))
	got := r.Select(func(t *Tuple) bool { return t.Vals[0].Str == "y" })
	if len(got) != 1 || got[0].Vals[0].Str != "y" {
		t.Errorf("Select = %v", got)
	}
}

func TestHashIndexLifecycle(t *testing.T) {
	r := New(MustSchema("r", "a", "b"))
	t1 := NewTuple(0, "x", "1")
	t2 := NewTuple(0, "x", "2")
	r.MustInsert(t1)
	r.MustInsert(t2)
	ix := NewHashIndex(r, []int{0})
	if ids := ix.Lookup([]Value{S("x")}); len(ids) != 2 {
		t.Fatalf("Lookup(x) = %v", ids)
	}
	// Update t1.a -> y.
	if _, err := r.Set(t1.ID, 0, S("y")); err != nil {
		t.Fatal(err)
	}
	ix.Update(t1)
	if ids := ix.Lookup([]Value{S("x")}); len(ids) != 1 || ids[0] != t2.ID {
		t.Errorf("Lookup(x) after update = %v", ids)
	}
	if ids := ix.Lookup([]Value{S("y")}); len(ids) != 1 || ids[0] != t1.ID {
		t.Errorf("Lookup(y) after update = %v", ids)
	}
	// No-op update keeps a single entry.
	ix.Update(t1)
	if ids := ix.Lookup([]Value{S("y")}); len(ids) != 1 {
		t.Errorf("Lookup(y) after no-op update = %v", ids)
	}
	ix.Remove(t2.ID)
	if ids := ix.Lookup([]Value{S("x")}); len(ids) != 0 {
		t.Errorf("Lookup(x) after remove = %v", ids)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
	if !ix.Touches(0) || ix.Touches(1) {
		t.Error("Touches wrong")
	}
}

func TestHashIndexBuckets(t *testing.T) {
	r := New(MustSchema("r", "a"))
	r.MustInsert(NewTuple(0, "x"))
	r.MustInsert(NewTuple(0, "y"))
	ix := NewHashIndex(r, []int{0})
	n := 0
	ix.Buckets(func(key Key, ids []TupleID) { n += len(ids) })
	if n != 2 {
		t.Errorf("bucket walk saw %d ids", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New(MustSchema("order", "id", "name"))
	r.MustInsert(NewTuple(0, "a23", "H. Porter"))
	r.MustInsert(&Tuple{Vals: []Value{S("a12"), NullValue}})
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("order", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 2 {
		t.Fatalf("round-trip size = %d", got.Size())
	}
	if !got.Tuples()[1].Vals[1].Null {
		t.Error("null did not survive round trip")
	}
	if got.Tuples()[0].Vals[1].Str != "H. Porter" {
		t.Error("value did not survive round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("r", strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
	if _, err := ReadCSV("r", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("short row must fail")
	}
	if _, err := ReadCSV("r", strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header must fail")
	}
}

func TestWeightsCSVRoundTrip(t *testing.T) {
	r := New(MustSchema("r", "a", "b"))
	t1 := NewTuple(0, "x", "y")
	t1.SetWeight(0, 0.9)
	t1.SetWeight(1, 0.1)
	r.MustInsert(t1)
	r.MustInsert(NewTuple(0, "p", "q"))
	var buf bytes.Buffer
	if err := WriteWeightsCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	fresh := r.Clone()
	for _, tp := range fresh.Tuples() {
		tp.W = nil
	}
	if err := ReadWeightsCSV(fresh, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fresh.Tuples()[0].Weight(0) != 0.9 || fresh.Tuples()[0].Weight(1) != 0.1 {
		t.Error("weights did not survive round trip")
	}
	if fresh.Tuples()[1].Weight(0) != 1 {
		t.Error("unit weights did not survive round trip")
	}
}

func TestReadWeightsCSVErrors(t *testing.T) {
	r := New(MustSchema("r", "a"))
	r.MustInsert(NewTuple(0, "x"))
	cases := []string{
		"b\n1\n",      // wrong header name
		"a\n",         // too few rows
		"a\n1\n0.5\n", // too many rows
		"a\nnope\n",   // unparsable weight
		"a\n1.5\n",    // out of range
	}
	for _, c := range cases {
		fresh := r.Clone()
		if err := ReadWeightsCSV(fresh, strings.NewReader(c)); err == nil {
			t.Errorf("ReadWeightsCSV(%q) should fail", c)
		}
	}
}

func TestTupleString(t *testing.T) {
	tp := &Tuple{ID: 3, Vals: []Value{S("a"), NullValue}}
	if got := tp.String(); got != "t3(a, ␀)" {
		t.Errorf("String = %q", got)
	}
}
