package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Deterministic binary (de)serialization of journal Deltas — the codec
// underneath the write-ahead log (internal/wal). The encoding is a pure
// function of the Delta's visible fields (Kind, T.ID, T.Vals, T.W, Attr,
// Old): no map iteration, no pointers, no interned ids, so the same
// logical delta always serializes to the same bytes regardless of the
// relation (and dictionary) it originated from. Interned ids are *not*
// serialized — they are private to one Relation's dictionary and are
// reassigned when a decoded tuple is inserted somewhere; a decoded Delta
// therefore carries a free-standing tuple (Interned() == false) and
// OldID == InvalidID.
//
// Layout (all integers little-endian or uvarint/varint as noted):
//
//	delta   = kind(u8) id(varint) nvals(uvarint) value* wflag(u8) weight*
//	          attr(uvarint) old(value)
//	value   = 0x00                   (null)
//	        | 0x01 len(uvarint) byte*  (constant)
//	weight  = float64 bits (u64 little-endian), present iff wflag == 1,
//	          exactly nvals of them
//
// Weights round-trip bit-exactly (float64 bit patterns, not decimal
// text), which the recovery path needs: a restored tuple must score
// identically under the cost model.

// AppendDelta appends the canonical binary encoding of d to dst and
// returns the extended slice.
func AppendDelta(dst []byte, d *Delta) []byte {
	dst = append(dst, byte(d.Kind))
	dst = binary.AppendVarint(dst, int64(d.T.ID))
	dst = binary.AppendUvarint(dst, uint64(len(d.T.Vals)))
	for _, v := range d.T.Vals {
		dst = AppendValue(dst, v)
	}
	if d.T.W != nil {
		dst = append(dst, 1)
		for _, w := range d.T.W {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
		}
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(d.Attr))
	dst = AppendValue(dst, d.Old)
	return dst
}

// DecodeDelta decodes one Delta from the front of b, returning the delta
// and the number of bytes consumed. The decoded tuple is free-standing:
// it carries no interned ids (and OldID is InvalidID) until a Relation
// adopts it through Insert.
func DecodeDelta(b []byte) (Delta, int, error) {
	var d Delta
	pos := 0
	if len(b) < 1 {
		return d, 0, fmt.Errorf("relation: delta: missing kind byte")
	}
	kind := DeltaKind(b[0])
	if kind > DeltaUpdate {
		return d, 0, fmt.Errorf("relation: delta: unknown kind %d", b[0])
	}
	pos++
	id, n := binary.Varint(b[pos:])
	if n <= 0 {
		return d, 0, fmt.Errorf("relation: delta: truncated tuple id")
	}
	pos += n
	nvals, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return d, 0, fmt.Errorf("relation: delta: truncated value count")
	}
	pos += n
	// The arity cap mirrors the engine's 64-attribute schema limit and
	// stops a corrupted count from driving a huge allocation.
	if nvals > 1<<16 {
		return d, 0, fmt.Errorf("relation: delta: implausible value count %d", nvals)
	}
	t := &Tuple{ID: TupleID(id)}
	if nvals > 0 {
		t.Vals = make([]Value, nvals)
		for i := range t.Vals {
			v, n, err := DecodeValue(b[pos:])
			if err != nil {
				return d, 0, fmt.Errorf("relation: delta: value %d: %w", i, err)
			}
			t.Vals[i] = v
			pos += n
		}
	}
	if pos >= len(b) {
		return d, 0, fmt.Errorf("relation: delta: missing weight flag")
	}
	wflag := b[pos]
	pos++
	switch wflag {
	case 0:
	case 1:
		t.W = make([]float64, nvals)
		for i := range t.W {
			if pos+8 > len(b) {
				return d, 0, fmt.Errorf("relation: delta: truncated weight %d", i)
			}
			t.W[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
			pos += 8
		}
	default:
		return d, 0, fmt.Errorf("relation: delta: bad weight flag %d", wflag)
	}
	attr, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return d, 0, fmt.Errorf("relation: delta: truncated attribute")
	}
	pos += n
	old, n, err := DecodeValue(b[pos:])
	if err != nil {
		return d, 0, fmt.Errorf("relation: delta: old value: %w", err)
	}
	pos += n
	d.Kind = kind
	d.T = t
	d.Attr = int(attr)
	d.Old = old
	d.OldID = InvalidID
	return d, pos, nil
}

// AppendValue appends the canonical binary encoding of one Value:
// 0x00 for null, or 0x01 + uvarint length + bytes for a constant. It
// is the single value codec shared by the Delta encoding here and the
// snapshot encoding in internal/wal — the two on-disk formats must
// never fork at the value level.
func AppendValue(dst []byte, v Value) []byte {
	if v.Null {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
	return append(dst, v.Str...)
}

// DecodeValue decodes one Value from the front of b, returning it and
// the number of bytes consumed; inverse of AppendValue.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) < 1 {
		return Value{}, 0, fmt.Errorf("missing value tag")
	}
	switch b[0] {
	case 0:
		return NullValue, 1, nil
	case 1:
		ln, n := binary.Uvarint(b[1:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("truncated value length")
		}
		start := 1 + n
		end := start + int(ln)
		if ln > uint64(len(b)) || end > len(b) {
			return Value{}, 0, fmt.Errorf("value of %d bytes exceeds buffer", ln)
		}
		return S(string(b[start:end])), end, nil
	default:
		return Value{}, 0, fmt.Errorf("bad value tag %d", b[0])
	}
}
