package relation

import "testing"

func idxRel(t *testing.T) *Relation {
	t.Helper()
	r := New(MustSchema("r", "a", "b", "c"))
	return r
}

func TestHashIndexAddLookup(t *testing.T) {
	r := idxRel(t)
	t1, _ := r.InsertRow("x", "1", "p")
	t2, _ := r.InsertRow("x", "1", "q")
	t3, _ := r.InsertRow("y", "2", "p")
	ix := NewHashIndex(r, []int{0, 1})
	got := ix.Lookup([]Value{S("x"), S("1")})
	if len(got) != 2 || got[0] != t1.ID || got[1] != t2.ID {
		t.Fatalf("Lookup(x,1) = %v, want [%d %d]", got, t1.ID, t2.ID)
	}
	if got := ix.Lookup([]Value{S("y"), S("2")}); len(got) != 1 || got[0] != t3.ID {
		t.Fatalf("Lookup(y,2) = %v, want [%d]", got, t3.ID)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}

func TestHashIndexLookupUnknownValue(t *testing.T) {
	r := idxRel(t)
	r.MustInsert(NewTuple(0, "x", "1", "p"))
	ix := NewHashIndex(r, []int{0})
	// "zzz" was never interned: the probe must short-circuit to nil
	// without touching (or growing) the dictionary.
	before := r.Dict().Len()
	if got := ix.Lookup([]Value{S("zzz")}); got != nil {
		t.Fatalf("Lookup(zzz) = %v, want nil", got)
	}
	if r.Dict().Len() != before {
		t.Fatalf("probe interned a value: dict grew %d -> %d", before, r.Dict().Len())
	}
}

func TestHashIndexUpdateSameKey(t *testing.T) {
	r := idxRel(t)
	tp, _ := r.InsertRow("x", "1", "p")
	ix := NewHashIndex(r, []int{0})
	// Change an un-indexed attribute: key on attr 0 is unchanged.
	if _, err := r.Set(tp.ID, 2, S("q")); err != nil {
		t.Fatal(err)
	}
	ix.Update(tp)
	got := ix.Lookup([]Value{S("x")})
	if len(got) != 1 || got[0] != tp.ID {
		t.Fatalf("after same-key update, Lookup(x) = %v, want [%d] exactly once", got, tp.ID)
	}
}

func TestHashIndexUpdateMovesBucket(t *testing.T) {
	r := idxRel(t)
	tp, _ := r.InsertRow("x", "1", "p")
	ix := NewHashIndex(r, []int{0})
	if _, err := r.Set(tp.ID, 0, S("y")); err != nil {
		t.Fatal(err)
	}
	ix.Update(tp)
	if got := ix.Lookup([]Value{S("x")}); len(got) != 0 {
		t.Fatalf("old bucket still holds %v", got)
	}
	got := ix.Lookup([]Value{S("y")})
	if len(got) != 1 || got[0] != tp.ID {
		t.Fatalf("new bucket = %v, want [%d]", got, tp.ID)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (empty bucket must be deleted)", ix.Len())
	}
}

func TestHashIndexUpdateUnindexedTupleAdds(t *testing.T) {
	r := idxRel(t)
	ix := NewHashIndex(r, []int{0})
	tp, _ := r.InsertRow("x", "1", "p")
	// Update on a tuple the index has never seen must behave like Add.
	ix.Update(tp)
	got := ix.Lookup([]Value{S("x")})
	if len(got) != 1 || got[0] != tp.ID {
		t.Fatalf("Update-as-add: Lookup(x) = %v, want [%d]", got, tp.ID)
	}
}

func TestHashIndexRemove(t *testing.T) {
	r := idxRel(t)
	t1, _ := r.InsertRow("x", "1", "p")
	t2, _ := r.InsertRow("x", "1", "q")
	ix := NewHashIndex(r, []int{0})
	ix.Remove(t1.ID)
	got := ix.Lookup([]Value{S("x")})
	if len(got) != 1 || got[0] != t2.ID {
		t.Fatalf("after remove, Lookup(x) = %v, want [%d]", got, t2.ID)
	}
	ix.Remove(t2.ID)
	if got := ix.Lookup([]Value{S("x")}); len(got) != 0 {
		t.Fatalf("after removing all, Lookup(x) = %v", got)
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ix.Len())
	}
}

func TestHashIndexRemoveUnindexed(t *testing.T) {
	r := idxRel(t)
	t1, _ := r.InsertRow("x", "1", "p")
	ix := NewHashIndex(r, []int{0})
	ix.Remove(TupleID(9999)) // never indexed: must be a no-op
	got := ix.Lookup([]Value{S("x")})
	if len(got) != 1 || got[0] != t1.ID {
		t.Fatalf("remove of unindexed id disturbed the index: %v", got)
	}
}

func TestHashIndexNullKeys(t *testing.T) {
	r := idxRel(t)
	tn := &Tuple{Vals: []Value{NullValue, S("1"), S("p")}}
	r.MustInsert(tn)
	tx, _ := r.InsertRow("x", "1", "p")
	ix := NewHashIndex(r, []int{0})
	if got := ix.Lookup([]Value{NullValue}); len(got) != 1 || got[0] != tn.ID {
		t.Fatalf("Lookup(null) = %v, want [%d]", got, tn.ID)
	}
	if got := ix.Lookup([]Value{S("x")}); len(got) != 1 || got[0] != tx.ID {
		t.Fatalf("Lookup(x) = %v, want [%d]", got, tx.ID)
	}
}

func TestHashIndexLookupTupleFreeStanding(t *testing.T) {
	r := idxRel(t)
	t1, _ := r.InsertRow("x", "1", "p")
	ix := NewHashIndex(r, []int{0, 1})
	probe := NewTuple(0, "x", "1", "anything")
	if probe.Interned() {
		t.Fatal("free-standing tuple must not be interned")
	}
	got := ix.LookupTuple(probe)
	if len(got) != 1 || got[0] != t1.ID {
		t.Fatalf("LookupTuple(probe) = %v, want [%d]", got, t1.ID)
	}
}

func TestKeyOfIDsWideArity(t *testing.T) {
	// Keys beyond four attributes spill into ext and must stay exact.
	a := KeyOfIDs([]ValueID{1, 2, 3, 4, 5, 6})
	b := KeyOfIDs([]ValueID{1, 2, 3, 4, 5, 7})
	c := KeyOfIDs([]ValueID{1, 2, 3, 4, 5, 6})
	if a == b {
		t.Fatal("distinct wide keys compare equal")
	}
	if a != c {
		t.Fatal("equal wide keys compare unequal")
	}
	if a.Hash() == b.Hash() && a.ext == b.ext {
		t.Fatal("ext ignored by Hash")
	}
}

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	id1 := d.InternStr("a")
	id2 := d.InternStr("b")
	if id1 == id2 || id1 == NullID || id2 == NullID {
		t.Fatalf("bad ids %d %d", id1, id2)
	}
	if got := d.InternStr("a"); got != id1 {
		t.Fatalf("re-intern gave %d, want %d", got, id1)
	}
	if got, ok := d.LookupStr("b"); !ok || got != id2 {
		t.Fatalf("LookupStr(b) = %d,%v", got, ok)
	}
	if _, ok := d.LookupStr("zzz"); ok {
		t.Fatal("LookupStr found unseen value")
	}
	if d.LookupValue(NullValue) != NullID {
		t.Fatal("null must map to NullID")
	}
	if v := d.Value(id1); v.Null || v.Str != "a" {
		t.Fatalf("Value(id1) = %v", v)
	}
	if v := d.Value(NullID); !v.Null {
		t.Fatalf("Value(NullID) = %v, want null", v)
	}
	cl := d.Clone()
	if got, ok := cl.LookupStr("a"); !ok || got != id1 {
		t.Fatal("clone must preserve ids")
	}
	cl.InternStr("c")
	if _, ok := d.LookupStr("c"); ok {
		t.Fatal("clone interning leaked into the original")
	}
}
