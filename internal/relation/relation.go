package relation

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Relation is an in-memory instance of a single-relation schema. It owns
// its tuples; mutations go through the Relation so that active-domain and
// index bookkeeping stays consistent.
type Relation struct {
	schema *Schema
	tuples []*Tuple
	byID   map[TupleID]int
	nextID TupleID
	dict   *Dict

	// adom[a] maps the interned id of each non-null constant appearing in
	// attribute a to the number of tuples currently carrying it.
	// Maintained incrementally.
	adom []map[ValueID]int

	// subs are the mutation-journal subscribers (see journal.go); notified
	// synchronously after each insert, delete and update. version counts
	// every mutation (see Version).
	subs    []subscriber
	nextSub int
	version uint64

	// Pinned snapshot views (see view.go). gens holds the active view
	// generations; activeGens mirrors len(gens) so mutators can check for
	// pins without taking viewMu. viewMu orders page preservation and
	// slice writes against readers' page copy-outs.
	viewMu     sync.RWMutex
	gens       []*viewGen
	activeGens atomic.Int32
}

// New creates an empty relation instance of schema s.
func New(s *Schema) *Relation {
	adom := make([]map[ValueID]int, s.Arity())
	for i := range adom {
		adom[i] = make(map[ValueID]int)
	}
	return &Relation{
		schema: s,
		byID:   make(map[TupleID]int),
		nextID: 1,
		dict:   NewDict(),
		adom:   adom,
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Dict returns the relation's interning dictionary. The dictionary only
// grows; ids handed out stay valid for the relation's lifetime.
func (r *Relation) Dict() *Dict { return r.dict }

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// Tuples returns the live tuple slice in insertion order. Callers must not
// modify attribute values directly; use Set so bookkeeping stays correct.
func (r *Relation) Tuples() []*Tuple { return r.tuples }

// Tuple returns the tuple with the given id, or nil.
func (r *Relation) Tuple(id TupleID) *Tuple {
	i, ok := r.byID[id]
	if !ok {
		return nil
	}
	return r.tuples[i]
}

// Insert adds t to the relation. If t.ID is zero a fresh id is assigned.
// The tuple must have the schema's arity and (if present) a weight vector
// of the same length.
func (r *Relation) Insert(t *Tuple) error {
	if len(t.Vals) != r.schema.Arity() {
		return fmt.Errorf("relation %s: tuple has %d values, want %d", r.schema.Name(), len(t.Vals), r.schema.Arity())
	}
	if t.W != nil && len(t.W) != len(t.Vals) {
		return fmt.Errorf("relation %s: tuple has %d weights, want %d", r.schema.Name(), len(t.W), len(t.Vals))
	}
	if t.ID == 0 {
		t.ID = r.nextID
	}
	if _, dup := r.byID[t.ID]; dup {
		return fmt.Errorf("relation %s: duplicate tuple id %d", r.schema.Name(), t.ID)
	}
	if t.ID >= r.nextID {
		r.nextID = t.ID + 1
	}
	r.byID[t.ID] = len(r.tuples)
	if r.activeGens.Load() != 0 {
		r.cowAppend(t)
	} else {
		r.tuples = append(r.tuples, t)
	}
	// (Re-)intern the tuple's values against this relation's dictionary;
	// ids from a previous owner are meaningless here. The stored Value is
	// canonicalized to the dictionary's copy of the string, so a constant
	// appearing in a million cells pins one backing array, not a million
	// parser-owned copies.
	t.ids = make([]ValueID, len(t.Vals))
	for a, v := range t.Vals {
		id := r.dict.Intern(v)
		t.ids[a] = id
		if id != NullID {
			t.Vals[a] = Value{Str: r.dict.Str(id)}
			r.adom[a][id]++
		} else {
			t.Vals[a] = NullValue
		}
	}
	r.version++
	if len(r.subs) > 0 {
		r.notify(Delta{Kind: DeltaInsert, T: t})
	}
	return nil
}

// MustInsert is Insert that panics on error; for tests and generators.
func (r *Relation) MustInsert(t *Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// InsertRow builds a unit-weight tuple from strings and inserts it.
func (r *Relation) InsertRow(vals ...string) (*Tuple, error) {
	t := NewTuple(0, vals...)
	if err := r.Insert(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Delete removes the tuple with the given id. Deletions never introduce
// CFD violations (§3.3), so no constraint bookkeeping is required here.
func (r *Relation) Delete(id TupleID) bool {
	i, ok := r.byID[id]
	if !ok {
		return false
	}
	t := r.tuples[i]
	for a, id := range t.ids {
		if id != NullID {
			r.dropAdom(a, id)
		}
	}
	if r.activeGens.Load() != 0 {
		r.cowDelete(i)
	} else {
		last := len(r.tuples) - 1
		r.tuples[i] = r.tuples[last]
		r.byID[r.tuples[i].ID] = i
		r.tuples = r.tuples[:last]
	}
	delete(r.byID, id)
	r.version++
	if len(r.subs) > 0 {
		r.notify(Delta{Kind: DeltaDelete, T: t})
	}
	return true
}

// Set changes attribute a of tuple id to v, updating the active domain.
// It returns the previous value.
func (r *Relation) Set(id TupleID, a int, v Value) (Value, error) {
	i, ok := r.byID[id]
	if !ok {
		return Value{}, fmt.Errorf("relation %s: no tuple with id %d", r.schema.Name(), id)
	}
	t := r.tuples[i]
	old := t.Vals[a]
	if StrictEq(old, v) {
		return old, nil
	}
	oldID := t.ids[a]
	if oldID != NullID {
		r.dropAdom(a, oldID)
	}
	vid := r.dict.Intern(v)
	if vid != NullID {
		// Canonicalize to the dictionary's backing string (see Insert).
		v = Value{Str: r.dict.Str(vid)}
		r.adom[a][vid]++
	} else {
		v = NullValue
	}
	if r.activeGens.Load() != 0 {
		// Tuples reachable from pinned views are immutable: update via
		// clone-and-swap, leaving the shared object untouched.
		t = r.cowSet(i, a, v, vid)
	} else {
		t.Vals[a] = v
		t.ids[a] = vid
	}
	r.version++
	if len(r.subs) > 0 {
		r.notify(Delta{Kind: DeltaUpdate, T: t, Attr: a, Old: old, OldID: oldID})
	}
	return old, nil
}

func (r *Relation) dropAdom(a int, id ValueID) {
	if n := r.adom[a][id]; n <= 1 {
		delete(r.adom[a], id)
	} else {
		r.adom[a][id] = n - 1
	}
}

// ActiveDomain returns the sorted distinct non-null constants currently
// appearing in attribute a — the paper's adom(A, D) (§2). Repairs draw
// replacement values from the active domain or null; no values are
// invented (§3.1).
func (r *Relation) ActiveDomain(a int) []string {
	out := make([]string, 0, len(r.adom[a]))
	for id := range r.adom[a] {
		out = append(out, r.dict.Str(id))
	}
	sort.Strings(out)
	return out
}

// ActiveDomainSize returns |adom(a, D)| without materializing it.
func (r *Relation) ActiveDomainSize(a int) int { return len(r.adom[a]) }

// DomainCount returns the number of tuples whose attribute a currently
// equals constant s.
func (r *Relation) DomainCount(a int, s string) int {
	id, ok := r.dict.LookupStr(s)
	if !ok {
		return 0
	}
	return r.adom[a][id]
}

// Clone deep-copies the relation, tuples included. The interning
// dictionary is cloned id-preservingly, so value ids remain comparable
// across a relation and its clones.
func (r *Relation) Clone() *Relation {
	c := New(r.schema)
	c.dict = r.dict.Clone()
	for _, t := range r.tuples {
		c.MustInsert(t.Clone())
	}
	return c
}

// Select returns the tuples satisfying pred, in insertion order.
func (r *Relation) Select(pred func(*Tuple) bool) []*Tuple {
	var out []*Tuple
	for _, t := range r.tuples {
		if pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// GroupBy partitions the tuples by their composite key on attrs. Tuples
// containing null on any of attrs are grouped under their encoded key as
// well (null has a distinct encoding); callers that need the paper's
// pattern-match semantics filter nulls themselves.
func (r *Relation) GroupBy(attrs []int) map[string][]*Tuple {
	groups := make(map[string][]*Tuple)
	for _, t := range r.tuples {
		k := t.KeyOn(attrs)
		groups[k] = append(groups[k], t)
	}
	return groups
}
