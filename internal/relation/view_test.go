package relation

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// dumpLive captures WriteCSV of the live relation.
func dumpLive(t *testing.T, r *Relation) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteCSV(r, &b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// dumpView captures the pinned view's streamed CSV.
func dumpView(t *testing.T, v *View) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := v.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestViewIsolatesReadersFromMutations(t *testing.T) {
	r := New(MustSchema("r", "A", "B"))
	for i := 0; i < 10; i++ {
		r.MustInsert(NewTuple(0, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)))
	}
	want := dumpLive(t, r)

	v := r.Pin()
	if v.Len() != 10 || v.Version() != r.Version() {
		t.Fatalf("view Len=%d Version=%d, want 10/%d", v.Len(), v.Version(), r.Version())
	}

	// Dirty the relation every way a writer can: in-place set, delete
	// (swap-compaction), and inserts past the pinned length.
	if _, err := r.Set(3, 1, S("mutated")); err != nil {
		t.Fatal(err)
	}
	r.Delete(1)
	r.Delete(9)
	for i := 0; i < 25; i++ {
		r.MustInsert(NewTuple(0, "new", fmt.Sprintf("n%d", i)))
	}

	if got := dumpView(t, v); !bytes.Equal(got, want) {
		t.Fatalf("pinned view drifted under mutations:\n got %q\nwant %q", got, want)
	}
	if got := dumpLive(t, r); bytes.Equal(got, want) {
		t.Fatal("live relation did not change")
	}
	v.Release()
	if n := r.ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d after release, want 0", n)
	}
	v.Release() // idempotent
}

func TestViewSurvivesTruncateThenRegrow(t *testing.T) {
	// The delicate COW case: net deletes shrink the array below the
	// pinned length, then appends regrow it over slots the view can
	// still read through its pinned array.
	r := New(MustSchema("r", "A"))
	n := 3 * viewPageSize
	for i := 0; i < n; i++ {
		r.MustInsert(NewTuple(0, fmt.Sprintf("v%d", i)))
	}
	want := dumpLive(t, r)
	v := r.Pin()

	// Delete the back half (ids are 1-based and physical order is still
	// insertion order here), shrinking well below the pinned length...
	for id := TupleID(n); id > TupleID(n/2); id-- {
		if !r.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	// ...then regrow past the original length.
	for i := 0; i < 2*n; i++ {
		r.MustInsert(NewTuple(0, "regrown"))
	}

	if got := dumpView(t, v); !bytes.Equal(got, want) {
		t.Fatal("view corrupted by truncate-then-regrow")
	}
	v.Release()
}

func TestViewsShareGenerationPerVersion(t *testing.T) {
	r := New(MustSchema("r", "A"))
	r.MustInsert(NewTuple(0, "x"))

	v1 := r.Pin()
	v2 := r.Pin()
	if n := r.ActiveViews(); n != 1 {
		t.Fatalf("two pins at one version: ActiveViews = %d, want 1 shared generation", n)
	}
	r.MustInsert(NewTuple(0, "y"))
	v3 := r.Pin()
	if n := r.ActiveViews(); n != 2 {
		t.Fatalf("pin after mutation: ActiveViews = %d, want 2", n)
	}
	if v1.Version() == v3.Version() {
		t.Fatal("distinct versions expected")
	}
	v1.Release()
	if n := r.ActiveViews(); n != 2 {
		t.Fatalf("generation freed while a twin view holds it: ActiveViews = %d", n)
	}
	v2.Release()
	v3.Release()
	if n := r.ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d after all releases, want 0", n)
	}
}

func TestRowCursorRangePushdown(t *testing.T) {
	r := New(MustSchema("r", "A"))
	for i := 0; i < 100; i++ {
		r.MustInsert(NewTuple(0, fmt.Sprintf("v%d", i)))
	}
	v := r.Pin()
	defer v.Release()

	cur := v.RowsRange(20, 30)
	var ids []TupleID
	for tu := cur.Next(); tu != nil; tu = cur.Next() {
		ids = append(ids, tu.ID)
	}
	if len(ids) != 11 || ids[0] != 20 || ids[10] != 30 {
		t.Fatalf("range [20,30] returned %v", ids)
	}
	if cur.Pages() == 0 {
		t.Fatal("cursor fetched no pages")
	}

	// Unbounded cursor sees every row exactly once.
	count := 0
	for all := v.Rows(); all.Next() != nil; {
		count++
	}
	if count != 100 {
		t.Fatalf("full cursor saw %d rows, want 100", count)
	}
}

func TestViewFuzzAgainstBufferedDump(t *testing.T) {
	// Randomized mutation sequences with views pinned at arbitrary
	// points: every view must replay byte-identically to the buffered
	// dump captured at its pin instant, regardless of what the writer
	// does afterwards.
	rng := rand.New(rand.NewSource(7))
	r := New(MustSchema("r", "A", "B"))
	var live []TupleID
	insert := func() {
		tu := NewTuple(0, fmt.Sprintf("a%d", rng.Intn(50)), fmt.Sprintf("b%d", rng.Intn(50)))
		r.MustInsert(tu)
		live = append(live, tu.ID)
	}
	for i := 0; i < 2500; i++ {
		insert()
	}
	type pinned struct {
		v    *View
		want []byte
	}
	var pins []pinned
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			insert()
		case op < 7 && len(live) > 0:
			k := rng.Intn(len(live))
			r.Delete(live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		case op < 9 && len(live) > 0:
			id := live[rng.Intn(len(live))]
			if _, err := r.Set(id, rng.Intn(2), S(fmt.Sprintf("m%d", rng.Intn(50)))); err != nil {
				t.Fatal(err)
			}
		default:
			if len(pins) < 6 {
				pins = append(pins, pinned{v: r.Pin(), want: dumpLive(t, r)})
			} else {
				k := rng.Intn(len(pins))
				pins[k].v.Release()
				pins[k] = pins[len(pins)-1]
				pins = pins[:len(pins)-1]
			}
		}
	}
	for i, p := range pins {
		if got := dumpView(t, p.v); !bytes.Equal(got, p.want) {
			t.Fatalf("pin %d (version %d) drifted from its buffered dump", i, p.v.Version())
		}
		p.v.Release()
	}
	if n := r.ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d at end, want 0", n)
	}
}

func TestViewConcurrentReadersUnderWriter(t *testing.T) {
	// Writer-context discipline as increpair.Session uses it: one mutex
	// serializes mutations and pins; readers stream page-wise while the
	// writer keeps mutating. Run with -race to validate the viewMu
	// protocol.
	r := New(MustSchema("r", "A", "B"))
	var mu sync.Mutex // the "session mutex": orders mutations and pins
	for i := 0; i < 4*viewPageSize; i++ {
		r.MustInsert(NewTuple(0, "base", fmt.Sprintf("b%d", i)))
	}

	pin := func() (*View, []byte) {
		mu.Lock()
		defer mu.Unlock()
		var b bytes.Buffer
		if err := WriteCSV(r, &b); err != nil {
			t.Error(err)
		}
		return r.Pin(), b.Bytes()
	}

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(99))
		id := TupleID(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			switch rng.Intn(3) {
			case 0:
				r.MustInsert(NewTuple(0, "w", fmt.Sprintf("i%d", i)))
			case 1:
				for r.Tuple(id) == nil {
					id = (id % r.NextID()) + 1
				}
				r.Delete(id)
			case 2:
				for r.Tuple(id) == nil {
					id = (id % r.NextID()) + 1
				}
				if _, err := r.Set(id, 0, S(fmt.Sprintf("s%d", i))); err != nil {
					t.Error(err)
				}
			}
			mu.Unlock()
		}
	}()

	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for rep := 0; rep < 8; rep++ {
				v, want := pin()
				got := make([]byte, 0, len(want))
				var b bytes.Buffer
				if err := v.WriteCSV(&b); err != nil {
					t.Error(err)
				}
				got = append(got, b.Bytes()...)
				if !bytes.Equal(got, want) {
					t.Errorf("reader %d rep %d: streamed view != buffered dump at pin time", g, rep)
				}
				v.Release()
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	if n := r.ActiveViews(); n != 0 {
		t.Fatalf("ActiveViews = %d at end, want 0", n)
	}
}
