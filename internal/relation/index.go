package relation

// HashIndex is an equality index over a fixed set of attributes, mapping
// the composite key of a tuple's projection to the tuple ids carrying it.
// It is the workhorse behind violation detection and the LHS indices of
// INCREPAIR (§5.2): given a candidate repair t” we look up t”[X] and test
// whether the indexed A-values agree.
//
// The index is maintained eagerly: callers notify it of inserts, deletes
// and attribute updates. The Relation does not own indices; repair
// algorithms build the ones they need.
type HashIndex struct {
	attrs   []int
	buckets map[string][]TupleID
	slot    map[TupleID]string // current key per indexed tuple, for updates
}

// NewHashIndex builds an index on attrs over the current contents of r.
func NewHashIndex(r *Relation, attrs []int) *HashIndex {
	ix := &HashIndex{
		attrs:   append([]int(nil), attrs...),
		buckets: make(map[string][]TupleID),
		slot:    make(map[TupleID]string),
	}
	for _, t := range r.Tuples() {
		ix.Add(t)
	}
	return ix
}

// Attrs returns the indexed attribute positions.
func (ix *HashIndex) Attrs() []int { return ix.attrs }

// Add indexes tuple t.
func (ix *HashIndex) Add(t *Tuple) {
	k := t.KeyOn(ix.attrs)
	ix.buckets[k] = append(ix.buckets[k], t.ID)
	ix.slot[t.ID] = k
}

// Remove un-indexes tuple t (by its current key).
func (ix *HashIndex) Remove(id TupleID) {
	k, ok := ix.slot[id]
	if !ok {
		return
	}
	ix.buckets[k] = dropID(ix.buckets[k], id)
	if len(ix.buckets[k]) == 0 {
		delete(ix.buckets, k)
	}
	delete(ix.slot, id)
}

// Update re-indexes tuple t after its attribute values changed. It is a
// no-op if the key is unchanged.
func (ix *HashIndex) Update(t *Tuple) {
	nk := t.KeyOn(ix.attrs)
	ok, indexed := ix.slot[t.ID]
	if indexed && ok == nk {
		return
	}
	if indexed {
		ix.buckets[ok] = dropID(ix.buckets[ok], t.ID)
		if len(ix.buckets[ok]) == 0 {
			delete(ix.buckets, ok)
		}
	}
	ix.buckets[nk] = append(ix.buckets[nk], t.ID)
	ix.slot[t.ID] = nk
}

// Touches reports whether attribute a participates in the index key.
func (ix *HashIndex) Touches(a int) bool {
	for _, x := range ix.attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Lookup returns the ids of tuples whose projection onto the indexed
// attributes equals vals.
func (ix *HashIndex) Lookup(vals []Value) []TupleID {
	return ix.buckets[KeyOf(vals...)]
}

// LookupKey returns the ids in the bucket for a precomputed key.
func (ix *HashIndex) LookupKey(key string) []TupleID { return ix.buckets[key] }

// Buckets iterates over all (key, ids) pairs. The callback must not
// mutate the index.
func (ix *HashIndex) Buckets(f func(key string, ids []TupleID)) {
	for k, ids := range ix.buckets {
		f(k, ids)
	}
}

// Len returns the number of distinct keys.
func (ix *HashIndex) Len() int { return len(ix.buckets) }

func dropID(ids []TupleID, id TupleID) []TupleID {
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			return ids[:len(ids)-1]
		}
	}
	return ids
}
