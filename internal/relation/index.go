package relation

// HashIndex is an equality index over a fixed set of attributes, mapping
// the fixed-width integer composite key of a tuple's projection (interned
// value ids) to the tuple ids carrying it. It is the workhorse behind
// violation detection and the LHS indices of INCREPAIR (§5.2): given a
// candidate repair t” we look up t”[X] and test whether the indexed
// A-values agree.
//
// The index is maintained eagerly: callers notify it of inserts, deletes
// and attribute updates. The Relation does not own indices; repair
// algorithms build the ones they need.
type HashIndex struct {
	rel     *Relation
	attrs   []int
	buckets map[Key][]TupleID
	slot    map[TupleID]Key // current key per indexed tuple, for updates
}

// NewHashIndex builds an index on attrs over the current contents of r.
func NewHashIndex(r *Relation, attrs []int) *HashIndex {
	n := r.Size()
	ix := &HashIndex{
		rel:     r,
		attrs:   append([]int(nil), attrs...),
		buckets: make(map[Key][]TupleID, n),
		slot:    make(map[TupleID]Key, n),
	}
	for _, t := range r.Tuples() {
		ix.Add(t)
	}
	return ix
}

// Attrs returns the indexed attribute positions.
func (ix *HashIndex) Attrs() []int { return ix.attrs }

// keyOf computes the integer composite key of t's projection. Indexed
// tuples are always relation-owned and interned; a free-standing tuple
// (defensive) is keyed through the relation's dictionary.
func (ix *HashIndex) keyOf(t *Tuple) Key {
	if t.Interned() {
		return t.KeyOnIDs(ix.attrs)
	}
	var buf [8]ValueID
	ids := buf[:0]
	for _, a := range ix.attrs {
		ids = append(ids, ix.rel.dict.Intern(t.Vals[a]))
	}
	return KeyOfIDs(ids)
}

// Add indexes tuple t.
func (ix *HashIndex) Add(t *Tuple) {
	k := ix.keyOf(t)
	ix.buckets[k] = append(ix.buckets[k], t.ID)
	ix.slot[t.ID] = k
}

// Remove un-indexes tuple t (by its current key).
func (ix *HashIndex) Remove(id TupleID) {
	k, ok := ix.slot[id]
	if !ok {
		return
	}
	ix.buckets[k] = dropID(ix.buckets[k], id)
	if len(ix.buckets[k]) == 0 {
		delete(ix.buckets, k)
	}
	delete(ix.slot, id)
}

// Update re-indexes tuple t after its attribute values changed. It is a
// no-op if the key is unchanged.
func (ix *HashIndex) Update(t *Tuple) {
	newKey := ix.keyOf(t)
	oldKey, indexed := ix.slot[t.ID]
	if indexed && oldKey == newKey {
		return
	}
	if indexed {
		ix.buckets[oldKey] = dropID(ix.buckets[oldKey], t.ID)
		if len(ix.buckets[oldKey]) == 0 {
			delete(ix.buckets, oldKey)
		}
	}
	ix.buckets[newKey] = append(ix.buckets[newKey], t.ID)
	ix.slot[t.ID] = newKey
}

// Touches reports whether attribute a participates in the index key.
func (ix *HashIndex) Touches(a int) bool {
	for _, x := range ix.attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Lookup returns the ids of tuples whose projection onto the indexed
// attributes equals vals. Values absent from the relation's dictionary
// can match no indexed tuple, so the lookup short-circuits to nil.
func (ix *HashIndex) Lookup(vals []Value) []TupleID {
	var buf [8]ValueID
	ids := buf[:0]
	for _, v := range vals {
		id := ix.rel.dict.LookupValue(v)
		if id == InvalidID {
			return nil
		}
		ids = append(ids, id)
	}
	return ix.buckets[KeyOfIDs(ids)]
}

// LookupTuple returns the ids of tuples agreeing with t on the indexed
// attributes, taking the interned fast path when t is relation-owned.
func (ix *HashIndex) LookupTuple(t *Tuple) []TupleID {
	if t.Interned() {
		return ix.buckets[t.KeyOnIDs(ix.attrs)]
	}
	var buf [8]Value
	vals := buf[:0]
	for _, a := range ix.attrs {
		vals = append(vals, t.Vals[a])
	}
	return ix.Lookup(vals)
}

// LookupIDs returns the ids of tuples whose projection onto the indexed
// attributes equals the given interned ids; InvalidID components match
// nothing.
func (ix *HashIndex) LookupIDs(ids []ValueID) []TupleID {
	for _, id := range ids {
		if id == InvalidID {
			return nil
		}
	}
	return ix.buckets[KeyOfIDs(ids)]
}

// LookupKey returns the ids in the bucket for a precomputed key.
func (ix *HashIndex) LookupKey(key Key) []TupleID { return ix.buckets[key] }

// Buckets iterates over all (key, ids) pairs in unspecified order. The
// callback must not mutate the index.
func (ix *HashIndex) Buckets(f func(key Key, ids []TupleID)) {
	for k, ids := range ix.buckets {
		f(k, ids)
	}
}

// Len returns the number of distinct keys.
func (ix *HashIndex) Len() int { return len(ix.buckets) }

func dropID(ids []TupleID, id TupleID) []TupleID {
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			return ids[:len(ids)-1]
		}
	}
	return ids
}
