package relation

import "testing"

// TestVersionCountsEveryMutation pins the journal's freshness token:
// Version bumps on every Insert, Delete and effective Set — and only on
// those — independent of subscribers, while NextID advances on inserts
// alone.
func TestVersionCountsEveryMutation(t *testing.T) {
	r := New(MustSchema("r", "A", "B"))
	if r.Version() != 0 {
		t.Fatalf("fresh relation version = %d", r.Version())
	}

	t1, err := r.InsertRow("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r.InsertRow("x", "z")
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("after 2 inserts version = %d", r.Version())
	}
	if r.NextID() != t2.ID+1 {
		t.Fatalf("NextID = %d, want %d", r.NextID(), t2.ID+1)
	}

	// A no-op Set (same value) must not claim the state changed.
	if _, err := r.Set(t1.ID, 0, S("x")); err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("no-op Set bumped version to %d", r.Version())
	}
	if _, err := r.Set(t1.ID, 0, S("q")); err != nil {
		t.Fatal(err)
	}
	if r.Version() != 3 {
		t.Fatalf("effective Set: version = %d, want 3", r.Version())
	}

	if !r.Delete(t2.ID) {
		t.Fatal("delete failed")
	}
	if r.Version() != 4 {
		t.Fatalf("after delete version = %d, want 4", r.Version())
	}
	// Deletes and sets never advance the insertion watermark.
	if r.NextID() != t2.ID+1 {
		t.Fatalf("NextID moved to %d on non-insert mutations", r.NextID())
	}

	// Two relations with equal Version built by the same mutation
	// sequence have identical state — the invariant snapshot readers
	// rely on; sanity-check the derived accessors used for it.
	// Attribute A now holds only t1's "q" (t2 was deleted).
	if r.ActiveDomainSize(0) != 1 || !r.Schema().Has("A") || r.Schema().Has("Z") {
		t.Fatal("accessor sanity check failed")
	}
	if !EqVals([]Value{S("a"), NullValue}, []Value{S("a"), S("b")}) {
		t.Fatal("EqVals must treat null as matching (SQL semantics)")
	}
	if StrictEqVals([]Value{S("a"), NullValue}, []Value{S("a"), S("b")}) {
		t.Fatal("StrictEqVals must not treat null as matching")
	}
}
