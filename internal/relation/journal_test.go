package relation

import (
	"reflect"
	"testing"
)

func TestJournalEmitsTypedDeltas(t *testing.T) {
	r := New(MustSchema("r", "A", "B"))
	var got []Delta
	unsub := r.Subscribe(func(d Delta) { got = append(got, d) })

	tu, err := r.InsertRow("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	oldID := tu.IDAt(0)
	if _, err := r.Set(tu.ID, 0, S("z")); err != nil {
		t.Fatal(err)
	}
	// A no-op Set must not emit.
	if _, err := r.Set(tu.ID, 0, S("z")); err != nil {
		t.Fatal(err)
	}
	r.Delete(tu.ID)

	if len(got) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(got), got)
	}
	if got[0].Kind != DeltaInsert || got[0].T != tu {
		t.Fatalf("bad insert delta: %+v", got[0])
	}
	upd := got[1]
	if upd.Kind != DeltaUpdate || upd.T != tu || upd.Attr != 0 ||
		!StrictEq(upd.Old, S("x")) || upd.OldID != oldID {
		t.Fatalf("bad update delta: %+v", upd)
	}
	if got[2].Kind != DeltaDelete || got[2].T != tu {
		t.Fatalf("bad delete delta: %+v", got[2])
	}
	// The deleted tuple's values and ids must still be readable.
	if got[2].T.IDAt(1) == InvalidID || !StrictEq(got[2].T.Vals[0], S("z")) {
		t.Fatal("delete delta lost the tuple's state")
	}

	unsub()
	if _, err := r.InsertRow("p", "q"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("unsubscribed observer still notified: %d deltas", len(got))
	}
}

func TestJournalMultipleSubscribersInOrder(t *testing.T) {
	r := New(MustSchema("r", "A"))
	var order []string
	u1 := r.Subscribe(func(Delta) { order = append(order, "first") })
	u2 := r.Subscribe(func(Delta) { order = append(order, "second") })
	defer u2()
	if _, err := r.InsertRow("v"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"first", "second"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("notification order %v, want %v", order, want)
	}
	u1()
	u1() // double-unsubscribe is a no-op
	order = order[:0]
	if _, err := r.InsertRow("w"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"second"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("after unsubscribe: %v, want %v", order, want)
	}
}

func TestRestoreNextID(t *testing.T) {
	r := New(MustSchema("r", "A"))
	if _, err := r.InsertRow("a"); err != nil {
		t.Fatal(err)
	}
	mark := r.NextID()
	probe, _ := r.InsertRow("b")
	if probe.ID != mark {
		t.Fatalf("probe got id %d, want %d", probe.ID, mark)
	}
	r.Delete(probe.ID)
	r.RestoreNextID(mark)
	again, _ := r.InsertRow("c")
	if again.ID != mark {
		t.Fatalf("id sequence not rewound: got %d, want %d", again.ID, mark)
	}
	// A stale mark (larger than current) is ignored.
	r.RestoreNextID(mark + 100)
	if r.NextID() != again.ID+1 {
		t.Fatalf("stale mark corrupted the counter: %d", r.NextID())
	}
}
