package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// RowCursor iterates a pinned View in physical (pin-time) order, one page
// of row pointers at a time: each refill copies up to viewPageSize
// pointers under the view's read lock, then rows are served from the
// private buffer with no lock held. An optional tuple-id range is pushed
// down so filtered scans never materialize non-matching rows.
type RowCursor struct {
	v     *View
	minID TupleID // 0: no lower bound
	maxID TupleID // 0: no upper bound
	p     int     // next page to fetch
	buf   []*Tuple
	pos   int
	pages int
}

// Rows returns a cursor over all rows of the view.
func (v *View) Rows() *RowCursor { return v.RowsRange(0, 0) }

// RowsRange returns a cursor over the view's rows whose tuple id lies in
// [minID, maxID]; a zero bound means unbounded on that side. Rows come
// back in physical order (ids are not sorted — deletions compact the
// array), matching the unfiltered dump order.
func (v *View) RowsRange(minID, maxID TupleID) *RowCursor {
	return &RowCursor{v: v, minID: minID, maxID: maxID, buf: make([]*Tuple, 0, viewPageSize)}
}

// Next returns the next matching row, or nil when the cursor is
// exhausted. The returned tuple is immutable for the view's lifetime and
// must not be modified.
func (c *RowCursor) Next() *Tuple {
	for {
		for c.pos < len(c.buf) {
			t := c.buf[c.pos]
			c.pos++
			if c.minID != 0 && t.ID < c.minID {
				continue
			}
			if c.maxID != 0 && t.ID > c.maxID {
				continue
			}
			return t
		}
		n := c.v.page(c.p, c.buf[:cap(c.buf)])
		if n == 0 {
			return nil
		}
		c.p++
		c.buf = c.buf[:n]
		c.pos = 0
		c.pages++
	}
}

// Pages reports how many page copy-outs the cursor has performed — the
// unit of lock acquisition and of peak buffering for streamed reads.
func (c *RowCursor) Pages() int { return c.pages }

// A CSVEncoder streams tuples as CSV rows behind a shared row codec, so
// the buffered whole-relation WriteCSV and the server's streamed dump
// emit byte-identical output. NewCSVEncoder writes the header row
// immediately; Flush must be called (and its error checked) after the
// last Write.
type CSVEncoder struct {
	cw  *csv.Writer
	rec []string
}

// NewCSVEncoder writes the schema's header row to w and returns an
// encoder for the tuple rows.
func NewCSVEncoder(w io.Writer, s *Schema) (*CSVEncoder, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(s.Attrs()); err != nil {
		return nil, fmt.Errorf("relation: writing CSV header: %w", err)
	}
	return &CSVEncoder{cw: cw, rec: make([]string, s.Arity())}, nil
}

// Write encodes one tuple row. Null values are written as NullLiteral.
func (e *CSVEncoder) Write(t *Tuple) error {
	for i, v := range t.Vals {
		if v.Null {
			e.rec[i] = NullLiteral
		} else {
			e.rec[i] = v.Str
		}
	}
	if err := e.cw.Write(e.rec); err != nil {
		return fmt.Errorf("relation: writing CSV tuple %d: %w", t.ID, err)
	}
	return nil
}

// Flush drains the encoder's buffer to the underlying writer and returns
// any deferred write error.
func (e *CSVEncoder) Flush() error {
	e.cw.Flush()
	return e.cw.Error()
}

// WriteCSV streams the pinned view as CSV with a header row —
// byte-identical to relation.WriteCSV at the same version. Peak
// buffering is one page of row pointers plus the csv writer's buffer,
// independent of the relation size.
func (v *View) WriteCSV(w io.Writer) error {
	enc, err := NewCSVEncoder(w, v.Schema())
	if err != nil {
		return err
	}
	cur := v.Rows()
	for t := cur.Next(); t != nil; t = cur.Next() {
		if err := enc.Write(t); err != nil {
			return err
		}
	}
	return enc.Flush()
}
