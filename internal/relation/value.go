// Package relation implements the single-relation storage substrate the
// CFD-repair algorithms operate on: string-valued tuples with per-attribute
// confidence weights, SQL-style nulls, active domains, hash indices and a
// CSV codec.
//
// The paper assumes a schema with a single relation R (§2); multi-relation
// databases are cleaned one relation at a time since CFDs address a single
// relation only.
package relation

// Value is an attribute value: either a string constant or SQL null.
// The zero Value is the empty string (not null).
type Value struct {
	Str  string
	Null bool
}

// String returns the constant, or "␀" for null (display only).
func (v Value) String() string {
	if v.Null {
		return "␀"
	}
	return v.Str
}

// S returns a non-null string value.
func S(s string) Value { return Value{Str: s} }

// NullValue is the SQL null. The paper (§3.1) uses null when the value of
// an attribute is unknown or cannot be made certain.
var NullValue = Value{Null: true}

// Eq reports whether two values are equal under the paper's simple SQL
// semantics (§3.1 remark 1): a = b evaluates to TRUE if either side is
// null; otherwise it is ordinary string equality.
func Eq(a, b Value) bool {
	if a.Null || b.Null {
		return true
	}
	return a.Str == b.Str
}

// StrictEq reports whether two values are identical: both null, or both
// the same non-null constant. Used for counting differences (dif) and for
// equality of stored data, where null does NOT match everything.
func StrictEq(a, b Value) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	return a.Str == b.Str
}

// EqVals reports Eq over parallel slices (SQL semantics per position).
func EqVals(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Eq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// StrictEqVals reports StrictEq over parallel slices.
func StrictEqVals(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !StrictEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Key encodes a value for use in string map keys. Null has a dedicated
// encoding that cannot collide with constants.
//
// This is the legacy composite-key encoding, kept for GroupBy-style
// APIs whose callers want self-describing string keys. Hot paths (hash
// indices, detection, equivalence classes, the cost memo) key on interned
// ValueIDs packed into fixed-width integer Keys instead — see intern.go.
func (v Value) Key() string {
	if v.Null {
		return "\x00N"
	}
	return "\x00S" + v.Str
}

// KeyOf encodes a sequence of values as a composite map key.
func KeyOf(vals ...Value) string {
	n := 0
	for _, v := range vals {
		n += len(v.Str) + 2
	}
	b := make([]byte, 0, n)
	for _, v := range vals {
		b = append(b, v.Key()...)
	}
	return string(b)
}
